// Package trap is the public API of the TRAP reproduction: tailored
// robustness assessment for index advisors via adversarial perturbation
// (ICDE 2024).
//
// The typical flow is three lines: pick a dataset, pick an advisor, and
// assess it —
//
//	a, _ := trap.NewAssessor("tpch", trap.TPCH(100), trap.Quick(), 42)
//	report, _ := a.Assess(trap.AdvisorByName("Extend"), trap.SharedTable)
//	fmt.Println(report.MeanIUDR)
//
// Underneath, the assessor trains TRAP's encoder-decoder generator
// against the advisor (pretraining + reinforced perturbation policy
// learning with a learned index-utility reward), generates adversarial
// workloads within the edit budget and perturbation constraint, and
// reports the Index Utility Decrease Ratio.
//
// Everything is stdlib-only and deterministic given the seeds.
package trap

import (
	"context"
	"fmt"

	"github.com/trap-repro/trap/internal/advisor"
	"github.com/trap-repro/trap/internal/assess"
	"github.com/trap-repro/trap/internal/bench"
	"github.com/trap-repro/trap/internal/core"
	"github.com/trap-repro/trap/internal/engine"
	"github.com/trap-repro/trap/internal/schema"
	"github.com/trap-repro/trap/internal/sqlx"
	"github.com/trap-repro/trap/internal/workload"
)

// Re-exported core types. The internal packages stay importable only
// from this module; downstream users program against these aliases.
type (
	// Schema is a simulated database: tables, statistics, join graph.
	Schema = schema.Schema
	// Index is a (multi-)column B-tree index definition.
	Index = schema.Index
	// Config is an index configuration.
	Config = schema.Config
	// Query is a parsed SPAJ SQL query.
	Query = sqlx.Query
	// ColumnRef names a table column.
	ColumnRef = sqlx.ColumnRef
	// Workload is a weighted query set.
	Workload = workload.Workload
	// Generator synthesizes template-based workloads.
	Generator = workload.Generator
	// Engine is the simulated what-if optimizer.
	Engine = engine.Engine
	// Advisor selects index configurations for workloads.
	Advisor = advisor.Advisor
	// Trainable is a learning-based advisor.
	Trainable = advisor.Trainable
	// Constraint is an advisor tuning constraint (storage or #indexes).
	Constraint = advisor.Constraint
	// PerturbConstraint is a Table I perturbation constraint.
	PerturbConstraint = core.PerturbConstraint
	// Params scales the assessment pipeline.
	Params = assess.Params
	// Report is the outcome of assessing one advisor.
	Report = assess.Assessment
)

// The three perturbation constraints of the paper's Table I.
const (
	ValueOnly        = core.ValueOnly
	ColumnConsistent = core.ColumnConsistent
	SharedTable      = core.SharedTable
)

// TPCH builds the TPC-H dataset (8 tables, 61 columns) with SF1
// cardinalities divided by scaleDown.
func TPCH(scaleDown int64) *Schema { return bench.TPCH(scaleDown) }

// TPCDS builds the TPC-DS dataset (25 tables, 429 columns).
func TPCDS(scaleDown int64) *Schema { return bench.TPCDS(scaleDown) }

// Transaction builds the banking OLTP dataset (10 tables, 189 columns)
// standing in for the paper's proprietary TRANSACTION workload.
func Transaction(scaleDown int64) *Schema { return bench.TRANSACTION(scaleDown) }

// Parse parses SPAJ SQL text.
func Parse(sql string) (*Query, error) { return sqlx.Parse(sql) }

// EditDistance is the token-level distance k(q, q') of Definition 3.4.
func EditDistance(a, b *Query) int { return sqlx.EditDistance(a, b) }

// Quick returns the fast assessment parameters (seconds per advisor).
func Quick() Params { return assess.QuickParams() }

// Full returns the heavier parameters for serious runs.
func Full() Params { return assess.FullParams() }

// AdvisorByName constructs one of the paper's ten advisors ("Extend",
// "DB2Advis", "AutoAdmin", "Drop", "Relaxation", "DTA", "SWIRL",
// "DRLindex", "DQN", "MCTS").
func AdvisorByName(name string) (Advisor, error) {
	spec, err := assess.SpecByName(name)
	if err != nil {
		return nil, err
	}
	return spec.Make(1), nil
}

// AdvisorNames lists the ten assessed advisors in the paper's order.
func AdvisorNames() []string {
	var out []string
	for _, s := range assess.TenAdvisors() {
		out = append(out, s.Name)
	}
	return out
}

// Assessor is the high-level entry point: it owns a dataset's engine,
// workloads, vocabulary and learned utility model, and assesses advisors
// with TRAP-generated adversarial workloads.
type Assessor struct {
	suite *assess.Suite
}

// NewAssessor builds an assessor over a schema.
func NewAssessor(name string, s *Schema, p Params, seed int64) (*Assessor, error) {
	suite, err := assess.NewSuite(name, s, p, seed)
	if err != nil {
		return nil, err
	}
	return &Assessor{suite: suite}, nil
}

// Suite exposes the underlying assessment suite for advanced use (the
// per-figure experiment drivers live on it).
func (a *Assessor) Suite() *assess.Suite { return a.suite }

// Engine returns the simulated optimizer.
func (a *Assessor) Engine() *Engine { return a.suite.E }

// Generator returns the workload generator.
func (a *Assessor) Generator() *Generator { return a.suite.Gen }

// StorageConstraint returns the suite's storage-budget constraint (half
// the dataset size, the paper's moderate default).
func (a *Assessor) StorageConstraint() Constraint { return a.suite.Storage }

// CountConstraint returns the suite's #index constraint.
func (a *Assessor) CountConstraint() Constraint { return a.suite.Count }

// AssessNamed assesses one of the ten paper advisors by name, using its
// Table III baseline and constraint kind, under the given perturbation
// constraint. Learned advisors are trained first.
func (a *Assessor) AssessNamed(name string, pc PerturbConstraint) (*Report, error) {
	spec, err := assess.SpecByName(name)
	if err != nil {
		return nil, err
	}
	adv, err := a.suite.BuildAdvisor(spec)
	if err != nil {
		return nil, err
	}
	base := a.suite.BaselineAdvisor(spec)
	ac := a.suite.ConstraintFor(spec)
	return a.assess(adv, base, ac, pc)
}

// Assess assesses a custom advisor against the null-configuration
// baseline under the suite's storage constraint.
func (a *Assessor) Assess(adv Advisor, pc PerturbConstraint) (*Report, error) {
	if tr, ok := adv.(Trainable); ok {
		if err := tr.Train(a.suite.E, a.suite.Train, a.suite.Storage); err != nil {
			return nil, err
		}
	}
	return a.assess(adv, nil, a.suite.Storage, pc)
}

// AssessWith assesses a custom advisor with an explicit baseline and
// tuning constraint.
func (a *Assessor) AssessWith(adv, base Advisor, c Constraint, pc PerturbConstraint) (*Report, error) {
	return a.assess(adv, base, c, pc)
}

func (a *Assessor) assess(adv, base Advisor, c Constraint, pc PerturbConstraint) (*Report, error) {
	m, err := a.suite.BuildMethod(context.Background(), "TRAP", pc, adv, base, c, assess.MethodConfig{})
	if err != nil {
		return nil, fmt.Errorf("trap: training generator: %w", err)
	}
	return a.suite.Measure(context.Background(), m, adv, base, c)
}

// Utility computes the index utility u(W, d, I) of Definition 3.2 with
// the runtime stand-in.
func (a *Assessor) Utility(w *Workload, cfg, base Config) (float64, error) {
	return workload.Utility(a.suite.E, w, cfg, base)
}

// IUDR is the Index Utility Decrease Ratio of Definition 3.3.
func IUDR(uOrig, uPert float64) float64 { return workload.IUDR(uOrig, uPert) }
