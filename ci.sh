#!/usr/bin/env bash
# CI entry point: formatting, vet, tier-1 build+test, the race detector
# over the whole module, and a fault-injection smoke pass. Every test
# invocation carries a timeout so a wedged cancellation path fails the
# build instead of hanging it. Run from the repo root.
set -euo pipefail
cd "$(dirname "$0")"

echo "== gofmt =="
unformatted=$(gofmt -l .)
if [ -n "$unformatted" ]; then
    echo "gofmt needed:" "$unformatted"
    exit 1
fi

echo "== go vet =="
go vet ./...

echo "== tier-1: build + test =="
go build ./...
go test -timeout 120s ./...

echo "== race detector =="
# The engine package gets an explicit pass first: the sharded plan cache,
# singleflight and CostBatch worker pool are the repo's hottest
# concurrent code and must fail fast and loud on a data race.
go test -race -timeout 300s -count=1 ./internal/engine
# The tracer is written to from every pipeline goroutine (rollout pools,
# measurement cells, cost batches) while /v1/traces reads it: its own
# explicit race pass keeps that contract loud.
go test -race -timeout 300s -count=1 ./internal/trace
# The job log is appended from every worker while replay/compaction
# rewrites segments, and the admission controller is hit by every
# submit: both are lock-heavy by design and must prove it under -race.
go test -race -timeout 300s -count=1 ./internal/joblog ./internal/admission
# The cluster bus is the fleet's linearization point — claims, fencing
# checks and fan-out all contend on one mutex from every node's
# coordinator; it gets its own loud pass.
go test -race -timeout 300s -count=1 ./internal/cluster
# The GEMM kernels carry a bit-identity contract: blocked/fused
# forward and backward must match the naive k-ascending reference
# exactly, on odd shapes and across worker counts, with the race
# detector watching the fan-out.
go test -race -timeout 300s -count=1 \
    -run 'TestGEMM|TestArenaTrimReleasesOneOffPeak' ./internal/nn
go test -race -timeout 300s ./...

echo "== parallel scaling gate =="
# The RLTrain parallel-regression gates, under -race: a 4-worker epoch
# must not run slower than a 1-worker epoch, and widening the rollout
# pool must not multiply allocations (the per-worker scratch dividend).
go test -race -timeout 300s -count=1 \
    -run 'TestRLTrainScalingGate|TestRLTrainAllocsFlatAcrossWorkers' \
    ./internal/core

echo "== benchmark smoke =="
# One iteration of every CostBatch benchmark: catches bit-rot in the
# benchmark harness and any pathological slowdown of the costing path.
go test -run='^$' -bench=CostBatch -benchtime=1x -timeout 120s ./internal/engine
# Allocation-regression smoke: BenchmarkRollout asserts a hard
# allocs-per-decode budget (the tensor arena's dividend) and fails the
# build if a change regresses past it.
go test -run='^$' -bench=Rollout -benchtime=1x -timeout 120s ./internal/core
# Telemetry allocation gates: the disabled path (no scope in context)
# and the enabled steady-state append must both stay zero-alloc, so
# instrumented hot loops cost nothing when nobody is looking.
go test -run='^$' -bench=Telemetry -benchtime=100x -timeout 120s ./internal/telemetry
go test -timeout 120s -count=1 -run 'TestAppendZeroAlloc' ./internal/telemetry

echo "== fault-injection smoke =="
# Drive the deterministic fault harness end to end: panic isolation,
# transient-error retry, cancellation, and checkpoint/resume.
go test -timeout 120s -count=1 \
    -run 'TestJobPanicIsolation|TestJobTransientRetry|TestJobCancelEndpoints|TestJobCheckpointResume' \
    ./internal/service
go test -timeout 120s -count=1 \
    -run 'TestCheckpointResumeEquivalence|TestRLTrainInjectedTransientError' \
    ./internal/core

echo "== trace endpoint smoke =="
# End-to-end observability check: a real job must yield a retrievable
# trace with a >=4-level span tree, and /metrics must serve all three
# exposition formats.
go test -timeout 300s -count=1 \
    -run 'TestJobTraceEndToEnd|TestMetricsFormats' \
    ./internal/service

echo "== crash-replay smoke =="
# Durability proof end to end: submit a job with -joblog/-spool armed,
# SIGKILL the process mid-epoch, restart on the same directories, and
# assert the job resumes and finishes bit-identical to an uninterrupted
# run. Plus the cancel/GC interplay: a canceled-then-GC'd job must not
# be resurrected by replay and must leak no goroutines (under -race).
go test -race -timeout 600s -count=1 \
    -run 'TestCrashReplayResume|TestJobLogReplayRestores|TestCancelGCNoResurrectionNoLeak' \
    ./internal/service

echo "== SSE smoke =="
# Streaming progress: a live job's SSE stream must deliver state/epoch/
# cell/result events in order, survive a mid-stream disconnect, and
# resume from Last-Event-ID without gaps or duplicates.
go test -race -timeout 300s -count=1 \
    -run 'TestSSEStreamAndResume' \
    ./internal/service

echo "== telemetry smoke =="
# The observability surface end to end: a real TRAP assessment must
# yield training/attack series over /v1/jobs/{id}/telemetry (JSON and
# CSV) with monotonic steps and per-epoch SSE telemetry events; a
# two-node drill must federate node metric snapshots into
# /v1/cluster/metrics and turn a killed node's row stale; the
# continuous profiler must capture, serve and prune slow-span profiles;
# and /version must report the build provenance.
go test -race -timeout 600s -count=1 \
    -run 'TestJobTelemetryEndToEnd|TestClusterMetricsFederation|TestProfilerCapturesSlowSpan|TestVersionEndpoint' \
    ./internal/service

echo "== chaos smoke =="
# The multi-node failover drill: three in-process fleet nodes share one
# job namespace, the owner of a running RL-training job is killed
# mid-training, and a survivor must take over at a higher fencing epoch
# and finish exactly once, bit-identical to an uninterrupted run. The
# SSE and fencing drills ride along: stream resume across a takeover,
# and stale-owner appends rejected after a partition heals.
go test -race -timeout 600s -count=1 \
    -run 'TestFleetChaosDrillTakeover|TestFleetFencedStaleResult|TestFleetSSEResumeAcrossTakeover|TestJobLogDegradedDraining' \
    ./internal/service

echo "ci: all green"
