#!/usr/bin/env bash
# CI entry point: formatting, vet, tier-1 build+test, and the race
# detector over the whole module. Run from the repo root.
set -euo pipefail
cd "$(dirname "$0")"

echo "== gofmt =="
unformatted=$(gofmt -l .)
if [ -n "$unformatted" ]; then
    echo "gofmt needed:" "$unformatted"
    exit 1
fi

echo "== go vet =="
go vet ./...

echo "== tier-1: build + test =="
go build ./...
go test ./...

echo "== race detector =="
go test -race ./...

echo "ci: all green"
