package trap

import (
	"testing"

	"github.com/trap-repro/trap/internal/advisor"
	"github.com/trap-repro/trap/internal/engine"
	"github.com/trap-repro/trap/internal/schema"
	"github.com/trap-repro/trap/internal/workload"
)

// apiParams is the minimal configuration for API-level tests.
func apiParams() Params {
	p := Quick()
	p.Templates = 8
	p.TrainWorkloads = 3
	p.TestWorkloads = 3
	p.WorkloadSize = 4
	p.UtilitySamples = 200
	p.PretrainPairs = 4
	p.PretrainEpochs = 1
	p.RLEpochs = 1
	p.AdvisorEpisodes = 8
	return p
}

func TestDatasetConstructors(t *testing.T) {
	if TPCH(100).ColumnCount() != 61 {
		t.Error("TPCH shape wrong")
	}
	if TPCDS(100).ColumnCount() != 429 {
		t.Error("TPCDS shape wrong")
	}
	if Transaction(100).ColumnCount() != 189 {
		t.Error("Transaction shape wrong")
	}
}

func TestAdvisorByName(t *testing.T) {
	names := AdvisorNames()
	if len(names) != 10 {
		t.Fatalf("AdvisorNames = %d", len(names))
	}
	for _, n := range names {
		a, err := AdvisorByName(n)
		if err != nil || a.Name() != n {
			t.Errorf("AdvisorByName(%s): %v", n, err)
		}
	}
	if _, err := AdvisorByName("nope"); err == nil {
		t.Error("unknown advisor accepted")
	}
}

func TestParseAndEditDistance(t *testing.T) {
	a, err := Parse("SELECT t.x FROM t WHERE t.x = 1")
	if err != nil {
		t.Fatal(err)
	}
	b, _ := Parse("SELECT t.x FROM t WHERE t.x = 2")
	if EditDistance(a, b) != 1 {
		t.Error("EditDistance wrong")
	}
}

func TestAssessNamedEndToEnd(t *testing.T) {
	a, err := NewAssessor("tpch", TPCH(200), apiParams(), 3)
	if err != nil {
		t.Fatal(err)
	}
	rep, err := a.AssessNamed("Extend", ValueOnly)
	if err != nil {
		t.Fatal(err)
	}
	if rep == nil {
		t.Fatal("nil report")
	}
	for _, p := range rep.Pairs {
		if p.Orig.Size() != p.Pert.Size() {
			t.Error("pair size mismatch")
		}
		for i := range p.Orig.Items {
			if d := EditDistance(p.Orig.Items[i].Query, p.Pert.Items[i].Query); d > apiParams().Eps {
				t.Errorf("edit distance %d exceeds budget", d)
			}
		}
	}
}

// leadColumnAdvisor is a trivial custom advisor for API testing: index
// the first filter column of every query.
type leadColumnAdvisor struct{}

func (leadColumnAdvisor) Name() string { return "LeadColumn" }

func (leadColumnAdvisor) Recommend(e *engine.Engine, w *workload.Workload, c advisor.Constraint) (schema.Config, error) {
	var cfg schema.Config
	for _, it := range w.Items {
		if len(it.Query.Filters) == 0 {
			continue
		}
		col := it.Query.Filters[0].Col
		ix := schema.Index{Table: col.Table, Columns: []string{col.Column}}
		if c.Fits(e.Schema(), cfg, ix) {
			cfg = cfg.Add(ix)
		}
	}
	return cfg, nil
}

func TestAssessCustomAdvisor(t *testing.T) {
	a, err := NewAssessor("tpch", TPCH(200), apiParams(), 4)
	if err != nil {
		t.Fatal(err)
	}
	rep, err := a.Assess(leadColumnAdvisor{}, SharedTable)
	if err != nil {
		t.Fatal(err)
	}
	_ = rep
	if a.StorageConstraint().StorageBytes <= 0 {
		t.Error("storage constraint unset")
	}
	if a.CountConstraint().MaxIndexes <= 0 {
		t.Error("count constraint unset")
	}
}

func TestAssessWithExplicitBaseline(t *testing.T) {
	a, err := NewAssessor("tpch", TPCH(200), apiParams(), 9)
	if err != nil {
		t.Fatal(err)
	}
	adv, err := AdvisorByName("DTA")
	if err != nil {
		t.Fatal(err)
	}
	base, err := AdvisorByName("Drop")
	if err != nil {
		t.Fatal(err)
	}
	rep, err := a.AssessWith(adv, base, a.CountConstraint(), ValueOnly)
	if err != nil {
		t.Fatal(err)
	}
	_ = rep
	if a.Suite() == nil || a.Engine() == nil || a.Generator() == nil {
		t.Error("accessors returned nil")
	}
}

func TestUtilityAndIUDRAPI(t *testing.T) {
	a, err := NewAssessor("tpch", TPCH(200), apiParams(), 5)
	if err != nil {
		t.Fatal(err)
	}
	w := a.Generator().Workload(4)
	u, err := a.Utility(w, nil, nil)
	if err != nil || u != 0 {
		t.Errorf("self-utility = %v (%v), want 0", u, err)
	}
	if IUDR(0.5, 0.25) != 0.5 {
		t.Error("IUDR wrong")
	}
}
