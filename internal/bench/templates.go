package bench

// TemplateStat records, for one workload source, how many concrete queries
// were observed against how many underlying query templates — the
// observation behind Figure 1 of the paper: real workloads are perturbed
// variants of a small template set.
type TemplateStat struct {
	Source    string
	Queries   int64 // -1 means unbounded (template benchmarks generate endlessly)
	Templates int64
}

// Unbounded marks benchmarks whose query count is unlimited (parameter
// re-binding generates arbitrarily many variants).
const Unbounded int64 = -1

// TemplateStats reproduces the per-source template statistics of Figure 1:
// the industry trace from the workload-replatforming study the paper cites
// (1.7B queries over 31M templates) and eight open-source benchmarks.
func TemplateStats() []TemplateStat {
	return []TemplateStat{
		{Source: "industry (Fortune 500 / Global 2000 trace)", Queries: 1_700_000_000, Templates: 31_000_000},
		{Source: "TPC-H", Queries: Unbounded, Templates: 22},
		{Source: "TPC-DS", Queries: Unbounded, Templates: 99},
		{Source: "DSB", Queries: Unbounded, Templates: 52},
		{Source: "JOB", Queries: 113, Templates: 33},
		{Source: "CEB", Queries: 13_644, Templates: 16},
		{Source: "STATS-CEB", Queries: 146, Templates: 146},
		{Source: "SSB", Queries: Unbounded, Templates: 13},
		{Source: "JOB-light", Queries: 70, Templates: 70},
	}
}
