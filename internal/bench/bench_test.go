package bench

import (
	"testing"

	"github.com/trap-repro/trap/internal/engine"
	"github.com/trap-repro/trap/internal/schema"
	"github.com/trap-repro/trap/internal/sqlx"
)

func TestTPCHShape(t *testing.T) {
	s := TPCH(1)
	if err := s.Validate(); err != nil {
		t.Fatal(err)
	}
	if len(s.Tables) != 8 {
		t.Errorf("TPC-H tables = %d, want 8", len(s.Tables))
	}
	if s.ColumnCount() != 61 {
		t.Errorf("TPC-H columns = %d, want 61", s.ColumnCount())
	}
	li := s.Table("lineitem")
	if li == nil || li.Rows != 6_000_000 {
		t.Errorf("lineitem rows wrong: %+v", li)
	}
	if s.Correlation("lineitem", "l_shipdate", "l_commitdate") == 0 {
		t.Error("missing lineitem date correlation")
	}
}

func TestTPCDSShape(t *testing.T) {
	s := TPCDS(1)
	if err := s.Validate(); err != nil {
		t.Fatal(err)
	}
	if len(s.Tables) != 25 {
		t.Errorf("TPC-DS tables = %d, want 25", len(s.Tables))
	}
	if s.ColumnCount() != 429 {
		t.Errorf("TPC-DS columns = %d, want 429", s.ColumnCount())
	}
	for _, tc := range []struct {
		table string
		cols  int
	}{
		{"store_sales", 23}, {"catalog_sales", 34}, {"web_sales", 34},
		{"date_dim", 28}, {"item", 22}, {"customer", 18}, {"inventory", 4},
	} {
		tb := s.Table(tc.table)
		if tb == nil {
			t.Errorf("missing table %s", tc.table)
			continue
		}
		if len(tb.Columns) != tc.cols {
			t.Errorf("%s columns = %d, want %d", tc.table, len(tb.Columns), tc.cols)
		}
	}
}

func TestTransactionShape(t *testing.T) {
	s := TRANSACTION(1)
	if err := s.Validate(); err != nil {
		t.Fatal(err)
	}
	if len(s.Tables) != 10 {
		t.Errorf("TRANSACTION tables = %d, want 10", len(s.Tables))
	}
	if s.ColumnCount() != 189 {
		t.Errorf("TRANSACTION columns = %d, want 189", s.ColumnCount())
	}
}

func TestScaleDown(t *testing.T) {
	full := TPCH(1)
	small := TPCH(100)
	if small.Table("lineitem").Rows >= full.Table("lineitem").Rows {
		t.Error("scaleDown did not shrink tables")
	}
	// Tiny dimension tables must not be scaled to nothing.
	if small.Table("region").Rows < 5 {
		t.Error("region over-scaled")
	}
	if small.ColumnCount() != full.ColumnCount() {
		t.Error("scaling must not change the schema shape")
	}
}

func TestLargeSchemas(t *testing.T) {
	for _, cols := range []int{809, 1031, 1265} {
		s := LargeSchema("wide", cols, 100_000)
		if err := s.Validate(); err != nil {
			t.Fatal(err)
		}
		if s.ColumnCount() != cols {
			t.Errorf("LargeSchema(%d) has %d columns", cols, s.ColumnCount())
		}
		if len(s.Joins) != len(s.Tables)-1 {
			t.Errorf("LargeSchema join graph not spanning: %d joins, %d tables",
				len(s.Joins), len(s.Tables))
		}
	}
}

func TestSchemasPlannable(t *testing.T) {
	// Each benchmark schema must support planning a representative query.
	cases := []struct {
		s   *schema.Schema
		sql string
	}{
		{TPCH(100), "SELECT lineitem.l_extendedprice FROM lineitem, orders " +
			"WHERE lineitem.l_orderkey = orders.o_orderkey AND orders.o_orderdate < 500 " +
			"AND lineitem.l_shipmode = 'l_shipmode_2'"},
		{TPCDS(100), "SELECT item.i_category, COUNT(store_sales.ss_ticket_number) FROM store_sales, item, date_dim " +
			"WHERE store_sales.ss_item_sk = item.i_item_sk AND store_sales.ss_sold_date_sk = date_dim.d_date_sk " +
			"AND date_dim.d_year = 100 GROUP BY item.i_category"},
		{TRANSACTION(100), "SELECT transactions.amount FROM transactions, accounts " +
			"WHERE transactions.account_id = accounts.account_id AND accounts.status = 'status_1' " +
			"ORDER BY transactions.amount"},
	}
	for _, tc := range cases {
		e := engine.New(tc.s)
		q := sqlx.MustParse(tc.sql)
		for _, mode := range []engine.Mode{engine.ModeEstimated, engine.ModeTrue} {
			c, err := e.QueryCost(q, nil, mode)
			if err != nil {
				t.Errorf("%s: %v", tc.s.Name, err)
				continue
			}
			if c <= 0 {
				t.Errorf("%s: non-positive cost", tc.s.Name)
			}
		}
		ix := schema.Index{Table: q.Tables()[0], Columns: []string{q.Filters[0].Col.Column}}
		if ix.Table != q.Filters[0].Col.Table {
			ix.Table = q.Filters[0].Col.Table
		}
		with, err := e.QueryCost(q, schema.Config{ix}, engine.ModeEstimated)
		without, _ := e.QueryCost(q, nil, engine.ModeEstimated)
		if err != nil || with > without+1e-9 {
			t.Errorf("%s: index raised cost (%v): %v -> %v", tc.s.Name, err, without, with)
		}
	}
}

func TestTemplateStats(t *testing.T) {
	sts := TemplateStats()
	if len(sts) != 9 {
		t.Fatalf("want 9 sources (industry + 8 benchmarks), got %d", len(sts))
	}
	for _, st := range sts {
		if st.Templates <= 0 {
			t.Errorf("%s: non-positive template count", st.Source)
		}
		if st.Queries != Unbounded && st.Queries < st.Templates {
			t.Errorf("%s: fewer queries than templates", st.Source)
		}
	}
}
