package bench

import "github.com/trap-repro/trap/internal/schema"

// TPCDS builds the TPC-DS schema: 25 tables and 429 columns (the 24
// spec tables plus dbgen_version), with SF1 cardinalities divided by
// scaleDown. Column names follow the TPC-DS v2 specification.
func TPCDS(scaleDown int64) *schema.Schema {
	if scaleDown < 1 {
		scaleDown = 1
	}
	sd := func(n int64) int64 {
		v := n / scaleDown
		if v < 10 {
			v = 10
		}
		return v
	}
	storeSales := buildTable("store_sales", sd(2_880_000), []colSpec{
		"ss_sold_date_sk fk 1823", "ss_sold_time_sk fk 86400", "ss_item_sk fk 18000",
		"ss_customer_sk fk 100000", "ss_cdemo_sk fk 1920000", "ss_hdemo_sk fk 7200",
		"ss_addr_sk fk 50000", "ss_store_sk fk 12", "ss_promo_sk fk 300",
		"ss_ticket_number fk 240000", "ss_quantity qty 100", "ss_wholesale_cost price",
		"ss_list_price price", "ss_sales_price price", "ss_ext_discount_amt price",
		"ss_ext_sales_price price", "ss_ext_wholesale_cost price", "ss_ext_list_price price",
		"ss_ext_tax price", "ss_coupon_amt price", "ss_net_paid price",
		"ss_net_paid_inc_tax price", "ss_net_profit price",
	})
	storeReturns := buildTable("store_returns", sd(288_000), []colSpec{
		"sr_returned_date_sk fk 1823", "sr_return_time_sk fk 86400", "sr_item_sk fk 18000",
		"sr_customer_sk fk 100000", "sr_cdemo_sk fk 1920000", "sr_hdemo_sk fk 7200",
		"sr_addr_sk fk 50000", "sr_store_sk fk 12", "sr_reason_sk fk 35",
		"sr_ticket_number fk 240000", "sr_return_quantity qty 100", "sr_return_amt price",
		"sr_return_tax price", "sr_return_amt_inc_tax price", "sr_fee price",
		"sr_return_ship_cost price", "sr_refunded_cash price", "sr_reversed_charge price",
		"sr_store_credit price", "sr_net_loss price",
	})
	catalogSales := buildTable("catalog_sales", sd(1_440_000), []colSpec{
		"cs_sold_date_sk fk 1823", "cs_sold_time_sk fk 86400", "cs_ship_date_sk fk 1823",
		"cs_bill_customer_sk fk 100000", "cs_bill_cdemo_sk fk 1920000", "cs_bill_hdemo_sk fk 7200",
		"cs_bill_addr_sk fk 50000", "cs_ship_customer_sk fk 100000", "cs_ship_cdemo_sk fk 1920000",
		"cs_ship_hdemo_sk fk 7200", "cs_ship_addr_sk fk 50000", "cs_call_center_sk fk 6",
		"cs_catalog_page_sk fk 11718", "cs_ship_mode_sk fk 20", "cs_warehouse_sk fk 5",
		"cs_item_sk fk 18000", "cs_promo_sk fk 300", "cs_order_number fk 160000",
		"cs_quantity qty 100", "cs_wholesale_cost price", "cs_list_price price",
		"cs_sales_price price", "cs_ext_discount_amt price", "cs_ext_sales_price price",
		"cs_ext_wholesale_cost price", "cs_ext_list_price price", "cs_ext_tax price",
		"cs_coupon_amt price", "cs_ext_ship_cost price", "cs_net_paid price",
		"cs_net_paid_inc_tax price", "cs_net_paid_inc_ship price",
		"cs_net_paid_inc_ship_tax price", "cs_net_profit price",
	})
	catalogReturns := buildTable("catalog_returns", sd(144_000), []colSpec{
		"cr_returned_date_sk fk 1823", "cr_returned_time_sk fk 86400", "cr_item_sk fk 18000",
		"cr_refunded_customer_sk fk 100000", "cr_refunded_cdemo_sk fk 1920000",
		"cr_refunded_hdemo_sk fk 7200", "cr_refunded_addr_sk fk 50000",
		"cr_returning_customer_sk fk 100000", "cr_returning_cdemo_sk fk 1920000",
		"cr_returning_hdemo_sk fk 7200", "cr_returning_addr_sk fk 50000",
		"cr_call_center_sk fk 6", "cr_catalog_page_sk fk 11718", "cr_ship_mode_sk fk 20",
		"cr_warehouse_sk fk 5", "cr_reason_sk fk 35", "cr_order_number fk 160000",
		"cr_return_quantity qty 100", "cr_return_amount price", "cr_return_tax price",
		"cr_return_amt_inc_tax price", "cr_fee price", "cr_return_ship_cost price",
		"cr_refunded_cash price", "cr_reversed_charge price", "cr_store_credit price",
		"cr_net_loss price",
	})
	webSales := buildTable("web_sales", sd(720_000), []colSpec{
		"ws_sold_date_sk fk 1823", "ws_sold_time_sk fk 86400", "ws_ship_date_sk fk 1823",
		"ws_item_sk fk 18000", "ws_bill_customer_sk fk 100000", "ws_bill_cdemo_sk fk 1920000",
		"ws_bill_hdemo_sk fk 7200", "ws_bill_addr_sk fk 50000", "ws_ship_customer_sk fk 100000",
		"ws_ship_cdemo_sk fk 1920000", "ws_ship_hdemo_sk fk 7200", "ws_ship_addr_sk fk 50000",
		"ws_web_page_sk fk 60", "ws_web_site_sk fk 30", "ws_ship_mode_sk fk 20",
		"ws_warehouse_sk fk 5", "ws_promo_sk fk 300", "ws_order_number fk 60000",
		"ws_quantity qty 100", "ws_wholesale_cost price", "ws_list_price price",
		"ws_sales_price price", "ws_ext_discount_amt price", "ws_ext_sales_price price",
		"ws_ext_wholesale_cost price", "ws_ext_list_price price", "ws_ext_tax price",
		"ws_coupon_amt price", "ws_ext_ship_cost price", "ws_net_paid price",
		"ws_net_paid_inc_tax price", "ws_net_paid_inc_ship price",
		"ws_net_paid_inc_ship_tax price", "ws_net_profit price",
	})
	webReturns := buildTable("web_returns", sd(72_000), []colSpec{
		"wr_returned_date_sk fk 1823", "wr_returned_time_sk fk 86400", "wr_item_sk fk 18000",
		"wr_refunded_customer_sk fk 100000", "wr_refunded_cdemo_sk fk 1920000",
		"wr_refunded_hdemo_sk fk 7200", "wr_refunded_addr_sk fk 50000",
		"wr_returning_customer_sk fk 100000", "wr_returning_cdemo_sk fk 1920000",
		"wr_returning_hdemo_sk fk 7200", "wr_returning_addr_sk fk 50000",
		"wr_web_page_sk fk 60", "wr_reason_sk fk 35", "wr_order_number fk 60000",
		"wr_return_quantity qty 100", "wr_return_amt price", "wr_return_tax price",
		"wr_return_amt_inc_tax price", "wr_fee price", "wr_return_ship_cost price",
		"wr_refunded_cash price", "wr_reversed_charge price", "wr_account_credit price",
		"wr_net_loss price",
	})
	inventory := buildTable("inventory", sd(11_745_000), []colSpec{
		"inv_date_sk fk 261", "inv_item_sk fk 18000", "inv_warehouse_sk fk 5",
		"inv_quantity_on_hand qty 1000",
	})
	store := buildTable("store", 12, []colSpec{
		"s_store_sk pk", "s_store_id str 12", "s_rec_start_date date 5",
		"s_rec_end_date date 5", "s_closed_date_sk fk 1823", "s_store_name str 10",
		"s_number_employees qty 300", "s_floor_space qty 10000", "s_hours flag 3",
		"s_manager str 12", "s_market_id qty 10", "s_geography_class flag 1",
		"s_market_desc comment", "s_market_manager str 12", "s_division_id qty 1",
		"s_division_name flag 1", "s_company_id qty 1", "s_company_name flag 1",
		"s_street_number str 12", "s_street_name str 12", "s_street_type flag 20",
		"s_suite_number str 12", "s_city flag 8", "s_county flag 8", "s_state flag 9",
		"s_zip str 12", "s_country flag 1", "s_gmt_offset float 4", "s_tax_precentage float 10",
	})
	callCenter := buildTable("call_center", 6, []colSpec{
		"cc_call_center_sk pk", "cc_call_center_id str 6", "cc_rec_start_date date 4",
		"cc_rec_end_date date 4", "cc_closed_date_sk fk 1823", "cc_open_date_sk fk 1823",
		"cc_name str 6", "cc_class flag 3", "cc_employees qty 7", "cc_sq_ft qty 6",
		"cc_hours flag 3", "cc_manager str 6", "cc_mkt_id qty 6", "cc_mkt_class flag 6",
		"cc_mkt_desc comment", "cc_market_manager str 6", "cc_division qty 6",
		"cc_division_name flag 6", "cc_company qty 6", "cc_company_name flag 6",
		"cc_street_number str 6", "cc_street_name str 6", "cc_street_type flag 20",
		"cc_suite_number str 6", "cc_city flag 6", "cc_county flag 6", "cc_state flag 6",
		"cc_zip str 6", "cc_country flag 1", "cc_gmt_offset float 2", "cc_tax_percentage float 6",
	})
	catalogPage := buildTable("catalog_page", 11_718, []colSpec{
		"cp_catalog_page_sk pk", "cp_catalog_page_id str", "cp_start_date_sk fk 91",
		"cp_end_date_sk fk 97", "cp_department flag 1", "cp_catalog_number qty 109",
		"cp_catalog_page_number qty 108", "cp_description comment", "cp_type flag 3",
	})
	customer := buildTable("customer", sd(100_000), []colSpec{
		"c_customer_sk pk", "c_customer_id str", "c_current_cdemo_sk fk 1920000",
		"c_current_hdemo_sk fk 7200", "c_current_addr_sk fk 50000",
		"c_first_shipto_date_sk fk 1823", "c_first_sales_date_sk fk 1823",
		"c_salutation flag 6", "c_first_name str 5000", "c_last_name str 5000",
		"c_preferred_cust_flag flag 2", "c_birth_day qty 31", "c_birth_month qty 12",
		"c_birth_year qty 69", "c_birth_country flag 200", "c_login str",
		"c_email_address str", "c_last_review_date_sk fk 1823",
	})
	customerAddress := buildTable("customer_address", sd(50_000), []colSpec{
		"ca_address_sk pk", "ca_address_id str", "ca_street_number str 1000",
		"ca_street_name str 8000", "ca_street_type flag 20", "ca_suite_number str 75",
		"ca_city flag 700 0.6", "ca_county flag 1850", "ca_state flag 51 0.5",
		"ca_zip str 7000", "ca_country flag 1", "ca_gmt_offset float 6",
		"ca_location_type flag 3",
	})
	customerDemographics := buildTable("customer_demographics", sd(1_920_000), []colSpec{
		"cd_demo_sk pk", "cd_gender flag 2", "cd_marital_status flag 5",
		"cd_education_status flag 7", "cd_purchase_estimate qty 20",
		"cd_credit_rating flag 4", "cd_dep_count qty 7", "cd_dep_employed_count qty 7",
		"cd_dep_college_count qty 7",
	})
	dateDim := buildTable("date_dim", 73_049, []colSpec{
		"d_date_sk pk", "d_date_id str", "d_date date 73049", "d_month_seq qty 2400",
		"d_week_seq qty 10436", "d_quarter_seq qty 801", "d_year qty 200",
		"d_dow qty 7", "d_moy qty 12", "d_dom qty 31", "d_qoy qty 4",
		"d_fy_year qty 200", "d_fy_quarter_seq qty 801", "d_fy_week_seq qty 10436",
		"d_day_name flag 7", "d_quarter_name flag 800", "d_holiday flag 2",
		"d_weekend flag 2", "d_following_holiday flag 2", "d_first_dom qty 2400",
		"d_last_dom qty 2400", "d_same_day_ly qty 73049", "d_same_day_lq qty 73049",
		"d_current_day flag 2", "d_current_week flag 2", "d_current_month flag 2",
		"d_current_quarter flag 2", "d_current_year flag 2",
	})
	householdDemographics := buildTable("household_demographics", 7_200, []colSpec{
		"hd_demo_sk pk", "hd_income_band_sk fk 20", "hd_buy_potential flag 6",
		"hd_dep_count qty 10", "hd_vehicle_count qty 6",
	})
	incomeBand := buildTable("income_band", 20, []colSpec{
		"ib_income_band_sk pk", "ib_lower_bound qty 20", "ib_upper_bound qty 20",
	})
	item := buildTable("item", sd(18_000), []colSpec{
		"i_item_sk pk", "i_item_id str", "i_rec_start_date date 4", "i_rec_end_date date 3",
		"i_item_desc comment", "i_current_price price", "i_wholesale_cost price",
		"i_brand_id qty 1000", "i_brand flag 700 0.5", "i_class_id qty 16",
		"i_class flag 99", "i_category_id qty 10", "i_category flag 10 0.4",
		"i_manufact_id qty 1000", "i_manufact flag 1000", "i_size flag 7",
		"i_formulation str 10000", "i_color flag 92 0.6", "i_units flag 21",
		"i_container flag 1", "i_manager_id qty 100", "i_product_name str",
	})
	promotion := buildTable("promotion", 300, []colSpec{
		"p_promo_sk pk", "p_promo_id str 300", "p_start_date_sk fk 1823",
		"p_end_date_sk fk 1823", "p_item_sk fk 18000", "p_cost price",
		"p_response_target qty 1", "p_promo_name flag 10", "p_channel_dmail flag 2",
		"p_channel_email flag 2", "p_channel_catalog flag 2", "p_channel_tv flag 2",
		"p_channel_radio flag 2", "p_channel_press flag 2", "p_channel_event flag 2",
		"p_channel_demo flag 2", "p_channel_details comment", "p_purpose flag 10",
		"p_discount_active flag 2",
	})
	reason := buildTable("reason", 35, []colSpec{
		"r_reason_sk pk", "r_reason_id str 35", "r_reason_desc flag 35",
	})
	shipMode := buildTable("ship_mode", 20, []colSpec{
		"sm_ship_mode_sk pk", "sm_ship_mode_id str 20", "sm_type flag 5",
		"sm_code flag 4", "sm_carrier flag 20", "sm_contract str 20",
	})
	timeDim := buildTable("time_dim", 86_400, []colSpec{
		"t_time_sk pk", "t_time_id str", "t_time qty 86400", "t_hour qty 24",
		"t_minute qty 60", "t_second qty 60", "t_am_pm flag 2", "t_shift flag 3",
		"t_sub_shift flag 4", "t_meal_time flag 4",
	})
	warehouse := buildTable("warehouse", 5, []colSpec{
		"w_warehouse_sk pk", "w_warehouse_id str 5", "w_warehouse_name str 5",
		"w_warehouse_sq_ft qty 5", "w_street_number str 5", "w_street_name str 5",
		"w_street_type flag 20", "w_suite_number str 5", "w_city flag 3",
		"w_county flag 3", "w_state flag 3", "w_zip str 5", "w_country flag 1",
		"w_gmt_offset float 2",
	})
	webPage := buildTable("web_page", 60, []colSpec{
		"wp_web_page_sk pk", "wp_web_page_id str 30", "wp_rec_start_date date 4",
		"wp_rec_end_date date 3", "wp_creation_date_sk fk 1823", "wp_access_date_sk fk 100",
		"wp_autogen_flag flag 2", "wp_customer_sk fk 100000", "wp_url str 1",
		"wp_type flag 7", "wp_char_count qty 60", "wp_link_count qty 20",
		"wp_image_count qty 7", "wp_max_ad_count qty 5",
	})
	webSite := buildTable("web_site", 30, []colSpec{
		"web_site_sk pk", "web_site_id str 15", "web_rec_start_date date 4",
		"web_rec_end_date date 3", "web_name flag 15", "web_open_date_sk fk 1823",
		"web_close_date_sk fk 1823", "web_class flag 1", "web_manager str 30",
		"web_mkt_id qty 6", "web_mkt_class flag 30", "web_mkt_desc comment",
		"web_market_manager str 30", "web_company_id qty 6", "web_company_name flag 6",
		"web_street_number str 30", "web_street_name str 30", "web_street_type flag 20",
		"web_suite_number str 30", "web_city flag 20", "web_county flag 20",
		"web_state flag 15", "web_zip str 30", "web_country flag 1",
		"web_gmt_offset float 2", "web_tax_percentage float 12",
	})
	dbgenVersion := buildTable("dbgen_version", 10, []colSpec{
		"dv_version str 1", "dv_create_date date 1", "dv_create_time qty 1",
		"dv_cmdline_args comment",
	})

	s := schema.New("tpcds",
		[]*schema.Table{
			storeSales, storeReturns, catalogSales, catalogReturns, webSales,
			webReturns, inventory, store, callCenter, catalogPage, customer,
			customerAddress, customerDemographics, dateDim, householdDemographics,
			incomeBand, item, promotion, reason, shipMode, timeDim, warehouse,
			webPage, webSite, dbgenVersion,
		},
		[]schema.JoinEdge{
			edge("store_sales", "ss_sold_date_sk", "date_dim", "d_date_sk"),
			edge("store_sales", "ss_item_sk", "item", "i_item_sk"),
			edge("store_sales", "ss_customer_sk", "customer", "c_customer_sk"),
			edge("store_sales", "ss_store_sk", "store", "s_store_sk"),
			edge("store_sales", "ss_promo_sk", "promotion", "p_promo_sk"),
			edge("store_sales", "ss_cdemo_sk", "customer_demographics", "cd_demo_sk"),
			edge("store_sales", "ss_hdemo_sk", "household_demographics", "hd_demo_sk"),
			edge("store_sales", "ss_addr_sk", "customer_address", "ca_address_sk"),
			edge("store_sales", "ss_sold_time_sk", "time_dim", "t_time_sk"),
			edge("store_returns", "sr_returned_date_sk", "date_dim", "d_date_sk"),
			edge("store_returns", "sr_item_sk", "item", "i_item_sk"),
			edge("store_returns", "sr_customer_sk", "customer", "c_customer_sk"),
			edge("store_returns", "sr_store_sk", "store", "s_store_sk"),
			edge("store_returns", "sr_reason_sk", "reason", "r_reason_sk"),
			edge("catalog_sales", "cs_sold_date_sk", "date_dim", "d_date_sk"),
			edge("catalog_sales", "cs_item_sk", "item", "i_item_sk"),
			edge("catalog_sales", "cs_bill_customer_sk", "customer", "c_customer_sk"),
			edge("catalog_sales", "cs_call_center_sk", "call_center", "cc_call_center_sk"),
			edge("catalog_sales", "cs_catalog_page_sk", "catalog_page", "cp_catalog_page_sk"),
			edge("catalog_sales", "cs_ship_mode_sk", "ship_mode", "sm_ship_mode_sk"),
			edge("catalog_sales", "cs_warehouse_sk", "warehouse", "w_warehouse_sk"),
			edge("catalog_returns", "cr_returned_date_sk", "date_dim", "d_date_sk"),
			edge("catalog_returns", "cr_item_sk", "item", "i_item_sk"),
			edge("catalog_returns", "cr_reason_sk", "reason", "r_reason_sk"),
			edge("web_sales", "ws_sold_date_sk", "date_dim", "d_date_sk"),
			edge("web_sales", "ws_item_sk", "item", "i_item_sk"),
			edge("web_sales", "ws_bill_customer_sk", "customer", "c_customer_sk"),
			edge("web_sales", "ws_web_page_sk", "web_page", "wp_web_page_sk"),
			edge("web_sales", "ws_web_site_sk", "web_site", "web_site_sk"),
			edge("web_returns", "wr_returned_date_sk", "date_dim", "d_date_sk"),
			edge("web_returns", "wr_item_sk", "item", "i_item_sk"),
			edge("web_returns", "wr_reason_sk", "reason", "r_reason_sk"),
			edge("inventory", "inv_date_sk", "date_dim", "d_date_sk"),
			edge("inventory", "inv_item_sk", "item", "i_item_sk"),
			edge("inventory", "inv_warehouse_sk", "warehouse", "w_warehouse_sk"),
			edge("customer", "c_current_cdemo_sk", "customer_demographics", "cd_demo_sk"),
			edge("customer", "c_current_hdemo_sk", "household_demographics", "hd_demo_sk"),
			edge("customer", "c_current_addr_sk", "customer_address", "ca_address_sk"),
			edge("household_demographics", "hd_income_band_sk", "income_band", "ib_income_band_sk"),
		})
	s.SetCorrelation("store_sales", "ss_list_price", "ss_sales_price", 0.85)
	s.SetCorrelation("store_sales", "ss_quantity", "ss_ext_sales_price", 0.7)
	s.SetCorrelation("store_sales", "ss_net_paid", "ss_net_paid_inc_tax", 0.95)
	s.SetCorrelation("catalog_sales", "cs_quantity", "cs_ext_sales_price", 0.7)
	s.SetCorrelation("web_sales", "ws_quantity", "ws_ext_sales_price", 0.7)
	s.SetCorrelation("item", "i_category", "i_class", 0.8)
	s.SetCorrelation("item", "i_brand", "i_manufact", 0.6)
	s.SetCorrelation("customer_address", "ca_city", "ca_state", 0.9)
	s.SetCorrelation("date_dim", "d_year", "d_month_seq", 0.9)
	return s
}
