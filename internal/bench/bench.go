// Package bench builds the evaluation datasets of the paper: the TPC-H
// schema (8 tables, 61 columns), the TPC-DS schema (25 tables, 429
// columns), the TRANSACTION banking OLTP schema (10 tables, 189 columns),
// the large real-world-like schemas of Figure 10 (809–1265 columns), and
// the benchmark template metadata behind Figure 1.
//
// Only schemas and ground-truth statistics are materialized — the engine
// never touches tuples — so "TPC-H" here means the genuine TPC-H table
// and column structure with scale-factor-1 cardinalities and plausible
// per-column distributions.
package bench

import (
	"fmt"
	"strings"

	"github.com/trap-repro/trap/internal/schema"
	"github.com/trap-repro/trap/internal/stats"
)

// colSpec is the compact column description used by the schema builders:
// "name kind[:ndv[:skew]]" where kind is one of
// pk, fk, int, float, str, date, flag, price, qty, comment.
type colSpec string

func buildTable(name string, rows int64, specs []colSpec) *schema.Table {
	cols := make([]schema.Column, 0, len(specs))
	for _, sp := range specs {
		cols = append(cols, buildColumn(string(sp), rows))
	}
	return schema.NewTable(name, rows, cols)
}

func buildColumn(spec string, rows int64) schema.Column {
	fields := strings.Fields(spec)
	name := fields[0]
	kind := "int"
	if len(fields) > 1 {
		kind = fields[1]
	}
	var ndv int64
	var skew float64
	if len(fields) > 2 {
		fmt.Sscanf(fields[2], "%d", &ndv)
	}
	if len(fields) > 3 {
		fmt.Sscanf(fields[3], "%f", &skew)
	}
	c := schema.Column{Name: name}
	defNDV := func(d int64) int64 {
		if ndv > 0 {
			return ndv
		}
		if d > rows && rows > 0 {
			return rows
		}
		return d
	}
	intDist := func(n int64) stats.Dist {
		if n < 1 {
			n = 1
		}
		return stats.Dist{NDV: n, Min: 0, Max: float64(n - 1), Skew: skew}
	}
	switch kind {
	case "pk":
		c.Type = schema.IntCol
		c.Width = 8
		c.Dist = intDist(rows)
	case "fk":
		c.Type = schema.IntCol
		c.Width = 8
		c.Dist = intDist(defNDV(rows / 10))
	case "int":
		c.Type = schema.IntCol
		c.Width = 8
		c.Dist = intDist(defNDV(1000))
	case "float", "price":
		c.Type = schema.FloatCol
		c.Width = 8
		n := defNDV(50_000)
		c.Dist = stats.Dist{NDV: n, Min: 0.01, Max: float64(n) / 4, Skew: skew}
	case "qty":
		c.Type = schema.IntCol
		c.Width = 8
		c.Dist = intDist(defNDV(50))
	case "date":
		c.Type = schema.DateCol
		c.Width = 8
		c.Dist = intDist(defNDV(2_526)) // ~7 years of days
	case "flag":
		c.Type = schema.StringCol
		c.Width = 8
		n := defNDV(3)
		c.Dist = stats.Dist{NDV: n, Min: 0, Max: float64(n - 1), Skew: maxSkew(skew, 0.5)}
	case "str":
		c.Type = schema.StringCol
		c.Width = 24
		c.Dist = intDist(defNDV(5_000))
	case "comment":
		c.Type = schema.StringCol
		c.Width = 60
		c.Dist = intDist(defNDV(rows))
	default:
		panic("bench: unknown column kind " + kind)
	}
	if c.Dist.NDV > rows && rows > 0 {
		c.Dist.NDV = rows
		if c.Type != schema.FloatCol {
			c.Dist.Max = float64(rows - 1)
		}
	}
	return c
}

func maxSkew(a, b float64) float64 {
	if a > b {
		return a
	}
	return b
}

func edge(lt, lc, rt, rc string) schema.JoinEdge {
	return schema.JoinEdge{LeftTable: lt, LeftColumn: lc, RightTable: rt, RightColumn: rc}
}

// TPCH builds the TPC-H schema (8 tables, 61 columns) with SF1
// cardinalities divided by scaleDown (use 1 for full SF1; the experiments
// use 10 to keep plan arithmetic small without changing any trade-off).
func TPCH(scaleDown int64) *schema.Schema {
	if scaleDown < 1 {
		scaleDown = 1
	}
	sd := func(n int64) int64 {
		v := n / scaleDown
		if v < 10 {
			v = 10
		}
		return v
	}
	region := buildTable("region", 5, []colSpec{
		"r_regionkey pk", "r_name str 5", "r_comment comment",
	})
	nation := buildTable("nation", 25, []colSpec{
		"n_nationkey pk", "n_name str 25", "n_regionkey fk 5", "n_comment comment",
	})
	supplier := buildTable("supplier", sd(10_000), []colSpec{
		"s_suppkey pk", "s_name str", "s_address str", "s_nationkey fk 25",
		"s_phone str", "s_acctbal price", "s_comment comment",
	})
	customer := buildTable("customer", sd(150_000), []colSpec{
		"c_custkey pk", "c_name str", "c_address str", "c_nationkey fk 25",
		"c_phone str", "c_acctbal price", "c_mktsegment flag 5", "c_comment comment",
	})
	part := buildTable("part", sd(200_000), []colSpec{
		"p_partkey pk", "p_name str", "p_mfgr flag 5", "p_brand flag 25",
		"p_type flag 150", "p_size qty 50", "p_container flag 40",
		"p_retailprice price", "p_comment comment",
	})
	partsupp := buildTable("partsupp", sd(800_000), []colSpec{
		"ps_partkey fk 200000", "ps_suppkey fk 10000", "ps_availqty qty 10000",
		"ps_supplycost price", "ps_comment comment",
	})
	orders := buildTable("orders", sd(1_500_000), []colSpec{
		"o_orderkey pk", "o_custkey fk 100000", "o_orderstatus flag 3 1.0",
		"o_totalprice price", "o_orderdate date", "o_orderpriority flag 5",
		"o_clerk str 1000", "o_shippriority flag 1", "o_comment comment",
	})
	lineitem := buildTable("lineitem", sd(6_000_000), []colSpec{
		"l_orderkey fk 1500000", "l_partkey fk 200000", "l_suppkey fk 10000",
		"l_linenumber qty 7", "l_quantity qty 50", "l_extendedprice price",
		"l_discount float 11", "l_tax float 9", "l_returnflag flag 3 0.8",
		"l_linestatus flag 2 0.6", "l_shipdate date", "l_commitdate date",
		"l_receiptdate date", "l_shipinstruct flag 4", "l_shipmode flag 7",
		"l_comment comment",
	})
	s := schema.New("tpch",
		[]*schema.Table{region, nation, supplier, customer, part, partsupp, orders, lineitem},
		[]schema.JoinEdge{
			edge("nation", "n_regionkey", "region", "r_regionkey"),
			edge("supplier", "s_nationkey", "nation", "n_nationkey"),
			edge("customer", "c_nationkey", "nation", "n_nationkey"),
			edge("partsupp", "ps_partkey", "part", "p_partkey"),
			edge("partsupp", "ps_suppkey", "supplier", "s_suppkey"),
			edge("orders", "o_custkey", "customer", "c_custkey"),
			edge("lineitem", "l_orderkey", "orders", "o_orderkey"),
			edge("lineitem", "l_partkey", "part", "p_partkey"),
			edge("lineitem", "l_suppkey", "supplier", "s_suppkey"),
		})
	s.SetCorrelation("lineitem", "l_shipdate", "l_commitdate", 0.9)
	s.SetCorrelation("lineitem", "l_shipdate", "l_receiptdate", 0.85)
	s.SetCorrelation("lineitem", "l_quantity", "l_extendedprice", 0.7)
	s.SetCorrelation("lineitem", "l_returnflag", "l_linestatus", 0.6)
	s.SetCorrelation("orders", "o_orderdate", "o_totalprice", 0.3)
	s.SetCorrelation("orders", "o_orderstatus", "o_orderdate", 0.5)
	s.SetCorrelation("part", "p_size", "p_retailprice", 0.4)
	s.SetCorrelation("part", "p_brand", "p_type", 0.5)
	return s
}

// TRANSACTION builds the synthetic banking OLTP schema standing in for the
// paper's proprietary real-world workload: 10 tables, 189 columns.
func TRANSACTION(scaleDown int64) *schema.Schema {
	if scaleDown < 1 {
		scaleDown = 1
	}
	sd := func(n int64) int64 {
		v := n / scaleDown
		if v < 10 {
			v = 10
		}
		return v
	}
	// 10 tables, column counts 28+25+24+22+18+16+15+15+14+12 = 189.
	customers := buildTable("bank_customers", sd(500_000), []colSpec{ // 28
		"cust_id pk", "first_name str", "last_name str", "birth_date date 25000",
		"gender flag 2", "marital_status flag 5", "income_band flag 20 0.6",
		"occupation flag 120", "employer str 30000", "education flag 8",
		"nationality flag 60", "residence_city flag 2500 0.9", "residence_state flag 52",
		"postal_code str 40000", "street str", "phone str", "email str",
		"join_date date", "credit_score qty 600", "risk_rating flag 10 0.7",
		"kyc_status flag 4 1.0", "segment flag 6 0.8", "channel_pref flag 5",
		"language flag 12", "is_vip flag 2 1.2", "is_staff flag 2 1.5",
		"last_review date", "comment comment",
	})
	accounts := buildTable("accounts", sd(800_000), []colSpec{ // 25
		"account_id pk", "cust_id fk 500000", "branch_id fk 400",
		"account_type flag 8 0.8", "currency flag 15 1.1", "status flag 5 1.0",
		"open_date date", "close_date date", "balance price", "available price",
		"overdraft_limit price", "interest_rate float 200", "fee_plan flag 12",
		"statement_cycle flag 4", "is_joint flag 2", "is_dormant flag 2 1.4",
		"hold_amount price", "last_txn_date date", "opened_channel flag 6",
		"product_code flag 80", "tier flag 5 0.9", "tax_status flag 4",
		"iban str", "swift str 500", "comment comment",
	})
	transactions := buildTable("transactions", sd(8_000_000), []colSpec{ // 24
		"txn_id pk", "account_id fk 800000", "merchant_id fk 60000",
		"txn_date date", "txn_time qty 86400", "amount price", "currency flag 15 1.1",
		"txn_type flag 12 0.9", "channel flag 8 0.7", "status flag 6 1.2",
		"mcc_code flag 400 0.8", "auth_code str 100000", "terminal_id fk 50000",
		"is_international flag 2 1.3", "is_recurring flag 2 1.0", "fee price",
		"exchange_rate float 500", "balance_after price", "batch_id fk 20000",
		"device_type flag 6", "fraud_score qty 1000", "disputed flag 2 2.0",
		"posted_date date", "description comment",
	})
	cards := buildTable("cards", sd(600_000), []colSpec{ // 22
		"card_id pk", "account_id fk 800000", "cust_id fk 500000",
		"card_type flag 6 0.8", "network flag 4 0.9", "issue_date date",
		"expiry_date date 120", "status flag 5 1.1", "credit_limit price",
		"outstanding price", "min_due price", "reward_plan flag 10",
		"is_contactless flag 2", "is_virtual flag 2 1.3", "pin_retries qty 4",
		"activation_date date", "last_used date", "monthly_spend price",
		"cashback_rate float 20", "emboss_name str", "replaced_card fk 600000",
		"comment comment",
	})
	loans := buildTable("loans", sd(200_000), []colSpec{ // 18
		"loan_id pk", "cust_id fk 500000", "branch_id fk 400",
		"loan_type flag 8 0.7", "principal price", "outstanding price",
		"interest_rate float 300", "term_months qty 480", "start_date date",
		"maturity_date date", "status flag 6 1.0", "collateral_type flag 10",
		"collateral_value price", "payment_day qty 28", "delinquency_days qty 365 1.5",
		"officer_id fk 5000", "purpose flag 25", "comment comment",
	})
	merchants := buildTable("merchants", sd(60_000), []colSpec{ // 16
		"merchant_id pk", "name str", "category flag 400 0.8", "city flag 2500 0.9",
		"state flag 52", "country flag 60 1.2", "mcc_code flag 400 0.8",
		"onboard_date date", "status flag 4 1.0", "risk_level flag 5 0.9",
		"settlement_account fk 800000", "fee_rate float 100", "terminal_count qty 200",
		"monthly_volume price", "chargeback_rate float 100", "comment comment",
	})
	branches := buildTable("branches", 400, []colSpec{ // 15
		"branch_id pk", "name str 400", "city flag 300", "state flag 52",
		"region flag 8", "manager_id fk 5000", "open_date date", "staff_count qty 80",
		"atm_count qty 12", "type flag 4", "status flag 3", "deposits price",
		"lat float 10000", "lon float 10000", "comment comment",
	})
	transfers := buildTable("transfers", sd(2_000_000), []colSpec{ // 15
		"transfer_id pk", "from_account fk 800000", "to_account fk 800000",
		"amount price", "currency flag 15 1.1", "transfer_date date",
		"channel flag 8 0.7", "status flag 6 1.2", "purpose_code flag 40",
		"is_international flag 2 1.3", "fee price", "exchange_rate float 500",
		"scheduled flag 2", "batch_id fk 20000", "reference comment",
	})
	statements := buildTable("statements", sd(1_200_000), []colSpec{ // 14
		"statement_id pk", "account_id fk 800000", "period_start date 84",
		"period_end date 84", "opening_balance price", "closing_balance price",
		"total_credits price", "total_debits price", "txn_count qty 500",
		"fee_total price", "interest_paid price", "delivery flag 3",
		"generated_date date", "status flag 3",
	})
	auditlog := buildTable("audit_log", sd(4_000_000), []colSpec{ // 12
		"audit_id pk", "entity_type flag 12", "entity_id fk 800000",
		"action flag 20 0.8", "actor_id fk 5000", "actor_role flag 8",
		"event_date date", "event_time qty 86400", "channel flag 8",
		"severity flag 5 1.3", "ip_address str 200000", "detail comment",
	})
	s := schema.New("transaction",
		[]*schema.Table{customers, accounts, transactions, cards, loans,
			merchants, branches, transfers, statements, auditlog},
		[]schema.JoinEdge{
			edge("accounts", "cust_id", "bank_customers", "cust_id"),
			edge("accounts", "branch_id", "branches", "branch_id"),
			edge("transactions", "account_id", "accounts", "account_id"),
			edge("transactions", "merchant_id", "merchants", "merchant_id"),
			edge("cards", "account_id", "accounts", "account_id"),
			edge("cards", "cust_id", "bank_customers", "cust_id"),
			edge("loans", "cust_id", "bank_customers", "cust_id"),
			edge("loans", "branch_id", "branches", "branch_id"),
			edge("transfers", "from_account", "accounts", "account_id"),
			edge("statements", "account_id", "accounts", "account_id"),
			edge("audit_log", "entity_id", "accounts", "account_id"),
		})
	s.SetCorrelation("transactions", "txn_type", "channel", 0.7)
	s.SetCorrelation("transactions", "amount", "fee", 0.8)
	s.SetCorrelation("transactions", "is_international", "currency", 0.9)
	s.SetCorrelation("transactions", "mcc_code", "merchant_id", 0.6)
	s.SetCorrelation("accounts", "account_type", "product_code", 0.8)
	s.SetCorrelation("accounts", "balance", "available", 0.95)
	s.SetCorrelation("bank_customers", "income_band", "credit_score", 0.6)
	s.SetCorrelation("bank_customers", "segment", "is_vip", 0.7)
	s.SetCorrelation("cards", "credit_limit", "outstanding", 0.7)
	s.SetCorrelation("loans", "principal", "outstanding", 0.85)
	return s
}

// LargeSchema builds a synthetic wide real-world-like schema for the
// Figure 10 scalability experiment. columns is the total column count
// (the paper uses 809–1265); tables get ~45 columns each around a central
// fact table.
func LargeSchema(name string, columns int, rowsPerTable int64) *schema.Schema {
	if columns < 50 {
		columns = 50
	}
	perTable := 45
	nTables := (columns + perTable - 1) / perTable
	var tables []*schema.Table
	var joins []schema.JoinEdge
	remaining := columns
	for ti := 0; ti < nTables; ti++ {
		n := perTable
		if n > remaining {
			n = remaining
		}
		remaining -= n
		tname := fmt.Sprintf("t%02d", ti)
		specs := []colSpec{colSpec("id pk")}
		if ti > 0 {
			specs = append(specs, colSpec("parent_id fk"))
		}
		for ci := len(specs); ci < n; ci++ {
			var sp string
			switch ci % 5 {
			case 0:
				sp = fmt.Sprintf("c%02d flag %d 0.8", ci, 4+ci%40)
			case 1:
				sp = fmt.Sprintf("c%02d date", ci)
			case 2:
				sp = fmt.Sprintf("c%02d price", ci)
			case 3:
				sp = fmt.Sprintf("c%02d qty %d", ci, 10+ci*7%1000)
			default:
				sp = fmt.Sprintf("c%02d int %d", ci, 100+ci*31%100000)
			}
			specs = append(specs, colSpec(sp))
		}
		tables = append(tables, buildTable(tname, rowsPerTable, specs))
		if ti > 0 {
			joins = append(joins, edge(tname, "parent_id", "t00", "id"))
		}
	}
	return schema.New(name, tables, joins)
}
