package stats

import "math"

// Histogram is an equi-depth histogram: what the simulated optimizer knows
// about a column after ANALYZE. It is built from a (possibly stale or
// mis-sampled) view of the true distribution, so estimates derived from it
// deviate from the truth in a deterministic way.
type Histogram struct {
	// Bounds has NumBuckets+1 ascending edges; each bucket holds an equal
	// fraction of rows of the sampled distribution.
	Bounds []float64
	// NDVEst is the optimizer's distinct-count estimate for the column.
	NDVEst float64
}

// DefaultBuckets is the histogram resolution used by the engine.
const DefaultBuckets = 32

// EstimationError parameterizes how wrong the optimizer's statistics are.
// The defaults model a realistically mis-sampled ANALYZE; zeroing both
// fields yields a (nearly) perfect optimizer, which collapses the gap the
// learned cost models exploit.
type EstimationError struct {
	// SkewDampening is the factor applied to the true skew when the
	// histogram is built (ANALYZE samples miss the tail). 1 = exact.
	SkewDampening float64
	// NDVAmp is the amplitude of the per-column multiplicative NDV bias.
	// 0 = exact distinct counts.
	NDVAmp float64
}

// DefaultEstimationError returns the standard error profile.
func DefaultEstimationError() EstimationError {
	return EstimationError{SkewDampening: 0.6, NDVAmp: 0.5}
}

// BuildHistogram builds the optimizer's histogram for a column with the
// default estimation-error profile.
func BuildHistogram(name string, d Dist, buckets int) Histogram {
	return BuildHistogramErr(name, d, buckets, DefaultEstimationError())
}

// BuildHistogramErr builds the optimizer's histogram for a column. The
// sampled distribution underestimates skew (ANALYZE samples miss the
// tail), and the NDV estimate carries a per-column multiplicative bias
// keyed on name — both standard, reproducible sources of cardinality
// estimation error, scaled by the error profile.
func BuildHistogramErr(name string, d Dist, buckets int, e EstimationError) Histogram {
	if buckets <= 0 {
		buckets = DefaultBuckets
	}
	sampled := d
	sampled.Skew = d.Skew * e.SkewDampening
	bounds := make([]float64, buckets+1)
	for i := 0; i <= buckets; i++ {
		bounds[i] = sampled.Quantile(float64(i) / float64(buckets))
	}
	bounds[0] = d.Min
	bounds[buckets] = d.Max
	ndvEst := float64(d.NDV) * HashFactor("ndv:"+name, e.NDVAmp)
	if ndvEst < 1 {
		ndvEst = 1
	}
	return Histogram{Bounds: bounds, NDVEst: ndvEst}
}

// CDFEst estimates the fraction of rows with value <= v using uniform
// interpolation within buckets.
func (h Histogram) CDFEst(v float64) float64 {
	n := len(h.Bounds) - 1
	if n < 1 {
		return 1
	}
	if v < h.Bounds[0] {
		return 0
	}
	if v >= h.Bounds[n] {
		return 1
	}
	// Binary search for the bucket containing v.
	lo, hi := 0, n-1
	for lo < hi {
		mid := (lo + hi) / 2
		if v < h.Bounds[mid+1] {
			hi = mid
		} else {
			lo = mid + 1
		}
	}
	width := h.Bounds[lo+1] - h.Bounds[lo]
	frac := 1.0
	if width > 0 {
		frac = (v - h.Bounds[lo]) / width
	}
	return (float64(lo) + frac) / float64(n)
}

// EqSelEst estimates equality selectivity as 1/NDVEst when v lies in the
// domain, the standard uniform-NDV assumption.
func (h Histogram) EqSelEst(v float64) float64 {
	n := len(h.Bounds) - 1
	if n < 1 {
		return 1
	}
	if v < h.Bounds[0] || v > h.Bounds[n] {
		return 0
	}
	return clampSel(1 / h.NDVEst)
}

// RangeSelEst estimates selectivity of "col op v".
func (h Histogram) RangeSelEst(op string, v float64) float64 {
	eq := h.EqSelEst(v)
	switch op {
	case "=":
		return eq
	case "!=":
		return clampSel(1 - eq)
	case "<":
		return clampSel(h.CDFEst(v) - eq/2)
	case "<=":
		return clampSel(h.CDFEst(v) + eq/2)
	case ">":
		return clampSel(1 - h.CDFEst(v) - eq/2)
	case ">=":
		return clampSel(1 - h.CDFEst(v) + eq/2)
	}
	return 1
}

// Mean returns the arithmetic mean of xs (0 for empty input).
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	s := 0.0
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}

// Std returns the population standard deviation of xs.
func Std(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	m := Mean(xs)
	s := 0.0
	for _, x := range xs {
		s += (x - m) * (x - m)
	}
	return math.Sqrt(s / float64(len(xs)))
}

// Pearson returns the Pearson correlation coefficient of two equal-length
// series (0 when either side is constant).
func Pearson(xs, ys []float64) float64 {
	if len(xs) != len(ys) || len(xs) == 0 {
		return 0
	}
	mx, my := Mean(xs), Mean(ys)
	var sxy, sxx, syy float64
	for i := range xs {
		dx, dy := xs[i]-mx, ys[i]-my
		sxy += dx * dy
		sxx += dx * dx
		syy += dy * dy
	}
	if sxx == 0 || syy == 0 {
		return 0
	}
	return sxy / math.Sqrt(sxx*syy)
}
