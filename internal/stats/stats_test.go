package stats

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestDistUniformBasics(t *testing.T) {
	d := Dist{NDV: 100, Min: 0, Max: 99, Skew: 0}
	if got := d.EqSel(50); math.Abs(got-0.01) > 1e-9 {
		t.Errorf("EqSel(50) = %v, want 0.01", got)
	}
	if got := d.CDF(49); math.Abs(got-0.5) > 1e-9 {
		t.Errorf("CDF(49) = %v, want 0.5", got)
	}
	if d.EqSel(50.5) != 0 {
		t.Error("EqSel of non-domain value should be 0")
	}
}

func TestDistSkewConcentratesMass(t *testing.T) {
	u := Dist{NDV: 1000, Min: 0, Max: 999, Skew: 0}
	z := Dist{NDV: 1000, Min: 0, Max: 999, Skew: 1.2}
	if z.EqSel(0) <= u.EqSel(0) {
		t.Errorf("skewed head %v not heavier than uniform %v", z.EqSel(0), u.EqSel(0))
	}
	if z.EqSel(999) >= u.EqSel(999) {
		t.Errorf("skewed tail %v not lighter than uniform %v", z.EqSel(999), u.EqSel(999))
	}
	if z.CDF(99) <= u.CDF(99) {
		t.Error("skewed CDF should rise faster at the head")
	}
}

func TestDistRangeSelComplements(t *testing.T) {
	d := Dist{NDV: 500, Min: 10, Max: 1000, Skew: 0.8}
	v := d.ValueAt(123)
	le := d.RangeSel("<=", v)
	gt := d.RangeSel(">", v)
	if math.Abs(le+gt-1) > 1e-9 {
		t.Errorf("<= plus > should be 1, got %v", le+gt)
	}
	lt := d.RangeSel("<", v)
	ge := d.RangeSel(">=", v)
	if math.Abs(lt+ge-1) > 1e-9 {
		t.Errorf("< plus >= should be 1, got %v", lt+ge)
	}
	if math.Abs(le-lt-d.EqSel(v)) > 1e-9 {
		t.Errorf("<= minus < should be EqSel")
	}
}

func TestQuickCDFMonotone(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		d := Dist{
			NDV:  1 + int64(r.Intn(10000)),
			Min:  float64(r.Intn(100)),
			Skew: r.Float64() * 2,
		}
		d.Max = d.Min + 1 + r.Float64()*1e6
		prev := -1.0
		for i := 0; i <= 20; i++ {
			v := d.Min + (d.Max-d.Min)*float64(i)/20
			c := d.CDF(v)
			if c < prev-1e-12 || c < 0 || c > 1 {
				return false
			}
			prev = c
		}
		return d.CDF(d.Max) == 1 && d.CDF(d.Min-1) == 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestQuickQuantileInvertsCDF(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		d := Dist{NDV: 2 + int64(r.Intn(5000)), Min: 0, Max: 1e5, Skew: r.Float64() * 1.5}
		q := r.Float64()
		v := d.Quantile(q)
		// CDF at the quantile must reach q, and the previous value must not.
		if d.CDF(v) < q-1e-9 {
			return false
		}
		i := d.IndexOf(v)
		if i > 0 && d.CDF(d.ValueAt(i-1)) >= q {
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestHistogramApproximatesCDF(t *testing.T) {
	d := Dist{NDV: 10000, Min: 0, Max: 1e6, Skew: 0}
	h := BuildHistogram("t.c", d, 64)
	for i := 1; i < 10; i++ {
		v := float64(i) * 1e5
		got := h.CDFEst(v)
		want := d.CDF(v)
		if math.Abs(got-want) > 0.05 {
			t.Errorf("CDFEst(%v) = %v, true %v", v, got, want)
		}
	}
}

func TestHistogramSkewError(t *testing.T) {
	// On a skewed column the histogram (built with dampened skew) must
	// systematically under-estimate the CDF near the head: that is the
	// estimation error the learned utility model exploits.
	d := Dist{NDV: 10000, Min: 0, Max: 1e6, Skew: 1.5}
	h := BuildHistogram("t.skewed", d, 32)
	v := d.ValueAt(200)
	if h.CDFEst(v) >= d.CDF(v) {
		t.Errorf("expected under-estimate at head: est %v true %v", h.CDFEst(v), d.CDF(v))
	}
}

func TestHistogramSelectivityBounds(t *testing.T) {
	d := Dist{NDV: 1000, Min: -50, Max: 50, Skew: 0.5}
	h := BuildHistogram("x", d, 16)
	ops := []string{"=", "!=", "<", "<=", ">", ">="}
	for _, op := range ops {
		for _, v := range []float64{-100, -50, 0, 25, 50, 100} {
			s := h.RangeSelEst(op, v)
			if s < 0 || s > 1 {
				t.Errorf("RangeSelEst(%s, %v) = %v out of [0,1]", op, v, s)
			}
		}
	}
}

func TestHashDeterminism(t *testing.T) {
	if Hash64("abc") != Hash64("abc") {
		t.Error("Hash64 not deterministic")
	}
	if Hash64("abc") == Hash64("abd") {
		t.Error("Hash64 collision on trivial input")
	}
	f := HashFactor("col", 0.5)
	if f < 1/1.5-1e-9 || f > 1.5+1e-9 {
		t.Errorf("HashFactor out of range: %v", f)
	}
}

func TestMeanStdPearson(t *testing.T) {
	xs := []float64{1, 2, 3, 4}
	if Mean(xs) != 2.5 {
		t.Errorf("Mean = %v", Mean(xs))
	}
	if math.Abs(Std(xs)-math.Sqrt(1.25)) > 1e-12 {
		t.Errorf("Std = %v", Std(xs))
	}
	ys := []float64{2, 4, 6, 8}
	if math.Abs(Pearson(xs, ys)-1) > 1e-12 {
		t.Errorf("Pearson = %v, want 1", Pearson(xs, ys))
	}
	neg := []float64{8, 6, 4, 2}
	if math.Abs(Pearson(xs, neg)+1) > 1e-12 {
		t.Errorf("Pearson = %v, want -1", Pearson(xs, neg))
	}
	if Pearson(xs, []float64{5, 5, 5, 5}) != 0 {
		t.Error("Pearson with constant series should be 0")
	}
	if Mean(nil) != 0 || Std(nil) != 0 {
		t.Error("empty-input helpers should return 0")
	}
}
