// Package stats provides the statistical substrate of the simulated DBMS:
// closed-form column value distributions (uniform and Zipf-skewed), the
// equi-depth histograms the "optimizer" sees, and small numeric helpers.
//
// The split between Dist (ground truth) and Histogram (what the optimizer
// estimated at ANALYZE time) is what lets the engine expose both a true
// cost (the paper's actual-runtime stand-in) and a what-if estimated cost
// with realistic, deterministic estimation error.
package stats

import (
	"hash/fnv"
	"math"
)

// Dist is the ground-truth value distribution of a column. The column holds
// NDV distinct values evenly spaced on [Min, Max]; the value at position i
// (0-based, ascending) has frequency proportional to 1/(i+1)^Skew. Skew 0
// is uniform; larger Skew concentrates rows on small values.
type Dist struct {
	NDV  int64
	Min  float64
	Max  float64
	Skew float64
}

// harmonic approximates the generalized harmonic number H(n, s) with the
// integral form; exact shape is irrelevant, monotonicity and smoothness are.
func harmonic(n float64, s float64) float64 {
	if n <= 0 {
		return 0
	}
	if math.Abs(s-1) < 1e-9 {
		return math.Log(n) + 0.5772156649
	}
	return (math.Pow(n, 1-s)-1)/(1-s) + 1
}

// step returns the spacing between adjacent distinct values.
func (d Dist) step() float64 {
	if d.NDV <= 1 {
		return 0
	}
	return (d.Max - d.Min) / float64(d.NDV-1)
}

// ValueAt returns the i-th distinct value (clamped to [0, NDV-1]).
func (d Dist) ValueAt(i int64) float64 {
	if i < 0 {
		i = 0
	}
	if i >= d.NDV {
		i = d.NDV - 1
	}
	return d.Min + float64(i)*d.step()
}

// IndexOf returns the index of the distinct value nearest to v, or -1 if v
// lies outside the domain by more than half a step.
func (d Dist) IndexOf(v float64) int64 {
	if d.NDV <= 1 {
		if math.Abs(v-d.Min) < 1e-9 {
			return 0
		}
		return -1
	}
	idx := math.Round((v - d.Min) / d.step())
	if idx < 0 || idx >= float64(d.NDV) {
		return -1
	}
	if math.Abs(d.ValueAt(int64(idx))-v) > d.step()*1e-6 {
		return -1
	}
	return int64(idx)
}

// CDF returns the fraction of rows whose value is <= v.
func (d Dist) CDF(v float64) float64 {
	if v < d.Min {
		return 0
	}
	if v >= d.Max {
		return 1
	}
	if d.NDV <= 1 {
		return 1
	}
	k := math.Floor((v-d.Min)/d.step()) + 1 // number of distinct values <= v
	if k < 1 {
		return 0
	}
	if k > float64(d.NDV) {
		k = float64(d.NDV)
	}
	if d.Skew == 0 {
		return k / float64(d.NDV)
	}
	return harmonic(k, d.Skew) / harmonic(float64(d.NDV), d.Skew)
}

// EqSel returns the fraction of rows whose value equals v; zero when v is
// not one of the column's distinct values.
func (d Dist) EqSel(v float64) float64 {
	i := d.IndexOf(v)
	if i < 0 {
		return 0
	}
	if d.Skew == 0 {
		return 1 / float64(d.NDV)
	}
	return math.Pow(float64(i+1), -d.Skew) / harmonic(float64(d.NDV), d.Skew)
}

// RangeSel returns the fraction of rows selected by "col op v" under the
// true distribution. op is one of =, !=, <, <=, >, >=.
func (d Dist) RangeSel(op string, v float64) float64 {
	switch op {
	case "=":
		return d.EqSel(v)
	case "!=":
		return clampSel(1 - d.EqSel(v))
	case "<":
		return clampSel(d.CDF(v) - d.EqSel(v))
	case "<=":
		return clampSel(d.CDF(v))
	case ">":
		return clampSel(1 - d.CDF(v))
	case ">=":
		return clampSel(1 - d.CDF(v) + d.EqSel(v))
	}
	return 1
}

// Quantile returns the smallest distinct value v with CDF(v) >= q, by
// binary search over value indices.
func (d Dist) Quantile(q float64) float64 {
	if q <= 0 {
		return d.Min
	}
	if q >= 1 {
		return d.Max
	}
	lo, hi := int64(0), d.NDV-1
	for lo < hi {
		mid := (lo + hi) / 2
		if d.CDF(d.ValueAt(mid)) >= q {
			hi = mid
		} else {
			lo = mid + 1
		}
	}
	return d.ValueAt(lo)
}

func clampSel(s float64) float64 {
	if s < 0 {
		return 0
	}
	if s > 1 {
		return 1
	}
	return s
}

// Hash64 is a deterministic FNV-1a hash of a string, used throughout the
// simulator to derive per-object noise seeds without global state.
func Hash64(s string) uint64 {
	h := fnv.New64a()
	h.Write([]byte(s))
	return h.Sum64()
}

// HashFloat maps a string deterministically to [0, 1).
func HashFloat(s string) float64 {
	return float64(Hash64(s)%1_000_003) / 1_000_003
}

// HashFactor maps a string deterministically to a multiplicative factor in
// [1/(1+amp), 1+amp], symmetric in log space; used to model systematic
// per-object estimation bias (e.g. NDV misestimates).
func HashFactor(s string, amp float64) float64 {
	u := HashFloat(s)*2 - 1 // [-1, 1)
	return math.Exp(u * math.Log(1+amp))
}
