// Package causal implements the lightweight bivariate causal discovery
// scores used for Figure 16 of the paper: given observations of a query
// change type X (binary occurrence) and the resulting IUDR Y, each model
// produces a causation score whose sign indicates whether X causes Y.
// These are the standard small members of the causal discovery toolbox
// the paper uses: a correlation/CDS-style dependency score, an additive
// noise model (ANM) with an HSIC-style residual independence test, and
// RECI (regression error causal inference).
package causal

import (
	"math"

	"github.com/trap-repro/trap/internal/stats"
)

// Model is a bivariate causal scoring model.
type Model interface {
	// Name identifies the model.
	Name() string
	// Score returns a causation score for X → Y: positive means X is
	// inferred to cause Y, magnitude indicates strength.
	Score(x, y []float64) float64
}

// Models returns the three causal models in a fixed order.
func Models() []Model {
	return []Model{CDS{}, ANM{}, RECI{}}
}

// CDS is a correlation-based dependency score: the Pearson correlation of
// X and Y, signed by direction asymmetry of conditional variance (a
// discrete-regressor variant of the conditional distribution similarity
// score).
type CDS struct{}

// Name implements Model.
func (CDS) Name() string { return "CDS" }

// Score implements Model.
func (CDS) Score(x, y []float64) float64 {
	r := stats.Pearson(x, y)
	// Direction: X→Y is favoured when Y's variance conditional on X is
	// smaller than X's variance conditional on Y.
	vyx := conditionalVariance(x, y)
	vxy := conditionalVariance(y, x)
	dir := 1.0
	if vyx > vxy+1e-12 {
		dir = 0.5 // weaker support for the X→Y direction
	}
	return r * dir
}

// conditionalVariance computes the mean variance of b within quantile
// bins of a.
func conditionalVariance(a, b []float64) float64 {
	if len(a) == 0 {
		return 0
	}
	const bins = 4
	minA, maxA := a[0], a[0]
	for _, v := range a {
		if v < minA {
			minA = v
		}
		if v > maxA {
			maxA = v
		}
	}
	if maxA == minA {
		return stats.Std(b) * stats.Std(b)
	}
	groups := make([][]float64, bins)
	for i, v := range a {
		bi := int((v - minA) / (maxA - minA) * bins)
		if bi >= bins {
			bi = bins - 1
		}
		groups[bi] = append(groups[bi], b[i])
	}
	var total, n float64
	for _, g := range groups {
		if len(g) < 2 {
			continue
		}
		sd := stats.Std(g)
		total += sd * sd * float64(len(g))
		n += float64(len(g))
	}
	if n == 0 {
		return 0
	}
	return total / n
}

// ANM is the additive noise model: regress Y on X, score by how
// independent the residuals are of X (independent residuals support
// X → Y). The independence measure is an HSIC-style statistic reduced to
// the correlation between X and squared residuals plus the raw
// residual-X correlation.
type ANM struct{}

// Name implements Model.
func (ANM) Name() string { return "ANM" }

// Score implements Model.
func (ANM) Score(x, y []float64) float64 {
	if len(x) < 3 {
		return 0
	}
	resFwd := regressResiduals(x, y)
	resBwd := regressResiduals(y, x)
	depFwd := dependence(x, resFwd)
	depBwd := dependence(y, resBwd)
	// Effect strength: correlation between X and Y; direction: forward
	// residuals more independent than backward ones.
	strength := math.Abs(stats.Pearson(x, y))
	if strength < 1e-9 {
		return 0
	}
	score := strength * (depBwd - depFwd + 0.5)
	if stats.Pearson(x, y) < 0 {
		score = -score
	}
	return score
}

// regressResiduals returns the residuals of the least-squares fit of b
// on a.
func regressResiduals(a, b []float64) []float64 {
	ma, mb := stats.Mean(a), stats.Mean(b)
	var sxy, sxx float64
	for i := range a {
		sxy += (a[i] - ma) * (b[i] - mb)
		sxx += (a[i] - ma) * (a[i] - ma)
	}
	slope := 0.0
	if sxx > 0 {
		slope = sxy / sxx
	}
	res := make([]float64, len(a))
	for i := range a {
		res[i] = b[i] - (mb + slope*(a[i]-ma))
	}
	return res
}

// dependence is a cheap HSIC surrogate: |corr(a, r)| + |corr(a, r²)|.
func dependence(a, r []float64) float64 {
	r2 := make([]float64, len(r))
	for i, v := range r {
		r2[i] = v * v
	}
	return math.Abs(stats.Pearson(a, r)) + math.Abs(stats.Pearson(a, r2))
}

// RECI is regression error causal inference: the direction with the
// smaller normalized regression error is the causal one.
type RECI struct{}

// Name implements Model.
func (RECI) Name() string { return "RECI" }

// Score implements Model.
func (RECI) Score(x, y []float64) float64 {
	if len(x) < 3 {
		return 0
	}
	errFwd := normalizedError(x, y)
	errBwd := normalizedError(y, x)
	strength := stats.Pearson(x, y)
	// Positive when predicting Y from X is easier than the reverse.
	dir := errBwd - errFwd + 0.25
	return strength * dir
}

// normalizedError is the residual variance of regressing b on a, divided
// by b's variance.
func normalizedError(a, b []float64) float64 {
	res := regressResiduals(a, b)
	sb := stats.Std(b)
	if sb == 0 {
		return 0
	}
	sr := stats.Std(res)
	return (sr * sr) / (sb * sb)
}
