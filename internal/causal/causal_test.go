package causal

import (
	"math/rand"
	"testing"
)

// causalData generates binary X causing noisy Y.
func causalData(n int, effect float64, seed int64) (xs, ys []float64) {
	rng := rand.New(rand.NewSource(seed))
	for i := 0; i < n; i++ {
		x := float64(rng.Intn(2))
		y := effect*x + rng.NormFloat64()*0.3
		xs = append(xs, x)
		ys = append(ys, y)
	}
	return
}

func TestModelsDetectPositiveCause(t *testing.T) {
	xs, ys := causalData(500, 1.0, 1)
	for _, m := range Models() {
		if s := m.Score(xs, ys); s <= 0 {
			t.Errorf("%s: score %v for true positive cause", m.Name(), s)
		}
	}
}

func TestModelsDetectNegativeCause(t *testing.T) {
	xs, ys := causalData(500, -1.0, 2)
	for _, m := range Models() {
		if s := m.Score(xs, ys); s >= 0 {
			t.Errorf("%s: score %v for negative cause", m.Name(), s)
		}
	}
}

func TestModelsNearZeroForIndependent(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	var xs, ys []float64
	for i := 0; i < 800; i++ {
		xs = append(xs, float64(rng.Intn(2)))
		ys = append(ys, rng.NormFloat64())
	}
	strong, _ := causalData(800, 1.0, 4)
	_ = strong
	for _, m := range Models() {
		s := m.Score(xs, ys)
		xs2, ys2 := causalData(800, 1.0, 5)
		sc := m.Score(xs2, ys2)
		if abs(s) >= abs(sc)/2 {
			t.Errorf("%s: independent score %v not clearly below causal %v", m.Name(), s, sc)
		}
	}
}

func TestModelsHandleDegenerateInput(t *testing.T) {
	for _, m := range Models() {
		if s := m.Score([]float64{1, 1}, []float64{2, 2}); s != 0 {
			t.Errorf("%s: constant input score %v", m.Name(), s)
		}
		if s := m.Score(nil, nil); s != 0 {
			t.Errorf("%s: empty input score %v", m.Name(), s)
		}
	}
}

func TestModelNames(t *testing.T) {
	names := map[string]bool{}
	for _, m := range Models() {
		names[m.Name()] = true
	}
	for _, want := range []string{"CDS", "ANM", "RECI"} {
		if !names[want] {
			t.Errorf("missing model %s", want)
		}
	}
}

func abs(x float64) float64 {
	if x < 0 {
		return -x
	}
	return x
}
