// Package par provides the repository's one bounded fan-out primitive.
// Every parallel phase — what-if cost batches (internal/engine), RL
// trajectory rollouts (internal/core) and assessment measurement
// (internal/assess) — runs item functions through ForEach and then
// reduces the indexed results sequentially in index order, which is what
// keeps their floating-point accumulations bit-identical across worker
// counts.
package par

import (
	"context"
	"sync"
	"sync/atomic"
)

// panicBox carries a recovered panic value from a worker goroutine back
// to the calling goroutine.
type panicBox struct{ v any }

// ForEach runs fn(i) for every i in [0, n). With workers <= 1 it is a
// plain sequential loop; with more it fans out over a bounded pool
// pulling indices from a shared counter. fn must write its result into
// caller-owned indexed storage; ForEach itself only orchestrates.
// Cancellation is honored at item granularity, and when several items
// fail the error of the lowest index is returned, so the error choice is
// deterministic regardless of scheduling. A panic in fn is captured and
// re-raised on the calling goroutine after the pool drains, so
// fault-injected panics keep their synchronous crash semantics instead
// of killing the process from an anonymous worker.
func ForEach(ctx context.Context, workers, n int, fn func(i int) error) error {
	return ForEachWorker(ctx, workers, n, func(_, i int) error { return fn(i) })
}

// ForEachWorker is ForEach with the worker's identity passed to fn:
// worker w (0 <= w < workers) never runs two fn calls concurrently, so
// callers can hand each worker exclusive scratch (arenas, key buffers)
// indexed by w instead of sharing pooled state across the fan-out.
// Items are still claimed dynamically, so which items a worker receives
// is schedule-dependent — only the scratch-exclusivity guarantee holds.
// In the sequential path (workers <= 1) every call sees worker 0.
func ForEachWorker(ctx context.Context, workers, n int, fn func(worker, i int) error) error {
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		for i := 0; i < n; i++ {
			if err := ctx.Err(); err != nil {
				return err
			}
			if err := fn(0, i); err != nil {
				return err
			}
		}
		return nil
	}

	var (
		next atomic.Int64
		stop atomic.Bool
		pan  atomic.Pointer[panicBox]
		wg   sync.WaitGroup
	)
	errs := make([]error, n)
	worker := func(w int) {
		defer wg.Done()
		defer func() {
			if r := recover(); r != nil {
				pan.CompareAndSwap(nil, &panicBox{v: r})
				stop.Store(true)
			}
		}()
		for !stop.Load() {
			i := int(next.Add(1)) - 1
			if i >= n {
				return
			}
			if err := ctx.Err(); err != nil {
				errs[i] = err
				stop.Store(true)
				return
			}
			if err := fn(w, i); err != nil {
				errs[i] = err
				stop.Store(true)
				return
			}
		}
	}
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go worker(w)
	}
	wg.Wait()
	if p := pan.Load(); p != nil {
		panic(p.v)
	}
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}
