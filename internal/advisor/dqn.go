package advisor

import (
	"context"
	"math/rand"

	"github.com/trap-repro/trap/internal/costmodel"
	"github.com/trap-repro/trap/internal/engine"
	"github.com/trap-repro/trap/internal/nn"
	"github.com/trap-repro/trap/internal/schema"
	"github.com/trap-repro/trap/internal/workload"
)

// dqnCore is the shared deep-Q machinery of DRLindex and DQN: a
// (state, candidate) Q-network trained from a replay buffer with
// ε-greedy exploration.
type dqnCore struct {
	kind    StateKind
	opt     Options
	prune   bool
	hidden  int
	epsilon float64
	gamma   float64

	q   *scoreNet
	cm  *costmodel.Model
	rng *rand.Rand
}

type transition struct {
	state    []float64
	feats    [][]float64
	mask     []bool
	action   int
	reward   float64
	next     []float64
	nextMask []bool
	done     bool
}

func (d *dqnCore) ensure(seed int64) {
	if d.q != nil {
		return
	}
	d.rng = rand.New(rand.NewSource(seed))
	d.q = newScoreNet(StateLen(d.kind), d.hidden, d.rng)
}

// train runs DQN episodes over the training workloads, stopping at the
// next episode boundary once ctx is done.
func (d *dqnCore) train(ctx context.Context, e *engine.Engine, train []*workload.Workload, c Constraint, episodes int, seed int64) error {
	d.ensure(seed)
	if cm, err := costmodel.TrainOnWorkloads(e, train, 4, seed+1); err == nil {
		d.cm = cm
	}
	opt := nn.NewAdam(2e-3)
	var buffer []transition
	eps := d.epsilon
	for ep := 0; ep < episodes; ep++ {
		if err := ctx.Err(); err != nil {
			return err
		}
		w := train[d.rng.Intn(len(train))]
		env := newEnv(ctx, e, w, c, d.kind, d.opt, d.prune, seed+int64(ep), d.cm)
		for {
			state := env.state()
			mask := env.validMask()
			var act int
			if d.rng.Float64() < eps {
				act = randomValid(mask, d.rng)
			} else {
				g := nn.NewGraph(false)
				act = argmaxMasked(d.q.logits(g, state, env.feats), mask)
			}
			if act < 0 {
				break
			}
			r, done := env.step(act)
			next := env.state()
			nextMask := env.validMask()
			buffer = append(buffer, transition{
				state: state, feats: env.feats, mask: mask, action: act,
				reward: r, next: next, nextMask: nextMask,
				done: done || act == len(env.cands),
			})
			if len(buffer) > 2000 {
				buffer = buffer[len(buffer)-2000:]
			}
			if done || act == len(env.cands) {
				break
			}
		}
		// Replay updates.
		if len(buffer) >= 8 {
			g := nn.NewGraph(true)
			for k := 0; k < 8; k++ {
				tr := buffer[d.rng.Intn(len(buffer))]
				target := tr.reward
				if !tr.done {
					gi := nn.NewGraph(false)
					nq := d.q.logits(gi, tr.next, tr.feats)
					na := argmaxMasked(nq, tr.nextMask)
					if na >= 0 {
						target += d.gamma * nq.W[na]
					}
				}
				logits := d.q.logits(g, tr.state, tr.feats)
				// MSE on the chosen action's Q value.
				diff := logits.W[tr.action] - target
				logits.G[tr.action] += diff
			}
			g.Backward()
			d.q.params.ClipGrads(5)
			opt.Step(d.q.params)
		}
		if eps > 0.05 {
			eps *= 0.98
		}
	}
	return nil
}

// recommend runs a greedy Q rollout.
func (d *dqnCore) recommend(e *engine.Engine, w *workload.Workload, c Constraint, seed int64) schema.Config {
	d.ensure(seed)
	env := newEnv(context.Background(), e, w, c, d.kind, d.opt, d.prune, seed, d.cm)
	for {
		state := env.state()
		mask := env.validMask()
		g := nn.NewGraph(false)
		act := argmaxMasked(d.q.logits(g, state, env.feats), mask)
		if act < 0 || act == len(env.cands) {
			break
		}
		if _, done := env.step(act); done {
			break
		}
	}
	return env.cfg
}

func randomValid(mask []bool, rng *rand.Rand) int {
	var valid []int
	for i, ok := range mask {
		if ok {
			valid = append(valid, i)
		}
	}
	if len(valid) == 0 {
		return -1
	}
	return valid[rng.Intn(len(valid))]
}

// DRLindex is the cluster-database DQN advisor of Sadri et al. (IDEAS
// 2020): a coarse column-matrix state, single-column candidates only, and
// a #index constraint.
type DRLindex struct {
	// State selects the representation (coarse by default; Figure 12).
	State StateKind
	// Episodes is the number of training episodes.
	Episodes int
	// Seed drives all randomness.
	Seed int64

	core *dqnCore
}

// NewDRLindex builds a DRLindex advisor with paper-faithful defaults.
func NewDRLindex(seed int64) *DRLindex {
	return &DRLindex{State: CoarseState, Episodes: 120, Seed: seed}
}

// Name implements Advisor.
func (a *DRLindex) Name() string { return "DRLindex" }

func (a *DRLindex) ensure() {
	if a.core == nil {
		a.core = &dqnCore{
			kind:    a.State,
			opt:     Options{MultiColumn: false, Interaction: true},
			prune:   true,
			hidden:  32,
			epsilon: 0.5,
			gamma:   0.95,
		}
	}
}

// Train implements Trainable.
func (a *DRLindex) Train(e *engine.Engine, train []*workload.Workload, c Constraint) error {
	return a.TrainCtx(context.Background(), e, train, c)
}

// TrainCtx implements CtxTrainable: training stops at the next episode
// boundary once ctx is done.
func (a *DRLindex) TrainCtx(ctx context.Context, e *engine.Engine, train []*workload.Workload, c Constraint) error {
	a.ensure()
	return a.core.train(ctx, e, train, c, a.Episodes, a.Seed)
}

// Recommend implements Advisor.
func (a *DRLindex) Recommend(e *engine.Engine, w *workload.Workload, c Constraint) (schema.Config, error) {
	a.ensure()
	return validate(a.Name(), e.Schema(), a.core.recommend(e, w, c, a.Seed), c)
}

// DQN is the index advisor of Lan et al. (CIKM 2020): deep Q-learning
// with five heuristic candidate rules (equality, range, join and
// order/group columns plus two-column combinations — our Candidates
// generator), multi-column indexes, and a #index constraint.
type DQN struct {
	// State selects the representation (fine-ish by default; Figure 12).
	State StateKind
	// Pruning enables the heuristic candidate rules (Figure 13); when
	// disabled the pool is polluted with irrelevant indexes.
	Pruning bool
	// Episodes is the number of training episodes.
	Episodes int
	// Seed drives all randomness.
	Seed int64

	core *dqnCore
}

// NewDQN builds a DQN advisor with paper-faithful defaults.
func NewDQN(seed int64) *DQN {
	return &DQN{State: FineState, Pruning: true, Episodes: 120, Seed: seed}
}

// Name implements Advisor.
func (a *DQN) Name() string { return "DQN" }

func (a *DQN) ensure() {
	if a.core == nil {
		a.core = &dqnCore{
			kind:    a.State,
			opt:     DefaultOptions(),
			prune:   a.Pruning,
			hidden:  32,
			epsilon: 0.5,
			gamma:   0.95,
		}
	}
}

// Train implements Trainable.
func (a *DQN) Train(e *engine.Engine, train []*workload.Workload, c Constraint) error {
	return a.TrainCtx(context.Background(), e, train, c)
}

// TrainCtx implements CtxTrainable: training stops at the next episode
// boundary once ctx is done.
func (a *DQN) TrainCtx(ctx context.Context, e *engine.Engine, train []*workload.Workload, c Constraint) error {
	a.ensure()
	return a.core.train(ctx, e, train, c, a.Episodes, a.Seed)
}

// Recommend implements Advisor.
func (a *DQN) Recommend(e *engine.Engine, w *workload.Workload, c Constraint) (schema.Config, error) {
	a.ensure()
	return validate(a.Name(), e.Schema(), a.core.recommend(e, w, c, a.Seed), c)
}
