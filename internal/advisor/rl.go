package advisor

import (
	"context"
	"math/rand"

	"github.com/trap-repro/trap/internal/costmodel"
	"github.com/trap-repro/trap/internal/engine"
	"github.com/trap-repro/trap/internal/nn"
	"github.com/trap-repro/trap/internal/schema"
	"github.com/trap-repro/trap/internal/sqlx"
	"github.com/trap-repro/trap/internal/workload"
)

// scoreNet scores (state, candidate) pairs with a small MLP and provides a
// separate stop head over the state — a pointer-network-style architecture
// that handles variable action spaces with invalid-action masking.
type scoreNet struct {
	params *nn.Params
	h1     *nn.Dense
	h2     *nn.Dense
	stop1  *nn.Dense
	stop2  *nn.Dense
}

func newScoreNet(stateLen, hidden int, rng *rand.Rand) *scoreNet {
	p := &nn.Params{}
	return &scoreNet{
		params: p,
		h1:     nn.NewDense(p, "h1", stateLen+candFeatLen, hidden, rng),
		h2:     nn.NewDense(p, "h2", hidden, 1, rng),
		stop1:  nn.NewDense(p, "stop1", stateLen, hidden, rng),
		stop2:  nn.NewDense(p, "stop2", hidden, 1, rng),
	}
}

// logits scores every candidate plus the terminal stop action (last entry).
func (n *scoreNet) logits(g *nn.Graph, state []float64, feats [][]float64) *nn.Tensor {
	sv := nn.Vector(state...)
	parts := make([]*nn.Tensor, 0, len(feats)+1)
	for _, f := range feats {
		in := nn.Vector(append(append([]float64(nil), state...), f...)...)
		parts = append(parts, n.h2.Apply(g, g.Tanh(n.h1.Apply(g, in))))
	}
	parts = append(parts, n.stop2.Apply(g, g.Tanh(n.stop1.Apply(g, sv))))
	return g.Concat(parts...)
}

// valueNet is a small state-value MLP (the PPO baseline).
type valueNet struct {
	params *nn.Params
	h1, h2 *nn.Dense
}

func newValueNet(stateLen, hidden int, rng *rand.Rand) *valueNet {
	p := &nn.Params{}
	return &valueNet{
		params: p,
		h1:     nn.NewDense(p, "v1", stateLen, hidden, rng),
		h2:     nn.NewDense(p, "v2", hidden, 1, rng),
	}
}

func (n *valueNet) value(g *nn.Graph, state []float64) *nn.Tensor {
	return n.h2.Apply(g, g.Tanh(n.h1.Apply(g, nn.Vector(state...))))
}

// env is the index-selection episode environment shared by the RL
// advisors: the agent adds one index per step until it stops, exhausts
// the constraint, or hits the step limit.
type env struct {
	// ctx bounds the episode's runtime-costing calls; a canceled context
	// makes envCost return 0 so the episode winds down without draining
	// full costing loops.
	ctx   context.Context
	e     *engine.Engine
	w     *workload.Workload
	c     Constraint
	kind  StateKind
	prune bool

	cands    []schema.Index
	feats    [][]float64
	selected []bool

	cfg      schema.Config
	initCost float64
	curCost  float64
	steps    int
	maxSteps int

	// cm is the advisor's learned cost model (nil before training): the
	// execution-feedback signal that lets learning-based advisors correct
	// what-if estimation error.
	cm *costmodel.Model
}

// envCost evaluates the workload under the configuration with the
// runtime stand-in: learning-based advisors are rewarded with observed
// execution cost rather than optimizer estimates — the advantage over
// what-if-driven heuristics they claim (and the paper verifies).
func (v *env) envCost(cfg schema.Config) float64 {
	c, err := workload.RuntimeCostCtx(v.ctx, v.e, v.w, cfg)
	if err != nil {
		return 0
	}
	return c
}

// newEnv prepares an episode. When pruning is disabled (Figure 13), the
// candidate pool is polluted with syntactically irrelevant noise indexes
// and only hard-infeasible actions are masked.
func newEnv(ctx context.Context, e *engine.Engine, w *workload.Workload, c Constraint, kind StateKind, opt Options, prune bool, noiseSeed int64, cm *costmodel.Model) *env {
	cands := Candidates(e.Schema(), w, opt)
	if !prune {
		cands = append(cands, noiseCandidates(e.Schema(), w, len(cands), noiseSeed)...)
	}
	v := &env{
		ctx: ctx,
		e:   e, w: w, c: c, kind: kind, prune: prune,
		cands: cands, selected: make([]bool, len(cands)),
		maxSteps: 12,
		cm:       cm,
	}
	if c.MaxIndexes > 0 && c.MaxIndexes < v.maxSteps {
		v.maxSteps = c.MaxIndexes
	}
	v.feats = make([][]float64, len(cands))
	for i, ix := range cands {
		v.feats[i] = candidateFeaturesWith(e, w, ix, cm)
	}
	v.initCost = v.envCost(nil)
	v.curCost = v.initCost
	return v
}

// noiseCandidates builds irrelevant indexes on columns the workload never
// touches — what an advisor faces without candidate pruning.
func noiseCandidates(s *schema.Schema, w *workload.Workload, n int, seed int64) []schema.Index {
	rng := rand.New(rand.NewSource(seed))
	touched := map[sqlx.ColumnRef]bool{}
	for _, c := range w.Columns() {
		touched[c] = true
	}
	var out []schema.Index
	for tries := 0; len(out) < n && tries < n*20; tries++ {
		t := s.Tables[rng.Intn(len(s.Tables))]
		col := t.Columns[rng.Intn(len(t.Columns))]
		if touched[sqlx.ColumnRef{Table: t.Name, Column: col.Name}] {
			continue
		}
		out = append(out, schema.Index{Table: t.Name, Columns: []string{col.Name}})
	}
	return out
}

// state returns the current state vector.
func (v *env) state() []float64 {
	return StateVec(v.kind, v.e, v.w, v.cfg, v.c)
}

// validMask marks selectable actions; the stop action (index len(cands))
// is always valid. With pruning enabled the mask also removes actions
// that would exceed the constraint, repeat a selection, or violate the
// multi-column precondition (leading column must be filtered or joined).
func (v *env) validMask() []bool {
	mask := make([]bool, len(v.cands)+1)
	for i, ix := range v.cands {
		if v.selected[i] {
			continue
		}
		if !v.prune {
			mask[i] = true
			continue
		}
		if !v.c.Fits(v.e.Schema(), v.cfg, ix) {
			continue
		}
		// Precondition: multi-column indexes need a predicate or join on
		// the leading column (feats[2]/feats[3] are those frequencies).
		if len(ix.Columns) > 1 && v.feats[i][2] == 0 && v.feats[i][3] == 0 {
			continue
		}
		mask[i] = true
	}
	// The terminal action is only offered when nothing else is feasible:
	// the paper's SWIRL has no explicit stop — episodes end when the
	// budget is exhausted (a large budget merely "allows advisors to
	// return more indexes").
	any := false
	for i := 0; i < len(v.cands); i++ {
		if mask[i] {
			any = true
			break
		}
	}
	mask[len(v.cands)] = !any
	return mask
}

// step applies action a (len(cands) = stop), returning the reward and
// whether the episode ended. Rewards are relative runtime-cost
// reductions (see envCost).
func (v *env) step(a int) (float64, bool) {
	v.steps++
	if a == len(v.cands) {
		return 0, true
	}
	ix := v.cands[a]
	if v.selected[a] || !v.c.Fits(v.e.Schema(), v.cfg, ix) {
		// Infeasible action (reachable only without pruning): wasted step.
		v.selected[a] = true
		return -0.02, v.steps >= v.maxSteps
	}
	v.selected[a] = true
	v.cfg = v.cfg.Add(ix)
	nc := v.envCost(v.cfg)
	r := 0.0
	if v.initCost > 0 {
		r = (v.curCost - nc) / v.initCost
	}
	v.curCost = nc
	return r, v.steps >= v.maxSteps
}

// sampleMasked draws an action from softmax(logits) restricted to the
// mask, returning the action and its log-probability.
func sampleMasked(logits *nn.Tensor, mask []bool, rng *rand.Rand) (int, float64) {
	probs := maskedProbs(logits, mask)
	u := rng.Float64()
	acc := 0.0
	last := -1
	for i, p := range probs {
		if p == 0 {
			continue
		}
		acc += p
		last = i
		if u <= acc {
			return i, logProb(probs, i)
		}
	}
	return last, logProb(probs, last)
}

// argmaxMasked returns the highest-scoring valid action.
func argmaxMasked(logits *nn.Tensor, mask []bool) int {
	best := -1
	for i := 0; i < logits.R; i++ {
		if !mask[i] {
			continue
		}
		if best < 0 || logits.W[i] > logits.W[best] {
			best = i
		}
	}
	return best
}

func maskedProbs(logits *nn.Tensor, mask []bool) []float64 {
	probs := make([]float64, logits.R)
	maxv := 0.0
	first := true
	for i := 0; i < logits.R; i++ {
		if mask[i] && (first || logits.W[i] > maxv) {
			maxv = logits.W[i]
			first = false
		}
	}
	var sum float64
	for i := 0; i < logits.R; i++ {
		if mask[i] {
			probs[i] = expSafe(logits.W[i] - maxv)
			sum += probs[i]
		}
	}
	if sum > 0 {
		for i := range probs {
			probs[i] /= sum
		}
	}
	return probs
}

func logProb(probs []float64, i int) float64 {
	p := probs[i]
	if p < 1e-12 {
		p = 1e-12
	}
	return logSafe(p)
}

// maskedCrossEntropy seeds -weight·log p(target) gradients on the masked
// softmax of logits and returns the loss.
func maskedCrossEntropy(logits *nn.Tensor, mask []bool, target int, weight float64) float64 {
	probs := maskedProbs(logits, mask)
	loss := -weight * logProb(probs, target)
	for i := range probs {
		if !mask[i] {
			continue
		}
		grad := probs[i]
		if i == target {
			grad -= 1
		}
		logits.G[i] += weight * grad
	}
	return loss
}
