// Package advisor implements the ten index advisors assessed in the paper
// (Table III): six heuristic advisors — Extend, DB2Advis, AutoAdmin, Drop,
// Relaxation, DTA — and four learning-based ones — SWIRL (PPO), DRLindex
// (coarse-state DQN), DQN (rule-pruned DQN) and MCTS (UCT). All advisors
// interact with the DBMS only through what-if cost estimates, matching the
// opaque-box setting TRAP assumes.
//
// The package also exposes the ablation switches the paper's Section VI
// analysis flips: state-representation granularity (Figure 12), candidate
// pruning (Figure 13), index-interaction awareness (Figure 14), and
// multi-column index usage (Figure 15).
package advisor

import (
	"context"
	"fmt"
	"sort"

	"github.com/trap-repro/trap/internal/engine"
	"github.com/trap-repro/trap/internal/schema"
	"github.com/trap-repro/trap/internal/sqlx"
	"github.com/trap-repro/trap/internal/workload"
)

// Constraint is the tuning constraint: a storage budget in bytes, a
// maximum index count, or both (zero means unconstrained).
type Constraint struct {
	StorageBytes float64
	MaxIndexes   int
}

// Fits reports whether adding ix to cfg stays within the constraint.
func (c Constraint) Fits(s *schema.Schema, cfg schema.Config, ix schema.Index) bool {
	if c.MaxIndexes > 0 && len(cfg)+1 > c.MaxIndexes {
		return false
	}
	if c.StorageBytes > 0 && cfg.SizeBytes(s)+ix.SizeBytes(s) > c.StorageBytes {
		return false
	}
	return true
}

// Satisfied reports whether the whole configuration meets the constraint.
func (c Constraint) Satisfied(s *schema.Schema, cfg schema.Config) bool {
	if c.MaxIndexes > 0 && len(cfg) > c.MaxIndexes {
		return false
	}
	if c.StorageBytes > 0 && cfg.SizeBytes(s) > c.StorageBytes {
		return false
	}
	return true
}

// Advisor selects an index configuration for a workload (Definition 3.1).
type Advisor interface {
	// Name identifies the advisor ("Extend", "SWIRL", ...).
	Name() string
	// Recommend returns an index configuration within the constraint.
	Recommend(e *engine.Engine, w *workload.Workload, c Constraint) (schema.Config, error)
}

// Trainable is a learning-based advisor that must be trained on workloads
// before recommending.
type Trainable interface {
	Advisor
	// Train fits the advisor on training workloads under the constraint.
	Train(e *engine.Engine, train []*workload.Workload, c Constraint) error
}

// CtxTrainable is a Trainable advisor whose training honors cooperative
// cancellation: training stops at the next episode boundary once ctx is
// done and returns ctx.Err(). The RL advisors implement it; callers that
// hold a context should prefer TrainCtx over Train.
type CtxTrainable interface {
	Trainable
	// TrainCtx is Train bounded by ctx.
	TrainCtx(ctx context.Context, e *engine.Engine, train []*workload.Workload, c Constraint) error
}

// Options are the design knobs shared by the advisors, exposed for the
// Section VI ablations.
type Options struct {
	// MultiColumn enables multi-column index candidates (Figure 15).
	MultiColumn bool
	// MaxWidth caps multi-column index width (default 2).
	MaxWidth int
	// Interaction makes benefit estimates configuration-aware: the benefit
	// of an index is measured with the already-selected indexes in place.
	// When false, every index is priced in isolation and multi-index
	// benefits are averaged (Figure 14's "w/o interaction").
	Interaction bool
}

// DefaultOptions returns the paper-faithful settings.
func DefaultOptions() Options {
	return Options{MultiColumn: true, MaxWidth: 2, Interaction: true}
}

// Candidates generates the syntactically relevant candidate indexes for a
// workload: single-column indexes on every filter/join/order/group column,
// and (when enabled) multi-column permutations of columns co-occurring in
// the same query on the same table, equality columns leading.
func Candidates(s *schema.Schema, w *workload.Workload, opt Options) []schema.Index {
	if opt.MaxWidth < 2 {
		opt.MaxWidth = 2
	}
	seen := map[string]bool{}
	var out []schema.Index
	add := func(ix schema.Index) {
		k := ix.Key()
		if !seen[k] {
			seen[k] = true
			out = append(out, ix)
		}
	}
	for _, it := range w.Items {
		q := it.Query
		var eqCols, rangeCols, otherCols []sqlx.ColumnRef
		for _, p := range q.Filters {
			if p.Op == sqlx.OpEq {
				eqCols = append(eqCols, p.Col)
			} else if p.Op != sqlx.OpNe {
				rangeCols = append(rangeCols, p.Col)
			}
		}
		otherCols = append(otherCols, q.JoinColumns()...)
		otherCols = append(otherCols, q.GroupBy...)
		otherCols = append(otherCols, q.OrderBy...)

		all := append(append(append([]sqlx.ColumnRef(nil), eqCols...), rangeCols...), otherCols...)
		for _, c := range all {
			add(schema.Index{Table: c.Table, Columns: []string{c.Column}})
		}
		if !opt.MultiColumn {
			continue
		}
		// Two-column candidates: equality columns lead, then a range or
		// order column of the same table; also eq-eq pairs.
		lead := append(append([]sqlx.ColumnRef(nil), eqCols...), otherCols...)
		second := append(append(append([]sqlx.ColumnRef(nil), eqCols...), rangeCols...), otherCols...)
		for _, a := range lead {
			for _, b := range second {
				if a.Table != b.Table || a.Column == b.Column {
					continue
				}
				add(schema.Index{Table: a.Table, Columns: []string{a.Column, b.Column}})
			}
		}
		// ORDER BY / GROUP BY composite prefixes (sort avoidance).
		addComposite := func(cols []sqlx.ColumnRef) {
			if len(cols) < 2 || len(cols) > opt.MaxWidth {
				return
			}
			t := cols[0].Table
			names := make([]string, 0, len(cols))
			for _, c := range cols {
				if c.Table != t {
					return
				}
				names = append(names, c.Column)
			}
			add(schema.Index{Table: t, Columns: names})
		}
		addComposite(q.OrderBy)
		addComposite(q.GroupBy)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Key() < out[j].Key() })
	return out
}

// WhatIfCost is the estimated workload cost the advisors optimize — one
// what-if optimizer call per query.
func WhatIfCost(e *engine.Engine, w *workload.Workload, cfg schema.Config) float64 {
	c, err := workload.Cost(e, w, cfg, engine.ModeEstimated)
	if err != nil {
		return 0
	}
	return c
}

// Benefit estimates the cost reduction of adding ix to cfg. With
// interaction enabled the benefit is configuration-aware; without it the
// index is priced against the empty configuration in isolation.
func Benefit(e *engine.Engine, w *workload.Workload, cfg schema.Config, ix schema.Index, opt Options) float64 {
	if opt.Interaction {
		return WhatIfCost(e, w, cfg) - WhatIfCost(e, w, cfg.Add(ix))
	}
	return WhatIfCost(e, w, nil) - WhatIfCost(e, w, schema.Config{ix})
}

// UsedIndexes returns the indexes of cfg that appear in the workload's
// cheapest plans — how DB2Advis attributes benefit from one what-if call.
func UsedIndexes(e *engine.Engine, w *workload.Workload, cfg schema.Config) map[string]bool {
	used := map[string]bool{}
	for _, it := range w.Items {
		p, err := e.Plan(it.Query, cfg, engine.ModeEstimated)
		if err != nil {
			continue
		}
		p.Walk(func(n *engine.PlanNode) {
			if n.Index != nil {
				used[n.Index.Key()] = true
			}
		})
	}
	return used
}

// validate double-checks an advisor's output against the constraint.
func validate(name string, s *schema.Schema, cfg schema.Config, c Constraint) (schema.Config, error) {
	if !c.Satisfied(s, cfg) {
		return nil, fmt.Errorf("advisor %s: configuration %s violates constraint", name, cfg.Key())
	}
	return cfg, nil
}
