package advisor

import "math"

func expSafe(x float64) float64 {
	if x < -700 {
		return 0
	}
	if x > 700 {
		x = 700
	}
	return math.Exp(x)
}

func logSafe(x float64) float64 {
	if x <= 0 {
		return -27.6 // log(1e-12)
	}
	return math.Log(x)
}
