package advisor

import (
	"sort"

	"github.com/trap-repro/trap/internal/engine"
	"github.com/trap-repro/trap/internal/schema"
	"github.com/trap-repro/trap/internal/workload"
)

// Extend is the recursive index-extension advisor of Schlosser et al.
// (ICDE 2019): greedily add the candidate with the best benefit-per-storage
// ratio, where candidates are single-column indexes plus extensions of
// already selected indexes by one attribute. Storage-constrained.
type Extend struct {
	Opt Options
}

// Name implements Advisor.
func (a *Extend) Name() string { return "Extend" }

// Recommend implements Advisor.
func (a *Extend) Recommend(e *engine.Engine, w *workload.Workload, c Constraint) (schema.Config, error) {
	opt := a.Opt
	s := e.Schema()
	singles := Candidates(s, w, Options{MultiColumn: false})
	relevant := relevantColumnsByTable(w)
	var cfg schema.Config
	var trial schema.Config // candidate-scan scratch, reused across rounds
	cur := WhatIfCost(e, w, cfg)
	for {
		// Candidate pool: unused single-column indexes plus one-attribute
		// extensions of selected indexes (the "extend" move).
		var pool []schema.Index
		for _, ix := range singles {
			if !cfg.Contains(ix) {
				pool = append(pool, ix)
			}
		}
		if opt.MultiColumn {
			maxW := opt.MaxWidth
			if maxW < 2 {
				maxW = 2
			}
			for _, ix := range cfg {
				if len(ix.Columns) >= maxW+1 { // Extend may go one wider
					continue
				}
				for _, col := range relevant[ix.Table] {
					dup := false
					for _, have := range ix.Columns {
						if have == col {
							dup = true
						}
					}
					if dup {
						continue
					}
					ext := schema.Index{Table: ix.Table, Columns: append(append([]string(nil), ix.Columns...), col)}
					if !cfg.Contains(ext) {
						pool = append(pool, ext)
					}
				}
			}
		}
		type scored struct {
			ix    schema.Index
			base  schema.Index
			repl  bool
			ratio float64
			cost  float64
		}
		best := scored{ratio: 0}
		// trial is rebuilt in place per candidate; what-if costing does
		// not retain the slice, and only the winning move is materialized
		// as a fresh Config after the scan, so the greedy inner loop
		// allocates no configurations.
		for _, ix := range pool {
			trial = trial[:0]
			// Extension replaces its base index.
			repl := false
			var base schema.Index
			if len(ix.Columns) > 1 {
				base = schema.Index{Table: ix.Table, Columns: ix.Columns[:len(ix.Columns)-1]}
				repl = cfg.Contains(base)
			}
			for _, have := range cfg {
				if repl && have.Equal(base) {
					continue
				}
				trial = append(trial, have)
			}
			trial = append(trial, ix)
			if !c.Satisfied(s, trial) {
				continue
			}
			nc := WhatIfCost(e, w, trial)
			ben := cur - nc
			if !opt.Interaction {
				// Isolation pricing (Figure 14 ablation): each index is
				// valued as if it were the only one.
				ben = WhatIfCost(e, w, nil) - WhatIfCost(e, w, schema.Config{ix})
			}
			size := ix.SizeBytes(s)
			if size <= 0 {
				continue
			}
			ratio := ben / size
			if ratio > best.ratio {
				best = scored{ix: ix, base: base, repl: repl, ratio: ratio, cost: nc}
			}
		}
		if best.ratio <= 0 {
			break
		}
		if best.repl {
			cfg = cfg.Remove(best.base)
		}
		cfg = cfg.Add(best.ix)
		cur = best.cost
	}
	return validate(a.Name(), s, cfg, c)
}

// relevantColumnsByTable lists each table's syntactically relevant columns.
func relevantColumnsByTable(w *workload.Workload) map[string][]string {
	// Workload.Columns already returns distinct refs, so no extra dedup.
	m := map[string][]string{}
	for _, col := range w.Columns() {
		m[col.Table] = append(m[col.Table], col.Column)
	}
	return m
}

// DB2Advis is the DB2 advisor of Valentin et al. (ICDE 2000): a single
// what-if call with every candidate built at once attributes benefit to
// the indexes actually used, followed by a benefit-per-storage knapsack.
// Its one-shot benefit attribution ignores index interaction, the source
// of the oscillation the paper observes.
type DB2Advis struct {
	Opt Options
}

// Name implements Advisor.
func (a *DB2Advis) Name() string { return "DB2Advis" }

// Recommend implements Advisor.
func (a *DB2Advis) Recommend(e *engine.Engine, w *workload.Workload, c Constraint) (schema.Config, error) {
	s := e.Schema()
	cands := Candidates(s, w, a.Opt)
	if len(cands) == 0 {
		return schema.Config{}, nil
	}
	all := schema.Config(cands)
	baseCost := WhatIfCost(e, w, nil)

	// One what-if evaluation with everything built: per-query benefit is
	// split evenly among the indexes its plan uses.
	benefit := map[string]float64{}
	for _, it := range w.Items {
		p0, err0 := e.Plan(it.Query, nil, engine.ModeEstimated)
		p1, err1 := e.Plan(it.Query, all, engine.ModeEstimated)
		if err0 != nil || err1 != nil {
			continue
		}
		var used []string
		p1.Walk(func(n *engine.PlanNode) {
			if n.Index != nil {
				used = append(used, n.Index.Key())
			}
		})
		gain := (p0.Cost - p1.Cost) * it.Weight
		if gain <= 0 || len(used) == 0 {
			continue
		}
		share := gain / float64(len(used))
		for _, k := range used {
			benefit[k] += share
		}
	}
	_ = baseCost

	type scored struct {
		ix    schema.Index
		ratio float64
	}
	var ranked []scored
	for _, ix := range cands {
		b := benefit[ix.Key()]
		if b <= 0 {
			continue
		}
		ranked = append(ranked, scored{ix: ix, ratio: b / ix.SizeBytes(s)})
	}
	sort.Slice(ranked, func(i, j int) bool { return ranked[i].ratio > ranked[j].ratio })
	var cfg schema.Config
	for _, r := range ranked {
		if c.Fits(s, cfg, r.ix) {
			cfg = cfg.Add(r.ix)
		}
	}
	return validate(a.Name(), s, cfg, c)
}

// AutoAdmin is the cost-driven greedy advisor of Chaudhuri & Narasayya
// (VLDB 1997): iteratively add the candidate that minimizes the what-if
// workload cost, up to the #index constraint.
type AutoAdmin struct {
	Opt Options
}

// Name implements Advisor.
func (a *AutoAdmin) Name() string { return "AutoAdmin" }

// Recommend implements Advisor.
func (a *AutoAdmin) Recommend(e *engine.Engine, w *workload.Workload, c Constraint) (schema.Config, error) {
	s := e.Schema()
	cands := Candidates(s, w, a.Opt)
	var cfg schema.Config
	cur := WhatIfCost(e, w, cfg)
	for {
		bestCost := cur
		var bestIx *schema.Index
		for i := range cands {
			ix := cands[i]
			if cfg.Contains(ix) || !c.Fits(s, cfg, ix) {
				continue
			}
			var nc float64
			if a.Opt.Interaction {
				nc = WhatIfCost(e, w, cfg.Add(ix))
			} else {
				// Isolation pricing: average the standalone benefits.
				nc = cur - Benefit(e, w, cfg, ix, a.Opt)
			}
			if nc < bestCost-1e-9 {
				bestCost = nc
				bestIx = &cands[i]
			}
		}
		if bestIx == nil {
			break
		}
		cfg = cfg.Add(*bestIx)
		cur = WhatIfCost(e, w, cfg)
	}
	return validate(a.Name(), s, cfg, c)
}

// Drop is Whang's decremental heuristic (1987): start from all
// single-column candidates and repeatedly drop the least useful index
// while the constraint is violated or the drop is (near) free.
type Drop struct{}

// Name implements Advisor.
func (a *Drop) Name() string { return "Drop" }

// Recommend implements Advisor.
func (a *Drop) Recommend(e *engine.Engine, w *workload.Workload, c Constraint) (schema.Config, error) {
	s := e.Schema()
	cfg := schema.Config(Candidates(s, w, Options{MultiColumn: false}))
	for len(cfg) > 0 {
		cur := WhatIfCost(e, w, cfg)
		var worst *schema.Index
		worstPenalty := 0.0
		for i := range cfg {
			penalty := WhatIfCost(e, w, cfg.Remove(cfg[i])) - cur
			if worst == nil || penalty < worstPenalty {
				worst = &cfg[i]
				worstPenalty = penalty
			}
		}
		violated := !c.Satisfied(s, cfg)
		if !violated && worstPenalty > 1e-9 {
			break // every remaining index is useful and we fit
		}
		cfg = cfg.Remove(*worst)
	}
	return validate(a.Name(), s, cfg, c)
}

// Relaxation is Bruno & Chaudhuri's relaxation-based advisor (SIGMOD
// 2005): start from the union of per-query optimal configurations and
// relax — remove an index or shrink a multi-column index to its prefix —
// choosing the transformation with the least penalty per storage saved,
// until the constraint is met.
type Relaxation struct {
	Opt Options
}

// Name implements Advisor.
func (a *Relaxation) Name() string { return "Relaxation" }

// Recommend implements Advisor.
func (a *Relaxation) Recommend(e *engine.Engine, w *workload.Workload, c Constraint) (schema.Config, error) {
	s := e.Schema()
	// Per-query optimal configuration: the indexes used by the query's
	// plan when every candidate is available.
	cands := Candidates(s, w, a.Opt)
	all := schema.Config(cands)
	union := schema.Config{}
	for _, it := range w.Items {
		p, err := e.Plan(it.Query, all, engine.ModeEstimated)
		if err != nil {
			continue
		}
		p.Walk(func(n *engine.PlanNode) {
			if n.Index != nil {
				union = union.Add(*n.Index)
			}
		})
	}
	cfg := union
	for !c.Satisfied(s, cfg) && len(cfg) > 0 {
		cur := WhatIfCost(e, w, cfg)
		type move struct {
			next    schema.Config
			penalty float64
			saved   float64
		}
		var best *move
		consider := func(next schema.Config) {
			saved := cfg.SizeBytes(s) - next.SizeBytes(s)
			if saved <= 0 {
				return
			}
			m := move{next: next, penalty: WhatIfCost(e, w, next) - cur, saved: saved}
			if best == nil || m.penalty/m.saved < best.penalty/best.saved {
				best = &m
			}
		}
		for i := range cfg {
			consider(cfg.Remove(cfg[i]))
			if len(cfg[i].Columns) > 1 {
				prefix := schema.Index{Table: cfg[i].Table, Columns: cfg[i].Columns[:len(cfg[i].Columns)-1]}
				consider(cfg.Remove(cfg[i]).Add(prefix))
			}
		}
		if best == nil {
			break
		}
		cfg = best.next
	}
	return validate(a.Name(), s, cfg, c)
}

// DTA is the anytime advisor of Chaudhuri & Narasayya (2020): seed the
// search with the indexes of per-query optimal plans, then greedily add
// candidates by benefit-per-storage under an evaluation budget.
type DTA struct {
	Opt Options
	// MaxEvaluations is the anytime budget (what-if calls per step);
	// zero means a generous default.
	MaxEvaluations int
}

// Name implements Advisor.
func (a *DTA) Name() string { return "DTA" }

// Recommend implements Advisor.
func (a *DTA) Recommend(e *engine.Engine, w *workload.Workload, c Constraint) (schema.Config, error) {
	s := e.Schema()
	budget := a.MaxEvaluations
	if budget <= 0 {
		budget = 400
	}
	cands := Candidates(s, w, a.Opt)
	all := schema.Config(cands)
	// Seed: indexes used by per-query optimal plans, added while they fit.
	seedSet := map[string]schema.Index{}
	for _, it := range w.Items {
		p, err := e.Plan(it.Query, all, engine.ModeEstimated)
		if err != nil {
			continue
		}
		p.Walk(func(n *engine.PlanNode) {
			if n.Index != nil {
				seedSet[n.Index.Key()] = *n.Index
			}
		})
	}
	var seeds []schema.Index
	for _, ix := range seedSet {
		seeds = append(seeds, ix)
	}
	sort.Slice(seeds, func(i, j int) bool { return seeds[i].Key() < seeds[j].Key() })
	var cfg schema.Config
	for _, ix := range seeds {
		if c.Fits(s, cfg, ix) {
			cfg = cfg.Add(ix)
		}
	}
	cur := WhatIfCost(e, w, cfg)
	evals := 0
	for evals < budget {
		type scored struct {
			ix    schema.Index
			ratio float64
			cost  float64
		}
		best := scored{ratio: 0}
		for _, ix := range cands {
			if cfg.Contains(ix) || !c.Fits(s, cfg, ix) {
				continue
			}
			nc := WhatIfCost(e, w, cfg.Add(ix))
			evals++
			if r := (cur - nc) / ix.SizeBytes(s); r > best.ratio {
				best = scored{ix: ix, ratio: r, cost: nc}
			}
			if evals >= budget {
				break
			}
		}
		if best.ratio <= 0 {
			break
		}
		cfg = cfg.Add(best.ix)
		cur = best.cost
	}
	return validate(a.Name(), s, cfg, c)
}
