package advisor

import (
	"context"
	"math/rand"

	"github.com/trap-repro/trap/internal/costmodel"
	"github.com/trap-repro/trap/internal/engine"
	"github.com/trap-repro/trap/internal/nn"
	"github.com/trap-repro/trap/internal/schema"
	"github.com/trap-repro/trap/internal/workload"
)

// SWIRL is the workload-aware RL advisor of Kossmann et al. (EDBT 2022):
// PPO over a pointer-style policy with a fine-grained plan-derived state
// representation and invalid-action masking, under a storage constraint
// and with multi-column indexes.
type SWIRL struct {
	// Opt controls candidate generation (multi-column on by default).
	Opt Options
	// State selects the representation granularity (Figure 12 ablation).
	State StateKind
	// Pruning enables invalid-action masking (Figure 13 ablation).
	Pruning bool
	// Episodes is the number of training episodes.
	Episodes int
	// Seed drives all randomness.
	Seed int64
	// Hidden is the policy/value hidden width.
	Hidden int

	policy *scoreNet
	value  *valueNet
	cm     *costmodel.Model
	rng    *rand.Rand
}

// NewSWIRL builds a SWIRL advisor with paper-faithful defaults.
func NewSWIRL(seed int64) *SWIRL {
	return &SWIRL{
		Opt:      DefaultOptions(),
		State:    FineState,
		Pruning:  true,
		Episodes: 120,
		Seed:     seed,
		Hidden:   32,
	}
}

// Name implements Advisor.
func (a *SWIRL) Name() string { return "SWIRL" }

func (a *SWIRL) ensureNets() {
	if a.policy != nil {
		return
	}
	a.rng = rand.New(rand.NewSource(a.Seed))
	a.policy = newScoreNet(StateLen(a.State), a.Hidden, a.rng)
	a.value = newValueNet(StateLen(a.State), a.Hidden, a.rng)
}

// ppoClip is PPO's surrogate clipping range.
const ppoClip = 0.2

// Train implements Trainable with PPO: sampled rollouts, a learned value
// baseline, and a clipped surrogate objective.
func (a *SWIRL) Train(e *engine.Engine, train []*workload.Workload, c Constraint) error {
	return a.TrainCtx(context.Background(), e, train, c)
}

// TrainCtx implements CtxTrainable: training stops at the next episode
// boundary once ctx is done.
func (a *SWIRL) TrainCtx(ctx context.Context, e *engine.Engine, train []*workload.Workload, c Constraint) error {
	a.ensureNets()
	// Accumulate execution feedback into a learned cost model first: the
	// advisor's edge over what-if-driven heuristics.
	cm, err := costmodel.TrainOnWorkloads(e, train, 4, a.Seed+1)
	if err != nil {
		return err
	}
	a.cm = cm
	popt := nn.NewAdam(3e-3)
	vopt := nn.NewAdam(3e-3)
	gamma := 0.95
	for ep := 0; ep < a.Episodes; ep++ {
		if err := ctx.Err(); err != nil {
			return err
		}
		w := train[a.rng.Intn(len(train))]
		env := newEnv(ctx, e, w, c, a.State, a.Opt, a.Pruning, a.Seed+int64(ep), a.cm)
		type stepRec struct {
			state  []float64
			mask   []bool
			action int
			logp   float64
			reward float64
		}
		var traj []stepRec
		for {
			state := env.state()
			mask := env.validMask()
			g := nn.NewGraph(false)
			logits := a.policy.logits(g, state, env.feats)
			act, logp := sampleMasked(logits, mask, a.rng)
			r, done := env.step(act)
			traj = append(traj, stepRec{state: state, mask: mask, action: act, logp: logp, reward: r})
			if done || act == len(env.cands) {
				break
			}
		}
		// Discounted returns.
		returns := make([]float64, len(traj))
		run := 0.0
		for i := len(traj) - 1; i >= 0; i-- {
			run = traj[i].reward + gamma*run
			returns[i] = run
		}
		// PPO epochs over the trajectory.
		for epoch := 0; epoch < 2; epoch++ {
			g := nn.NewGraph(true)
			for i, st := range traj {
				v := a.value.value(g, st.state)
				adv := returns[i] - v.W[0]
				logits := a.policy.logits(g, st.state, env.feats)
				probs := maskedProbs(logits, st.mask)
				ratio := expSafe(logProb(probs, st.action) - st.logp)
				// Clipped surrogate: only propagate the policy gradient
				// when the ratio is inside the trust region (or moving
				// back toward it).
				weight := -adv
				if (adv > 0 && ratio > 1+ppoClip) || (adv < 0 && ratio < 1-ppoClip) {
					weight = 0
				}
				if weight != 0 {
					maskedCrossEntropy(logits, st.mask, st.action, weight)
				}
				nn.MSELoss(v, returns[i])
			}
			g.Backward()
			a.policy.params.ClipGrads(5)
			a.value.params.ClipGrads(5)
			popt.Step(a.policy.params)
			vopt.Step(a.value.params)
		}
	}
	return nil
}

// Recommend implements Advisor with a greedy rollout of the trained
// policy (falling back to untrained-network behaviour if Train was never
// called, which mimics an undertrained agent).
func (a *SWIRL) Recommend(e *engine.Engine, w *workload.Workload, c Constraint) (schema.Config, error) {
	a.ensureNets()
	env := newEnv(context.Background(), e, w, c, a.State, a.Opt, a.Pruning, a.Seed, a.cm)
	for {
		state := env.state()
		mask := env.validMask()
		g := nn.NewGraph(false)
		logits := a.policy.logits(g, state, env.feats)
		act := argmaxMasked(logits, mask)
		if act < 0 || act == len(env.cands) {
			break
		}
		_, done := env.step(act)
		if done {
			break
		}
	}
	return validate(a.Name(), e.Schema(), env.cfg, c)
}

// ParamCount returns the number of trainable parameters.
func (a *SWIRL) ParamCount() int {
	a.ensureNets()
	return a.policy.params.Count() + a.value.params.Count()
}
