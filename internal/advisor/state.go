package advisor

import (
	"math"

	"github.com/trap-repro/trap/internal/costmodel"
	"github.com/trap-repro/trap/internal/engine"
	"github.com/trap-repro/trap/internal/schema"
	"github.com/trap-repro/trap/internal/sqlx"
	"github.com/trap-repro/trap/internal/stats"
	"github.com/trap-repro/trap/internal/workload"
)

// StateKind selects the state representation granularity of a
// learning-based advisor — the Figure 12 ablation.
type StateKind int

const (
	// FineState captures workload characteristics from query plans:
	// per-operator counts and costs plus budget usage (SWIRL-style).
	FineState StateKind = iota
	// CoarseState only records which columns appear in the workload and
	// how often (DRLindex-style column matrix + access vector).
	CoarseState
)

// String names the state kind.
func (k StateKind) String() string {
	if k == CoarseState {
		return "coarse"
	}
	return "fine"
}

// coarseBuckets is the hashed column-universe size of the coarse state.
const coarseBuckets = 32

// fineStateLen is the fine state vector length.
const fineStateLen = 2*int(engine.NumNodeTypes) + 3

// coarseStateLen is the coarse state vector length.
const coarseStateLen = 2*coarseBuckets + 1

// StateLen returns the state vector length for a kind.
func StateLen(k StateKind) int {
	if k == CoarseState {
		return coarseStateLen
	}
	return fineStateLen
}

// StateVec builds the state vector for a workload under the current
// configuration and constraint.
func StateVec(k StateKind, e *engine.Engine, w *workload.Workload, cfg schema.Config, c Constraint) []float64 {
	if k == CoarseState {
		return coarseStateVec(w, cfg)
	}
	return fineStateVec(e, w, cfg, c)
}

// fineStateVec: per-operator-type plan-node counts and log-costs across
// the workload's current plans, plus workload size, budget usage and
// index count — the fine-grained representation of SWIRL.
func fineStateVec(e *engine.Engine, w *workload.Workload, cfg schema.Config, c Constraint) []float64 {
	l := int(engine.NumNodeTypes)
	v := make([]float64, fineStateLen)
	for _, it := range w.Items {
		p, err := e.Plan(it.Query, cfg, engine.ModeEstimated)
		if err != nil {
			continue
		}
		p.Walk(func(n *engine.PlanNode) {
			v[int(n.Type)] += it.Weight
			v[l+int(n.Type)] += it.Weight * math.Log1p(n.Cost)
		})
	}
	v[2*l] = float64(w.Size()) / 50
	if c.StorageBytes > 0 {
		v[2*l+1] = cfg.SizeBytes(e.Schema()) / c.StorageBytes
	} else if c.MaxIndexes > 0 {
		v[2*l+1] = float64(len(cfg)) / float64(c.MaxIndexes)
	}
	v[2*l+2] = float64(len(cfg)) / 10
	// Normalize counts by workload size for scale invariance.
	n := float64(w.Size())
	if n > 0 {
		for i := 0; i < 2*l; i++ {
			v[i] /= n
		}
	}
	return v
}

// coarseStateVec: hashed column presence and access counts, ignoring plan
// information entirely — the coarse representation of DRLindex.
func coarseStateVec(w *workload.Workload, cfg schema.Config) []float64 {
	v := make([]float64, coarseStateLen)
	for _, it := range w.Items {
		for _, col := range it.Query.Columns() {
			b := int(stats.Hash64(col.String()) % coarseBuckets)
			v[b] = 1
			v[coarseBuckets+b]++
		}
	}
	n := float64(w.Size())
	if n > 0 {
		for i := coarseBuckets; i < 2*coarseBuckets; i++ {
			v[i] /= n
		}
	}
	v[2*coarseBuckets] = float64(len(cfg)) / 10
	return v
}

// candFeatLen is the per-candidate feature vector length.
const candFeatLen = 6 + 16

// CandidateFeatures builds the per-candidate feature vector used by the
// per-action scoring networks: structural features, the what-if benefit
// of the index in isolation (the estimated-cost signal SWIRL's state
// representation carries), and a hashed identity so the network can
// learn index-specific values.
func CandidateFeatures(e *engine.Engine, w *workload.Workload, ix schema.Index) []float64 {
	return candidateFeaturesWith(e, w, ix, nil)
}

// candidateFeaturesWith computes the benefit feature with the advisor's
// learned cost model when available, and with raw what-if estimates
// otherwise.
func candidateFeaturesWith(e *engine.Engine, w *workload.Workload, ix schema.Index, cm *costmodel.Model) []float64 {
	v := make([]float64, candFeatLen)
	v[0] = float64(len(ix.Columns))
	v[1] = math.Log1p(ix.SizeBytes(e.Schema())) / 25
	if cm != nil {
		base, err0 := cm.WorkloadCost(e, w, nil)
		with, err1 := cm.WorkloadCost(e, w, schema.Config{ix})
		if err0 == nil && err1 == nil && base > 0 {
			v[5] = (base - with) / base
		}
	} else if base := WhatIfCost(e, w, nil); base > 0 {
		v[5] = (base - WhatIfCost(e, w, schema.Config{ix})) / base
	}
	var leadFilter, leadJoin, appears float64
	lead := sqlx.ColumnRef{Table: ix.Table, Column: ix.Columns[0]}
	for _, it := range w.Items {
		for _, p := range it.Query.Filters {
			if p.Col == lead {
				leadFilter++
				break
			}
		}
		for _, jc := range it.Query.JoinColumns() {
			if jc == lead {
				leadJoin++
				break
			}
		}
		for _, col := range it.Query.Columns() {
			if col.Table == ix.Table && col.Column == ix.Columns[0] {
				appears++
				break
			}
		}
	}
	n := float64(w.Size())
	if n > 0 {
		v[2] = leadFilter / n
		v[3] = leadJoin / n
		v[4] = appears / n
	}
	h := stats.Hash64(ix.Key())
	v[6+int(h%16)] = 1
	return v
}
