package advisor

import (
	"testing"
	"testing/quick"

	"github.com/trap-repro/trap/internal/bench"
	"github.com/trap-repro/trap/internal/engine"
	"github.com/trap-repro/trap/internal/workload"
)

// TestQuickHeuristicsNeverViolateConstraints is the safety property every
// advisor must uphold: for arbitrary workloads and either constraint
// kind, the recommendation fits and never raises the what-if cost.
func TestQuickHeuristicsNeverViolateConstraints(t *testing.T) {
	s := bench.TRANSACTION(400)
	e := engine.New(s)
	advisors := []Advisor{
		&Extend{Opt: DefaultOptions()},
		&DB2Advis{Opt: DefaultOptions()},
		&AutoAdmin{Opt: DefaultOptions()},
		&Drop{},
		&Relaxation{Opt: DefaultOptions()},
		&DTA{Opt: DefaultOptions(), MaxEvaluations: 60},
	}
	f := func(seed int64, sizePick, kindPick uint8) bool {
		gen := workload.NewGenerator(s, seed, 4)
		w := gen.Workload(1 + int(sizePick)%5)
		var c Constraint
		if kindPick%2 == 0 {
			c = Constraint{StorageBytes: s.TotalSizeBytes() / 4}
		} else {
			c = Constraint{MaxIndexes: 1 + int(kindPick)%4}
		}
		base := WhatIfCost(e, w, nil)
		for _, a := range advisors {
			cfg, err := a.Recommend(e, w, c)
			if err != nil {
				t.Logf("%s: %v", a.Name(), err)
				return false
			}
			if !c.Satisfied(s, cfg) {
				t.Logf("%s violated constraint with %s", a.Name(), cfg.Key())
				return false
			}
			if got := WhatIfCost(e, w, cfg); got > base+1e-9 {
				t.Logf("%s raised cost %v -> %v", a.Name(), base, got)
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 8}); err != nil {
		t.Error(err)
	}
}

// TestLearnedAdvisorsRespectConstraintAfterTraining covers the RL
// advisors on the same safety property.
func TestLearnedAdvisorsRespectConstraintAfterTraining(t *testing.T) {
	s := bench.TPCH(400)
	e := engine.New(s)
	gen := workload.NewGenerator(s, 3, 6)
	var train []*workload.Workload
	for i := 0; i < 4; i++ {
		train = append(train, gen.Workload(4))
	}
	cases := []struct {
		a Advisor
		c Constraint
	}{
		{func() Advisor { a := NewSWIRL(1); a.Episodes = 8; return a }(), Constraint{StorageBytes: s.TotalSizeBytes() / 4}},
		{func() Advisor { a := NewDRLindex(2); a.Episodes = 8; return a }(), Constraint{MaxIndexes: 2}},
		{func() Advisor { a := NewDQN(3); a.Episodes = 8; return a }(), Constraint{MaxIndexes: 3}},
		{NewMCTS(4), Constraint{MaxIndexes: 2}},
	}
	for _, tc := range cases {
		if tr, ok := tc.a.(Trainable); ok {
			if err := tr.Train(e, train, tc.c); err != nil {
				t.Fatalf("%s train: %v", tc.a.Name(), err)
			}
		}
		for i := 0; i < 4; i++ {
			w := gen.Workload(3)
			cfg, err := tc.a.Recommend(e, w, tc.c)
			if err != nil {
				t.Fatalf("%s: %v", tc.a.Name(), err)
			}
			if !tc.c.Satisfied(s, cfg) {
				t.Errorf("%s violated constraint: %s", tc.a.Name(), cfg.Key())
			}
		}
	}
}

// TestAdvisorsImproveIndexableWorkload: on a workload with a clearly
// index-friendly shape, every heuristic advisor must find a beneficial
// configuration.
func TestAdvisorsImproveIndexableWorkload(t *testing.T) {
	s := bench.TPCH(200)
	e := engine.New(s)
	gen := workload.NewGenerator(s, 77, 10)
	var w *workload.Workload
	// Find a generated workload where indexes genuinely help.
	for i := 0; i < 20; i++ {
		cand := gen.Workload(6)
		cands := Candidates(s, cand, DefaultOptions())
		best := 0.0
		for _, ix := range cands {
			if b := Benefit(e, cand, nil, ix, DefaultOptions()); b > best {
				best = b
			}
		}
		if best > 0 {
			w = cand
			break
		}
	}
	if w == nil {
		t.Skip("no index-friendly workload found")
	}
	c := Constraint{StorageBytes: s.TotalSizeBytes()}
	base := WhatIfCost(e, w, nil)
	for _, a := range []Advisor{
		&Extend{Opt: DefaultOptions()},
		&DB2Advis{Opt: DefaultOptions()},
		&DTA{Opt: DefaultOptions()},
	} {
		cfg, err := a.Recommend(e, w, c)
		if err != nil {
			t.Fatalf("%s: %v", a.Name(), err)
		}
		if got := WhatIfCost(e, w, cfg); got >= base {
			t.Errorf("%s found no improvement on indexable workload", a.Name())
		}
	}
}

func BenchmarkExtendRecommend(b *testing.B) {
	s := bench.TPCH(200)
	e := engine.New(s)
	gen := workload.NewGenerator(s, 5, 8)
	w := gen.Workload(8)
	c := Constraint{StorageBytes: s.TotalSizeBytes() / 2}
	a := &Extend{Opt: DefaultOptions()}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e.ClearCache()
		if _, err := a.Recommend(e, w, c); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkMCTSRecommend(b *testing.B) {
	s := bench.TPCH(200)
	e := engine.New(s)
	gen := workload.NewGenerator(s, 5, 8)
	w := gen.Workload(6)
	a := NewMCTS(1)
	a.Iterations = 60
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := a.Recommend(e, w, Constraint{MaxIndexes: 3}); err != nil {
			b.Fatal(err)
		}
	}
}
