package advisor

import (
	"context"
	"testing"

	"github.com/trap-repro/trap/internal/bench"
	"github.com/trap-repro/trap/internal/engine"
	"github.com/trap-repro/trap/internal/schema"
	"github.com/trap-repro/trap/internal/sqlx"
	"github.com/trap-repro/trap/internal/workload"
)

// fixture builds a TPC-H engine, a training workload set and one test
// workload, shared across advisor tests.
type fixture struct {
	e     *engine.Engine
	gen   *workload.Generator
	train []*workload.Workload
	w     *workload.Workload
}

func newFixture(t *testing.T) *fixture {
	t.Helper()
	s := bench.TPCH(100)
	e := engine.New(s)
	gen := workload.NewGenerator(s, 42, 12)
	var train []*workload.Workload
	for i := 0; i < 8; i++ {
		train = append(train, gen.Workload(6))
	}
	return &fixture{e: e, gen: gen, train: train, w: gen.Workload(8)}
}

// storageConstraint gives a budget of roughly a few indexes.
func (f *fixture) storageConstraint() Constraint {
	return Constraint{StorageBytes: f.e.Schema().TotalSizeBytes() / 2}
}

func TestCandidatesRelevantAndDeduplicated(t *testing.T) {
	f := newFixture(t)
	cands := Candidates(f.e.Schema(), f.w, DefaultOptions())
	if len(cands) == 0 {
		t.Fatal("no candidates")
	}
	touched := map[string]bool{}
	for _, c := range f.w.Columns() {
		touched[c.String()] = true
	}
	seen := map[string]bool{}
	for _, ix := range cands {
		if seen[ix.Key()] {
			t.Errorf("duplicate candidate %s", ix.Key())
		}
		seen[ix.Key()] = true
		for _, col := range ix.Columns {
			if !touched[ix.Table+"."+col] {
				t.Errorf("irrelevant candidate column %s.%s", ix.Table, col)
			}
		}
		if len(ix.Columns) > 2 {
			t.Errorf("candidate wider than MaxWidth: %s", ix.Key())
		}
	}
	single := Candidates(f.e.Schema(), f.w, Options{MultiColumn: false})
	if len(single) >= len(cands) {
		t.Error("multi-column candidates missing")
	}
	for _, ix := range single {
		if len(ix.Columns) != 1 {
			t.Errorf("single-column option produced %s", ix.Key())
		}
	}
}

func TestConstraintFits(t *testing.T) {
	f := newFixture(t)
	s := f.e.Schema()
	ix := schema.Index{Table: "lineitem", Columns: []string{"l_shipdate"}}
	cN := Constraint{MaxIndexes: 1}
	if !cN.Fits(s, nil, ix) {
		t.Error("first index should fit MaxIndexes=1")
	}
	if cN.Fits(s, schema.Config{ix}, schema.Index{Table: "orders", Columns: []string{"o_orderdate"}}) {
		t.Error("second index should not fit MaxIndexes=1")
	}
	cS := Constraint{StorageBytes: ix.SizeBytes(s) * 1.5}
	if !cS.Fits(s, nil, ix) {
		t.Error("index should fit 1.5x its size")
	}
	if cS.Fits(s, schema.Config{ix}, ix) || cS.Satisfied(s, schema.Config{ix, ix}) {
		t.Error("storage constraint not enforced")
	}
}

// checkAdvisor runs an advisor and verifies the basics: constraint
// satisfied and what-if cost not increased.
func checkAdvisor(t *testing.T, f *fixture, a Advisor, c Constraint) schema.Config {
	t.Helper()
	cfg, err := a.Recommend(f.e, f.w, c)
	if err != nil {
		t.Fatalf("%s: %v", a.Name(), err)
	}
	if !c.Satisfied(f.e.Schema(), cfg) {
		t.Fatalf("%s violated constraint: %s", a.Name(), cfg.Key())
	}
	base := WhatIfCost(f.e, f.w, nil)
	got := WhatIfCost(f.e, f.w, cfg)
	if got > base+1e-9 {
		t.Errorf("%s increased cost: %v -> %v", a.Name(), base, got)
	}
	return cfg
}

func TestExtendRecommends(t *testing.T) {
	f := newFixture(t)
	cfg := checkAdvisor(t, f, &Extend{Opt: DefaultOptions()}, f.storageConstraint())
	if len(cfg) == 0 {
		t.Error("Extend selected nothing")
	}
	base := WhatIfCost(f.e, f.w, nil)
	if WhatIfCost(f.e, f.w, cfg) >= base {
		t.Error("Extend produced no improvement")
	}
}

func TestExtendSingleColumnOnly(t *testing.T) {
	f := newFixture(t)
	a := &Extend{Opt: Options{MultiColumn: false, Interaction: true}}
	cfg := checkAdvisor(t, f, a, f.storageConstraint())
	for _, ix := range cfg {
		if len(ix.Columns) > 1 {
			t.Errorf("single-column mode produced %s", ix.Key())
		}
	}
}

func TestDB2AdvisRecommends(t *testing.T) {
	f := newFixture(t)
	cfg := checkAdvisor(t, f, &DB2Advis{Opt: DefaultOptions()}, f.storageConstraint())
	if len(cfg) == 0 {
		t.Error("DB2Advis selected nothing")
	}
}

func TestAutoAdminRecommends(t *testing.T) {
	f := newFixture(t)
	cfg := checkAdvisor(t, f, &AutoAdmin{Opt: DefaultOptions()}, Constraint{MaxIndexes: 4})
	if len(cfg) == 0 || len(cfg) > 4 {
		t.Errorf("AutoAdmin config size %d", len(cfg))
	}
}

func TestDropRecommends(t *testing.T) {
	f := newFixture(t)
	cfg := checkAdvisor(t, f, &Drop{}, Constraint{MaxIndexes: 3})
	if len(cfg) > 3 {
		t.Errorf("Drop kept %d indexes", len(cfg))
	}
	for _, ix := range cfg {
		if len(ix.Columns) != 1 {
			t.Errorf("Drop produced multi-column %s", ix.Key())
		}
	}
}

func TestRelaxationRecommends(t *testing.T) {
	f := newFixture(t)
	checkAdvisor(t, f, &Relaxation{Opt: DefaultOptions()}, f.storageConstraint())
	// Tight budget forces actual relaxation.
	tight := Constraint{StorageBytes: f.e.Schema().TotalSizeBytes() / 50}
	checkAdvisor(t, f, &Relaxation{Opt: DefaultOptions()}, tight)
}

func TestDTARecommends(t *testing.T) {
	f := newFixture(t)
	cfg := checkAdvisor(t, f, &DTA{Opt: DefaultOptions()}, f.storageConstraint())
	if len(cfg) == 0 {
		t.Error("DTA selected nothing")
	}
	// The anytime budget must bind: a tiny budget does not crash.
	small := &DTA{Opt: DefaultOptions(), MaxEvaluations: 3}
	checkAdvisor(t, f, small, f.storageConstraint())
}

func TestSWIRLTrainAndRecommend(t *testing.T) {
	f := newFixture(t)
	a := NewSWIRL(7)
	a.Episodes = 30
	c := f.storageConstraint()
	if err := a.Train(f.e, f.train, c); err != nil {
		t.Fatal(err)
	}
	cfg := checkAdvisor(t, f, a, c)
	_ = cfg
	if a.ParamCount() == 0 {
		t.Error("SWIRL reports zero parameters")
	}
}

func TestSWIRLCoarseStateVariant(t *testing.T) {
	f := newFixture(t)
	a := NewSWIRL(7)
	a.State = CoarseState
	a.Episodes = 10
	c := f.storageConstraint()
	if err := a.Train(f.e, f.train, c); err != nil {
		t.Fatal(err)
	}
	checkAdvisor(t, f, a, c)
}

func TestSWIRLWithoutPruning(t *testing.T) {
	f := newFixture(t)
	a := NewSWIRL(7)
	a.Pruning = false
	a.Episodes = 10
	checkAdvisor(t, f, a, f.storageConstraint())
}

func TestDRLindexTrainAndRecommend(t *testing.T) {
	f := newFixture(t)
	a := NewDRLindex(11)
	a.Episodes = 30
	c := Constraint{MaxIndexes: 3}
	if err := a.Train(f.e, f.train, c); err != nil {
		t.Fatal(err)
	}
	cfg := checkAdvisor(t, f, a, c)
	for _, ix := range cfg {
		if len(ix.Columns) != 1 {
			t.Errorf("DRLindex produced multi-column %s", ix.Key())
		}
	}
}

func TestDQNTrainAndRecommend(t *testing.T) {
	f := newFixture(t)
	a := NewDQN(13)
	a.Episodes = 30
	c := Constraint{MaxIndexes: 4}
	if err := a.Train(f.e, f.train, c); err != nil {
		t.Fatal(err)
	}
	checkAdvisor(t, f, a, c)
}

func TestMCTSRecommends(t *testing.T) {
	f := newFixture(t)
	a := NewMCTS(17)
	a.Iterations = 80
	cfg := checkAdvisor(t, f, a, Constraint{MaxIndexes: 4})
	base := WhatIfCost(f.e, f.w, nil)
	if len(cfg) > 0 && WhatIfCost(f.e, f.w, cfg) >= base {
		t.Error("MCTS kept useless indexes")
	}
}

func TestStateVectors(t *testing.T) {
	f := newFixture(t)
	c := f.storageConstraint()
	fine := StateVec(FineState, f.e, f.w, nil, c)
	coarse := StateVec(CoarseState, f.e, f.w, nil, c)
	if len(fine) != StateLen(FineState) || len(coarse) != StateLen(CoarseState) {
		t.Fatal("state lengths wrong")
	}
	nz := 0
	for _, v := range fine {
		if v != 0 {
			nz++
		}
	}
	if nz == 0 {
		t.Error("fine state all zero")
	}
	// Adding indexes must change the fine state (plans change) and at
	// least the index counter of the coarse state.
	ix := schema.Index{Table: "lineitem", Columns: []string{"l_orderkey"}}
	fine2 := StateVec(FineState, f.e, f.w, schema.Config{ix}, c)
	diff := false
	for i := range fine {
		if fine[i] != fine2[i] {
			diff = true
		}
	}
	if !diff {
		t.Error("fine state insensitive to configuration")
	}
	coarse2 := StateVec(CoarseState, f.e, f.w, schema.Config{ix}, c)
	if coarse2[len(coarse2)-1] == coarse[len(coarse)-1] {
		t.Error("coarse state index counter unchanged")
	}
}

func TestCandidateFeatures(t *testing.T) {
	f := newFixture(t)
	q := sqlx.MustParse("SELECT lineitem.l_quantity FROM lineitem WHERE lineitem.l_shipdate <= 100")
	w := workload.New(q)
	feat := CandidateFeatures(f.e, w, schema.Index{Table: "lineitem", Columns: []string{"l_shipdate"}})
	if len(feat) != candFeatLen {
		t.Fatal("feature length wrong")
	}
	if feat[2] != 1 {
		t.Errorf("lead filter frequency = %v, want 1", feat[2])
	}
	unrelated := CandidateFeatures(f.e, w, schema.Index{Table: "orders", Columns: []string{"o_clerk"}})
	if unrelated[2] != 0 || unrelated[4] != 0 {
		t.Error("unrelated candidate has workload features")
	}
}

func TestEnvStepAndMask(t *testing.T) {
	f := newFixture(t)
	c := Constraint{MaxIndexes: 2}
	env := newEnv(context.Background(), f.e, f.w, c, FineState, DefaultOptions(), true, 1, nil)
	mask := env.validMask()
	if mask[len(env.cands)] {
		t.Fatal("stop action must be masked while candidates remain")
	}
	act := -1
	for i := range env.cands {
		if mask[i] {
			act = i
			break
		}
	}
	if act < 0 {
		t.Fatal("no valid action")
	}
	_, done := env.step(act)
	if done {
		t.Fatal("episode ended after one step with MaxIndexes=2")
	}
	if len(env.cfg) != 1 {
		t.Fatal("step did not add index")
	}
	// The same action must now be masked.
	if env.validMask()[act] {
		t.Error("selected action still valid")
	}
	// Stop ends the episode.
	if _, done := env.step(len(env.cands)); !done {
		t.Error("stop did not end episode")
	}
}

func TestNoiseCandidatesAreIrrelevant(t *testing.T) {
	f := newFixture(t)
	noise := noiseCandidates(f.e.Schema(), f.w, 20, 5)
	touched := map[string]bool{}
	for _, c := range f.w.Columns() {
		touched[c.String()] = true
	}
	for _, ix := range noise {
		if touched[ix.Table+"."+ix.Columns[0]] {
			t.Errorf("noise candidate %s touches the workload", ix.Key())
		}
	}
	if len(noise) == 0 {
		t.Error("no noise candidates produced")
	}
}

func TestBenefitInteractionMatters(t *testing.T) {
	f := newFixture(t)
	// With an equivalent index already present, the interaction-aware
	// benefit of a redundant index must be smaller than its isolated one.
	cands := Candidates(f.e.Schema(), f.w, Options{MultiColumn: false})
	var best schema.Index
	bestB := 0.0
	for _, ix := range cands {
		if b := Benefit(f.e, f.w, nil, ix, DefaultOptions()); b > bestB {
			bestB = b
			best = ix
		}
	}
	if bestB <= 0 {
		t.Skip("workload gains nothing from single-column indexes")
	}
	wider := schema.Index{Table: best.Table, Columns: append([]string{best.Columns[0]}, "extra")}
	_ = wider
	cfgWith := schema.Config{best}
	again := Benefit(f.e, f.w, cfgWith, best, DefaultOptions())
	if again != 0 {
		t.Errorf("re-adding identical index should have zero benefit, got %v", again)
	}
	iso := Benefit(f.e, f.w, cfgWith, best, Options{Interaction: false, MultiColumn: true})
	if iso <= 0 {
		t.Errorf("isolated benefit ignores interaction, want > 0, got %v", iso)
	}
}
