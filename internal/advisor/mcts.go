package advisor

import (
	"math"
	"math/rand"

	"github.com/trap-repro/trap/internal/engine"
	"github.com/trap-repro/trap/internal/schema"
	"github.com/trap-repro/trap/internal/workload"
)

// MCTS is the budget-aware Monte-Carlo tree search advisor (Wu et al.
// SIGMOD 2022 / AutoIndex, UCT variant): an online search over
// add-index actions, guided by what-if utility, under a #index constraint.
// It needs no training — the search runs per workload.
type MCTS struct {
	// Opt controls candidate generation.
	Opt Options
	// Iterations is the UCT simulation budget.
	Iterations int
	// Exploration is the UCT constant.
	Exploration float64
	// Seed drives the rollouts.
	Seed int64
}

// NewMCTS builds an MCTS advisor with paper-faithful defaults.
func NewMCTS(seed int64) *MCTS {
	return &MCTS{Opt: DefaultOptions(), Iterations: 200, Exploration: 0.7, Seed: seed}
}

// Name implements Advisor.
func (a *MCTS) Name() string { return "MCTS" }

// mctsNode is one search-tree node: a configuration and its statistics.
type mctsNode struct {
	cfg      schema.Config
	visits   float64
	total    float64
	children map[int]*mctsNode // action index -> child
}

// Recommend implements Advisor with UCT search.
func (a *MCTS) Recommend(e *engine.Engine, w *workload.Workload, c Constraint) (schema.Config, error) {
	rng := rand.New(rand.NewSource(a.Seed))
	s := e.Schema()
	cands := Candidates(s, w, a.Opt)
	base := WhatIfCost(e, w, nil)
	utility := func(cfg schema.Config) float64 {
		if base <= 0 {
			return 0
		}
		return 1 - WhatIfCost(e, w, cfg)/base
	}
	valid := func(cfg schema.Config, i int) bool {
		return !cfg.Contains(cands[i]) && c.Fits(s, cfg, cands[i])
	}
	root := &mctsNode{children: map[int]*mctsNode{}}

	iters := a.Iterations
	if iters <= 0 {
		iters = 200
	}
	for it := 0; it < iters; it++ {
		// Selection + expansion.
		node := root
		var path []*mctsNode
		path = append(path, node)
		for depth := 0; depth < 8; depth++ {
			var actions []int
			for i := range cands {
				if valid(node.cfg, i) {
					actions = append(actions, i)
				}
			}
			if len(actions) == 0 {
				break
			}
			// Expand an untried action if any, otherwise UCT-select.
			var next *mctsNode
			untried := -1
			for _, i := range actions {
				if node.children[i] == nil {
					untried = i
					break
				}
			}
			if untried >= 0 {
				next = &mctsNode{cfg: node.cfg.Add(cands[untried]), children: map[int]*mctsNode{}}
				node.children[untried] = next
				node = next
				path = append(path, node)
				break
			}
			bestScore := math.Inf(-1)
			for _, i := range actions {
				ch := node.children[i]
				score := ch.total/ch.visits + a.Exploration*math.Sqrt(math.Log(node.visits+1)/ch.visits)
				if score > bestScore {
					bestScore = score
					next = ch
				}
			}
			node = next
			path = append(path, node)
		}
		// Rollout: random completion to the constraint.
		cfg := node.cfg
		for tries := 0; tries < 6; tries++ {
			var actions []int
			for i := range cands {
				if valid(cfg, i) {
					actions = append(actions, i)
				}
			}
			if len(actions) == 0 {
				break
			}
			cfg = cfg.Add(cands[actions[rng.Intn(len(actions))]])
			if rng.Float64() < 0.3 {
				break
			}
		}
		reward := utility(cfg)
		for _, n := range path {
			n.visits++
			n.total += reward
		}
	}

	// Extract the best path by mean value, keeping only moves that help.
	node := root
	cfg := schema.Config{}
	cur := base
	for {
		var bestChild *mctsNode
		bestAct := -1
		for i, ch := range node.children {
			if ch.visits == 0 {
				continue
			}
			if bestChild == nil || ch.total/ch.visits > bestChild.total/bestChild.visits {
				bestChild = ch
				bestAct = i
			}
		}
		if bestChild == nil || !valid(cfg, bestAct) {
			break
		}
		nextCfg := cfg.Add(cands[bestAct])
		nc := WhatIfCost(e, w, nextCfg)
		if nc >= cur-1e-9 {
			break
		}
		cfg = nextCfg
		cur = nc
		node = bestChild
	}
	return validate(a.Name(), s, cfg, c)
}
