package assess

import (
	"context"
	"time"

	"github.com/trap-repro/trap/internal/core"
)

// Fig7Tab4Result holds one generation-module measurement: IUDR against
// the two reference advisors, parameter count, generation time, and the
// RL training trace.
type Fig7Tab4Result struct {
	Module         string
	IUDRExtend     float64
	IUDRSWIRL      float64
	Params         int
	GenerationTime time.Duration
	TraceExtend    []float64
}

// Fig7Tab4 runs the generation-module ablation (Figure 7) and the
// efficiency comparison (Table IV) on one suite (TPC-H in the paper)
// against Extend and SWIRL: the GRU decoder-only variant, the four PLM
// stand-ins, and TRAP. genQueries is the number of queries to time
// (1000 in the paper).
func Fig7Tab4(s *Suite, genQueries int) ([]Fig7Tab4Result, *Table, *Table, error) {
	extendSpec, err := SpecByName("Extend")
	if err != nil {
		return nil, nil, nil, err
	}
	swirlSpec, err := SpecByName("SWIRL")
	if err != nil {
		return nil, nil, nil, err
	}
	extend, err := s.BuildAdvisor(extendSpec)
	if err != nil {
		return nil, nil, nil, err
	}
	swirl, err := s.BuildAdvisor(swirlSpec)
	if err != nil {
		return nil, nil, nil, err
	}
	swirlBase := s.BaselineAdvisor(swirlSpec)

	type module struct {
		name string
		make func() core.Scorer
	}
	modules := []module{
		{name: "GRU", make: func() core.Scorer { return core.NewGRUModel(s.Vocab, s.P.Sizes, s.rng(101)) }},
	}
	for i, spec := range core.PLMSpecs() {
		sp := spec
		salt := int64(200 + i)
		modules = append(modules, module{name: sp.Name, make: func() core.Scorer {
			m := core.NewPLMModel(sp, s.Vocab, s.P.Sizes, s.rng(salt))
			// Generic-corpus pretraining: the domain-mismatch handicap.
			m.GenericPretrain(8*s.P.PretrainPairs, s.rng(salt+1))
			return m
		}})
	}
	modules = append(modules, module{name: "TRAP", make: nil})

	var results []Fig7Tab4Result
	pc := core.SharedTable
	for _, mod := range modules {
		var mExtend, mSWIRL *Method
		if mod.name == "TRAP" {
			mExtend, err = s.BuildMethod(context.Background(), "TRAP", pc, extend, nil, s.Storage, MethodConfig{})
			if err == nil {
				mSWIRL, err = s.BuildMethod(context.Background(), "TRAP", pc, swirl, swirlBase, s.Storage, MethodConfig{})
			}
		} else {
			mExtend, err = s.BuildMethod(context.Background(), mod.name, pc, extend, nil, s.Storage, MethodConfig{Model: mod.make()})
			if err == nil {
				mSWIRL, err = s.BuildMethod(context.Background(), mod.name, pc, swirl, swirlBase, s.Storage, MethodConfig{Model: mod.make()})
			}
		}
		if err != nil {
			return nil, nil, nil, err
		}
		resE, err := s.Measure(context.Background(), mExtend, extend, nil, s.Storage)
		if err != nil {
			return nil, nil, nil, err
		}
		resS, err := s.Measure(context.Background(), mSWIRL, swirl, swirlBase, s.Storage)
		if err != nil {
			return nil, nil, nil, err
		}
		nParams := 0
		if p := mExtend.FW.Model.Params(); p != nil {
			nParams = p.Count()
		}
		start := time.Now()
		if err := s.GenerationCost(mExtend, genQueries); err != nil {
			return nil, nil, nil, err
		}
		elapsed := time.Since(start)
		results = append(results, Fig7Tab4Result{
			Module:         mod.name,
			IUDRExtend:     resE.MeanIUDR,
			IUDRSWIRL:      resS.MeanIUDR,
			Params:         nParams,
			GenerationTime: elapsed,
			TraceExtend:    mExtend.Trace,
		})
	}

	fig7 := NewTable("Figure 7: IUDR per generation module (Extend & SWIRL)",
		"module", "IUDR vs Extend", "IUDR vs SWIRL")
	tab4 := NewTable("Table IV: generation-module efficiency",
		"module", "#params", "generation time")
	for _, r := range results {
		fig7.Add(r.Module, F(r.IUDRExtend), F(r.IUDRSWIRL))
		tab4.Add(r.Module, I(r.Params), r.GenerationTime.Round(time.Millisecond).String())
	}
	tab4.Note("timing covers perturbing %d queries", genQueries)
	return results, fig7, tab4, nil
}

// Fig8Result holds one training-paradigm ablation measurement.
type Fig8Result struct {
	Variant     string
	Advisor     string
	IUDR        float64
	Trace       []float64
	EpochsTo80  int
	FinalReward float64
}

// Fig8 runs the training-paradigm ablation (Figure 8): full TRAP versus
// "w/o Cost Model" (raw what-if rewards) and "w/o Pretrain" (RL from
// scratch), against Extend and SWIRL. EpochsTo80 is the number of RL
// epochs needed to reach 80% of the full model's final reward — the
// paper's epochs-to-desired-IUDR measure.
func Fig8(s *Suite) ([]Fig8Result, *Table, error) {
	variants := []struct {
		name string
		mc   MethodConfig
	}{
		{name: "TRAP", mc: MethodConfig{}},
		{name: "w/o Cost Model", mc: MethodConfig{NoCostModel: true}},
		{name: "w/o Pretrain", mc: MethodConfig{NoPretrain: true}},
	}
	advisors := []string{"Extend", "SWIRL"}
	var results []Fig8Result
	t := NewTable("Figure 8: training-paradigm ablation",
		"variant", "advisor", "IUDR", "final reward", "epochs to 80%")

	for _, advName := range advisors {
		spec, err := SpecByName(advName)
		if err != nil {
			return nil, nil, err
		}
		adv, err := s.BuildAdvisor(spec)
		if err != nil {
			return nil, nil, err
		}
		base := s.BaselineAdvisor(spec)
		ac := s.ConstraintFor(spec)
		var fullFinal float64
		for vi, v := range variants {
			m, err := s.BuildMethod(context.Background(), "TRAP", core.SharedTable, adv, base, ac, v.mc)
			if err != nil {
				return nil, nil, err
			}
			res, err := s.Measure(context.Background(), m, adv, base, ac)
			if err != nil {
				return nil, nil, err
			}
			final := 0.0
			if len(m.Trace) > 0 {
				final = m.Trace[len(m.Trace)-1]
			}
			if vi == 0 {
				fullFinal = final
			}
			target := 0.8 * fullFinal
			epochs := len(m.Trace)
			for i, r := range m.Trace {
				if r >= target {
					epochs = i + 1
					break
				}
			}
			results = append(results, Fig8Result{
				Variant: v.name, Advisor: advName, IUDR: res.MeanIUDR,
				Trace: m.Trace, EpochsTo80: epochs, FinalReward: final,
			})
			t.Add(v.name, advName, F(res.MeanIUDR), F(final), I(epochs))
		}
	}
	return results, t, nil
}
