package assess

import (
	"context"
	"github.com/trap-repro/trap/internal/advisor"
	"github.com/trap-repro/trap/internal/core"
)

// trainAdvisor trains a learned advisor on the suite's training set.
func (s *Suite) trainAdvisor(a advisor.Advisor, ac advisor.Constraint) error {
	if tr, ok := a.(advisor.Trainable); ok {
		return tr.Train(s.E, s.Train, ac)
	}
	return nil
}

// measureTRAPAgainst builds a TRAP method against the advisor and
// measures the IUDR.
func (s *Suite) measureTRAPAgainst(a advisor.Advisor, base advisor.Advisor, ac advisor.Constraint, pc core.PerturbConstraint) (float64, int, error) {
	m, err := s.BuildMethod(context.Background(), "TRAP", pc, a, base, ac, MethodConfig{})
	if err != nil {
		return 0, 0, err
	}
	res, err := s.Measure(context.Background(), m, a, base, ac)
	if err != nil {
		return 0, 0, err
	}
	return res.MeanIUDR, res.N, nil
}

// Fig12 runs the state-representation ablation (Figure 12): the three RL
// advisor backbones with fine-grained versus coarse-grained states,
// attacked by TRAP under the given perturbation constraints.
func Fig12(s *Suite, constraints []core.PerturbConstraint) (*Table, error) {
	if len(constraints) == 0 {
		constraints = []core.PerturbConstraint{core.SharedTable, core.ColumnConsistent}
	}
	t := NewTable("Figure 12: IUDR vs state representation granularity",
		"backbone", "state", "constraint", "IUDR", "workloads")
	type backbone struct {
		name string
		make func(kind advisor.StateKind) (advisor.Advisor, advisor.Advisor, advisor.Constraint)
	}
	backbones := []backbone{
		{name: "SWIRL", make: func(kind advisor.StateKind) (advisor.Advisor, advisor.Advisor, advisor.Constraint) {
			a := advisor.NewSWIRL(s.Seed)
			a.State = kind
			a.Episodes = s.P.AdvisorEpisodes
			return a, &advisor.Extend{Opt: advisor.DefaultOptions()}, s.Storage
		}},
		{name: "DRLindex", make: func(kind advisor.StateKind) (advisor.Advisor, advisor.Advisor, advisor.Constraint) {
			a := advisor.NewDRLindex(s.Seed)
			a.State = kind
			a.Episodes = s.P.AdvisorEpisodes
			return a, &advisor.Drop{}, s.Count
		}},
		{name: "DQN", make: func(kind advisor.StateKind) (advisor.Advisor, advisor.Advisor, advisor.Constraint) {
			a := advisor.NewDQN(s.Seed)
			a.State = kind
			a.Episodes = s.P.AdvisorEpisodes
			return a, &advisor.AutoAdmin{Opt: advisor.DefaultOptions()}, s.Count
		}},
	}
	for _, b := range backbones {
		for _, kind := range []advisor.StateKind{advisor.FineState, advisor.CoarseState} {
			a, base, ac := b.make(kind)
			if err := s.trainAdvisor(a, ac); err != nil {
				return nil, err
			}
			for _, pc := range constraints {
				iudr, n, err := s.measureTRAPAgainst(a, base, ac, pc)
				if err != nil {
					return nil, err
				}
				t.Add(b.name, kind.String(), pc.String(), F(iudr), I(n))
			}
		}
	}
	return t, nil
}

// Fig13 runs the candidate-pruning ablation (Figure 13): SWIRL and DQN
// with and without pruning of the action space, attacked by TRAP.
func Fig13(s *Suite, pc core.PerturbConstraint) (*Table, error) {
	t := NewTable("Figure 13: IUDR vs candidate pruning in the action space",
		"advisor", "pruning", "IUDR", "workloads")
	type variant struct {
		name    string
		pruning bool
		make    func(pruning bool) (advisor.Advisor, advisor.Advisor, advisor.Constraint)
	}
	makeSWIRL := func(pruning bool) (advisor.Advisor, advisor.Advisor, advisor.Constraint) {
		a := advisor.NewSWIRL(s.Seed)
		a.Pruning = pruning
		a.Episodes = s.P.AdvisorEpisodes
		return a, &advisor.Extend{Opt: advisor.DefaultOptions()}, s.Storage
	}
	makeDQN := func(pruning bool) (advisor.Advisor, advisor.Advisor, advisor.Constraint) {
		a := advisor.NewDQN(s.Seed)
		a.Pruning = pruning
		a.Episodes = s.P.AdvisorEpisodes
		return a, &advisor.AutoAdmin{Opt: advisor.DefaultOptions()}, s.Count
	}
	variants := []variant{
		{name: "SWIRL", pruning: true, make: makeSWIRL},
		{name: "SWIRL", pruning: false, make: makeSWIRL},
		{name: "DQN", pruning: true, make: makeDQN},
		{name: "DQN", pruning: false, make: makeDQN},
	}
	for _, v := range variants {
		a, base, ac := v.make(v.pruning)
		if err := s.trainAdvisor(a, ac); err != nil {
			return nil, err
		}
		iudr, n, err := s.measureTRAPAgainst(a, base, ac, pc)
		if err != nil {
			return nil, err
		}
		label := "with"
		if !v.pruning {
			label = "without"
		}
		t.Add(v.name, label, F(iudr), I(n))
	}
	return t, nil
}

// Fig14 runs the index-interaction ablation (Figure 14): heuristic
// advisors valuing indexes with versus without interaction awareness,
// attacked by TRAP.
func Fig14(s *Suite, pc core.PerturbConstraint) (*Table, error) {
	t := NewTable("Figure 14: IUDR vs index-interaction awareness",
		"advisor", "interaction", "IUDR", "workloads")
	for _, interaction := range []bool{true, false} {
		opt := advisor.DefaultOptions()
		opt.Interaction = interaction
		cases := []struct {
			a  advisor.Advisor
			ac advisor.Constraint
		}{
			{a: &advisor.Extend{Opt: opt}, ac: s.Storage},
			{a: &advisor.AutoAdmin{Opt: opt}, ac: s.Count},
			{a: &advisor.DTA{Opt: opt}, ac: s.Storage},
		}
		for _, c := range cases {
			iudr, n, err := s.measureTRAPAgainst(c.a, nil, c.ac, pc)
			if err != nil {
				return nil, err
			}
			label := "w/"
			if !interaction {
				label = "w/o"
			}
			t.Add(c.a.Name(), label, F(iudr), I(n))
		}
	}
	return t, nil
}

// Fig15 runs the multi-column-index ablation (Figure 15): heuristic
// advisors restricted to single-column candidates versus allowed
// multi-column ones, attacked by TRAP.
func Fig15(s *Suite, pc core.PerturbConstraint) (*Table, error) {
	t := NewTable("Figure 15: IUDR vs multi-column index usage",
		"advisor", "index type", "IUDR", "workloads")
	for _, multi := range []bool{true, false} {
		opt := advisor.DefaultOptions()
		opt.MultiColumn = multi
		cases := []struct {
			a  advisor.Advisor
			ac advisor.Constraint
		}{
			{a: &advisor.Extend{Opt: opt}, ac: s.Storage},
			{a: &advisor.AutoAdmin{Opt: opt}, ac: s.Count},
			{a: &advisor.DB2Advis{Opt: opt}, ac: s.Storage},
		}
		for _, c := range cases {
			iudr, n, err := s.measureTRAPAgainst(c.a, nil, c.ac, pc)
			if err != nil {
				return nil, err
			}
			label := "multi-column"
			if !multi {
				label = "single-column"
			}
			t.Add(c.a.Name(), label, F(iudr), I(n))
		}
	}
	return t, nil
}
