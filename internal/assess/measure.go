package assess

import (
	"context"

	"github.com/trap-repro/trap/internal/advisor"
	"github.com/trap-repro/trap/internal/engine"
	"github.com/trap-repro/trap/internal/obs"
	"github.com/trap-repro/trap/internal/par"
	"github.com/trap-repro/trap/internal/schema"
	"github.com/trap-repro/trap/internal/telemetry"
	"github.com/trap-repro/trap/internal/trace"
	"github.com/trap-repro/trap/internal/workload"
)

// Pair is one assessed (W, W') observation.
type Pair struct {
	Orig        *workload.Workload
	Pert        *workload.Workload
	U           float64
	UPert       float64
	IUDR        float64
	NonSargable bool
}

// Assessment aggregates the measurement of one (advisor, method) cell.
type Assessment struct {
	MeanIUDR float64
	N        int
	Pairs    []Pair
}

// Sargable reports whether a workload can be helped by indexes at all:
// with every relevant single-column index available, at least one query
// plan must actually use one (the paper's sargability notion of
// Section VI-C, used to exclude non-sargable W' from the assessment).
func (s *Suite) Sargable(w *workload.Workload) bool {
	cands := advisor.Candidates(s.E.Schema(), w, advisor.Options{MultiColumn: false})
	if len(cands) == 0 {
		return false
	}
	used := advisor.UsedIndexes(s.E, w, schema.Config(cands))
	return len(used) > 0
}

// Measure assesses one method against one advisor over the suite's test
// workloads: for every workload where the advisor is properly operating
// (u > θ), the method's perturbed variants are generated, non-sargable
// variants are excluded (Definition 3.3), and IUDR is averaged.
func (s *Suite) Measure(ctx context.Context, m *Method, adv advisor.Advisor, base advisor.Advisor, ac advisor.Constraint) (*Assessment, error) {
	return s.MeasureOn(ctx, m, adv, base, ac, s.Test)
}

// MeasureOn is Measure over an explicit workload set. Cancellation is
// honored between workloads and between pairs.
//
// The per-workload cells are independent — each generates its variants
// from a seed derived from its own index (VariantsAt) — so they fan out
// across the suite's measurement pool, with the first cell run
// sequentially to warm any lazily initialized advisor state. The reduce
// that assembles Pairs and MeanIUDR walks the cells strictly in workload
// order, so the assessment is bit-identical for every worker count.
func (s *Suite) MeasureOn(ctx context.Context, m *Method, adv advisor.Advisor, base advisor.Advisor, ac advisor.Constraint, tests []*workload.Workload) (asmt *Assessment, err error) {
	ctx, tsp := trace.Start(ctx, "assess.measure")
	tsp.Str("method", m.Name)
	tsp.Str("advisor", adv.Name())
	tsp.Int("workloads", int64(len(tests)))
	defer func() { tsp.Fail(err); tsp.End() }()
	defer obs.StartSpan(mMeasureSecs).EndExemplar(tsp.TraceID())
	type cell struct {
		pairs []Pair
		sum   float64
		n     int
	}
	cells := make([]cell, len(tests))
	measure := func(i int) (err error) {
		ctx, csp := trace.Start(ctx, "assess.cell")
		csp.Int("workload", int64(i))
		defer func() { csp.Fail(err); csp.End() }()
		w := tests[i]
		mAssessedWorkloads.Inc()
		u, err := s.UtilityOfCtx(ctx, adv, base, ac, w)
		if err != nil || u <= s.P.Theta {
			csp.Bool("skipped", true)
			return nil
		}
		variants, err := m.VariantsAt(ctx, w, int64(i))
		if err != nil {
			return err
		}
		c := &cells[i]
		for _, pert := range variants {
			if err := ctx.Err(); err != nil {
				return err
			}
			mPairsMeasured.Inc()
			pair := Pair{Orig: w, Pert: pert, U: u}
			if !s.Sargable(pert) {
				mPairsNonSargable.Inc()
				pair.NonSargable = true
				c.pairs = append(c.pairs, pair)
				continue
			}
			uPert, err := s.UtilityOfCtx(ctx, adv, base, ac, pert)
			if err != nil {
				continue
			}
			pair.UPert = uPert
			pair.IUDR = workload.IUDR(u, uPert)
			c.pairs = append(c.pairs, pair)
			c.sum += pair.IUDR
			c.n++
		}
		csp.Int("pairs", int64(len(c.pairs)))
		return nil
	}
	if len(tests) > 0 {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		if err := measure(0); err != nil {
			return nil, err
		}
		if err := par.ForEach(ctx, s.measureWorkers(), len(tests)-1, func(i int) error {
			return measure(i + 1)
		}); err != nil {
			return nil, err
		}
	}
	out := &Assessment{}
	var sum float64
	// Attack telemetry rides the deterministic reduce, not the parallel
	// cells: pairs are replayed strictly in workload order here, so the
	// recorded trajectory is bit-identical for every measurement worker
	// count. tele is nil on an uninstrumented context, making the whole
	// block free when telemetry is off.
	tele := telemetry.FromContext(ctx)
	var (
		seq                int64 // candidate sequence number across all cells
		prior              int64 // candidates recorded by earlier Measure calls
		accepted, rejected float64
		best               float64 // best-so-far IUDR (the regression curve)
	)
	if tele != nil {
		// A scope can span several Measure calls (retries replay the same
		// steps and are deduplicated by the series' monotonicity; distinct
		// measurements continue the trajectory). Resume the counters from
		// where the last call left off.
		prior = tele.Series("attack_accepted").Count()
		if p, ok := tele.Series("attack_accepted").Latest(); ok {
			accepted = p.Value
		}
		if p, ok := tele.Series("attack_rejected").Latest(); ok {
			rejected = p.Value
		}
		if p, ok := tele.Series("attack_best_iudr").Latest(); ok {
			best = p.Value
		}
	}
	for i := range cells {
		c := &cells[i]
		if tele != nil {
			for _, p := range c.pairs {
				seq++
				step := prior + seq
				if p.NonSargable {
					// A non-sargable variant is a rejected action: it can
					// never demonstrate index-utility degradation.
					rejected++
				} else {
					accepted++
					tele.Series("attack_cost_delta").Append(step, p.U-p.UPert)
					if p.IUDR > best {
						best = p.IUDR
					}
					tele.Series("attack_best_iudr").Append(step, best)
				}
				tele.Series("attack_accepted").Append(step, accepted)
				tele.Series("attack_rejected").Append(step, rejected)
			}
		}
		out.Pairs = append(out.Pairs, c.pairs...)
		if c.n > 0 {
			sum += c.sum / float64(c.n)
			out.N++
		}
	}
	if out.N > 0 {
		out.MeanIUDR = sum / float64(out.N)
	}
	return out, nil
}

// GenerationCost reports a method's decode throughput: the wall time to
// perturb n queries is measured by the caller; this helper just produces
// the query stream (Table IV's generation-time comparison).
func (s *Suite) GenerationCost(m *Method, n int) error {
	made := 0
	for made < n {
		for _, w := range s.Test {
			variants, err := m.Variants(context.Background(), w)
			if err != nil {
				return err
			}
			for _, v := range variants {
				made += v.Size()
			}
			if made >= n {
				return nil
			}
		}
	}
	return nil
}

// WhatIfUtilityOf mirrors UtilityOf but with estimated costs — used by
// ablations that compare reward signals.
func (s *Suite) WhatIfUtilityOf(a advisor.Advisor, base advisor.Advisor, c advisor.Constraint, w *workload.Workload) (float64, error) {
	cfg, err := a.Recommend(s.E, w, c)
	if err != nil {
		return 0, err
	}
	cb, err := workload.Cost(s.E, w, s.baselineConfig(base, c, w), engine.ModeEstimated)
	if err != nil || cb <= 0 {
		return 0, err
	}
	ci, err := workload.Cost(s.E, w, cfg, engine.ModeEstimated)
	if err != nil {
		return 0, err
	}
	return 1 - ci/cb, nil
}
