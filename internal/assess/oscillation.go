package assess

import (
	"context"
	"github.com/trap-repro/trap/internal/advisor"
	"github.com/trap-repro/trap/internal/core"
	"github.com/trap-repro/trap/internal/stats"
)

// Oscillation quantifies the paper's Section V-B observation that some
// advisors (DB2Advis in particular) exhibit high performance oscillation:
// the standard deviation of the advisor's utility across slight sampled
// perturbations of the same workloads. A robust advisor holds steady
// utility; an oscillating one swings.
func (s *Suite) Oscillation(adv advisor.Advisor, base advisor.Advisor, ac advisor.Constraint, pc core.PerturbConstraint, samplesPerWorkload int) (float64, error) {
	if samplesPerWorkload < 2 {
		samplesPerWorkload = 2
	}
	fw := core.NewFramework(core.RandomModel{}, s.Vocab, pc, s.Seed+99)
	fw.Eps = s.P.Eps
	var devs []float64
	for _, w := range s.Test {
		u, err := s.UtilityOf(adv, base, ac, w)
		if err != nil || u <= s.P.Theta {
			continue
		}
		utils := []float64{u}
		for k := 0; k < samplesPerWorkload; k++ {
			pert, err := fw.GenerateSampled(context.Background(), w)
			if err != nil {
				return 0, err
			}
			if !s.Sargable(pert) {
				continue
			}
			up, err := s.UtilityOf(adv, base, ac, pert)
			if err != nil {
				continue
			}
			utils = append(utils, up)
		}
		if len(utils) >= 2 {
			devs = append(devs, stats.Std(utils))
		}
	}
	return stats.Mean(devs), nil
}

// OscillationTable compares the oscillation of several advisors — the
// quantified version of the paper's DB2Advis finding.
func OscillationTable(s *Suite, advisors []string, pc core.PerturbConstraint, samples int) (*Table, error) {
	t := NewTable("Advisor utility oscillation under slight perturbations",
		"advisor", "utility std-dev", "")
	for _, name := range advisors {
		spec, err := SpecByName(name)
		if err != nil {
			return nil, err
		}
		adv, err := s.BuildAdvisor(spec)
		if err != nil {
			return nil, err
		}
		osc, err := s.Oscillation(adv, s.BaselineAdvisor(spec), s.ConstraintFor(spec), pc, samples)
		if err != nil {
			return nil, err
		}
		t.Add(name, F(osc), "")
	}
	return t, nil
}
