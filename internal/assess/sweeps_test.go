package assess

import (
	"testing"

	"github.com/trap-repro/trap/internal/bench"
	"github.com/trap-repro/trap/internal/core"
	"github.com/trap-repro/trap/internal/schema"
)

// benchTPCH builds the scaled TPC-H schema for the sweep tests.
func benchTPCH(t testing.TB) *schema.Schema {
	t.Helper()
	return bench.TPCH(sweepParams().ScaleDown)
}

// sweepParams shrinks everything as far as possible for the sweep-driver
// tests (Random method only, so no generator training happens).
func sweepParams() Params {
	p := tinyParams()
	p.TestWorkloads = 2
	p.RandomAttempts = 2
	return p
}

func TestFig9SweepsWithRandom(t *testing.T) {
	if testing.Short() {
		t.Skip("sweep driver test")
	}
	s, err := NewSuite("tpch", benchTPCH(t), sweepParams(), 5)
	if err != nil {
		t.Fatal(err)
	}
	tab, err := Fig9(s, []string{"Random"})
	if err != nil {
		t.Fatal(err)
	}
	// 6 theta values + 5 eps values + 4 workload sizes, one method each.
	if len(tab.Rows) != 15 {
		t.Errorf("Fig9 rows = %d, want 15", len(tab.Rows))
	}
	kinds := map[string]int{}
	for _, r := range tab.Rows {
		kinds[r[0]]++
	}
	if kinds["theta"] != 6 || kinds["eps"] != 5 || kinds["workload-size"] != 4 {
		t.Errorf("sweep breakdown wrong: %v", kinds)
	}
}

func TestFig10ScalabilityWithRandom(t *testing.T) {
	if testing.Short() {
		t.Skip("sweep driver test")
	}
	tab, err := Fig10(sweepParams(), []int{300}, []string{"Random"}, 7)
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) != 1 {
		t.Errorf("Fig10 rows = %d, want 1", len(tab.Rows))
	}
}

func TestFig11BudgetsWithRandom(t *testing.T) {
	if testing.Short() {
		t.Skip("sweep driver test")
	}
	s, err := NewSuite("tpch", benchTPCH(t), sweepParams(), 9)
	if err != nil {
		t.Fatal(err)
	}
	tab, err := Fig11(s, []string{"Random"})
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) != 5 {
		t.Errorf("Fig11 rows = %d, want 5", len(tab.Rows))
	}
}

func TestFig12And13SmallSlice(t *testing.T) {
	if testing.Short() {
		t.Skip("sweep driver test")
	}
	p := sweepParams()
	p.AdvisorEpisodes = 4
	s, err := NewSuite("tpch", benchTPCH(t), p, 11)
	if err != nil {
		t.Fatal(err)
	}
	t12, err := Fig12(s, []core.PerturbConstraint{core.ValueOnly})
	if err != nil {
		t.Fatal(err)
	}
	if len(t12.Rows) != 6 { // 3 backbones × 2 states × 1 constraint
		t.Errorf("Fig12 rows = %d, want 6", len(t12.Rows))
	}
	t13, err := Fig13(s, core.ValueOnly)
	if err != nil {
		t.Fatal(err)
	}
	if len(t13.Rows) != 4 {
		t.Errorf("Fig13 rows = %d, want 4", len(t13.Rows))
	}
}
