// Package assess is the robustness-assessment harness: it wires datasets,
// advisors, generation methods and metrics together and provides one
// driver per table and figure of the paper's evaluation (Section V) and
// analysis (Section VI). The cmd/experiments binary and the repository's
// benchmarks are thin wrappers over these drivers.
package assess

import (
	"context"
	"fmt"
	"math/rand"
	"runtime"
	"sync"

	"github.com/trap-repro/trap/internal/advisor"
	"github.com/trap-repro/trap/internal/core"
	"github.com/trap-repro/trap/internal/engine"
	"github.com/trap-repro/trap/internal/faultinject"
	"github.com/trap-repro/trap/internal/obs"
	"github.com/trap-repro/trap/internal/schema"
	"github.com/trap-repro/trap/internal/trace"
	"github.com/trap-repro/trap/internal/workload"
)

// Assessment-phase metrics, aggregated across suites.
var (
	mSuiteBuildSecs    = obs.Default().Histogram("assess_suite_build_seconds")
	mAdvisorTrainSecs  = obs.Default().Histogram("assess_advisor_train_seconds")
	mMethodBuildSecs   = obs.Default().Histogram("assess_method_build_seconds")
	mMeasureSecs       = obs.Default().Histogram("assess_measure_seconds")
	mRecommendSecs     = obs.Default().Histogram("advisor_recommend_seconds")
	mRecommendCalls    = obs.Default().Counter("advisor_recommend_total")
	mPairsMeasured     = obs.Default().Counter("assess_pairs_total")
	mPairsNonSargable  = obs.Default().Counter("assess_pairs_nonsargable_total")
	mAssessedWorkloads = obs.Default().Counter("assess_workloads_total")
)

// Params scales every experiment: the defaults used by tests and
// benchmarks (QuickParams) finish in seconds; FullParams approaches the
// paper's setup and is meant for the CLI.
type Params struct {
	ScaleDown       int64 // benchmark schema row divisor
	Templates       int   // query templates per dataset
	TrainWorkloads  int   // workloads for RL training
	TestWorkloads   int   // workloads for assessment
	WorkloadSize    int   // max queries per workload (sampled 1..N)
	UtilitySamples  int   // training samples for the learned utility model
	PretrainPairs   int
	PretrainEpochs  int
	RLEpochs        int
	AdvisorEpisodes int // training episodes for learned advisors
	Eps             int
	Theta           float64
	RandomAttempts  int // the Random baseline's extra sample budget (5x)
	Sizes           core.Sizes
}

// QuickParams returns the fast configuration used by tests and benches.
func QuickParams() Params {
	return Params{
		ScaleDown:       200,
		Templates:       10,
		TrainWorkloads:  6,
		TestWorkloads:   6,
		WorkloadSize:    6,
		UtilitySamples:  400,
		PretrainPairs:   6,
		PretrainEpochs:  2,
		RLEpochs:        3,
		AdvisorEpisodes: 40,
		Eps:             5,
		Theta:           0.1,
		RandomAttempts:  5,
		Sizes:           core.Sizes{Embed: 16, Hidden: 16},
	}
}

// FullParams returns the heavier configuration for the CLI (still far
// below the paper's 20k/5k workloads, which need days of compute).
func FullParams() Params {
	return Params{
		ScaleDown:       20,
		Templates:       20,
		TrainWorkloads:  24,
		TestWorkloads:   16,
		WorkloadSize:    12,
		UtilitySamples:  2000,
		PretrainPairs:   40,
		PretrainEpochs:  8,
		RLEpochs:        10,
		AdvisorEpisodes: 120,
		Eps:             5,
		Theta:           0.1,
		RandomAttempts:  5,
		Sizes:           core.DefaultSizes(),
	}
}

// Suite bundles one dataset's assessment context.
//
// # Concurrency
//
// A Suite may be shared by concurrent assessments (trapd runs one suite
// per dataset across its whole worker pool) under the following
// contract: the engine, workloads, vocabulary and utility model are safe
// for concurrent use; BuildAdvisor, BuildMethod, Measure/MeasureOn and
// UtilityOf may run concurrently as long as every call operates on its
// own advisor/method instances (advisors and frameworks are stateful).
// The shared pretraining cache and the workload generator's RNG are
// serialized internally by mu.
//
// MeasureOn additionally fans its own test-workload cells across a
// bounded pool (MeasureWorkers). Its first cell runs sequentially so a
// learned advisor's lazily initialized state is warm before concurrent
// cells issue read-only Recommend calls — the same warm-then-fan
// contract the RL rollout pool uses (see internal/core).
type Suite struct {
	Name    string
	P       Params
	E       *engine.Engine
	Gen     *workload.Generator
	Vocab   *core.Vocab
	Utility *core.UtilityModel
	Train   []*workload.Workload
	Test    []*workload.Workload
	Seed    int64

	// Storage is the storage-budget constraint (half the dataset size,
	// the paper's moderate default); Count is the #index constraint.
	Storage advisor.Constraint
	Count   advisor.Constraint

	// Inject, when non-nil, arms the fault-injection points of every
	// framework the suite builds (and should also be installed on E via
	// SetInjector by the owner). Set before any BuildMethod call; nil
	// disables injection.
	Inject faultinject.Injector

	// MeasureWorkers bounds MeasureOn's per-workload cell pool
	// (0: GOMAXPROCS; 1: sequential). Assessments are bit-identical for
	// every value — the pool only changes wall-clock time.
	MeasureWorkers int
	// TrainWorkers is installed as RolloutWorkers on every framework the
	// suite builds, bounding the RL trajectory pool of method training
	// (0: GOMAXPROCS; 1: sequential). Also bit-identical for every value.
	TrainWorkers int

	// mu serializes the mutable shared state below (and Gen's RNG, which
	// the pretraining phase draws from).
	mu sync.Mutex
	// pretrained caches encoder snapshots per perturbation constraint so
	// the one-time pretraining phase is shared across advisors.
	pretrained map[core.PerturbConstraint][][]float64
}

// NewSuite builds a suite over a schema.
func NewSuite(name string, s *schema.Schema, p Params, seed int64) (*Suite, error) {
	defer obs.StartSpan(mSuiteBuildSecs).End()
	if err := s.Validate(); err != nil {
		return nil, err
	}
	e := engine.New(s)
	gen := workload.NewGenerator(s, seed, p.Templates)
	var train, test []*workload.Workload
	for i := 0; i < p.TrainWorkloads; i++ {
		train = append(train, gen.WorkloadSized(p.WorkloadSize))
	}
	for i := 0; i < p.TestWorkloads; i++ {
		test = append(test, gen.WorkloadSized(p.WorkloadSize))
	}
	vocab := core.BuildVocab(s, append(append([]*workload.Workload(nil), train...), test...))
	um, err := core.TrainUtilityModel(e, gen, p.UtilitySamples, seed+1)
	if err != nil {
		return nil, err
	}
	return &Suite{
		Name: name, P: p, E: e, Gen: gen, Vocab: vocab, Utility: um,
		Train: train, Test: test, Seed: seed,
		Storage:    advisor.Constraint{StorageBytes: s.TotalSizeBytes() / 2},
		Count:      advisor.Constraint{MaxIndexes: 4},
		pretrained: map[core.PerturbConstraint][][]float64{},
	}, nil
}

// AdvisorSpec describes one of the ten assessed advisors (Table III):
// its constructor, its tuning constraint kind, and its utility baseline
// Ib (the empty configuration for heuristics; the named heuristic for
// learned advisors, per the paper's pairing).
type AdvisorSpec struct {
	Name     string
	Learned  bool
	Baseline string // "" = null configuration
	Storage  bool   // storage budget vs #index constraint
	Make     func(seed int64) advisor.Advisor
}

// TenAdvisors returns the paper's ten advisors.
func TenAdvisors() []AdvisorSpec {
	return []AdvisorSpec{
		{Name: "Extend", Storage: true, Make: func(int64) advisor.Advisor { return &advisor.Extend{Opt: advisor.DefaultOptions()} }},
		{Name: "DB2Advis", Storage: true, Make: func(int64) advisor.Advisor { return &advisor.DB2Advis{Opt: advisor.DefaultOptions()} }},
		{Name: "AutoAdmin", Make: func(int64) advisor.Advisor { return &advisor.AutoAdmin{Opt: advisor.DefaultOptions()} }},
		{Name: "Drop", Make: func(int64) advisor.Advisor { return &advisor.Drop{} }},
		{Name: "Relaxation", Storage: true, Make: func(int64) advisor.Advisor { return &advisor.Relaxation{Opt: advisor.DefaultOptions()} }},
		{Name: "DTA", Storage: true, Make: func(int64) advisor.Advisor { return &advisor.DTA{Opt: advisor.DefaultOptions()} }},
		{Name: "SWIRL", Learned: true, Baseline: "Extend", Storage: true,
			Make: func(seed int64) advisor.Advisor { return advisor.NewSWIRL(seed) }},
		{Name: "DRLindex", Learned: true, Baseline: "Drop",
			Make: func(seed int64) advisor.Advisor { return advisor.NewDRLindex(seed) }},
		{Name: "DQN", Learned: true, Baseline: "AutoAdmin",
			Make: func(seed int64) advisor.Advisor { return advisor.NewDQN(seed) }},
		{Name: "MCTS", Learned: true, Baseline: "AutoAdmin",
			Make: func(seed int64) advisor.Advisor { return advisor.NewMCTS(seed) }},
	}
}

// SpecByName returns the named advisor spec.
func SpecByName(name string) (AdvisorSpec, error) {
	for _, s := range TenAdvisors() {
		if s.Name == name {
			return s, nil
		}
	}
	return AdvisorSpec{}, fmt.Errorf("assess: unknown advisor %q", name)
}

// ConstraintFor returns the tuning constraint an advisor is assessed
// under (same kind and magnitude for fairness, per Section V-A).
func (s *Suite) ConstraintFor(spec AdvisorSpec) advisor.Constraint {
	if spec.Storage {
		return s.Storage
	}
	return s.Count
}

// BuildAdvisor constructs (and for learned advisors trains) the advisor.
func (s *Suite) BuildAdvisor(spec AdvisorSpec) (advisor.Advisor, error) {
	return s.BuildAdvisorCtx(context.Background(), spec)
}

// BuildAdvisorCtx is BuildAdvisor with cooperative cancellation: when the
// advisor implements advisor.CtxTrainable, training stops at the next
// episode boundary once ctx is done.
func (s *Suite) BuildAdvisorCtx(ctx context.Context, spec AdvisorSpec) (adv advisor.Advisor, err error) {
	ctx, tsp := trace.Start(ctx, "assess.build_advisor")
	tsp.Str("advisor", spec.Name)
	defer func() { tsp.Fail(err); tsp.End() }()
	a := spec.Make(s.Seed)
	switch v := a.(type) {
	case *advisor.SWIRL:
		v.Episodes = s.P.AdvisorEpisodes
	case *advisor.DRLindex:
		v.Episodes = s.P.AdvisorEpisodes
	case *advisor.DQN:
		v.Episodes = s.P.AdvisorEpisodes
	}
	if tr, ok := a.(advisor.Trainable); ok {
		sp := obs.StartSpan(mAdvisorTrainSecs)
		var err error
		if ctr, ok := a.(advisor.CtxTrainable); ok {
			err = ctr.TrainCtx(ctx, s.E, s.Train, s.ConstraintFor(spec))
		} else {
			err = tr.Train(s.E, s.Train, s.ConstraintFor(spec))
		}
		sp.End()
		if err != nil {
			return nil, err
		}
	}
	return a, nil
}

// BaselineAdvisor returns the Ib provider for a spec (nil for the null
// configuration).
func (s *Suite) BaselineAdvisor(spec AdvisorSpec) advisor.Advisor {
	switch spec.Baseline {
	case "Extend":
		return &advisor.Extend{Opt: advisor.DefaultOptions()}
	case "Drop":
		return &advisor.Drop{}
	case "AutoAdmin":
		return &advisor.AutoAdmin{Opt: advisor.DefaultOptions()}
	}
	return nil
}

// baselineConfig computes Ib for a workload.
func (s *Suite) baselineConfig(base advisor.Advisor, c advisor.Constraint, w *workload.Workload) schema.Config {
	if base == nil {
		return nil
	}
	cfg, err := base.Recommend(s.E, w, c)
	if err != nil {
		return nil
	}
	return cfg
}

// UtilityOf measures the advisor's index utility on a workload with the
// runtime stand-in (Definition 3.2).
func (s *Suite) UtilityOf(a advisor.Advisor, base advisor.Advisor, c advisor.Constraint, w *workload.Workload) (float64, error) {
	return s.UtilityOfCtx(context.Background(), a, base, c, w)
}

// UtilityOfCtx is UtilityOf with cooperative cancellation of the
// runtime-costing loops.
func (s *Suite) UtilityOfCtx(ctx context.Context, a advisor.Advisor, base advisor.Advisor, c advisor.Constraint, w *workload.Workload) (float64, error) {
	mRecommendCalls.Inc()
	sp := obs.StartSpan(mRecommendSecs)
	cfg, err := a.Recommend(s.E, w, c)
	sp.End()
	if err != nil {
		return 0, err
	}
	return workload.UtilityCtx(ctx, s.E, w, cfg, s.baselineConfig(base, c, w))
}

// rng derives a deterministic sub-rng.
func (s *Suite) rng(salt int64) *rand.Rand {
	return rand.New(rand.NewSource(s.Seed*1_000_003 + salt))
}

// measureWorkers resolves the measurement pool size.
func (s *Suite) measureWorkers() int {
	if s.MeasureWorkers > 0 {
		return s.MeasureWorkers
	}
	return runtime.GOMAXPROCS(0)
}
