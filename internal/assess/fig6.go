package assess

import (
	"context"
	"github.com/trap-repro/trap/internal/advisor"
	"github.com/trap-repro/trap/internal/bench"
	"github.com/trap-repro/trap/internal/core"
)

// Fig6Cell is one measurement of the main robustness grid.
type Fig6Cell struct {
	Dataset    string
	Constraint core.PerturbConstraint
	Advisor    string
	Method     string
	IUDR       float64
	N          int
}

// Fig6 runs the headline robustness assessment (Figure 6): for every
// suite × perturbation constraint × advisor × generation method, the mean
// IUDR over the suite's properly-operating test workloads. The advisor
// and method lists allow running slices of the grid.
func Fig6(suites []*Suite, advisors, methods []string, constraints []core.PerturbConstraint) ([]Fig6Cell, *Table, error) {
	if len(constraints) == 0 {
		constraints = core.AllConstraints
	}
	var cells []Fig6Cell
	t := NewTable("Figure 6: IUDR of index advisors under adversarial workloads",
		"dataset", "constraint", "advisor", "method", "IUDR", "workloads")
	for _, s := range suites {
		for _, advName := range advisors {
			spec, err := SpecByName(advName)
			if err != nil {
				return nil, nil, err
			}
			adv, err := s.BuildAdvisor(spec)
			if err != nil {
				return nil, nil, err
			}
			base := s.BaselineAdvisor(spec)
			ac := s.ConstraintFor(spec)
			for _, pc := range constraints {
				for _, mname := range methods {
					m, err := s.BuildMethod(context.Background(), mname, pc, adv, base, ac, MethodConfig{})
					if err != nil {
						return nil, nil, err
					}
					res, err := s.Measure(context.Background(), m, adv, base, ac)
					if err != nil {
						return nil, nil, err
					}
					cell := Fig6Cell{
						Dataset: s.Name, Constraint: pc, Advisor: advName,
						Method: mname, IUDR: res.MeanIUDR, N: res.N,
					}
					cells = append(cells, cell)
					t.Add(s.Name, pc.String(), advName, mname, F(res.MeanIUDR), I(res.N))
				}
			}
		}
	}
	return cells, t, nil
}

// Fig10 runs the scalability analysis on large, wide schemas against
// Extend (Figure 10).
func Fig10(p Params, columns []int, methods []string, seed int64) (*Table, error) {
	if len(columns) == 0 {
		columns = []int{809, 1031, 1265}
	}
	t := NewTable("Figure 10: scalability on large real-world-like schemas",
		"columns", "method", "IUDR", "workloads")
	for _, cols := range columns {
		s, err := NewSuiteFromSchema("wide", cols, p, seed)
		if err != nil {
			return nil, err
		}
		adv := &advisor.Extend{Opt: advisor.DefaultOptions()}
		ac := s.Storage
		for _, mname := range methods {
			m, err := s.BuildMethod(context.Background(), mname, core.SharedTable, adv, nil, ac, MethodConfig{})
			if err != nil {
				return nil, err
			}
			res, err := s.Measure(context.Background(), m, adv, nil, ac)
			if err != nil {
				return nil, err
			}
			t.Add(I(cols), mname, F(res.MeanIUDR), I(res.N))
		}
	}
	return t, nil
}

// NewSuiteFromSchema builds a suite over a synthetic wide schema (used by
// Figure 10).
func NewSuiteFromSchema(name string, columns int, p Params, seed int64) (*Suite, error) {
	rows := int64(2_000_000) / p.ScaleDown
	if rows < 1000 {
		rows = 1000
	}
	sch := bench.LargeSchema(name, columns, rows)
	return NewSuite(name, sch, p, seed)
}
