package assess

import (
	"context"
	"github.com/trap-repro/trap/internal/advisor"
	"github.com/trap-repro/trap/internal/core"
	"github.com/trap-repro/trap/internal/workload"
)

// Fig9 runs the hyper-parameter study (Figure 9) under SharedTable
// against Extend: IUDR versus the initial utility threshold θ, the edit
// budget ε, and the workload size |W|.
func Fig9(s *Suite, methods []string) (*Table, error) {
	adv := &advisor.Extend{Opt: advisor.DefaultOptions()}
	ac := s.Storage
	t := NewTable("Figure 9: IUDR vs θ, ε and |W| (SharedTable, Extend)",
		"sweep", "value", "method", "IUDR", "workloads")

	// (a) θ sweep: methods trained at the default θ, measured with
	// progressively stricter filters.
	builtDefault := map[string]*Method{}
	for _, mname := range methods {
		m, err := s.BuildMethod(context.Background(), mname, core.SharedTable, adv, nil, ac, MethodConfig{})
		if err != nil {
			return nil, err
		}
		builtDefault[mname] = m
	}
	for _, theta := range []float64{0.0, 0.1, 0.2, 0.3, 0.4, 0.5} {
		saved := s.P.Theta
		s.P.Theta = theta
		for _, mname := range methods {
			res, err := s.Measure(context.Background(), builtDefault[mname], adv, nil, ac)
			if err != nil {
				s.P.Theta = saved
				return nil, err
			}
			t.Add("theta", F2(theta), mname, F(res.MeanIUDR), I(res.N))
		}
		s.P.Theta = saved
	}

	// (b) ε sweep: each budget needs its own trained method.
	for _, eps := range []int{1, 3, 5, 7, 9} {
		for _, mname := range methods {
			m, err := s.BuildMethod(context.Background(), mname, core.SharedTable, adv, nil, ac, MethodConfig{Eps: eps})
			if err != nil {
				return nil, err
			}
			res, err := s.Measure(context.Background(), m, adv, nil, ac)
			if err != nil {
				return nil, err
			}
			t.Add("eps", I(eps), mname, F(res.MeanIUDR), I(res.N))
		}
	}

	// (c) |W| sweep: fixed-size test workloads.
	for _, size := range []int{1, 10, 25, 50} {
		var tests []*workload.Workload
		n := s.P.TestWorkloads
		if n > 4 {
			n = 4
		}
		for i := 0; i < n; i++ {
			tests = append(tests, s.Gen.Workload(size))
		}
		for _, mname := range methods {
			res, err := s.MeasureOn(context.Background(), builtDefault[mname], adv, nil, ac, tests)
			if err != nil {
				return nil, err
			}
			t.Add("workload-size", I(size), mname, F(res.MeanIUDR), I(res.N))
		}
	}
	return t, nil
}

// Fig11 runs the storage-budget study (Figure 11): IUDR against Extend
// under SharedTable as the budget grows from a sliver to most of the
// dataset.
func Fig11(s *Suite, methods []string) (*Table, error) {
	adv := &advisor.Extend{Opt: advisor.DefaultOptions()}
	t := NewTable("Figure 11: IUDR vs storage budget (SharedTable, Extend)",
		"budget (frac of data)", "method", "IUDR", "workloads")
	total := s.E.Schema().TotalSizeBytes()
	for _, frac := range []float64{0.05, 0.1, 0.25, 0.5, 0.75} {
		ac := advisor.Constraint{StorageBytes: total * frac}
		for _, mname := range methods {
			m, err := s.BuildMethod(context.Background(), mname, core.SharedTable, adv, nil, ac, MethodConfig{})
			if err != nil {
				return nil, err
			}
			res, err := s.Measure(context.Background(), m, adv, nil, ac)
			if err != nil {
				return nil, err
			}
			t.Add(F2(frac), mname, F(res.MeanIUDR), I(res.N))
		}
	}
	return t, nil
}
