package assess

import (
	"fmt"

	"github.com/trap-repro/trap/internal/advisor"
	"github.com/trap-repro/trap/internal/core"
	"github.com/trap-repro/trap/internal/obs"
	"github.com/trap-repro/trap/internal/workload"
)

// MethodNames lists the four workload generation methods of Section V-B
// in paper order.
var MethodNames = []string{"Random", "GRU", "Seq2Seq", "TRAP"}

// Method is a generation method trained (where applicable) against a
// specific advisor under a perturbation constraint.
type Method struct {
	Name     string
	FW       *core.Framework
	Attempts int // >1 for Random: extra sampled variants, averaged
	// Trace is the RL reward trace recorded during training.
	Trace []float64
}

// MethodConfig tweaks method construction for the ablations.
type MethodConfig struct {
	// NoPretrain skips the pretraining phase (Figure 8b).
	NoPretrain bool
	// NoCostModel uses raw what-if estimates as the reward (Figure 8a).
	NoCostModel bool
	// Model overrides the generation model (PLM variants of Figure 7).
	Model core.Scorer
	// RLEpochs overrides the training epochs.
	RLEpochs int
	// Eps overrides the edit budget.
	Eps int
	// Theta overrides the utility threshold.
	Theta float64
}

// BuildMethod constructs and trains a generation method against an
// advisor. TRAP gets pretraining (cached per constraint: it is an
// advisor-independent one-time effort) and the learned-utility reward;
// GRU and Seq2Seq are RL-trained with the same reward but without
// attention/pretraining; Random needs no training.
func (s *Suite) BuildMethod(name string, pc core.PerturbConstraint, adv advisor.Advisor, base advisor.Advisor, ac advisor.Constraint, mc MethodConfig) (*Method, error) {
	defer obs.StartSpan(mMethodBuildSecs).End()
	epochs := s.P.RLEpochs
	if mc.RLEpochs > 0 {
		epochs = mc.RLEpochs
	}
	newFW := func(m core.Scorer) *core.Framework {
		fw := core.NewFramework(m, s.Vocab, pc, s.Seed+int64(pc)*31)
		fw.Eps = s.P.Eps
		if mc.Eps > 0 {
			fw.Eps = mc.Eps
		}
		fw.Theta = s.P.Theta
		if mc.Theta != 0 {
			fw.Theta = mc.Theta
		}
		if !mc.NoCostModel {
			fw.Utility = s.Utility
		}
		return fw
	}
	rng := s.rng(int64(pc) + 7)
	switch name {
	case "Random":
		fw := newFW(core.RandomModel{})
		return &Method{Name: name, FW: fw, Attempts: s.P.RandomAttempts}, nil
	case "GRU":
		fw := newFW(core.NewGRUModel(s.Vocab, s.P.Sizes, rng))
		trace, err := fw.RLTrain(s.E, adv, base, ac, s.Train, epochs)
		if err != nil {
			return nil, err
		}
		return &Method{Name: name, FW: fw, Attempts: 1, Trace: trace}, nil
	case "Seq2Seq":
		fw := newFW(core.NewSeq2Seq(s.Vocab, s.P.Sizes, rng))
		trace, err := fw.RLTrain(s.E, adv, base, ac, s.Train, epochs)
		if err != nil {
			return nil, err
		}
		return &Method{Name: name, FW: fw, Attempts: 1, Trace: trace}, nil
	case "TRAP":
		model := core.NewTRAPModel(s.Vocab, s.P.Sizes, rng)
		fw := newFW(model)
		if !mc.NoPretrain {
			if err := s.pretrainInto(fw, model, pc); err != nil {
				return nil, err
			}
		}
		trace, err := fw.RLTrain(s.E, adv, base, ac, s.Train, epochs)
		if err != nil {
			return nil, err
		}
		return &Method{Name: name, FW: fw, Attempts: 1, Trace: trace}, nil
	default:
		if mc.Model == nil {
			return nil, fmt.Errorf("assess: unknown method %q", name)
		}
		fw := newFW(mc.Model)
		trace, err := fw.RLTrain(s.E, adv, base, ac, s.Train, epochs)
		if err != nil {
			return nil, err
		}
		return &Method{Name: name, FW: fw, Attempts: 1, Trace: trace}, nil
	}
}

// pretrainInto applies the advisor-independent pretraining phase to a
// TRAP model, reusing a cached encoder snapshot per constraint. The
// suite lock serializes concurrent builders: the first one pretrains,
// later ones (and concurrent jobs on other advisors) reuse the snapshot.
// It also protects Gen's RNG, which Pretrain samples pairs from.
func (s *Suite) pretrainInto(fw *core.Framework, model *core.TRAPModel, pc core.PerturbConstraint) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if snap, ok := s.pretrained[pc]; ok {
		model.EncoderParams().SetState(snap)
		return nil
	}
	if _, err := fw.Pretrain(s.Gen, s.P.PretrainPairs, s.P.PretrainEpochs); err != nil {
		return err
	}
	s.pretrained[pc] = model.EncoderParams().State()
	return nil
}

// Variants produces the method's perturbed workload(s) for a test
// workload: one greedy decode for trained models, Attempts sampled
// decodes for Random.
func (m *Method) Variants(w *workload.Workload) ([]*workload.Workload, error) {
	if m.Attempts <= 1 {
		p, err := m.FW.Generate(w)
		if err != nil {
			return nil, err
		}
		return []*workload.Workload{p}, nil
	}
	var out []*workload.Workload
	for i := 0; i < m.Attempts; i++ {
		p, err := m.FW.GenerateSampled(w)
		if err != nil {
			return nil, err
		}
		out = append(out, p)
	}
	return out, nil
}
