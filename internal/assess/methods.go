package assess

import (
	"context"
	"fmt"
	"io"

	"github.com/trap-repro/trap/internal/advisor"
	"github.com/trap-repro/trap/internal/core"
	"github.com/trap-repro/trap/internal/obs"
	"github.com/trap-repro/trap/internal/trace"
	"github.com/trap-repro/trap/internal/workload"
)

// MethodNames lists the four workload generation methods of Section V-B
// in paper order.
var MethodNames = []string{"Random", "GRU", "Seq2Seq", "TRAP"}

// Method is a generation method trained (where applicable) against a
// specific advisor under a perturbation constraint.
type Method struct {
	Name     string
	FW       *core.Framework
	Attempts int // >1 for Random: extra sampled variants, averaged
	// Trace is the RL reward trace recorded during training.
	Trace []float64
	// Resumed reports whether training continued from a checkpoint
	// (MethodConfig.Resume) instead of starting fresh.
	Resumed bool
}

// MethodConfig tweaks method construction for the ablations.
type MethodConfig struct {
	// NoPretrain skips the pretraining phase (Figure 8b).
	NoPretrain bool
	// NoCostModel uses raw what-if estimates as the reward (Figure 8a).
	NoCostModel bool
	// Model overrides the generation model (PLM variants of Figure 7).
	Model core.Scorer
	// RLEpochs overrides the training epochs.
	RLEpochs int
	// Eps overrides the edit budget.
	Eps int
	// Theta overrides the utility threshold.
	Theta float64

	// EpochHook, when non-nil, runs after every completed RL epoch with
	// the framework and the epoch index — trapd's checkpointing hook.
	// A non-nil return aborts training with that error.
	EpochHook func(fw *core.Framework, epoch int) error
	// Resume, when non-nil, is a checkpoint stream written by
	// core.Framework.SaveCheckpoint: training restores it and continues
	// from the checkpointed epoch. An unreadable or mismatched
	// checkpoint falls back to fresh training (resume is best-effort —
	// a corrupt spool file must not fail the job).
	Resume io.Reader
}

// BuildMethod constructs and trains a generation method against an
// advisor. TRAP gets pretraining (cached per constraint: it is an
// advisor-independent one-time effort) and the learned-utility reward;
// GRU and Seq2Seq are RL-trained with the same reward but without
// attention/pretraining; Random needs no training. Cancellation via ctx
// interrupts pretraining and RL training at epoch/workload boundaries.
func (s *Suite) BuildMethod(ctx context.Context, name string, pc core.PerturbConstraint, adv advisor.Advisor, base advisor.Advisor, ac advisor.Constraint, mc MethodConfig) (mth *Method, err error) {
	ctx, tsp := trace.Start(ctx, "assess.build_method")
	tsp.Str("method", name)
	tsp.Str("advisor", adv.Name())
	defer func() { tsp.Fail(err); tsp.End() }()
	defer obs.StartSpan(mMethodBuildSecs).EndExemplar(tsp.TraceID())
	epochs := s.P.RLEpochs
	if mc.RLEpochs > 0 {
		epochs = mc.RLEpochs
	}
	newFW := func(m core.Scorer) *core.Framework {
		fw := core.NewFramework(m, s.Vocab, pc, s.Seed+int64(pc)*31)
		fw.Eps = s.P.Eps
		if mc.Eps > 0 {
			fw.Eps = mc.Eps
		}
		fw.Theta = s.P.Theta
		if mc.Theta != 0 {
			fw.Theta = mc.Theta
		}
		if !mc.NoCostModel {
			fw.Utility = s.Utility
		}
		fw.Inject = s.Inject
		fw.RolloutWorkers = s.TrainWorkers
		if mc.EpochHook != nil {
			hook := mc.EpochHook
			fw.EpochHook = func(epoch int) error { return hook(fw, epoch) }
		}
		return fw
	}
	// resume restores a checkpoint into fw; it reports whether the
	// restore succeeded (failure means train from scratch).
	resume := func(fw *core.Framework) bool {
		if mc.Resume == nil {
			return false
		}
		if _, err := fw.LoadCheckpoint(mc.Resume); err != nil {
			return false
		}
		return true
	}
	rng := s.rng(int64(pc) + 7)
	switch name {
	case "Random":
		fw := newFW(core.RandomModel{})
		return &Method{Name: name, FW: fw, Attempts: s.P.RandomAttempts}, nil
	case "GRU":
		fw := newFW(core.NewGRUModel(s.Vocab, s.P.Sizes, rng))
		resumed := resume(fw)
		rewards, err := fw.RLTrain(ctx, s.E, adv, base, ac, s.Train, epochs)
		if err != nil {
			return nil, err
		}
		return &Method{Name: name, FW: fw, Attempts: 1, Trace: rewards, Resumed: resumed}, nil
	case "Seq2Seq":
		fw := newFW(core.NewSeq2Seq(s.Vocab, s.P.Sizes, rng))
		resumed := resume(fw)
		rewards, err := fw.RLTrain(ctx, s.E, adv, base, ac, s.Train, epochs)
		if err != nil {
			return nil, err
		}
		return &Method{Name: name, FW: fw, Attempts: 1, Trace: rewards, Resumed: resumed}, nil
	case "TRAP":
		model := core.NewTRAPModel(s.Vocab, s.P.Sizes, rng)
		fw := newFW(model)
		// A successful resume restores post-pretraining parameters, so
		// the pretraining phase is skipped along with completed epochs.
		resumed := resume(fw)
		if !resumed && !mc.NoPretrain {
			if err := s.pretrainInto(ctx, fw, model, pc); err != nil {
				return nil, err
			}
		}
		rewards, err := fw.RLTrain(ctx, s.E, adv, base, ac, s.Train, epochs)
		if err != nil {
			return nil, err
		}
		return &Method{Name: name, FW: fw, Attempts: 1, Trace: rewards, Resumed: resumed}, nil
	default:
		if mc.Model == nil {
			return nil, fmt.Errorf("assess: unknown method %q", name)
		}
		fw := newFW(mc.Model)
		resumed := resume(fw)
		rewards, err := fw.RLTrain(ctx, s.E, adv, base, ac, s.Train, epochs)
		if err != nil {
			return nil, err
		}
		return &Method{Name: name, FW: fw, Attempts: 1, Trace: rewards, Resumed: resumed}, nil
	}
}

// pretrainInto applies the advisor-independent pretraining phase to a
// TRAP model, reusing a cached encoder snapshot per constraint. The
// suite lock serializes concurrent builders: the first one pretrains,
// later ones (and concurrent jobs on other advisors) reuse the snapshot.
// It also protects Gen's RNG, which Pretrain samples pairs from.
func (s *Suite) pretrainInto(ctx context.Context, fw *core.Framework, model *core.TRAPModel, pc core.PerturbConstraint) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if snap, ok := s.pretrained[pc]; ok {
		model.EncoderParams().SetState(snap)
		return nil
	}
	if _, err := fw.Pretrain(ctx, s.Gen, s.P.PretrainPairs, s.P.PretrainEpochs); err != nil {
		return err
	}
	s.pretrained[pc] = model.EncoderParams().State()
	return nil
}

// Variants produces the method's perturbed workload(s) for a test
// workload: one greedy decode for trained models, Attempts sampled
// decodes for Random.
func (m *Method) Variants(ctx context.Context, w *workload.Workload) ([]*workload.Workload, error) {
	if m.Attempts <= 1 {
		p, err := m.FW.Generate(ctx, w)
		if err != nil {
			return nil, err
		}
		return []*workload.Workload{p}, nil
	}
	var out []*workload.Workload
	for i := 0; i < m.Attempts; i++ {
		p, err := m.FW.GenerateSampled(ctx, w)
		if err != nil {
			return nil, err
		}
		out = append(out, p)
	}
	return out, nil
}

// VariantsAt is Variants with a deterministic salt: sampled attempts
// draw from private RNG streams derived from (framework seed, salt,
// attempt) instead of the shared training RNG, so parallel assessment
// cells produce the same variants regardless of execution order.
func (m *Method) VariantsAt(ctx context.Context, w *workload.Workload, salt int64) ([]*workload.Workload, error) {
	if m.Attempts <= 1 {
		p, err := m.FW.Generate(ctx, w)
		if err != nil {
			return nil, err
		}
		return []*workload.Workload{p}, nil
	}
	var out []*workload.Workload
	for i := 0; i < m.Attempts; i++ {
		p, err := m.FW.GenerateSeeded(ctx, w, salt*1_000_003+int64(i))
		if err != nil {
			return nil, err
		}
		out = append(out, p)
	}
	return out, nil
}
