package assess

import (
	"context"
	"reflect"
	"testing"

	"github.com/trap-repro/trap/internal/advisor"
	"github.com/trap-repro/trap/internal/core"
)

// TestMeasureBitIdenticalAcrossWorkers verifies the assessment analogue
// of the rollout-pool guarantee: MeasureOn's per-workload cells fan out
// across MeasureWorkers, yet the Assessment — pair list, per-cell means
// and MeanIUDR — is bit-identical for every worker count. Random's
// multiple attempts exercise the seeded variant path (VariantsAt), whose
// determinism is what makes the cells order-independent.
func TestMeasureBitIdenticalAcrossWorkers(t *testing.T) {
	s := tinySuite(t)
	ctx := context.Background()
	adv := &advisor.Extend{Opt: advisor.DefaultOptions()}
	m, err := s.BuildMethod(ctx, "Random", core.ValueOnly, adv, nil, s.Storage, MethodConfig{})
	if err != nil {
		t.Fatal(err)
	}
	var want *Assessment
	for _, workers := range []int{1, 2, 4} {
		s.MeasureWorkers = workers
		got, err := s.Measure(ctx, m, adv, nil, s.Storage)
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if workers == 1 {
			want = got
			continue
		}
		if got.MeanIUDR != want.MeanIUDR || got.N != want.N {
			t.Errorf("workers=%d: MeanIUDR/N = %v/%d, want %v/%d",
				workers, got.MeanIUDR, got.N, want.MeanIUDR, want.N)
		}
		if len(got.Pairs) != len(want.Pairs) {
			t.Fatalf("workers=%d: %d pairs, want %d", workers, len(got.Pairs), len(want.Pairs))
		}
		// Compare pair contents, not structs: sqlx.Query memoizes plans in
		// unexported fields that reflect.DeepEqual would drag in.
		for i := range got.Pairs {
			g, w := got.Pairs[i], want.Pairs[i]
			if g.Orig != w.Orig || g.Pert.Key() != w.Pert.Key() ||
				g.U != w.U || g.UPert != w.UPert || g.IUDR != w.IUDR ||
				g.NonSargable != w.NonSargable {
				t.Errorf("workers=%d: pair %d diverged from sequential measurement", workers, i)
			}
		}
	}
}

// TestVariantsAtDeterministic: the same (workload, salt) always yields
// the same variants; Variants' shared-RNG draws stay available for the
// legacy sequential path.
func TestVariantsAtDeterministic(t *testing.T) {
	s := tinySuite(t)
	ctx := context.Background()
	adv := &advisor.Extend{Opt: advisor.DefaultOptions()}
	m, err := s.BuildMethod(ctx, "Random", core.ValueOnly, adv, nil, s.Storage, MethodConfig{})
	if err != nil {
		t.Fatal(err)
	}
	a, err := m.VariantsAt(ctx, s.Test[0], 3)
	if err != nil {
		t.Fatal(err)
	}
	b, err := m.VariantsAt(ctx, s.Test[0], 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(a) != s.P.RandomAttempts || len(a) != len(b) {
		t.Fatalf("attempt counts %d/%d, want %d", len(a), len(b), s.P.RandomAttempts)
	}
	for i := range a {
		if a[i].Key() != b[i].Key() {
			t.Errorf("attempt %d not reproducible:\n  %s\n  %s", i, a[i].Key(), b[i].Key())
		}
	}
}

// TestBuildMethodBitIdenticalAcrossTrainWorkers: the suite's TrainWorkers
// knob reaches the framework rollout pool, and method training stays
// bit-identical across pool sizes.
func TestBuildMethodBitIdenticalAcrossTrainWorkers(t *testing.T) {
	s := tinySuite(t)
	ctx := context.Background()
	adv := &advisor.Extend{Opt: advisor.DefaultOptions()}
	// Warm-up build: training registers unseen tokens in the shared
	// vocabulary, and a model's embedding size snapshots the vocab size at
	// build time, so only builds after the first start from identical
	// parameters (same reason TestCheckpointResumeEquivalence builds all
	// frameworks upfront).
	if _, err := s.BuildMethod(ctx, "GRU", core.ValueOnly, adv, nil, s.Storage, MethodConfig{}); err != nil {
		t.Fatal(err)
	}
	var wantTrace []float64
	var wantState any
	for i, workers := range []int{1, 3} {
		s.TrainWorkers = workers
		m, err := s.BuildMethod(ctx, "GRU", core.ValueOnly, adv, nil, s.Storage, MethodConfig{})
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		state := m.FW.Model.Params().State()
		if i == 0 {
			wantTrace, wantState = m.Trace, state
			continue
		}
		if !reflect.DeepEqual(m.Trace, wantTrace) {
			t.Errorf("workers=%d: reward trace diverged: %v vs %v", workers, m.Trace, wantTrace)
		}
		if !reflect.DeepEqual(state, wantState) {
			t.Errorf("workers=%d: trained parameters diverged", workers)
		}
	}
}
