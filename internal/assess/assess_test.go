package assess

import (
	"context"
	"strings"
	"testing"

	"github.com/trap-repro/trap/internal/advisor"
	"github.com/trap-repro/trap/internal/bench"
	"github.com/trap-repro/trap/internal/core"
	"github.com/trap-repro/trap/internal/sqlx"
	"github.com/trap-repro/trap/internal/workload"
)

// tinyParams shrinks QuickParams further for unit tests.
func tinyParams() Params {
	p := QuickParams()
	p.Templates = 8
	p.TrainWorkloads = 3
	p.TestWorkloads = 3
	p.WorkloadSize = 4
	p.UtilitySamples = 200
	p.PretrainPairs = 4
	p.PretrainEpochs = 1
	p.RLEpochs = 1
	p.AdvisorEpisodes = 8
	return p
}

func tinySuite(t testing.TB) *Suite {
	t.Helper()
	s, err := NewSuite("tpch", bench.TPCH(tinyParams().ScaleDown), tinyParams(), 5)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestNewSuite(t *testing.T) {
	s := tinySuite(t)
	if len(s.Train) != 3 || len(s.Test) != 3 {
		t.Fatal("workload counts wrong")
	}
	if s.Vocab.Size() == 0 {
		t.Fatal("empty vocab")
	}
	if s.Storage.StorageBytes <= 0 || s.Count.MaxIndexes <= 0 {
		t.Fatal("constraints unset")
	}
	if r2 := s.Utility.R2(s.E, s.Gen.Query, 100, 99); r2 < 0.3 {
		t.Errorf("utility model R2 too low: %v", r2)
	}
}

func TestTenAdvisorSpecs(t *testing.T) {
	specs := TenAdvisors()
	if len(specs) != 10 {
		t.Fatalf("want 10 advisors, got %d", len(specs))
	}
	names := map[string]bool{}
	for _, sp := range specs {
		names[sp.Name] = true
		a := sp.Make(1)
		if a.Name() != sp.Name {
			t.Errorf("spec %s builds advisor named %s", sp.Name, a.Name())
		}
	}
	for _, want := range []string{"Extend", "DB2Advis", "AutoAdmin", "Drop",
		"Relaxation", "DTA", "SWIRL", "DRLindex", "DQN", "MCTS"} {
		if !names[want] {
			t.Errorf("missing advisor %s", want)
		}
	}
	if _, err := SpecByName("nope"); err == nil {
		t.Error("unknown advisor accepted")
	}
	// Baseline pairing of Table III.
	for name, base := range map[string]string{
		"SWIRL": "Extend", "DRLindex": "Drop", "DQN": "AutoAdmin", "MCTS": "AutoAdmin",
	} {
		sp, _ := SpecByName(name)
		if sp.Baseline != base {
			t.Errorf("%s baseline = %s, want %s", name, sp.Baseline, base)
		}
	}
}

func TestBuildMethodsAndMeasure(t *testing.T) {
	s := tinySuite(t)
	adv := &advisor.Extend{Opt: advisor.DefaultOptions()}
	for _, name := range MethodNames {
		m, err := s.BuildMethod(context.Background(), name, core.ValueOnly, adv, nil, s.Storage, MethodConfig{})
		if err != nil {
			t.Fatalf("BuildMethod(%s): %v", name, err)
		}
		res, err := s.Measure(context.Background(), m, adv, nil, s.Storage)
		if err != nil {
			t.Fatalf("Measure(%s): %v", name, err)
		}
		if res.N == 0 {
			t.Logf("Measure(%s): no properly-operating workloads (tiny scale)", name)
		}
		for _, p := range res.Pairs {
			if p.Pert.Size() != p.Orig.Size() {
				t.Errorf("%s: perturbed size mismatch", name)
			}
		}
	}
	// Random must produce its extra attempts.
	m, _ := s.BuildMethod(context.Background(), "Random", core.ValueOnly, adv, nil, s.Storage, MethodConfig{})
	vs, err := m.Variants(context.Background(), s.Test[0])
	if err != nil || len(vs) != s.P.RandomAttempts {
		t.Errorf("Random attempts = %d (%v), want %d", len(vs), err, s.P.RandomAttempts)
	}
	if _, err := s.BuildMethod(context.Background(), "bogus", core.ValueOnly, adv, nil, s.Storage, MethodConfig{}); err == nil {
		t.Error("unknown method accepted")
	}
}

func TestPretrainCacheReused(t *testing.T) {
	s := tinySuite(t)
	adv := &advisor.Drop{}
	if _, err := s.BuildMethod(context.Background(), "TRAP", core.ValueOnly, adv, nil, s.Count, MethodConfig{}); err != nil {
		t.Fatal(err)
	}
	if len(s.pretrained) != 1 {
		t.Fatalf("pretrain cache size %d", len(s.pretrained))
	}
	snap := s.pretrained[core.ValueOnly]
	if _, err := s.BuildMethod(context.Background(), "TRAP", core.ValueOnly, adv, nil, s.Count, MethodConfig{}); err != nil {
		t.Fatal(err)
	}
	if len(s.pretrained) != 1 || &s.pretrained[core.ValueOnly][0][0] != &snap[0][0] {
		t.Error("pretrain snapshot not reused")
	}
}

func TestSargableDetection(t *testing.T) {
	s := tinySuite(t)
	// A selective predicate on a large table is index-friendly.
	good := workload.New(sqlx.MustParse(
		"SELECT lineitem.l_extendedprice FROM lineitem WHERE lineitem.l_orderkey = 42"))
	if !s.Sargable(good) {
		t.Error("selective large-table workload should be sargable")
	}
	// OR-only predicates defeat every index.
	bad := workload.New(sqlx.MustParse(
		"SELECT lineitem.l_extendedprice FROM lineitem WHERE lineitem.l_orderkey = 42 OR lineitem.l_partkey != 7"))
	if s.Sargable(bad) {
		t.Error("OR/!= workload should be non-sargable")
	}
}

func TestFig1AndTab1(t *testing.T) {
	s := tinySuite(t)
	tab := Fig1([]*Suite{s})
	if len(tab.Rows) != 10 {
		t.Errorf("Fig1 rows = %d, want 10", len(tab.Rows))
	}
	t1, err := Tab1(s)
	if err != nil {
		t.Fatal(err)
	}
	if len(t1.Rows) != 4 {
		t.Errorf("Tab1 rows = %d, want 4 (original + 3 constraints)", len(t1.Rows))
	}
	if !strings.Contains(t1.String(), "SELECT") {
		t.Error("Tab1 missing SQL")
	}
}

func TestFig6Slice(t *testing.T) {
	s := tinySuite(t)
	cells, tab, err := Fig6([]*Suite{s}, []string{"Extend", "Drop"},
		[]string{"Random", "TRAP"}, []core.PerturbConstraint{core.ValueOnly})
	if err != nil {
		t.Fatal(err)
	}
	if len(cells) != 4 {
		t.Fatalf("cells = %d, want 4", len(cells))
	}
	if len(tab.Rows) != 4 {
		t.Fatalf("rows = %d", len(tab.Rows))
	}
	for _, c := range cells {
		if c.Dataset != "tpch" {
			t.Error("wrong dataset label")
		}
	}
}

func TestFig8(t *testing.T) {
	s := tinySuite(t)
	results, tab, err := Fig8(s)
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 6 || len(tab.Rows) != 6 {
		t.Fatalf("Fig8 results = %d, want 6", len(results))
	}
	for _, r := range results {
		if r.EpochsTo80 < 0 || r.EpochsTo80 > s.P.RLEpochs {
			t.Errorf("EpochsTo80 out of range: %d", r.EpochsTo80)
		}
	}
}

func TestFig14And15(t *testing.T) {
	s := tinySuite(t)
	t14, err := Fig14(s, core.ValueOnly)
	if err != nil {
		t.Fatal(err)
	}
	if len(t14.Rows) != 6 {
		t.Errorf("Fig14 rows = %d, want 6", len(t14.Rows))
	}
	t15, err := Fig15(s, core.ValueOnly)
	if err != nil {
		t.Fatal(err)
	}
	if len(t15.Rows) != 6 {
		t.Errorf("Fig15 rows = %d, want 6", len(t15.Rows))
	}
}

func TestFig16And17(t *testing.T) {
	s := tinySuite(t)
	scores, dist, err := Fig16(s, 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(scores.Rows) != 6 || len(dist.Rows) != 6 {
		t.Errorf("Fig16 rows = %d/%d, want 6/6", len(scores.Rows), len(dist.Rows))
	}
	tsne, frac, err := Fig17(s, 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(tsne.Rows) != 2 {
		t.Errorf("Fig17a groups = %d, want 2", len(tsne.Rows))
	}
	if len(frac.Rows) != 3 {
		t.Errorf("Fig17b detectors = %d, want 3", len(frac.Rows))
	}
}

func TestTableRendering(t *testing.T) {
	tab := NewTable("demo", "a", "bb")
	tab.Add("x", "y")
	tab.Note("n=%d", 1)
	out := tab.String()
	for _, want := range []string{"demo", "a", "bb", "x", "y", "note: n=1"} {
		if !strings.Contains(out, want) {
			t.Errorf("rendered table missing %q:\n%s", want, out)
		}
	}
	js, err := tab.JSON()
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{`"title": "demo"`, `"x"`, `"n=1"`} {
		if !strings.Contains(js, want) {
			t.Errorf("JSON missing %q:\n%s", want, js)
		}
	}
}
