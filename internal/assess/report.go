package assess

import (
	"encoding/json"
	"fmt"
	"strings"
)

// Table is a printable experiment result.
type Table struct {
	Title  string
	Header []string
	Rows   [][]string
	Notes  []string
}

// NewTable builds a table with a title and column header.
func NewTable(title string, header ...string) *Table {
	return &Table{Title: title, Header: header}
}

// Add appends a row.
func (t *Table) Add(cells ...string) { t.Rows = append(t.Rows, cells) }

// Note appends a footnote line.
func (t *Table) Note(format string, args ...any) {
	t.Notes = append(t.Notes, fmt.Sprintf(format, args...))
}

// String renders the table as aligned text.
func (t *Table) String() string {
	var b strings.Builder
	b.WriteString("== " + t.Title + " ==\n")
	widths := make([]int, len(t.Header))
	for i, h := range t.Header {
		widths[i] = len(h)
	}
	for _, r := range t.Rows {
		for i, c := range r {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	line := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			b.WriteString(c)
			if i < len(widths) {
				b.WriteString(strings.Repeat(" ", widths[i]-len(c)))
			}
		}
		b.WriteString("\n")
	}
	line(t.Header)
	total := len(widths)*2 - 2
	for _, w := range widths {
		total += w
	}
	b.WriteString(strings.Repeat("-", total) + "\n")
	for _, r := range t.Rows {
		line(r)
	}
	for _, n := range t.Notes {
		b.WriteString("note: " + n + "\n")
	}
	return b.String()
}

// F formats a float for table cells.
func F(v float64) string { return fmt.Sprintf("%.4f", v) }

// F2 formats a float with two decimals.
func F2(v float64) string { return fmt.Sprintf("%.2f", v) }

// I formats an int.
func I(v int) string { return fmt.Sprintf("%d", v) }

// JSON renders the table as a JSON object with title, header, rows and
// notes — for piping experiment results into other tooling.
func (t *Table) JSON() (string, error) {
	out, err := json.MarshalIndent(map[string]any{
		"title":  t.Title,
		"header": t.Header,
		"rows":   t.Rows,
		"notes":  t.Notes,
	}, "", "  ")
	if err != nil {
		return "", err
	}
	return string(out), nil
}
