package assess

import (
	"testing"

	"github.com/trap-repro/trap/internal/core"
)

func TestOscillationTable(t *testing.T) {
	s := tinySuite(t)
	tab, err := OscillationTable(s, []string{"Extend", "DB2Advis"}, core.ValueOnly, 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) != 2 {
		t.Fatalf("rows = %d", len(tab.Rows))
	}
	for _, r := range tab.Rows {
		if r[1] == "" {
			t.Errorf("%s missing oscillation value", r[0])
		}
	}
}

func TestOscillationNonNegative(t *testing.T) {
	s := tinySuite(t)
	spec, _ := SpecByName("Extend")
	adv, err := s.BuildAdvisor(spec)
	if err != nil {
		t.Fatal(err)
	}
	osc, err := s.Oscillation(adv, nil, s.Storage, core.ValueOnly, 2)
	if err != nil {
		t.Fatal(err)
	}
	if osc < 0 {
		t.Errorf("oscillation %v negative", osc)
	}
}
