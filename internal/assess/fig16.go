package assess

import (
	"context"
	"math"
	"math/rand"

	"github.com/trap-repro/trap/internal/advisor"
	"github.com/trap-repro/trap/internal/causal"
	"github.com/trap-repro/trap/internal/core"
	"github.com/trap-repro/trap/internal/outlier"
	"github.com/trap-repro/trap/internal/workload"
)

// collectPairs gathers assessment pairs (including non-sargable ones)
// from a sampled TRAP-style attack against Extend, providing the
// observations Figures 16 and 17 analyze. Sampled (not greedy) decoding
// diversifies the perturbations so both effective and ineffective
// changes appear.
func (s *Suite) collectPairs(pc core.PerturbConstraint, rounds int) ([]Pair, error) {
	adv := &advisor.Extend{Opt: advisor.DefaultOptions()}
	ac := s.Storage
	m, err := s.BuildMethod(context.Background(), "TRAP", pc, adv, nil, ac, MethodConfig{})
	if err != nil {
		return nil, err
	}
	var pairs []Pair
	for round := 0; round < rounds; round++ {
		for _, w := range s.Test {
			u, err := s.UtilityOf(adv, nil, ac, w)
			if err != nil || u <= s.P.Theta {
				continue
			}
			pert, err := m.FW.GenerateSampled(context.Background(), w)
			if err != nil {
				return nil, err
			}
			pair := Pair{Orig: w, Pert: pert, U: u}
			if !s.Sargable(pert) {
				pair.NonSargable = true
			} else if uPert, err := s.UtilityOf(adv, nil, ac, pert); err == nil {
				pair.UPert = uPert
				pair.IUDR = workload.IUDR(u, uPert)
			}
			pairs = append(pairs, pair)
		}
	}
	return pairs, nil
}

// Fig16 reproduces the query-change analysis (Figure 16): (a) causal
// scores of the six change types on IUDR, for the three causal models;
// (b) the distribution of change types among non-sargable workloads.
func Fig16(s *Suite, rounds int) (*Table, *Table, error) {
	pairs, err := s.collectPairs(core.SharedTable, rounds)
	if err != nil {
		return nil, nil, err
	}
	// Observation matrix: per pair, occurrence of each change type and
	// the IUDR (non-sargable pairs are treated as fully degraded, since
	// no index helps them — matching the paper's u < θ for all advisors).
	occ := make([][]float64, workload.NumChangeTypes)
	for i := range occ {
		occ[i] = make([]float64, len(pairs))
	}
	ys := make([]float64, len(pairs))
	nonSargCounts := make([]int, workload.NumChangeTypes)
	nonSargTotal := 0
	for pi, p := range pairs {
		counts := workload.ChangeCounts(s.E, p.Orig, p.Pert)
		for ct := workload.ChangeType(0); ct < workload.NumChangeTypes; ct++ {
			if counts[ct] > 0 {
				occ[ct][pi] = 1
			}
		}
		if p.NonSargable {
			ys[pi] = 1
			nonSargTotal++
			for ct := workload.ChangeType(0); ct < workload.NumChangeTypes; ct++ {
				if counts[ct] > 0 {
					nonSargCounts[ct]++
				}
			}
		} else {
			ys[pi] = clampIUDR(p.IUDR)
		}
	}
	scores := NewTable("Figure 16a: causation scores of query changes on IUDR",
		"change type", "CDS", "ANM", "RECI")
	models := causal.Models()
	for ct := workload.ChangeType(0); ct < workload.NumChangeTypes; ct++ {
		row := []string{ct.String()}
		for _, mdl := range models {
			row = append(row, F(mdl.Score(occ[ct], ys)))
		}
		scores.Add(row...)
	}
	dist := NewTable("Figure 16b: change-type distribution in non-sargable workloads",
		"change type", "share")
	for ct := workload.ChangeType(0); ct < workload.NumChangeTypes; ct++ {
		share := 0.0
		if nonSargTotal > 0 {
			share = float64(nonSargCounts[ct]) / float64(nonSargTotal)
		}
		dist.Add(ct.String(), F(share))
	}
	dist.Note("%d of %d perturbed workloads were non-sargable", nonSargTotal, len(pairs))
	return scores, dist, nil
}

func clampIUDR(v float64) float64 {
	if v > 1 {
		return 1
	}
	if v < -1 {
		return -1
	}
	return v
}

// Fig17 reproduces the OOD analysis (Figure 17): t-SNE coordinates of
// original and perturbed query vectors (from TRAP's encoder), and the
// fraction of perturbed queries flagged as outliers, split by effective
// (IUDR > 0) versus ineffective (IUDR < 0) perturbations.
func Fig17(s *Suite, rounds int) (*Table, *Table, error) {
	pairs, err := s.collectPairs(core.SharedTable, rounds)
	if err != nil {
		return nil, nil, err
	}
	encoder := core.NewTRAPModel(s.Vocab, s.P.Sizes, rand.New(rand.NewSource(s.Seed+77)))

	var vectors [][]float64
	var isPert, isEffective []bool
	for _, p := range pairs {
		if p.NonSargable {
			continue
		}
		for _, it := range p.Orig.Items {
			vectors = append(vectors, encoder.EncodeVector(s.Vocab, it.Query))
			isPert = append(isPert, false)
			isEffective = append(isEffective, false)
		}
		for _, it := range p.Pert.Items {
			vectors = append(vectors, encoder.EncodeVector(s.Vocab, it.Query))
			isPert = append(isPert, true)
			isEffective = append(isEffective, p.IUDR > 0)
		}
	}
	if len(vectors) < 10 {
		return nil, nil, errTooFew
	}
	// (a) t-SNE summary: centroid distance between original and perturbed
	// clouds relative to their spread — indistinguishable clouds overlap.
	emb := outlier.DefaultTSNE(s.Seed).Embed(vectors)
	tsne := NewTable("Figure 17a: t-SNE of query vectors before/after perturbation",
		"group", "points", "centroid-x", "centroid-y", "spread")
	addGroup := func(name string, pert bool) {
		var cx, cy, n float64
		for i, p := range emb {
			if isPert[i] != pert {
				continue
			}
			cx += p[0]
			cy += p[1]
			n++
		}
		if n == 0 {
			return
		}
		cx /= n
		cy /= n
		var spread float64
		for i, p := range emb {
			if isPert[i] != pert {
				continue
			}
			dx, dy := p[0]-cx, p[1]-cy
			spread += dx*dx + dy*dy
		}
		tsne.Add(name, I(int(n)), F2(cx), F2(cy), F2(math.Sqrt(spread/n)))
	}
	addGroup("original", false)
	addGroup("perturbed", true)

	// (b) outlier fractions per detector, effective vs ineffective.
	frac := NewTable("Figure 17b: outlier fraction of perturbed queries",
		"detector", "IUDR > 0", "IUDR < 0")
	for _, det := range outlier.Detectors(s.Seed) {
		scores := det.Scores(vectors)
		maskEff := make([]bool, len(vectors))
		maskIneff := make([]bool, len(vectors))
		for i := range vectors {
			if !isPert[i] {
				continue
			}
			if isEffective[i] {
				maskEff[i] = true
			} else {
				maskIneff[i] = true
			}
		}
		fe := outlier.OutlierFraction(scores, 0.03, maskEff)
		fi := outlier.OutlierFraction(scores, 0.03, maskIneff)
		frac.Add(det.Name(), F(fe), F(fi))
	}
	frac.Note("low, similar fractions mean effective perturbations are not OOD")
	return tsne, frac, nil
}

// errTooFew signals not enough observations for the OOD analysis.
var errTooFew = errTooFewType{}

type errTooFewType struct{}

func (errTooFewType) Error() string { return "assess: too few query vectors for OOD analysis" }
