package assess

import (
	"fmt"
	"math/rand"

	"github.com/trap-repro/trap/internal/bench"
	"github.com/trap-repro/trap/internal/core"
	"github.com/trap-repro/trap/internal/nn"
	"github.com/trap-repro/trap/internal/sqlx"
)

// Fig1 reproduces Figure 1: queries vs. templates per workload source —
// the external benchmark metadata plus this repository's own generators.
func Fig1(suites []*Suite) *Table {
	t := NewTable("Figure 1: queries are variants of a small template set",
		"source", "queries", "templates")
	for _, st := range bench.TemplateStats() {
		q := "unbounded"
		if st.Queries != bench.Unbounded {
			q = fmt.Sprintf("%d", st.Queries)
		}
		t.Add(st.Source, q, fmt.Sprintf("%d", st.Templates))
	}
	for _, s := range suites {
		t.Add("this repo: "+s.Name+" generator", "unbounded", I(s.Gen.NumTemplates()))
	}
	t.Note("every source has orders of magnitude more queries than templates")
	return t
}

// Tab1 reproduces Table I: an example perturbation per constraint on a
// JOB-style query over the suite's schema.
func Tab1(s *Suite) (*Table, error) {
	t := NewTable("Table I: example perturbations per constraint", "constraint", "query")
	q := s.Gen.Workload(1).Items[0].Query
	t.Add("Original", q.String())
	g := nn.NewGraph(false)
	for _, pc := range core.AllConstraints {
		rng := rand.New(rand.NewSource(s.Seed + int64(pc)))
		var pert *sqlx.Query
		// Search a few seeds for an example that actually changed.
		for try := 0; try < 20; try++ {
			g.Reset()
			r, err := core.Decode(g, core.RandomModel{}, s.Vocab, q, pc, s.P.Eps, true, rng)
			if err != nil {
				return nil, err
			}
			if r.Edits > 0 {
				pert = r.Query
				break
			}
		}
		if pert == nil {
			pert = q
		}
		t.Add(pc.String(), pert.String())
	}
	return t, nil
}
