package service

import (
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"github.com/trap-repro/trap/internal/admission"
	"github.com/trap-repro/trap/internal/faultinject"
	"github.com/trap-repro/trap/internal/obs"
)

// newFaultServer builds a dedicated (non-shared) server so fault rules
// and metric assertions cannot interfere with the other service tests.
func newFaultServer(t *testing.T, mutate func(*Config)) *Server {
	t.Helper()
	cfg := Config{
		Datasets:       []string{"tpch"},
		Params:         tinyParams(),
		Seed:           23,
		Workers:        2,
		QueueDepth:     4,
		RequestTimeout: 30 * time.Second,
		JobTimeout:     2 * time.Minute,
		MaxRetries:     2,
		RetryBackoff:   10 * time.Millisecond,
		Registry:       obs.NewRegistry(),
		Logf:           func(string, ...any) {},
	}
	if mutate != nil {
		mutate(&cfg)
	}
	s, err := NewServer(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

// submitJob posts an assessment and returns the accepted job.
func submitJob(t *testing.T, h http.Handler, advisor, method string) Job {
	t.Helper()
	code, body := postJSON(t, h, "/v1/assess", assessRequest{
		Dataset: "tpch", Advisor: advisor, Method: method,
	})
	if code != http.StatusAccepted {
		t.Fatalf("submit %s/%s: %d %s", advisor, method, code, body)
	}
	var j Job
	if err := json.Unmarshal(body, &j); err != nil {
		t.Fatal(err)
	}
	return j
}

// pollTerminal waits for a job to reach any terminal state (unlike
// waitForJob, which fails the test on failed/canceled).
func pollTerminal(t *testing.T, h http.Handler, id string, timeout time.Duration) Job {
	t.Helper()
	deadline := time.Now().Add(timeout)
	for {
		code, body := getPath(t, h, "/v1/jobs/"+id)
		if code != http.StatusOK {
			t.Fatalf("job poll: %d %s", code, body)
		}
		var j Job
		if err := json.Unmarshal(body, &j); err != nil {
			t.Fatal(err)
		}
		if j.Status.terminal() {
			return j
		}
		if time.Now().After(deadline) {
			t.Fatalf("job %s stuck in %s", id, j.Status)
		}
		time.Sleep(10 * time.Millisecond)
	}
}

func deletePath(t *testing.T, h http.Handler, path string) (int, []byte) {
	t.Helper()
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest("DELETE", path, nil))
	return rec.Code, rec.Body.Bytes()
}

func metricAtLeast(t *testing.T, h http.Handler, name string, min float64) {
	t.Helper()
	_, body := getPath(t, h, "/metrics")
	v, ok := metricValue(body, name)
	if !ok {
		t.Errorf("metrics missing %s", name)
	} else if v < min {
		t.Errorf("metric %s = %g, want >= %g", name, v, min)
	}
}

// TestJobPanicIsolation injects a panic into one job's RL training and
// verifies the job is marked failed with a stack trace while a sibling
// job and the worker itself survive.
func TestJobPanicIsolation(t *testing.T) {
	s := newFaultServer(t, func(c *Config) {
		c.Injector = faultinject.NewSeeded(1, faultinject.Rule{
			Point: faultinject.PointRLEpoch, Action: faultinject.ActPanic, Every: 1, Count: 1,
		})
	})
	h := s.Handler()

	// Only the GRU job RL-trains, so only it can hit the panic point.
	crash := submitJob(t, h, "Drop", "GRU")
	sibling := submitJob(t, h, "Drop", "Random")

	failed := pollTerminal(t, h, crash.ID, time.Minute)
	if failed.Status != JobFailed {
		t.Fatalf("panicking job ended %s (%s), want failed", failed.Status, failed.Error)
	}
	if !strings.Contains(failed.Error, "panic") {
		t.Errorf("panic job error %q does not mention the panic", failed.Error)
	}
	if !strings.Contains(failed.Stack, "goroutine") {
		t.Errorf("panic job carries no stack trace: %q", failed.Stack)
	}

	ok := pollTerminal(t, h, sibling.ID, time.Minute)
	if ok.Status != JobDone {
		t.Fatalf("sibling job ended %s (%s), want done", ok.Status, ok.Error)
	}

	// The rule is exhausted and the worker survived the panic: the same
	// kind of job now completes.
	again := pollTerminal(t, h, submitJob(t, h, "Drop", "GRU").ID, time.Minute)
	if again.Status != JobDone {
		t.Fatalf("post-panic job ended %s (%s), want done", again.Status, again.Error)
	}

	metricAtLeast(t, h, "trapd_job_panics_total", 1)
	metricAtLeast(t, h, "trapd_jobs_failed_total", 1)
}

// TestJobTransientRetry injects one transient error and verifies the
// bounded retry loop reruns the job to completion.
func TestJobTransientRetry(t *testing.T) {
	s := newFaultServer(t, func(c *Config) {
		c.Injector = faultinject.NewSeeded(1, faultinject.Rule{
			Point: faultinject.PointRLEpoch, Action: faultinject.ActError, Every: 1, Count: 1,
		})
	})
	h := s.Handler()

	j := pollTerminal(t, h, submitJob(t, h, "Drop", "GRU").ID, time.Minute)
	if j.Status != JobDone {
		t.Fatalf("retried job ended %s (%s), want done", j.Status, j.Error)
	}
	if j.Attempts != 2 {
		t.Errorf("job took %d attempts, want 2 (one transient failure, one success)", j.Attempts)
	}
	metricAtLeast(t, h, "trapd_job_retries_total", 1)
}

// TestJobCancelEndpoints covers DELETE /v1/jobs/{id} for running,
// pending, terminal and unknown jobs, plus the queue-full 503.
func TestJobCancelEndpoints(t *testing.T) {
	s := newFaultServer(t, func(c *Config) {
		// One slow worker so a second job stays pending: every RL
		// workload sleeps, keeping the first job running long enough to
		// cancel it mid-training.
		c.Workers = 1
		c.QueueDepth = 1
		c.Injector = faultinject.NewSeeded(1, faultinject.Rule{
			Point: faultinject.PointRLWorkload, Action: faultinject.ActDelay,
			Every: 1, Delay: 200 * time.Millisecond,
		})
	})
	h := s.Handler()

	running := submitJob(t, h, "Drop", "GRU")
	waitForJob(t, h, running.ID, JobRunning, 30*time.Second)
	pending := submitJob(t, h, "Drop", "Random")

	// Queue now full (depth 1): the next submit is refused with a hint.
	rec := httptest.NewRecorder()
	body, _ := json.Marshal(assessRequest{Dataset: "tpch", Advisor: "Drop", Method: "Random"})
	req := httptest.NewRequest("POST", "/v1/assess", strings.NewReader(string(body)))
	req.Header.Set("Content-Type", "application/json")
	h.ServeHTTP(rec, req)
	if rec.Code != http.StatusServiceUnavailable {
		t.Fatalf("overflow submit: %d %s", rec.Code, rec.Body.String())
	}
	if rec.Header().Get("Retry-After") == "" {
		t.Error("503 response has no Retry-After header")
	}

	// Unknown job.
	if code, _ := deletePath(t, h, "/v1/jobs/job-424242"); code != http.StatusNotFound {
		t.Errorf("cancel unknown job: %d, want 404", code)
	}

	// Pending job: canceled immediately, before a worker picks it up.
	code, resp := deletePath(t, h, "/v1/jobs/"+pending.ID)
	if code != http.StatusAccepted {
		t.Fatalf("cancel pending job: %d %s", code, resp)
	}
	var pj Job
	if err := json.Unmarshal(resp, &pj); err != nil {
		t.Fatal(err)
	}
	if pj.Status != JobCanceled || !strings.Contains(pj.Error, "canceled") {
		t.Fatalf("pending job after cancel: %+v", pj)
	}

	// Running job: context canceled, training stops at the next boundary.
	if code, resp := deletePath(t, h, "/v1/jobs/"+running.ID); code != http.StatusAccepted {
		t.Fatalf("cancel running job: %d %s", code, resp)
	}
	rj := pollTerminal(t, h, running.ID, 30*time.Second)
	if rj.Status != JobCanceled || rj.Error != "canceled" {
		t.Fatalf("running job after cancel: status %s error %q", rj.Status, rj.Error)
	}

	// Terminal job: cancel conflicts.
	if code, _ := deletePath(t, h, "/v1/jobs/"+running.ID); code != http.StatusConflict {
		t.Errorf("cancel terminal job: %d, want 409", code)
	}

	metricAtLeast(t, h, "trapd_jobs_canceled_total", 2)
}

// TestJobCheckpointResume injects a transient error into the second RL
// epoch: the retry must resume from the checkpoint written after the
// first epoch rather than restart training from scratch.
func TestJobCheckpointResume(t *testing.T) {
	spool := t.TempDir()
	s := newFaultServer(t, func(c *Config) {
		p := tinyParams()
		p.RLEpochs = 2
		c.Params = p
		c.SpoolDir = spool
		c.CheckpointEvery = 1
		// The warmup job below consumes epoch hits 1-2. For the job
		// under test, hit 3 (epoch 0) passes and the epoch hook
		// checkpoints; hit 4 (epoch 1) fails transiently; the retry
		// resumes at epoch 1 and hit 5 passes (the count is exhausted).
		c.Injector = faultinject.NewSeeded(1, faultinject.Rule{
			Point: faultinject.PointRLEpoch, Action: faultinject.ActError,
			Every: 1, After: 3, Count: 1,
		})
	})
	h := s.Handler()

	// Warmup: the first training run on a fresh suite registers unseen
	// tokens in the shared vocabulary, which changes the embedding shape
	// of later model builds — a checkpoint taken during that run would
	// not match the retry's model and resume would (safely) fall back to
	// fresh training. One completed job puts the vocabulary in steady
	// state so the checkpoint under test is shape-compatible.
	warm := pollTerminal(t, h, submitJob(t, h, "Drop", "GRU").ID, time.Minute)
	if warm.Status != JobDone {
		t.Fatalf("warmup job ended %s (%s), want done", warm.Status, warm.Error)
	}

	j := pollTerminal(t, h, submitJob(t, h, "Drop", "GRU").ID, time.Minute)
	if j.Status != JobDone {
		t.Fatalf("job ended %s (%s), want done", j.Status, j.Error)
	}
	if j.Attempts != 2 {
		t.Errorf("job took %d attempts, want 2", j.Attempts)
	}
	if !j.Resumed {
		t.Error("retried job did not resume from its checkpoint")
	}
	metricAtLeast(t, h, "trapd_checkpoints_saved_total", 1)
	metricAtLeast(t, h, "trapd_checkpoints_resumed_total", 1)

	// Successful jobs clean up their spooled checkpoint.
	left, err := filepath.Glob(filepath.Join(spool, "*.ckpt"))
	if err != nil {
		t.Fatal(err)
	}
	if len(left) != 0 {
		t.Errorf("spool dir still holds %v after success", left)
	}
	if _, err := os.Stat(spool); err != nil {
		t.Errorf("spool dir missing: %v", err)
	}
}

// TestWorkerPoolTypedErrors exercises the submit failure modes directly.
func TestWorkerPoolTypedErrors(t *testing.T) {
	block := make(chan struct{})
	started := make(chan string, 4)
	p := newWorkerPool(1, 1, func(id string) { started <- id; <-block })
	defer close(block)

	if err := p.submit("a", admission.Batch); err != nil {
		t.Fatalf("submit a: %v", err)
	}
	<-started // worker is now busy with "a", queue is empty
	if err := p.submit("b", admission.Batch); err != nil {
		t.Fatalf("submit b: %v", err)
	}
	if err := p.submit("c", admission.Interactive); err != ErrQueueFull {
		t.Fatalf("submit c: %v, want ErrQueueFull", err)
	}

	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Millisecond)
	defer cancel()
	drained := p.shutdown(ctx)
	if len(drained) != 1 || drained[0] != "b" {
		t.Fatalf("shutdown drained %v, want [b]", drained)
	}
	if err := p.submit("d", admission.Batch); err != ErrPoolClosed {
		t.Fatalf("submit after shutdown: %v, want ErrPoolClosed", err)
	}
}

// TestJobStoreGC verifies that only terminal jobs past their TTL are
// collected.
func TestJobStoreGC(t *testing.T) {
	st := newJobStore()
	now := time.Now()
	old := now.Add(-2 * time.Hour)
	recent := now.Add(-time.Minute)

	mk := func(status JobStatus, fin *time.Time) string {
		j := st.create(Job{Dataset: "tpch", Advisor: "Drop", Method: "Random"})
		st.update(j.ID, func(j *Job) {
			j.Status = status
			j.Finished = fin
		})
		return j.ID
	}
	doneOld := mk(JobDone, &old)
	failedOld := mk(JobFailed, &old)
	canceledOld := mk(JobCanceled, &old)
	doneRecent := mk(JobDone, &recent)
	runningJob := mk(JobRunning, nil)
	pendingJob := mk(JobPending, nil)

	if dropped := st.gc(time.Hour, now); len(dropped) != 3 {
		t.Fatalf("gc removed %d jobs, want 3", len(dropped))
	}
	for _, id := range []string{doneOld, failedOld, canceledOld} {
		if _, ok := st.get(id); ok {
			t.Errorf("job %s survived gc", id)
		}
	}
	for _, id := range []string{doneRecent, runningJob, pendingJob} {
		if _, ok := st.get(id); !ok {
			t.Errorf("job %s was wrongly collected", id)
		}
	}
	if got := st.size(); got != 3 {
		t.Errorf("store size after gc = %d, want 3", got)
	}
}
