package service

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"github.com/trap-repro/trap/internal/admission"
)

// JobStatus is the lifecycle state of an async assessment job.
type JobStatus string

// Job lifecycle states: pending → running → done | failed | canceled.
// Jobs still queued when the server shuts down (or canceled via
// DELETE /v1/jobs/{id} before a worker picks them up) become canceled.
const (
	JobPending  JobStatus = "pending"
	JobRunning  JobStatus = "running"
	JobDone     JobStatus = "done"
	JobFailed   JobStatus = "failed"
	JobCanceled JobStatus = "canceled"
)

// terminal reports whether the status is a final state.
func (s JobStatus) terminal() bool {
	return s == JobDone || s == JobFailed || s == JobCanceled
}

// validJobStatus reports whether s names a known lifecycle state (used
// to validate the ?status= list filter).
func validJobStatus(s JobStatus) bool {
	switch s {
	case JobPending, JobRunning, JobDone, JobFailed, JobCanceled:
		return true
	}
	return false
}

// JobResult is the outcome of a completed assessment job.
type JobResult struct {
	MeanIUDR     float64 `json:"meanIUDR"`
	Workloads    int     `json:"workloads"`
	Pairs        int     `json:"pairs"`
	NonSargable  int     `json:"nonSargable"`
	ElapsedMilli int64   `json:"elapsedMs"`
}

// Job is one async assessment request.
type Job struct {
	ID         string    `json:"id"`
	Status     JobStatus `json:"status"`
	Dataset    string    `json:"dataset"`
	Advisor    string    `json:"advisor"`
	Method     string    `json:"method"`
	Constraint string    `json:"constraint"`
	// Tenant is the quota identity the job was admitted under (the
	// X-Trap-Tenant header; "default" when absent).
	Tenant string `json:"tenant,omitempty"`
	// Priority is the scheduling class ("interactive" or "batch").
	Priority string `json:"priority,omitempty"`
	Error    string `json:"error,omitempty"`
	// Stack holds the goroutine stack when the job failed on a panic.
	Stack string `json:"stack,omitempty"`
	// Attempts counts execution attempts (>1 after transient-error retries).
	Attempts int `json:"attempts,omitempty"`
	// Resumed reports whether training continued from a spooled checkpoint.
	Resumed bool `json:"resumed,omitempty"`
	// Restored reports that the job was interrupted by a process death
	// and re-enqueued from the job log on restart.
	Restored bool `json:"restored,omitempty"`
	// Node names the fleet node that owns (or last owned) the job and
	// Epoch the lease fencing token it is owned under — set only in
	// cluster mode (Config.NodeID).
	Node  string `json:"node,omitempty"`
	Epoch uint64 `json:"leaseEpoch,omitempty"`
	// TraceID links the job to its pipeline trace (GET /v1/traces/{id});
	// empty when the tracer's head sampling skipped this job.
	TraceID  string     `json:"traceId,omitempty"`
	Result   *JobResult `json:"result,omitempty"`
	Created  time.Time  `json:"created"`
	Started  *time.Time `json:"started,omitempty"`
	Finished *time.Time `json:"finished,omitempty"`
}

// jobNum extracts the numeric suffix of a "job-N" ID (0 when malformed);
// it orders the list endpoint and anchors its cursor.
func jobNum(id string) int64 {
	var n int64
	if _, err := fmt.Sscanf(id, "job-%d", &n); err != nil {
		return 0
	}
	return n
}

// priority maps the job's stored class name back to the scheduler class.
func (j *Job) priority() admission.Priority {
	p, err := admission.ParsePriority(j.Priority)
	if err != nil {
		return admission.Batch
	}
	return p
}

// jobStore is a concurrency-safe in-memory job registry. It also holds
// the per-job cancel functions that back DELETE /v1/jobs/{id}.
type jobStore struct {
	mu      sync.Mutex
	next    atomic.Int64
	jobs    map[string]*Job
	cancels map[string]context.CancelFunc
	// prog is the per-job epoch high-water of folded progress records
	// (cluster mode): epochs re-run after a takeover resume are folded
	// but not re-published to the event stream.
	prog map[string]int
}

func newJobStore() *jobStore {
	return &jobStore{
		jobs:    map[string]*Job{},
		cancels: map[string]context.CancelFunc{},
		prog:    map[string]int{},
	}
}

// create registers a new pending job from the template (dataset,
// advisor, method, constraint, tenant, priority) and returns a snapshot.
func (s *jobStore) create(tpl Job) Job {
	tpl.ID = fmt.Sprintf("job-%d", s.next.Add(1))
	tpl.Status = JobPending
	tpl.Created = time.Now()
	j := tpl
	s.mu.Lock()
	s.jobs[j.ID] = &j
	s.mu.Unlock()
	return tpl
}

// restore inserts a replayed job under its original ID and keeps the ID
// sequence strictly ahead of every restored ID, so new submissions
// never collide with replayed ones.
func (s *jobStore) restore(j Job) {
	if n := jobNum(j.ID); n > 0 {
		for {
			cur := s.next.Load()
			if cur >= n || s.next.CompareAndSwap(cur, n) {
				break
			}
		}
	}
	jj := j
	s.mu.Lock()
	s.jobs[j.ID] = &jj
	s.mu.Unlock()
}

// get returns a snapshot of the job, if it exists.
func (s *jobStore) get(id string) (Job, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	j, ok := s.jobs[id]
	if !ok {
		return Job{}, false
	}
	return *j, true
}

// update applies fn to the job under the store lock.
func (s *jobStore) update(id string, fn func(*Job)) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if j, ok := s.jobs[id]; ok {
		fn(j)
	}
}

// list snapshots every live job, ordered by ascending job number (the
// stable order the list endpoint paginates over).
func (s *jobStore) list() []Job {
	s.mu.Lock()
	out := make([]Job, 0, len(s.jobs))
	for _, j := range s.jobs {
		out = append(out, *j)
	}
	s.mu.Unlock()
	sort.Slice(out, func(i, k int) bool { return jobNum(out[i].ID) < jobNum(out[k].ID) })
	return out
}

// countByStatus tallies jobs per status.
func (s *jobStore) countByStatus() map[JobStatus]int {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := map[JobStatus]int{}
	for _, j := range s.jobs {
		out[j.Status]++
	}
	return out
}

// size returns the number of jobs currently held (the live-job gauge).
func (s *jobStore) size() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.jobs)
}

// setCancel registers the cancel function of a job's execution context.
func (s *jobStore) setCancel(id string, fn context.CancelFunc) {
	s.mu.Lock()
	s.cancels[id] = fn
	s.mu.Unlock()
}

// clearCancel drops a job's cancel registration (the job finished).
func (s *jobStore) clearCancel(id string) {
	s.mu.Lock()
	delete(s.cancels, id)
	s.mu.Unlock()
}

// takeCancel removes and returns a job's cancel function (nil when the
// job is not running).
func (s *jobStore) takeCancel(id string) context.CancelFunc {
	s.mu.Lock()
	defer s.mu.Unlock()
	fn := s.cancels[id]
	delete(s.cancels, id)
	return fn
}

// advanceEpoch advances the job's progress high-water, reporting
// whether epoch is new (and should be published to the event stream).
func (s *jobStore) advanceEpoch(id string, epoch int) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	if epoch <= s.prog[id] {
		return false
	}
	s.prog[id] = epoch
	return true
}

// remove drops one job entirely (a folded drop tombstone).
func (s *jobStore) remove(id string) {
	s.mu.Lock()
	delete(s.jobs, id)
	delete(s.cancels, id)
	delete(s.prog, id)
	s.mu.Unlock()
}

// gc removes terminal jobs that finished more than ttl ago and returns
// their IDs so the caller can drop the durable and streaming state too.
// Running and pending jobs are never collected.
func (s *jobStore) gc(ttl time.Duration, now time.Time) []string {
	s.mu.Lock()
	defer s.mu.Unlock()
	var dropped []string
	for id, j := range s.jobs {
		if !j.Status.terminal() || j.Finished == nil {
			continue
		}
		if now.Sub(*j.Finished) >= ttl {
			delete(s.jobs, id)
			delete(s.cancels, id)
			delete(s.prog, id)
			dropped = append(dropped, id)
		}
	}
	return dropped
}

// Typed submission failures: handlers translate these into 503s with a
// Retry-After hint instead of silently dropping the job.
var (
	// ErrQueueFull means the pending-job queue is at capacity.
	ErrQueueFull = errors.New("job queue full")
	// ErrPoolClosed means the pool stopped intake (server shutting down).
	ErrPoolClosed = errors.New("worker pool is shut down")
)

// workerPool runs jobs on a bounded set of goroutines over a bounded
// two-class priority queue: interactive submissions are dequeued before
// batch ones, FIFO within a class, with one shared depth bound across
// both. Shutdown stops intake, cancels still-queued jobs and waits for
// in-flight jobs to drain.
type workerPool struct {
	mu     sync.Mutex
	cond   *sync.Cond
	queues [admission.NumPriorities][]string
	depth  int
	closed bool
	wg     sync.WaitGroup
}

// newWorkerPool starts n workers pulling job IDs off the priority queue
// (total depth as given) and handing them to run.
func newWorkerPool(n, depth int, run func(id string)) *workerPool {
	p := &workerPool{depth: depth}
	p.cond = sync.NewCond(&p.mu)
	for i := 0; i < n; i++ {
		p.wg.Add(1)
		go func() {
			defer p.wg.Done()
			for {
				id, ok := p.next()
				if !ok {
					return
				}
				run(id)
			}
		}()
	}
	return p
}

// next blocks until a job is available (highest priority class first)
// or the pool is shut down.
func (p *workerPool) next() (string, bool) {
	p.mu.Lock()
	defer p.mu.Unlock()
	for {
		for pri := admission.NumPriorities - 1; pri >= 0; pri-- {
			if q := p.queues[pri]; len(q) > 0 {
				id := q[0]
				p.queues[pri] = q[1:]
				return id, true
			}
		}
		if p.closed {
			return "", false
		}
		p.cond.Wait()
	}
}

// submit enqueues a job ID at the given priority, or reports why it
// cannot: ErrQueueFull when the shared queue is at capacity,
// ErrPoolClosed when intake has stopped.
func (p *workerPool) submit(id string, pri admission.Priority) error {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.closed {
		return ErrPoolClosed
	}
	if p.queuedLocked() >= p.depth {
		return ErrQueueFull
	}
	p.queues[pri] = append(p.queues[pri], id)
	p.cond.Signal()
	return nil
}

// queued returns how many jobs wait in the queue (all classes).
func (p *workerPool) queued() int {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.queuedLocked()
}

func (p *workerPool) queuedLocked() int {
	n := 0
	for _, q := range p.queues {
		n += len(q)
	}
	return n
}

// shutdown stops intake and waits — up to ctx's deadline — for the
// workers to drain in-flight jobs. Job IDs still queued (never started)
// are returned so the caller can mark them canceled.
func (p *workerPool) shutdown(ctx context.Context) (canceled []string) {
	p.mu.Lock()
	if !p.closed {
		p.closed = true
		// Drain never-started jobs so workers exit after finishing only
		// what they already picked up.
		for pri := admission.NumPriorities - 1; pri >= 0; pri-- {
			canceled = append(canceled, p.queues[pri]...)
			p.queues[pri] = nil
		}
		p.cond.Broadcast()
	}
	p.mu.Unlock()

	done := make(chan struct{})
	go func() {
		p.wg.Wait()
		close(done)
	}()
	select {
	case <-done:
	case <-ctx.Done():
	}
	return canceled
}
