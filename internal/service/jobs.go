package service

import (
	"context"
	"fmt"
	"sync"
	"sync/atomic"
	"time"
)

// JobStatus is the lifecycle state of an async assessment job.
type JobStatus string

// Job lifecycle states: pending → running → done | failed. Jobs still
// queued when the server shuts down become canceled.
const (
	JobPending  JobStatus = "pending"
	JobRunning  JobStatus = "running"
	JobDone     JobStatus = "done"
	JobFailed   JobStatus = "failed"
	JobCanceled JobStatus = "canceled"
)

// JobResult is the outcome of a completed assessment job.
type JobResult struct {
	MeanIUDR     float64 `json:"meanIUDR"`
	Workloads    int     `json:"workloads"`
	Pairs        int     `json:"pairs"`
	NonSargable  int     `json:"nonSargable"`
	ElapsedMilli int64   `json:"elapsedMs"`
}

// Job is one async assessment request.
type Job struct {
	ID         string     `json:"id"`
	Status     JobStatus  `json:"status"`
	Dataset    string     `json:"dataset"`
	Advisor    string     `json:"advisor"`
	Method     string     `json:"method"`
	Constraint string     `json:"constraint"`
	Error      string     `json:"error,omitempty"`
	Result     *JobResult `json:"result,omitempty"`
	Created    time.Time  `json:"created"`
	Started    *time.Time `json:"started,omitempty"`
	Finished   *time.Time `json:"finished,omitempty"`
}

// jobStore is a concurrency-safe in-memory job registry.
type jobStore struct {
	mu   sync.Mutex
	next atomic.Int64
	jobs map[string]*Job
}

func newJobStore() *jobStore {
	return &jobStore{jobs: map[string]*Job{}}
}

// create registers a new pending job and returns a snapshot of it.
func (s *jobStore) create(dataset, advisor, method, constraint string) Job {
	j := &Job{
		ID:         fmt.Sprintf("job-%d", s.next.Add(1)),
		Status:     JobPending,
		Dataset:    dataset,
		Advisor:    advisor,
		Method:     method,
		Constraint: constraint,
		Created:    time.Now(),
	}
	s.mu.Lock()
	s.jobs[j.ID] = j
	s.mu.Unlock()
	return *j
}

// get returns a snapshot of the job, if it exists.
func (s *jobStore) get(id string) (Job, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	j, ok := s.jobs[id]
	if !ok {
		return Job{}, false
	}
	return *j, true
}

// update applies fn to the job under the store lock.
func (s *jobStore) update(id string, fn func(*Job)) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if j, ok := s.jobs[id]; ok {
		fn(j)
	}
}

// countByStatus tallies jobs per status.
func (s *jobStore) countByStatus() map[JobStatus]int {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := map[JobStatus]int{}
	for _, j := range s.jobs {
		out[j.Status]++
	}
	return out
}

// workerPool runs jobs on a bounded set of goroutines over a bounded
// queue. Shutdown stops intake, cancels still-queued jobs and waits for
// in-flight jobs to drain.
type workerPool struct {
	queue  chan string
	wg     sync.WaitGroup
	mu     sync.Mutex
	closed bool
}

// newWorkerPool starts n workers pulling job IDs off a queue of the
// given depth and handing them to run.
func newWorkerPool(n, depth int, run func(id string)) *workerPool {
	p := &workerPool{queue: make(chan string, depth)}
	for i := 0; i < n; i++ {
		p.wg.Add(1)
		go func() {
			defer p.wg.Done()
			for id := range p.queue {
				run(id)
			}
		}()
	}
	return p
}

// submit enqueues a job ID; it reports false when the queue is full or
// the pool is shutting down.
func (p *workerPool) submit(id string) bool {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.closed {
		return false
	}
	select {
	case p.queue <- id:
		return true
	default:
		return false
	}
}

// shutdown stops intake and waits — up to ctx's deadline — for the
// workers to drain in-flight jobs. Job IDs still queued (never started)
// are returned so the caller can mark them canceled.
func (p *workerPool) shutdown(ctx context.Context) (canceled []string) {
	p.mu.Lock()
	if !p.closed {
		p.closed = true
		// Drain never-started jobs before closing so workers exit after
		// finishing only what they already picked up.
		for {
			select {
			case id := <-p.queue:
				canceled = append(canceled, id)
				continue
			default:
			}
			break
		}
		close(p.queue)
	}
	p.mu.Unlock()

	done := make(chan struct{})
	go func() {
		p.wg.Wait()
		close(done)
	}()
	select {
	case <-done:
	case <-ctx.Done():
	}
	return canceled
}
