package service

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"
)

// JobStatus is the lifecycle state of an async assessment job.
type JobStatus string

// Job lifecycle states: pending → running → done | failed | canceled.
// Jobs still queued when the server shuts down (or canceled via
// DELETE /v1/jobs/{id} before a worker picks them up) become canceled.
const (
	JobPending  JobStatus = "pending"
	JobRunning  JobStatus = "running"
	JobDone     JobStatus = "done"
	JobFailed   JobStatus = "failed"
	JobCanceled JobStatus = "canceled"
)

// terminal reports whether the status is a final state.
func (s JobStatus) terminal() bool {
	return s == JobDone || s == JobFailed || s == JobCanceled
}

// JobResult is the outcome of a completed assessment job.
type JobResult struct {
	MeanIUDR     float64 `json:"meanIUDR"`
	Workloads    int     `json:"workloads"`
	Pairs        int     `json:"pairs"`
	NonSargable  int     `json:"nonSargable"`
	ElapsedMilli int64   `json:"elapsedMs"`
}

// Job is one async assessment request.
type Job struct {
	ID         string    `json:"id"`
	Status     JobStatus `json:"status"`
	Dataset    string    `json:"dataset"`
	Advisor    string    `json:"advisor"`
	Method     string    `json:"method"`
	Constraint string    `json:"constraint"`
	Error      string    `json:"error,omitempty"`
	// Stack holds the goroutine stack when the job failed on a panic.
	Stack string `json:"stack,omitempty"`
	// Attempts counts execution attempts (>1 after transient-error retries).
	Attempts int `json:"attempts,omitempty"`
	// Resumed reports whether training continued from a spooled checkpoint.
	Resumed bool `json:"resumed,omitempty"`
	// TraceID links the job to its pipeline trace (GET /v1/traces/{id});
	// empty when the tracer's head sampling skipped this job.
	TraceID  string     `json:"traceId,omitempty"`
	Result   *JobResult `json:"result,omitempty"`
	Created  time.Time  `json:"created"`
	Started  *time.Time `json:"started,omitempty"`
	Finished *time.Time `json:"finished,omitempty"`
}

// jobStore is a concurrency-safe in-memory job registry. It also holds
// the per-job cancel functions that back DELETE /v1/jobs/{id}.
type jobStore struct {
	mu      sync.Mutex
	next    atomic.Int64
	jobs    map[string]*Job
	cancels map[string]context.CancelFunc
}

func newJobStore() *jobStore {
	return &jobStore{jobs: map[string]*Job{}, cancels: map[string]context.CancelFunc{}}
}

// create registers a new pending job and returns a snapshot of it.
func (s *jobStore) create(dataset, advisor, method, constraint string) Job {
	j := &Job{
		ID:         fmt.Sprintf("job-%d", s.next.Add(1)),
		Status:     JobPending,
		Dataset:    dataset,
		Advisor:    advisor,
		Method:     method,
		Constraint: constraint,
		Created:    time.Now(),
	}
	s.mu.Lock()
	s.jobs[j.ID] = j
	s.mu.Unlock()
	return *j
}

// get returns a snapshot of the job, if it exists.
func (s *jobStore) get(id string) (Job, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	j, ok := s.jobs[id]
	if !ok {
		return Job{}, false
	}
	return *j, true
}

// update applies fn to the job under the store lock.
func (s *jobStore) update(id string, fn func(*Job)) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if j, ok := s.jobs[id]; ok {
		fn(j)
	}
}

// countByStatus tallies jobs per status.
func (s *jobStore) countByStatus() map[JobStatus]int {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := map[JobStatus]int{}
	for _, j := range s.jobs {
		out[j.Status]++
	}
	return out
}

// size returns the number of jobs currently held (the live-job gauge).
func (s *jobStore) size() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.jobs)
}

// setCancel registers the cancel function of a job's execution context.
func (s *jobStore) setCancel(id string, fn context.CancelFunc) {
	s.mu.Lock()
	s.cancels[id] = fn
	s.mu.Unlock()
}

// clearCancel drops a job's cancel registration (the job finished).
func (s *jobStore) clearCancel(id string) {
	s.mu.Lock()
	delete(s.cancels, id)
	s.mu.Unlock()
}

// takeCancel removes and returns a job's cancel function (nil when the
// job is not running).
func (s *jobStore) takeCancel(id string) context.CancelFunc {
	s.mu.Lock()
	defer s.mu.Unlock()
	fn := s.cancels[id]
	delete(s.cancels, id)
	return fn
}

// gc removes terminal jobs that finished more than ttl ago and returns
// how many were dropped. Running and pending jobs are never collected.
func (s *jobStore) gc(ttl time.Duration, now time.Time) int {
	s.mu.Lock()
	defer s.mu.Unlock()
	n := 0
	for id, j := range s.jobs {
		if !j.Status.terminal() || j.Finished == nil {
			continue
		}
		if now.Sub(*j.Finished) >= ttl {
			delete(s.jobs, id)
			delete(s.cancels, id)
			n++
		}
	}
	return n
}

// Typed submission failures: handlers translate these into 503s with a
// Retry-After hint instead of silently dropping the job.
var (
	// ErrQueueFull means the pending-job queue is at capacity.
	ErrQueueFull = errors.New("job queue full")
	// ErrPoolClosed means the pool stopped intake (server shutting down).
	ErrPoolClosed = errors.New("worker pool is shut down")
)

// workerPool runs jobs on a bounded set of goroutines over a bounded
// queue. Shutdown stops intake, cancels still-queued jobs and waits for
// in-flight jobs to drain.
type workerPool struct {
	queue  chan string
	wg     sync.WaitGroup
	mu     sync.Mutex
	closed bool
}

// newWorkerPool starts n workers pulling job IDs off a queue of the
// given depth and handing them to run.
func newWorkerPool(n, depth int, run func(id string)) *workerPool {
	p := &workerPool{queue: make(chan string, depth)}
	for i := 0; i < n; i++ {
		p.wg.Add(1)
		go func() {
			defer p.wg.Done()
			for id := range p.queue {
				run(id)
			}
		}()
	}
	return p
}

// submit enqueues a job ID, or reports why it cannot: ErrQueueFull when
// the queue is at capacity, ErrPoolClosed when intake has stopped.
func (p *workerPool) submit(id string) error {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.closed {
		return ErrPoolClosed
	}
	select {
	case p.queue <- id:
		return nil
	default:
		return ErrQueueFull
	}
}

// shutdown stops intake and waits — up to ctx's deadline — for the
// workers to drain in-flight jobs. Job IDs still queued (never started)
// are returned so the caller can mark them canceled.
func (p *workerPool) shutdown(ctx context.Context) (canceled []string) {
	p.mu.Lock()
	if !p.closed {
		p.closed = true
		// Drain never-started jobs before closing so workers exit after
		// finishing only what they already picked up.
		for {
			select {
			case id := <-p.queue:
				canceled = append(canceled, id)
				continue
			default:
			}
			break
		}
		close(p.queue)
	}
	p.mu.Unlock()

	done := make(chan struct{})
	go func() {
		p.wg.Wait()
		close(done)
	}()
	select {
	case <-done:
	case <-ctx.Done():
	}
	return canceled
}
