package service

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"github.com/trap-repro/trap/internal/trace"
)

// getRecorder is getPath keeping the full recorder (headers included).
func getRecorder(t *testing.T, h http.Handler, path string) *httptest.ResponseRecorder {
	t.Helper()
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest("GET", path, nil))
	if rec.Code != http.StatusOK {
		t.Fatalf("GET %s: %d %s", path, rec.Code, rec.Body.String())
	}
	return rec
}

// TestJobTraceEndToEnd runs a full assessment job and verifies the
// pipeline trace it produced: the job links to a retrievable trace
// whose span tree nests at least 4 levels deep (job → measure → cell →
// perturb/cost), with per-span durations consistent with the job's
// wall time, listable and exportable in the Chrome trace_event format.
func TestJobTraceEndToEnd(t *testing.T) {
	// Dedicated server: the shared one's worker pool may already be
	// drained by the graceful-shutdown test.
	s := newFaultServer(t, nil)
	h := s.Handler()
	sub := submitJob(t, h, "Drop", "Random")
	done := waitForJob(t, h, sub.ID, JobDone, time.Minute)
	if done.TraceID == "" {
		t.Fatalf("done job has no trace ID: %+v", done)
	}

	code, body := getPath(t, h, "/v1/traces/"+done.TraceID)
	if code != http.StatusOK {
		t.Fatalf("trace fetch: %d %s", code, body)
	}
	var tj trace.TraceJSON
	if err := json.Unmarshal(body, &tj); err != nil {
		t.Fatal(err)
	}
	if tj.ID != done.TraceID || tj.Op != "trapd.job" || tj.Status != "ok" {
		t.Fatalf("trace header: %+v", tj)
	}
	if tj.Root == nil {
		t.Fatal("trace has no root span")
	}
	if got := tj.Root.Attrs["advisor"]; got != "Drop" {
		t.Fatalf("root advisor attr = %v", got)
	}

	// The tree must cover the pipeline build→measure at ≥4 nesting
	// levels, and every span must fit inside its parent's duration
	// budget (and the root inside the job's wall time).
	names := map[string]bool{}
	maxDepth := 0
	var walk func(sp *trace.SpanJSON, depth int, parentDur int64)
	walk = func(sp *trace.SpanJSON, depth int, parentDur int64) {
		names[sp.Name] = true
		if depth > maxDepth {
			maxDepth = depth
		}
		if sp.DurMicro < 0 || sp.DurMicro > parentDur+1000 {
			t.Errorf("span %s (%d) duration %dus exceeds parent budget %dus",
				sp.Name, sp.ID, sp.DurMicro, parentDur)
		}
		for _, c := range sp.Children {
			walk(c, depth+1, sp.DurMicro)
		}
	}
	walk(tj.Root, 1, tj.DurMicro)
	if maxDepth < 4 {
		t.Fatalf("span tree only %d levels deep, want >= 4:\n%s", maxDepth, body)
	}
	for _, want := range []string{"trapd.job", "assess.build_advisor", "assess.build_method",
		"assess.measure", "assess.cell", "core.perturb_workload"} {
		if !names[want] {
			t.Errorf("trace missing %s span (have %v)", want, names)
		}
	}
	wall := done.Finished.Sub(*done.Started)
	if rootDur := time.Duration(tj.DurMicro) * time.Microsecond; rootDur > wall+50*time.Millisecond {
		t.Fatalf("root span %v longer than job wall time %v", rootDur, wall)
	}

	// The list endpoint filters by op and surfaces the same trace.
	code, body = getPath(t, h, "/v1/traces?op=trapd.job&limit=100")
	if code != http.StatusOK {
		t.Fatalf("trace list: %d %s", code, body)
	}
	var list traceListResponse
	if err := json.Unmarshal(body, &list); err != nil {
		t.Fatal(err)
	}
	found := false
	for _, tr := range list.Traces {
		if tr.Op != "trapd.job" {
			t.Fatalf("op filter leaked %s", tr.Op)
		}
		if tr.ID == done.TraceID {
			found = true
		}
	}
	if !found {
		t.Fatalf("trace %s not in list of %d", done.TraceID, len(list.Traces))
	}

	// Chrome export: complete events with depth lanes.
	code, body = getPath(t, h, "/v1/traces/"+done.TraceID+"?format=chrome")
	if code != http.StatusOK {
		t.Fatalf("chrome export: %d %s", code, body)
	}
	var evs []trace.ChromeEvent
	if err := json.Unmarshal(body, &evs); err != nil {
		t.Fatal(err)
	}
	if len(evs) < 4 {
		t.Fatalf("chrome export has %d events", len(evs))
	}
	laneDepth := 0
	for _, ev := range evs {
		if ev.Ph != "X" || ev.PID != 1 {
			t.Fatalf("chrome event: %+v", ev)
		}
		if ev.TID > laneDepth {
			laneDepth = ev.TID
		}
	}
	if laneDepth < 3 { // depth lanes are 0-based: >=4 levels means TID >= 3
		t.Fatalf("chrome lanes only reach depth %d", laneDepth)
	}

	// Unknown and evicted traces are 404s.
	if code, _ := getPath(t, h, "/v1/traces/ffffffffffffffff"); code != http.StatusNotFound {
		t.Fatalf("unknown trace: %d", code)
	}
	// Bad filter params are 400s.
	if code, _ := getPath(t, h, "/v1/traces?min_ms=nope"); code != http.StatusBadRequest {
		t.Fatalf("bad min_ms: %d", code)
	}
	if code, _ := getPath(t, h, "/v1/traces?status=bogus"); code != http.StatusBadRequest {
		t.Fatalf("bad status: %d", code)
	}
}

// TestMetricsFormats checks the three /metrics expositions: Prometheus
// 0.0.4 by default, OpenMetrics (with exemplars and # EOF) and the
// legacy plain dump on request.
func TestMetricsFormats(t *testing.T) {
	s := testServer(t)
	h := s.Handler()

	rec := getRecorder(t, h, "/metrics")
	if ct := rec.Header().Get("Content-Type"); ct != "text/plain; version=0.0.4; charset=utf-8" {
		t.Fatalf("prom content type: %q", ct)
	}
	out := rec.Body.String()
	if !strings.Contains(out, "# TYPE trapd_http_requests_total counter") {
		t.Fatalf("prom format missing TYPE header:\n%.400s", out)
	}
	if !strings.Contains(out, "# HELP trapd_jobs_submitted_total") {
		t.Fatalf("prom format missing HELP for described metric:\n%.400s", out)
	}
	if !strings.Contains(out, "# TYPE go_goroutines gauge") {
		t.Fatal("runtime health gauges not registered")
	}
	if strings.Contains(out, "# EOF") {
		t.Fatal("0.0.4 exposition must not contain # EOF")
	}

	rec = getRecorder(t, h, "/metrics?format=openmetrics")
	if ct := rec.Header().Get("Content-Type"); !strings.HasPrefix(ct, "application/openmetrics-text") {
		t.Fatalf("openmetrics content type: %q", ct)
	}
	if !strings.HasSuffix(rec.Body.String(), "# EOF\n") {
		t.Fatal("openmetrics missing # EOF")
	}

	rec = getRecorder(t, h, "/metrics?format=plain")
	plain := rec.Body.String()
	if strings.Contains(plain, "# TYPE") {
		t.Fatalf("legacy format should have no TYPE headers:\n%.200s", plain)
	}
	if !strings.Contains(plain, "trapd_http_requests_total") {
		t.Fatalf("legacy format missing counters:\n%.200s", plain)
	}
}
