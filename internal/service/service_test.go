package service

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"github.com/trap-repro/trap/internal/assess"
	"github.com/trap-repro/trap/internal/faultinject"
)

// tinyParams shrinks QuickParams so the shared test server builds in a
// couple of seconds.
func tinyParams() assess.Params {
	p := assess.QuickParams()
	p.Templates = 8
	p.TrainWorkloads = 3
	p.TestWorkloads = 3
	p.WorkloadSize = 4
	p.UtilitySamples = 200
	p.PretrainPairs = 4
	p.PretrainEpochs = 1
	p.RLEpochs = 1
	p.AdvisorEpisodes = 8
	return p
}

var (
	testSrvOnce sync.Once
	testSrv     *Server
	testSrvErr  error
)

// testServer builds one shared tpch server: one worker and a depth-2
// queue so the queue-full and drain paths are exercisable.
func testServer(t *testing.T) *Server {
	t.Helper()
	testSrvOnce.Do(func() {
		testSrv, testSrvErr = NewServer(Config{
			Datasets:       []string{"tpch"},
			Params:         tinyParams(),
			Seed:           7,
			Workers:        1,
			QueueDepth:     2,
			RequestTimeout: 30 * time.Second,
			JobTimeout:     2 * time.Minute,
			Logf:           func(string, ...any) {},
		})
	})
	if testSrvErr != nil {
		t.Fatal(testSrvErr)
	}
	return testSrv
}

func postJSON(t *testing.T, h http.Handler, path string, body any) (int, []byte) {
	t.Helper()
	b, err := json.Marshal(body)
	if err != nil {
		t.Fatal(err)
	}
	req := httptest.NewRequest("POST", path, bytes.NewReader(b))
	req.Header.Set("Content-Type", "application/json")
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, req)
	return rec.Code, rec.Body.Bytes()
}

func getPath(t *testing.T, h http.Handler, path string) (int, []byte) {
	t.Helper()
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest("GET", path, nil))
	return rec.Code, rec.Body.Bytes()
}

func TestHealthz(t *testing.T) {
	h := testServer(t).Handler()
	code, body := getPath(t, h, "/healthz")
	if code != http.StatusOK {
		t.Fatalf("healthz: %d %s", code, body)
	}
	var resp healthResponse
	if err := json.Unmarshal(body, &resp); err != nil {
		t.Fatal(err)
	}
	if resp.Status != "ok" || len(resp.Datasets) != 1 || resp.Datasets[0] != "tpch" {
		t.Fatalf("healthz payload: %+v", resp)
	}
}

func TestParseEndpoint(t *testing.T) {
	h := testServer(t).Handler()

	code, body := postJSON(t, h, "/v1/parse", parseRequest{
		SQL: "SELECT lineitem.l_quantity FROM lineitem WHERE lineitem.l_orderkey = 5",
	})
	if code != http.StatusOK {
		t.Fatalf("parse: %d %s", code, body)
	}
	var resp parseResponse
	if err := json.Unmarshal(body, &resp); err != nil {
		t.Fatal(err)
	}
	if len(resp.Tables) != 1 || resp.Tables[0] != "lineitem" || resp.Tokens == 0 {
		t.Fatalf("parse payload: %+v", resp)
	}

	// Parse errors are 400s with a JSON error envelope.
	code, body = postJSON(t, h, "/v1/parse", parseRequest{SQL: "SELECT FROM WHERE"})
	if code != http.StatusBadRequest {
		t.Fatalf("bad SQL: %d %s", code, body)
	}
	var eb errorBody
	if err := json.Unmarshal(body, &eb); err != nil || eb.Error == "" {
		t.Fatalf("error envelope: %s", body)
	}

	// Malformed JSON is a 400 too.
	req := httptest.NewRequest("POST", "/v1/parse", strings.NewReader("{nope"))
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, req)
	if rec.Code != http.StatusBadRequest {
		t.Fatalf("bad JSON: %d", rec.Code)
	}
}

func TestExplainEndpoint(t *testing.T) {
	h := testServer(t).Handler()
	code, body := postJSON(t, h, "/v1/explain", explainRequest{
		Dataset: "tpch",
		SQL:     "SELECT lineitem.l_quantity FROM lineitem WHERE lineitem.l_orderkey = 5",
		Indexes: []string{"lineitem(l_orderkey)"},
	})
	if code != http.StatusOK {
		t.Fatalf("explain: %d %s", code, body)
	}
	var resp explainResponse
	if err := json.Unmarshal(body, &resp); err != nil {
		t.Fatal(err)
	}
	if resp.EstimatedCost <= 0 || resp.TrueCost <= 0 || resp.RuntimeCost <= 0 {
		t.Fatalf("explain costs: %+v", resp)
	}
	if !strings.Contains(resp.EstimatedPlan, "Index") {
		t.Fatalf("expected an index scan in plan:\n%s", resp.EstimatedPlan)
	}

	// Bad index spec.
	code, _ = postJSON(t, h, "/v1/explain", explainRequest{
		Dataset: "tpch", SQL: "SELECT lineitem.l_quantity FROM lineitem", Indexes: []string{"oops"},
	})
	if code != http.StatusBadRequest {
		t.Fatalf("bad index spec: %d", code)
	}
}

func TestUnknownDataset(t *testing.T) {
	h := testServer(t).Handler()
	for _, tc := range []struct {
		path string
		body any
	}{
		{"/v1/explain", explainRequest{Dataset: "mysterydb", SQL: "SELECT lineitem.l_quantity FROM lineitem"}},
		{"/v1/advise", adviseRequest{Dataset: "mysterydb", Advisor: "Extend", Queries: []string{"SELECT lineitem.l_quantity FROM lineitem"}}},
		{"/v1/assess", assessRequest{Dataset: "mysterydb", Advisor: "Extend"}},
	} {
		code, body := postJSON(t, h, tc.path, tc.body)
		if code != http.StatusNotFound {
			t.Errorf("%s with unknown dataset: got %d %s", tc.path, code, body)
		}
	}
}

func TestAdviseEndpoint(t *testing.T) {
	h := testServer(t).Handler()
	code, body := postJSON(t, h, "/v1/advise", adviseRequest{
		Dataset: "tpch",
		Advisor: "Extend",
		Queries: []string{
			"SELECT lineitem.l_quantity FROM lineitem WHERE lineitem.l_orderkey = 5",
			"SELECT orders.o_totalprice FROM orders WHERE orders.o_custkey = 7",
		},
	})
	if code != http.StatusOK {
		t.Fatalf("advise: %d %s", code, body)
	}
	var resp adviseResponse
	if err := json.Unmarshal(body, &resp); err != nil {
		t.Fatal(err)
	}
	if resp.Advisor != "Extend" {
		t.Fatalf("advise payload: %+v", resp)
	}
	if len(resp.Indexes) == 0 || resp.WhatIfImprovement <= 0 {
		t.Fatalf("expected a useful recommendation, got %+v", resp)
	}
	// Recommended specs round-trip through the index-spec parser.
	if _, err := ParseIndexes(resp.Indexes); err != nil {
		t.Fatalf("unparseable recommendation %v: %v", resp.Indexes, err)
	}

	// Unknown advisor is a 400.
	code, _ = postJSON(t, h, "/v1/advise", adviseRequest{
		Dataset: "tpch", Advisor: "Oracle", Queries: []string{"SELECT lineitem.l_quantity FROM lineitem"},
	})
	if code != http.StatusBadRequest {
		t.Fatalf("unknown advisor: %d", code)
	}
}

func TestRequestDeadline(t *testing.T) {
	s := testServer(t)
	old := s.cfg.RequestTimeout
	s.cfg.RequestTimeout = time.Nanosecond
	defer func() { s.cfg.RequestTimeout = old }()

	code, body := postJSON(t, s.Handler(), "/v1/advise", adviseRequest{
		Dataset: "tpch",
		Advisor: "Extend",
		Queries: []string{"SELECT lineitem.l_quantity FROM lineitem WHERE lineitem.l_orderkey = 5"},
	})
	if code != http.StatusGatewayTimeout {
		t.Fatalf("expected 504, got %d %s", code, body)
	}
}

func waitForJob(t *testing.T, h http.Handler, id string, want JobStatus, timeout time.Duration) Job {
	t.Helper()
	deadline := time.Now().Add(timeout)
	for {
		code, body := getPath(t, h, "/v1/jobs/"+id)
		if code != http.StatusOK {
			t.Fatalf("job poll: %d %s", code, body)
		}
		var j Job
		if err := json.Unmarshal(body, &j); err != nil {
			t.Fatal(err)
		}
		if j.Status == want {
			return j
		}
		if j.Status == JobFailed || j.Status == JobCanceled {
			t.Fatalf("job %s ended %s: %s", id, j.Status, j.Error)
		}
		if time.Now().After(deadline) {
			t.Fatalf("job %s stuck in %s waiting for %s", id, j.Status, want)
		}
		time.Sleep(10 * time.Millisecond)
	}
}

func TestAssessJobLifecycle(t *testing.T) {
	s := testServer(t)
	h := s.Handler()
	code, body := postJSON(t, h, "/v1/assess", assessRequest{
		Dataset: "tpch", Advisor: "Drop", Method: "Random", Constraint: "shared",
	})
	if code != http.StatusAccepted {
		t.Fatalf("assess submit: %d %s", code, body)
	}
	var j Job
	if err := json.Unmarshal(body, &j); err != nil {
		t.Fatal(err)
	}
	if j.Status != JobPending || j.ID == "" {
		t.Fatalf("submitted job: %+v", j)
	}

	done := waitForJob(t, h, j.ID, JobDone, time.Minute)
	if done.Result == nil {
		t.Fatal("done job has no result")
	}
	if done.Started == nil || done.Finished == nil {
		t.Fatalf("job lifecycle timestamps missing: %+v", done)
	}
	if done.Result.Workloads < 0 || done.Result.Pairs == 0 {
		t.Fatalf("job result: %+v", done.Result)
	}

	// Unknown job IDs are 404s.
	if code, _ := getPath(t, h, "/v1/jobs/job-999999"); code != http.StatusNotFound {
		t.Fatalf("unknown job: %d", code)
	}

	// After a completed assessment the metrics exposition shows what-if
	// traffic and plan-cache activity.
	code, body = getPath(t, h, "/metrics")
	if code != http.StatusOK {
		t.Fatalf("metrics: %d", code)
	}
	for _, metric := range []string{
		"engine_whatif_calls_total",
		"engine_plan_cache_hits_total",
		"engine_plan_cache_misses_total",
		`engine_plan_cache_entries{dataset="tpch"}`,
		"advisor_recommend_total",
		"assess_measure_seconds_count",
		"trapd_jobs_done_total",
	} {
		val, ok := metricValue(body, metric)
		if !ok {
			t.Errorf("metrics missing %s", metric)
			continue
		}
		if val <= 0 {
			t.Errorf("metric %s is zero after an assessment", metric)
		}
	}
}

// metricValue extracts "name value" from the exposition text.
func metricValue(body []byte, name string) (float64, bool) {
	for _, line := range strings.Split(string(body), "\n") {
		if rest, ok := strings.CutPrefix(line, name+" "); ok {
			var v float64
			if _, err := fmt.Sscanf(rest, "%g", &v); err == nil {
				return v, true
			}
		}
	}
	return 0, false
}

// TestQueueFullAndDrain saturates a single worker, checks queue
// overflow handling, then shuts the pool down and verifies the running
// job drains while queued jobs cancel. It uses a dedicated server with
// an injected per-workload delay so the first job stays observably
// running: on a warm cache the batch-costing path finishes a
// Drop/Random assessment faster than the poll interval.
func TestQueueFullAndDrain(t *testing.T) {
	s := newFaultServer(t, func(c *Config) {
		c.Workers = 1
		c.QueueDepth = 2
		c.Injector = faultinject.NewSeeded(1, faultinject.Rule{
			Point: faultinject.PointRLWorkload, Action: faultinject.ActDelay,
			Every: 1, Delay: 200 * time.Millisecond,
		})
	})
	h := s.Handler()

	// Only the GRU job RL-trains, so only it hits the delay point; wait
	// for the worker to pick it up so the queue slots are free for the
	// jobs below.
	running := submitJob(t, h, "Drop", "GRU")
	waitForJob(t, h, running.ID, JobRunning, 30*time.Second)

	var queued []Job
	for i := 0; i < 2; i++ {
		queued = append(queued, submitJob(t, h, "Drop", "Random"))
	}
	// Queue (depth 2) is now full: the next submission is rejected.
	code, _ := postJSON(t, h, "/v1/assess", assessRequest{
		Dataset: "tpch", Advisor: "Drop", Method: "Random",
	})
	if code != http.StatusServiceUnavailable {
		t.Fatalf("expected 503 on full queue, got %d", code)
	}

	ctx, cancel := context.WithTimeout(context.Background(), time.Minute)
	defer cancel()
	s.Drain(ctx)

	j, _ := s.jobs.get(running.ID)
	if j.Status != JobDone {
		t.Fatalf("running job should drain to done, got %s (%s)", j.Status, j.Error)
	}
	for _, q := range queued {
		got, _ := s.jobs.get(q.ID)
		if got.Status != JobCanceled {
			t.Errorf("queued job %s: want canceled, got %s", q.ID, got.Status)
		}
	}
}

// TestServeGracefulShutdown boots the real listener on the shared
// server, talks to it over TCP, cancels the serve context and verifies
// serve returns cleanly within the grace period.
func TestServeGracefulShutdown(t *testing.T) {
	s := testServer(t)
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	served := make(chan error, 1)
	go func() { served <- s.serve(ctx, ln) }()

	url := "http://" + ln.Addr().String() + "/healthz"
	var resp *http.Response
	for i := 0; ; i++ {
		resp, err = http.Get(url)
		if err == nil {
			break
		}
		if i > 100 {
			t.Fatal(err)
		}
		time.Sleep(10 * time.Millisecond)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("healthz over TCP: %d", resp.StatusCode)
	}

	cancel()
	select {
	case err := <-served:
		if err != nil && err != http.ErrServerClosed {
			t.Fatalf("serve returned: %v", err)
		}
	case <-time.After(shutdownGrace + 10*time.Second):
		t.Fatal("serve did not shut down")
	}
}
