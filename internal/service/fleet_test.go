package service

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"path/filepath"
	"strconv"
	"strings"
	"testing"
	"time"

	"github.com/trap-repro/trap/internal/cluster"
	"github.com/trap-repro/trap/internal/faultinject"
	"github.com/trap-repro/trap/internal/joblog"
)

// newFleetNode builds one trapd node attached to a shared cluster bus.
// epochDelay stretches RL training (a per-epoch injector delay) so the
// tests have time to kill or partition the owner mid-run; delays do not
// change training results.
func newFleetNode(t *testing.T, bus *cluster.Bus, node, spool string, epochDelay time.Duration, mutate func(*Config)) *Server {
	t.Helper()
	cfg := crashParams()
	cfg.NodeID = node
	cfg.Bus = bus
	cfg.SpoolDir = spool
	cfg.CheckpointEvery = 1
	cfg.LeaseTTL = 900 * time.Millisecond
	cfg.HeartbeatInterval = 250 * time.Millisecond
	if epochDelay > 0 {
		cfg.Injector = faultinject.NewSeeded(1, faultinject.Rule{
			Point: faultinject.PointRLEpoch, Action: faultinject.ActDelay,
			Every: 1, Delay: epochDelay,
		})
	}
	if mutate != nil {
		mutate(&cfg)
	}
	s, err := NewServer(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func waitUntil(t *testing.T, timeout time.Duration, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(timeout)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatalf("timed out waiting for %s", what)
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// replayRecords reopens a (closed) joblog directory and returns every
// retained record, for post-mortem invariant checks.
func replayRecords(t *testing.T, dir string) []joblog.Record {
	t.Helper()
	var recs []joblog.Record
	l, err := joblog.Open(dir, joblog.Options{Replay: func(r joblog.Record) error {
		recs = append(recs, r)
		return nil
	}})
	if err != nil {
		t.Fatal(err)
	}
	l.Close()
	return recs
}

// TestFleetChaosDrillTakeover is the headline chaos drill: three
// in-process nodes share one job namespace through the joblog, the
// node owning a running RL-training job is torn down SIGKILL-style
// mid-training, and a survivor must take the lease over at a higher
// fencing epoch and resume from the latest spooled checkpoint. The
// drill then replays the shared log to assert the distributed
// invariants — a single owner per lease epoch, no lost job, no double
// result — and reruns the job uninterrupted on a fresh single node to
// assert the survivor's final parameters are bit-identical.
func TestFleetChaosDrillTakeover(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-suite chaos drill")
	}
	base := t.TempDir()
	logDir := filepath.Join(base, "joblog")
	spool := filepath.Join(base, "spool")
	bus, err := NewFleetBus(logDir, 0)
	if err != nil {
		t.Fatal(err)
	}
	nodes := []string{"n1", "n2", "n3"}
	srvs := map[string]*Server{}
	for _, n := range nodes {
		srvs[n] = newFleetNode(t, bus, n, spool, 400*time.Millisecond, nil)
	}
	closed := false
	closeAll := func() {
		if closed {
			return
		}
		closed = true
		for _, s := range srvs {
			s.Close()
		}
		bus.Close()
	}
	defer closeAll()

	j := submitJob(t, srvs["n1"].Handler(), "Drop", "GRU")

	// Wait for the first checkpoint so the survivor has something to
	// resume from, then identify and kill the owner.
	waitUntil(t, time.Minute, "first checkpoint", func() bool {
		m, _ := filepath.Glob(filepath.Join(spool, "*.ckpt"))
		return len(m) > 0
	})
	lease, open := bus.Lease(j.ID)
	if !open || lease.Node == "" {
		t.Fatalf("no lease for %s after checkpoint (open=%v)", j.ID, open)
	}
	owner := lease.Node
	srvs[owner].KillNode()

	var survivor string
	for _, n := range nodes {
		if n != owner {
			survivor = n
			break
		}
	}
	final := pollTerminal(t, srvs[survivor].Handler(), j.ID, 3*time.Minute)
	if final.Status != JobDone {
		t.Fatalf("job after takeover: %s (err=%q)", final.Status, final.Error)
	}
	if final.Node == owner || final.Node == "" {
		t.Errorf("final owner = %q, want a survivor (killed %q)", final.Node, owner)
	}
	if final.Epoch < 2 {
		t.Errorf("final lease epoch = %d, want >= 2 (takeover)", final.Epoch)
	}
	if !final.Restored {
		t.Error("job not marked restored after takeover")
	}
	if !final.Resumed {
		t.Error("job did not resume from checkpoint")
	}
	if st := bus.Stats(); st.Takeovers < 1 {
		t.Errorf("bus takeovers = %d, want >= 1", st.Takeovers)
	}

	// The fleet view on a survivor shows all three nodes, the dead one
	// marked down.
	code, body := getPath(t, srvs[survivor].Handler(), "/v1/nodes")
	if code != http.StatusOK {
		t.Fatalf("GET /v1/nodes: %d %s", code, body)
	}
	var nv struct {
		Node  string             `json:"node"`
		Nodes []cluster.NodeInfo `json:"nodes"`
	}
	if err := json.Unmarshal(body, &nv); err != nil {
		t.Fatal(err)
	}
	if len(nv.Nodes) != 3 {
		t.Errorf("fleet view: %d nodes, want 3", len(nv.Nodes))
	}
	downOK := false
	for _, n := range nv.Nodes {
		if n.Node == owner && n.Down {
			downOK = true
		}
	}
	if !downOK {
		t.Errorf("killed node %q not marked down in %s", owner, body)
	}
	metricAtLeast(t, srvs[final.Node].Handler(), "trapd_jobs_restored_total", 1)
	metricAtLeast(t, srvs[final.Node].Handler(), "trapd_cluster_takeovers_total", 1)

	// Post-mortem over the shared log: exactly one terminal done record
	// (no double result), claim epochs never regress, and each lease
	// epoch has exactly one owner.
	closeAll()
	recs := replayRecords(t, logDir)
	doneRecs := 0
	claimants := map[uint64]map[string]bool{}
	var lastEpoch, maxEpoch uint64
	for _, r := range recs {
		switch r.Type {
		case recSubmit, recState:
			var jr Job
			if json.Unmarshal(r.Data, &jr) == nil && jr.ID == j.ID && jr.Status == JobDone {
				doneRecs++
			}
		case cluster.RecClaim:
			if r.JobID != j.ID {
				continue
			}
			var cd cluster.ClaimData
			if err := json.Unmarshal(r.Data, &cd); err != nil {
				t.Fatalf("bad claim record: %v", err)
			}
			if cd.Epoch < lastEpoch {
				t.Errorf("claim epoch regressed: %d after %d", cd.Epoch, lastEpoch)
			}
			lastEpoch = cd.Epoch
			if cd.Epoch > maxEpoch {
				maxEpoch = cd.Epoch
			}
			m := claimants[cd.Epoch]
			if m == nil {
				m = map[string]bool{}
				claimants[cd.Epoch] = m
			}
			m[cd.Node] = true
		}
	}
	if doneRecs != 1 {
		t.Errorf("done-state records in log = %d, want exactly 1", doneRecs)
	}
	for ep, who := range claimants {
		if len(who) != 1 {
			t.Errorf("lease epoch %d claimed by %d nodes %v, want 1", ep, len(who), who)
		}
	}
	if maxEpoch < 2 {
		t.Errorf("max claim epoch = %d, want >= 2", maxEpoch)
	}

	// Bit-identical: rerun the same job uninterrupted on a fresh
	// single-node server with the same seed and params.
	ref, err := NewServer(crashParams())
	if err != nil {
		t.Fatal(err)
	}
	defer ref.Close()
	want := waitForJob(t, ref.Handler(), submitJob(t, ref.Handler(), "Drop", "GRU").ID,
		JobDone, 3*time.Minute)
	if final.Result == nil || want.Result == nil {
		t.Fatal("missing results")
	}
	if final.Result.MeanIUDR != want.Result.MeanIUDR ||
		final.Result.Pairs != want.Result.Pairs ||
		final.Result.Workloads != want.Result.Workloads {
		t.Errorf("takeover result diverged: got %+v want %+v", final.Result, want.Result)
	}
}

// TestFleetFencedStaleResult pauses (partitions) the owner mid-training
// past its lease TTL. A survivor takes over at a higher epoch; when the
// old owner is healed it must be fenced — its stale appends rejected
// and its in-flight training cancelled — and the job must still finish
// exactly once under the new owner.
func TestFleetFencedStaleResult(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-suite fencing drill")
	}
	base := t.TempDir()
	logDir := filepath.Join(base, "joblog")
	spool := filepath.Join(base, "spool")
	bus, err := NewFleetBus(logDir, 0)
	if err != nil {
		t.Fatal(err)
	}
	longer := func(c *Config) { c.Params.RLEpochs = 8 }
	srvs := map[string]*Server{
		"a": newFleetNode(t, bus, "a", spool, 400*time.Millisecond, longer),
		"b": newFleetNode(t, bus, "b", spool, 400*time.Millisecond, longer),
	}
	closed := false
	closeAll := func() {
		if closed {
			return
		}
		closed = true
		for _, s := range srvs {
			s.Close()
		}
		bus.Close()
	}
	defer closeAll()

	j := submitJob(t, srvs["a"].Handler(), "Drop", "GRU")

	var owner string
	waitUntil(t, time.Minute, "lease", func() bool {
		l, open := bus.Lease(j.ID)
		if open && l.Node != "" {
			owner = l.Node
			return true
		}
		return false
	})
	survivor := "a"
	if owner == "a" {
		survivor = "b"
	}

	// Partition the owner: heartbeats and lease renewals fail, so the
	// lease expires and the survivor takes over.
	srvs[owner].PartitionNode()
	waitUntil(t, time.Minute, "heartbeat-stall readiness alarm", func() bool {
		code, body := getPath(t, srvs[owner].Handler(), "/readyz")
		return code == http.StatusServiceUnavailable &&
			strings.Contains(string(body), "heartbeat stalled")
	})
	waitUntil(t, time.Minute, "takeover", func() bool {
		return bus.Stats().Takeovers >= 1
	})

	// Heal the stale owner while its training is still running: its next
	// owned append carries the old fencing epoch and must be rejected.
	srvs[owner].HealNode()
	waitUntil(t, time.Minute, "fence reject", func() bool {
		return bus.Stats().FenceRejects >= 1
	})
	waitUntil(t, time.Minute, "fenced run cancel", func() bool {
		return srvs[owner].ClusterStats().FencedRuns >= 1
	})

	final := pollTerminal(t, srvs[survivor].Handler(), j.ID, 3*time.Minute)
	if final.Status != JobDone {
		t.Fatalf("job after fencing: %s (err=%q)", final.Status, final.Error)
	}
	if final.Node != survivor {
		t.Errorf("final owner = %q, want survivor %q", final.Node, survivor)
	}

	closeAll()
	doneRecs := 0
	for _, r := range replayRecords(t, logDir) {
		if r.Type != recState && r.Type != recSubmit {
			continue
		}
		var jr Job
		if json.Unmarshal(r.Data, &jr) == nil && jr.ID == j.ID && jr.Status == JobDone {
			doneRecs++
		}
	}
	if doneRecs != 1 {
		t.Errorf("done-state records in log = %d, want exactly 1 (stale result leaked?)", doneRecs)
	}
}

// TestFleetSSEResumeAcrossTakeover disconnects an SSE consumer
// mid-stream, kills the job's owner, and resumes the stream with
// Last-Event-ID on a surviving node after the takeover completes. The
// two segments must join contiguously with every training epoch
// reported exactly once and exactly one result event — the fold-driven
// hub keeps event sequence numbers identical fleet-wide.
func TestFleetSSEResumeAcrossTakeover(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-suite SSE drill")
	}
	base := t.TempDir()
	logDir := filepath.Join(base, "joblog")
	spool := filepath.Join(base, "spool")
	bus, err := NewFleetBus(logDir, 0)
	if err != nil {
		t.Fatal(err)
	}
	srvs := map[string]*Server{
		"a": newFleetNode(t, bus, "a", spool, 400*time.Millisecond, nil),
		"b": newFleetNode(t, bus, "b", spool, 400*time.Millisecond, nil),
	}
	defer func() {
		for _, s := range srvs {
			s.Close()
		}
		bus.Close()
	}()

	j := submitJob(t, srvs["a"].Handler(), "Drop", "GRU")
	var owner string
	waitUntil(t, time.Minute, "lease", func() bool {
		l, open := bus.Lease(j.ID)
		if open && l.Node != "" {
			owner = l.Node
			return true
		}
		return false
	})
	survivor := "a"
	if owner == "a" {
		survivor = "b"
	}

	// Stream from the survivor (a pure mirror of the fold) and read up
	// to the first epoch event, then drop the connection.
	ts := httptest.NewServer(srvs[survivor].Handler())
	defer ts.Close()
	resp, err := http.Get(ts.URL + "/v1/jobs/" + j.ID + "/events")
	if err != nil {
		t.Fatal(err)
	}
	head := readSSE(t, resp.Body, 3)
	resp.Body.Close()
	if len(head) != 3 {
		t.Fatalf("short first SSE segment: %d frames", len(head))
	}

	srvs[owner].KillNode()
	final := pollTerminal(t, srvs[survivor].Handler(), j.ID, 3*time.Minute)
	if final.Status != JobDone {
		t.Fatalf("job after takeover: %s (err=%q)", final.Status, final.Error)
	}

	// Resume after the last frame we saw; the hub is closed (job
	// terminal) so the replay runs to EOF.
	req, _ := http.NewRequest("GET", ts.URL+"/v1/jobs/"+j.ID+"/events", nil)
	req.Header.Set("Last-Event-ID", strconv.FormatInt(head[len(head)-1].ID, 10))
	resp2, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	tail := readSSE(t, resp2.Body, 1<<20)
	resp2.Body.Close()

	frames := append(head, tail...)
	for i := 1; i < len(frames); i++ {
		if frames[i].ID != frames[i-1].ID+1 {
			t.Fatalf("event stream gap across resume: id %d after %d", frames[i].ID, frames[i-1].ID)
		}
	}
	epochSeen := map[int]int{}
	results := 0
	for _, f := range frames {
		switch f.Event {
		case evEpoch:
			epochSeen[f.Data.Epoch]++
		case evResult:
			results++
		}
	}
	for ep := 1; ep <= 4; ep++ {
		if epochSeen[ep] != 1 {
			t.Errorf("epoch %d reported %d times, want exactly once", ep, epochSeen[ep])
		}
	}
	if results != 1 {
		t.Errorf("result events = %d, want exactly 1", results)
	}
	terminalStates := 0
	for _, f := range frames {
		if f.Event == evState && f.Data.Status.terminal() {
			terminalStates++
		}
	}
	if terminalStates != 1 {
		t.Errorf("terminal state events = %d, want exactly 1", terminalStates)
	}
	if last := frames[len(frames)-1]; last.Event != evResult {
		t.Errorf("stream did not end on the result event: %+v", last)
	}
}

// TestJobLogDegradedDraining (single node) injects a write failure into
// the job-log append path: the log latches read-only, the node flips to
// draining — /readyz 503, new submissions rejected 503 — while already
// accepted jobs still run to completion.
func TestJobLogDegradedDraining(t *testing.T) {
	s := newFaultServer(t, func(c *Config) {
		c.JobLogDir = t.TempDir()
		c.Injector = faultinject.NewSeeded(1, faultinject.Rule{
			Point: faultinject.PointJoblogAppend, Action: faultinject.ActError,
			Every: 1, Count: 1,
		})
	})
	defer s.Close()
	h := s.Handler()

	// First submit: the submit-record append fails, degrading the log.
	// The job itself is still accepted (append failure is non-fatal for
	// in-memory execution) but the node starts draining.
	j := submitJob(t, h, "Drop", "Random")

	waitUntil(t, 10*time.Second, "draining readiness", func() bool {
		code, body := getPath(t, h, "/readyz")
		return code == http.StatusServiceUnavailable &&
			strings.Contains(string(body), "degraded")
	})

	code, body := postJSON(t, h, "/v1/assess", assessRequest{
		Dataset: "tpch", Advisor: "Drop", Method: "Random",
	})
	if code != http.StatusServiceUnavailable {
		t.Fatalf("submit while draining: %d %s, want 503", code, body)
	}
	if !strings.Contains(string(body), "degraded") {
		t.Errorf("drain rejection body %q does not mention degradation", body)
	}

	fin := pollTerminal(t, h, j.ID, time.Minute)
	if fin.Status != JobDone {
		t.Errorf("accepted job after degradation: %s (err=%q)", fin.Status, fin.Error)
	}
	metricAtLeast(t, h, "trapd_joblog_degraded", 1)
}

// TestHubSlowConsumerEviction verifies the SSE hub never blocks on a
// stalled subscriber: the laggard's channel is closed once its buffer
// fills, and a reconnect with Last-Event-ID replays what it missed from
// the retained backlog.
func TestHubSlowConsumerEviction(t *testing.T) {
	h := newJobHub()
	_, ch := h.subscribe(0)
	if ch == nil {
		t.Fatal("subscribe on open hub returned nil channel")
	}

	total := subBuffer + 10
	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; i < total; i++ {
			h.publish(JobEvent{Type: evEpoch, Epoch: i + 1})
		}
	}()
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("publisher blocked on a slow consumer")
	}

	// The evicted channel holds its buffered prefix and is then closed.
	n := 0
	for range ch {
		n++
	}
	if n != subBuffer {
		t.Fatalf("evicted consumer drained %d events, want %d buffered", n, subBuffer)
	}

	// Reconnect after the last seen Seq: the backlog fills the gap.
	replay, ch2 := h.subscribe(int64(n))
	if ch2 == nil {
		t.Fatal("re-subscribe returned nil channel on open hub")
	}
	defer h.unsubscribe(ch2)
	if len(replay) != total-n {
		t.Fatalf("resume replayed %d events, want %d", len(replay), total-n)
	}
	if replay[0].Seq != int64(n)+1 || replay[len(replay)-1].Seq != int64(total) {
		t.Fatalf("resume range [%d,%d], want [%d,%d]",
			replay[0].Seq, replay[len(replay)-1].Seq, n+1, total)
	}
}
