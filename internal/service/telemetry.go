package service

import (
	"fmt"
	"net/http"
	"strings"
	"sync"
	"time"

	"github.com/trap-repro/trap/internal/telemetry"
)

// Per-job training/attack telemetry: every job gets a telemetry.Scope
// that the domain loops (internal/core RL epochs, internal/assess
// attack steps) append ring-buffered series into via the job context.
// The scope lives exactly as long as the job does — created when the
// run starts (or when the fold first delivers points in cluster mode),
// dropped when the GC drops the job — and is served by
// GET /v1/jobs/{id}/telemetry as JSON or CSV.

// scopeStore owns the per-job telemetry scopes.
type scopeStore struct {
	mu sync.Mutex
	m  map[string]*telemetry.Scope
}

func newScopeStore() *scopeStore {
	return &scopeStore{m: map[string]*telemetry.Scope{}}
}

// getOrCreate returns the job's scope, creating it on first use. The
// scope survives retries and (in cluster mode) takeovers on the same
// node: the series' monotonic step gates dedup re-run epochs.
func (st *scopeStore) getOrCreate(id string) *telemetry.Scope {
	st.mu.Lock()
	defer st.mu.Unlock()
	sc, ok := st.m[id]
	if !ok {
		sc = telemetry.NewScope(telemetry.Options{})
		st.m[id] = sc
	}
	return sc
}

// get returns the job's scope, nil when none exists yet.
func (st *scopeStore) get(id string) *telemetry.Scope {
	st.mu.Lock()
	defer st.mu.Unlock()
	return st.m[id]
}

// drop removes a job's scope (the job was GC'd).
func (st *scopeStore) drop(id string) {
	st.mu.Lock()
	delete(st.m, id)
	st.mu.Unlock()
}

// size counts live scopes (the trapd_telemetry_scopes gauge).
func (st *scopeStore) size() int {
	st.mu.Lock()
	defer st.mu.Unlock()
	return len(st.m)
}

// rlPoints filters a scope's latest values down to the per-epoch RL
// series (rl_loss, rl_mean_reward, ...). These are the values that
// replicate fleet-wide through progress records: their step is the RL
// epoch, so a peer's fold can re-append them at the record's epoch and
// the owner's own richer series dedup the duplicates by step.
func rlPoints(sc *telemetry.Scope) map[string]float64 {
	if sc == nil {
		return nil
	}
	latest := sc.Latest()
	pts := make(map[string]float64, len(latest))
	for name, v := range latest {
		if strings.HasPrefix(name, "rl_") {
			pts[name] = v
		}
	}
	if len(pts) == 0 {
		return nil
	}
	return pts
}

// GET /v1/jobs/{id}/telemetry

// telemetryResponse is the JSON envelope: every series the job has
// recorded, each with its ring-buffer contents and current stride
// (stride > 1 means points beyond the buffer capacity were downsampled
// into coarser means).
type telemetryResponse struct {
	Job    string                 `json:"job"`
	Series []telemetry.SeriesDump `json:"series"`
}

// handleJobTelemetry serves a job's time-series telemetry. The default
// is JSON; ?format=csv flattens every series into series,step,value
// rows for direct plotting.
func (s *Server) handleJobTelemetry(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	if _, ok := s.jobs.get(id); !ok {
		writeError(w, http.StatusNotFound, "unknown job %q", id)
		return
	}
	dump := s.tscopes.get(id).Snapshot() // nil-scope safe: empty dump
	if r.URL.Query().Get("format") == "csv" {
		w.Header().Set("Content-Type", "text/csv; charset=utf-8")
		fmt.Fprintf(w, "series,step,value\n")
		for _, sd := range dump {
			for _, p := range sd.Points {
				fmt.Fprintf(w, "%s,%d,%g\n", sd.Name, p.Step, p.Value)
			}
		}
		return
	}
	if dump == nil {
		dump = []telemetry.SeriesDump{}
	}
	writeJSON(w, http.StatusOK, telemetryResponse{Job: id, Series: dump})
}

// GET /v1/cluster/metrics

// clusterMetricsNode is one node's row in the federated view.
type clusterMetricsNode struct {
	Node string    `json:"node"`
	At   time.Time `json:"at"`
	// AgeMilli is the snapshot's age at serve time.
	AgeMilli int64 `json:"ageMs"`
	// Stale marks a snapshot older than the freshness window (about
	// three publish intervals) or from a killed node; stale snapshots
	// are excluded from the fleet aggregate.
	Stale   bool               `json:"stale"`
	Metrics map[string]float64 `json:"metrics"`
}

// clusterMetricsResponse is the /v1/cluster/metrics envelope: the
// fleet-wide aggregate (per-metric sum over fresh nodes — meaningful
// for counters and _count/_sum pairs; gauges and quantiles belong in
// the per-node breakdown) plus every node's latest snapshot.
type clusterMetricsResponse struct {
	Node  string               `json:"node"`
	Fleet map[string]float64   `json:"fleet"`
	Nodes []clusterMetricsNode `json:"nodes"`
}

// metricsStaleAfter is the federation freshness window: snapshots older
// than this are marked stale and left out of the fleet aggregate.
func (s *Server) metricsStaleAfter() time.Duration {
	return 3 * s.metricsEvery
}

func (s *Server) handleClusterMetrics(w http.ResponseWriter, r *http.Request) {
	if s.bus == nil {
		writeError(w, http.StatusNotFound, "not running in cluster mode (no -node-id)")
		return
	}
	now := time.Now()
	resp := clusterMetricsResponse{
		Node:  s.cfg.NodeID,
		Fleet: map[string]float64{},
		Nodes: []clusterMetricsNode{},
	}
	for _, nm := range s.bus.NodeMetrics(s.metricsStaleAfter()) {
		row := clusterMetricsNode{
			Node:     nm.Node,
			At:       nm.At,
			AgeMilli: now.Sub(nm.At).Milliseconds(),
			Stale:    nm.Stale,
			Metrics:  nm.Metrics,
		}
		resp.Nodes = append(resp.Nodes, row)
		if nm.Stale {
			continue
		}
		for name, v := range nm.Metrics {
			resp.Fleet[name] += v
		}
	}
	writeJSON(w, http.StatusOK, resp)
}

// publishMetricsLoop is the federation publisher: every metricsEvery it
// snapshots the local registry and appends it to the shared bus, where
// every node's fold keeps the latest snapshot per node. Publish
// failures (partition, kill) are silent — the peer-visible snapshot
// just ages into staleness, which is the signal /v1/cluster/metrics
// reports.
func (s *Server) publishMetricsLoop() {
	defer close(s.metricsDone)
	t := time.NewTicker(s.metricsEvery)
	defer t.Stop()
	for {
		select {
		case <-s.metricsStop:
			return
		case <-t.C:
			_ = s.bus.PublishMetrics(s.cfg.NodeID, s.reg.Values())
		}
	}
}
