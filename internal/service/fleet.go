package service

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"time"

	"github.com/trap-repro/trap/internal/admission"
	"github.com/trap-repro/trap/internal/cluster"
	"github.com/trap-repro/trap/internal/joblog"
)

// This file wires one Server into a multi-node fleet (Config.NodeID):
// job ownership moves from the local worker pool's implicit "I run what
// I queued" to leases with fencing tokens over the shared job log (see
// internal/cluster). Every node folds the same record stream, so every
// node serves the same job table and the same SSE streams — a client
// can submit, poll, stream and cancel against any node.
//
// In cluster mode the fold is the only writer of hub events: the owner
// appends state/progress records under its lease and publishes nothing
// directly, so every node's per-job event Seqs are identical and a
// Last-Event-ID resume works across a takeover onto a different node.

// Cluster-mode job-log record types, alongside recSubmit/recState/
// recDrop. Progress records carry completed-epoch counts so SSE epoch
// events replicate fleet-wide; cancel records route a cancel request to
// whichever node owns the job.
const (
	recProgress = "progress"
	recCancel   = "cancel"
)

// progressData is the payload of a recProgress record (1-based epochs
// completed, matching JobEvent.Epoch). Points carries the epoch's RL
// telemetry values (rl_loss, rl_mean_reward, ...) so every node's fold
// can serve the job's training curves and stream telemetry SSE events
// with identical Seqs fleet-wide.
type progressData struct {
	Epoch  int                `json:"epoch"`
	Points map[string]float64 `json:"points,omitempty"`
}

// ClassifyJobRecord maps the service's job records onto the cluster
// Bus's job table. It is exported so fleet builders (cmd/trapload,
// chaos drills) can open a shared Bus with the service's semantics.
func ClassifyJobRecord(rec joblog.Record) cluster.Class {
	switch rec.Type {
	case recSubmit, recState:
		var j Job
		if json.Unmarshal(rec.Data, &j) != nil || j.ID == "" {
			return cluster.ClassOther
		}
		if j.Status.terminal() {
			return cluster.ClassJobTerminal
		}
		return cluster.ClassJobOpen
	case recCancel:
		return cluster.ClassJobCancel
	case recDrop:
		return cluster.ClassJobDrop
	}
	return cluster.ClassOther
}

// NewFleetBus opens a shared cluster bus over dir with the service's
// record classifier — the entry point for building an in-process fleet
// (N servers with Config.Bus pointing at one bus).
func NewFleetBus(dir string, segmentBytes int64) (*cluster.Bus, error) {
	return cluster.Open(dir, cluster.Options{
		SegmentBytes: segmentBytes,
		Classify:     ClassifyJobRecord,
	})
}

// setupCluster joins the server to the fleet: it opens (or adopts) the
// shared bus, attaches the fold, and starts the lease coordinator.
// Called from NewServer instead of openJobLog when NodeID is set.
func (s *Server) setupCluster() error {
	bus := s.cfg.Bus
	if bus == nil {
		if s.cfg.JobLogDir == "" {
			return errors.New("service: cluster mode (NodeID) requires JobLogDir or Bus")
		}
		b, err := cluster.Open(s.cfg.JobLogDir, cluster.Options{
			SegmentBytes: s.cfg.JobLogSegmentBytes,
			Classify:     ClassifyJobRecord,
			Injector:     s.cfg.Injector,
		})
		if err != nil {
			return fmt.Errorf("service: cluster bus: %w", err)
		}
		bus = b
		s.ownBus = true
	}
	s.bus = bus
	s.coord = &cluster.Coordinator{
		Node:   s.cfg.NodeID,
		Bus:    bus,
		TTL:    s.cfg.LeaseTTL,
		Beat:   s.cfg.HeartbeatInterval,
		Inject: s.cfg.Injector,
		Tracer: s.tr,
		CanClaim: func() bool {
			return !s.draining.Load() && s.pool.queued() < s.cfg.QueueDepth
		},
		OnAcquire: s.acquireJob,
		OnFence: func(job string, epoch uint64) {
			s.log.Warn(context.Background(),
				"trapd: lease lost to takeover, local run fenced", "job", job, "newEpoch", epoch)
		},
	}
	// Attach folds the compacted history synchronously on this goroutine
	// (restored open jobs are claimed and re-enqueued here, the cluster
	// analogue of openJobLog's replay), then pumps live records.
	sub, err := bus.Attach(s.cfg.NodeID, s.foldRecord)
	if err != nil {
		if s.ownBus {
			_ = bus.Close()
		}
		return fmt.Errorf("service: cluster attach: %w", err)
	}
	s.sub = sub
	s.registerClusterMetrics()
	// Metric federation: publish this node's registry snapshot on a
	// ticker; peers serve the merged fleet view from their folds.
	s.metricsEvery = s.cfg.MetricsInterval
	s.metricsStop = make(chan struct{})
	s.metricsDone = make(chan struct{})
	go s.publishMetricsLoop()
	s.coord.Start()
	s.log.Info(context.Background(), "trapd: joined fleet",
		"node", s.cfg.NodeID, "leaseTTL", s.coord.TTL, "heartbeat", s.coord.Beat)
	return nil
}

// foldRecord is the node's single fold thread: it applies one shared-log
// record to the local job table and event hubs. Every node folds the
// identical stream in the identical order, so the local stores converge
// and hub event Seqs match across the fleet.
func (s *Server) foldRecord(rec joblog.Record) {
	switch rec.Type {
	case cluster.RecClaim:
		var cd cluster.ClaimData
		if json.Unmarshal(rec.Data, &cd) != nil {
			return
		}
		s.jobs.update(rec.JobID, func(j *Job) {
			if cd.Epoch >= j.Epoch {
				j.Node = cd.Node
				j.Epoch = cd.Epoch
			}
		})
		// The fence trigger: a foreign claim at a higher epoch on a job
		// this node is running cancels the local run.
		s.coord.ObserveClaim(rec.JobID, cd)
	case cluster.RecRelease:
		var rd cluster.ReleaseData
		if json.Unmarshal(rec.Data, &rd) != nil {
			return
		}
		s.jobs.update(rec.JobID, func(j *Job) {
			if j.Node == rd.Node && j.Epoch == rd.Epoch {
				j.Node = ""
			}
		})
		s.coord.TryClaim(rec.JobID)
	case recSubmit, recState:
		var j Job
		if json.Unmarshal(rec.Data, &j) != nil || j.ID == "" {
			return
		}
		s.foldJobState(rec, j)
	case recProgress:
		var pd progressData
		if json.Unmarshal(rec.Data, &pd) != nil {
			return
		}
		// Epoch high-water dedup: after a takeover the new owner re-runs
		// epochs since the last checkpoint, and their progress records
		// must not duplicate epoch events the stream already carried.
		if s.jobs.advanceEpoch(rec.JobID, pd.Epoch) {
			s.events.publish(rec.JobID, JobEvent{Type: evEpoch, Epoch: pd.Epoch})
			if len(pd.Points) > 0 {
				// Fold the epoch's telemetry into the local scope so
				// GET /v1/jobs/{id}/telemetry works on every node. On the
				// owner these re-appends hit the monotonic step gate of its
				// own (richer) series and are dropped.
				sc := s.tscopes.getOrCreate(rec.JobID)
				for name, v := range pd.Points {
					sc.Series(name).Append(int64(pd.Epoch), v)
				}
				s.events.publish(rec.JobID,
					JobEvent{Type: evTelemetry, Epoch: pd.Epoch, Points: pd.Points})
			}
		}
	case recCancel:
		s.foldCancel(rec.JobID)
	case recDrop:
		s.jobs.remove(rec.JobID)
		s.events.drop(rec.JobID)
		s.tscopes.drop(rec.JobID)
	}
}

// foldJobState applies a submit/state snapshot. The local store adopts
// every snapshot except the ones this node itself published (its own
// memory is ahead of the log between append and delivery); hub events
// are published for all of them, own records included, to keep Seqs
// identical fleet-wide.
func (s *Server) foldJobState(rec joblog.Record, j Job) {
	if j.Node != s.cfg.NodeID {
		if _, ok := s.jobs.get(j.ID); ok {
			s.jobs.update(j.ID, func(cur *Job) { *cur = j })
		} else {
			s.jobs.restore(j)
		}
	}
	hub := s.events.create(j.ID)
	hub.publish(JobEvent{Type: evState, Status: j.Status, Error: j.Error})
	if j.Status.terminal() {
		if j.Status == JobDone && j.Result != nil {
			hub.publish(JobEvent{Type: evResult, Result: j.Result})
		}
		hub.closeHub()
		return
	}
	// Worker-pull placement: every node races to claim a fresh
	// submission; the bus linearizes the race and one node wins.
	if rec.Type == recSubmit {
		s.coord.TryClaim(j.ID)
	}
}

// foldCancel handles a cancel record. Only the owning node acts: a
// queued job is finalized as canceled, a running one has its context
// canceled (the terminal state is then published under the lease).
func (s *Server) foldCancel(id string) {
	j, ok := s.jobs.get(id)
	if !ok || j.Status.terminal() {
		return
	}
	if _, owned := s.coord.Owned(id); !owned {
		return
	}
	canceledNow := false
	now := time.Now()
	s.jobs.update(id, func(j *Job) {
		if j.Status == JobPending {
			j.Status = JobCanceled
			j.Error = "canceled before start"
			j.Finished = &now
			canceledNow = true
		}
	})
	if canceledNow {
		s.mJobsCanceled.Inc()
		s.publishState(id)
		s.coord.RunEnded(id)
	} else if cancel := s.jobs.takeCancel(id); cancel != nil {
		cancel()
	}
}

// acquireJob is the coordinator's OnAcquire hook: a lease was just won
// (fresh claim or takeover) and the job must be placed on the local
// queue. Returning false releases the lease for another node.
func (s *Server) acquireJob(id string, epoch uint64, takeover bool) bool {
	j, ok := s.jobs.get(id)
	if !ok {
		// Reconcile can win a claim before this node's fold has applied
		// the submit record; release and let a later pass retry.
		return false
	}
	if j.Status.terminal() {
		return false
	}
	if s.bus.CancelRequested(id) {
		// A cancel arrived while the job was unowned (or its owner died):
		// finalize it instead of running it.
		now := time.Now()
		s.jobs.update(id, func(j *Job) {
			j.Status = JobCanceled
			j.Error = "canceled"
			j.Finished = &now
			j.Node = s.cfg.NodeID
			j.Epoch = epoch
		})
		s.mJobsCanceled.Inc()
		s.publishState(id)
		s.coord.RunEnded(id)
		return true
	}
	s.jobs.update(id, func(j *Job) {
		j.Node = s.cfg.NodeID
		j.Epoch = epoch
		if j.Status != JobPending {
			// Takeover of a job that was running on the dead node:
			// re-enqueue it; the spooled checkpoint makes the re-run
			// resume mid-training, bit-identical to an uninterrupted one.
			j.Status = JobPending
			j.Started, j.Finished = nil, nil
			j.Error, j.Stack = "", ""
			j.Result = nil
		}
		if takeover {
			j.Restored = true
		}
	})
	if err := s.pool.submit(id, j.priority()); err != nil {
		return false
	}
	if takeover {
		s.mJobsRestored.Inc()
		s.publishState(id)
		s.log.Info(context.Background(), "trapd: took over job from failed node",
			"job", id, "epoch", epoch)
	}
	return true
}

// handleAssessCluster is the submit-anywhere path: the job gets a
// fleet-unique ID and its submission replicates through the shared log;
// whichever node's claim wins the worker-pull race runs it. The local
// insert happens before the append so the job is immediately pollable
// on this node; the fold (and every other node's fold) then converges
// on the same record.
func (s *Server) handleAssessCluster(w http.ResponseWriter, req assessRequest, tenant string, pri admission.Priority) {
	// Fleet backlog bound: total open jobs against aggregate queue
	// capacity of the attached nodes.
	if open := s.bus.OpenJobs(); open >= s.cfg.QueueDepth*max(1, s.bus.AttachedCount()) {
		s.mShedCapacity.Inc()
		w.Header().Set("Retry-After", retrySeconds(s.adm.CapacityRetryAfter(open, time.Now())))
		writeError(w, http.StatusServiceUnavailable, "fleet backlog full (%d open jobs)", open)
		return
	}
	id := s.bus.NextJobID()
	job := Job{
		ID:         id,
		Status:     JobPending,
		Created:    time.Now(),
		Dataset:    req.Dataset,
		Advisor:    req.Advisor,
		Method:     req.Method,
		Constraint: req.Constraint,
		Tenant:     tenant,
		Priority:   pri.String(),
	}
	s.events.create(id)
	s.jobs.restore(job)
	if _, err := s.bus.Append(s.cfg.NodeID, recSubmit, id, job); err != nil {
		s.jobs.remove(id)
		s.events.drop(id)
		if errors.Is(err, joblog.ErrDegraded) && s.draining.CompareAndSwap(false, true) {
			s.log.Error(context.Background(),
				"trapd: job log degraded, node entering read-only drain", "err", err)
		}
		s.mShedCapacity.Inc()
		writeError(w, http.StatusServiceUnavailable, "cannot persist submission: %v", err)
		return
	}
	s.mJobsSub.Inc()
	writeJSON(w, http.StatusAccepted, job)
}

// KillNode tears this node down the way SIGKILL would, for chaos
// drills: its bus subscription dies mid-stream with queued records
// undelivered, every later cluster operation from it fails, and its
// in-flight training is cancelled (the in-process stand-in for the
// goroutines vanishing). Its leases are left to expire — which is
// exactly the signal the survivors' failure detectors watch for.
func (s *Server) KillNode() {
	if s.bus == nil {
		return
	}
	s.bus.Kill(s.cfg.NodeID)
	s.coord.Stop()
	s.coord.CancelAll()
}

// PartitionNode cuts this node off from the shared log (appends fail,
// record delivery pauses) while it keeps running — the network-partition
// / long-GC-pause drill. HealNode reconnects it, at which point any
// lease it lost in the meantime fences its stale appends.
func (s *Server) PartitionNode() {
	if s.bus != nil {
		s.bus.Partition(s.cfg.NodeID)
	}
}

// HealNode reverses PartitionNode.
func (s *Server) HealNode() {
	if s.bus != nil {
		s.bus.Heal(s.cfg.NodeID)
	}
}

// NodeID returns the fleet node ID ("" in single-node mode).
func (s *Server) NodeID() string { return s.cfg.NodeID }

// ClusterStats is one node's view of the fleet counters (drills,
// cmd/trapload SLO accounting).
type ClusterStats struct {
	Node       string           `json:"node"`
	Claims     int64            `json:"claims"`
	Takeovers  int64            `json:"takeovers"`
	FencedRuns int64            `json:"fencedRuns"`
	BeatErrors int64            `json:"beatErrors"`
	Leases     int              `json:"leases"`
	Bus        cluster.BusStats `json:"bus"`
}

// ClusterStats snapshots the node's cluster counters (zero when not in
// cluster mode).
func (s *Server) ClusterStats() ClusterStats {
	if s.coord == nil {
		return ClusterStats{}
	}
	return ClusterStats{
		Node:       s.cfg.NodeID,
		Claims:     s.coord.Claims(),
		Takeovers:  s.coord.Takeovers(),
		FencedRuns: s.coord.FencedRuns(),
		BeatErrors: s.coord.BeatErrors(),
		Leases:     s.coord.Leases(),
		Bus:        s.bus.Stats(),
	}
}

// GET /v1/nodes

// nodesResponse is the /v1/nodes envelope: the serving node plus the
// whole fleet registry as folded from heartbeat records.
type nodesResponse struct {
	Node  string             `json:"node"`
	Nodes []cluster.NodeInfo `json:"nodes"`
}

func (s *Server) handleNodes(w http.ResponseWriter, r *http.Request) {
	if s.bus == nil {
		writeError(w, http.StatusNotFound, "not running in cluster mode (no -node-id)")
		return
	}
	writeJSON(w, http.StatusOK, nodesResponse{Node: s.cfg.NodeID, Nodes: s.bus.Nodes()})
}

// registerJoblogMetrics exposes the durable log's replay/durability
// counters as scrape-time gauges (works for both the single-node jlog
// and the cluster bus's shared log).
func (s *Server) registerJoblogMetrics(lg *joblog.Log) {
	for name, fn := range map[string]func(joblog.Stats) float64{
		"trapd_joblog_records_replayed":     func(st joblog.Stats) float64 { return float64(st.Replayed) },
		"trapd_joblog_appends_total":        func(st joblog.Stats) float64 { return float64(st.Appends) },
		"trapd_joblog_corrupt_frames_total": func(st joblog.Stats) float64 { return float64(st.CorruptFrames) },
		"trapd_joblog_torn_tails_total":     func(st joblog.Stats) float64 { return float64(st.TornTails) },
		"trapd_joblog_truncated_bytes":      func(st joblog.Stats) float64 { return float64(st.TruncatedBytes) },
		"trapd_joblog_compactions_total":    func(st joblog.Stats) float64 { return float64(st.Compactions) },
		"trapd_joblog_segments":             func(st joblog.Stats) float64 { return float64(st.Segments) },
		"trapd_joblog_active_bytes":         func(st joblog.Stats) float64 { return float64(st.ActiveBytes) },
		"trapd_joblog_degraded": func(st joblog.Stats) float64 {
			if st.Degraded {
				return 1
			}
			return 0
		},
	} {
		fn := fn
		s.reg.GaugeFunc(name, func() float64 { return fn(lg.Stats()) })
	}
	for name, help := range map[string]string{
		"trapd_joblog_records_replayed":     "Job-log records recovered by replay at startup.",
		"trapd_joblog_corrupt_frames_total": "Job-log frames dropped during replay (CRC mismatch or torn tail).",
		"trapd_joblog_torn_tails_total":     "Torn-tail truncation events recovered by replay.",
		"trapd_joblog_truncated_bytes":      "Tail bytes cut from the last segment to recover a torn write.",
		"trapd_joblog_compactions_total":    "Successful job-log compactions this process lifetime.",
		"trapd_joblog_degraded":             "1 when an append failed and the job log is read-only (node drains).",
	} {
		s.reg.Describe(name, help)
	}
}

// registerClusterMetrics exposes the fleet counters this node sees.
func (s *Server) registerClusterMetrics() {
	s.registerJoblogMetrics(s.bus.Log())
	s.reg.GaugeFunc("trapd_cluster_fence_rejects_total", func() float64 {
		return float64(s.bus.Stats().FenceRejects)
	})
	s.reg.GaugeFunc("trapd_cluster_takeovers_total", func() float64 {
		return float64(s.bus.Stats().Takeovers)
	})
	s.reg.GaugeFunc("trapd_cluster_claims_total", func() float64 {
		return float64(s.bus.Stats().Claims)
	})
	s.reg.GaugeFunc("trapd_cluster_nodes", func() float64 {
		return float64(len(s.bus.Nodes()))
	})
	for _, state := range []string{cluster.StateAlive, cluster.StateStale, cluster.StateDown} {
		state := state
		s.reg.GaugeFunc(fmt.Sprintf("trapd_cluster_nodes{state=%q}", state), func() float64 {
			n := 0
			for _, info := range s.bus.Nodes() {
				if info.State == state {
					n++
				}
			}
			return float64(n)
		})
	}
	s.reg.GaugeFunc("trapd_cluster_leases_held", func() float64 {
		return float64(s.coord.Leases())
	})
	s.reg.GaugeFunc("trapd_cluster_fenced_runs_total", func() float64 {
		return float64(s.coord.FencedRuns())
	})
	s.reg.GaugeFunc("trapd_cluster_heartbeat_age_seconds", func() float64 {
		return s.coord.HeartbeatAge().Seconds()
	})
	for name, help := range map[string]string{
		"trapd_cluster_fence_rejects_total": "Owned appends rejected because the lease epoch was stale — stale results a paused or partitioned node tried to publish.",
		"trapd_cluster_takeovers_total":     "Claims that seized an expired lease from another node.",
		"trapd_cluster_leases_held":         "Open-job leases this node currently holds.",
		"trapd_cluster_fenced_runs_total":   "Local runs cancelled because their lease moved to another node.",
	} {
		s.reg.Describe(name, help)
	}
}
