package service

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"github.com/trap-repro/trap/internal/buildinfo"
)

func TestVersionEndpoint(t *testing.T) {
	h := testServer(t).Handler()
	code, body := getPath(t, h, "/version")
	if code != http.StatusOK {
		t.Fatalf("version: %d %s", code, body)
	}
	var resp versionResponse
	if err := json.Unmarshal(body, &resp); err != nil {
		t.Fatal(err)
	}
	if resp.GoVersion == "" || resp.GitRev == "" {
		t.Fatalf("version payload missing build info: %+v", resp)
	}
	if resp.Uptime == "" {
		t.Fatalf("version payload missing uptime: %+v", resp)
	}

	// The same build info is exported as a constant-1 gauge so dashboards
	// can join metrics to the running revision.
	bi := buildinfo.Get()
	gauge := fmt.Sprintf("trap_build_info{git_rev=%q,go_version=%q}", bi.GitRev, bi.GoVersion)
	_, mbody := getPath(t, h, "/metrics")
	if v, ok := metricValue(mbody, gauge); !ok || v != 1 {
		t.Errorf("metrics missing %s = 1 (ok=%v v=%g)", gauge, ok, v)
	}
}

// TestJobTelemetryEndToEnd runs a TRAP assessment (pretraining, RL
// training and the attack loop) and checks the whole telemetry surface: the per-job
// series endpoint in JSON and CSV, and the SSE stream's "telemetry"
// events carrying per-epoch training points with monotonic epochs.
func TestJobTelemetryEndToEnd(t *testing.T) {
	s := newFaultServer(t, func(c *Config) {
		c.Params.RLEpochs = 2
	})
	defer s.Close()
	h := s.Handler()

	j := submitJob(t, h, "Drop", "TRAP")
	done := waitForJob(t, h, j.ID, JobDone, 2*time.Minute)
	if done.Result == nil {
		t.Fatal("done job has no result")
	}

	// JSON: training and attack series are all present with points.
	code, body := getPath(t, h, "/v1/jobs/"+j.ID+"/telemetry")
	if code != http.StatusOK {
		t.Fatalf("telemetry: %d %s", code, body)
	}
	var resp telemetryResponse
	if err := json.Unmarshal(body, &resp); err != nil {
		t.Fatal(err)
	}
	if resp.Job != j.ID {
		t.Errorf("telemetry job = %q, want %q", resp.Job, j.ID)
	}
	series := map[string][]int64{}
	for _, sd := range resp.Series {
		if len(sd.Points) == 0 {
			t.Errorf("series %s has no points", sd.Name)
		}
		for _, p := range sd.Points {
			series[sd.Name] = append(series[sd.Name], p.Step)
		}
	}
	for _, name := range []string{
		"rl_loss", "rl_mean_reward", "rl_reward_var", "rl_grad_norm",
		"rl_entropy", "rl_rollout_ok_ratio", "pretrain_loss",
		"attack_cost_delta", "attack_best_iudr", "attack_accepted", "attack_rejected",
	} {
		steps, ok := series[name]
		if !ok {
			t.Errorf("telemetry missing series %s (have %v)", name, keysOf(series))
			continue
		}
		for i := 1; i < len(steps); i++ {
			if steps[i] <= steps[i-1] {
				t.Errorf("series %s steps not increasing: %v", name, steps)
				break
			}
		}
	}
	if got := len(series["rl_loss"]); got != 2 {
		t.Errorf("rl_loss points = %d, want 2 (one per epoch)", got)
	}

	// CSV rendering of the same data.
	code, body = getPath(t, h, "/v1/jobs/"+j.ID+"/telemetry?format=csv")
	if code != http.StatusOK {
		t.Fatalf("telemetry csv: %d %s", code, body)
	}
	lines := strings.Split(strings.TrimSpace(string(body)), "\n")
	if lines[0] != "series,step,value" {
		t.Fatalf("csv header = %q", lines[0])
	}
	csvSeries := map[string]bool{}
	for _, line := range lines[1:] {
		parts := strings.SplitN(line, ",", 3)
		if len(parts) != 3 {
			t.Fatalf("bad csv row %q", line)
		}
		csvSeries[parts[0]] = true
	}
	if !csvSeries["rl_loss"] || !csvSeries["attack_accepted"] {
		t.Errorf("csv missing series: %v", csvSeries)
	}

	// SSE backlog: telemetry events ride the job stream, one per epoch,
	// monotonically increasing, each carrying the rl_* points.
	code, body = getPath(t, h, "/v1/jobs/"+j.ID+"/events")
	if code != http.StatusOK {
		t.Fatalf("events: %d", code)
	}
	frames := readSSE(t, bytes.NewReader(body), 1<<20)
	lastEpoch := 0
	teleEvents := 0
	for _, f := range frames {
		if f.Event != evTelemetry {
			continue
		}
		teleEvents++
		if f.Data.Epoch <= lastEpoch {
			t.Errorf("telemetry epochs not monotonic: %d after %d", f.Data.Epoch, lastEpoch)
		}
		lastEpoch = f.Data.Epoch
		if f.Data.Points["rl_loss"] == 0 && f.Data.Points["rl_mean_reward"] == 0 {
			t.Errorf("telemetry event epoch %d has empty points: %+v", f.Data.Epoch, f.Data.Points)
		}
	}
	if teleEvents != 2 {
		t.Errorf("telemetry SSE events = %d, want 2 (one per epoch)", teleEvents)
	}

	// Unknown jobs are 404s; a cluster-less node 404s the federation view.
	if code, _ := getPath(t, h, "/v1/jobs/job-999999/telemetry"); code != http.StatusNotFound {
		t.Errorf("unknown job telemetry: %d, want 404", code)
	}
	if code, _ := getPath(t, h, "/v1/cluster/metrics"); code != http.StatusNotFound {
		t.Errorf("cluster metrics without cluster: %d, want 404", code)
	}
}

func keysOf(m map[string][]int64) []string {
	var out []string
	for k := range m {
		out = append(out, k)
	}
	return out
}

// TestClusterMetricsFederation runs a two-node fleet with a fast
// metrics-publish interval and checks the merged view: both nodes
// reporting, the fleet aggregate summing across fresh nodes, and a
// killed node's row turning stale.
func TestClusterMetricsFederation(t *testing.T) {
	base := t.TempDir()
	bus, err := NewFleetBus(filepath.Join(base, "joblog"), 0)
	if err != nil {
		t.Fatal(err)
	}
	fast := func(c *Config) { c.MetricsInterval = 20 * time.Millisecond }
	srvs := map[string]*Server{
		"a": newFleetNode(t, bus, "a", filepath.Join(base, "spool"), 0, fast),
		"b": newFleetNode(t, bus, "b", filepath.Join(base, "spool"), 0, fast),
	}
	defer func() {
		for _, s := range srvs {
			s.Close()
		}
		bus.Close()
	}()

	h := srvs["a"].Handler()
	var resp clusterMetricsResponse
	waitUntil(t, 10*time.Second, "both nodes publishing metrics", func() bool {
		code, body := getPath(t, h, "/v1/cluster/metrics")
		if code != http.StatusOK {
			return false
		}
		if err := json.Unmarshal(body, &resp); err != nil {
			t.Fatal(err)
		}
		fresh := 0
		for _, n := range resp.Nodes {
			if !n.Stale && len(n.Metrics) > 0 {
				fresh++
			}
		}
		return fresh == 2
	})
	if resp.Node != "a" {
		t.Errorf("serving node = %q, want a", resp.Node)
	}
	// The build-info gauge is 1 per node, so the fleet sum over two
	// fresh nodes running the same binary is exactly 2.
	bi := buildinfo.Get()
	gauge := fmt.Sprintf("trap_build_info{git_rev=%q,go_version=%q}", bi.GitRev, bi.GoVersion)
	if got := resp.Fleet[gauge]; got != 2 {
		t.Errorf("fleet %s = %g, want 2", gauge, got)
	}

	// Kill node b: banned nodes are stale immediately and drop out of
	// the fleet aggregate.
	srvs["b"].KillNode()
	waitUntil(t, 10*time.Second, "killed node marked stale", func() bool {
		code, body := getPath(t, h, "/v1/cluster/metrics")
		if code != http.StatusOK {
			return false
		}
		if err := json.Unmarshal(body, &resp); err != nil {
			t.Fatal(err)
		}
		var staleB, freshA bool
		for _, n := range resp.Nodes {
			if n.Node == "b" && n.Stale {
				staleB = true
			}
			if n.Node == "a" && !n.Stale {
				freshA = true
			}
		}
		return staleB && freshA && resp.Fleet[gauge] == 1
	})

	// The per-state node gauges reflect the fleet view.
	_, mbody := getPath(t, h, "/metrics")
	if v, ok := metricValue(mbody, `trapd_cluster_nodes{state="down"}`); !ok || v < 1 {
		t.Errorf(`trapd_cluster_nodes{state="down"} = %g (ok=%v), want >= 1`, v, ok)
	}
	if v, ok := metricValue(mbody, `trapd_cluster_nodes{state="alive"}`); !ok || v < 1 {
		t.Errorf(`trapd_cluster_nodes{state="alive"} = %g (ok=%v), want >= 1`, v, ok)
	}
}

// TestProfilerCapturesSlowSpan enables continuous profiling with a tiny
// threshold, runs spans past it, and checks capture, download,
// retention pruning and file-name sanitization.
func TestProfilerCapturesSlowSpan(t *testing.T) {
	dir := t.TempDir()
	s := newFaultServer(t, func(c *Config) {
		c.ProfileDir = dir
		c.ProfileThreshold = 10 * time.Millisecond
		c.ProfileCPUWindow = 20 * time.Millisecond
		c.ProfileKeep = 2
	})
	defer s.Close()
	h := s.Handler()

	slowSpan := func() {
		_, sp := s.tr.Start(context.Background(), "test.slow")
		time.Sleep(25 * time.Millisecond)
		sp.End()
	}

	slowSpan()
	var resp profilesResponse
	waitUntil(t, 10*time.Second, "first profile capture", func() bool {
		code, body := getPath(t, h, "/v1/profiles")
		if code != http.StatusOK {
			t.Fatalf("profiles: %d %s", code, body)
		}
		if err := json.Unmarshal(body, &resp); err != nil {
			t.Fatal(err)
		}
		return len(resp.Captures) >= 1
	})
	c := resp.Captures[0]
	if c.Span != "test.slow" || c.DurMilli < 10 {
		t.Errorf("capture metadata: %+v", c)
	}
	if len(c.Files) == 0 {
		t.Fatalf("capture has no files: %+v", c)
	}
	var heap string
	for _, f := range c.Files {
		if strings.HasSuffix(f, ".heap.pb.gz") {
			heap = f
		}
	}
	if heap == "" {
		t.Fatalf("no heap profile in %v", c.Files)
	}
	code, body := getPath(t, h, "/v1/profiles/"+heap)
	if code != http.StatusOK || len(body) == 0 {
		t.Fatalf("profile download: %d (%d bytes)", code, len(body))
	}

	// Retention: drive more captures than ProfileKeep; the oldest is
	// pruned from the index and its files removed from disk.
	for i := 0; i < 3; i++ {
		waitUntil(t, 10*time.Second, "capture slot free", func() bool {
			return !s.prof.busy.Load()
		})
		slowSpan()
	}
	waitUntil(t, 10*time.Second, "retention pruning", func() bool {
		code, body := getPath(t, h, "/v1/profiles")
		if code != http.StatusOK {
			return false
		}
		if err := json.Unmarshal(body, &resp); err != nil {
			t.Fatal(err)
		}
		if len(resp.Captures) != 2 {
			return false
		}
		for _, kept := range resp.Captures {
			if kept.Name == c.Name {
				return false
			}
		}
		return true
	})
	// The pruned capture's files are gone: 404 on download.
	if code, _ := getPath(t, h, "/v1/profiles/"+heap); code != http.StatusNotFound {
		t.Errorf("pruned profile download: %d, want 404", code)
	}
	matches, _ := filepath.Glob(filepath.Join(dir, c.Name+".*"))
	if len(matches) != 0 {
		t.Errorf("pruned capture files still on disk: %v", matches)
	}

	// Path traversal and arbitrary names never reach the filesystem.
	for _, bad := range []string{"..%2f..%2fetc%2fpasswd", "cap-1.heap.pb.gz%00", "nope.txt"} {
		if code, _ := getPath(t, h, "/v1/profiles/"+bad); code != http.StatusNotFound && code != http.StatusBadRequest {
			t.Errorf("profile %q: %d, want 404/400", bad, code)
		}
	}

	// Profiling disabled: both endpoints 404.
	plain := testServer(t)
	if code, _ := getPath(t, plain.Handler(), "/v1/profiles"); code != http.StatusNotFound {
		t.Errorf("profiles without -profile-dir: %d, want 404", code)
	}
}
