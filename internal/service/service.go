// Package service implements trapd, the long-running TRAP assessment
// daemon: an HTTP JSON API over a registry of pre-built per-dataset
// assessment suites, a bounded worker pool for async assessment jobs,
// and a /metrics endpoint exposing the internal/obs registry.
//
// Endpoints:
//
//	POST /v1/parse    — parse SPAJ SQL, return the canonical form
//	POST /v1/explain  — plan a query under hypothetical indexes
//	POST /v1/advise   — recommend an index configuration for a workload
//	POST /v1/assess   — start an async robustness assessment (job ID)
//	GET  /v1/jobs/{id} — poll job status and result
//	GET  /metrics     — text metric exposition
//	GET  /healthz     — liveness and suite inventory
//
// The suites (engine, workloads, vocabulary, learned utility model) are
// built once at startup and shared by every request; the engine and
// suite concurrency contracts (see internal/engine and internal/assess)
// make that safe.
package service

import (
	"context"
	"errors"
	"fmt"
	"log"
	"net"
	"net/http"
	"runtime"
	"strings"
	"time"

	"github.com/trap-repro/trap/internal/assess"
	"github.com/trap-repro/trap/internal/bench"
	"github.com/trap-repro/trap/internal/core"
	"github.com/trap-repro/trap/internal/obs"
	"github.com/trap-repro/trap/internal/schema"
)

// DatasetNames lists the datasets trapd can serve.
var DatasetNames = []string{"tpch", "tpcds", "transaction"}

// SchemaByName builds the named benchmark schema.
func SchemaByName(name string, scaleDown int64) (*schema.Schema, error) {
	switch name {
	case "tpch":
		return bench.TPCH(scaleDown), nil
	case "tpcds":
		return bench.TPCDS(scaleDown), nil
	case "transaction":
		return bench.TRANSACTION(scaleDown), nil
	}
	return nil, fmt.Errorf("unknown dataset %q", name)
}

// Config parameterizes a Server.
type Config struct {
	// Addr is the listen address (":8080" style). Only used by Run.
	Addr string
	// Datasets to pre-build suites for (default: tpch).
	Datasets []string
	// Params scales the suites (default assess.QuickParams()).
	Params assess.Params
	// Seed makes suite construction deterministic (default 42).
	Seed int64
	// Workers sizes the assessment worker pool (default runtime.NumCPU()).
	Workers int
	// QueueDepth bounds the pending-job queue (default 4×Workers).
	QueueDepth int
	// RequestTimeout bounds synchronous endpoints (default 30s).
	RequestTimeout time.Duration
	// JobTimeout bounds one assessment job (default 15m).
	JobTimeout time.Duration
	// MaxBodyBytes bounds request bodies (default 1MiB).
	MaxBodyBytes int64
	// Registry receives the service metrics (default obs.Default()).
	Registry *obs.Registry
	// Logf sinks server logs (default log.Printf).
	Logf func(format string, args ...any)
}

func (c *Config) fill() {
	if len(c.Datasets) == 0 {
		c.Datasets = []string{"tpch"}
	}
	if c.Params == (assess.Params{}) {
		c.Params = assess.QuickParams()
	}
	if c.Seed == 0 {
		c.Seed = 42
	}
	if c.Workers <= 0 {
		c.Workers = runtime.NumCPU()
	}
	if c.QueueDepth <= 0 {
		c.QueueDepth = 4 * c.Workers
	}
	if c.RequestTimeout <= 0 {
		c.RequestTimeout = 30 * time.Second
	}
	if c.JobTimeout <= 0 {
		c.JobTimeout = 15 * time.Minute
	}
	if c.MaxBodyBytes <= 0 {
		c.MaxBodyBytes = 1 << 20
	}
	if c.Registry == nil {
		c.Registry = obs.Default()
	}
	if c.Logf == nil {
		c.Logf = log.Printf
	}
}

// Server is the trapd HTTP service.
type Server struct {
	cfg    Config
	reg    *obs.Registry
	suites map[string]*assess.Suite
	jobs   *jobStore
	pool   *workerPool
	mux    *http.ServeMux
	start  time.Time

	mRequests   *obs.Counter
	mReqSecs    *obs.Histogram
	mJobsSub    *obs.Counter
	mJobsDone   *obs.Counter
	mJobsFailed *obs.Counter
	mJobsRun    *obs.Gauge
	mJobSecs    *obs.Histogram
}

// NewServer builds the suites for every configured dataset (this is the
// slow part: workload generation and utility-model training) and wires
// the handlers and worker pool. The server is ready to serve as soon as
// NewServer returns.
func NewServer(cfg Config) (*Server, error) {
	cfg.fill()
	s := &Server{
		cfg:    cfg,
		reg:    cfg.Registry,
		suites: map[string]*assess.Suite{},
		jobs:   newJobStore(),
		start:  time.Now(),

		mRequests:   cfg.Registry.Counter("trapd_http_requests_total"),
		mReqSecs:    cfg.Registry.Histogram("trapd_http_request_seconds"),
		mJobsSub:    cfg.Registry.Counter("trapd_jobs_submitted_total"),
		mJobsDone:   cfg.Registry.Counter("trapd_jobs_done_total"),
		mJobsFailed: cfg.Registry.Counter("trapd_jobs_failed_total"),
		mJobsRun:    cfg.Registry.Gauge("trapd_jobs_running"),
		mJobSecs:    cfg.Registry.Histogram("trapd_job_seconds"),
	}
	for _, name := range cfg.Datasets {
		sch, err := SchemaByName(name, cfg.Params.ScaleDown)
		if err != nil {
			return nil, fmt.Errorf("service: %w", err)
		}
		t0 := time.Now()
		suite, err := assess.NewSuite(name, sch, cfg.Params, cfg.Seed)
		if err != nil {
			return nil, fmt.Errorf("service: building %s suite: %w", name, err)
		}
		s.suites[name] = suite
		cfg.Logf("trapd: built %s suite in %v (%d train / %d test workloads)",
			name, time.Since(t0).Round(time.Millisecond), len(suite.Train), len(suite.Test))

		// Per-dataset plan-cache gauges, evaluated at scrape time.
		e := suite.E
		s.reg.GaugeFunc(fmt.Sprintf("engine_plan_cache_entries{dataset=%q}", name),
			func() float64 { return float64(e.CacheStats().Entries) })
		s.reg.GaugeFunc(fmt.Sprintf("engine_plan_cache_hit_ratio{dataset=%q}", name),
			func() float64 { return e.CacheStats().HitRatio() })
	}
	s.reg.GaugeFunc("trapd_jobs_pending", func() float64 {
		return float64(s.jobs.countByStatus()[JobPending])
	})
	s.pool = newWorkerPool(cfg.Workers, cfg.QueueDepth, s.runJob)
	s.mux = http.NewServeMux()
	s.routes()
	return s, nil
}

// Handler returns the service's HTTP handler (metrics middleware
// included) — used directly by tests and in-process embedding.
func (s *Server) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		s.mRequests.Inc()
		s.reg.Counter(routeCounterName(r)).Inc()
		defer obs.StartSpan(s.mReqSecs).End()
		r.Body = http.MaxBytesReader(w, r.Body, s.cfg.MaxBodyBytes)
		s.mux.ServeHTTP(w, r)
	})
}

// routeCounterName buckets request paths into low-cardinality metric
// names (job IDs are collapsed).
func routeCounterName(r *http.Request) string {
	path := r.URL.Path
	if strings.HasPrefix(path, "/v1/jobs/") {
		path = "/v1/jobs"
	}
	return fmt.Sprintf("trapd_http_requests_total{path=%q}", path)
}

// Suite returns the named dataset's suite (nil when not loaded).
func (s *Server) Suite(name string) *assess.Suite { return s.suites[name] }

// Datasets lists the loaded dataset names in config order.
func (s *Server) Datasets() []string {
	out := make([]string, 0, len(s.suites))
	for _, n := range s.cfg.Datasets {
		if _, ok := s.suites[n]; ok {
			out = append(out, n)
		}
	}
	return out
}

// Run serves on cfg.Addr until ctx is canceled, then shuts down
// gracefully: the listener closes, in-flight HTTP requests get
// shutdownGrace to finish, and the worker pool drains running jobs.
func (s *Server) Run(ctx context.Context) error {
	ln, err := net.Listen("tcp", s.cfg.Addr)
	if err != nil {
		return err
	}
	return s.serve(ctx, ln)
}

const shutdownGrace = 30 * time.Second

func (s *Server) serve(ctx context.Context, ln net.Listener) error {
	hs := &http.Server{Handler: s.Handler()}
	errc := make(chan error, 1)
	go func() { errc <- hs.Serve(ln) }()
	s.cfg.Logf("trapd: serving on %s (datasets: %s, %d workers)",
		ln.Addr(), strings.Join(s.Datasets(), ","), s.cfg.Workers)

	select {
	case err := <-errc:
		return err
	case <-ctx.Done():
	}
	s.cfg.Logf("trapd: shutting down, draining in-flight jobs")
	sctx, cancel := context.WithTimeout(context.Background(), shutdownGrace)
	defer cancel()
	err := hs.Shutdown(sctx)
	s.Drain(sctx)
	if errors.Is(err, context.DeadlineExceeded) {
		return fmt.Errorf("trapd: shutdown grace period expired")
	}
	return err
}

// Drain stops job intake, cancels queued-but-unstarted jobs, and waits
// (bounded by ctx) for running jobs to finish.
func (s *Server) Drain(ctx context.Context) {
	for _, id := range s.pool.shutdown(ctx) {
		s.jobs.update(id, func(j *Job) {
			if j.Status == JobPending {
				j.Status = JobCanceled
				j.Error = "server shut down before the job started"
			}
		})
	}
}

// runJob executes one assessment job on a worker goroutine.
func (s *Server) runJob(id string) {
	j, ok := s.jobs.get(id)
	if !ok {
		return
	}
	now := time.Now()
	s.jobs.update(id, func(j *Job) {
		j.Status = JobRunning
		j.Started = &now
	})
	s.mJobsRun.Add(1)
	sp := obs.StartSpan(s.mJobSecs)
	res, err := s.runAssessment(j)
	elapsed := sp.End()
	s.mJobsRun.Add(-1)

	fin := time.Now()
	s.jobs.update(id, func(j *Job) {
		j.Finished = &fin
		if err != nil {
			j.Status = JobFailed
			j.Error = err.Error()
			return
		}
		res.ElapsedMilli = elapsed.Milliseconds()
		j.Status = JobDone
		j.Result = res
	})
	if err != nil {
		s.mJobsFailed.Inc()
		s.cfg.Logf("trapd: %s failed after %v: %v", id, elapsed.Round(time.Millisecond), err)
	} else {
		s.mJobsDone.Inc()
		s.cfg.Logf("trapd: %s done in %v (meanIUDR=%.4f over %d workloads)",
			id, elapsed.Round(time.Millisecond), res.MeanIUDR, res.Workloads)
	}
}

// runAssessment trains the method against the advisor and measures IUDR
// over the suite's test workloads, bounded by the job timeout. The
// assessment pipeline is not context-aware, so a timed-out computation
// finishes on its goroutine and is discarded; the job fails promptly.
func (s *Server) runAssessment(j Job) (*JobResult, error) {
	suite := s.suites[j.Dataset]
	if suite == nil {
		return nil, fmt.Errorf("dataset %q not loaded", j.Dataset)
	}
	spec, err := assess.SpecByName(j.Advisor)
	if err != nil {
		return nil, err
	}
	pc, err := parseConstraint(j.Constraint)
	if err != nil {
		return nil, err
	}
	ctx, cancel := context.WithTimeout(context.Background(), s.cfg.JobTimeout)
	defer cancel()
	return runBounded(ctx, func() (*JobResult, error) {
		adv, err := suite.BuildAdvisor(spec)
		if err != nil {
			return nil, fmt.Errorf("building advisor: %w", err)
		}
		base := suite.BaselineAdvisor(spec)
		ac := suite.ConstraintFor(spec)
		m, err := suite.BuildMethod(j.Method, pc, adv, base, ac, assess.MethodConfig{})
		if err != nil {
			return nil, fmt.Errorf("building method: %w", err)
		}
		rep, err := suite.Measure(m, adv, base, ac)
		if err != nil {
			return nil, fmt.Errorf("measuring: %w", err)
		}
		res := &JobResult{MeanIUDR: rep.MeanIUDR, Workloads: rep.N, Pairs: len(rep.Pairs)}
		for _, p := range rep.Pairs {
			if p.NonSargable {
				res.NonSargable++
			}
		}
		return res, nil
	})
}

// parseConstraint maps the wire name to a perturbation constraint.
func parseConstraint(name string) (core.PerturbConstraint, error) {
	switch name {
	case "", "shared", "shared-table":
		return core.SharedTable, nil
	case "value", "value-only":
		return core.ValueOnly, nil
	case "column", "column-consistent":
		return core.ColumnConsistent, nil
	}
	return 0, fmt.Errorf("unknown perturbation constraint %q (want value, column or shared)", name)
}

// runBounded runs f on its own goroutine and returns its result, or
// ctx's error once the deadline passes (f keeps running and its result
// is dropped).
func runBounded[T any](ctx context.Context, f func() (T, error)) (T, error) {
	var zero T
	if err := ctx.Err(); err != nil {
		return zero, err
	}
	type res struct {
		v   T
		err error
	}
	ch := make(chan res, 1)
	go func() {
		v, err := f()
		ch <- res{v, err}
	}()
	select {
	case r := <-ch:
		return r.v, r.err
	case <-ctx.Done():
		return zero, ctx.Err()
	}
}
