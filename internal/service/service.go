// Package service implements trapd, the long-running TRAP assessment
// daemon: an HTTP JSON API over a registry of pre-built per-dataset
// assessment suites, a bounded worker pool for async assessment jobs,
// and a /metrics endpoint exposing the internal/obs registry.
//
// Endpoints:
//
//	POST /v1/parse    — parse SPAJ SQL, return the canonical form
//	POST /v1/explain  — plan a query under hypothetical indexes
//	POST /v1/advise   — recommend an index configuration for a workload
//	POST /v1/assess   — start an async robustness assessment (job ID)
//	GET  /v1/jobs     — list jobs (status/advisor/dataset filters, cursor pagination)
//	GET  /v1/jobs/{id} — poll job status and result
//	GET  /v1/jobs/{id}/events — stream job progress as Server-Sent Events
//	GET  /metrics     — text metric exposition
//	GET  /healthz     — liveness and suite inventory
//	GET  /readyz      — readiness (replay finished, queue not saturated)
//	GET  /debug/pprof/* — profiling endpoints (only with Config.EnablePprof)
//
// With Config.JobLogDir set, every job transition is appended to a
// durable, CRC-framed job log (internal/joblog). On startup the log is
// replayed: terminal jobs come back queryable, and jobs that were
// pending or running when the process died are re-enqueued and resume
// from their latest spooled checkpoint. Admission control
// (internal/admission) adds per-tenant quotas and honest Retry-After
// hints on load sheds.
//
// The suites (engine, workloads, vocabulary, learned utility model) are
// built once at startup and shared by every request; the engine and
// suite concurrency contracts (see internal/engine and internal/assess)
// make that safe.
package service

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"log/slog"
	"math/rand"
	"net"
	"net/http"
	"os"
	"runtime"
	"runtime/debug"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"github.com/trap-repro/trap/internal/admission"
	"github.com/trap-repro/trap/internal/assess"
	"github.com/trap-repro/trap/internal/bench"
	"github.com/trap-repro/trap/internal/buildinfo"
	"github.com/trap-repro/trap/internal/cluster"
	"github.com/trap-repro/trap/internal/core"
	"github.com/trap-repro/trap/internal/faultinject"
	"github.com/trap-repro/trap/internal/joblog"
	"github.com/trap-repro/trap/internal/obs"
	olog "github.com/trap-repro/trap/internal/obs/log"
	"github.com/trap-repro/trap/internal/schema"
	"github.com/trap-repro/trap/internal/telemetry"
	"github.com/trap-repro/trap/internal/trace"
)

// DatasetNames lists the datasets trapd can serve.
var DatasetNames = []string{"tpch", "tpcds", "transaction"}

// SchemaByName builds the named benchmark schema.
func SchemaByName(name string, scaleDown int64) (*schema.Schema, error) {
	switch name {
	case "tpch":
		return bench.TPCH(scaleDown), nil
	case "tpcds":
		return bench.TPCDS(scaleDown), nil
	case "transaction":
		return bench.TRANSACTION(scaleDown), nil
	}
	return nil, fmt.Errorf("unknown dataset %q", name)
}

// Config parameterizes a Server.
type Config struct {
	// Addr is the listen address (":8080" style). Only used by Run.
	Addr string
	// Datasets to pre-build suites for (default: tpch).
	Datasets []string
	// Params scales the suites (default assess.QuickParams()).
	Params assess.Params
	// Seed makes suite construction deterministic (default 42).
	Seed int64
	// Workers sizes the assessment worker pool (default runtime.NumCPU()).
	Workers int
	// CostWorkers sizes each suite engine's CostBatch fan-out pool
	// (default 0: GOMAXPROCS at call time; 1 forces sequential costing).
	CostWorkers int
	// TrainWorkers sizes the RL trajectory rollout pool of every
	// framework the suites build (default 0: GOMAXPROCS at call time;
	// 1 forces sequential rollouts). Trained parameters are bit-identical
	// for every value.
	TrainWorkers int
	// AssessWorkers sizes each suite's per-workload measurement pool
	// (default 0: GOMAXPROCS at call time; 1 forces sequential
	// measurement). Assessments are bit-identical for every value.
	AssessWorkers int
	// EnablePprof mounts net/http/pprof profiling endpoints under
	// /debug/pprof/ (off by default: profiles expose internals, so the
	// flag is an explicit opt-in).
	EnablePprof bool
	// QueueDepth bounds the pending-job queue (default 4×Workers).
	QueueDepth int
	// RequestTimeout bounds synchronous endpoints (default 30s).
	RequestTimeout time.Duration
	// JobTimeout bounds one assessment job (default 15m).
	JobTimeout time.Duration
	// MaxBodyBytes bounds request bodies (default 1MiB).
	MaxBodyBytes int64
	// Registry receives the service metrics (default obs.Default()).
	Registry *obs.Registry
	// Tracer records pipeline traces for /v1/traces (default: a tracer
	// with trace.Options defaults — 64 recent + 8 slowest per op).
	Tracer *trace.Tracer
	// Logger is the structured server logger. Defaults to a Logf adapter
	// when Logf is set, else a text logger on stderr at info level.
	Logger *olog.Logger
	// Logf is the legacy printf-style log sink. When set (and Logger is
	// not), server logs render through it as "msg k=v ..." lines.
	Logf func(format string, args ...any)

	// MaxRetries bounds re-executions of a job that failed on a
	// transient error (default 2; negative disables retries).
	MaxRetries int
	// RetryBackoff is the base of the exponential retry backoff
	// (default 100ms; attempt n waits ~RetryBackoff·2ⁿ plus jitter).
	RetryBackoff time.Duration
	// JobTTL is how long terminal jobs stay queryable before the
	// garbage collector drops them (default 1h).
	JobTTL time.Duration
	// GCInterval is how often the job garbage collector runs while the
	// server is serving (default 1m).
	GCInterval time.Duration
	// SpoolDir, when set, enables RL-training checkpoints: jobs write a
	// checkpoint there every CheckpointEvery epochs and resume from it
	// after a cancel, crash or retry. Empty disables checkpointing.
	SpoolDir string
	// CheckpointEvery is the epoch stride between checkpoints (default 1).
	CheckpointEvery int
	// JobLogDir, when set, enables the durable job log: every job
	// transition is appended (fsync'd) there and replayed on startup, so
	// jobs survive a process death. Empty disables the log.
	JobLogDir string
	// JobLogSegmentBytes overrides the job-log segment size (testing).
	JobLogSegmentBytes int64
	// TenantQPS enables per-tenant admission quotas: each tenant (the
	// X-Trap-Tenant header) may submit at this sustained rate. <= 0
	// disables quotas.
	TenantQPS float64
	// TenantBurst is the per-tenant burst allowance
	// (default ceil(TenantQPS)).
	TenantBurst int
	// PriorityQueue honors the X-Trap-Priority header (interactive jobs
	// are dequeued before batch ones). Off by default: without the flag
	// the header is ignored and all jobs are batch.
	PriorityQueue bool
	// SSEHeartbeat is the comment-heartbeat interval of idle progress
	// streams (default 15s).
	SSEHeartbeat time.Duration
	// ProfileDir, when set, enables continuous profiling: every traced
	// span that runs longer than ProfileThreshold triggers a heap + CPU
	// profile capture into this directory, retained ProfileKeep-deep and
	// indexed by GET /v1/profiles. Empty disables the harness.
	ProfileDir string
	// ProfileThreshold is the span latency that triggers a capture
	// (default 1s).
	ProfileThreshold time.Duration
	// ProfileKeep bounds the rolling capture retention (default 8).
	ProfileKeep int
	// ProfileCPUWindow is how long the post-breach CPU profile runs
	// (default 1s).
	ProfileCPUWindow time.Duration
	// MetricsInterval is the cadence of cluster metric federation: each
	// node publishes its registry snapshot to the shared bus this often
	// (default 5s; only meaningful in cluster mode).
	MetricsInterval time.Duration
	// Injector arms the fault-injection points in the suites' engines
	// and frameworks (nil — the default — disables injection).
	Injector faultinject.Injector

	// NodeID, when set, joins the server to a multi-node fleet: jobs are
	// owned via leases over the shared job log (worker-pull placement),
	// with fencing-token takeover when a node dies. Requires JobLogDir or
	// Bus. Empty (the default) keeps the single-node job path.
	NodeID string
	// LeaseTTL is how long a job lease survives without renewal; a node
	// that misses heartbeats for this long loses its jobs to takeover
	// (default 15s).
	LeaseTTL time.Duration
	// HeartbeatInterval is the heartbeat/renew/reconcile cadence
	// (default LeaseTTL/3).
	HeartbeatInterval time.Duration
	// Bus attaches the server to an existing in-process fleet bus
	// (chaos drills, cmd/trapload). When nil and NodeID is set, the
	// server opens its own bus over JobLogDir.
	Bus *cluster.Bus
}

func (c *Config) fill() {
	if len(c.Datasets) == 0 {
		c.Datasets = []string{"tpch"}
	}
	if c.Params == (assess.Params{}) {
		c.Params = assess.QuickParams()
	}
	if c.Seed == 0 {
		c.Seed = 42
	}
	if c.Workers <= 0 {
		c.Workers = runtime.NumCPU()
	}
	if c.QueueDepth <= 0 {
		c.QueueDepth = 4 * c.Workers
	}
	if c.RequestTimeout <= 0 {
		c.RequestTimeout = 30 * time.Second
	}
	if c.JobTimeout <= 0 {
		c.JobTimeout = 15 * time.Minute
	}
	if c.MaxBodyBytes <= 0 {
		c.MaxBodyBytes = 1 << 20
	}
	if c.Registry == nil {
		c.Registry = obs.Default()
	}
	if c.Tracer == nil {
		c.Tracer = trace.New(trace.Options{})
	}
	if c.Logger == nil {
		if c.Logf != nil {
			c.Logger = olog.NewLogf(c.Logf)
		} else {
			c.Logger = olog.New(os.Stderr, slog.LevelInfo, olog.FormatText)
		}
	}
	if c.MaxRetries == 0 {
		c.MaxRetries = 2
	} else if c.MaxRetries < 0 {
		c.MaxRetries = 0
	}
	if c.RetryBackoff <= 0 {
		c.RetryBackoff = 100 * time.Millisecond
	}
	if c.JobTTL <= 0 {
		c.JobTTL = time.Hour
	}
	if c.GCInterval <= 0 {
		c.GCInterval = time.Minute
	}
	if c.CheckpointEvery <= 0 {
		c.CheckpointEvery = 1
	}
	if c.SSEHeartbeat <= 0 {
		c.SSEHeartbeat = 15 * time.Second
	}
	if c.ProfileThreshold <= 0 {
		c.ProfileThreshold = time.Second
	}
	if c.ProfileKeep <= 0 {
		c.ProfileKeep = 8
	}
	if c.ProfileCPUWindow <= 0 {
		c.ProfileCPUWindow = time.Second
	}
	if c.MetricsInterval <= 0 {
		c.MetricsInterval = 5 * time.Second
	}
}

// Server is the trapd HTTP service.
type Server struct {
	cfg    Config
	reg    *obs.Registry
	tr     *trace.Tracer
	log    *olog.Logger
	suites map[string]*assess.Suite
	jobs   *jobStore
	pool   *workerPool
	ckpt   *ckptStore  // nil when SpoolDir is unset
	jlog   *joblog.Log // nil when JobLogDir is unset
	adm    *admission.Controller
	events *eventBus
	ready  atomic.Bool // false until the job-log replay has finished
	// draining latches true when the job log degrades (an append or
	// fsync failed): the node stops accepting jobs and claiming leases,
	// serves what it has, and /readyz turns 503.
	draining atomic.Bool
	mux      *http.ServeMux
	start    time.Time

	// Cluster mode (Config.NodeID): the shared bus, this node's lease
	// coordinator, and its fold subscription. ownBus marks a bus this
	// server opened itself (and must close).
	bus    *cluster.Bus
	coord  *cluster.Coordinator
	sub    *cluster.Sub
	ownBus bool

	// Telemetry: per-job time-series scopes, the continuous-profiling
	// harness, and the cluster metric-federation publisher.
	tscopes      *scopeStore
	prof         *profiler // nil when ProfileDir is unset
	metricsEvery time.Duration
	metricsStop  chan struct{}
	metricsDone  chan struct{}
	metricsOnce  sync.Once

	mRequests     *obs.Counter
	mReqSecs      *obs.Histogram
	mJobsSub      *obs.Counter
	mJobsDone     *obs.Counter
	mJobsFailed   *obs.Counter
	mJobsCanceled *obs.Counter
	mJobRetries   *obs.Counter
	mJobPanics    *obs.Counter
	mJobsGCed     *obs.Counter
	mJobsRestored *obs.Counter
	mJobsFenced   *obs.Counter
	mCkptSaved    *obs.Counter
	mCkptResumed  *obs.Counter
	mShedQuota    *obs.Counter
	mShedCapacity *obs.Counter
	mJobsRun      *obs.Gauge
	mJobSecs      *obs.Histogram
}

// Job-log record types. Submit and state records carry a full Job
// snapshot (replay folds them last-write-wins); drop records mark a
// GC'd job so replay forgets it.
const (
	recSubmit = "submit"
	recState  = "state"
	recDrop   = "drop"
)

// NewServer builds the suites for every configured dataset (this is the
// slow part: workload generation and utility-model training) and wires
// the handlers and worker pool. The server is ready to serve as soon as
// NewServer returns.
func NewServer(cfg Config) (*Server, error) {
	cfg.fill()
	s := &Server{
		cfg:     cfg,
		reg:     cfg.Registry,
		tr:      cfg.Tracer,
		log:     cfg.Logger,
		suites:  map[string]*assess.Suite{},
		jobs:    newJobStore(),
		events:  newEventBus(),
		tscopes: newScopeStore(),
		adm: admission.New(admission.Options{
			TenantQPS:   cfg.TenantQPS,
			TenantBurst: cfg.TenantBurst,
		}),
		start: time.Now(),

		mRequests:     cfg.Registry.Counter("trapd_http_requests_total"),
		mReqSecs:      cfg.Registry.Histogram("trapd_http_request_seconds"),
		mJobsSub:      cfg.Registry.Counter("trapd_jobs_submitted_total"),
		mJobsDone:     cfg.Registry.Counter("trapd_jobs_done_total"),
		mJobsFailed:   cfg.Registry.Counter("trapd_jobs_failed_total"),
		mJobsCanceled: cfg.Registry.Counter("trapd_jobs_canceled_total"),
		mJobRetries:   cfg.Registry.Counter("trapd_job_retries_total"),
		mJobPanics:    cfg.Registry.Counter("trapd_job_panics_total"),
		mJobsGCed:     cfg.Registry.Counter("trapd_jobs_gced_total"),
		mJobsRestored: cfg.Registry.Counter("trapd_jobs_restored_total"),
		mJobsFenced:   cfg.Registry.Counter("trapd_jobs_fenced_total"),
		mCkptSaved:    cfg.Registry.Counter("trapd_checkpoints_saved_total"),
		mCkptResumed:  cfg.Registry.Counter("trapd_checkpoints_resumed_total"),
		mShedQuota:    cfg.Registry.Counter("trapd_shed_quota_total"),
		mShedCapacity: cfg.Registry.Counter("trapd_shed_capacity_total"),
		mJobsRun:      cfg.Registry.Gauge("trapd_jobs_running"),
		mJobSecs:      cfg.Registry.Histogram("trapd_job_seconds"),
	}
	if cfg.SpoolDir != "" {
		ck, err := newCkptStore(cfg.SpoolDir, cfg.Seed)
		if err != nil {
			return nil, err
		}
		s.ckpt = ck
	}
	for _, name := range cfg.Datasets {
		sch, err := SchemaByName(name, cfg.Params.ScaleDown)
		if err != nil {
			return nil, fmt.Errorf("service: %w", err)
		}
		t0 := time.Now()
		suite, err := assess.NewSuite(name, sch, cfg.Params, cfg.Seed)
		if err != nil {
			return nil, fmt.Errorf("service: building %s suite: %w", name, err)
		}
		suite.Inject = cfg.Injector
		suite.E.SetInjector(cfg.Injector)
		suite.E.SetBatchWorkers(cfg.CostWorkers)
		suite.TrainWorkers = cfg.TrainWorkers
		suite.MeasureWorkers = cfg.AssessWorkers
		s.suites[name] = suite
		s.log.Info(context.Background(), "trapd: suite built",
			"dataset", name, "elapsed", time.Since(t0).Round(time.Millisecond),
			"train", len(suite.Train), "test", len(suite.Test))

		// Per-dataset plan-cache gauges, evaluated at scrape time.
		e := suite.E
		s.reg.GaugeFunc(fmt.Sprintf("engine_plan_cache_entries{dataset=%q}", name),
			func() float64 { return float64(e.CacheStats().Entries) })
		s.reg.GaugeFunc(fmt.Sprintf("engine_plan_cache_hit_ratio{dataset=%q}", name),
			func() float64 { return e.CacheStats().HitRatio() })
		s.reg.GaugeFunc(fmt.Sprintf("engine_plan_singleflight_dedup{dataset=%q}", name),
			func() float64 { return float64(e.CacheStats().SingleflightDedup) })
	}
	s.reg.GaugeFunc("trapd_jobs_pending", func() float64 {
		return float64(s.jobs.countByStatus()[JobPending])
	})
	s.reg.GaugeFunc("trapd_jobs_live", func() float64 {
		return float64(s.jobs.size())
	})
	s.reg.GaugeFunc("trapd_sse_streams", func() float64 {
		return float64(s.events.size())
	})
	s.reg.GaugeFunc("trapd_admission_drain_per_sec", func() float64 {
		return s.adm.Stats().DrainPerSec
	})
	s.reg.GaugeFunc("trapd_admission_tenants", func() float64 {
		return float64(s.adm.Stats().Tenants)
	})
	s.reg.GaugeFunc("trapd_telemetry_scopes", func() float64 {
		return float64(s.tscopes.size())
	})
	bi := buildinfo.Get()
	s.reg.GaugeFunc(
		fmt.Sprintf("trap_build_info{git_rev=%q,go_version=%q}", bi.GitRev, bi.GoVersion),
		func() float64 { return 1 })
	s.reg.Describe("trap_build_info",
		"Build provenance carried as labels; the value is always 1.")
	if cfg.ProfileDir != "" {
		p, err := newProfiler(cfg, s.reg, s.log)
		if err != nil {
			return nil, err
		}
		s.prof = p
		s.tr.SetOnSpanEnd(p.onSpanEnd)
	}
	obs.RegisterRuntimeGauges(s.reg)
	for name, help := range map[string]string{
		"trapd_jobs_submitted_total":  "Assessment jobs accepted by POST /v1/assess.",
		"trapd_jobs_done_total":       "Assessment jobs that finished successfully.",
		"trapd_jobs_failed_total":     "Assessment jobs that terminated with an error.",
		"trapd_job_seconds":           "Wall time of one assessment job, submission to terminal state.",
		"trapd_http_requests_total":   "HTTP requests served, all routes.",
		"trapd_http_request_seconds":  "HTTP request latency.",
		"engine_cost_batch_seconds":   "Wall time of one what-if cost batch.",
		"assess_measure_seconds":      "Wall time of one full measurement (all cells).",
		"trap_rl_epoch_seconds":       "Wall time of one RL training epoch.",
		"trap_pretrain_epoch_seconds": "Wall time of one pretraining epoch.",
	} {
		s.reg.Describe(name, help)
	}
	s.pool = newWorkerPool(cfg.Workers, cfg.QueueDepth, s.runJob)
	switch {
	case cfg.NodeID != "":
		if err := s.setupCluster(); err != nil {
			return nil, err
		}
	case cfg.JobLogDir != "":
		if err := s.openJobLog(); err != nil {
			return nil, err
		}
		s.registerJoblogMetrics(s.jlog)
	}
	s.ready.Store(true)
	s.mux = http.NewServeMux()
	s.routes()
	return s, nil
}

// openJobLog opens (or creates) the durable job log, replays it into
// the job store — re-enqueuing jobs interrupted by a process death —
// and compacts the log down to one state record per live job.
func (s *Server) openJobLog() error {
	byID := map[string]*Job{}
	var order []string // first-seen order, preserved across folding
	l, err := joblog.Open(s.cfg.JobLogDir, joblog.Options{
		SegmentBytes: s.cfg.JobLogSegmentBytes,
		Injector:     s.cfg.Injector,
		Replay: func(r joblog.Record) error {
			switch r.Type {
			case recSubmit, recState:
				var j Job
				if err := json.Unmarshal(r.Data, &j); err != nil || j.ID == "" {
					return nil // tolerate a damaged payload: skip the record
				}
				if _, seen := byID[j.ID]; !seen {
					order = append(order, j.ID)
				}
				byID[j.ID] = &j
			case recDrop:
				delete(byID, r.JobID)
			}
			return nil
		},
	})
	if err != nil {
		return fmt.Errorf("service: job log: %w", err)
	}
	s.jlog = l

	var snapshot []joblog.Record
	restored, requeued := 0, 0
	for _, id := range order {
		j, ok := byID[id]
		if !ok {
			continue // dropped later in the log
		}
		if !j.Status.terminal() {
			// The process died while this job was queued or running:
			// re-enqueue it. A spooled checkpoint (if the server has a
			// spool) makes the re-run resume mid-training.
			j.Status = JobPending
			j.Restored = true
			j.Started, j.Finished = nil, nil
			j.Error, j.Stack = "", ""
			j.Result = nil
			requeued++
		}
		s.jobs.restore(*j)
		hub := s.events.create(j.ID)
		ev := JobEvent{Type: evState, Status: j.Status, Error: j.Error}
		hub.publish(ev)
		if j.Status.terminal() {
			if j.Status == JobDone && j.Result != nil {
				hub.publish(JobEvent{Type: evResult, Result: j.Result})
			}
			hub.closeHub()
		} else if err := s.pool.submit(j.ID, j.priority()); err != nil {
			now := time.Now()
			s.jobs.update(j.ID, func(jj *Job) {
				jj.Status = JobFailed
				jj.Error = fmt.Sprintf("re-enqueue after restart: %v", err)
				jj.Finished = &now
			})
			cur, _ := s.jobs.get(j.ID)
			*j = cur
			hub.publish(JobEvent{Type: evState, Status: j.Status, Error: j.Error})
			hub.closeHub()
		}
		cur, _ := s.jobs.get(j.ID)
		data, merr := json.Marshal(cur)
		if merr != nil {
			continue
		}
		snapshot = append(snapshot, joblog.Record{Type: recState, JobID: j.ID, Data: data})
		restored++
	}
	if err := l.Compact(snapshot); err != nil {
		return fmt.Errorf("service: job log compact: %w", err)
	}
	if restored > 0 {
		s.mJobsRestored.Add(int64(requeued))
		s.log.Info(context.Background(), "trapd: job log replayed",
			"jobs", restored, "requeued", requeued, "dir", s.cfg.JobLogDir)
	}
	return nil
}

// appendJobRecord durably appends the job's current state to the job
// log. Log failures are non-fatal for the job itself (they cost
// durability, not correctness of the in-memory run) — but a degraded
// log flips the node into read-only draining: it finishes what it has
// and stops accepting work whose transitions it could not persist.
func (s *Server) appendJobRecord(typ string, j Job) {
	if s.jlog == nil {
		return
	}
	if _, err := s.jlog.Append(typ, j.ID, j); err != nil {
		if errors.Is(err, joblog.ErrDegraded) && s.draining.CompareAndSwap(false, true) {
			s.log.Error(context.Background(),
				"trapd: job log degraded, node entering read-only drain", "err", err)
		}
		s.log.Warn(context.Background(), "trapd: job log append failed", "job", j.ID, "err", err)
	}
}

// publishState streams the job's current lifecycle state, mirrors it to
// the job log, and — when the state is terminal — finalizes the stream.
//
// In cluster mode the state is appended under this node's lease and hub
// events come only from the fold (identical Seqs on every node). The
// return value reports a rejected terminal publication: the lease was
// lost (fenced), the node is dead/partitioned, or the log degraded —
// either way the result did not reach the shared log and the caller
// must not account the job as completed (another node owns it now).
func (s *Server) publishState(id string) (rejected bool) {
	j, ok := s.jobs.get(id)
	if !ok {
		return false
	}
	if s.coord != nil {
		if _, err := s.coord.AppendOwned(recState, id, j); err != nil {
			if errors.Is(err, joblog.ErrDegraded) && s.draining.CompareAndSwap(false, true) {
				s.log.Error(context.Background(),
					"trapd: job log degraded, node entering read-only drain", "err", err)
			}
			s.log.Warn(context.Background(), "trapd: cluster state append rejected",
				"job", id, "status", j.Status, "err", err)
			return j.Status.terminal()
		}
		return false
	}
	ev := JobEvent{Type: evState, Status: j.Status, Error: j.Error}
	s.events.publish(id, ev)
	s.appendJobRecord(recState, j)
	if j.Status.terminal() {
		if j.Status == JobDone && j.Result != nil {
			s.events.publish(id, JobEvent{Type: evResult, Result: j.Result})
		}
		s.events.closeHub(id)
	}
	return false
}

// Close releases the server's durable resources (the job log, the
// fleet attachment). Safe to call more than once; serving continues
// degraded if it ever races an in-flight append (appends after close
// fail soft).
func (s *Server) Close() error {
	if s.metricsStop != nil {
		s.metricsOnce.Do(func() {
			close(s.metricsStop)
			<-s.metricsDone
		})
	}
	if s.coord != nil {
		s.coord.Stop()
	}
	if s.bus != nil {
		s.bus.Detach(s.cfg.NodeID)
		if s.ownBus {
			return s.bus.Close()
		}
		return nil
	}
	if s.jlog != nil {
		return s.jlog.Close()
	}
	return nil
}

// Handler returns the service's HTTP handler (metrics middleware
// included) — used directly by tests and in-process embedding.
func (s *Server) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		s.mRequests.Inc()
		s.reg.Counter(routeCounterName(r)).Inc()
		defer obs.StartSpan(s.mReqSecs).End()
		r.Body = http.MaxBytesReader(w, r.Body, s.cfg.MaxBodyBytes)
		s.mux.ServeHTTP(w, r)
	})
}

// routeCounterName buckets request paths into low-cardinality metric
// names (job IDs are collapsed).
func routeCounterName(r *http.Request) string {
	path := r.URL.Path
	if strings.HasPrefix(path, "/v1/jobs/") {
		path = "/v1/jobs"
	}
	if strings.HasPrefix(path, "/v1/traces/") {
		path = "/v1/traces"
	}
	return fmt.Sprintf("trapd_http_requests_total{path=%q}", path)
}

// Suite returns the named dataset's suite (nil when not loaded).
func (s *Server) Suite(name string) *assess.Suite { return s.suites[name] }

// Datasets lists the loaded dataset names in config order.
func (s *Server) Datasets() []string {
	out := make([]string, 0, len(s.suites))
	for _, n := range s.cfg.Datasets {
		if _, ok := s.suites[n]; ok {
			out = append(out, n)
		}
	}
	return out
}

// Run serves on cfg.Addr until ctx is canceled, then shuts down
// gracefully: the listener closes, in-flight HTTP requests get
// shutdownGrace to finish, and the worker pool drains running jobs.
func (s *Server) Run(ctx context.Context) error {
	ln, err := net.Listen("tcp", s.cfg.Addr)
	if err != nil {
		return err
	}
	return s.serve(ctx, ln)
}

const shutdownGrace = 30 * time.Second

func (s *Server) serve(ctx context.Context, ln net.Listener) error {
	defer s.Close()
	hs := &http.Server{Handler: s.Handler()}
	errc := make(chan error, 1)
	go func() { errc <- hs.Serve(ln) }()
	gctx, stopGC := context.WithCancel(ctx)
	defer stopGC()
	go s.gcLoop(gctx)
	s.log.Info(ctx, "trapd: serving",
		"addr", ln.Addr().String(), "datasets", strings.Join(s.Datasets(), ","), "workers", s.cfg.Workers)

	select {
	case err := <-errc:
		return err
	case <-ctx.Done():
	}
	s.log.Info(context.Background(), "trapd: shutting down, draining in-flight jobs")
	sctx, cancel := context.WithTimeout(context.Background(), shutdownGrace)
	defer cancel()
	err := hs.Shutdown(sctx)
	s.Drain(sctx)
	if errors.Is(err, context.DeadlineExceeded) {
		return fmt.Errorf("trapd: shutdown grace period expired")
	}
	return err
}

// gcLoop periodically drops terminal jobs older than JobTTL so the job
// store does not grow without bound under sustained load.
func (s *Server) gcLoop(ctx context.Context) {
	t := time.NewTicker(s.cfg.GCInterval)
	defer t.Stop()
	for {
		select {
		case <-ctx.Done():
			return
		case now := <-t.C:
			s.collectGarbage(ctx, now)
		}
	}
}

// collectGarbage drops terminal jobs past their TTL from every layer:
// the in-memory store, the SSE event hubs, and — via a tombstone — the
// durable job log, so a restart does not resurrect what the GC already
// forgot.
func (s *Server) collectGarbage(ctx context.Context, now time.Time) int {
	dropped := s.jobs.gc(s.cfg.JobTTL, now)
	if len(dropped) == 0 {
		return 0
	}
	for _, id := range dropped {
		s.events.drop(id)
		s.tscopes.drop(id)
		switch {
		case s.bus != nil:
			// Fleet-wide tombstone: every node's fold forgets the job
			// (duplicate tombstones from concurrent GCs are idempotent).
			if _, err := s.bus.Append(s.cfg.NodeID, recDrop, id, nil); err != nil {
				s.log.Warn(ctx, "trapd: job log drop append failed", "job", id, "err", err)
			}
		case s.jlog != nil:
			if _, err := s.jlog.Append(recDrop, id, nil); err != nil {
				s.log.Warn(ctx, "trapd: job log drop append failed", "job", id, "err", err)
			}
		}
	}
	s.mJobsGCed.Add(int64(len(dropped)))
	s.log.Info(ctx, "trapd: gc dropped finished jobs", "count", len(dropped), "ttl", s.cfg.JobTTL)
	return len(dropped)
}

// Drain stops job intake, cancels queued-but-unstarted jobs, and waits
// (bounded by ctx) for running jobs to finish. In cluster mode queued
// jobs are released instead of canceled: their leases go back to the
// fleet and a surviving node picks them up.
func (s *Server) Drain(ctx context.Context) {
	for _, id := range s.pool.shutdown(ctx) {
		if s.coord != nil {
			s.coord.Release(id)
			continue
		}
		now := time.Now()
		changed := false
		s.jobs.update(id, func(j *Job) {
			if j.Status == JobPending {
				j.Status = JobCanceled
				j.Error = "server shut down before the job started"
				j.Finished = &now
				changed = true
			}
		})
		if changed {
			s.publishState(id)
		}
	}
}

// panicError wraps a recovered panic value and its stack so the job
// layer can mark the job failed with full context instead of letting
// the panic kill the worker (or the process).
type panicError struct {
	val   any
	stack []byte
}

func (p *panicError) Error() string { return fmt.Sprintf("panic: %v", p.val) }

// runJob executes one assessment job on a worker goroutine: it gives the
// job a cancelable timeout context (registered for DELETE /v1/jobs/{id}),
// retries transient failures with exponential backoff + jitter, isolates
// panics as job failures, and classifies the terminal state.
func (s *Server) runJob(id string) {
	j, ok := s.jobs.get(id)
	if !ok {
		return
	}
	ctx, cancel := context.WithTimeout(context.Background(), s.cfg.JobTimeout)
	s.jobs.setCancel(id, cancel)
	defer func() {
		s.jobs.clearCancel(id)
		cancel()
	}()
	if s.coord != nil {
		// Lease gate: the run proceeds only while this node still owns
		// the job; the coordinator cancels ctx the moment the lease is
		// taken over at a higher epoch (the fence).
		if _, ok := s.coord.RunStarted(id, cancel); !ok {
			return // lease lost while queued: another node owns the job
		}
		defer s.coord.RunEnded(id)
	}
	started := false
	now := time.Now()
	s.jobs.update(id, func(j *Job) {
		if j.Status == JobPending {
			j.Status = JobRunning
			j.Started = &now
			started = true
		}
	})
	if !started {
		// Canceled (or otherwise finalized) while queued: nothing to run.
		return
	}
	s.publishState(id)
	// Telemetry scope: the training and attack loops below append their
	// per-epoch / per-step series into it through the context. The scope
	// survives retries — the series' monotonic step gates dedup re-run
	// epochs — and is served by GET /v1/jobs/{id}/telemetry.
	ctx = telemetry.NewContext(ctx, s.tscopes.getOrCreate(id))
	// Root span of the job's trace: every span the assessment pipeline
	// opens below (advisor/method builds, training epochs, measurement
	// cells, cost batches) nests under it, and every log line carries the
	// job and trace IDs.
	ctx = olog.WithJob(ctx, id)
	ctx, tsp := s.tr.Start(ctx, "trapd.job")
	tsp.Str("job", id)
	tsp.Str("dataset", j.Dataset)
	tsp.Str("advisor", j.Advisor)
	tsp.Str("method", j.Method)
	tsp.Str("constraint", j.Constraint)
	if tid := tsp.TraceID(); tid != "" {
		s.jobs.update(id, func(j *Job) { j.TraceID = tid })
	}
	// Span→event bridge: each finished measurement cell streams a "cell"
	// progress event to the job's SSE subscribers. Only sampled jobs have
	// a trace to observe; unsampled ones still stream state and epoch
	// events. Cluster mode skips the bridge: hub events must come only
	// from folded records so Seqs stay identical across nodes.
	if s.coord == nil {
		tsp.Observe(s.cellObserver(id))
	}
	s.mJobsRun.Add(1)
	sp := obs.StartSpan(s.mJobSecs)
	var res *JobResult
	var err error
	for attempt := 1; ; attempt++ {
		s.jobs.update(id, func(j *Job) { j.Attempts = attempt })
		res, err = s.runAssessment(ctx, j)
		if err == nil || ctx.Err() != nil {
			break
		}
		var pe *panicError
		if errors.As(err, &pe) {
			// Panics are never retried: they indicate a bug (or an
			// injected crash), not a transient condition.
			break
		}
		if attempt > s.cfg.MaxRetries || !faultinject.IsTransient(err) {
			break
		}
		backoff := s.cfg.RetryBackoff << (attempt - 1)
		backoff += time.Duration(rand.Int63n(int64(backoff)/2 + 1))
		s.mJobRetries.Inc()
		tsp.Event("retry")
		s.log.Warn(ctx, "trapd: job attempt failed on transient error, retrying",
			"attempt", attempt, "backoff", backoff.Round(time.Millisecond), "err", err)
		select {
		case <-time.After(backoff):
		case <-ctx.Done():
			err = ctx.Err()
		}
		if ctx.Err() != nil {
			break
		}
	}
	elapsed := sp.EndExemplar(tsp.TraceID())
	s.mJobsRun.Add(-1)
	tsp.Fail(err)
	tsp.End()

	var pe *panicError
	isPanic := errors.As(err, &pe)
	fin := time.Now()
	s.jobs.update(id, func(j *Job) {
		j.Finished = &fin
		switch {
		case err == nil:
			res.ElapsedMilli = elapsed.Milliseconds()
			j.Status = JobDone
			j.Result = res
		case errors.Is(err, context.Canceled):
			j.Status = JobCanceled
			j.Error = "canceled"
		case errors.Is(err, context.DeadlineExceeded):
			j.Status = JobFailed
			j.Error = fmt.Sprintf("job timeout (%v) exceeded", s.cfg.JobTimeout)
		case isPanic:
			j.Status = JobFailed
			j.Error = err.Error()
			j.Stack = string(pe.stack)
		default:
			j.Status = JobFailed
			j.Error = err.Error()
		}
	})
	if s.publishState(id) {
		// The terminal record bounced off the fence (or the node is dead
		// or partitioned): another node owns the job now and will publish
		// the real result. This run's outcome is discarded — not counted
		// as done, the checkpoint left in place for the new owner.
		s.mJobsFenced.Inc()
		s.log.Warn(ctx, "trapd: job result fenced, discarding",
			"elapsed", elapsed.Round(time.Millisecond), "err", err)
		return
	}
	s.adm.JobDone(fin)
	switch {
	case err == nil:
		if s.ckpt != nil {
			s.ckpt.remove(j)
		}
		s.mJobsDone.Inc()
		s.log.Info(ctx, "trapd: job done", "elapsed", elapsed.Round(time.Millisecond),
			"meanIUDR", res.MeanIUDR, "workloads", res.Workloads)
	case errors.Is(err, context.Canceled):
		s.mJobsCanceled.Inc()
		s.log.Info(ctx, "trapd: job canceled", "elapsed", elapsed.Round(time.Millisecond))
	case isPanic:
		s.mJobPanics.Inc()
		s.mJobsFailed.Inc()
		s.log.Error(ctx, "trapd: job panicked", "elapsed", elapsed.Round(time.Millisecond), "err", err)
	default:
		s.mJobsFailed.Inc()
		s.log.Error(ctx, "trapd: job failed", "elapsed", elapsed.Round(time.Millisecond), "err", err)
	}
}

// cellObserver builds the span→event bridge that streams one "cell"
// progress event per finished measurement cell.
func (s *Server) cellObserver(id string) func(trace.SpanEnd) {
	return func(se trace.SpanEnd) {
		if se.Name != "assess.cell" {
			return
		}
		ev := JobEvent{Type: evCell}
		for _, a := range se.Attrs {
			switch a.Key {
			case "workload":
				if v, ok := a.Value.(int64); ok {
					w := int(v)
					ev.Workload = &w
				}
			case "pairs":
				if v, ok := a.Value.(int64); ok {
					ev.Pairs = int(v)
				}
			}
		}
		s.events.publish(id, ev)
	}
}

// runAssessment trains the method against the advisor and measures IUDR
// over the suite's test workloads under the job's context. The training
// and measurement loops are context-aware and stop at the next epoch,
// episode or pair boundary on cancellation (RL advisor training included,
// via BuildAdvisorCtx); runBounded additionally bounds the remaining
// non-context-aware stretches (heuristic advisor training), whose
// discarded goroutine then exits at the next context check it reaches. A
// panic anywhere in the assessment is captured as a *panicError return.
func (s *Server) runAssessment(ctx context.Context, j Job) (*JobResult, error) {
	suite := s.suites[j.Dataset]
	if suite == nil {
		return nil, fmt.Errorf("dataset %q not loaded", j.Dataset)
	}
	spec, err := assess.SpecByName(j.Advisor)
	if err != nil {
		return nil, err
	}
	pc, err := parseConstraint(j.Constraint)
	if err != nil {
		return nil, err
	}
	return runBounded(ctx, func() (res *JobResult, err error) {
		defer func() {
			if r := recover(); r != nil {
				res, err = nil, &panicError{val: r, stack: debug.Stack()}
			}
		}()
		adv, err := suite.BuildAdvisorCtx(ctx, spec)
		if err != nil {
			return nil, fmt.Errorf("building advisor: %w", err)
		}
		base := suite.BaselineAdvisor(spec)
		ac := suite.ConstraintFor(spec)
		mc := assess.MethodConfig{}
		if s.ckpt != nil {
			if data, derr := s.ckpt.load(j); derr == nil && len(data) > 0 {
				mc.Resume = bytes.NewReader(data)
			}
		}
		// The epoch hook always runs (it feeds the progress stream);
		// checkpointing piggybacks on it when a spool is configured.
		every := s.cfg.CheckpointEvery
		mc.EpochHook = func(fw *core.Framework, epoch int) error {
			// The epoch's telemetry rides along: the per-epoch RL series
			// values stream to SSE subscribers and (in cluster mode)
			// replicate fleet-wide inside the progress record, where every
			// node's fold re-appends them into its local scope.
			pts := rlPoints(s.tscopes.get(j.ID))
			if s.coord != nil {
				// Progress replicates through the shared log so every
				// node's SSE streams carry it. A fenced append means the
				// lease is gone: abort training immediately rather than
				// burn cores on a result nobody will accept. Append comes
				// before the checkpoint save, so a crash between the two
				// re-runs the epoch and the fold's high-water dedups it.
				if _, perr := s.coord.AppendOwned(recProgress, j.ID, progressData{Epoch: epoch + 1, Points: pts}); perr != nil {
					if errors.Is(perr, cluster.ErrFenced) || errors.Is(perr, cluster.ErrNotOwner) {
						return perr
					}
					// Partitioned or degraded: keep training; the fence
					// decides when the terminal state is published.
				}
			} else {
				s.events.publish(j.ID, JobEvent{Type: evEpoch, Epoch: epoch + 1})
				if len(pts) > 0 {
					s.events.publish(j.ID, JobEvent{Type: evTelemetry, Epoch: epoch + 1, Points: pts})
				}
			}
			if s.ckpt == nil || (epoch+1)%every != 0 {
				return nil
			}
			if serr := s.ckpt.save(j, fw, epoch+1); serr != nil {
				// Best-effort: a failed checkpoint write must not
				// fail the job, it only loses resumability.
				s.log.Warn(ctx, "trapd: checkpoint save failed", "err", serr)
				return nil
			}
			s.mCkptSaved.Inc()
			return nil
		}
		m, err := suite.BuildMethod(ctx, j.Method, pc, adv, base, ac, mc)
		if err != nil {
			return nil, fmt.Errorf("building method: %w", err)
		}
		if m.Resumed {
			s.mCkptResumed.Inc()
			s.jobs.update(j.ID, func(jj *Job) { jj.Resumed = true })
			s.log.Info(ctx, "trapd: resumed from checkpoint")
		}
		rep, err := suite.Measure(ctx, m, adv, base, ac)
		if err != nil {
			return nil, fmt.Errorf("measuring: %w", err)
		}
		res = &JobResult{MeanIUDR: rep.MeanIUDR, Workloads: rep.N, Pairs: len(rep.Pairs)}
		for _, p := range rep.Pairs {
			if p.NonSargable {
				res.NonSargable++
			}
		}
		return res, nil
	})
}

// parseConstraint maps the wire name to a perturbation constraint.
func parseConstraint(name string) (core.PerturbConstraint, error) {
	switch name {
	case "", "shared", "shared-table":
		return core.SharedTable, nil
	case "value", "value-only":
		return core.ValueOnly, nil
	case "column", "column-consistent":
		return core.ColumnConsistent, nil
	}
	return 0, fmt.Errorf("unknown perturbation constraint %q (want value, column or shared)", name)
}

// runBounded runs f on its own goroutine and returns its result, or
// ctx's error once the deadline passes (f keeps running and its result
// is dropped).
func runBounded[T any](ctx context.Context, f func() (T, error)) (T, error) {
	var zero T
	if err := ctx.Err(); err != nil {
		return zero, err
	}
	type res struct {
		v   T
		err error
	}
	ch := make(chan res, 1)
	go func() {
		v, err := f()
		ch <- res{v, err}
	}()
	select {
	case r := <-ch:
		return r.v, r.err
	case <-ctx.Done():
		return zero, ctx.Err()
	}
}
