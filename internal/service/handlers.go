package service

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"math"
	"net/http"
	"net/http/pprof"
	"strconv"
	"strings"
	"time"

	"github.com/trap-repro/trap/internal/admission"
	"github.com/trap-repro/trap/internal/assess"
	"github.com/trap-repro/trap/internal/buildinfo"
	"github.com/trap-repro/trap/internal/engine"
	"github.com/trap-repro/trap/internal/obs"
	"github.com/trap-repro/trap/internal/schema"
	"github.com/trap-repro/trap/internal/sqlx"
	"github.com/trap-repro/trap/internal/trace"
	"github.com/trap-repro/trap/internal/workload"
)

func (s *Server) routes() {
	s.mux.HandleFunc("GET /healthz", s.handleHealthz)
	s.mux.HandleFunc("GET /readyz", s.handleReadyz)
	s.mux.HandleFunc("GET /version", s.handleVersion)
	s.mux.HandleFunc("GET /metrics", s.handleMetrics)
	s.mux.HandleFunc("POST /v1/parse", s.handleParse)
	s.mux.HandleFunc("POST /v1/explain", s.handleExplain)
	s.mux.HandleFunc("POST /v1/advise", s.handleAdvise)
	s.mux.HandleFunc("POST /v1/assess", s.handleAssess)
	s.mux.HandleFunc("GET /v1/jobs", s.handleJobsList)
	s.mux.HandleFunc("GET /v1/jobs/{id}", s.handleJob)
	s.mux.HandleFunc("GET /v1/jobs/{id}/events", s.handleJobEvents)
	s.mux.HandleFunc("GET /v1/jobs/{id}/telemetry", s.handleJobTelemetry)
	s.mux.HandleFunc("DELETE /v1/jobs/{id}", s.handleJobCancel)
	s.mux.HandleFunc("GET /v1/traces", s.handleTraces)
	s.mux.HandleFunc("GET /v1/traces/{id}", s.handleTrace)
	s.mux.HandleFunc("GET /v1/nodes", s.handleNodes)
	s.mux.HandleFunc("GET /v1/cluster/metrics", s.handleClusterMetrics)
	s.mux.HandleFunc("GET /v1/profiles", s.handleProfiles)
	s.mux.HandleFunc("GET /v1/profiles/{file}", s.handleProfileFile)
	if s.cfg.EnablePprof {
		// Profiling a live assessment: with -pprof on, e.g.
		//   go tool pprof 'http://localhost:8080/debug/pprof/profile?seconds=30'
		// while a job runs captures the rollout and measurement pools.
		s.mux.HandleFunc("GET /debug/pprof/", pprof.Index)
		s.mux.HandleFunc("GET /debug/pprof/cmdline", pprof.Cmdline)
		s.mux.HandleFunc("GET /debug/pprof/profile", pprof.Profile)
		s.mux.HandleFunc("GET /debug/pprof/symbol", pprof.Symbol)
		s.mux.HandleFunc("GET /debug/pprof/trace", pprof.Trace)
	}
}

// errorBody is the uniform error envelope.
type errorBody struct {
	Error string `json:"error"`
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v)
}

func writeError(w http.ResponseWriter, status int, format string, args ...any) {
	writeJSON(w, status, errorBody{Error: fmt.Sprintf(format, args...)})
}

// decodeBody decodes a JSON request body, rejecting unknown fields.
func decodeBody(w http.ResponseWriter, r *http.Request, v any) bool {
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(v); err != nil {
		var tooLarge *http.MaxBytesError
		if errors.As(err, &tooLarge) {
			writeError(w, http.StatusRequestEntityTooLarge, "request body exceeds %d bytes", tooLarge.Limit)
			return false
		}
		writeError(w, http.StatusBadRequest, "invalid JSON body: %v", err)
		return false
	}
	return true
}

// reqCtx bounds a synchronous handler by the configured request timeout.
func (s *Server) reqCtx(r *http.Request) (context.Context, context.CancelFunc) {
	return context.WithTimeout(r.Context(), s.cfg.RequestTimeout)
}

// writeCtxError maps a context error onto 504/499-style responses.
func writeCtxError(w http.ResponseWriter, err error) {
	if errors.Is(err, context.DeadlineExceeded) {
		writeError(w, http.StatusGatewayTimeout, "request deadline exceeded")
		return
	}
	writeError(w, http.StatusServiceUnavailable, "request aborted: %v", err)
}

// GET /healthz

type healthResponse struct {
	Status   string            `json:"status"`
	Datasets []string          `json:"datasets"`
	Uptime   string            `json:"uptime"`
	Jobs     map[JobStatus]int `json:"jobs"`
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, healthResponse{
		Status:   "ok",
		Datasets: s.Datasets(),
		Uptime:   time.Since(s.start).Round(time.Millisecond).String(),
		Jobs:     s.jobs.countByStatus(),
	})
}

// GET /version

// versionResponse is the /version envelope: the binary's provenance as
// resolved by internal/buildinfo (also carried by the trap_build_info
// metric and the benchmark provenance records).
type versionResponse struct {
	buildinfo.Info
	Uptime string `json:"uptime"`
}

func (s *Server) handleVersion(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, versionResponse{
		Info:   buildinfo.Get(),
		Uptime: time.Since(s.start).Round(time.Millisecond).String(),
	})
}

// GET /readyz

// readyResponse reports whether trapd should receive traffic.
type readyResponse struct {
	Ready  bool   `json:"ready"`
	Reason string `json:"reason,omitempty"`
	Queued int    `json:"queued"`
	Depth  int    `json:"depth"`
	// Node and Leases report fleet identity and lease health in cluster
	// mode.
	Node   string `json:"node,omitempty"`
	Leases int    `json:"leases,omitempty"`
}

// handleReadyz is the load-balancer readiness gate, distinct from the
// /healthz liveness probe: the process can be alive (healthz 200) but
// not ready — still replaying the job log, with a degraded (read-only)
// job log, with stalled heartbeats that put its leases at risk, or with
// a saturated queue that would shed new work anyway.
func (s *Server) handleReadyz(w http.ResponseWriter, r *http.Request) {
	queued := s.pool.queued()
	resp := readyResponse{Queued: queued, Depth: s.cfg.QueueDepth}
	if s.coord != nil {
		resp.Node = s.cfg.NodeID
		resp.Leases = s.coord.Leases()
	}
	if !s.ready.Load() {
		resp.Reason = "replaying job log"
		writeJSON(w, http.StatusServiceUnavailable, resp)
		return
	}
	if s.draining.Load() {
		resp.Reason = "job log degraded; draining"
		writeJSON(w, http.StatusServiceUnavailable, resp)
		return
	}
	if s.coord != nil {
		if age := s.coord.HeartbeatAge(); age > s.coord.TTL {
			// The node cannot prove liveness to the fleet: its leases are
			// past (or about to pass) their deadlines and survivors will
			// take its jobs over. Stop routing traffic to it.
			resp.Reason = fmt.Sprintf("heartbeat stalled for %s (lease TTL %s); leases at risk",
				age.Round(time.Millisecond), s.coord.TTL)
			writeJSON(w, http.StatusServiceUnavailable, resp)
			return
		}
	}
	if queued >= s.cfg.QueueDepth {
		resp.Reason = "job queue saturated"
		w.Header().Set("Retry-After", retrySeconds(s.adm.CapacityRetryAfter(queued, time.Now())))
		writeJSON(w, http.StatusServiceUnavailable, resp)
		return
	}
	resp.Ready = true
	writeJSON(w, http.StatusOK, resp)
}

// GET /metrics
//
// The default exposition is the Prometheus text format (0.0.4):
// counters/gauges as families with # TYPE headers, histograms as
// cumulative _bucket/_sum/_count series. ?format=openmetrics upgrades
// to OpenMetrics with exemplars linking slow histogram buckets to trace
// IDs; ?format=plain keeps the legacy name/value dump.
func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	switch r.URL.Query().Get("format") {
	case "plain":
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		_ = s.reg.WriteText(w)
	case "openmetrics":
		w.Header().Set("Content-Type", obs.ContentTypeOpenMetrics)
		_ = s.reg.WriteProm(w, true)
	default:
		w.Header().Set("Content-Type", obs.ContentTypeProm)
		_ = s.reg.WriteProm(w, false)
	}
}

// GET /v1/traces

// traceListResponse is the /v1/traces envelope.
type traceListResponse struct {
	Traces []trace.TraceJSON `json:"traces"`
}

// handleTraces lists retained traces, filterable by root operation
// (?op=trapd.job), minimum duration (?min_ms=250), outcome
// (?status=ok|error) and result size (?limit=20).
func (s *Server) handleTraces(w http.ResponseWriter, r *http.Request) {
	q := r.URL.Query()
	f := trace.Filter{Op: q.Get("op"), Status: q.Get("status")}
	if v := q.Get("min_ms"); v != "" {
		ms, err := strconv.ParseFloat(v, 64)
		if err != nil || ms < 0 {
			writeError(w, http.StatusBadRequest, "bad min_ms %q", v)
			return
		}
		f.MinDur = time.Duration(ms * float64(time.Millisecond))
	}
	if v := q.Get("limit"); v != "" {
		n, err := strconv.Atoi(v)
		if err != nil || n <= 0 {
			writeError(w, http.StatusBadRequest, "bad limit %q", v)
			return
		}
		f.Limit = n
	}
	switch f.Status {
	case "", "ok", "error":
	default:
		writeError(w, http.StatusBadRequest, "bad status %q (want ok or error)", f.Status)
		return
	}
	resp := traceListResponse{Traces: []trace.TraceJSON{}}
	for _, tr := range s.tr.List(f) {
		resp.Traces = append(resp.Traces, tr.Summary())
	}
	writeJSON(w, http.StatusOK, resp)
}

// GET /v1/traces/{id}

// handleTrace returns one trace's full span tree; ?format=chrome
// exports trace_event JSON loadable in chrome://tracing / Perfetto.
func (s *Server) handleTrace(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	tr, ok := s.tr.Get(id)
	if !ok {
		writeError(w, http.StatusNotFound, "unknown trace %q (evicted or never sampled)", id)
		return
	}
	if r.URL.Query().Get("format") == "chrome" {
		writeJSON(w, http.StatusOK, tr.Chrome())
		return
	}
	writeJSON(w, http.StatusOK, tr.Tree())
}

// POST /v1/parse

type parseRequest struct {
	SQL string `json:"sql"`
}

type parseResponse struct {
	Query   string   `json:"query"`
	Tables  []string `json:"tables"`
	Columns []string `json:"columns"`
	Tokens  int      `json:"tokens"`
}

func (s *Server) handleParse(w http.ResponseWriter, r *http.Request) {
	var req parseRequest
	if !decodeBody(w, r, &req) {
		return
	}
	q, err := sqlx.Parse(req.SQL)
	if err != nil {
		writeError(w, http.StatusBadRequest, "parse error: %v", err)
		return
	}
	resp := parseResponse{Query: q.String(), Tables: q.Tables()}
	for _, c := range q.Columns() {
		resp.Columns = append(resp.Columns, c.String())
	}
	resp.Tokens = len(q.Tokens())
	writeJSON(w, http.StatusOK, resp)
}

// POST /v1/explain

type explainRequest struct {
	Dataset string   `json:"dataset"`
	SQL     string   `json:"sql"`
	Indexes []string `json:"indexes"`
}

type explainResponse struct {
	EstimatedPlan string  `json:"estimatedPlan"`
	TruePlan      string  `json:"truePlan"`
	EstimatedCost float64 `json:"estimatedCost"`
	TrueCost      float64 `json:"trueCost"`
	RuntimeCost   float64 `json:"runtimeCost"`
}

func (s *Server) handleExplain(w http.ResponseWriter, r *http.Request) {
	var req explainRequest
	if !decodeBody(w, r, &req) {
		return
	}
	suite, ok := s.suiteFor(w, req.Dataset)
	if !ok {
		return
	}
	q, err := sqlx.Parse(req.SQL)
	if err != nil {
		writeError(w, http.StatusBadRequest, "parse error: %v", err)
		return
	}
	cfg, err := ParseIndexes(req.Indexes)
	if err != nil {
		writeError(w, http.StatusBadRequest, "%v", err)
		return
	}
	ctx, cancel := s.reqCtx(r)
	defer cancel()
	resp, err := runBounded(ctx, func() (*explainResponse, error) {
		est, err := suite.E.Plan(q, cfg, engine.ModeEstimated)
		if err != nil {
			return nil, err
		}
		tru, err := suite.E.Plan(q, cfg, engine.ModeTrue)
		if err != nil {
			return nil, err
		}
		rc, err := suite.E.RuntimeCost(q, cfg)
		if err != nil {
			return nil, err
		}
		return &explainResponse{
			EstimatedPlan: est.String(),
			TruePlan:      tru.String(),
			EstimatedCost: est.Cost,
			TrueCost:      tru.Cost,
			RuntimeCost:   rc,
		}, nil
	})
	if err != nil {
		if ctx.Err() != nil {
			writeCtxError(w, ctx.Err())
			return
		}
		writeError(w, http.StatusUnprocessableEntity, "planning failed: %v", err)
		return
	}
	writeJSON(w, http.StatusOK, resp)
}

// POST /v1/advise

type adviseRequest struct {
	Dataset string   `json:"dataset"`
	Advisor string   `json:"advisor"`
	Queries []string `json:"queries"`
}

type adviseResponse struct {
	Advisor           string   `json:"advisor"`
	Indexes           []string `json:"indexes"`
	SizeBytes         float64  `json:"sizeBytes"`
	WhatIfImprovement float64  `json:"whatIfImprovement"`
	ElapsedMilli      int64    `json:"elapsedMs"`
}

func (s *Server) handleAdvise(w http.ResponseWriter, r *http.Request) {
	var req adviseRequest
	if !decodeBody(w, r, &req) {
		return
	}
	suite, ok := s.suiteFor(w, req.Dataset)
	if !ok {
		return
	}
	spec, err := assess.SpecByName(req.Advisor)
	if err != nil {
		writeError(w, http.StatusBadRequest, "%v", err)
		return
	}
	if len(req.Queries) == 0 {
		writeError(w, http.StatusBadRequest, "queries must contain at least one SQL statement")
		return
	}
	var queries []*sqlx.Query
	for i, sql := range req.Queries {
		q, err := sqlx.Parse(sql)
		if err != nil {
			writeError(w, http.StatusBadRequest, "queries[%d]: parse error: %v", i, err)
			return
		}
		queries = append(queries, q)
	}
	wl := workload.New(queries...)

	ctx, cancel := s.reqCtx(r)
	defer cancel()
	t0 := time.Now()
	resp, err := runBounded(ctx, func() (*adviseResponse, error) {
		// Learned advisors are trained on the suite's training workloads
		// first; heuristics recommend directly.
		adv, err := suite.BuildAdvisor(spec)
		if err != nil {
			return nil, err
		}
		ac := suite.ConstraintFor(spec)
		cfg, err := adv.Recommend(suite.E, wl, ac)
		if err != nil {
			return nil, err
		}
		resp := &adviseResponse{
			Advisor:   spec.Name,
			Indexes:   []string{},
			SizeBytes: cfg.SizeBytes(suite.E.Schema()),
		}
		for _, ix := range cfg {
			resp.Indexes = append(resp.Indexes, formatIndex(ix))
		}
		base, err := workload.Cost(suite.E, wl, nil, engine.ModeEstimated)
		if err == nil && base > 0 {
			with, err := workload.Cost(suite.E, wl, cfg, engine.ModeEstimated)
			if err == nil {
				resp.WhatIfImprovement = 1 - with/base
			}
		}
		return resp, nil
	})
	if err != nil {
		if ctx.Err() != nil {
			writeCtxError(w, ctx.Err())
			return
		}
		writeError(w, http.StatusUnprocessableEntity, "advising failed: %v", err)
		return
	}
	resp.ElapsedMilli = time.Since(t0).Milliseconds()
	writeJSON(w, http.StatusOK, resp)
}

// POST /v1/assess

type assessRequest struct {
	Dataset    string `json:"dataset"`
	Advisor    string `json:"advisor"`
	Method     string `json:"method"`
	Constraint string `json:"constraint"`
}

func (s *Server) handleAssess(w http.ResponseWriter, r *http.Request) {
	var req assessRequest
	if !decodeBody(w, r, &req) {
		return
	}
	if _, ok := s.suiteFor(w, req.Dataset); !ok {
		return
	}
	if _, err := assess.SpecByName(req.Advisor); err != nil {
		writeError(w, http.StatusBadRequest, "%v", err)
		return
	}
	if req.Method == "" {
		req.Method = "TRAP"
	}
	if !validMethod(req.Method) {
		writeError(w, http.StatusBadRequest, "unknown method %q (want one of %s)",
			req.Method, strings.Join(assess.MethodNames, ", "))
		return
	}
	if _, err := parseConstraint(req.Constraint); err != nil {
		writeError(w, http.StatusBadRequest, "%v", err)
		return
	}
	if s.draining.Load() {
		// The job log degraded (an append or fsync failed): this node
		// can no longer persist job transitions, so it drains — existing
		// jobs finish, new ones must go to a healthy node.
		writeError(w, http.StatusServiceUnavailable, "job log degraded; node is draining and not accepting jobs")
		return
	}

	// Admission: identify the tenant and priority class, then charge the
	// tenant's token bucket before the job touches the queue.
	tenant := r.Header.Get("X-Trap-Tenant")
	if tenant == "" {
		tenant = "default"
	}
	pri := admission.Batch
	if s.cfg.PriorityQueue {
		p, err := admission.ParsePriority(r.Header.Get("X-Trap-Priority"))
		if err != nil {
			writeError(w, http.StatusBadRequest, "%v", err)
			return
		}
		pri = p
	}
	if d := s.adm.Admit(tenant, time.Now()); !d.Admit {
		s.mShedQuota.Inc()
		w.Header().Set("Retry-After", retrySeconds(d.RetryAfter))
		writeError(w, http.StatusTooManyRequests,
			"tenant %q over submission quota (%s); retry after %s", tenant, d.Reason, d.RetryAfter)
		return
	}

	if s.bus != nil {
		s.handleAssessCluster(w, req, tenant, pri)
		return
	}

	job := s.jobs.create(Job{
		Dataset:    req.Dataset,
		Advisor:    req.Advisor,
		Method:     req.Method,
		Constraint: req.Constraint,
		Tenant:     tenant,
		Priority:   pri.String(),
	})
	s.events.create(job.ID)
	s.appendJobRecord(recSubmit, job)
	s.events.publish(job.ID, JobEvent{Type: evState, Status: JobPending})
	s.mJobsSub.Inc()
	if err := s.pool.submit(job.ID, pri); err != nil {
		now := time.Now()
		s.jobs.update(job.ID, func(j *Job) {
			j.Status = JobFailed
			j.Error = err.Error()
			j.Finished = &now
		})
		s.publishState(job.ID)
		// 503 + Retry-After: the condition is load (or shutdown), not a
		// bad request — the client should resubmit later. The hint comes
		// from the observed queue drain rate, not a constant guess.
		s.mShedCapacity.Inc()
		w.Header().Set("Retry-After", retrySeconds(s.adm.CapacityRetryAfter(s.pool.queued(), time.Now())))
		if errors.Is(err, ErrPoolClosed) {
			writeError(w, http.StatusServiceUnavailable, "server is shutting down")
		} else {
			writeError(w, http.StatusServiceUnavailable, "job queue full (%d pending)", s.cfg.QueueDepth)
		}
		return
	}
	writeJSON(w, http.StatusAccepted, job)
}

// retrySeconds renders a Retry-After header value: whole seconds,
// rounded up so the client never retries early.
func retrySeconds(d time.Duration) string {
	return strconv.FormatInt(int64(math.Ceil(d.Seconds())), 10)
}

func validMethod(name string) bool {
	for _, m := range assess.MethodNames {
		if m == name {
			return true
		}
	}
	return false
}

// GET /v1/jobs

// jobListResponse is the /v1/jobs envelope. NextCursor, when non-empty,
// is the ?cursor= value that continues the listing after the last job
// returned.
type jobListResponse struct {
	Jobs       []Job  `json:"jobs"`
	NextCursor string `json:"nextCursor,omitempty"`
}

// handleJobsList lists jobs in submission order, filterable by
// ?status=, ?advisor= and ?dataset=, paginated with ?limit= (default
// 100, cap 1000) and ?cursor= (a job ID; the listing resumes strictly
// after it, so a page boundary never duplicates or skips jobs that
// existed when the cursor was issued).
func (s *Server) handleJobsList(w http.ResponseWriter, r *http.Request) {
	q := r.URL.Query()
	statusF := JobStatus(q.Get("status"))
	if statusF != "" && !validJobStatus(statusF) {
		writeError(w, http.StatusBadRequest, "bad status %q (want pending, running, done, failed or canceled)", statusF)
		return
	}
	advisorF := q.Get("advisor")
	datasetF := q.Get("dataset")
	limit := 100
	if v := q.Get("limit"); v != "" {
		n, err := strconv.Atoi(v)
		if err != nil || n <= 0 {
			writeError(w, http.StatusBadRequest, "bad limit %q", v)
			return
		}
		if n > 1000 {
			n = 1000
		}
		limit = n
	}
	var after int64
	if v := q.Get("cursor"); v != "" {
		after = jobNum(v)
		if after == 0 {
			writeError(w, http.StatusBadRequest, "bad cursor %q (want a job ID)", v)
			return
		}
	}

	resp := jobListResponse{Jobs: []Job{}}
	for _, j := range s.jobs.list() {
		if jobNum(j.ID) <= after {
			continue
		}
		if statusF != "" && j.Status != statusF {
			continue
		}
		if advisorF != "" && j.Advisor != advisorF {
			continue
		}
		if datasetF != "" && j.Dataset != datasetF {
			continue
		}
		if len(resp.Jobs) == limit {
			resp.NextCursor = resp.Jobs[limit-1].ID
			break
		}
		resp.Jobs = append(resp.Jobs, j)
	}
	writeJSON(w, http.StatusOK, resp)
}

// GET /v1/jobs/{id}

func (s *Server) handleJob(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	j, ok := s.jobs.get(id)
	if !ok {
		writeError(w, http.StatusNotFound, "unknown job %q", id)
		return
	}
	writeJSON(w, http.StatusOK, j)
}

// DELETE /v1/jobs/{id}

// handleJobCancel cancels a job: a still-queued job is finalized as
// canceled immediately (the worker skips it on dequeue); a running job
// has its context canceled, which the training and measurement loops
// honor at the next epoch/pair boundary. Terminal jobs are a 409.
func (s *Server) handleJobCancel(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	j, ok := s.jobs.get(id)
	if !ok {
		writeError(w, http.StatusNotFound, "unknown job %q", id)
		return
	}
	if j.Status.terminal() {
		writeError(w, http.StatusConflict, "job %s already %s", id, j.Status)
		return
	}
	if s.coord != nil {
		if _, owned := s.coord.Owned(id); !owned {
			// Cancel-anywhere: this node does not own the job, so the
			// request routes to the owner through the shared log (and
			// outlives the owner — a node that takes the job over after
			// a crash finds the cancel record and finalizes it).
			if _, err := s.bus.Append(s.cfg.NodeID, recCancel, id, nil); err != nil {
				writeError(w, http.StatusServiceUnavailable, "cannot persist cancel request: %v", err)
				return
			}
			j, _ = s.jobs.get(id)
			writeJSON(w, http.StatusAccepted, j)
			return
		}
	}
	canceledNow := false
	now := time.Now()
	s.jobs.update(id, func(j *Job) {
		if j.Status == JobPending {
			j.Status = JobCanceled
			j.Error = "canceled before start"
			j.Finished = &now
			canceledNow = true
		}
	})
	if canceledNow {
		s.mJobsCanceled.Inc()
		s.publishState(id)
		if s.coord != nil {
			s.coord.RunEnded(id) // drop the lease entry; the job is terminal
		}
	} else if cancel := s.jobs.takeCancel(id); cancel != nil {
		cancel()
	}
	j, _ = s.jobs.get(id)
	writeJSON(w, http.StatusAccepted, j)
}

// suiteFor resolves a dataset name, writing a 404 when it is not loaded.
func (s *Server) suiteFor(w http.ResponseWriter, name string) (*assess.Suite, bool) {
	if name == "" {
		writeError(w, http.StatusBadRequest, "dataset is required (one of %s)",
			strings.Join(s.Datasets(), ", "))
		return nil, false
	}
	suite := s.suites[name]
	if suite == nil {
		writeError(w, http.StatusNotFound, "dataset %q not loaded (have %s)",
			name, strings.Join(s.Datasets(), ", "))
		return nil, false
	}
	return suite, true
}

// ParseIndexes parses "table(col1,col2)" index specs into a Config.
func ParseIndexes(specs []string) (schema.Config, error) {
	var cfg schema.Config
	for _, part := range specs {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		open := strings.IndexByte(part, '(')
		if open <= 0 || !strings.HasSuffix(part, ")") {
			return nil, fmt.Errorf("bad index spec %q (want table(col,...))", part)
		}
		table := strings.TrimSpace(part[:open])
		var cols []string
		for _, c := range strings.Split(part[open+1:len(part)-1], ",") {
			c = strings.TrimSpace(c)
			if c == "" {
				return nil, fmt.Errorf("bad index spec %q: empty column", part)
			}
			cols = append(cols, c)
		}
		cfg = cfg.Add(schema.Index{Table: table, Columns: cols})
	}
	return cfg, nil
}

// formatIndex renders an index in the same spec format ParseIndexes reads.
func formatIndex(ix schema.Index) string {
	return fmt.Sprintf("%s(%s)", ix.Table, strings.Join(ix.Columns, ","))
}
