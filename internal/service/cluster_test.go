package service

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"os/exec"
	"path/filepath"
	"runtime"
	"strings"
	"sync"
	"testing"
	"time"

	"github.com/trap-repro/trap/internal/admission"
	"github.com/trap-repro/trap/internal/faultinject"
	"github.com/trap-repro/trap/internal/obs"
)

// clusterServer is a shared server with the cluster-grade features on:
// per-tenant quotas (high enough not to bother tests that use their own
// tenant) and the priority queue.
var (
	clusterOnce sync.Once
	clusterSrv  *Server
	clusterErr  error
)

func clusterServer(t *testing.T) *Server {
	t.Helper()
	clusterOnce.Do(func() {
		clusterSrv, clusterErr = NewServer(Config{
			Datasets:      []string{"tpch"},
			Params:        tinyParams(),
			Seed:          11,
			Workers:       2,
			QueueDepth:    8,
			JobTimeout:    2 * time.Minute,
			TenantQPS:     2,
			TenantBurst:   2,
			PriorityQueue: true,
			SSEHeartbeat:  50 * time.Millisecond,
			Registry:      obs.NewRegistry(),
			Logf:          func(string, ...any) {},
		})
	})
	if clusterErr != nil {
		t.Fatal(clusterErr)
	}
	return clusterSrv
}

// postJSONHdr is postJSON with request headers, returning the response
// headers too.
func postJSONHdr(t *testing.T, h http.Handler, path string, body any, hdr map[string]string) (int, http.Header, []byte) {
	t.Helper()
	b, err := json.Marshal(body)
	if err != nil {
		t.Fatal(err)
	}
	req := httptest.NewRequest("POST", path, bytes.NewReader(b))
	req.Header.Set("Content-Type", "application/json")
	for k, v := range hdr {
		req.Header.Set(k, v)
	}
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, req)
	return rec.Code, rec.Header(), rec.Body.Bytes()
}

func submitTenantJob(t *testing.T, h http.Handler, tenant, priority string) Job {
	t.Helper()
	hdr := map[string]string{"X-Trap-Tenant": tenant}
	if priority != "" {
		hdr["X-Trap-Priority"] = priority
	}
	code, _, body := postJSONHdr(t, h, "/v1/assess",
		assessRequest{Dataset: "tpch", Advisor: "Drop", Method: "Random"}, hdr)
	if code != http.StatusAccepted {
		t.Fatalf("submit as %s: %d %s", tenant, code, body)
	}
	var j Job
	if err := json.Unmarshal(body, &j); err != nil {
		t.Fatal(err)
	}
	return j
}

func TestReadyz(t *testing.T) {
	s := clusterServer(t)
	h := s.Handler()
	code, body := getPath(t, h, "/readyz")
	if code != http.StatusOK {
		t.Fatalf("readyz: %d %s", code, body)
	}
	var resp readyResponse
	if err := json.Unmarshal(body, &resp); err != nil {
		t.Fatal(err)
	}
	if !resp.Ready || resp.Depth != s.cfg.QueueDepth {
		t.Fatalf("readyz payload: %+v", resp)
	}

	// Not ready while the job log replays.
	s.ready.Store(false)
	code, body = getPath(t, h, "/readyz")
	s.ready.Store(true)
	if code != http.StatusServiceUnavailable || !strings.Contains(string(body), "replaying") {
		t.Fatalf("readyz during replay: %d %s", code, body)
	}
}

func TestJobsListEndpoint(t *testing.T) {
	s := clusterServer(t)
	h := s.Handler()
	var subs []Job
	for i := 0; i < 3; i++ {
		subs = append(subs, submitTenantJob(t, h, fmt.Sprintf("list-%d", i), ""))
	}
	for _, j := range subs {
		pollTerminal(t, h, j.ID, time.Minute)
	}

	code, body := getPath(t, h, "/v1/jobs?advisor=Drop&dataset=tpch")
	if code != http.StatusOK {
		t.Fatalf("list: %d %s", code, body)
	}
	var resp jobListResponse
	if err := json.Unmarshal(body, &resp); err != nil {
		t.Fatal(err)
	}
	if len(resp.Jobs) < 3 {
		t.Fatalf("list returned %d jobs, want >= 3", len(resp.Jobs))
	}
	for i := 1; i < len(resp.Jobs); i++ {
		if jobNum(resp.Jobs[i].ID) <= jobNum(resp.Jobs[i-1].ID) {
			t.Fatalf("list out of order: %s then %s", resp.Jobs[i-1].ID, resp.Jobs[i].ID)
		}
	}

	// Cursor pagination walks the same set page by page with no overlap.
	var paged []string
	cursor := ""
	for {
		path := "/v1/jobs?limit=2"
		if cursor != "" {
			path += "&cursor=" + cursor
		}
		code, body := getPath(t, h, path)
		if code != http.StatusOK {
			t.Fatalf("page: %d %s", code, body)
		}
		var page jobListResponse
		if err := json.Unmarshal(body, &page); err != nil {
			t.Fatal(err)
		}
		if len(page.Jobs) > 2 {
			t.Fatalf("page exceeds limit: %d jobs", len(page.Jobs))
		}
		for _, j := range page.Jobs {
			paged = append(paged, j.ID)
		}
		if page.NextCursor == "" {
			break
		}
		cursor = page.NextCursor
	}
	if len(paged) != len(s.jobs.list()) {
		t.Fatalf("pagination saw %d jobs, store has %d", len(paged), len(s.jobs.list()))
	}
	seen := map[string]bool{}
	for _, id := range paged {
		if seen[id] {
			t.Fatalf("pagination returned %s twice", id)
		}
		seen[id] = true
	}

	// Status filter: every listed job matches; a bogus status is a 400.
	code, body = getPath(t, h, "/v1/jobs?status=done")
	if code != http.StatusOK {
		t.Fatalf("status filter: %d %s", code, body)
	}
	var doneOnly jobListResponse
	if err := json.Unmarshal(body, &doneOnly); err != nil {
		t.Fatal(err)
	}
	if len(doneOnly.Jobs) == 0 {
		t.Fatal("no done jobs listed after three completed")
	}
	for _, j := range doneOnly.Jobs {
		if j.Status != JobDone {
			t.Fatalf("status filter leaked %s job %s", j.Status, j.ID)
		}
	}
	if code, _ := getPath(t, h, "/v1/jobs?status=bogus"); code != http.StatusBadRequest {
		t.Fatalf("bogus status filter: %d, want 400", code)
	}
	if code, _ := getPath(t, h, "/v1/jobs?cursor=nope"); code != http.StatusBadRequest {
		t.Fatalf("bogus cursor: %d, want 400", code)
	}
}

func TestTenantQuota(t *testing.T) {
	s := clusterServer(t)
	h := s.Handler()

	// Burst of 2 admits; the third submission inside the same second is
	// shed with 429 and a whole-second Retry-After.
	submitTenantJob(t, h, "quota-hog", "")
	submitTenantJob(t, h, "quota-hog", "")
	code, hdr, body := postJSONHdr(t, h, "/v1/assess",
		assessRequest{Dataset: "tpch", Advisor: "Drop", Method: "Random"},
		map[string]string{"X-Trap-Tenant": "quota-hog"})
	if code != http.StatusTooManyRequests {
		t.Fatalf("over-quota submit: %d %s", code, body)
	}
	ra := hdr.Get("Retry-After")
	if ra == "" {
		t.Fatal("429 has no Retry-After")
	}
	var secs int
	if _, err := fmt.Sscanf(ra, "%d", &secs); err != nil || secs < 1 {
		t.Fatalf("Retry-After %q, want a positive whole-second count", ra)
	}

	// A different tenant is unaffected by the hog.
	submitTenantJob(t, h, "quota-bystander", "")
	metricAtLeast(t, h, "trapd_shed_quota_total", 1)
}

func TestPriorityHeaderValidation(t *testing.T) {
	h := clusterServer(t).Handler()
	code, _, body := postJSONHdr(t, h, "/v1/assess",
		assessRequest{Dataset: "tpch", Advisor: "Drop", Method: "Random"},
		map[string]string{"X-Trap-Tenant": "prio-bad", "X-Trap-Priority": "urgent"})
	if code != http.StatusBadRequest {
		t.Fatalf("bad priority header: %d %s", code, body)
	}
	j := submitTenantJob(t, h, "prio-ok", "interactive")
	if j.Priority != "interactive" {
		t.Fatalf("job priority = %q, want interactive", j.Priority)
	}
}

// TestWorkerPoolPriorityOrder pins the scheduling contract: with the
// single worker busy, interactive submissions overtake batch ones that
// were queued first.
func TestWorkerPoolPriorityOrder(t *testing.T) {
	block := make(chan struct{})
	var mu sync.Mutex
	var order []string
	ran := make(chan string, 8)
	p := newWorkerPool(1, 8, func(id string) {
		if id == "gate" {
			<-block
			return
		}
		mu.Lock()
		order = append(order, id)
		mu.Unlock()
		ran <- id
	})
	if err := p.submit("gate", admission.Batch); err != nil {
		t.Fatal(err)
	}
	// Queue while the worker is blocked: batch first, interactive after.
	for _, sub := range []struct {
		id  string
		pri admission.Priority
	}{
		{"b1", admission.Batch}, {"b2", admission.Batch},
		{"i1", admission.Interactive}, {"i2", admission.Interactive},
	} {
		if err := p.submit(sub.id, sub.pri); err != nil {
			t.Fatal(err)
		}
	}
	close(block)
	for i := 0; i < 4; i++ {
		select {
		case <-ran:
		case <-time.After(5 * time.Second):
			t.Fatal("pool stalled")
		}
	}
	mu.Lock()
	got := strings.Join(order, ",")
	mu.Unlock()
	if got != "i1,i2,b1,b2" {
		t.Fatalf("dequeue order %s, want i1,i2,b1,b2", got)
	}
	ctx, cancel := context.WithTimeout(context.Background(), time.Second)
	defer cancel()
	p.shutdown(ctx)
}

// sseFrame is one parsed Server-Sent Event.
type sseFrame struct {
	ID    int64
	Event string
	Data  JobEvent
}

// readSSE consumes SSE frames from r until EOF (the server closes the
// stream at the job's terminal state) or the limit is hit.
func readSSE(t *testing.T, r io.Reader, limit int) []sseFrame {
	t.Helper()
	var frames []sseFrame
	var cur sseFrame
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		line := sc.Text()
		switch {
		case line == "":
			if cur.Event != "" {
				frames = append(frames, cur)
				if len(frames) >= limit {
					return frames
				}
			}
			cur = sseFrame{}
		case strings.HasPrefix(line, ": "): // heartbeat comment
		case strings.HasPrefix(line, "id: "):
			fmt.Sscanf(line, "id: %d", &cur.ID)
		case strings.HasPrefix(line, "event: "):
			cur.Event = strings.TrimPrefix(line, "event: ")
		case strings.HasPrefix(line, "data: "):
			if err := json.Unmarshal([]byte(strings.TrimPrefix(line, "data: ")), &cur.Data); err != nil {
				t.Fatalf("bad SSE data %q: %v", line, err)
			}
		}
	}
	return frames
}

// TestSSEStreamAndResume runs a training job against a real listener,
// consumes its full progress stream, then replays the stream from the
// middle with Last-Event-ID and checks the resumed view is a suffix.
func TestSSEStreamAndResume(t *testing.T) {
	s := clusterServer(t)
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	// GRU RL-trains, so the stream carries epoch events.
	j := submitTenantJob(t, s.Handler(), "sse", "")
	resp, err := http.Get(ts.URL + "/v1/jobs/" + j.ID + "/events")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("events: %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "text/event-stream" {
		t.Fatalf("content type %q", ct)
	}
	frames := readSSE(t, resp.Body, 10_000)
	if len(frames) < 3 {
		t.Fatalf("stream carried %d frames, want at least pending/running/terminal", len(frames))
	}
	for i := 1; i < len(frames); i++ {
		if frames[i].ID != frames[i-1].ID+1 {
			t.Fatalf("non-contiguous event IDs: %d then %d", frames[i-1].ID, frames[i].ID)
		}
	}
	var sawRunning, sawCell, sawResult bool
	var last sseFrame
	for _, f := range frames {
		switch f.Event {
		case evState:
			if f.Data.Status == JobRunning {
				sawRunning = true
			}
		case evCell:
			sawCell = true
			if f.Data.Workload == nil {
				t.Error("cell event without workload index")
			}
		case evResult:
			sawResult = true
			if f.Data.Result == nil || f.Data.Result.Pairs == 0 {
				t.Errorf("result event payload: %+v", f.Data.Result)
			}
		}
		last = f
	}
	if !sawRunning || !sawResult {
		t.Fatalf("stream missing lifecycle events (running=%v result=%v) in %d frames",
			sawRunning, sawResult, len(frames))
	}
	if !sawCell {
		t.Error("stream carried no cell progress events")
	}
	if last.Event != evResult && (last.Event != evState || !last.Data.Status.terminal()) {
		t.Fatalf("stream did not end at a terminal event: %+v", last)
	}

	// Reconnect with Last-Event-ID halfway: the replay must be exactly
	// the suffix after that ID (the job is terminal, so the stream is
	// the retained backlog and then EOF).
	mid := frames[len(frames)/2]
	req, err := http.NewRequest("GET", ts.URL+"/v1/jobs/"+j.ID+"/events", nil)
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Last-Event-ID", fmt.Sprint(mid.ID))
	resp2, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp2.Body.Close()
	resumed := readSSE(t, resp2.Body, 10_000)
	want := frames[len(frames)/2+1:]
	if len(resumed) != len(want) {
		t.Fatalf("resume replayed %d frames, want %d", len(resumed), len(want))
	}
	for i := range resumed {
		if resumed[i].ID != want[i].ID || resumed[i].Event != want[i].Event {
			t.Fatalf("resume frame %d: got (%d,%s), want (%d,%s)",
				i, resumed[i].ID, resumed[i].Event, want[i].ID, want[i].Event)
		}
	}

	// Unknown job and bad Last-Event-ID are clean errors.
	if code, _ := getPath(t, s.Handler(), "/v1/jobs/job-999999/events"); code != http.StatusNotFound {
		t.Fatalf("events for unknown job: %d", code)
	}
	req2, _ := http.NewRequest("GET", ts.URL+"/v1/jobs/"+j.ID+"/events", nil)
	req2.Header.Set("Last-Event-ID", "third")
	resp3, err := http.DefaultClient.Do(req2)
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp3.Body)
	resp3.Body.Close()
	if resp3.StatusCode != http.StatusBadRequest {
		t.Fatalf("bad Last-Event-ID: %d", resp3.StatusCode)
	}
}

// TestJobLogReplayRestores exercises the in-process restart path: a
// terminal job survives a restart queryable under its original ID, and
// an interrupted (still running when the log closed) job is re-enqueued
// and finishes on the restarted server.
func TestJobLogReplayRestores(t *testing.T) {
	dir := t.TempDir()
	mk := func() *Server {
		return newFaultServer(t, func(c *Config) {
			c.Workers = 1
			c.JobLogDir = dir
			c.Injector = faultinject.NewSeeded(1, faultinject.Rule{
				Point: faultinject.PointRLWorkload, Action: faultinject.ActDelay,
				Every: 1, Delay: 200 * time.Millisecond,
			})
		})
	}
	s1 := mk()
	h1 := s1.Handler()
	done := pollTerminal(t, h1, submitJob(t, h1, "Drop", "Random").ID, time.Minute)
	if done.Status != JobDone {
		t.Fatalf("first job ended %s", done.Status)
	}
	// A GRU job slowed by the injector is still running when we cut the
	// log — the restart must treat it as interrupted.
	running := submitJob(t, h1, "Drop", "GRU")
	waitForJob(t, h1, running.ID, JobRunning, 30*time.Second)
	if err := s1.Close(); err != nil {
		t.Fatal(err)
	}

	s2 := mk()
	h2 := s2.Handler()
	defer s2.Close()

	// The terminal job is back, same ID, same result.
	got, ok := s2.jobs.get(done.ID)
	if !ok {
		t.Fatalf("terminal job %s not restored", done.ID)
	}
	if got.Status != JobDone || got.Result == nil || got.Result.MeanIUDR != done.Result.MeanIUDR {
		t.Fatalf("restored job mismatch: %+v vs %+v", got, done)
	}

	// The interrupted job was re-enqueued and completes.
	rj := pollTerminal(t, h2, running.ID, 2*time.Minute)
	if rj.Status != JobDone {
		t.Fatalf("restored job ended %s (%s)", rj.Status, rj.Error)
	}
	if !rj.Restored {
		t.Error("re-enqueued job not flagged Restored")
	}
	metricAtLeast(t, h2, "trapd_jobs_restored_total", 1)

	// New submissions never collide with restored IDs.
	fresh := submitJob(t, h2, "Drop", "Random")
	if jobNum(fresh.ID) <= jobNum(running.ID) {
		t.Fatalf("fresh job ID %s not past restored %s", fresh.ID, running.ID)
	}
	pollTerminal(t, h2, fresh.ID, time.Minute)
}

// TestCancelGCNoResurrectionNoLeak covers the GC/cancel interplay: a
// job canceled and then garbage-collected leaves nothing behind — no
// job-log resurrection on restart, no event hub, and no goroutines.
func TestCancelGCNoResurrectionNoLeak(t *testing.T) {
	dir := t.TempDir()
	s := newFaultServer(t, func(c *Config) {
		c.Workers = 1
		c.JobLogDir = dir
		c.JobTTL = time.Millisecond
		c.Injector = faultinject.NewSeeded(1, faultinject.Rule{
			Point: faultinject.PointRLWorkload, Action: faultinject.ActDelay,
			Every: 1, Delay: 200 * time.Millisecond,
		})
	})
	h := s.Handler()
	baseline := runtime.NumGoroutine()

	// Keep the single worker busy so the second job stays pending, then
	// cancel both: one mid-run, one before start.
	runningJob := submitJob(t, h, "Drop", "GRU")
	waitForJob(t, h, runningJob.ID, JobRunning, 30*time.Second)
	pendingJob := submitJob(t, h, "Drop", "Random")

	// A subscriber is attached when the cancel lands: its stream must
	// end, not leak.
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	resp, err := http.Get(ts.URL + "/v1/jobs/" + runningJob.ID + "/events")
	if err != nil {
		t.Fatal(err)
	}
	streamDone := make(chan struct{})
	go func() {
		defer close(streamDone)
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
	}()

	if code, _ := deletePath(t, h, "/v1/jobs/"+pendingJob.ID); code != http.StatusAccepted {
		t.Fatal("cancel pending failed")
	}
	if code, _ := deletePath(t, h, "/v1/jobs/"+runningJob.ID); code != http.StatusAccepted {
		t.Fatal("cancel running failed")
	}
	for _, id := range []string{runningJob.ID, pendingJob.ID} {
		if j := pollTerminal(t, h, id, time.Minute); j.Status != JobCanceled {
			t.Fatalf("job %s ended %s, want canceled", id, j.Status)
		}
	}
	select {
	case <-streamDone:
	case <-time.After(10 * time.Second):
		t.Fatal("SSE stream of the canceled job never ended")
	}

	// GC both canceled jobs (TTL 1ms is long past).
	if n := s.collectGarbage(context.Background(), time.Now().Add(time.Hour)); n != 2 {
		t.Fatalf("gc dropped %d jobs, want 2", n)
	}
	if code, _ := getPath(t, h, "/v1/jobs/"+pendingJob.ID); code != http.StatusNotFound {
		t.Fatal("GC'd job still queryable")
	}
	if s.events.get(runningJob.ID) != nil || s.events.get(pendingJob.ID) != nil {
		t.Fatal("GC'd jobs still hold event hubs")
	}

	ctx, cancel := context.WithTimeout(context.Background(), time.Minute)
	defer cancel()
	s.Drain(ctx)
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	ts.Close()

	// Everything the canceled jobs spawned has exited (workers, job
	// goroutines, SSE plumbing). The drained pool's workers are gone
	// too, so the count settles at or below the post-build baseline.
	deadline := time.Now().Add(15 * time.Second)
	for {
		runtime.GC()
		if n := runtime.NumGoroutine(); n <= baseline {
			break
		} else if time.Now().After(deadline) {
			t.Fatalf("goroutines leaked: %d now vs %d baseline", n, baseline)
		}
		time.Sleep(50 * time.Millisecond)
	}

	// A restart over the same log must not resurrect the GC'd jobs.
	s2 := newFaultServer(t, func(c *Config) { c.JobLogDir = dir })
	defer s2.Close()
	if n := s2.jobs.size(); n != 0 {
		t.Fatalf("restart resurrected %d GC'd jobs: %+v", n, s2.jobs.list())
	}
}

// crashChildEnv carries "joblogDir:spoolDir" to the crash-test child.
const crashChildEnv = "TRAPD_CRASH_DIRS"

// crashParams are shared by the crash child, the restarted server and
// the uninterrupted reference so all three build bit-identical suites.
func crashParams() Config {
	p := tinyParams()
	p.RLEpochs = 4
	return Config{
		Datasets:   []string{"tpch"},
		Params:     p,
		Seed:       31,
		Workers:    1,
		QueueDepth: 4,
		JobTimeout: 5 * time.Minute,
		Registry:   obs.NewRegistry(),
		Logf:       func(string, ...any) {},
	}
}

// TestCrashReplayChild is the subprocess body of TestCrashReplayResume:
// it submits one GRU assessment with the durable log and checkpoint
// spool armed, then idles until the parent SIGKILLs it mid-epoch.
func TestCrashReplayChild(t *testing.T) {
	dirs := os.Getenv(crashChildEnv)
	if dirs == "" {
		t.Skip("crash-test child, driven by TestCrashReplayResume")
	}
	parts := strings.SplitN(dirs, ":", 2)
	cfg := crashParams()
	cfg.JobLogDir = parts[0]
	cfg.SpoolDir = parts[1]
	cfg.CheckpointEvery = 1
	// Stretch every epoch so the parent's SIGKILL lands mid-training,
	// after at least one checkpoint. Delays do not change any results.
	cfg.Injector = faultinject.NewSeeded(1, faultinject.Rule{
		Point: faultinject.PointRLEpoch, Action: faultinject.ActDelay,
		Every: 1, Delay: 500 * time.Millisecond,
	})
	s, err := NewServer(cfg)
	if err != nil {
		t.Fatal(err)
	}
	submitJob(t, s.Handler(), "Drop", "GRU")
	time.Sleep(5 * time.Minute) // killed long before this expires
}

// TestCrashReplayResume is the end-to-end durability proof: a child
// process is SIGKILLed mid-epoch; a restarted server on the same
// -joblog/-spool re-enqueues the interrupted job, resumes it from the
// checkpoint, and produces a result bit-identical to an uninterrupted
// run with the same seed (the service-level analogue of core's
// TestCheckpointResumeEquivalence).
func TestCrashReplayResume(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns a subprocess and builds three suites")
	}
	base := t.TempDir()
	jdir := filepath.Join(base, "joblog")
	sdir := filepath.Join(base, "spool")

	cmd := exec.Command(os.Args[0], "-test.run=^TestCrashReplayChild$")
	cmd.Env = append(os.Environ(), crashChildEnv+"="+jdir+":"+sdir)
	var childOut bytes.Buffer
	cmd.Stdout, cmd.Stderr = &childOut, &childOut
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	// SIGKILL once the first checkpoint hits the spool: training is
	// mid-flight, the job log says "running", and there is state to
	// resume from. No graceful path runs — this is a process death.
	deadline := time.Now().Add(2 * time.Minute)
	for {
		if ckpts, _ := filepath.Glob(filepath.Join(sdir, "*.ckpt")); len(ckpts) > 0 {
			break
		}
		if time.Now().After(deadline) {
			cmd.Process.Kill()
			cmd.Wait()
			t.Fatalf("child produced no checkpoint; output:\n%s", childOut.String())
		}
		time.Sleep(20 * time.Millisecond)
	}
	if err := cmd.Process.Kill(); err != nil {
		t.Fatal(err)
	}
	cmd.Wait() // expected to die on the signal

	// Restart on the same joblog + spool: the interrupted job comes back
	// pending with Restored set and runs to completion.
	cfg := crashParams()
	cfg.JobLogDir = jdir
	cfg.SpoolDir = sdir
	cfg.CheckpointEvery = 1
	s, err := NewServer(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	h := s.Handler()
	jobs := s.jobs.list()
	if len(jobs) != 1 {
		t.Fatalf("restart restored %d jobs, want 1: %+v", len(jobs), jobs)
	}
	resumed := pollTerminal(t, h, jobs[0].ID, 3*time.Minute)
	if resumed.Status != JobDone {
		t.Fatalf("restored job ended %s (%s)", resumed.Status, resumed.Error)
	}
	if !resumed.Restored {
		t.Error("job not flagged Restored after crash replay")
	}
	if !resumed.Resumed {
		t.Error("job did not resume from the spooled checkpoint")
	}
	metricAtLeast(t, h, "trapd_checkpoints_resumed_total", 1)

	// Reference: the same assessment, same seed, uninterrupted, in a
	// fresh server. Bit-identical means the crash was invisible.
	ref, err := NewServer(crashParams())
	if err != nil {
		t.Fatal(err)
	}
	rh := ref.Handler()
	refJob := pollTerminal(t, rh, submitJob(t, rh, "Drop", "GRU").ID, 3*time.Minute)
	if refJob.Status != JobDone {
		t.Fatalf("reference job ended %s (%s)", refJob.Status, refJob.Error)
	}
	if resumed.Result.MeanIUDR != refJob.Result.MeanIUDR ||
		resumed.Result.Pairs != refJob.Result.Pairs ||
		resumed.Result.Workloads != refJob.Result.Workloads {
		t.Fatalf("crash-resumed result differs from uninterrupted run:\n  resumed:   %+v\n  reference: %+v",
			resumed.Result, refJob.Result)
	}
}
