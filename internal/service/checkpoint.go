package service

import (
	"bytes"
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"os"
	"path/filepath"

	"github.com/trap-repro/trap/internal/core"
)

// ckptStore spools RL-training checkpoints to disk so a canceled,
// crashed or retried assessment job resumes from its last completed
// epoch instead of from scratch. Checkpoints are keyed by the job's
// assessment identity (dataset, advisor, method, constraint and the
// server seed): an identical resubmission finds the same spool file.
// Files are written atomically (temp + rename) so a crash mid-write
// never leaves a truncated checkpoint behind; a stale or corrupt file
// just falls back to fresh training.
type ckptStore struct {
	dir  string
	seed int64
}

// newCkptStore prepares the spool directory (created if missing).
func newCkptStore(dir string, seed int64) (*ckptStore, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("service: spool dir: %w", err)
	}
	return &ckptStore{dir: dir, seed: seed}, nil
}

// path derives the spool file for a job's assessment identity.
func (c *ckptStore) path(j Job) string {
	key := fmt.Sprintf("%s|%s|%s|%s|%d", j.Dataset, j.Advisor, j.Method, j.Constraint, c.seed)
	sum := sha256.Sum256([]byte(key))
	return filepath.Join(c.dir, hex.EncodeToString(sum[:16])+".ckpt")
}

// load reads the spooled checkpoint for a job, if any.
func (c *ckptStore) load(j Job) ([]byte, error) {
	return os.ReadFile(c.path(j))
}

// save atomically writes a checkpoint for the job after doneEpochs
// completed RL epochs.
func (c *ckptStore) save(j Job, fw *core.Framework, doneEpochs int) error {
	var buf bytes.Buffer
	if err := fw.SaveCheckpoint(&buf, doneEpochs); err != nil {
		return err
	}
	tmp, err := os.CreateTemp(c.dir, ".ckpt-*")
	if err != nil {
		return err
	}
	if _, err := tmp.Write(buf.Bytes()); err != nil {
		tmp.Close()
		os.Remove(tmp.Name())
		return err
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmp.Name())
		return err
	}
	return os.Rename(tmp.Name(), c.path(j))
}

// remove drops the job's checkpoint (called when the job completes, so
// a later identical submission trains from scratch).
func (c *ckptStore) remove(j Job) {
	_ = os.Remove(c.path(j))
}
