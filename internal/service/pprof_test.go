package service

import (
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
)

// TestPprofGatedOff: the default server must not expose profiling
// endpoints — /debug/pprof/ is an unknown route without EnablePprof.
func TestPprofGatedOff(t *testing.T) {
	h := testServer(t).Handler()
	code, _ := getPath(t, h, "/debug/pprof/")
	if code != http.StatusNotFound {
		t.Fatalf("GET /debug/pprof/ without EnablePprof = %d, want 404", code)
	}
}

// TestPprofEnabled: with EnablePprof the endpoints are mounted. Routing
// depends only on the config, so the test wires a bare mux instead of
// paying for a second suite build.
func TestPprofEnabled(t *testing.T) {
	s := &Server{cfg: Config{EnablePprof: true}, mux: http.NewServeMux()}
	s.routes()
	for _, path := range []string{"/debug/pprof/", "/debug/pprof/cmdline"} {
		rec := httptest.NewRecorder()
		s.mux.ServeHTTP(rec, httptest.NewRequest("GET", path, nil))
		if rec.Code != http.StatusOK {
			t.Errorf("GET %s with EnablePprof = %d, want 200", path, rec.Code)
		}
	}
	rec := httptest.NewRecorder()
	s.mux.ServeHTTP(rec, httptest.NewRequest("GET", "/debug/pprof/", nil))
	if !strings.Contains(rec.Body.String(), "profile") {
		t.Error("pprof index does not list profiles")
	}
}
