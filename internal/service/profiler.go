package service

import (
	"context"
	"fmt"
	"net/http"
	"os"
	"path/filepath"
	"regexp"
	"runtime/pprof"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"github.com/trap-repro/trap/internal/obs"
	olog "github.com/trap-repro/trap/internal/obs/log"
	"github.com/trap-repro/trap/internal/trace"
)

// Continuous profiling: with Config.ProfileDir set, the server hooks
// the tracer's span-end stream and, whenever any traced span runs
// longer than Config.ProfileThreshold, captures a heap profile of the
// moment plus a short CPU profile of the window right after it — the
// tail of a slow training epoch or measurement cell is usually still
// executing the same code the span spent its time in. Captures are
// retained ProfileKeep-deep (oldest pruned), indexed by
// GET /v1/profiles and downloadable one by one, so a slow span seen
// hours ago still has its profile on disk.
//
// A single in-flight gate (busy) makes the capture path cheap on the
// span hot path: a threshold breach while a capture is running is
// counted and skipped, never queued.

// profileCapture is one retained capture in the /v1/profiles index.
type profileCapture struct {
	// Name is the capture's ID and file-name stem (heap: <Name>.heap.pb.gz,
	// CPU: <Name>.cpu.pb.gz).
	Name string `json:"name"`
	// Span and DurMilli identify the slow span that triggered the capture.
	Span     string    `json:"span"`
	DurMilli int64     `json:"durMs"`
	At       time.Time `json:"at"`
	// Files lists the capture's downloadable profile files.
	Files []string `json:"files"`
}

type profiler struct {
	dir       string
	threshold time.Duration
	keep      int
	cpuWindow time.Duration
	log       *olog.Logger

	busy atomic.Bool

	mu       sync.Mutex
	captures []profileCapture // newest last
	seq      int64

	mTriggered *obs.Counter
	mSkipped   *obs.Counter
}

func newProfiler(cfg Config, reg *obs.Registry, log *olog.Logger) (*profiler, error) {
	if err := os.MkdirAll(cfg.ProfileDir, 0o755); err != nil {
		return nil, fmt.Errorf("service: profile dir: %w", err)
	}
	p := &profiler{
		dir:        cfg.ProfileDir,
		threshold:  cfg.ProfileThreshold,
		keep:       cfg.ProfileKeep,
		cpuWindow:  cfg.ProfileCPUWindow,
		log:        log,
		mTriggered: reg.Counter("trapd_profile_captures_total"),
		mSkipped:   reg.Counter("trapd_profile_skipped_total"),
	}
	reg.Describe("trapd_profile_captures_total",
		"Profile captures triggered by spans over the latency threshold.")
	reg.Describe("trapd_profile_skipped_total",
		"Threshold breaches skipped because a capture was already in flight.")
	return p, nil
}

// onSpanEnd is the tracer hook: called for every finished span.
func (p *profiler) onSpanEnd(se trace.SpanEnd) {
	if se.Dur < p.threshold {
		return
	}
	if !p.busy.CompareAndSwap(false, true) {
		p.mSkipped.Inc()
		return
	}
	go p.capture(se)
}

// capture writes the heap profile immediately, then profiles CPU for
// the configured window, then prunes past the retention depth.
func (p *profiler) capture(se trace.SpanEnd) {
	defer p.busy.Store(false)
	p.mu.Lock()
	p.seq++
	name := fmt.Sprintf("cap-%d", p.seq)
	p.mu.Unlock()

	c := profileCapture{
		Name: name, Span: se.Name, DurMilli: se.Dur.Milliseconds(), At: time.Now(),
	}
	ctx := context.Background()
	heapFile := name + ".heap.pb.gz"
	if err := p.writeHeap(filepath.Join(p.dir, heapFile)); err != nil {
		p.log.Warn(ctx, "trapd: heap profile capture failed", "err", err)
	} else {
		c.Files = append(c.Files, heapFile)
	}
	cpuFile := name + ".cpu.pb.gz"
	if err := p.writeCPU(filepath.Join(p.dir, cpuFile)); err != nil {
		// StartCPUProfile fails if something else (e.g. /debug/pprof)
		// is already profiling; the heap capture alone is still useful.
		p.log.Warn(ctx, "trapd: cpu profile capture failed", "err", err)
	} else {
		c.Files = append(c.Files, cpuFile)
	}
	p.mTriggered.Inc()

	p.mu.Lock()
	p.captures = append(p.captures, c)
	var pruned []profileCapture
	if over := len(p.captures) - p.keep; over > 0 {
		pruned = append(pruned, p.captures[:over]...)
		p.captures = append(p.captures[:0], p.captures[over:]...)
	}
	p.mu.Unlock()
	for _, old := range pruned {
		for _, f := range old.Files {
			_ = os.Remove(filepath.Join(p.dir, f))
		}
	}
	p.log.Info(ctx, "trapd: slow span profiled",
		"span", se.Name, "dur", se.Dur.Round(time.Millisecond), "capture", name)
}

func (p *profiler) writeHeap(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	return pprof.Lookup("heap").WriteTo(f, 0)
}

func (p *profiler) writeCPU(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	if err := pprof.StartCPUProfile(f); err != nil {
		return err
	}
	time.Sleep(p.cpuWindow)
	pprof.StopCPUProfile()
	return nil
}

// index snapshots the retained captures, newest first.
func (p *profiler) index() []profileCapture {
	p.mu.Lock()
	defer p.mu.Unlock()
	out := make([]profileCapture, len(p.captures))
	copy(out, p.captures)
	sort.Slice(out, func(i, j int) bool { return out[i].At.After(out[j].At) })
	return out
}

// has reports whether file belongs to a retained capture — the gate
// that keeps /v1/profiles/{file} from serving anything else.
func (p *profiler) has(file string) bool {
	p.mu.Lock()
	defer p.mu.Unlock()
	for _, c := range p.captures {
		for _, f := range c.Files {
			if f == file {
				return true
			}
		}
	}
	return false
}

// GET /v1/profiles

type profilesResponse struct {
	Captures []profileCapture `json:"captures"`
}

func (s *Server) handleProfiles(w http.ResponseWriter, r *http.Request) {
	if s.prof == nil {
		writeError(w, http.StatusNotFound, "continuous profiling not enabled (no -profile-dir)")
		return
	}
	writeJSON(w, http.StatusOK, profilesResponse{Captures: s.prof.index()})
}

// profileFileName allows exactly the names the profiler generates.
var profileFileName = regexp.MustCompile(`^cap-\d+\.(heap|cpu)\.pb\.gz$`)

// GET /v1/profiles/{file}
func (s *Server) handleProfileFile(w http.ResponseWriter, r *http.Request) {
	if s.prof == nil {
		writeError(w, http.StatusNotFound, "continuous profiling not enabled (no -profile-dir)")
		return
	}
	file := r.PathValue("file")
	if !profileFileName.MatchString(file) || !s.prof.has(file) {
		writeError(w, http.StatusNotFound, "unknown profile %q", file)
		return
	}
	w.Header().Set("Content-Type", "application/octet-stream")
	http.ServeFile(w, r, filepath.Join(s.prof.dir, file))
}
