package service

import (
	"encoding/json"
	"fmt"
	"net/http"
	"sync"
	"time"
)

// JobEvent is one entry in a job's progress stream, delivered over
// GET /v1/jobs/{id}/events as a Server-Sent Event. Seq is the SSE event
// ID: clients resume after a disconnect by replaying it back in the
// Last-Event-ID header.
type JobEvent struct {
	Seq  int64     `json:"seq"`
	Type string    `json:"type"`
	Time time.Time `json:"time"`
	// Status accompanies "state" events.
	Status JobStatus `json:"status,omitempty"`
	// Epoch accompanies "epoch" events (1-based: epochs completed).
	Epoch int `json:"epoch,omitempty"`
	// Workload and Pairs accompany "cell" events (one measurement cell
	// finished). Workload is a pointer so index 0 survives omitempty.
	Workload *int `json:"workload,omitempty"`
	Pairs    int  `json:"pairs,omitempty"`
	// Error accompanies terminal "state" events of failed jobs.
	Error string `json:"error,omitempty"`
	// Result accompanies the "result" event of a successful job.
	Result *JobResult `json:"result,omitempty"`
	// Points accompanies "telemetry" events: the epoch's training-series
	// values (rl_loss, rl_mean_reward, ...) keyed by series name.
	Points map[string]float64 `json:"points,omitempty"`
}

// Progress-stream event types.
const (
	evState     = "state"     // lifecycle transition (pending/running/terminal)
	evEpoch     = "epoch"     // one RL training epoch finished
	evCell      = "cell"      // one measurement cell finished
	evResult    = "result"    // final result of a successful job
	evTelemetry = "telemetry" // per-epoch training-series values
)

// jobHub fans one job's events out to its SSE subscribers. It keeps a
// bounded backlog so a client that reconnects with Last-Event-ID can
// catch up on everything it missed (until the backlog overflows, at
// which point the oldest events are gone and the client restarts from
// the oldest retained one).
type jobHub struct {
	mu      sync.Mutex
	base    int64 // Seq of backlog[0]
	backlog []JobEvent
	subs    map[chan JobEvent]struct{}
	closed  bool
}

const (
	// hubBacklog bounds the per-job replay buffer.
	hubBacklog = 1024
	// subBuffer is each subscriber's channel depth; a consumer that
	// falls this far behind is evicted (its channel is closed) rather
	// than allowed to block the publisher.
	subBuffer = 256
)

func newJobHub() *jobHub {
	return &jobHub{base: 1, subs: map[chan JobEvent]struct{}{}}
}

// publish appends the event to the backlog (assigning its Seq) and
// fans it out. Slow subscribers are evicted, never waited on.
func (h *jobHub) publish(ev JobEvent) {
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.closed {
		return
	}
	ev.Seq = h.base + int64(len(h.backlog))
	ev.Time = time.Now()
	h.backlog = append(h.backlog, ev)
	if over := len(h.backlog) - hubBacklog; over > 0 {
		h.backlog = append(h.backlog[:0], h.backlog[over:]...)
		h.base += int64(over)
	}
	for ch := range h.subs {
		select {
		case ch <- ev:
		default:
			delete(h.subs, ch)
			close(ch)
		}
	}
}

// subscribe returns the retained events after seq `after` (0 replays
// the whole backlog) plus a live channel, or a nil channel when the hub
// is closed (the job is terminal: the backlog is all there will be).
func (h *jobHub) subscribe(after int64) ([]JobEvent, chan JobEvent) {
	h.mu.Lock()
	defer h.mu.Unlock()
	var replay []JobEvent
	if idx := after - h.base + 1; idx < int64(len(h.backlog)) {
		if idx < 0 {
			idx = 0
		}
		replay = append(replay, h.backlog[idx:]...)
	}
	if h.closed {
		return replay, nil
	}
	ch := make(chan JobEvent, subBuffer)
	h.subs[ch] = struct{}{}
	return replay, ch
}

// unsubscribe removes the channel (eviction may have removed it first).
func (h *jobHub) unsubscribe(ch chan JobEvent) {
	h.mu.Lock()
	defer h.mu.Unlock()
	if _, ok := h.subs[ch]; ok {
		delete(h.subs, ch)
		close(ch)
	}
}

// closeHub marks the stream complete: live subscribers are closed (the
// handler then ends the response) and future subscribers get only the
// backlog.
func (h *jobHub) closeHub() {
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.closed {
		return
	}
	h.closed = true
	for ch := range h.subs {
		delete(h.subs, ch)
		close(ch)
	}
}

// eventBus owns the per-job hubs.
type eventBus struct {
	mu   sync.Mutex
	hubs map[string]*jobHub
}

func newEventBus() *eventBus {
	return &eventBus{hubs: map[string]*jobHub{}}
}

// create registers a hub for a new job (idempotent).
func (b *eventBus) create(id string) *jobHub {
	b.mu.Lock()
	defer b.mu.Unlock()
	if h, ok := b.hubs[id]; ok {
		return h
	}
	h := newJobHub()
	b.hubs[id] = h
	return h
}

// get returns the job's hub, if any.
func (b *eventBus) get(id string) *jobHub {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.hubs[id]
}

// publish sends an event on the job's hub (no-op for unknown jobs).
func (b *eventBus) publish(id string, ev JobEvent) {
	if h := b.get(id); h != nil {
		h.publish(ev)
	}
}

// closeHub finalizes the job's stream, keeping the backlog readable.
func (b *eventBus) closeHub(id string) {
	if h := b.get(id); h != nil {
		h.closeHub()
	}
}

// drop removes the job's hub entirely (the job was GC'd).
func (b *eventBus) drop(id string) {
	b.mu.Lock()
	h := b.hubs[id]
	delete(b.hubs, id)
	b.mu.Unlock()
	if h != nil {
		h.closeHub()
	}
}

// size returns the number of live hubs (the SSE gauge).
func (b *eventBus) size() int {
	b.mu.Lock()
	defer b.mu.Unlock()
	return len(b.hubs)
}

// GET /v1/jobs/{id}/events
//
// handleJobEvents streams a job's progress as Server-Sent Events:
// "state" on lifecycle transitions, "epoch" per finished training
// epoch, "cell" per finished measurement cell, and "result" once. The
// stream ends when the job reaches a terminal state. Reconnecting
// clients send the standard Last-Event-ID header (or ?last_event_id=)
// to resume after the last event they saw; comment heartbeats keep
// idle connections alive through proxies.
func (s *Server) handleJobEvents(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	hub := s.events.get(id)
	if hub == nil {
		writeError(w, http.StatusNotFound, "unknown job %q", id)
		return
	}
	fl, ok := w.(http.Flusher)
	if !ok {
		writeError(w, http.StatusNotImplemented, "streaming unsupported by this connection")
		return
	}
	var after int64
	lastID := r.Header.Get("Last-Event-ID")
	if lastID == "" {
		lastID = r.URL.Query().Get("last_event_id")
	}
	if lastID != "" {
		n, err := parseEventID(lastID)
		if err != nil {
			writeError(w, http.StatusBadRequest, "bad Last-Event-ID %q", lastID)
			return
		}
		after = n
	}

	w.Header().Set("Content-Type", "text/event-stream")
	w.Header().Set("Cache-Control", "no-cache")
	w.Header().Set("X-Accel-Buffering", "no") // disable proxy buffering
	w.WriteHeader(http.StatusOK)

	replay, ch := hub.subscribe(after)
	if ch != nil {
		defer hub.unsubscribe(ch)
	}
	for _, ev := range replay {
		writeSSE(w, ev)
	}
	fl.Flush()
	if ch == nil {
		return // terminal job: backlog delivered, stream complete
	}

	heartbeat := time.NewTicker(s.cfg.SSEHeartbeat)
	defer heartbeat.Stop()
	for {
		select {
		case ev, ok := <-ch:
			if !ok {
				// Hub closed: job terminal (or consumer evicted). Either
				// way the client reconnects with Last-Event-ID if it
				// wants to be sure it saw everything.
				return
			}
			writeSSE(w, ev)
			fl.Flush()
		case <-heartbeat.C:
			fmt.Fprint(w, ": heartbeat\n\n")
			fl.Flush()
		case <-r.Context().Done():
			return
		}
	}
}

// parseEventID parses an SSE event ID (a decimal Seq).
func parseEventID(s string) (int64, error) {
	var n int64
	if _, err := fmt.Sscanf(s, "%d", &n); err != nil || n < 0 {
		return 0, fmt.Errorf("bad event id %q", s)
	}
	return n, nil
}

// writeSSE renders one event as an SSE frame: id, event type, and the
// JSON payload on a data line.
func writeSSE(w http.ResponseWriter, ev JobEvent) {
	fmt.Fprintf(w, "id: %d\nevent: %s\ndata: ", ev.Seq, ev.Type)
	enc := json.NewEncoder(w) // Encode appends the newline ending the data line
	_ = enc.Encode(ev)
	fmt.Fprint(w, "\n")
}
