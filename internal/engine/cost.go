package engine

import "math"

// Cost model parameters, mirroring PostgreSQL's defaults.
const (
	seqPageCost   = 1.0
	randPageCost  = 4.0
	cpuTupleCost  = 0.01
	cpuIndexCost  = 0.005
	cpuOpCost     = 0.0025
	hashBuildMult = 1.5 // per-tuple hash-table build overhead multiplier
	btreeFanout   = 200 // entries per internal B-tree page
)

// btreeHeight estimates the number of internal pages touched descending a
// B-tree over n entries.
func btreeHeight(n float64) float64 {
	if n < 2 {
		return 1
	}
	h := math.Ceil(math.Log(n) / math.Log(btreeFanout))
	if h < 1 {
		h = 1
	}
	return h
}

// mackertLohman estimates distinct heap pages fetched when accessing rows
// random tuples of a table with pages heap pages.
func mackertLohman(rows, pages float64) float64 {
	if pages <= 0 {
		return 0
	}
	return pages * (1 - math.Exp(-rows/pages))
}

// sortCost prices an in-memory comparison sort of rows tuples.
func sortCost(rows float64) float64 {
	if rows < 2 {
		return cpuOpCost
	}
	return 2*cpuOpCost*rows*math.Log2(rows) + cpuTupleCost*rows
}
