// Package engine is the simulated DBMS optimizer that stands in for
// PostgreSQL in the paper's testbed. It estimates predicate selectivity
// from per-column statistics, selects access paths (sequential, index and
// index-only scans) given a hypothetical index configuration, orders joins
// with dynamic programming, and prices plans with a page/CPU cost model.
//
// The engine exposes two statistics modes. ModeEstimated mirrors what a
// real optimizer knows (histograms with sampling error, NDV misestimates,
// attribute-independence assumptions): this is the "what-if" interface
// index advisors call. ModeTrue evaluates the same plans against the exact
// generator distributions and stands in for actual query runtime; the
// learned index utility model (internal/gbdt) is trained against it.
package engine

import (
	"fmt"
	"strings"

	"github.com/trap-repro/trap/internal/schema"
)

// NodeType enumerates plan operator types; it is the feature-vector
// dimension L of the paper's Figure 4.
type NodeType int

// Plan operator types.
const (
	SeqScan NodeType = iota
	IndexScan
	IndexOnlyScan
	NestLoop
	HashJoin
	MergeJoin
	Sort
	HashAggregate
	GroupAggregate
	Result
	// NumNodeTypes is the number of operator types (the L in f ∈ R^{4×L}).
	NumNodeTypes
)

// String names the operator.
func (t NodeType) String() string {
	switch t {
	case SeqScan:
		return "Seq Scan"
	case IndexScan:
		return "Index Scan"
	case IndexOnlyScan:
		return "Index Only Scan"
	case NestLoop:
		return "Nested Loop"
	case HashJoin:
		return "Hash Join"
	case MergeJoin:
		return "Merge Join"
	case Sort:
		return "Sort"
	case HashAggregate:
		return "HashAggregate"
	case GroupAggregate:
		return "GroupAggregate"
	case Result:
		return "Result"
	}
	return "Unknown"
}

// PlanNode is one operator of a query plan tree. Cost is the cumulative
// cost of the subtree (like PostgreSQL's total_cost), Rows the estimated
// output cardinality, Height the node's height above the deepest leaf
// (leaves have height 1).
//
// # Immutability
//
// Plan trees returned by Engine.Plan come from a cache shared by every
// goroutine planning the same (mode, config, query) key, so a PlanNode
// and everything reachable from it (Index, Children) MUST be treated as
// read-only once published. Callers that need a modified tree must build
// their own copy. Inside the engine, nodes are only written while being
// constructed, before the root is inserted into the cache.
type PlanNode struct {
	Type     NodeType
	Table    string        // base relation for scan nodes
	Index    *schema.Index // index used by Index(Only)Scan nodes
	Cost     float64
	Rows     float64
	Height   int
	Children []*PlanNode
}

// newNode builds an internal node, deriving Height from the children.
func newNode(t NodeType, cost, rows float64, children ...*PlanNode) *PlanNode {
	h := 0
	for _, c := range children {
		if c.Height > h {
			h = c.Height
		}
	}
	return &PlanNode{Type: t, Cost: cost, Rows: rows, Height: h + 1, Children: children}
}

// Walk visits every node of the subtree in pre-order.
func (n *PlanNode) Walk(fn func(*PlanNode)) {
	fn(n)
	for _, c := range n.Children {
		c.Walk(fn)
	}
}

// String renders the plan as an indented EXPLAIN-style tree.
func (n *PlanNode) String() string {
	var b strings.Builder
	n.render(&b, 0)
	return b.String()
}

func (n *PlanNode) render(b *strings.Builder, depth int) {
	b.WriteString(strings.Repeat("  ", depth))
	b.WriteString(n.Type.String())
	if n.Table != "" {
		fmt.Fprintf(b, " on %s", n.Table)
	}
	if n.Index != nil {
		fmt.Fprintf(b, " using %s", n.Index.Key())
	}
	fmt.Fprintf(b, "  (cost=%.2f rows=%.0f height=%d)\n", n.Cost, n.Rows, n.Height)
	for _, c := range n.Children {
		c.render(b, depth+1)
	}
}

// PlanFeatures computes the 4×L feature vector of Figure 4 / Equation 5:
// per operator type, the sums of node cost, node cardinality, and the
// height-weighted recursive cost and cardinality aggregates.
func PlanFeatures(root *PlanNode) []float64 {
	l := int(NumNodeTypes)
	f := make([]float64, 4*l)
	var rec func(n *PlanNode) (g3, g4 float64)
	rec = func(n *PlanNode) (float64, float64) {
		var g3, g4 float64
		if len(n.Children) == 0 {
			g3, g4 = n.Cost, n.Rows
		} else {
			for _, c := range n.Children {
				c3, c4 := rec(c)
				g3 += float64(c.Height) * c3
				g4 += float64(c.Height) * c4
			}
		}
		i := int(n.Type)
		f[0*l+i] += n.Cost
		f[1*l+i] += n.Rows
		f[2*l+i] += g3
		f[3*l+i] += g4
		return g3, g4
	}
	rec(root)
	return f
}

// FeatureLen is the length of the vector returned by PlanFeatures.
const FeatureLen = 4 * int(NumNodeTypes)
