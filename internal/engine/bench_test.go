package engine

import (
	"context"
	"fmt"
	"testing"
)

// BenchmarkCostBatch times the parallel what-if batch-costing path at
// several fan-out widths. Cold cache per iteration, so the benchmark
// measures planning throughput; on a multi-core machine workers>1 beats
// workers=1 (on a single core the deterministic reduce keeps the
// overhead within noise).
func BenchmarkCostBatch(b *testing.B) {
	items, cfg := batchFixture(64)
	for _, workers := range []int{1, 2, 4} {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			e := New(testSchema())
			e.SetBatchWorkers(workers)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				e.ClearCache()
				if _, err := e.CostBatch(context.Background(), items, cfg, ModeEstimated); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkCostBatchWarm times the all-hits path: sharded read-locked
// lookups plus the in-order weighted reduce.
func BenchmarkCostBatchWarm(b *testing.B) {
	items, cfg := batchFixture(64)
	e := New(testSchema())
	if _, err := e.CostBatch(context.Background(), items, cfg, ModeEstimated); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := e.CostBatch(context.Background(), items, cfg, ModeEstimated); err != nil {
			b.Fatal(err)
		}
	}
}
