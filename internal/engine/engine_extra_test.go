package engine

import (
	"strings"
	"testing"

	"github.com/trap-repro/trap/internal/schema"
	"github.com/trap-repro/trap/internal/sqlx"
	"github.com/trap-repro/trap/internal/stats"
)

func TestDisconnectedJoinFallback(t *testing.T) {
	e := New(testSchema())
	// orders and items without a join predicate: a cross product the
	// fallback path must still plan.
	q := sqlx.MustParse("SELECT orders.id, items.price FROM orders, items WHERE orders.odate = 3 AND items.price > 100")
	p, err := e.Plan(q, nil, ModeEstimated)
	if err != nil {
		t.Fatalf("cross product unplannable: %v", err)
	}
	if p.Cost <= 0 || p.Rows <= 0 {
		t.Error("degenerate cross product plan")
	}
	scans := 0
	p.Walk(func(n *PlanNode) {
		if n.Type == SeqScan || n.Type == IndexScan || n.Type == IndexOnlyScan {
			scans++
		}
	})
	if scans != 2 {
		t.Errorf("cross product should scan both tables, got %d", scans)
	}
}

func TestGroupAggregateOnSortedInput(t *testing.T) {
	e := New(testSchema())
	q := sqlx.MustParse("SELECT orders.status, COUNT(orders.id) FROM orders GROUP BY orders.status")
	pHash, _ := e.Plan(q, nil, ModeEstimated)
	if pHash.Type != HashAggregate {
		t.Errorf("ungrouped input should hash-aggregate, got %s", pHash.Type)
	}
	ix := schema.Index{Table: "orders", Columns: []string{"status", "id"}}
	pSorted, _ := e.Plan(q, schema.Config{ix}, ModeEstimated)
	// A covering index ordered on the grouping column enables the sorted
	// GroupAggregate when it is the cheaper total plan.
	if pSorted.Cost > pHash.Cost {
		t.Errorf("index made grouping more expensive: %v > %v", pSorted.Cost, pHash.Cost)
	}
}

func TestMultiTableOrGroupAppliedAtTop(t *testing.T) {
	e := New(testSchema())
	// An OR group spanning two tables cannot be pushed to either base
	// relation; the plan must still produce sane cardinalities.
	q := sqlx.MustParse("SELECT orders.id FROM orders, customers " +
		"WHERE orders.cust_id = customers.id AND orders.status = 'status_0' OR customers.region = 'region_1'")
	p, err := e.Plan(q, nil, ModeEstimated)
	if err != nil {
		t.Fatal(err)
	}
	hasResult := false
	p.Walk(func(n *PlanNode) {
		if n.Type == Result {
			hasResult = true
		}
	})
	if !hasResult {
		t.Errorf("cross-table OR group should be applied at the top:\n%s", p)
	}
	if p.Rows <= 0 {
		t.Error("non-positive rows")
	}
}

func TestPlanStringRendering(t *testing.T) {
	e := New(testSchema())
	q := sqlx.MustParse("SELECT orders.total FROM orders WHERE orders.cust_id = 42 ORDER BY orders.total")
	ix := schema.Index{Table: "orders", Columns: []string{"cust_id"}}
	p, _ := e.Plan(q, schema.Config{ix}, ModeEstimated)
	out := p.String()
	for _, want := range []string{"Sort", "Index Scan", "orders(cust_id)", "cost="} {
		if !strings.Contains(out, want) {
			t.Errorf("plan rendering missing %q:\n%s", want, out)
		}
	}
}

func TestValueOutsideDomain(t *testing.T) {
	e := New(testSchema())
	// Equality with a literal not in the column domain selects ~nothing;
	// range with a huge literal selects everything.
	qEq := sqlx.MustParse("SELECT orders.id FROM orders WHERE orders.cust_id = 123456789")
	qLt := sqlx.MustParse("SELECT orders.id FROM orders WHERE orders.cust_id < 123456789")
	pEq, _ := e.Plan(qEq, nil, ModeTrue)
	pLt, _ := e.Plan(qLt, nil, ModeTrue)
	if pEq.Rows > 10 {
		t.Errorf("out-of-domain equality rows = %v", pEq.Rows)
	}
	if pLt.Rows < 400_000 {
		t.Errorf("full-range predicate rows = %v", pLt.Rows)
	}
	// String literal on a numeric column.
	qStr := sqlx.MustParse("SELECT orders.id FROM orders WHERE orders.cust_id = 'oops'")
	if _, err := e.Plan(qStr, nil, ModeEstimated); err != nil {
		t.Errorf("mistyped literal should still plan: %v", err)
	}
}

func TestIndexOnlyWithoutPredicates(t *testing.T) {
	e := New(testSchema())
	// SELECT of a single covered column with no predicates: a full
	// index-only scan beats a seqscan because the index is narrower.
	q := sqlx.MustParse("SELECT orders.cust_id FROM orders")
	ix := schema.Index{Table: "orders", Columns: []string{"cust_id"}}
	p, _ := e.Plan(q, schema.Config{ix}, ModeEstimated)
	if p.Type != IndexOnlyScan {
		t.Errorf("narrow covering scan not chosen, got %s", p.Type)
	}
}

func TestMergeJoinConsidered(t *testing.T) {
	e := New(testSchema())
	// Force a join between two large filtered inputs and check a join is
	// selected with positive cost; the DP must have compared hash, merge
	// and NL honestly (no NaNs / negatives).
	q := sqlx.MustParse("SELECT orders.id FROM orders, customers WHERE orders.cust_id = customers.id")
	p, err := e.Plan(q, nil, ModeEstimated)
	if err != nil {
		t.Fatal(err)
	}
	var join *PlanNode
	p.Walk(func(n *PlanNode) {
		if n.Type == HashJoin || n.Type == MergeJoin || n.Type == NestLoop {
			join = n
		}
	})
	if join == nil {
		t.Fatal("no join node")
	}
	if join.Cost <= join.Children[0].Cost {
		t.Error("join cost must exceed child cost")
	}
}

func TestFourWayJoinChain(t *testing.T) {
	s := testSchema()
	// Extend the schema with one more table chained off items.
	brands := schema.NewTable("brands", 200, []schema.Column{
		{Name: "id", Type: schema.IntCol, Width: 8, Dist: stats.Dist{NDV: 200, Max: 199}},
		{Name: "name", Type: schema.StringCol, Width: 16, Dist: stats.Dist{NDV: 200, Max: 199}},
	})
	s2 := schema.New("star4",
		append(append([]*schema.Table{}, s.Tables...), brands),
		append(append([]schema.JoinEdge{}, s.Joins...),
			schema.JoinEdge{LeftTable: "items", LeftColumn: "category", RightTable: "brands", RightColumn: "id"}))
	e := New(s2)
	q := sqlx.MustParse("SELECT brands.name FROM orders, customers, items, brands " +
		"WHERE orders.cust_id = customers.id AND orders.item_id = items.id " +
		"AND items.category = brands.id AND customers.region = 'region_1'")
	p, err := e.Plan(q, nil, ModeEstimated)
	if err != nil {
		t.Fatal(err)
	}
	joins := 0
	p.Walk(func(n *PlanNode) {
		if n.Type == HashJoin || n.Type == MergeJoin || n.Type == NestLoop {
			joins++
		}
	})
	if joins != 3 {
		t.Errorf("4-way join should have 3 join nodes, got %d:\n%s", joins, p)
	}
}

func BenchmarkPlanSingleTable(b *testing.B) {
	e := New(testSchema())
	q := sqlx.MustParse("SELECT orders.total FROM orders WHERE orders.cust_id = 42 AND orders.status = 'status_1'")
	cfg := schema.Config{{Table: "orders", Columns: []string{"cust_id", "status"}}}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e.ClearCache()
		if _, err := e.Plan(q, cfg, ModeEstimated); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkPlanThreeWayJoin(b *testing.B) {
	e := New(testSchema())
	q := sqlx.MustParse("SELECT items.category, COUNT(orders.id) FROM orders, customers, items " +
		"WHERE orders.cust_id = customers.id AND orders.item_id = items.id " +
		"AND customers.region = 'region_3' GROUP BY items.category")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e.ClearCache()
		if _, err := e.Plan(q, nil, ModeEstimated); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkPlanCacheHit(b *testing.B) {
	e := New(testSchema())
	q := sqlx.MustParse("SELECT orders.total FROM orders WHERE orders.cust_id = 42")
	if _, err := e.Plan(q, nil, ModeEstimated); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := e.Plan(q, nil, ModeEstimated); err != nil {
			b.Fatal(err)
		}
	}
}
