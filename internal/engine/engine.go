package engine

import (
	"context"
	"fmt"
	"math"
	"runtime"
	"sync"
	"sync/atomic"

	"github.com/trap-repro/trap/internal/faultinject"
	"github.com/trap-repro/trap/internal/obs"
	"github.com/trap-repro/trap/internal/schema"
	"github.com/trap-repro/trap/internal/sqlx"
	"github.com/trap-repro/trap/internal/stats"
	"github.com/trap-repro/trap/internal/trace"
)

// Process-wide engine metrics, aggregated across all Engine instances
// (per-instance numbers are available from Engine.CacheStats).
var (
	mWhatIfCalls  = obs.Default().Counter("engine_whatif_calls_total")
	mTrueCalls    = obs.Default().Counter("engine_truecost_calls_total")
	mCacheHits    = obs.Default().Counter("engine_plan_cache_hits_total")
	mCacheMisses  = obs.Default().Counter("engine_plan_cache_misses_total")
	mCacheEvicted = obs.Default().Counter("engine_plan_cache_evicted_total")
	mPlanSeconds  = obs.Default().Histogram("engine_plan_seconds")
	mBatchSecs    = obs.Default().Histogram("engine_cost_batch_seconds")
	mBatchQueries = obs.Default().Counter("engine_cost_batch_queries_total")
	mBatches      = obs.Default().Counter("engine_cost_batches_total")
)

// defaultCacheLimit bounds the plan cache; beyond it a fraction of the
// entries is evicted (never the whole cache).
const defaultCacheLimit = 400_000

// Engine is the simulated cost-based optimizer over a schema.
//
// # Concurrency
//
// An Engine is safe for concurrent use by multiple goroutines with no
// external locking: the schema and estimation-error profile are immutable
// after construction; the plan cache is sharded by key hash with one
// RWMutex per shard and per-shard singleflight (concurrent misses on the
// same (mode, config, query) key plan once and share the result); the
// memoized histogram map is guarded by its own RWMutex. Two goroutines
// that miss on the same histogram may both build it; the builds are
// deterministic per column so the duplicate write is benign. Cached
// *PlanNode values are shared across callers and MUST be treated as
// read-only; every path in this package builds fresh nodes before
// caching and never mutates a node after it is published (see PlanNode's
// immutability contract).
type Engine struct {
	schema *schema.Schema
	estErr stats.EstimationError

	// hists is keyed by the ColumnRef struct itself (comparable) so the
	// per-lookup key is free; building a "t.c" string here dominated the
	// selectivity path's allocation profile.
	histMu sync.RWMutex
	hists  map[sqlx.ColumnRef]stats.Histogram

	cache planCache

	// batchWorkers overrides the CostBatch/RuntimeBatch fan-out width;
	// 0 (the default) resolves to GOMAXPROCS at call time.
	batchWorkers atomic.Int64

	// inject, when non-nil, fires the engine.cost fault-injection point
	// on every QueryCost call (test/diagnostic configuration only).
	inject atomic.Pointer[injectorBox]
}

// injectorBox wraps the interface so it can live in an atomic.Pointer.
type injectorBox struct{ in faultinject.Injector }

// New builds an engine over the schema with the default estimation-error
// profile.
func New(s *schema.Schema) *Engine {
	return NewWithError(s, stats.DefaultEstimationError())
}

// NewWithError builds an engine whose "ANALYZE" statistics carry the
// given error profile — the knob behind the estimation-error ablation.
func NewWithError(s *schema.Schema, e stats.EstimationError) *Engine {
	eng := &Engine{
		schema: s,
		estErr: e,
		hists:  map[sqlx.ColumnRef]stats.Histogram{},
	}
	eng.cache.init(defaultCacheLimit)
	return eng
}

// CacheStats is a point-in-time view of one engine's plan cache,
// aggregated over its shards.
type CacheStats struct {
	Entries int
	Hits    uint64
	Misses  uint64
	Evicted uint64
	// Shards is the number of cache shards the totals were summed over.
	Shards int
	// SingleflightDedup counts misses that joined another goroutine's
	// in-flight build of the same key instead of planning again.
	SingleflightDedup uint64
}

// HitRatio returns hits/(hits+misses), or 0 before any lookup.
func (s CacheStats) HitRatio() float64 {
	total := s.Hits + s.Misses
	if total == 0 {
		return 0
	}
	return float64(s.Hits) / float64(total)
}

// CacheStats returns this engine's plan-cache statistics.
func (e *Engine) CacheStats() CacheStats {
	return e.cache.stats()
}

// SetCacheLimit bounds the plan cache at n entries (minimum one per
// shard, i.e. 32). Lowering the limit below the current size shrinks the
// cache immediately; at steady state crossing the bound evicts a
// fraction of each shard rather than the whole cache.
func (e *Engine) SetCacheLimit(n int) {
	if n < cacheShards {
		n = cacheShards
	}
	e.cache.setLimit(n)
}

// SetBatchWorkers bounds the worker pool CostBatch and RuntimeBatch fan
// out over. n <= 0 restores the default (GOMAXPROCS at call time); n == 1
// forces the sequential path. Safe to call concurrently with batches.
func (e *Engine) SetBatchWorkers(n int) {
	if n < 0 {
		n = 0
	}
	e.batchWorkers.Store(int64(n))
}

// BatchWorkers reports the resolved worker-pool width.
func (e *Engine) BatchWorkers() int {
	if n := int(e.batchWorkers.Load()); n > 0 {
		return n
	}
	return runtime.GOMAXPROCS(0)
}

// Schema returns the engine's schema.
func (e *Engine) Schema() *schema.Schema { return e.schema }

// ClearCache drops all cached plans (histograms are kept).
func (e *Engine) ClearCache() {
	e.cache.clear()
}

// keyBuf is the reusable scratch for rendering one plan-cache key: the
// key bytes and the per-table index sort scratch. Batch paths hand one
// to each worker (par.ForEachWorker), single-query paths borrow one
// from keyBufPool, so steady-state key building allocates nothing.
type keyBuf struct {
	buf []byte
	ixs []schema.Index
}

var keyBufPool = sync.Pool{New: func() any { return new(keyBuf) }}

// planKey renders the cache key of (q, cfg, mode) into kb: the mode,
// the canonical query text and, per table the query references (in the
// query's stable table order), the sorted identities of the indexes cfg
// holds on that table. Indexes on tables the query never touches cannot
// affect its plan — plan() consults cfg only through cfg.OnTable for
// the query's tables — so they are excluded: configurations that differ
// only in irrelevant indexes share one cache entry instead of each
// missing, which is what lets the advisor's what-if loop (which probes
// hundreds of configurations against the same queries) run mostly on
// cache hits.
// It also returns the key's shard hash, continued from the memoized
// hash of the query text so only the short mode/config suffix is
// re-hashed per call.
func planKey(kb *keyBuf, q *sqlx.Query, cfg schema.Config, mode Mode) ([]byte, uint64) {
	qa := analysisOf(q)
	b := kb.buf[:0]
	b = append(b, byte('0'+int(mode)))
	b = append(b, q.String()...)
	suffix := len(b)
	for _, t := range qa.tables {
		b = append(b, '|')
		ixs := kb.ixs[:0]
		for _, ix := range cfg {
			if ix.Table == t {
				ixs = append(ixs, ix)
			}
		}
		// Insertion sort: per-table subsets are tiny and this avoids the
		// sort.Slice interface allocation.
		for i := 1; i < len(ixs); i++ {
			for j := i; j > 0 && ixs[j].Less(ixs[j-1]); j-- {
				ixs[j], ixs[j-1] = ixs[j-1], ixs[j]
			}
		}
		for _, ix := range ixs {
			for _, c := range ix.Columns {
				b = append(b, c...)
				b = append(b, ',')
			}
			b = append(b, ';')
		}
		kb.ixs = ixs[:0]
	}
	kb.buf = b
	h := qa.textHash
	h ^= uint64(b[0]) // mode byte
	h *= 1099511628211
	return b, fnv1aSeed(h, b[suffix:])
}

// Plan returns the cheapest plan for q under the index configuration cfg,
// priced with the given statistics mode. Results are cached; the returned
// node is shared and must not be mutated.
func (e *Engine) Plan(q *sqlx.Query, cfg schema.Config, mode Mode) (*PlanNode, error) {
	kb := keyBufPool.Get().(*keyBuf)
	defer keyBufPool.Put(kb)
	return e.planCached(kb, q, cfg, mode)
}

// planCached looks the plan up in the sharded cache and, on a miss,
// builds it under singleflight: concurrent misses on the same key plan
// once and share the resulting node. The key is rendered into kb and
// only cloned to a heap string when a miss actually inserts it.
func (e *Engine) planCached(kb *keyBuf, q *sqlx.Query, cfg schema.Config, mode Mode) (*PlanNode, error) {
	key, hash := planKey(kb, q, cfg, mode)
	sh := e.cache.shardOf(hash)
	if p, ok := sh.lookup(hash, key); ok {
		return p, nil
	}
	return sh.do(hash, key, e.cache.shardLimit(), func() (*PlanNode, error) {
		sp := obs.StartSpan(mPlanSeconds)
		defer sp.End()
		return e.plan(q, cfg, mode)
	})
}

// SetInjector installs a fault injector on the engine's what-if costing
// path (nil disables injection, the production default).
func (e *Engine) SetInjector(in faultinject.Injector) {
	if in == nil {
		e.inject.Store(nil)
		return
	}
	e.inject.Store(&injectorBox{in: in})
}

// QueryCost returns the total cost of the cheapest plan for q. In
// ModeEstimated this is the engine's what-if interface — the call
// advisors are billed for.
func (e *Engine) QueryCost(q *sqlx.Query, cfg schema.Config, mode Mode) (float64, error) {
	kb := keyBufPool.Get().(*keyBuf)
	defer keyBufPool.Put(kb)
	return e.queryCost(kb, q, cfg, mode)
}

// queryCost is QueryCost with a caller-owned key buffer (batch paths
// keep one per worker).
func (e *Engine) queryCost(kb *keyBuf, q *sqlx.Query, cfg schema.Config, mode Mode) (float64, error) {
	if mode == ModeEstimated {
		mWhatIfCalls.Inc()
	} else {
		mTrueCalls.Inc()
	}
	if box := e.inject.Load(); box != nil {
		if err := faultinject.Fire(box.in, faultinject.PointEngineCost); err != nil {
			return 0, err
		}
	}
	p, err := e.planCached(kb, q, cfg, mode)
	if err != nil {
		return 0, err
	}
	return p.Cost, nil
}

// CostItem is one weighted query in a CostBatch call.
type CostItem struct {
	Q      *sqlx.Query
	Weight float64
}

// CostBatch prices a batch of weighted queries under one configuration
// and returns the weighted total. The per-query costing fans out over a
// bounded worker pool (see SetBatchWorkers); the weighted summation is
// performed in item order afterwards, so the parallel total is
// bit-identical to the sequential one. Cancellation is honored between
// queries, so a canceled assessment stops what-if costing at the next
// query boundary instead of draining the whole batch.
func (e *Engine) CostBatch(ctx context.Context, items []CostItem, cfg schema.Config, mode Mode) (float64, error) {
	ctx, tsp, finish := e.batchSpan(ctx, "engine.cost_batch", len(items))
	sp := obs.StartSpan(mBatchSecs)
	mBatches.Inc()
	mBatchQueries.Add(int64(len(items)))
	total, err := e.weightedBatch(ctx, items, cfg, mode, false)
	sp.EndExemplar(tsp.TraceID())
	finish(err)
	return total, err
}

// batchSpan opens the per-batch trace span of CostBatch/RuntimeBatch
// with the batch size attribute, and returns a finish function that
// stamps the span with the shard-cache and singleflight deltas the
// batch caused before ending it. On an un-traced context everything is
// a no-op (tsp is nil and finish does nothing), so the hot path pays no
// stats snapshots and no allocations.
func (e *Engine) batchSpan(ctx context.Context, name string, items int) (context.Context, *trace.Span, func(error)) {
	ctx, tsp := trace.Start(ctx, name)
	if tsp == nil {
		return ctx, nil, func(error) {}
	}
	tsp.Int("items", int64(items))
	tsp.Int("workers", int64(e.BatchWorkers()))
	before := e.cache.stats()
	return ctx, tsp, func(err error) {
		after := e.cache.stats()
		tsp.Int("cache_hits", int64(after.Hits-before.Hits))
		tsp.Int("cache_misses", int64(after.Misses-before.Misses))
		tsp.Int("singleflight_dedup", int64(after.SingleflightDedup-before.SingleflightDedup))
		tsp.Fail(err)
		tsp.End()
	}
}

// RuntimeCost is the stand-in for actual query runtime: the true-statistics
// cost with a small deterministic per-query execution noise.
func (e *Engine) RuntimeCost(q *sqlx.Query, cfg schema.Config) (float64, error) {
	kb := keyBufPool.Get().(*keyBuf)
	defer keyBufPool.Put(kb)
	return e.runtimeCost(kb, q, cfg)
}

func (e *Engine) runtimeCost(kb *keyBuf, q *sqlx.Query, cfg schema.Config) (float64, error) {
	c, err := e.queryCost(kb, q, cfg, ModeTrue)
	if err != nil {
		return 0, err
	}
	return c * stats.HashFactor("rt:"+q.String(), 0.05), nil
}

// RuntimeBatch is CostBatch over the runtime stand-in: the weighted
// runtime cost of the batch, fanned out over the same worker pool with
// the same deterministic in-order summation and cancellation behavior.
func (e *Engine) RuntimeBatch(ctx context.Context, items []CostItem, cfg schema.Config) (float64, error) {
	ctx, tsp, finish := e.batchSpan(ctx, "engine.runtime_batch", len(items))
	sp := obs.StartSpan(mBatchSecs)
	mBatches.Inc()
	mBatchQueries.Add(int64(len(items)))
	total, err := e.weightedBatch(ctx, items, cfg, ModeTrue, true)
	sp.EndExemplar(tsp.TraceID())
	finish(err)
	return total, err
}

// accessPath is a candidate scan of one base table.
type accessPath struct {
	node *PlanNode
	// orderedOn lists the column names (of the scanned table) the output
	// is sorted by; empty for unordered scans.
	orderedOn []string
}

// tableStatic is the mode- and configuration-independent per-table
// analysis of a query: predicate groups, required columns and join
// columns. It is memoized on the Query (see analysisOf) and shared
// read-only across plan calls, so it must never be mutated after
// construction.
type tableStatic struct {
	groups   []predGroup // single-table OR-groups on this table
	reqCols  map[string]bool
	predOps  int // predicate terms evaluated per row
	joinCols map[string]bool
}

// queryAnalysis is the memoized, engine-independent part of planning a
// query: everything derivable from the query text alone. Stored on the
// Query via sqlx.Query.SetPlanInfo so repeated plan calls (across modes
// and configurations) skip the re-analysis.
type queryAnalysis struct {
	tables    []string
	columns   []sqlx.ColumnRef
	statics   map[string]*tableStatic
	topGroups []predGroup // groups spanning several tables
	// textHash is the FNV-1a hash of the canonical query text, the seed
	// for plan-key shard hashing (so lookups only hash the short suffix).
	textHash uint64
}

// analysisOf returns the memoized analysis of q, computing and caching
// it on first use. The result is query-derived only (no schema or mode
// input), so it is safe to share across engines and goroutines.
func analysisOf(q *sqlx.Query) *queryAnalysis {
	if qa, ok := q.PlanInfo().(*queryAnalysis); ok {
		return qa
	}
	qa := &queryAnalysis{tables: q.Tables(), columns: q.Columns(), textHash: fnv1aString(q.String())}
	qa.statics = make(map[string]*tableStatic, len(qa.tables))
	for _, t := range qa.tables {
		qa.statics[t] = &tableStatic{reqCols: map[string]bool{}, joinCols: map[string]bool{}}
	}
	for _, c := range qa.columns {
		if st := qa.statics[c.Table]; st != nil {
			st.reqCols[c.Column] = true
		}
	}
	for _, j := range q.Joins {
		if st := qa.statics[j.Left.Table]; st != nil {
			st.joinCols[j.Left.Column] = true
		}
		if st := qa.statics[j.Right.Table]; st != nil {
			st.joinCols[j.Right.Column] = true
		}
	}
	for _, g := range groupFilters(q) {
		t := g.onlyTable()
		if t == "" {
			qa.topGroups = append(qa.topGroups, g)
			continue
		}
		if st := qa.statics[t]; st != nil {
			st.groups = append(st.groups, g)
			st.predOps += len(g.preds)
		}
	}
	q.SetPlanInfo(qa)
	return qa
}

// tableInfo is the per-plan-call view of a table's analysis: the shared
// memoized static part plus the mode-dependent combined selectivity
// scanPaths fills in. Each plan call builds its own tableInfo values, so
// writing sel never races with other calls.
type tableInfo struct {
	*tableStatic
	sel float64 // combined selectivity of groups
}

// plan builds the cheapest plan without consulting the cache.
func (e *Engine) plan(q *sqlx.Query, cfg schema.Config, mode Mode) (*PlanNode, error) {
	if err := q.Validate(); err != nil {
		return nil, err
	}
	qa := analysisOf(q)
	tables := qa.tables
	if len(tables) > 14 {
		return nil, fmt.Errorf("engine: too many tables (%d)", len(tables))
	}
	for _, t := range tables {
		if e.schema.Table(t) == nil {
			return nil, fmt.Errorf("engine: unknown table %s", t)
		}
	}
	for _, c := range qa.columns {
		if e.schema.Column(c) == nil {
			return nil, fmt.Errorf("engine: unknown column %s", c)
		}
	}

	infos := make(map[string]*tableInfo, len(tables))
	for _, t := range tables {
		infos[t] = &tableInfo{tableStatic: qa.statics[t], sel: 1}
	}
	topGroups := qa.topGroups

	// Desired output order for sort-avoidance: ORDER BY, or GROUP BY when
	// there is no ORDER BY (a sorted input enables GroupAggregate).
	desired := q.OrderBy
	if len(desired) == 0 {
		desired = q.GroupBy
	}

	single := len(tables) == 1
	var joined *PlanNode
	var joinedOrder []string

	if single {
		t := tables[0]
		best, ordered := e.scanPaths(q, t, infos[t], cfg, mode, desired)
		joined = best.node
		joinedOrder = best.orderedOn
		// An ordered path may beat cheapest-plus-sort; resolved below by
		// building both final plans and keeping the cheaper.
		if ordered != nil {
			alt := e.finishPlan(q, ordered.node, ordered.orderedOn, topGroups, mode)
			main := e.finishPlan(q, joined, joinedOrder, topGroups, mode)
			if alt.Cost < main.Cost {
				return alt, nil
			}
			return main, nil
		}
	} else {
		var err error
		joined, err = e.joinSearch(q, tables, infos, cfg, mode)
		if err != nil {
			return nil, err
		}
	}
	return e.finishPlan(q, joined, joinedOrder, topGroups, mode), nil
}

// scanPaths returns the cheapest access path for a table and, when desired
// names an order this table could provide (single-table queries only), the
// cheapest path that delivers that order (nil if none or if the cheapest
// path already provides it).
func (e *Engine) scanPaths(q *sqlx.Query, table string, info *tableInfo, cfg schema.Config, mode Mode, desired []sqlx.ColumnRef) (best accessPath, ordered *accessPath) {
	t := e.schema.Table(table)
	sel := e.combineGroups(table, info.groups, mode)
	info.sel = sel
	outRows := float64(t.Rows) * sel
	if outRows < 1 {
		outRows = 1
	}

	// Sequential scan.
	seqCost := t.Pages()*seqPageCost + float64(t.Rows)*cpuTupleCost +
		float64(t.Rows)*float64(info.predOps)*cpuOpCost
	best = accessPath{node: &PlanNode{Type: SeqScan, Table: table, Cost: seqCost, Rows: outRows, Height: 1}}

	// The order this table would need to provide, as local column names.
	var wantOrder []string
	for _, c := range desired {
		if c.Table != table {
			wantOrder = nil
			break
		}
		wantOrder = append(wantOrder, c.Column)
	}

	var bestOrdered *accessPath
	for _, ix := range cfg.OnTable(table) {
		path := e.indexPath(q, t, ix, info, sel, outRows, mode)
		if path == nil {
			continue
		}
		if path.node.Cost < best.node.Cost {
			best = *path
		}
		if len(wantOrder) > 0 && providesOrder(path.orderedOn, wantOrder) {
			if bestOrdered == nil || path.node.Cost < bestOrdered.node.Cost {
				p := *path
				bestOrdered = &p
			}
		}
	}
	if bestOrdered != nil && !providesOrder(best.orderedOn, wantOrder) {
		return best, bestOrdered
	}
	return best, nil
}

// providesOrder reports whether an output ordered on `have` satisfies the
// required prefix `want`.
func providesOrder(have, want []string) bool {
	if len(want) == 0 || len(have) < len(want) {
		return false
	}
	for i, c := range want {
		if have[i] != c {
			return false
		}
	}
	return true
}

// indexPath prices scanning table t with index ix, or returns nil when the
// index is useless for this query (no sargable prefix match, not covering,
// and providing no order anyone asked for — order filtering happens in the
// caller, so pure-order paths are still returned here).
func (e *Engine) indexPath(q *sqlx.Query, t *schema.Table, ix schema.Index, info *tableInfo, sel, outRows float64, mode Mode) *accessPath {
	// Sargable single-predicate groups by column.
	eq := map[string]sqlx.Predicate{}
	rng := map[string]sqlx.Predicate{}
	for _, g := range info.groups {
		if !g.sargable {
			continue
		}
		p := g.preds[0]
		if p.Op == sqlx.OpEq {
			eq[p.Col.Column] = p
		} else {
			if _, dup := rng[p.Col.Column]; !dup {
				rng[p.Col.Column] = p
			}
		}
	}
	matchedSel := 1.0
	nMatched := 0
	for _, cn := range ix.Columns {
		if p, ok := eq[cn]; ok {
			matchedSel *= e.predSel(p, mode)
			nMatched++
			continue
		}
		if p, ok := rng[cn]; ok {
			matchedSel *= e.predSel(p, mode)
			nMatched++
		}
		break
	}
	covering := true
	have := map[string]bool{}
	for _, cn := range ix.Columns {
		have[cn] = true
	}
	for cn := range info.reqCols {
		if !have[cn] {
			covering = false
			break
		}
	}
	if nMatched == 0 && !covering {
		// Full index scan is only plausible for order; allow it but price
		// the whole leaf level.
		matchedSel = 1
	}
	matchRows := float64(t.Rows) * matchedSel
	if matchRows < 1 {
		matchRows = 1
	}
	ixPages := ix.SizeBytes(e.schema) / schema.PageSize
	cost := btreeHeight(float64(t.Rows))*randPageCost +
		matchedSel*ixPages*seqPageCost +
		matchRows*cpuIndexCost
	typ := IndexScan
	if covering {
		typ = IndexOnlyScan
	} else {
		cost += mackertLohman(matchRows, t.Pages()) * randPageCost
	}
	// Residual predicate evaluation on fetched rows.
	resid := info.predOps - nMatched
	if resid > 0 {
		cost += matchRows * float64(resid) * cpuOpCost
	}
	node := &PlanNode{Type: typ, Table: t.Name, Index: &ix, Cost: cost, Rows: outRows, Height: 1}
	return &accessPath{node: node, orderedOn: ix.Columns}
}

// joinSearch runs bitmask dynamic programming over the query's tables.
func (e *Engine) joinSearch(q *sqlx.Query, tables []string, infos map[string]*tableInfo, cfg schema.Config, mode Mode) (*PlanNode, error) {
	n := len(tables)
	idx := map[string]int{}
	for i, t := range tables {
		idx[t] = i
	}
	base := make([]*PlanNode, n)
	for i, t := range tables {
		best, _ := e.scanPaths(q, t, infos[t], cfg, mode, nil)
		base[i] = best.node
	}

	// Pre-compute cardinalities per subset so every plan for a subset
	// agrees on output rows (standard DP discipline).
	full := (1 << n) - 1
	card := make([]float64, full+1)
	for m := 1; m <= full; m++ {
		card[m] = e.subsetCard(q, tables, infos, m, idx, mode)
	}

	dp := make([]*PlanNode, full+1)
	for i := 0; i < n; i++ {
		dp[1<<i] = base[i]
	}
	for m := 1; m <= full; m++ {
		if dp[m] != nil || !e.connected(q, tables, m, idx) {
			continue
		}
		var best *PlanNode
		for s1 := (m - 1) & m; s1 > 0; s1 = (s1 - 1) & m {
			s2 := m ^ s1
			if s1 > s2 {
				continue // each split considered once
			}
			p1, p2 := dp[s1], dp[s2]
			if p1 == nil || p2 == nil {
				continue
			}
			if !e.crossJoined(q, tables, s1, s2, idx) {
				continue
			}
			cand := e.bestJoin(q, tables, infos, cfg, mode, p1, p2, s1, s2, idx, card[m])
			if cand != nil && (best == nil || cand.Cost < best.Cost) {
				best = cand
			}
		}
		dp[m] = best
	}
	if dp[full] == nil {
		// Disconnected join graph: fall back to cross products, joining
		// components greedily with hash joins.
		return e.crossProductFallback(q, tables, infos, cfg, mode, dp, card)
	}
	return dp[full], nil
}

// connected reports whether the subset of tables is connected in the
// query's join graph (singletons are connected).
func (e *Engine) connected(q *sqlx.Query, tables []string, m int, idx map[string]int) bool {
	first := -1
	cnt := 0
	for i := range tables {
		if m&(1<<i) != 0 {
			if first < 0 {
				first = i
			}
			cnt++
		}
	}
	if cnt <= 1 {
		return true
	}
	seen := 1 << first
	for changed := true; changed; {
		changed = false
		for _, j := range q.Joins {
			a, aok := idx[j.Left.Table]
			b, bok := idx[j.Right.Table]
			if !aok || !bok || m&(1<<a) == 0 || m&(1<<b) == 0 {
				continue
			}
			if seen&(1<<a) != 0 && seen&(1<<b) == 0 {
				seen |= 1 << b
				changed = true
			}
			if seen&(1<<b) != 0 && seen&(1<<a) == 0 {
				seen |= 1 << a
				changed = true
			}
		}
	}
	return countBits(seen&m) == cnt
}

func countBits(x int) int {
	n := 0
	for x != 0 {
		x &= x - 1
		n++
	}
	return n
}

// crossJoined reports whether a join predicate connects the two subsets.
func (e *Engine) crossJoined(q *sqlx.Query, tables []string, s1, s2 int, idx map[string]int) bool {
	for _, j := range q.Joins {
		a, aok := idx[j.Left.Table]
		b, bok := idx[j.Right.Table]
		if !aok || !bok {
			continue
		}
		if (s1&(1<<a) != 0 && s2&(1<<b) != 0) || (s2&(1<<a) != 0 && s1&(1<<b) != 0) {
			return true
		}
	}
	return false
}

// subsetCard estimates the output cardinality of joining the subset m:
// the product of filtered base cardinalities shrunk by every internal join
// predicate's 1/max(ndv) factor.
func (e *Engine) subsetCard(q *sqlx.Query, tables []string, infos map[string]*tableInfo, m int, idx map[string]int, mode Mode) float64 {
	card := 1.0
	for i, tn := range tables {
		if m&(1<<i) == 0 {
			continue
		}
		t := e.schema.Table(tn)
		card *= float64(t.Rows) * infos[tn].sel
	}
	for _, j := range q.Joins {
		a, aok := idx[j.Left.Table]
		b, bok := idx[j.Right.Table]
		if !aok || !bok || m&(1<<a) == 0 || m&(1<<b) == 0 {
			continue
		}
		ndv := math.Max(e.columnNDV(j.Left, mode), e.columnNDV(j.Right, mode))
		card /= ndv
	}
	if card < 1 {
		card = 1
	}
	return card
}

// bestJoin prices the join algorithms for combining two sub-plans and
// returns the cheapest.
func (e *Engine) bestJoin(q *sqlx.Query, tables []string, infos map[string]*tableInfo, cfg schema.Config, mode Mode, p1, p2 *PlanNode, s1, s2 int, idx map[string]int, outRows float64) *PlanNode {
	childCost := p1.Cost + p2.Cost

	// Hash join: build the smaller input.
	build, probe := p1, p2
	if probe.Rows < build.Rows {
		build, probe = probe, build
	}
	hashCost := childCost + build.Rows*cpuTupleCost*hashBuildMult +
		probe.Rows*cpuTupleCost + outRows*cpuTupleCost
	best := newNode(HashJoin, hashCost, outRows, p1, p2)

	// Merge join: sort both inputs then merge.
	mergeCost := childCost + sortCost(p1.Rows) + sortCost(p2.Rows) +
		(p1.Rows+p2.Rows)*cpuTupleCost + outRows*cpuTupleCost
	if mergeCost < best.Cost {
		s1n := newNode(Sort, p1.Cost+sortCost(p1.Rows), p1.Rows, p1)
		s2n := newNode(Sort, p2.Cost+sortCost(p2.Rows), p2.Rows, p2)
		best = newNode(MergeJoin, mergeCost, outRows, s1n, s2n)
	}

	// Nested loop with a parameterized index scan when one side is a
	// single base table with an index led by the join column.
	for _, flip := range []bool{false, true} {
		outer, innerMask := p1, s2
		if flip {
			outer, innerMask = p2, s1
		}
		if countBits(innerMask) != 1 {
			continue
		}
		innerIdx := 0
		for i := range tables {
			if innerMask&(1<<i) != 0 {
				innerIdx = i
			}
		}
		innerTable := tables[innerIdx]
		joinCol := ""
		for _, j := range q.Joins {
			a, aok := idx[j.Left.Table]
			b, bok := idx[j.Right.Table]
			if !aok || !bok {
				continue
			}
			if j.Left.Table == innerTable && innerMask&(1<<a) != 0 && (s1|s2)&^innerMask&(1<<b) != 0 {
				joinCol = j.Left.Column
			}
			if j.Right.Table == innerTable && innerMask&(1<<b) != 0 && (s1|s2)&^innerMask&(1<<a) != 0 {
				joinCol = j.Right.Column
			}
		}
		if joinCol == "" {
			continue
		}
		for _, ix := range cfg.OnTable(innerTable) {
			if ix.Columns[0] != joinCol {
				continue
			}
			t := e.schema.Table(innerTable)
			ndv := e.columnNDV(sqlx.ColumnRef{Table: innerTable, Column: joinCol}, mode)
			matchRows := float64(t.Rows) / ndv
			if matchRows < 1 {
				matchRows = 1
			}
			lookup := btreeHeight(float64(t.Rows))*randPageCost +
				matchRows*cpuIndexCost +
				mackertLohman(matchRows, t.Pages())*randPageCost +
				matchRows*float64(infos[innerTable].predOps)*cpuOpCost
			nlCost := outer.Cost + outer.Rows*lookup + outRows*cpuTupleCost
			if nlCost < best.Cost {
				inner := &PlanNode{
					Type: IndexScan, Table: innerTable, Index: &ix,
					Cost: lookup, Rows: matchRows * infos[innerTable].sel, Height: 1,
				}
				if inner.Rows < 1 {
					inner.Rows = 1
				}
				best = newNode(NestLoop, nlCost, outRows, outer, inner)
			}
		}
	}
	return best
}

// crossProductFallback joins disconnected components with hash joins in
// table order; rare (the workload generators only emit connected joins)
// but keeps arbitrary parsed queries plannable.
func (e *Engine) crossProductFallback(q *sqlx.Query, tables []string, infos map[string]*tableInfo, cfg schema.Config, mode Mode, dp []*PlanNode, card []float64) (*PlanNode, error) {
	n := len(tables)
	full := (1 << n) - 1
	// Collect the largest planned connected components greedily.
	var parts []*PlanNode
	var masks []int
	remaining := full
	for remaining != 0 {
		bestMask := 0
		for m := remaining; m > 0; m = (m - 1) & remaining {
			if dp[m] != nil && countBits(m) > countBits(bestMask) {
				bestMask = m
			}
		}
		if bestMask == 0 {
			return nil, fmt.Errorf("engine: cannot plan join of %v", tables)
		}
		parts = append(parts, dp[bestMask])
		masks = append(masks, bestMask)
		remaining &^= bestMask
	}
	cur := parts[0]
	curMask := masks[0]
	for i := 1; i < len(parts); i++ {
		curMask |= masks[i]
		rows := card[curMask] // internal joins only; cross product handled by card
		rows = math.Max(rows, cur.Rows*parts[i].Rows/math.Max(cur.Rows, 1))
		cost := cur.Cost + parts[i].Cost + cur.Rows*parts[i].Rows*cpuTupleCost
		cur = newNode(NestLoop, cost, rows, cur, parts[i])
	}
	return cur, nil
}

// finishPlan applies multi-table filters, aggregation, HAVING and ORDER BY
// on top of the joined (or scanned) input.
func (e *Engine) finishPlan(q *sqlx.Query, input *PlanNode, inputOrder []string, topGroups []predGroup, mode Mode) *PlanNode {
	plan := input
	rows := plan.Rows

	if len(topGroups) > 0 {
		sel := 1.0
		terms := 0
		for _, g := range topGroups {
			sel *= e.groupSel(g, mode)
			terms += len(g.preds)
		}
		rows = math.Max(1, rows*sel)
		cost := plan.Cost + plan.Rows*float64(terms)*cpuOpCost
		plan = newNode(Result, cost, rows, plan)
	}

	hasAgg := q.Having != nil
	for _, s := range q.Select {
		if s.Agg != "" {
			hasAgg = true
		}
	}

	orderSatisfied := func(cols []sqlx.ColumnRef) bool {
		if len(cols) == 0 {
			return true
		}
		var want []string
		table := cols[0].Table
		for _, c := range cols {
			if c.Table != table {
				return false
			}
			want = append(want, c.Column)
		}
		return plan == input && providesOrder(inputOrder, want)
	}

	if len(q.GroupBy) > 0 {
		groups := 1.0
		for _, c := range q.GroupBy {
			groups *= e.columnNDV(c, mode)
		}
		groups = math.Min(groups, rows)
		if groups < 1 {
			groups = 1
		}
		if orderSatisfied(q.GroupBy) {
			cost := plan.Cost + rows*cpuTupleCost + groups*cpuTupleCost
			plan = newNode(GroupAggregate, cost, groups, plan)
		} else {
			cost := plan.Cost + rows*cpuTupleCost*1.2 + groups*cpuTupleCost
			plan = newNode(HashAggregate, cost, groups, plan)
		}
		rows = groups
		if q.Having != nil {
			rows = math.Max(1, rows/3) // default HAVING selectivity
			plan.Rows = rows
			plan.Cost += plan.Children[0].Rows * cpuOpCost
		}
	} else if hasAgg {
		cost := plan.Cost + rows*cpuTupleCost
		plan = newNode(GroupAggregate, cost, 1, plan)
		rows = 1
	}

	if len(q.OrderBy) > 0 && rows > 1 {
		sorted := len(q.GroupBy) == 0 && orderSatisfied(q.OrderBy)
		if !sorted {
			plan = newNode(Sort, plan.Cost+sortCost(rows), rows, plan)
		}
	}
	return plan
}
