package engine

import (
	"math/rand"
	"testing"
	"testing/quick"

	"github.com/trap-repro/trap/internal/schema"
	"github.com/trap-repro/trap/internal/sqlx"
	"github.com/trap-repro/trap/internal/stats"
)

// testSchema builds a small orders/customers/items star schema.
func testSchema() *schema.Schema {
	orders := schema.NewTable("orders", 500_000, []schema.Column{
		{Name: "id", Type: schema.IntCol, Width: 8, Dist: stats.Dist{NDV: 500_000, Min: 0, Max: 499_999}},
		{Name: "cust_id", Type: schema.IntCol, Width: 8, Dist: stats.Dist{NDV: 20_000, Min: 0, Max: 19_999}},
		{Name: "item_id", Type: schema.IntCol, Width: 8, Dist: stats.Dist{NDV: 5_000, Min: 0, Max: 4_999}},
		{Name: "status", Type: schema.StringCol, Width: 12, Dist: stats.Dist{NDV: 6, Min: 0, Max: 5, Skew: 1}},
		{Name: "total", Type: schema.FloatCol, Width: 8, Dist: stats.Dist{NDV: 100_000, Min: 0, Max: 99_999}},
		{Name: "odate", Type: schema.DateCol, Width: 8, Dist: stats.Dist{NDV: 2_000, Min: 0, Max: 1_999}},
	})
	customers := schema.NewTable("customers", 20_000, []schema.Column{
		{Name: "id", Type: schema.IntCol, Width: 8, Dist: stats.Dist{NDV: 20_000, Min: 0, Max: 19_999}},
		{Name: "region", Type: schema.StringCol, Width: 16, Dist: stats.Dist{NDV: 25, Min: 0, Max: 24}},
		{Name: "segment", Type: schema.StringCol, Width: 16, Dist: stats.Dist{NDV: 5, Min: 0, Max: 4}},
	})
	items := schema.NewTable("items", 5_000, []schema.Column{
		{Name: "id", Type: schema.IntCol, Width: 8, Dist: stats.Dist{NDV: 5_000, Min: 0, Max: 4_999}},
		{Name: "price", Type: schema.FloatCol, Width: 8, Dist: stats.Dist{NDV: 2_000, Min: 1, Max: 2_000}},
		{Name: "category", Type: schema.StringCol, Width: 16, Dist: stats.Dist{NDV: 40, Min: 0, Max: 39, Skew: 0.8}},
	})
	s := schema.New("teststar", []*schema.Table{orders, customers, items}, []schema.JoinEdge{
		{LeftTable: "orders", LeftColumn: "cust_id", RightTable: "customers", RightColumn: "id"},
		{LeftTable: "orders", LeftColumn: "item_id", RightTable: "items", RightColumn: "id"},
	})
	s.SetCorrelation("orders", "status", "total", 0.7)
	return s
}

func mustCost(t *testing.T, e *Engine, sql string, cfg schema.Config, mode Mode) float64 {
	t.Helper()
	c, err := e.QueryCost(sqlx.MustParse(sql), cfg, mode)
	if err != nil {
		t.Fatalf("QueryCost(%s): %v", sql, err)
	}
	return c
}

func TestSeqScanBaseline(t *testing.T) {
	e := New(testSchema())
	q := sqlx.MustParse("SELECT orders.total FROM orders WHERE orders.total > 50000")
	p, err := e.Plan(q, nil, ModeEstimated)
	if err != nil {
		t.Fatal(err)
	}
	if p.Type != SeqScan {
		t.Errorf("plan without indexes should be SeqScan, got %s", p.Type)
	}
	if p.Rows <= 0 || p.Cost <= 0 {
		t.Errorf("non-positive rows/cost: %v %v", p.Rows, p.Cost)
	}
}

func TestSelectiveIndexBeatsSeqScan(t *testing.T) {
	e := New(testSchema())
	sql := "SELECT orders.total FROM orders WHERE orders.cust_id = 42"
	ix := schema.Index{Table: "orders", Columns: []string{"cust_id"}}
	without := mustCost(t, e, sql, nil, ModeEstimated)
	with := mustCost(t, e, sql, schema.Config{ix}, ModeEstimated)
	if with >= without {
		t.Errorf("selective index did not reduce cost: %v >= %v", with, without)
	}
	p, _ := e.Plan(sqlx.MustParse(sql), schema.Config{ix}, ModeEstimated)
	if p.Type != IndexScan {
		t.Errorf("expected IndexScan, got:\n%s", p)
	}
}

func TestCoveringIndexOnlyScan(t *testing.T) {
	e := New(testSchema())
	sql := "SELECT orders.total FROM orders WHERE orders.cust_id = 42"
	narrow := schema.Index{Table: "orders", Columns: []string{"cust_id"}}
	covering := schema.Index{Table: "orders", Columns: []string{"cust_id", "total"}}
	cNarrow := mustCost(t, e, sql, schema.Config{narrow}, ModeEstimated)
	cCover := mustCost(t, e, sql, schema.Config{covering}, ModeEstimated)
	if cCover >= cNarrow {
		t.Errorf("covering index should beat heap-fetching index: %v >= %v", cCover, cNarrow)
	}
	p, _ := e.Plan(sqlx.MustParse(sql), schema.Config{covering}, ModeEstimated)
	if p.Type != IndexOnlyScan {
		t.Errorf("expected IndexOnlyScan, got:\n%s", p)
	}
}

func TestUnselectivePredicatePrefersSeqScan(t *testing.T) {
	e := New(testSchema())
	// Non-covering index on a predicate matching ~all rows: the heap
	// fetches make the index strictly worse than a sequential scan.
	sql := "SELECT orders.id FROM orders WHERE orders.total >= 1"
	ix := schema.Index{Table: "orders", Columns: []string{"total"}}
	p, err := e.Plan(sqlx.MustParse(sql), schema.Config{ix}, ModeEstimated)
	if err != nil {
		t.Fatal(err)
	}
	if p.Type != SeqScan {
		t.Errorf("near-full-table predicate should use SeqScan, got %s", p.Type)
	}
}

func TestMultiColumnPrefixMatching(t *testing.T) {
	e := New(testSchema())
	sql := "SELECT orders.id FROM orders WHERE orders.cust_id = 5 AND orders.odate < 100"
	one := schema.Config{{Table: "orders", Columns: []string{"cust_id"}}}
	two := schema.Config{{Table: "orders", Columns: []string{"cust_id", "odate"}}}
	cOne := mustCost(t, e, sql, one, ModeEstimated)
	cTwo := mustCost(t, e, sql, two, ModeEstimated)
	if cTwo >= cOne {
		t.Errorf("two-column prefix match should be cheaper: %v >= %v", cTwo, cOne)
	}
	// A range on the second column without the first cannot match.
	q3 := sqlx.MustParse("SELECT orders.id FROM orders WHERE orders.odate < 100")
	p3, _ := e.Plan(q3, schema.Config{{Table: "orders", Columns: []string{"status", "odate"}}}, ModeEstimated)
	if p3.Type != SeqScan {
		t.Errorf("non-prefix predicate must not use the index, got %s", p3.Type)
	}
}

func TestOrConjunctionDisablesIndex(t *testing.T) {
	e := New(testSchema())
	ix := schema.Index{Table: "orders", Columns: []string{"cust_id"}}
	cfg := schema.Config{ix}
	and := sqlx.MustParse("SELECT orders.id FROM orders WHERE orders.cust_id = 5 AND orders.status = 'status_1'")
	or := sqlx.MustParse("SELECT orders.id FROM orders WHERE orders.cust_id = 5 OR orders.status = 'status_1'")
	pAnd, _ := e.Plan(and, cfg, ModeEstimated)
	pOr, _ := e.Plan(or, cfg, ModeEstimated)
	if pAnd.Type != IndexScan {
		t.Errorf("AND query should use index, got %s", pAnd.Type)
	}
	if pOr.Type != SeqScan {
		t.Errorf("OR query must fall back to SeqScan, got %s", pOr.Type)
	}
}

func TestNotEqualIsNotSargable(t *testing.T) {
	e := New(testSchema())
	ix := schema.Index{Table: "orders", Columns: []string{"cust_id"}}
	q := sqlx.MustParse("SELECT orders.id FROM orders WHERE orders.cust_id != 5")
	p, _ := e.Plan(q, schema.Config{ix}, ModeEstimated)
	if p.Type != SeqScan {
		t.Errorf("!= predicate must not use the index, got %s", p.Type)
	}
}

func TestOrderByIndexAvoidsSort(t *testing.T) {
	e := New(testSchema())
	sql := "SELECT orders.odate FROM orders ORDER BY orders.odate"
	q := sqlx.MustParse(sql)
	pNo, _ := e.Plan(q, nil, ModeEstimated)
	hasSort := false
	pNo.Walk(func(n *PlanNode) {
		if n.Type == Sort {
			hasSort = true
		}
	})
	if !hasSort {
		t.Fatalf("plan without index must sort:\n%s", pNo)
	}
	ix := schema.Index{Table: "orders", Columns: []string{"odate"}}
	pIx, _ := e.Plan(q, schema.Config{ix}, ModeEstimated)
	pIx.Walk(func(n *PlanNode) {
		if n.Type == Sort {
			t.Errorf("ordered index scan should avoid Sort:\n%s", pIx)
		}
	})
	if pIx.Cost >= pNo.Cost {
		t.Errorf("order-providing index should be cheaper: %v >= %v", pIx.Cost, pNo.Cost)
	}
}

func TestJoinPlansAndIndexNL(t *testing.T) {
	e := New(testSchema())
	sql := "SELECT customers.region FROM orders, customers " +
		"WHERE orders.cust_id = customers.id AND orders.odate = 17"
	q := sqlx.MustParse(sql)
	pHash, err := e.Plan(q, nil, ModeEstimated)
	if err != nil {
		t.Fatal(err)
	}
	joinSeen := false
	pHash.Walk(func(n *PlanNode) {
		if n.Type == HashJoin || n.Type == MergeJoin || n.Type == NestLoop {
			joinSeen = true
		}
	})
	if !joinSeen {
		t.Fatalf("no join operator:\n%s", pHash)
	}
	// An index on customers.id enables an indexed nested loop that beats
	// the hash join when the outer side is tiny.
	cfg := schema.Config{
		{Table: "customers", Columns: []string{"id"}},
		{Table: "orders", Columns: []string{"odate"}},
	}
	pNL, err := e.Plan(q, cfg, ModeEstimated)
	if err != nil {
		t.Fatal(err)
	}
	if pNL.Cost >= pHash.Cost {
		t.Errorf("indexes should reduce join cost: %v >= %v", pNL.Cost, pHash.Cost)
	}
}

func TestThreeWayJoin(t *testing.T) {
	e := New(testSchema())
	sql := "SELECT items.category, COUNT(orders.id) FROM orders, customers, items " +
		"WHERE orders.cust_id = customers.id AND orders.item_id = items.id " +
		"AND customers.region = 'region_3' GROUP BY items.category"
	q := sqlx.MustParse(sql)
	p, err := e.Plan(q, nil, ModeEstimated)
	if err != nil {
		t.Fatal(err)
	}
	scans := 0
	p.Walk(func(n *PlanNode) {
		if n.Type == SeqScan || n.Type == IndexScan || n.Type == IndexOnlyScan {
			scans++
		}
	})
	if scans != 3 {
		t.Errorf("three-way join should have 3 scans, got %d:\n%s", scans, p)
	}
	if p.Type != HashAggregate && p.Type != GroupAggregate {
		t.Errorf("GROUP BY query should end in aggregation, got %s", p.Type)
	}
}

func TestAggregateWithoutGroupBy(t *testing.T) {
	e := New(testSchema())
	q := sqlx.MustParse("SELECT COUNT(orders.id) FROM orders WHERE orders.total > 90000")
	p, err := e.Plan(q, nil, ModeEstimated)
	if err != nil {
		t.Fatal(err)
	}
	if p.Rows != 1 {
		t.Errorf("scalar aggregate should return 1 row, got %v", p.Rows)
	}
	if p.Type != GroupAggregate {
		t.Errorf("expected aggregate root, got %s", p.Type)
	}
}

func TestHavingReducesRows(t *testing.T) {
	e := New(testSchema())
	base := sqlx.MustParse("SELECT COUNT(orders.id), orders.status FROM orders GROUP BY orders.status")
	having := sqlx.MustParse("SELECT COUNT(orders.id), orders.status FROM orders GROUP BY orders.status HAVING COUNT(orders.id) > 10")
	pb, _ := e.Plan(base, nil, ModeEstimated)
	ph, _ := e.Plan(having, nil, ModeEstimated)
	if ph.Rows >= pb.Rows {
		t.Errorf("HAVING should reduce output rows: %v >= %v", ph.Rows, pb.Rows)
	}
}

func TestTrueVsEstimatedDiverge(t *testing.T) {
	e := New(testSchema())
	// Correlated predicates: estimated mode multiplies selectivities
	// (independence), true mode respects the recorded correlation, so the
	// two modes must disagree on cardinality.
	q := sqlx.MustParse("SELECT orders.id FROM orders WHERE orders.status = 'status_0' AND orders.total <= 20000")
	pe, _ := e.Plan(q, nil, ModeEstimated)
	pt, _ := e.Plan(q, nil, ModeTrue)
	if pe.Rows == pt.Rows {
		t.Errorf("correlated predicates should diverge between modes: est=%v true=%v", pe.Rows, pt.Rows)
	}
}

func TestRuntimeCostDeterministic(t *testing.T) {
	e := New(testSchema())
	q := sqlx.MustParse("SELECT orders.id FROM orders WHERE orders.cust_id = 7")
	a, err := e.RuntimeCost(q, nil)
	if err != nil {
		t.Fatal(err)
	}
	b, _ := e.RuntimeCost(q, nil)
	if a != b {
		t.Errorf("RuntimeCost not deterministic: %v vs %v", a, b)
	}
	truth, _ := e.QueryCost(q, nil, ModeTrue)
	if a < truth*0.9 || a > truth*1.1 {
		t.Errorf("runtime noise too large: %v vs %v", a, truth)
	}
}

func TestUnknownObjectsRejected(t *testing.T) {
	e := New(testSchema())
	if _, err := e.Plan(sqlx.MustParse("SELECT nope.x FROM nope"), nil, ModeEstimated); err == nil {
		t.Error("unknown table accepted")
	}
	if _, err := e.Plan(sqlx.MustParse("SELECT orders.nope FROM orders"), nil, ModeEstimated); err == nil {
		t.Error("unknown column accepted")
	}
}

func TestPlanFeaturesShape(t *testing.T) {
	e := New(testSchema())
	q := sqlx.MustParse("SELECT customers.region FROM orders, customers " +
		"WHERE orders.cust_id = customers.id AND orders.status = 'status_1' ORDER BY customers.region")
	p, err := e.Plan(q, nil, ModeEstimated)
	if err != nil {
		t.Fatal(err)
	}
	f := PlanFeatures(p)
	if len(f) != FeatureLen {
		t.Fatalf("feature length %d, want %d", len(f), FeatureLen)
	}
	nonzero := 0
	for _, v := range f {
		if v != 0 {
			nonzero++
		}
		if v < 0 {
			t.Errorf("negative feature %v", v)
		}
	}
	if nonzero == 0 {
		t.Error("all features zero")
	}
	// Channel 0 (cost-sum) of the root's type must include the root cost.
	if f[int(p.Type)] < p.Cost {
		t.Errorf("cost-sum channel %v misses root cost %v", f[int(p.Type)], p.Cost)
	}
}

func TestPlanHeights(t *testing.T) {
	e := New(testSchema())
	q := sqlx.MustParse("SELECT customers.region FROM orders, customers WHERE orders.cust_id = customers.id")
	p, _ := e.Plan(q, nil, ModeEstimated)
	p.Walk(func(n *PlanNode) {
		if len(n.Children) == 0 && n.Height != 1 {
			t.Errorf("leaf height %d", n.Height)
		}
		for _, c := range n.Children {
			if n.Height <= c.Height {
				t.Errorf("parent height %d not above child %d", n.Height, c.Height)
			}
		}
	})
}

func TestPlanCaching(t *testing.T) {
	e := New(testSchema())
	q := sqlx.MustParse("SELECT orders.id FROM orders WHERE orders.cust_id = 7")
	p1, _ := e.Plan(q, nil, ModeEstimated)
	p2, _ := e.Plan(q, nil, ModeEstimated)
	if p1 != p2 {
		t.Error("identical calls should hit the plan cache")
	}
	e.ClearCache()
	p3, _ := e.Plan(q, nil, ModeEstimated)
	if p1 == p3 {
		t.Error("ClearCache did not clear")
	}
	if p1.Cost != p3.Cost {
		t.Error("re-planned cost differs")
	}
}

// TestQuickMoreIndexesNeverHurt checks the fundamental what-if invariant
// the advisors rely on: adding an index never increases any query's
// estimated cost (the optimizer simply ignores useless indexes).
func TestQuickMoreIndexesNeverHurt(t *testing.T) {
	s := testSchema()
	e := New(s)
	queries := []string{
		"SELECT orders.total FROM orders WHERE orders.cust_id = 42",
		"SELECT orders.id FROM orders WHERE orders.status = 'status_1' AND orders.total < 500",
		"SELECT customers.region FROM orders, customers WHERE orders.cust_id = customers.id AND orders.odate = 3",
		"SELECT items.category, COUNT(orders.id) FROM orders, items WHERE orders.item_id = items.id GROUP BY items.category",
		"SELECT orders.odate FROM orders ORDER BY orders.odate, orders.total",
	}
	var pool []schema.Index
	for _, tb := range s.Tables {
		for _, c := range tb.Columns {
			pool = append(pool, schema.Index{Table: tb.Name, Columns: []string{c.Name}})
		}
	}
	pool = append(pool,
		schema.Index{Table: "orders", Columns: []string{"cust_id", "total"}},
		schema.Index{Table: "orders", Columns: []string{"status", "odate"}},
		schema.Index{Table: "orders", Columns: []string{"odate", "total"}},
	)
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		var cfg schema.Config
		for _, ix := range pool {
			if r.Intn(3) == 0 {
				cfg = cfg.Add(ix)
			}
		}
		extra := cfg.Add(pool[r.Intn(len(pool))])
		for _, sql := range queries {
			q := sqlx.MustParse(sql)
			c1, err1 := e.QueryCost(q, cfg, ModeEstimated)
			c2, err2 := e.QueryCost(q, extra, ModeEstimated)
			if err1 != nil || err2 != nil {
				return false
			}
			if c2 > c1+1e-9 {
				t.Logf("index hurt: %s cfg=%s extra=%s %v -> %v", sql, cfg.Key(), extra.Key(), c1, c2)
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

func TestQuickCostsPositiveAndDeterministic(t *testing.T) {
	e := New(testSchema())
	queries := []*sqlx.Query{
		sqlx.MustParse("SELECT orders.id FROM orders WHERE orders.total >= 500 AND orders.status = 'status_2'"),
		sqlx.MustParse("SELECT customers.segment FROM customers WHERE customers.region = 'region_1' ORDER BY customers.segment"),
		sqlx.MustParse("SELECT orders.id FROM orders, customers, items WHERE orders.cust_id = customers.id AND orders.item_id = items.id AND items.price > 100"),
	}
	f := func(pick uint8, useIx bool) bool {
		q := queries[int(pick)%len(queries)]
		var cfg schema.Config
		if useIx {
			cfg = schema.Config{{Table: "orders", Columns: []string{"total"}}}
		}
		for _, mode := range []Mode{ModeEstimated, ModeTrue} {
			c1, err := e.QueryCost(q, cfg, mode)
			if err != nil || c1 <= 0 {
				return false
			}
			e.ClearCache()
			c2, _ := e.QueryCost(q, cfg, mode)
			if c1 != c2 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}
