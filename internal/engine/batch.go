package engine

import (
	"context"
	"sync"
	"sync/atomic"
)

// panicBox carries a recovered panic value from a worker goroutine back
// to the calling goroutine.
type panicBox struct{ v any }

// forEachItem runs fn(i) for every i in [0, n) and returns the results
// in index order. With workers <= 1 it is a plain sequential loop; with
// more it fans out over a bounded pool pulling indices from a shared
// counter. Either way cancellation is honored at item granularity, and
// when several items fail the error of the lowest index is returned, so
// the error choice is deterministic regardless of scheduling. A panic in
// fn is captured and re-raised on the calling goroutine after the pool
// drains, so fault-injected panics keep their synchronous crash
// semantics instead of killing the process from an anonymous worker.
func forEachItem(ctx context.Context, workers, n int, fn func(i int) (float64, error)) ([]float64, error) {
	out := make([]float64, n)
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		for i := 0; i < n; i++ {
			if err := ctx.Err(); err != nil {
				return nil, err
			}
			c, err := fn(i)
			if err != nil {
				return nil, err
			}
			out[i] = c
		}
		return out, nil
	}

	var (
		next atomic.Int64
		stop atomic.Bool
		pan  atomic.Pointer[panicBox]
		wg   sync.WaitGroup
	)
	errs := make([]error, n)
	worker := func() {
		defer wg.Done()
		defer func() {
			if r := recover(); r != nil {
				pan.CompareAndSwap(nil, &panicBox{v: r})
				stop.Store(true)
			}
		}()
		for !stop.Load() {
			i := int(next.Add(1)) - 1
			if i >= n {
				return
			}
			if err := ctx.Err(); err != nil {
				errs[i] = err
				stop.Store(true)
				return
			}
			c, err := fn(i)
			if err != nil {
				errs[i] = err
				stop.Store(true)
				return
			}
			out[i] = c
		}
	}
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go worker()
	}
	wg.Wait()
	if p := pan.Load(); p != nil {
		panic(p.v)
	}
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	return out, nil
}
