package engine

import (
	"context"
	"sync"

	"github.com/trap-repro/trap/internal/par"
	"github.com/trap-repro/trap/internal/schema"
)

// batchScratch is the reusable per-batch state: the indexed cost slice
// and one plan-key buffer per worker. Pooled so steady-state
// CostBatch/RuntimeBatch calls allocate only the item closure.
type batchScratch struct {
	out []float64
	kbs []*keyBuf
}

var batchScratchPool = sync.Pool{New: func() any { return new(batchScratch) }}

// weightedBatch prices every item (with queryCost, or runtimeCost when
// runtime is set), fanning out over par.ForEachWorker's bounded pool,
// then reduces the weighted total sequentially in item order — which
// keeps parallel totals bit-identical to sequential execution. Each
// worker borrows one plan-key buffer for its whole run — exclusive to
// it by the ForEachWorker contract — so batch costing builds cache keys
// with no cross-worker scratch sharing and no steady-state allocation
// beyond the single fan-out closure (see internal/par for the
// cancellation, error-selection and panic re-raise semantics).
func (e *Engine) weightedBatch(ctx context.Context, items []CostItem, cfg schema.Config, mode Mode, runtime bool) (float64, error) {
	n := len(items)
	workers := e.BatchWorkers()
	if workers > n {
		workers = n
	}
	if workers < 1 {
		workers = 1
	}
	sc := batchScratchPool.Get().(*batchScratch)
	if cap(sc.out) < n {
		sc.out = make([]float64, n)
	}
	out := sc.out[:n]
	for len(sc.kbs) < workers {
		sc.kbs = append(sc.kbs, new(keyBuf))
	}
	kbs := sc.kbs
	err := par.ForEachWorker(ctx, workers, n, func(w, i int) error {
		var c float64
		var err error
		if runtime {
			c, err = e.runtimeCost(kbs[w], items[i].Q, cfg)
		} else {
			c, err = e.queryCost(kbs[w], items[i].Q, cfg, mode)
		}
		if err != nil {
			return err
		}
		out[i] = c
		return nil
	})
	var total float64
	if err == nil {
		for i, it := range items {
			total += out[i] * it.Weight
		}
	}
	batchScratchPool.Put(sc)
	if err != nil {
		return 0, err
	}
	return total, nil
}
