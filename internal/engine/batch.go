package engine

import (
	"context"

	"github.com/trap-repro/trap/internal/par"
)

// forEachItem runs fn(i) for every i in [0, n) and returns the results
// in index order, fanning out over par.ForEach's bounded worker pool.
// The caller reduces the returned slice sequentially, which keeps
// parallel cost totals bit-identical to sequential execution (see
// internal/par for the cancellation, error-selection and panic
// re-raise semantics).
func forEachItem(ctx context.Context, workers, n int, fn func(i int) (float64, error)) ([]float64, error) {
	out := make([]float64, n)
	err := par.ForEach(ctx, workers, n, func(i int) error {
		c, err := fn(i)
		if err != nil {
			return err
		}
		out[i] = c
		return nil
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}
