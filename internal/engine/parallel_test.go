package engine

import (
	"context"
	"errors"
	"fmt"
	"math"
	"runtime"
	"sync"
	"testing"

	"github.com/trap-repro/trap/internal/schema"
	"github.com/trap-repro/trap/internal/sqlx"
)

// batchFixture builds a weighted batch of distinct queries plus an index
// configuration that makes several of the plans index scans.
func batchFixture(n int) ([]CostItem, schema.Config) {
	cfg := schema.Config{}.
		Add(schema.Index{Table: "orders", Columns: []string{"cust_id"}}).
		Add(schema.Index{Table: "orders", Columns: []string{"total"}}).
		Add(schema.Index{Table: "customers", Columns: []string{"id", "region"}})
	items := make([]CostItem, 0, n)
	for i := 0; i < n; i++ {
		var sql string
		switch i % 3 {
		case 0:
			sql = fmt.Sprintf("SELECT orders.total FROM orders WHERE orders.total < %d", 100+i*53)
		case 1:
			sql = fmt.Sprintf(
				"SELECT orders.total FROM orders, customers WHERE orders.cust_id = customers.id AND orders.total < %d",
				1000+i*37)
		default:
			sql = fmt.Sprintf(
				"SELECT customers.region FROM customers WHERE customers.id = %d ORDER BY customers.region", i)
		}
		items = append(items, CostItem{Q: sqlx.MustParse(sql), Weight: 0.1 + float64(i%7)*0.3})
	}
	return items, cfg
}

// TestCostBatchParallelMatchesSequential proves the tentpole determinism
// claim: the parallel fan-out produces a bit-identical weighted total to
// the sequential path, in both statistics modes, cold and warm cache.
func TestCostBatchParallelMatchesSequential(t *testing.T) {
	items, cfg := batchFixture(40)
	for _, mode := range []Mode{ModeEstimated, ModeTrue} {
		seqE := New(testSchema())
		seqE.SetBatchWorkers(1)
		parE := New(testSchema())
		parE.SetBatchWorkers(8)

		for _, pass := range []string{"cold", "warm"} {
			want, err := seqE.CostBatch(context.Background(), items, cfg, mode)
			if err != nil {
				t.Fatal(err)
			}
			got, err := parE.CostBatch(context.Background(), items, cfg, mode)
			if err != nil {
				t.Fatal(err)
			}
			if math.Float64bits(got) != math.Float64bits(want) {
				t.Fatalf("mode %v %s cache: parallel %v != sequential %v (not bit-identical)",
					mode, pass, got, want)
			}
		}

		// RuntimeBatch must match the item-by-item RuntimeCost sum too.
		var want float64
		for _, it := range items {
			c, err := seqE.RuntimeCost(it.Q, cfg)
			if err != nil {
				t.Fatal(err)
			}
			want += it.Weight * c
		}
		got, err := parE.RuntimeBatch(context.Background(), items, cfg)
		if err != nil {
			t.Fatal(err)
		}
		if math.Float64bits(got) != math.Float64bits(want) {
			t.Fatalf("mode %v: RuntimeBatch %v != sequential %v (not bit-identical)", mode, got, want)
		}
	}
}

// TestCostBatchCancellation verifies a canceled context aborts the batch
// with the context's error on both the sequential and parallel paths.
func TestCostBatchCancellation(t *testing.T) {
	items, cfg := batchFixture(16)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	for _, workers := range []int{1, 4} {
		e := New(testSchema())
		e.SetBatchWorkers(workers)
		if _, err := e.CostBatch(ctx, items, cfg, ModeEstimated); !errors.Is(err, context.Canceled) {
			t.Fatalf("workers=%d: err = %v, want context.Canceled", workers, err)
		}
		if _, err := e.RuntimeBatch(ctx, items, cfg); !errors.Is(err, context.Canceled) {
			t.Fatalf("workers=%d: RuntimeBatch err = %v, want context.Canceled", workers, err)
		}
	}
}

// TestSingleflightDedup drives cacheShard.do directly with a build
// function that blocks until all contending goroutines have arrived,
// proving the build runs once and every waiter observes the result and
// is counted as a dedup.
func TestSingleflightDedup(t *testing.T) {
	var sh cacheShard
	sh.m = map[uint64]cacheEntry{}
	sh.flight = map[uint64]*flightCall{}
	kHash := fnv1aString("k")

	const waiters = 8
	node := &PlanNode{Type: SeqScan, Cost: 42}
	started := make(chan struct{}) // closed when the builder is inside fn
	release := make(chan struct{}) // closed to let the builder finish
	var calls int
	var wg sync.WaitGroup
	results := make([]*PlanNode, waiters)

	for i := 0; i < waiters; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			p, err := sh.do(kHash, []byte("k"), 100, func() (*PlanNode, error) {
				calls++ // single-writer by construction; -race verifies
				close(started)
				<-release
				return node, nil
			})
			if err != nil {
				t.Error(err)
			}
			results[i] = p
		}(i)
	}

	<-started
	// Wait until the other goroutines are blocked in the flight wait or
	// have at least registered their miss; we can't observe "blocked in
	// wg.Wait" directly, so spin on the dedup counter.
	for sh.dedup.Load() < waiters-1 {
		runtime.Gosched()
	}
	close(release)
	wg.Wait()

	if calls != 1 {
		t.Fatalf("build ran %d times, want 1", calls)
	}
	for i, p := range results {
		if p != node {
			t.Fatalf("waiter %d got %p, want the shared node %p", i, p, node)
		}
	}
	if d := sh.dedup.Load(); d != waiters-1 {
		t.Fatalf("dedup = %d, want %d", d, waiters-1)
	}
	if m := sh.misses.Load(); m != waiters {
		t.Fatalf("misses = %d, want %d", m, waiters)
	}
	if len(sh.flight) != 0 {
		t.Fatalf("flight registry not drained: %d entries", len(sh.flight))
	}
	if e := sh.m[kHash]; e.key != "k" || e.p != node {
		t.Fatal("result was not cached")
	}
}

// TestSingleflightErrorNotCached verifies a failed build is delivered to
// the caller but never inserted into the cache.
func TestSingleflightErrorNotCached(t *testing.T) {
	var sh cacheShard
	sh.m = map[uint64]cacheEntry{}
	sh.flight = map[uint64]*flightCall{}
	boom := errors.New("boom")
	if _, err := sh.do(fnv1aString("k"), []byte("k"), 100, func() (*PlanNode, error) { return nil, boom }); !errors.Is(err, boom) {
		t.Fatalf("err = %v, want boom", err)
	}
	if len(sh.m) != 0 {
		t.Fatal("failed build was cached")
	}
	if len(sh.flight) != 0 {
		t.Fatal("flight registry not drained after error")
	}
}

// TestConcurrentPlanSharesNode plans the same key from many goroutines
// (run under -race) and asserts they all receive the same cached
// *PlanNode — the object identity the immutability contract protects.
func TestConcurrentPlanSharesNode(t *testing.T) {
	e := New(testSchema())
	q := sqlx.MustParse("SELECT orders.total FROM orders WHERE orders.total < 5000")
	cfg := schema.Config{}.Add(schema.Index{Table: "orders", Columns: []string{"total"}})

	const goroutines = 12
	nodes := make([]*PlanNode, goroutines)
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			p, err := e.Plan(q, cfg, ModeEstimated)
			if err != nil {
				t.Error(err)
				return
			}
			nodes[g] = p
			// Read-only traversal: legal under the contract, and -race
			// would flag any engine-internal mutation of the shared tree.
			p.Walk(func(n *PlanNode) { _ = n.Cost })
		}(g)
	}
	wg.Wait()
	first, err := e.Plan(q, cfg, ModeEstimated)
	if err != nil {
		t.Fatal(err)
	}
	for g, p := range nodes {
		if p != first {
			t.Fatalf("goroutine %d got a different node (%p vs %p): cache hand-out is not shared", g, p, first)
		}
	}
}

// TestSetCacheLimitShrinksOversizedCache covers the SetCacheLimit bugfix:
// lowering the limit below the current size must shrink the cache
// immediately, not leak an oversized cache for thousands of inserts.
func TestSetCacheLimitShrinksOversizedCache(t *testing.T) {
	e := New(testSchema())
	for i := 0; i < 2000; i++ {
		sql := fmt.Sprintf("SELECT orders.id FROM orders WHERE orders.total = %d", i)
		if _, err := e.QueryCost(sqlx.MustParse(sql), nil, ModeEstimated); err != nil {
			t.Fatal(err)
		}
	}
	if st := e.CacheStats(); st.Entries < 1000 {
		t.Fatalf("fixture too small: only %d entries cached", st.Entries)
	}
	const limit = 128
	e.SetCacheLimit(limit)
	if st := e.CacheStats(); st.Entries > limit {
		t.Fatalf("SetCacheLimit(%d) left %d entries in the cache", limit, st.Entries)
	}
	// And the bound keeps holding under further inserts.
	for i := 0; i < 4*limit; i++ {
		sql := fmt.Sprintf("SELECT orders.id FROM orders WHERE orders.cust_id = %d", i)
		if _, err := e.QueryCost(sqlx.MustParse(sql), nil, ModeEstimated); err != nil {
			t.Fatal(err)
		}
		if st := e.CacheStats(); st.Entries > limit {
			t.Fatalf("cache exceeded limit after shrink: %d > %d", st.Entries, limit)
		}
	}
}

// TestEvictionUnderConcurrentInsert hammers a tightly bounded cache from
// many goroutines (run under -race): the bound must hold at every
// observation point and evictions must be recorded.
func TestEvictionUnderConcurrentInsert(t *testing.T) {
	e := New(testSchema())
	const limit = 64
	e.SetCacheLimit(limit)

	const goroutines = 8
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				sql := fmt.Sprintf("SELECT orders.id FROM orders WHERE orders.total = %d", g*1000+i)
				if _, err := e.QueryCost(sqlx.MustParse(sql), nil, ModeEstimated); err != nil {
					t.Error(err)
					return
				}
				if st := e.CacheStats(); st.Entries > limit {
					t.Errorf("cache exceeded limit under concurrent insert: %d > %d", st.Entries, limit)
					return
				}
			}
		}(g)
	}
	wg.Wait()
	st := e.CacheStats()
	if st.Evicted == 0 {
		t.Fatal("no evictions recorded")
	}
	if st.Entries == 0 || st.Entries > limit {
		t.Fatalf("entries out of range after concurrent churn: %d (limit %d)", st.Entries, limit)
	}
}

// TestQueryMemoInvalidation guards the memoization contract the cache
// keys depend on: a mutated query re-renders after Invalidate, and a
// clone never shares its parent's memo.
func TestQueryMemoInvalidation(t *testing.T) {
	q := sqlx.MustParse("SELECT orders.total FROM orders WHERE orders.total < 100")
	before := q.String()
	clone := q.Clone()
	clone.Filters[0].Val = sqlx.NumDatum(999999)
	clone.Invalidate()
	if q.String() != before {
		t.Fatal("mutating a clone changed the parent's rendering")
	}
	if clone.String() == before {
		t.Fatal("Invalidate did not refresh the clone's rendering")
	}

	e := New(testSchema())
	cfg := schema.Config{}.Add(schema.Index{Table: "orders", Columns: []string{"total"}})
	p1, err := e.Plan(q, cfg, ModeEstimated)
	if err != nil {
		t.Fatal(err)
	}
	p2, err := e.Plan(clone, cfg, ModeEstimated)
	if err != nil {
		t.Fatal(err)
	}
	if p1.Rows == p2.Rows && p1.Cost == p2.Cost {
		t.Fatal("clone with a far looser predicate planned identically: stale memo in cache key")
	}
}
