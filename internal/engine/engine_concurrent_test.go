package engine

import (
	"fmt"
	"sync"
	"testing"

	"github.com/trap-repro/trap/internal/schema"
	"github.com/trap-repro/trap/internal/sqlx"
)

// TestConcurrentQueryCost hammers one engine from many goroutines mixing
// cache hits, misses and both statistics modes; run under -race it is the
// engine's concurrency-contract check.
func TestConcurrentQueryCost(t *testing.T) {
	e := New(testSchema())
	cfg := schema.Config{}.
		Add(schema.Index{Table: "orders", Columns: []string{"cust_id"}}).
		Add(schema.Index{Table: "customers", Columns: []string{"id", "region"}})

	queries := make([]*sqlx.Query, 0, 24)
	for i := 0; i < 24; i++ {
		sql := fmt.Sprintf(
			"SELECT orders.total FROM orders, customers WHERE orders.cust_id = customers.id AND orders.total < %d",
			1000+i*37)
		queries = append(queries, sqlx.MustParse(sql))
	}

	// Reference costs computed single-threaded.
	want := make(map[int][2]float64)
	for i, q := range queries {
		ce, err := e.QueryCost(q, cfg, ModeEstimated)
		if err != nil {
			t.Fatal(err)
		}
		ct, err := e.QueryCost(q, cfg, ModeTrue)
		if err != nil {
			t.Fatal(err)
		}
		want[i] = [2]float64{ce, ct}
	}
	e.ClearCache()

	const goroutines = 16
	var wg sync.WaitGroup
	errs := make(chan error, goroutines)
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(seed int) {
			defer wg.Done()
			for round := 0; round < 8; round++ {
				for i, q := range queries {
					mode := ModeEstimated
					if (seed+round+i)%2 == 0 {
						mode = ModeTrue
					}
					c, err := e.QueryCost(q, cfg, mode)
					if err != nil {
						errs <- err
						return
					}
					w := want[i][0]
					if mode == ModeTrue {
						w = want[i][1]
					}
					if c != w {
						errs <- fmt.Errorf("query %d mode %v: got %v want %v", i, mode, c, w)
						return
					}
				}
			}
		}(g)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}

	st := e.CacheStats()
	if st.Hits == 0 || st.Misses == 0 {
		t.Fatalf("expected both hits and misses, got %+v", st)
	}
	if st.Entries == 0 {
		t.Fatal("cache is empty after concurrent planning")
	}
	if r := st.HitRatio(); r <= 0 || r >= 1 {
		t.Fatalf("hit ratio out of range: %v", r)
	}
}

// TestBoundedEviction verifies crossing the cache limit evicts only a
// fraction of the entries instead of dropping the whole cache.
func TestBoundedEviction(t *testing.T) {
	e := New(testSchema())
	const limit = 64
	e.SetCacheLimit(limit)

	for i := 0; i < 4*limit; i++ {
		sql := fmt.Sprintf("SELECT orders.id FROM orders WHERE orders.total = %d", i)
		if _, err := e.QueryCost(sqlx.MustParse(sql), nil, ModeEstimated); err != nil {
			t.Fatal(err)
		}
		st := e.CacheStats()
		if st.Entries > limit {
			t.Fatalf("cache exceeded limit after %d inserts: %d > %d", i+1, st.Entries, limit)
		}
	}
	st := e.CacheStats()
	if st.Evicted == 0 {
		t.Fatal("no evictions recorded")
	}
	// Bounded eviction must keep most of the cache warm: after sustained
	// inserts well past the limit, far more than limit/8 entries survive.
	if st.Entries < limit/2 {
		t.Fatalf("eviction dropped too much: %d entries left of %d", st.Entries, limit)
	}
	// Cached entries still hit.
	before := e.CacheStats().Hits
	sql := fmt.Sprintf("SELECT orders.id FROM orders WHERE orders.total = %d", 4*limit-1)
	if _, err := e.QueryCost(sqlx.MustParse(sql), nil, ModeEstimated); err != nil {
		t.Fatal(err)
	}
	if e.CacheStats().Hits != before+1 {
		t.Fatal("most recent entry was evicted")
	}
}
