package engine

import (
	"sync"
	"sync/atomic"

	"github.com/trap-repro/trap/internal/obs"
)

// mSingleflightDedup counts plan builds that were deduplicated: callers
// that missed on a key another goroutine was already planning and waited
// for its result instead of planning again.
var mSingleflightDedup = obs.Default().Counter("engine_plan_singleflight_dedup_total")

// cacheShards is the number of independent plan-cache shards. Keys are
// spread by FNV-1a hash, so under concurrent CostBatch fan-out the
// shards' locks are (almost) never contended together. The effective
// minimum cache limit is one entry per shard.
const cacheShards = 32

// planCache is a sharded, bounded plan cache with per-shard singleflight:
// each shard holds its own map, RWMutex, in-flight plan registry and
// hit/miss/eviction tallies, so concurrent lookups on different keys
// proceed in parallel and concurrent misses on the same key plan once.
type planCache struct {
	// limit bounds the total entry count; each shard enforces
	// limit/cacheShards (minimum one entry per shard).
	limit  atomic.Int64
	shards [cacheShards]cacheShard
}

type cacheShard struct {
	hits, misses, evicted, dedup atomic.Uint64

	mu     sync.RWMutex
	m      map[uint64]cacheEntry
	flight map[uint64]*flightCall
}

// cacheEntry stores the full rendered key alongside the plan: the maps
// are keyed by the key's 64-bit FNV hash (computed incrementally from
// the memoized query-text hash, so probes never re-hash the long key),
// and the stored key verifies the hit against hash collisions.
type cacheEntry struct {
	key string
	p   *PlanNode
}

// flightCall is one in-progress plan build; waiters block on wg and read
// p/err afterwards (the WaitGroup provides the happens-before edge).
type flightCall struct {
	key string
	wg  sync.WaitGroup
	p   *PlanNode
	err error
}

func (c *planCache) init(limit int) {
	c.limit.Store(int64(limit))
	for i := range c.shards {
		c.shards[i].m = map[uint64]cacheEntry{}
		c.shards[i].flight = map[uint64]*flightCall{}
	}
}

// fnv1aString is the 64-bit FNV-1a hash of a string (used to memoize
// the query-text hash on the query's analysis).
func fnv1aString(s string) uint64 {
	h := uint64(14695981039346656037)
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= 1099511628211
	}
	return h
}

// fnv1aSeed continues an FNV-1a hash from seed over b. Shard selection
// hashes only the short mode/config suffix of a plan key this way,
// seeded with the memoized hash of the (often long) query text.
func fnv1aSeed(seed uint64, b []byte) uint64 {
	h := seed
	for _, c := range b {
		h ^= uint64(c)
		h *= 1099511628211
	}
	return h
}

func (c *planCache) shardOf(hash uint64) *cacheShard {
	return &c.shards[hash%cacheShards]
}

// shardLimit is the per-shard entry bound derived from the total limit.
func (c *planCache) shardLimit() int {
	n := int(c.limit.Load()) / cacheShards
	if n < 1 {
		n = 1
	}
	return n
}

// setLimit stores the new bound and immediately shrinks every shard that
// exceeds it, so a lowered limit takes effect at once rather than after
// many inserts.
func (c *planCache) setLimit(n int) {
	c.limit.Store(int64(n))
	lim := c.shardLimit()
	for i := range c.shards {
		sh := &c.shards[i]
		sh.mu.Lock()
		sh.evictLocked(lim)
		sh.mu.Unlock()
	}
}

// clear drops every cached plan (in-flight builds are kept: they publish
// into the fresh maps when they finish).
func (c *planCache) clear() {
	for i := range c.shards {
		sh := &c.shards[i]
		sh.mu.Lock()
		sh.m = map[uint64]cacheEntry{}
		sh.mu.Unlock()
	}
}

// stats aggregates the per-shard tallies.
func (c *planCache) stats() CacheStats {
	st := CacheStats{Shards: cacheShards}
	for i := range c.shards {
		sh := &c.shards[i]
		sh.mu.RLock()
		st.Entries += len(sh.m)
		sh.mu.RUnlock()
		st.Hits += sh.hits.Load()
		st.Misses += sh.misses.Load()
		st.Evicted += sh.evicted.Load()
		st.SingleflightDedup += sh.dedup.Load()
	}
	return st
}

// lookup is the fast path: a read-locked probe of one shard by the
// precomputed key hash, verified against the stored key. The byte key is
// only compared via the string conversion expression, which Go compiles
// without a heap copy, so hits allocate nothing.
func (s *cacheShard) lookup(hash uint64, key []byte) (*PlanNode, bool) {
	s.mu.RLock()
	e, ok := s.m[hash]
	s.mu.RUnlock()
	if !ok || e.key != string(key) {
		return nil, false
	}
	s.hits.Add(1)
	mCacheHits.Inc()
	return e.p, true
}

// do resolves a miss: it re-checks the map, joins an in-flight build of
// the same key if one exists (singleflight), or runs fn itself and
// publishes the result. Plans that fail are delivered to all waiters but
// never cached.
// Only the miss path clones the key to a heap string (for the flight
// registry and the cache insert); re-check and join probes use the
// allocation-free map index conversion.
func (s *cacheShard) do(hash uint64, key []byte, limit int, fn func() (*PlanNode, error)) (*PlanNode, error) {
	s.mu.Lock()
	if e, ok := s.m[hash]; ok && e.key == string(key) {
		s.mu.Unlock()
		s.hits.Add(1)
		mCacheHits.Inc()
		return e.p, nil
	}
	if f, ok := s.flight[hash]; ok {
		if f.key == string(key) {
			s.mu.Unlock()
			s.misses.Add(1)
			s.dedup.Add(1)
			mCacheMisses.Inc()
			mSingleflightDedup.Inc()
			f.wg.Wait()
			return f.p, f.err
		}
		// A different key is in flight under the same 64-bit hash — an
		// astronomically rare collision. Plan without singleflight; the
		// insert below simply overwrites the colliding slot.
		s.mu.Unlock()
		s.misses.Add(1)
		mCacheMisses.Inc()
		p, err := fn()
		if err == nil {
			s.mu.Lock()
			s.evictLocked(limit)
			s.m[hash] = cacheEntry{key: string(key), p: p}
			s.mu.Unlock()
		}
		return p, err
	}
	f := &flightCall{key: string(key)}
	f.wg.Add(1)
	s.flight[hash] = f
	s.mu.Unlock()

	s.misses.Add(1)
	mCacheMisses.Inc()
	p, err := fn()
	f.p, f.err = p, err

	s.mu.Lock()
	delete(s.flight, hash)
	if err == nil {
		s.evictLocked(limit)
		s.m[hash] = cacheEntry{key: f.key, p: p}
	}
	s.mu.Unlock()
	f.wg.Done()
	return p, err
}

// evictLocked enforces the shard bound: when the shard is at or over
// limit it drops enough entries to get (and stay) below it — at least
// 1/8 of the shard, to amortize eviction over many inserts, and at least
// len-limit+1, so a lowered limit is honored in one call instead of
// leaking an oversized cache for thousands of inserts. Victims are
// sampled via Go's randomized map iteration order, keeping most of the
// working set warm. Called with s.mu held for writing.
func (s *cacheShard) evictLocked(limit int) {
	if len(s.m) < limit {
		return
	}
	drop := len(s.m) / 8
	if min := len(s.m) - limit + 1; drop < min {
		drop = min
	}
	n := uint64(0)
	for k := range s.m {
		if int(n) >= drop {
			break
		}
		delete(s.m, k)
		n++
	}
	s.evicted.Add(n)
	mCacheEvicted.Add(int64(n))
}
