package engine

import (
	"github.com/trap-repro/trap/internal/sqlx"
	"github.com/trap-repro/trap/internal/stats"
)

// Mode selects which statistics the engine uses when pricing a plan.
type Mode int

const (
	// ModeEstimated uses the optimizer's histograms, NDV estimates and the
	// attribute-independence assumption — the "what-if" view advisors see.
	ModeEstimated Mode = iota
	// ModeTrue uses the exact generator distributions and ground-truth
	// correlations — the stand-in for actual runtime.
	ModeTrue
)

// String names the mode.
func (m Mode) String() string {
	if m == ModeTrue {
		return "true"
	}
	return "estimated"
}

// predGroup is a maximal run of filter predicates connected by OR; groups
// are AND-ed with each other. A group is sargable — usable for index
// matching — only when it is a single predicate whose operator is not "!=".
type predGroup struct {
	preds    []sqlx.Predicate
	tables   map[string]bool
	sargable bool
}

// groupFilters splits the query's flat filter chain into OR-groups.
func groupFilters(q *sqlx.Query) []predGroup {
	var groups []predGroup
	var cur []sqlx.Predicate
	flush := func() {
		if len(cur) == 0 {
			return
		}
		g := predGroup{preds: cur, tables: map[string]bool{}}
		for _, p := range cur {
			g.tables[p.Col.Table] = true
		}
		g.sargable = len(cur) == 1 && cur[0].Op != sqlx.OpNe
		groups = append(groups, g)
		cur = nil
	}
	for i, p := range q.Filters {
		if i > 0 && q.Conjs[i-1] != sqlx.ConjOr {
			flush()
		}
		cur = append(cur, p)
	}
	flush()
	return groups
}

// onlyTable returns the single table the group touches, or "" if several.
func (g predGroup) onlyTable() string {
	if len(g.tables) != 1 {
		return ""
	}
	for t := range g.tables {
		return t
	}
	return ""
}

// predSel estimates the selectivity of one predicate in the given mode.
func (e *Engine) predSel(p sqlx.Predicate, mode Mode) float64 {
	col := e.schema.Column(p.Col)
	if col == nil {
		return 1
	}
	v, ok := col.NumOf(p.Val)
	if !ok {
		// A literal outside the column's domain: matches (almost) nothing
		// for equality, and is given a default guess for ranges.
		if p.Op == sqlx.OpEq {
			return 1e-6
		}
		if p.Op == sqlx.OpNe {
			return 1
		}
		return 1.0 / 3
	}
	if mode == ModeTrue {
		return col.Dist.RangeSel(p.Op, v)
	}
	h := e.hist(p.Col)
	return h.RangeSelEst(p.Op, v)
}

// groupSel estimates the selectivity of an OR-group (disjuncts combined
// under independence in both modes).
func (e *Engine) groupSel(g predGroup, mode Mode) float64 {
	miss := 1.0
	for _, p := range g.preds {
		miss *= 1 - e.predSel(p, mode)
	}
	s := 1 - miss
	if s < 1e-9 {
		s = 1e-9
	}
	return s
}

// combineGroups AND-combines group selectivities on one table. In
// estimated mode the optimizer assumes independence; in true mode the
// recorded ground-truth correlation between the groups' lead columns
// inflates the joint selectivity toward min(s1, s2) — exactly the error
// class that makes what-if costs systematically wrong on correlated
// predicates.
func (e *Engine) combineGroups(table string, groups []predGroup, mode Mode) float64 {
	sel := 1.0
	var prevCol string
	for i, g := range groups {
		s := e.groupSel(g, mode)
		if i == 0 || mode == ModeEstimated {
			sel *= s
		} else {
			corr := e.schema.Correlation(table, prevCol, g.preds[0].Col.Column)
			joint := corr*minf(sel, s) + (1-corr)*sel*s
			sel = joint
		}
		prevCol = g.preds[0].Col.Column
	}
	return clamp01(sel)
}

// columnNDV returns the (mode-dependent) distinct count of a column,
// clamped to the table's row count.
func (e *Engine) columnNDV(ref sqlx.ColumnRef, mode Mode) float64 {
	col := e.schema.Column(ref)
	t := e.schema.Table(ref.Table)
	if col == nil || t == nil {
		return 1
	}
	var ndv float64
	if mode == ModeTrue {
		ndv = float64(col.Dist.NDV)
	} else {
		ndv = e.hist(ref).NDVEst
	}
	if ndv > float64(t.Rows) {
		ndv = float64(t.Rows)
	}
	if ndv < 1 {
		ndv = 1
	}
	return ndv
}

func (e *Engine) hist(ref sqlx.ColumnRef) stats.Histogram {
	e.histMu.RLock()
	h, ok := e.hists[ref]
	e.histMu.RUnlock()
	if ok {
		return h
	}
	col := e.schema.Column(ref)
	if col == nil {
		return stats.Histogram{}
	}
	h = stats.BuildHistogramErr(ref.String(), col.Dist, stats.DefaultBuckets, e.estErr)
	e.histMu.Lock()
	e.hists[ref] = h
	e.histMu.Unlock()
	return h
}

func minf(a, b float64) float64 {
	if a < b {
		return a
	}
	return b
}

func clamp01(x float64) float64 {
	if x < 1e-9 {
		return 1e-9
	}
	if x > 1 {
		return 1
	}
	return x
}
