package obs

import (
	"math"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestCounterConcurrent(t *testing.T) {
	c := &Counter{}
	const goroutines, perG = 50, 2000
	var wg sync.WaitGroup
	for i := 0; i < goroutines; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < perG; j++ {
				c.Inc()
			}
		}()
	}
	wg.Wait()
	if got := c.Value(); got != goroutines*perG {
		t.Fatalf("counter lost updates: got %d want %d", got, goroutines*perG)
	}
	c.Add(-5) // negative deltas ignored
	if got := c.Value(); got != goroutines*perG {
		t.Fatalf("negative Add changed counter: %d", got)
	}
}

func TestGauge(t *testing.T) {
	g := &Gauge{}
	g.Set(2.5)
	if g.Value() != 2.5 {
		t.Fatalf("Set/Value: %v", g.Value())
	}
	var wg sync.WaitGroup
	for i := 0; i < 20; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 100; j++ {
				g.Add(1)
				g.Add(-1)
			}
		}()
	}
	wg.Wait()
	if math.Abs(g.Value()-2.5) > 1e-9 {
		t.Fatalf("Add deltas did not cancel: %v", g.Value())
	}
}

func TestHistogramQuantiles(t *testing.T) {
	h := &Histogram{}
	// Uniform 1..1000: p50 ~ 500, p99 ~ 990.
	for i := 1; i <= 1000; i++ {
		h.Observe(float64(i))
	}
	if h.Count() != 1000 {
		t.Fatalf("count: %d", h.Count())
	}
	wantSum := 1000.0 * 1001 / 2
	if math.Abs(h.Sum()-wantSum) > 1e-6 {
		t.Fatalf("sum: %v want %v", h.Sum(), wantSum)
	}
	checks := []struct{ q, want, relTol float64 }{
		{0, 1, 0},       // exact min
		{1, 1000, 0},    // exact max
		{0.5, 500, 0.1}, // bucketed: ~9% relative error
		{0.9, 900, 0.1},
		{0.99, 990, 0.1},
	}
	for _, c := range checks {
		got := h.Quantile(c.q)
		if math.Abs(got-c.want) > c.relTol*c.want {
			t.Errorf("Quantile(%v) = %v, want %v ± %v%%", c.q, got, c.want, c.relTol*100)
		}
	}
}

func TestHistogramEdgeCases(t *testing.T) {
	h := &Histogram{}
	if h.Quantile(0.5) != 0 || h.Mean() != 0 {
		t.Fatal("empty histogram should report zeros")
	}
	h.Observe(0)    // underflow bucket
	h.Observe(-3)   // underflow bucket
	h.Observe(1e30) // clamped into the top bucket
	if h.Count() != 3 {
		t.Fatalf("count: %d", h.Count())
	}
	if got := h.Quantile(0); got != -3 {
		t.Fatalf("min: %v", got)
	}
	if got := h.Quantile(1); got != 1e30 {
		t.Fatalf("max: %v", got)
	}
	// Low quantiles resolve to the exact min when underflow dominates.
	if got := h.Quantile(0.3); got != -3 {
		t.Fatalf("underflow quantile: %v", got)
	}
}

func TestHistogramConcurrent(t *testing.T) {
	h := &Histogram{}
	var wg sync.WaitGroup
	for i := 0; i < 16; i++ {
		wg.Add(1)
		go func(base int) {
			defer wg.Done()
			for j := 0; j < 500; j++ {
				h.Observe(float64(base*500 + j + 1))
			}
		}(i)
	}
	wg.Wait()
	if h.Count() != 16*500 {
		t.Fatalf("count: %d", h.Count())
	}
}

func TestSpan(t *testing.T) {
	h := &Histogram{}
	sp := StartSpan(h)
	time.Sleep(time.Millisecond)
	d := sp.End()
	if d <= 0 {
		t.Fatalf("span duration: %v", d)
	}
	if h.Count() != 1 || h.Sum() <= 0 {
		t.Fatalf("span did not record: count=%d sum=%v", h.Count(), h.Sum())
	}
	// Nil-histogram spans are safe no-ops.
	StartSpan(nil).End()
}

func TestRegistryExposition(t *testing.T) {
	r := NewRegistry()
	r.Counter("requests_total").Add(7)
	r.Gauge("temperature").Set(21.5)
	r.GaugeFunc("cache_entries", func() float64 { return 42 })
	h := r.Histogram("latency_seconds")
	h.Observe(0.5)
	h.Observe(1.5)

	// Get-or-create must return the same instance.
	if r.Counter("requests_total").Value() != 7 {
		t.Fatal("counter identity lost")
	}

	var b strings.Builder
	if err := r.WriteText(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{
		"requests_total 7\n",
		"temperature 21.5\n",
		"cache_entries 42\n",
		"latency_seconds_count 2\n",
		"latency_seconds_sum 2\n",
		`latency_seconds{q="0.5"}`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q in:\n%s", want, out)
		}
	}
	// Sorted output: cache_entries before latency before requests before temperature.
	if strings.Index(out, "cache_entries") > strings.Index(out, "requests_total") {
		t.Error("exposition not sorted")
	}
}

func TestRegistryConcurrentGetOrCreate(t *testing.T) {
	r := NewRegistry()
	var wg sync.WaitGroup
	for i := 0; i < 32; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 200; j++ {
				r.Counter("shared").Inc()
				r.Histogram("h").Observe(1)
				r.Gauge("g").Set(1)
			}
		}()
	}
	wg.Wait()
	if r.Counter("shared").Value() != 32*200 {
		t.Fatalf("lost increments across get-or-create: %d", r.Counter("shared").Value())
	}
}
