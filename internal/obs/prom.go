package obs

import (
	"fmt"
	"io"
	"math"
	"sort"
	"strings"
)

// Prometheus-compatible exposition: # HELP/# TYPE headers per metric
// family, cumulative _bucket/_sum/_count series for histograms, and
// (in OpenMetrics mode) exemplars linking slow buckets back to the
// trace that populated them.
//
// The exposition content types, matched to the formats WriteProm emits.
const (
	// ContentTypeProm is the text exposition format v0.0.4 content type.
	ContentTypeProm = "text/plain; version=0.0.4; charset=utf-8"
	// ContentTypeOpenMetrics is the OpenMetrics content type (exemplars
	// are only legal in this format).
	ContentTypeOpenMetrics = "application/openmetrics-text; version=1.0.0; charset=utf-8"
)

// promBucket is one emitted histogram boundary.
type promBucket struct {
	le  float64 // upper bound (inclusive), +Inf for the last
	cum int64   // cumulative count of observations <= le
	ex  Exemplar
}

// promSnapshot condenses the 8-per-pow2 internal buckets to
// power-of-two exposition boundaries under one lock hold: boundaries
// whose bucket is empty are skipped (the cumulative counts stay exact
// and monotone), and each emitted boundary carries the freshest
// exemplar of the internal buckets it covers.
func (h *Histogram) promSnapshot() (bs []promBucket, count int64, sum float64) {
	h.mu.Lock()
	defer h.mu.Unlock()
	cum := h.under
	for p := 0; p < histMaxPow2-histMinPow2; p++ {
		var n int64
		var ex Exemplar
		for i := p * histBucketsPerPow2; i < (p+1)*histBucketsPerPow2; i++ {
			n += h.buckets[i]
			if e, ok := h.exemplars[i]; ok && (ex.TraceID == "" || e.Time.After(ex.Time)) {
				ex = e
			}
		}
		cum += n
		if n == 0 {
			continue
		}
		bs = append(bs, promBucket{le: math.Exp2(float64(p + 1 + histMinPow2)), cum: cum, ex: ex})
	}
	bs = append(bs, promBucket{le: math.Inf(1), cum: h.count})
	return bs, h.count, h.sum
}

// familyName strips a label suffix: `name{k="v"}` → `name`.
func familyName(name string) string {
	if i := strings.IndexByte(name, '{'); i >= 0 {
		return name[:i]
	}
	return name
}

// labelEscaper rewrites a label value per the exposition formats:
// backslash, double-quote and newline must be escaped inside quoted
// label values (both text format v0.0.4 and OpenMetrics).
var labelEscaper = strings.NewReplacer(`\`, `\\`, `"`, `\"`, "\n", `\n`)

// escapeLabelValue renders a raw string safe for use inside a quoted
// label value.
func escapeLabelValue(v string) string { return labelEscaper.Replace(v) }

// helpEscaper rewrites HELP text: only backslash and newline are
// escaped there (quotes are legal in HELP lines).
var helpEscaper = strings.NewReplacer(`\`, `\\`, "\n", `\n`)

// escapeHelp renders a raw string safe for a # HELP line.
func escapeHelp(v string) string { return helpEscaper.Replace(v) }

// withLabel splices an extra label into a possibly-labeled series name,
// escaping the value:
// withLabel(`m`, `le`, `1`) → `m{le="1"}`;
// withLabel(`m{a="b"}`, `le`, `1`) → `m{a="b",le="1"}`.
func withLabel(name, key, val string) string {
	val = escapeLabelValue(val)
	if i := strings.IndexByte(name, '{'); i >= 0 && strings.HasSuffix(name, "}") {
		return name[:len(name)-1] + "," + key + "=\"" + val + "\"}"
	}
	return name + "{" + key + "=\"" + val + "\"}"
}

// formatLe renders a bucket boundary the way Prometheus expects.
func formatLe(le float64) string {
	if math.IsInf(le, 1) {
		return "+Inf"
	}
	return trimFloat(le)
}

// trimFloat formats a float compactly
func trimFloat(v float64) string {
	return fmt.Sprintf("%g", v)
}

// promFamily is one metric family being assembled for exposition.
type promFamily struct {
	name  string
	typ   string // counter | gauge | histogram
	lines []string
}

// WriteProm renders the registry in the Prometheus text exposition
// format (version 0.0.4): one # TYPE (and # HELP where described)
// header per family, families and series sorted by name, histograms
// expanded to cumulative _bucket/_sum/_count series. With openMetrics
// set it emits exemplars on _bucket lines and the terminating # EOF
// marker of the OpenMetrics format instead.
func (r *Registry) WriteProm(w io.Writer, openMetrics bool) error {
	r.mu.RLock()
	fams := map[string]*promFamily{}
	family := func(name, typ string) *promFamily {
		fam := fams[name]
		if fam == nil {
			fam = &promFamily{name: name, typ: typ}
			fams[name] = fam
		}
		return fam
	}
	for n, c := range r.counters {
		fam := family(familyName(n), "counter")
		fam.lines = append(fam.lines, fmt.Sprintf("%s %d", n, c.Value()))
	}
	if d := r.dropped.Load(); d > 0 {
		// Surface cap pressure in the exposition itself: a scrape that is
		// missing series should say why.
		fam := family("obs_registry_dropped_total", "counter")
		fam.lines = append(fam.lines, fmt.Sprintf("obs_registry_dropped_total %d", d))
	}
	for n, g := range r.gauges {
		fam := family(familyName(n), "gauge")
		fam.lines = append(fam.lines, fmt.Sprintf("%s %g", n, g.Value()))
	}
	fns := make(map[string]func() float64, len(r.gaugeFuncs))
	for n, fn := range r.gaugeFuncs {
		fns[n] = fn
	}
	type histEntry struct {
		name string
		h    *Histogram
	}
	var hists []histEntry
	for n, h := range r.hists {
		hists = append(hists, histEntry{n, h})
	}
	help := make(map[string]string, len(r.help))
	for n, h := range r.help {
		help[n] = h
	}
	r.mu.RUnlock()

	// Histograms and callback gauges are rendered outside the registry
	// lock: snapshots take the histogram locks, callbacks may take
	// arbitrary locks of their own (e.g. an engine's cache mutex).
	for n, fn := range fns {
		fam := family(familyName(n), "gauge")
		fam.lines = append(fam.lines, fmt.Sprintf("%s %g", n, fn()))
	}
	for _, he := range hists {
		fam := family(familyName(he.name), "histogram")
		bs, count, sum := he.h.promSnapshot()
		for _, b := range bs {
			line := fmt.Sprintf("%s %d",
				withLabel(he.name+"_bucket", "le", formatLe(b.le)), b.cum)
			if openMetrics && b.ex.TraceID != "" {
				line += fmt.Sprintf(" # {trace_id=\"%s\"} %g %.3f",
					escapeLabelValue(b.ex.TraceID), b.ex.Value, float64(b.ex.Time.UnixMilli())/1000)
			}
			fam.lines = append(fam.lines, line)
		}
		fam.lines = append(fam.lines,
			fmt.Sprintf("%s_sum %g", he.name, sum),
			fmt.Sprintf("%s_count %d", he.name, count))
	}

	names := make([]string, 0, len(fams))
	for n := range fams {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, n := range names {
		fam := fams[n]
		if h := help[n]; h != "" {
			if _, err := fmt.Fprintf(w, "# HELP %s %s\n", n, escapeHelp(h)); err != nil {
				return err
			}
		}
		if _, err := fmt.Fprintf(w, "# TYPE %s %s\n", n, fam.typ); err != nil {
			return err
		}
		// Series within one family sort lexically, except histogram
		// buckets, which keep their ascending-le order (lexical sorting
		// would shuffle numeric boundaries).
		if fam.typ != "histogram" {
			sort.Strings(fam.lines)
		}
		for _, l := range fam.lines {
			if _, err := fmt.Fprintln(w, l); err != nil {
				return err
			}
		}
	}
	if openMetrics {
		if _, err := fmt.Fprintln(w, "# EOF"); err != nil {
			return err
		}
	}
	return nil
}
