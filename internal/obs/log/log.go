// Package log is trapd's structured, leveled logger: a thin layer over
// log/slog whose handler stamps every record with the request context's
// job ID and trace/span IDs (see internal/trace), so a log line from
// deep inside a worker pool is attributable to the exact job and trace
// that produced it.
//
//	logger := log.New(os.Stderr, slog.LevelInfo, log.FormatText)
//	ctx = log.WithJob(ctx, "job-42")
//	logger.Info(ctx, "suite built", "dataset", "tpch", "ms", 412)
//	// time=... level=INFO msg="suite built" dataset=tpch ms=412 job=job-42
//
// With an active trace on ctx the line additionally carries
// trace=<16-hex id> and span=<id>.
package log

import (
	"context"
	"fmt"
	"io"
	"log/slog"
	"strings"

	"github.com/trap-repro/trap/internal/trace"
)

// Output formats accepted by New.
const (
	FormatText = "text"
	FormatJSON = "json"
)

// ParseLevel maps a flag string (debug, info, warn, error) to a level.
func ParseLevel(s string) (slog.Level, error) {
	switch strings.ToLower(s) {
	case "debug":
		return slog.LevelDebug, nil
	case "", "info":
		return slog.LevelInfo, nil
	case "warn", "warning":
		return slog.LevelWarn, nil
	case "error":
		return slog.LevelError, nil
	}
	return 0, fmt.Errorf("unknown log level %q (want debug, info, warn or error)", s)
}

// Logger is a leveled, context-aware structured logger.
type Logger struct {
	sl *slog.Logger
}

// New builds a logger writing to w at the given level, in FormatText or
// FormatJSON (unknown formats fall back to text).
func New(w io.Writer, level slog.Level, format string) *Logger {
	opts := &slog.HandlerOptions{Level: level}
	var h slog.Handler
	if format == FormatJSON {
		h = slog.NewJSONHandler(w, opts)
	} else {
		h = slog.NewTextHandler(w, opts)
	}
	return &Logger{sl: slog.New(&ctxHandler{inner: h})}
}

// NewLogf adapts a printf-style sink (the legacy Config.Logf contract)
// into a Logger: records render as "msg k=v ..." through logf, with the
// context attributes appended like any other. Level filtering is the
// sink's problem — everything at info and above is forwarded.
func NewLogf(logf func(format string, args ...any)) *Logger {
	return &Logger{sl: slog.New(&ctxHandler{inner: &logfHandler{logf: logf}})}
}

// Debug logs at debug level; args are alternating key/value pairs.
func (l *Logger) Debug(ctx context.Context, msg string, args ...any) {
	l.sl.DebugContext(ctx, msg, args...)
}

// Info logs at info level.
func (l *Logger) Info(ctx context.Context, msg string, args ...any) {
	l.sl.InfoContext(ctx, msg, args...)
}

// Warn logs at warn level.
func (l *Logger) Warn(ctx context.Context, msg string, args ...any) {
	l.sl.WarnContext(ctx, msg, args...)
}

// Error logs at error level.
func (l *Logger) Error(ctx context.Context, msg string, args ...any) {
	l.sl.ErrorContext(ctx, msg, args...)
}

type jobKey struct{}

// WithJob stamps a job ID on the context; every record logged under it
// carries job=<id>.
func WithJob(ctx context.Context, id string) context.Context {
	return context.WithValue(ctx, jobKey{}, id)
}

// JobID returns the context's job ID ("" when unset).
func JobID(ctx context.Context) string {
	id, _ := ctx.Value(jobKey{}).(string)
	return id
}

// ctxHandler decorates records with the context's job and trace/span
// IDs before delegating to the configured output handler.
type ctxHandler struct {
	inner slog.Handler
}

func (h *ctxHandler) Enabled(ctx context.Context, level slog.Level) bool {
	return h.inner.Enabled(ctx, level)
}

func (h *ctxHandler) Handle(ctx context.Context, r slog.Record) error {
	if id := JobID(ctx); id != "" {
		r.AddAttrs(slog.String("job", id))
	}
	if sp := trace.FromContext(ctx); sp != nil {
		r.AddAttrs(slog.String("trace", sp.TraceID()),
			slog.Uint64("span", sp.SpanID()))
	}
	return h.inner.Handle(ctx, r)
}

func (h *ctxHandler) WithAttrs(attrs []slog.Attr) slog.Handler {
	return &ctxHandler{inner: h.inner.WithAttrs(attrs)}
}

func (h *ctxHandler) WithGroup(name string) slog.Handler {
	return &ctxHandler{inner: h.inner.WithGroup(name)}
}

// logfHandler renders records through a printf-style sink.
type logfHandler struct {
	logf  func(format string, args ...any)
	attrs []slog.Attr
}

func (h *logfHandler) Enabled(_ context.Context, level slog.Level) bool {
	return level >= slog.LevelInfo
}

func (h *logfHandler) Handle(_ context.Context, r slog.Record) error {
	var b strings.Builder
	b.WriteString(r.Message)
	emit := func(a slog.Attr) bool {
		fmt.Fprintf(&b, " %s=%v", a.Key, a.Value.Any())
		return true
	}
	for _, a := range h.attrs {
		emit(a)
	}
	r.Attrs(emit)
	h.logf("%s", b.String())
	return nil
}

func (h *logfHandler) WithAttrs(attrs []slog.Attr) slog.Handler {
	return &logfHandler{logf: h.logf, attrs: append(append([]slog.Attr{}, h.attrs...), attrs...)}
}

func (h *logfHandler) WithGroup(string) slog.Handler { return h }
