package log

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"log/slog"
	"strings"
	"testing"

	"github.com/trap-repro/trap/internal/trace"
)

func TestLevelsAndFormats(t *testing.T) {
	var b bytes.Buffer
	l := New(&b, slog.LevelWarn, FormatText)
	ctx := context.Background()
	l.Debug(ctx, "nope")
	l.Info(ctx, "nope either")
	l.Warn(ctx, "kept")
	l.Error(ctx, "also kept", "k", 1)
	out := b.String()
	if strings.Contains(out, "nope") {
		t.Fatalf("level filter leaked: %s", out)
	}
	if !strings.Contains(out, "msg=kept") || !strings.Contains(out, "k=1") {
		t.Fatalf("missing records: %s", out)
	}
}

func TestJSONFormatWithJobAndTrace(t *testing.T) {
	var b bytes.Buffer
	l := New(&b, slog.LevelInfo, FormatJSON)
	tr := trace.New(trace.Options{})
	ctx := WithJob(context.Background(), "job-7")
	ctx, sp := tr.Start(ctx, "op")
	l.Info(ctx, "hello", "n", 3)
	sp.End()

	var rec map[string]any
	if err := json.Unmarshal(b.Bytes(), &rec); err != nil {
		t.Fatalf("not JSON: %v: %s", err, b.String())
	}
	if rec["msg"] != "hello" || rec["job"] != "job-7" {
		t.Fatalf("record: %v", rec)
	}
	if rec["trace"] != sp.TraceID() {
		t.Fatalf("trace attr %v, want %s", rec["trace"], sp.TraceID())
	}
	if rec["span"] == nil || rec["n"] != float64(3) {
		t.Fatalf("record: %v", rec)
	}
}

func TestTextOmitsIDsWithoutContext(t *testing.T) {
	var b bytes.Buffer
	l := New(&b, slog.LevelInfo, FormatText)
	l.Info(context.Background(), "plain")
	out := b.String()
	if strings.Contains(out, "job=") || strings.Contains(out, "trace=") {
		t.Fatalf("unexpected IDs on bare context: %s", out)
	}
}

func TestLogfAdapter(t *testing.T) {
	var lines []string
	l := NewLogf(func(format string, args ...any) {
		lines = append(lines, fmt.Sprintf(format, args...))
	})
	ctx := WithJob(context.Background(), "job-9")
	l.Debug(ctx, "dropped")
	l.Info(ctx, "forwarded", "x", 2)
	if len(lines) != 1 {
		t.Fatalf("lines: %v", lines)
	}
	if !strings.Contains(lines[0], "forwarded") || !strings.Contains(lines[0], "x=2") ||
		!strings.Contains(lines[0], "job=job-9") {
		t.Fatalf("adapter line: %q", lines[0])
	}
}

func TestParseLevel(t *testing.T) {
	for in, want := range map[string]slog.Level{
		"debug": slog.LevelDebug, "info": slog.LevelInfo, "": slog.LevelInfo,
		"warn": slog.LevelWarn, "warning": slog.LevelWarn, "ERROR": slog.LevelError,
	} {
		got, err := ParseLevel(in)
		if err != nil || got != want {
			t.Fatalf("ParseLevel(%q) = %v, %v", in, got, err)
		}
	}
	if _, err := ParseLevel("loud"); err == nil {
		t.Fatal("expected error for unknown level")
	}
}
