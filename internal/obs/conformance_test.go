package obs

// Exposition-conformance tests: the details Prometheus and OpenMetrics
// scrapers are strict about — label-value escaping, HELP-before-TYPE
// header ordering, exemplar syntax — plus the registry's cardinality
// cap, which is what keeps a label-interpolation bug from growing the
// exposition without bound.

import (
	"fmt"
	"regexp"
	"strings"
	"testing"
)

func TestLabelValueEscaping(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram(`evil_seconds{path="a\b"}`)
	h.ObserveExemplar(0.5, "trace\"with\\quotes\nand newline")
	var b strings.Builder
	if err := r.WriteProm(&b, true); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	// The exemplar's trace_id must have its quote, backslash and newline
	// escaped — a raw one would break line-oriented parsers.
	if !strings.Contains(out, `trace_id="trace\"with\\quotes\nand newline"`) {
		t.Fatalf("exemplar label value not escaped:\n%s", out)
	}
	for _, line := range strings.Split(out, "\n") {
		if strings.Count(line, "\n") > 0 {
			t.Fatalf("embedded newline survived escaping: %q", line)
		}
	}
	// withLabel must escape spliced values the same way.
	if got := withLabel("m", "k", `a"b\c`+"\nd"); got != `m{k="a\"b\\c\nd"}` {
		t.Fatalf("withLabel escaping: %s", got)
	}
}

func TestHelpEscaping(t *testing.T) {
	r := NewRegistry()
	r.Counter("x_total").Inc()
	r.Describe("x_total", "line one\nline two \\ backslash")
	var b strings.Builder
	if err := r.WriteProm(&b, false); err != nil {
		t.Fatal(err)
	}
	want := `# HELP x_total line one\nline two \\ backslash`
	if !strings.Contains(b.String(), want+"\n") {
		t.Fatalf("HELP not escaped:\n%s", b.String())
	}
}

func TestHelpTypeOrdering(t *testing.T) {
	r := NewRegistry()
	r.Counter("a_total").Inc()
	r.Describe("a_total", "a counter")
	r.Gauge("b_gauge").Set(1)
	r.Describe("b_gauge", "a gauge")
	r.Histogram("c_seconds").Observe(0.25)
	r.Describe("c_seconds", "a histogram")
	var b strings.Builder
	if err := r.WriteProm(&b, false); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimRight(b.String(), "\n"), "\n")
	// Per family: # HELP (when described) must directly precede # TYPE,
	// and both precede every sample of that family. Families sort by name.
	var order []string
	for i, l := range lines {
		if strings.HasPrefix(l, "# HELP ") {
			name := strings.Fields(l)[2]
			order = append(order, name)
			if i+1 >= len(lines) || !strings.HasPrefix(lines[i+1], "# TYPE "+name+" ") {
				t.Fatalf("HELP for %s not directly followed by its TYPE:\n%s", name, b.String())
			}
		}
	}
	for i := 1; i < len(order); i++ {
		if order[i] < order[i-1] {
			t.Fatalf("families out of order: %v", order)
		}
	}
	// No sample may appear before its family's TYPE header.
	seenType := map[string]bool{}
	for _, l := range lines {
		if strings.HasPrefix(l, "# TYPE ") {
			seenType[strings.Fields(l)[2]] = true
			continue
		}
		if strings.HasPrefix(l, "#") || l == "" {
			continue
		}
		fam := familyName(strings.Fields(l)[0])
		fam = strings.TrimSuffix(fam, "_bucket")
		fam = strings.TrimSuffix(fam, "_sum")
		fam = strings.TrimSuffix(fam, "_count")
		if !seenType[fam] && !seenType[strings.Fields(l)[0]] {
			t.Fatalf("sample %q before its TYPE header:\n%s", l, b.String())
		}
	}
}

// exemplarLine is the OpenMetrics exemplar grammar as this exposition
// emits it: sample, then " # ", a labelset, the exemplar value and a
// timestamp.
var exemplarLine = regexp.MustCompile(
	`^[a-zA-Z_:][a-zA-Z0-9_:]*_bucket\{[^}]*le="[^"]+"\} \d+ # \{trace_id="[^"]*"\} [0-9.eE+-]+ \d+\.\d{3}$`)

func TestExemplarSyntaxConformance(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("op_seconds")
	h.ObserveExemplar(0.125, "abc123")
	h.ObserveExemplar(2.5, "def456")
	var b strings.Builder
	if err := r.WriteProm(&b, true); err != nil {
		t.Fatal(err)
	}
	found := 0
	for _, l := range strings.Split(b.String(), "\n") {
		if strings.Contains(l, " # {") {
			if !exemplarLine.MatchString(l) {
				t.Fatalf("malformed exemplar line: %q", l)
			}
			found++
		}
	}
	if found != 2 {
		t.Fatalf("found %d exemplar lines, want 2", found)
	}
	if !strings.HasSuffix(b.String(), "# EOF\n") {
		t.Fatal("OpenMetrics output missing # EOF terminator")
	}
	// Exemplars are illegal outside OpenMetrics: the plain text format
	// must not carry them.
	var plain strings.Builder
	if err := r.WriteProm(&plain, false); err != nil {
		t.Fatal(err)
	}
	if strings.Contains(plain.String(), " # {") {
		t.Fatal("exemplar emitted in non-OpenMetrics exposition")
	}
}

func TestRegistryCardinalityCap(t *testing.T) {
	r := NewRegistry()
	r.SetLimit(8)
	for i := 0; i < 8; i++ {
		r.Counter(fmt.Sprintf("ok_%d_total", i)).Inc()
	}
	// Unbounded label growth past the cap: creations must be refused.
	for i := 0; i < 100; i++ {
		c := r.Counter(fmt.Sprintf(`runaway_total{user="u%d"}`, i))
		c.Inc() // detached but still usable: callers never see a nil
	}
	r.Gauge("late_gauge").Set(1)
	r.Histogram("late_seconds").Observe(1)
	r.GaugeFunc("late_fn", func() float64 { return 1 })
	if got := r.Dropped(); got != 103 {
		t.Fatalf("dropped = %d, want 103", got)
	}
	var b strings.Builder
	if err := r.WriteProm(&b, false); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	if strings.Contains(out, "runaway_total") || strings.Contains(out, "late_") {
		t.Fatalf("capped series leaked into the exposition:\n%s", out)
	}
	if !strings.Contains(out, "obs_registry_dropped_total 103") {
		t.Fatalf("exposition does not report the drop counter:\n%s", out)
	}
	// Pre-existing series keep working and re-lookups do not double-count.
	if r.Counter("ok_0_total") == nil {
		t.Fatal("existing counter lost")
	}
	if got := r.Dropped(); got != 103 {
		t.Fatalf("re-lookup of existing counter dropped: %d", got)
	}
	// An existing GaugeFunc may still be replaced at the cap (replacement
	// adds no cardinality).
	r.SetLimit(r.size())
	r.GaugeFunc("late_fn2", func() float64 { return 2 }) // refused
	before := r.Dropped()
	r.GaugeFunc("ok_fn", func() float64 { return 1 }) // refused too (at cap)
	if r.Dropped() != before+1 {
		t.Fatalf("gauge func creation at cap not counted")
	}
}
