package obs

import (
	"bytes"
	"fmt"
	"math"
	"runtime"
	"strconv"
	"strings"
	"sync"
	"testing"
)

func TestWritePromDeterministicOrdering(t *testing.T) {
	r := NewRegistry()
	r.Counter("zz_total").Add(3)
	r.Counter("aa_total").Inc()
	r.Gauge("mid_gauge").Set(1.5)
	r.GaugeFunc("fn_gauge", func() float64 { return 2 })
	h := r.Histogram("lat_seconds")
	h.Observe(0.25)
	h.Observe(4)

	var a, b bytes.Buffer
	if err := r.WriteProm(&a, false); err != nil {
		t.Fatal(err)
	}
	if err := r.WriteProm(&b, false); err != nil {
		t.Fatal(err)
	}
	if a.String() != b.String() {
		t.Fatalf("exposition not deterministic:\n%s\nvs\n%s", a.String(), b.String())
	}
	// Families appear in sorted order.
	var fams []string
	for _, line := range strings.Split(a.String(), "\n") {
		if rest, ok := strings.CutPrefix(line, "# TYPE "); ok {
			fams = append(fams, strings.Fields(rest)[0])
		}
	}
	for i := 1; i < len(fams); i++ {
		if fams[i-1] >= fams[i] {
			t.Fatalf("families out of order: %v", fams)
		}
	}
	if want := []string{"aa_total", "fn_gauge", "lat_seconds", "mid_gauge", "zz_total"}; len(fams) != len(want) {
		t.Fatalf("families %v, want %v", fams, want)
	}
}

func TestWritePromHelpAndTypes(t *testing.T) {
	r := NewRegistry()
	r.Counter("jobs_total").Inc()
	r.Describe("jobs_total", "Jobs submitted.")
	r.Gauge("depth").Set(3)
	r.Histogram("lat_seconds").Observe(1)

	var b bytes.Buffer
	if err := r.WriteProm(&b, false); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{
		"# HELP jobs_total Jobs submitted.",
		"# TYPE jobs_total counter",
		"# TYPE depth gauge",
		"# TYPE lat_seconds histogram",
		"lat_seconds_sum 1",
		"lat_seconds_count 1",
		`lat_seconds_bucket{le="+Inf"} 1`,
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("exposition missing %q:\n%s", want, out)
		}
	}
}

// TestWritePromBucketMonotonic feeds values across the full range
// (underflow included) and asserts cumulative bucket counts are
// non-decreasing in le order and end at the total count.
func TestWritePromBucketMonotonic(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("lat_seconds")
	for _, v := range []float64{-1, 0, 1e-12, 0.001, 0.5, 0.75, 3, 3.5, 1e6, 1e30} {
		h.Observe(v)
	}
	var b bytes.Buffer
	if err := r.WriteProm(&b, false); err != nil {
		t.Fatal(err)
	}
	prevLe := math.Inf(-1)
	prevCum := int64(-1)
	buckets := 0
	for _, line := range strings.Split(b.String(), "\n") {
		if !strings.HasPrefix(line, "lat_seconds_bucket{le=") {
			continue
		}
		buckets++
		rest := strings.TrimPrefix(line, `lat_seconds_bucket{le="`)
		q := strings.Index(rest, `"`)
		leStr, cntStr := rest[:q], strings.TrimSpace(rest[q+2:])
		le := math.Inf(1)
		if leStr != "+Inf" {
			var err error
			le, err = strconv.ParseFloat(leStr, 64)
			if err != nil {
				t.Fatalf("bad le %q: %v", leStr, err)
			}
		}
		cum, err := strconv.ParseInt(cntStr, 10, 64)
		if err != nil {
			t.Fatalf("bad count in %q: %v", line, err)
		}
		if le <= prevLe {
			t.Fatalf("le not increasing: %g after %g", le, prevLe)
		}
		if cum < prevCum {
			t.Fatalf("cumulative count decreased: %d after %d", cum, prevCum)
		}
		prevLe, prevCum = le, cum
	}
	if buckets < 5 {
		t.Fatalf("only %d bucket lines", buckets)
	}
	if !math.IsInf(prevLe, 1) || prevCum != 10 {
		t.Fatalf("last bucket le=%g cum=%d, want +Inf/10", prevLe, prevCum)
	}
}

func TestWritePromLabeledSeriesShareFamily(t *testing.T) {
	r := NewRegistry()
	r.GaugeFunc(`cache_entries{dataset="tpch"}`, func() float64 { return 10 })
	r.GaugeFunc(`cache_entries{dataset="tpcds"}`, func() float64 { return 20 })
	var b bytes.Buffer
	if err := r.WriteProm(&b, false); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	if strings.Count(out, "# TYPE cache_entries gauge") != 1 {
		t.Fatalf("want one family header for labeled series:\n%s", out)
	}
	if !strings.Contains(out, `cache_entries{dataset="tpch"} 10`) ||
		!strings.Contains(out, `cache_entries{dataset="tpcds"} 20`) {
		t.Fatalf("labeled series missing:\n%s", out)
	}
}

func TestExemplarExposition(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("batch_seconds")
	h.ObserveExemplar(0.5, "deadbeefdeadbeef")
	h.Observe(0.25)

	var prom, om bytes.Buffer
	if err := r.WriteProm(&prom, false); err != nil {
		t.Fatal(err)
	}
	if err := r.WriteProm(&om, true); err != nil {
		t.Fatal(err)
	}
	// Exemplars are OpenMetrics-only: the 0.0.4 format has no syntax for
	// them and scraping would break.
	if strings.Contains(prom.String(), "trace_id") {
		t.Fatalf("prom format leaked exemplars:\n%s", prom.String())
	}
	if !strings.Contains(om.String(), `# {trace_id="deadbeefdeadbeef"} 0.5`) {
		t.Fatalf("openmetrics missing exemplar:\n%s", om.String())
	}
	if !strings.HasSuffix(om.String(), "# EOF\n") {
		t.Fatal("openmetrics missing # EOF")
	}
	ex := h.Exemplars()
	if len(ex) != 1 {
		t.Fatalf("%d exemplars", len(ex))
	}
	for _, e := range ex {
		if e.TraceID != "deadbeefdeadbeef" || e.Value != 0.5 {
			t.Fatalf("exemplar %+v", e)
		}
	}
}

// TestRegistryConcurrentScrape races metric get-or-create and writes
// against continuous exposition in both formats (-race target: the
// satellite requirement that registry writes racing a /metrics scrape
// are safe).
func TestRegistryConcurrentScrape(t *testing.T) {
	r := NewRegistry()
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			for k := 0; k < 200; k++ {
				r.Counter(fmt.Sprintf("c%d_total", k%17)).Inc()
				r.Gauge(fmt.Sprintf("g%d", k%13)).Add(1)
				h := r.Histogram(fmt.Sprintf("h%d_seconds", k%7))
				if k%2 == 0 {
					h.ObserveExemplar(float64(k%10)+0.1, "abc123")
				} else {
					h.Observe(float64(k%10) + 0.1)
				}
				r.Describe(fmt.Sprintf("c%d_total", k%17), "racing help")
				r.GaugeFunc(fmt.Sprintf("fn%d", k%5), func() float64 { return float64(i) })
			}
		}(i)
	}
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			for k := 0; k < 50; k++ {
				var b bytes.Buffer
				if err := r.WriteProm(&b, i%2 == 0); err != nil {
					t.Error(err)
					return
				}
				var tb bytes.Buffer
				if err := r.WriteText(&tb); err != nil {
					t.Error(err)
					return
				}
			}
		}(i)
	}
	wg.Wait()
}

func TestRuntimeGauges(t *testing.T) {
	r := NewRegistry()
	RegisterRuntimeGauges(r)
	// Force a GC so the pause histogram has data.
	runtime.GC()
	var b bytes.Buffer
	if err := r.WriteProm(&b, false); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, name := range []string{"go_goroutines", "go_heap_inuse_bytes", "go_gc_pause_p99_seconds"} {
		if !strings.Contains(out, "# TYPE "+name+" gauge") {
			t.Fatalf("missing %s family:\n%s", name, out)
		}
	}
	val := func(name string) float64 {
		for _, line := range strings.Split(out, "\n") {
			if rest, ok := strings.CutPrefix(line, name+" "); ok {
				v, err := strconv.ParseFloat(rest, 64)
				if err != nil {
					t.Fatalf("parse %s: %v", line, err)
				}
				return v
			}
		}
		t.Fatalf("missing %s value", name)
		return 0
	}
	if v := val("go_goroutines"); v < 1 {
		t.Fatalf("go_goroutines = %g", v)
	}
	if v := val("go_heap_inuse_bytes"); v <= 0 {
		t.Fatalf("go_heap_inuse_bytes = %g", v)
	}
	if v := val("go_gc_pause_p99_seconds"); v < 0 || v > 10 {
		t.Fatalf("go_gc_pause_p99_seconds = %g", v)
	}
}
