// Package obs is a stdlib-only observability layer for the TRAP system:
// atomic counters and gauges, streaming histograms with quantile
// estimates, callback gauges for cheaply-derived values (cache sizes, hit
// ratios), and a process-wide registry with a text exposition format
// served by trapd's GET /metrics.
//
// Metrics are get-or-create by name, so hot paths keep a package-level
// pointer and pay one atomic op per event:
//
//	var hits = obs.Default().Counter("engine_plan_cache_hits_total")
//	...
//	hits.Inc()
//
// Durations are recorded through Span:
//
//	defer obs.StartSpan(planSeconds).End()
//
// All types are safe for concurrent use.
package obs

import (
	"fmt"
	"io"
	"math"
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// Counter is a monotonically increasing atomic counter.
type Counter struct {
	v atomic.Int64
}

// Inc adds one.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds n (negative deltas are ignored: counters only go up).
func (c *Counter) Add(n int64) {
	if n > 0 {
		c.v.Add(n)
	}
}

// Value returns the current count.
func (c *Counter) Value() int64 { return c.v.Load() }

// Gauge is an atomic float64 that can go up and down.
type Gauge struct {
	bits atomic.Uint64
}

// Set stores v.
func (g *Gauge) Set(v float64) { g.bits.Store(math.Float64bits(v)) }

// Add applies a delta with a CAS loop.
func (g *Gauge) Add(delta float64) {
	for {
		old := g.bits.Load()
		nv := math.Float64bits(math.Float64frombits(old) + delta)
		if g.bits.CompareAndSwap(old, nv) {
			return
		}
	}
}

// Value returns the current value.
func (g *Gauge) Value() float64 { return math.Float64frombits(g.bits.Load()) }

// Histogram bucket layout: geometric buckets with 8 buckets per power of
// two, spanning [2^-32, 2^32). That covers nanosecond-scale spans up to
// multi-hour ones (values are typically seconds) with <9% relative error
// per bucket, in a fixed 520-slot array.
const (
	histBucketsPerPow2 = 8
	histMinPow2        = -32
	histMaxPow2        = 32
	histBuckets        = (histMaxPow2 - histMinPow2) * histBucketsPerPow2
)

// Histogram is a streaming histogram over positive float64 values with
// quantile estimation. Zero and negative observations land in a dedicated
// underflow bucket; values beyond the top bucket are clamped into it. The
// exact min, max, sum and count are tracked alongside the buckets.
//
// Observations recorded with ObserveExemplar additionally pin an
// exemplar — typically a trace ID — on the bucket they land in, so the
// exposition can link a slow bucket back to the request that filled it.
type Histogram struct {
	mu        sync.Mutex
	count     int64
	sum       float64
	min, max  float64
	under     int64 // v <= 0 or below the smallest bucket
	buckets   [histBuckets]int64
	exemplars map[int]Exemplar // lazily allocated, keyed by bucket index
}

// Exemplar ties one observation to the trace that produced it.
type Exemplar struct {
	Value   float64
	TraceID string
	Time    time.Time
}

// bucketIndex maps a positive value to its bucket, or -1 for underflow.
func bucketIndex(v float64) int {
	log2 := math.Log2(v)
	i := int(math.Floor((log2 - histMinPow2) * histBucketsPerPow2))
	if i < 0 {
		return -1
	}
	if i >= histBuckets {
		i = histBuckets - 1
	}
	return i
}

// bucketValue returns the geometric midpoint of bucket i.
func bucketValue(i int) float64 {
	lo := float64(i)/histBucketsPerPow2 + histMinPow2
	hi := float64(i+1)/histBucketsPerPow2 + histMinPow2
	return math.Exp2((lo + hi) / 2)
}

// Observe records one value.
func (h *Histogram) Observe(v float64) {
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.count == 0 || v < h.min {
		h.min = v
	}
	if h.count == 0 || v > h.max {
		h.max = v
	}
	h.count++
	h.sum += v
	if v <= 0 {
		h.under++
		return
	}
	if i := bucketIndex(v); i >= 0 {
		h.buckets[i]++
	} else {
		h.under++
	}
}

// ObserveDuration records a duration in seconds.
func (h *Histogram) ObserveDuration(d time.Duration) { h.Observe(d.Seconds()) }

// ObserveExemplar records a value and, when traceID is non-empty, pins
// it as the exemplar of the bucket it lands in (the last exemplar per
// bucket wins). An empty traceID is a plain Observe.
func (h *Histogram) ObserveExemplar(v float64, traceID string) {
	h.Observe(v)
	if traceID == "" || v <= 0 {
		return
	}
	i := bucketIndex(v)
	if i < 0 {
		return
	}
	h.mu.Lock()
	if h.exemplars == nil {
		h.exemplars = map[int]Exemplar{}
	}
	h.exemplars[i] = Exemplar{Value: v, TraceID: traceID, Time: time.Now()}
	h.mu.Unlock()
}

// Exemplars snapshots the histogram's per-bucket exemplars, keyed by
// bucket index.
func (h *Histogram) Exemplars() map[int]Exemplar {
	h.mu.Lock()
	defer h.mu.Unlock()
	out := make(map[int]Exemplar, len(h.exemplars))
	for i, e := range h.exemplars {
		out[i] = e
	}
	return out
}

// Count returns the number of observations.
func (h *Histogram) Count() int64 {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.count
}

// Sum returns the sum of all observed values.
func (h *Histogram) Sum() float64 {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.sum
}

// Mean returns the mean observed value (0 with no observations).
func (h *Histogram) Mean() float64 {
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.count == 0 {
		return 0
	}
	return h.sum / float64(h.count)
}

// Quantile estimates the q-quantile (q in [0, 1]) from the buckets.
// Estimates carry the bucket's relative error (<9%); the extremes are
// clamped to the exact observed min and max. Returns 0 with no data.
func (h *Histogram) Quantile(q float64) float64 {
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.count == 0 {
		return 0
	}
	if q <= 0 {
		return h.min
	}
	if q >= 1 {
		return h.max
	}
	rank := int64(math.Ceil(q * float64(h.count)))
	if rank < 1 {
		rank = 1
	}
	seen := h.under
	if seen >= rank {
		return h.min
	}
	for i := 0; i < histBuckets; i++ {
		seen += h.buckets[i]
		if seen >= rank {
			v := bucketValue(i)
			if v < h.min {
				v = h.min
			}
			if v > h.max {
				v = h.max
			}
			return v
		}
	}
	return h.max
}

// Snapshot is a point-in-time histogram summary.
type Snapshot struct {
	Count              int64
	Sum, Mean          float64
	Min, Max           float64
	P50, P90, P95, P99 float64
}

// Snapshot summarizes the histogram.
func (h *Histogram) Snapshot() Snapshot {
	return Snapshot{
		Count: h.Count(), Sum: h.Sum(), Mean: h.Mean(),
		Min: h.Quantile(0), Max: h.Quantile(1),
		P50: h.Quantile(0.50), P90: h.Quantile(0.90),
		P95: h.Quantile(0.95), P99: h.Quantile(0.99),
	}
}

// Span times one operation into a histogram.
type Span struct {
	h     *Histogram
	start time.Time
}

// StartSpan begins timing; record with End. A nil histogram yields a
// no-op span.
func StartSpan(h *Histogram) Span { return Span{h: h, start: time.Now()} }

// End records the elapsed time in seconds and returns it.
func (s Span) End() time.Duration {
	d := time.Since(s.start)
	if s.h != nil {
		s.h.ObserveDuration(d)
	}
	return d
}

// EndExemplar is End with an exemplar: when traceID is non-empty the
// observation's bucket is linked back to that trace in the exposition.
func (s Span) EndExemplar(traceID string) time.Duration {
	d := time.Since(s.start)
	if s.h != nil {
		s.h.ObserveExemplar(d.Seconds(), traceID)
	}
	return d
}

// Registry is a named collection of metrics. Metrics are created on
// first use and live for the life of the registry.
//
// A registry enforces a hard cardinality cap: once limit distinct
// series exist, further creations return a detached (never-exposed)
// metric and the Dropped counter grows, so a bug that interpolates
// unbounded label values into metric names degrades to dropped series
// instead of unbounded registry memory and exposition size.
type Registry struct {
	mu         sync.RWMutex
	counters   map[string]*Counter
	gauges     map[string]*Gauge
	gaugeFuncs map[string]func() float64
	hists      map[string]*Histogram
	help       map[string]string
	limit      int
	dropped    atomic.Int64
}

// DefaultMetricLimit is the registry cardinality cap when SetLimit was
// never called: far above legitimate use (the whole system registers a
// few dozen families), low enough to stop unbounded label growth.
const DefaultMetricLimit = 4096

// NewRegistry builds an empty registry with the default cardinality cap.
func NewRegistry() *Registry {
	return &Registry{
		counters:   map[string]*Counter{},
		gauges:     map[string]*Gauge{},
		gaugeFuncs: map[string]func() float64{},
		hists:      map[string]*Histogram{},
		help:       map[string]string{},
		limit:      DefaultMetricLimit,
	}
}

// SetLimit replaces the cardinality cap (n <= 0 restores the default).
// Existing metrics are never evicted; the cap gates creation only.
func (r *Registry) SetLimit(n int) {
	if n <= 0 {
		n = DefaultMetricLimit
	}
	r.mu.Lock()
	r.limit = n
	r.mu.Unlock()
}

// Dropped reports how many metric creations the cardinality cap
// refused.
func (r *Registry) Dropped() int64 { return r.dropped.Load() }

// size counts every registered series. Caller holds r.mu.
func (r *Registry) size() int {
	return len(r.counters) + len(r.gauges) + len(r.gaugeFuncs) + len(r.hists)
}

// full reports (and tallies) a creation refused by the cardinality cap.
// Caller holds r.mu for writing.
func (r *Registry) full() bool {
	if r.size() < r.limit {
		return false
	}
	r.dropped.Add(1)
	return true
}

// Describe attaches a # HELP string to a metric family for the
// Prometheus exposition. The name is the family (label-free) name.
func (r *Registry) Describe(name, help string) {
	r.mu.Lock()
	r.help[name] = help
	r.mu.Unlock()
}

var defaultRegistry = NewRegistry()

// Default returns the process-wide registry.
func Default() *Registry { return defaultRegistry }

// Counter returns the named counter, creating it if needed.
func (r *Registry) Counter(name string) *Counter {
	r.mu.RLock()
	c, ok := r.counters[name]
	r.mu.RUnlock()
	if ok {
		return c
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if c, ok := r.counters[name]; ok {
		return c
	}
	c = &Counter{}
	if !r.full() {
		r.counters[name] = c
	}
	return c
}

// Gauge returns the named gauge, creating it if needed.
func (r *Registry) Gauge(name string) *Gauge {
	r.mu.RLock()
	g, ok := r.gauges[name]
	r.mu.RUnlock()
	if ok {
		return g
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if g, ok := r.gauges[name]; ok {
		return g
	}
	g = &Gauge{}
	if !r.full() {
		r.gauges[name] = g
	}
	return g
}

// GaugeFunc registers (or replaces) a callback gauge evaluated at
// exposition time — for derived values like cache sizes and hit ratios.
// The callback must be safe for concurrent use.
func (r *Registry) GaugeFunc(name string, fn func() float64) {
	r.mu.Lock()
	if _, ok := r.gaugeFuncs[name]; ok || !r.full() {
		r.gaugeFuncs[name] = fn
	}
	r.mu.Unlock()
}

// Histogram returns the named histogram, creating it if needed.
func (r *Registry) Histogram(name string) *Histogram {
	r.mu.RLock()
	h, ok := r.hists[name]
	r.mu.RUnlock()
	if ok {
		return h
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if h, ok := r.hists[name]; ok {
		return h
	}
	h = &Histogram{}
	if !r.full() {
		r.hists[name] = h
	}
	return h
}

// Values dumps every metric as a flat name → value map: counters and
// gauges directly, histograms as _count/_sum/_p99 triples. This is the
// snapshot shape published over the cluster bus for metric federation —
// counters and _count/_sum sum meaningfully across nodes, while gauges
// and quantiles are only meaningful in the per-node breakdown.
func (r *Registry) Values() map[string]float64 {
	r.mu.RLock()
	out := make(map[string]float64, r.size())
	for n, c := range r.counters {
		out[n] = float64(c.Value())
	}
	for n, g := range r.gauges {
		out[n] = g.Value()
	}
	fns := make(map[string]func() float64, len(r.gaugeFuncs))
	for n, fn := range r.gaugeFuncs {
		fns[n] = fn
	}
	type histEntry struct {
		name string
		h    *Histogram
	}
	hists := make([]histEntry, 0, len(r.hists))
	for n, h := range r.hists {
		hists = append(hists, histEntry{n, h})
	}
	r.mu.RUnlock()
	// Callbacks and histogram locks are taken outside the registry lock.
	for n, fn := range fns {
		out[n] = fn()
	}
	for _, he := range hists {
		out[he.name+"_count"] = float64(he.h.Count())
		out[he.name+"_sum"] = he.h.Sum()
		out[he.name+"_p99"] = he.h.Quantile(0.99)
	}
	return out
}

// WriteText renders every metric in a Prometheus-style one-line-per-value
// text format, sorted by name. Histograms expand into _count, _sum and
// quantile lines.
func (r *Registry) WriteText(w io.Writer) error {
	r.mu.RLock()
	type line struct {
		name string
		val  float64
		asI  bool
	}
	var lines []line
	for n, c := range r.counters {
		lines = append(lines, line{n, float64(c.Value()), true})
	}
	for n, g := range r.gauges {
		lines = append(lines, line{n, g.Value(), false})
	}
	fns := make(map[string]func() float64, len(r.gaugeFuncs))
	for n, fn := range r.gaugeFuncs {
		fns[n] = fn
	}
	for n, h := range r.hists {
		s := h.Snapshot()
		lines = append(lines,
			line{n + "_count", float64(s.Count), true},
			line{n + "_sum", s.Sum, false},
			line{n + `{q="0.5"}`, s.P50, false},
			line{n + `{q="0.9"}`, s.P90, false},
			line{n + `{q="0.95"}`, s.P95, false},
			line{n + `{q="0.99"}`, s.P99, false},
			line{n + "_max", s.Max, false},
		)
	}
	r.mu.RUnlock()
	// Callback gauges are evaluated outside the registry lock so they may
	// themselves take locks (e.g. an engine's cache mutex).
	for n, fn := range fns {
		lines = append(lines, line{n, fn(), false})
	}
	sort.Slice(lines, func(i, j int) bool { return lines[i].name < lines[j].name })
	for _, l := range lines {
		var err error
		if l.asI {
			_, err = fmt.Fprintf(w, "%s %d\n", l.name, int64(l.val))
		} else {
			_, err = fmt.Fprintf(w, "%s %g\n", l.name, l.val)
		}
		if err != nil {
			return err
		}
	}
	return nil
}
