package obs

import (
	"math"
	"runtime"
	"runtime/metrics"
)

// Runtime health gauges: process-level signals (goroutine count, heap
// in use, GC pause tail) registered as callback gauges so every
// /metrics scrape reflects live scheduler and memory state, not just
// pipeline counters. Values are read through runtime/metrics at
// exposition time.

// runtime/metrics sample names read by RegisterRuntimeGauges.
const (
	rmHeapObjects = "/memory/classes/heap/objects:bytes"
	rmHeapUnused  = "/memory/classes/heap/unused:bytes"
	rmGCPauses    = "/sched/pauses/total/gc:seconds"
)

// RegisterRuntimeGauges installs the process-health callback gauges on
// a registry:
//
//	go_goroutines            — live goroutine count
//	go_heap_inuse_bytes      — heap memory in use (live objects + spans'
//	                           unused tails)
//	go_gc_pause_p99_seconds  — p99 of all GC stop-the-world pauses since
//	                           process start
func RegisterRuntimeGauges(r *Registry) {
	r.Describe("go_goroutines", "Number of live goroutines.")
	r.GaugeFunc("go_goroutines", func() float64 {
		return float64(runtime.NumGoroutine())
	})
	r.Describe("go_heap_inuse_bytes", "Heap bytes in use (object bytes plus unused span tails).")
	r.GaugeFunc("go_heap_inuse_bytes", func() float64 {
		s := []metrics.Sample{{Name: rmHeapObjects}, {Name: rmHeapUnused}}
		metrics.Read(s)
		return sampleFloat(s[0]) + sampleFloat(s[1])
	})
	r.Describe("go_gc_pause_p99_seconds", "99th percentile of GC stop-the-world pause time since start.")
	r.GaugeFunc("go_gc_pause_p99_seconds", func() float64 {
		s := []metrics.Sample{{Name: rmGCPauses}}
		metrics.Read(s)
		if s[0].Value.Kind() != metrics.KindFloat64Histogram {
			return 0
		}
		return histQuantile(s[0].Value.Float64Histogram(), 0.99)
	})
}

// sampleFloat converts a runtime/metrics sample to float64 (0 for
// unsupported kinds, which keeps the gauges robust across Go versions).
func sampleFloat(s metrics.Sample) float64 {
	switch s.Value.Kind() {
	case metrics.KindUint64:
		return float64(s.Value.Uint64())
	case metrics.KindFloat64:
		return s.Value.Float64()
	}
	return 0
}

// histQuantile estimates quantile q from a runtime/metrics histogram,
// returning the upper bound of the bucket the rank lands in.
func histQuantile(h *metrics.Float64Histogram, q float64) float64 {
	if h == nil || len(h.Counts) == 0 {
		return 0
	}
	var total uint64
	for _, c := range h.Counts {
		total += c
	}
	if total == 0 {
		return 0
	}
	rank := uint64(q * float64(total))
	if rank >= total {
		rank = total - 1
	}
	var seen uint64
	for i, c := range h.Counts {
		seen += c
		if seen > rank {
			// Buckets[i+1] is bucket i's upper bound; the last bucket's
			// can be +Inf, in which case fall back to its lower bound.
			ub := h.Buckets[i+1]
			if math.IsInf(ub, 1) {
				return h.Buckets[i]
			}
			return ub
		}
	}
	return h.Buckets[len(h.Buckets)-1]
}
