// Package costmodel implements the learned cost model shared by TRAP's
// reward (the Section IV-B learned index utility, a LightGBM stand-in)
// and the learning-based advisors (the execution-feedback advantage of
// the "AI meets AI" line of work the paper builds on): a GBDT mapping a
// plan's Figure 4 feature vector to observed runtime cost, correcting the
// what-if optimizer's systematic estimation errors.
package costmodel

import (
	"context"
	"math/rand"

	"github.com/trap-repro/trap/internal/engine"
	"github.com/trap-repro/trap/internal/gbdt"
	"github.com/trap-repro/trap/internal/schema"
	"github.com/trap-repro/trap/internal/sqlx"
	"github.com/trap-repro/trap/internal/workload"
)

// Model predicts runtime cost from estimated-plan features.
type Model struct {
	m *gbdt.Model
}

// gbdtConfig is the paper's training recipe: normalized features,
// log-transformed target, MSE.
func gbdtConfig() gbdt.Config {
	return gbdt.Config{Trees: 120, MaxDepth: 5, LogTarget: true}
}

// Train collects a dataset by drawing queries from nextQuery, planning
// them under random relevant index configurations, extracting plan
// features and labelling with the runtime cost, then fits the GBDT.
func Train(e *engine.Engine, nextQuery func() *sqlx.Query, samples int, seed int64) (*Model, error) {
	rng := rand.New(rand.NewSource(seed))
	var feats [][]float64
	var costs []float64
	misses := 0
	for len(feats) < samples && misses < samples*10 {
		q := nextQuery()
		cfg := RandomConfig(e.Schema(), q, rng)
		p, err := e.Plan(q, cfg, engine.ModeEstimated)
		if err != nil {
			misses++
			continue
		}
		rc, err := e.RuntimeCost(q, cfg)
		if err != nil {
			misses++
			continue
		}
		feats = append(feats, engine.PlanFeatures(p))
		costs = append(costs, rc)
	}
	m := gbdt.Train(feats, costs, gbdtConfig())
	return &Model{m: m}, nil
}

// TrainOnWorkloads fits the model from the queries of training workloads
// (how a learning-based advisor accumulates execution feedback during
// its training phase).
func TrainOnWorkloads(e *engine.Engine, ws []*workload.Workload, samplesPerQuery int, seed int64) (*Model, error) {
	var queries []*sqlx.Query
	for _, w := range ws {
		queries = append(queries, w.Queries()...)
	}
	if len(queries) == 0 || samplesPerQuery < 1 {
		samplesPerQuery = 1
	}
	rng := rand.New(rand.NewSource(seed))
	i := 0
	next := func() *sqlx.Query {
		q := queries[i%len(queries)]
		i++
		return q
	}
	_ = rng
	return Train(e, next, len(queries)*samplesPerQuery, seed)
}

// RandomConfig samples an index configuration relevant to q.
func RandomConfig(s *schema.Schema, q *sqlx.Query, rng *rand.Rand) schema.Config {
	var cfg schema.Config
	cols := q.Columns()
	for _, c := range cols {
		if rng.Float64() < 0.4 {
			cfg = cfg.Add(schema.Index{Table: c.Table, Columns: []string{c.Column}})
		}
	}
	if len(cols) >= 2 && rng.Float64() < 0.3 {
		a, b := cols[rng.Intn(len(cols))], cols[rng.Intn(len(cols))]
		if a.Table == b.Table && a.Column != b.Column {
			cfg = cfg.Add(schema.Index{Table: a.Table, Columns: []string{a.Column, b.Column}})
		}
	}
	return cfg
}

// QueryCost predicts the runtime cost of q under cfg.
func (u *Model) QueryCost(e *engine.Engine, q *sqlx.Query, cfg schema.Config) (float64, error) {
	p, err := e.Plan(q, cfg, engine.ModeEstimated)
	if err != nil {
		return 0, err
	}
	return u.m.Predict(engine.PlanFeatures(p)), nil
}

// WorkloadCost predicts the weighted runtime cost of a workload.
func (u *Model) WorkloadCost(e *engine.Engine, w *workload.Workload, cfg schema.Config) (float64, error) {
	return u.WorkloadCostCtx(context.Background(), e, w, cfg)
}

// WorkloadCostCtx is WorkloadCost with cooperative cancellation: the
// prediction loop stops at the next query boundary once ctx is done.
func (u *Model) WorkloadCostCtx(ctx context.Context, e *engine.Engine, w *workload.Workload, cfg schema.Config) (float64, error) {
	var sum float64
	for _, it := range w.Items {
		if err := ctx.Err(); err != nil {
			return 0, err
		}
		c, err := u.QueryCost(e, it.Query, cfg)
		if err != nil {
			return 0, err
		}
		sum += it.Weight * c
	}
	return sum, nil
}

// Utility computes the index utility of Definition 3.2 with learned costs.
func (u *Model) Utility(e *engine.Engine, w *workload.Workload, cfg, base schema.Config) (float64, error) {
	return u.UtilityCtx(context.Background(), e, w, cfg, base)
}

// UtilityCtx is Utility with cooperative cancellation.
func (u *Model) UtilityCtx(ctx context.Context, e *engine.Engine, w *workload.Workload, cfg, base schema.Config) (float64, error) {
	cb, err := u.WorkloadCostCtx(ctx, e, w, base)
	if err != nil || cb <= 0 {
		return 0, err
	}
	ci, err := u.WorkloadCostCtx(ctx, e, w, cfg)
	if err != nil {
		return 0, err
	}
	return 1 - ci/cb, nil
}

// R2 evaluates the model against runtime costs on fresh samples.
func (u *Model) R2(e *engine.Engine, nextQuery func() *sqlx.Query, samples int, seed int64) float64 {
	rng := rand.New(rand.NewSource(seed))
	var feats [][]float64
	var costs []float64
	misses := 0
	for len(feats) < samples && misses < samples*10 {
		q := nextQuery()
		cfg := RandomConfig(e.Schema(), q, rng)
		p, err := e.Plan(q, cfg, engine.ModeEstimated)
		if err != nil {
			misses++
			continue
		}
		rc, err := e.RuntimeCost(q, cfg)
		if err != nil {
			misses++
			continue
		}
		feats = append(feats, engine.PlanFeatures(p))
		costs = append(costs, rc)
	}
	return u.m.R2(feats, costs)
}
