package costmodel

import (
	"math"
	"math/rand"
	"testing"

	"github.com/trap-repro/trap/internal/bench"
	"github.com/trap-repro/trap/internal/engine"
	"github.com/trap-repro/trap/internal/schema"
	"github.com/trap-repro/trap/internal/workload"
)

func setup(t testing.TB) (*engine.Engine, *workload.Generator) {
	t.Helper()
	s := bench.TPCH(100)
	return engine.New(s), workload.NewGenerator(s, 17, 10)
}

func TestTrainAndPredict(t *testing.T) {
	e, gen := setup(t)
	m, err := Train(e, gen.Query, 500, 1)
	if err != nil {
		t.Fatal(err)
	}
	if r2 := m.R2(e, gen.Query, 150, 2); r2 < 0.5 {
		t.Errorf("R2 = %v, want >= 0.5", r2)
	}
	q := gen.Query()
	c, err := m.QueryCost(e, q, nil)
	if err != nil || c <= 0 || math.IsNaN(c) {
		t.Errorf("QueryCost = %v (%v)", c, err)
	}
}

func TestModelBeatsWhatIfOnRelativeError(t *testing.T) {
	// The whole point of the learned model: smaller relative error
	// against runtime than the raw what-if estimate.
	e, gen := setup(t)
	m, err := Train(e, gen.Query, 800, 3)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(4))
	var errModel, errWhatIf float64
	n := 0
	for n < 150 {
		q := gen.Query()
		cfg := RandomConfig(e.Schema(), q, rng)
		truth, err := e.RuntimeCost(q, cfg)
		if err != nil || truth <= 0 {
			continue
		}
		pred, err := m.QueryCost(e, q, cfg)
		if err != nil {
			continue
		}
		est, err := e.QueryCost(q, cfg, engine.ModeEstimated)
		if err != nil {
			continue
		}
		errModel += math.Abs(pred-truth) / truth
		errWhatIf += math.Abs(est-truth) / truth
		n++
	}
	if errModel >= errWhatIf {
		t.Errorf("learned model rel-err %.3f not below what-if %.3f",
			errModel/float64(n), errWhatIf/float64(n))
	}
}

func TestTrainOnWorkloads(t *testing.T) {
	e, gen := setup(t)
	var ws []*workload.Workload
	for i := 0; i < 4; i++ {
		ws = append(ws, gen.Workload(5))
	}
	m, err := TrainOnWorkloads(e, ws, 3, 5)
	if err != nil {
		t.Fatal(err)
	}
	w := ws[0]
	base, err := m.WorkloadCost(e, w, nil)
	if err != nil || base <= 0 {
		t.Fatalf("WorkloadCost = %v (%v)", base, err)
	}
	u, err := m.Utility(e, w, nil, nil)
	if err != nil || u != 0 {
		t.Errorf("self-utility = %v (%v), want 0", u, err)
	}
}

func TestRandomConfigRelevance(t *testing.T) {
	e, gen := setup(t)
	rng := rand.New(rand.NewSource(6))
	for i := 0; i < 30; i++ {
		q := gen.Query()
		cfg := RandomConfig(e.Schema(), q, rng)
		touched := map[string]bool{}
		for _, c := range q.Columns() {
			touched[c.String()] = true
		}
		for _, ix := range cfg {
			for _, col := range ix.Columns {
				if !touched[ix.Table+"."+col] {
					t.Errorf("random config touches foreign column %s.%s", ix.Table, col)
				}
			}
		}
	}
}

func TestUtilityOrdering(t *testing.T) {
	// Against the null baseline, a useful configuration must have
	// positive learned utility.
	e, gen := setup(t)
	m, err := Train(e, gen.Query, 600, 7)
	if err != nil {
		t.Fatal(err)
	}
	w := gen.Workload(6)
	var cfg schema.Config
	for _, c := range w.Columns() {
		cfg = cfg.Add(schema.Index{Table: c.Table, Columns: []string{c.Column}})
	}
	u, err := m.Utility(e, w, cfg, nil)
	if err != nil {
		t.Fatal(err)
	}
	if u < -0.1 {
		t.Errorf("full single-column config has learned utility %v", u)
	}
}
