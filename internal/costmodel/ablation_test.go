package costmodel

import (
	"math"
	"math/rand"
	"testing"

	"github.com/trap-repro/trap/internal/bench"
	"github.com/trap-repro/trap/internal/engine"
	"github.com/trap-repro/trap/internal/stats"
	"github.com/trap-repro/trap/internal/workload"
)

// relErrors measures the mean relative error of the what-if estimate and
// of a freshly trained learned model against runtime, under an engine
// with the given estimation-error profile.
func relErrors(t *testing.T, errProfile stats.EstimationError, seed int64) (whatIf, learned float64) {
	t.Helper()
	s := bench.TPCH(200)
	e := engine.NewWithError(s, errProfile)
	gen := workload.NewGenerator(s, seed, 10)
	m, err := Train(e, gen.Query, 600, seed+1)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(seed + 2))
	n := 0
	for n < 120 {
		q := gen.Query()
		cfg := RandomConfig(e.Schema(), q, rng)
		truth, err := e.RuntimeCost(q, cfg)
		if err != nil || truth <= 0 {
			continue
		}
		est, err0 := e.QueryCost(q, cfg, engine.ModeEstimated)
		pred, err1 := m.QueryCost(e, q, cfg)
		if err0 != nil || err1 != nil {
			continue
		}
		whatIf += math.Abs(est-truth) / truth
		learned += math.Abs(pred-truth) / truth
		n++
	}
	return whatIf / float64(n), learned / float64(n)
}

// TestEstimationErrorAblation is the design-choice ablation DESIGN.md
// calls out: the simulator's injected estimation error is what gives the
// learned cost model (and hence TRAP's reward and the learned advisors)
// their edge. With the error dialed to (near) zero, the what-if estimate
// itself becomes accurate and the edge collapses.
func TestEstimationErrorAblation(t *testing.T) {
	wDefault, lDefault := relErrors(t, stats.DefaultEstimationError(), 11)
	wNone, _ := relErrors(t, stats.EstimationError{SkewDampening: 1, NDVAmp: 0}, 13)

	// Under the default profile the learned model must clearly beat
	// what-if estimates.
	if lDefault >= wDefault {
		t.Errorf("default profile: learned %v not below what-if %v", lDefault, wDefault)
	}
	// With no injected error, the what-if estimate is much closer to the
	// runtime proxy than under the default profile.
	if wNone >= wDefault {
		t.Errorf("exact statistics did not shrink what-if error: %v >= %v", wNone, wDefault)
	}
}
