// Package cluster is the multi-node placement layer for trapd: a fleet
// of nodes shares one job namespace through the durable joblog, with
// worker-pull job ownership mediated by leases and fencing tokens.
//
// # Model
//
// The shared log is the only coordination medium. Every node folds the
// same totally-ordered record stream, so every node converges on the
// same view of the job table. Three cluster record types ride alongside
// the service's own job records:
//
//   - node-heartbeat: a node announcing liveness.
//   - lease-claim:    a node taking (or renewing) ownership of one job,
//     carrying the node ID, the lease epoch and a deadline.
//   - lease-release:  a node voluntarily giving a job back.
//
// # Fencing tokens
//
// Each job carries a monotonic lease epoch — the fencing token. A fresh
// claim (first claim, takeover of an expired lease) increments it; a
// renewal by the current holder keeps it and extends the deadline. Every
// owned append (job state, progress, result) names the epoch it was
// issued under, and the Bus rejects it with ErrFenced unless it matches
// the current lease exactly. A node that stalls or partitions past its
// lease deadline loses ownership the moment a survivor re-claims at a
// higher epoch; when the stale node wakes up, its appends bounce off the
// fence (counted, visible in metrics) and its in-flight training is
// cancelled via context by the Coordinator. The same monotonicity rule
// guards replay: a claim record folds into the table only if its epoch
// is at least the current one, so stale claims can never regress
// ownership no matter what order segments are replayed in.
//
// # Failure detection and takeover
//
// Liveness is lease-deadline based: renewal rides the heartbeat tick, so
// a node that misses its heartbeats lets its lease deadlines pass, and
// any survivor's reconcile pass finds the jobs claimable and takes them
// over at a higher epoch. The new owner resumes training bit-identically
// from the latest shared -spool checkpoint (checkpoint keys are derived
// from the job spec and seed, not the node, so checkpoints are portable
// across the fleet).
//
// # Topology
//
// A Bus fronts one open joblog and fans records out to every attached
// node. In-process fleets (tests, chaos drills, cmd/trapload) attach N
// nodes to one Bus — the Bus's mutex is the linearization point for
// check-then-append claim races, standing in for the filesystem-level
// single-writer any real deployment has. Cross-process deployments run
// sequential failover: a standby starts on the dead node's log
// directory, replays, re-claims everything at higher epochs and resumes
// from the shared spool.
package cluster

import (
	"encoding/json"
	"errors"
	"fmt"
	"sort"
	"time"

	"github.com/trap-repro/trap/internal/joblog"
)

// Cluster record types appended to the shared joblog.
const (
	// RecHeartbeat is a node liveness announcement.
	RecHeartbeat = "node-heartbeat"
	// RecClaim is a lease claim or renewal on one job.
	RecClaim = "lease-claim"
	// RecRelease is a voluntary lease release.
	RecRelease = "lease-release"
	// RecMetrics is a node's periodic metric snapshot — the federation
	// feed behind GET /v1/cluster/metrics. Like heartbeats, metric
	// records update bus state but are excluded from history, fan-out
	// and compaction (a restart just waits for the next snapshots).
	RecMetrics = "node-metrics"
)

// Errors returned by Bus operations.
var (
	// ErrFenced rejects an owned append or renewal whose lease epoch is
	// stale: another node holds the job at a higher epoch.
	ErrFenced = errors.New("cluster: fenced: lease epoch is stale")
	// ErrNodeDown rejects operations from a node torn down by Kill
	// (the in-process stand-in for SIGKILL).
	ErrNodeDown = errors.New("cluster: node is down")
	// ErrUnavailable rejects operations from a node cut off by
	// Partition: the shared log is unreachable from it.
	ErrUnavailable = errors.New("cluster: node is partitioned from the shared log")
	// ErrClosed rejects operations on a closed Bus.
	ErrClosed = errors.New("cluster: bus is closed")
	// ErrNotOwner rejects an owned append from a node that holds no
	// lease on the job at all.
	ErrNotOwner = errors.New("cluster: node does not own this job")
)

// HeartbeatData is the payload of a RecHeartbeat record.
type HeartbeatData struct {
	Node string `json:"node"`
}

// ClaimData is the payload of a RecClaim record: the fencing token
// (Epoch) plus the holder and its deadline.
type ClaimData struct {
	Node     string    `json:"node"`
	Epoch    uint64    `json:"epoch"`
	Deadline time.Time `json:"deadline"`
	// Takeover marks a claim that seized an expired lease from another
	// node (as opposed to a first claim or a renewal).
	Takeover bool `json:"takeover,omitempty"`
	// Prev names the previous holder on a takeover, for audit.
	Prev string `json:"prev,omitempty"`
}

// ReleaseData is the payload of a RecRelease record.
type ReleaseData struct {
	Node  string `json:"node"`
	Epoch uint64 `json:"epoch"`
}

// MetricsData is the payload of a RecMetrics record: one node's
// point-in-time dump of its local metric registry, keyed by series name.
type MetricsData struct {
	Node    string             `json:"node"`
	Metrics map[string]float64 `json:"metrics"`
}

// Lease is the current ownership state of one job. A zero Node with a
// nonzero Epoch means the job is unheld but has been owned before; the
// epoch is the high-water fencing token the next claim must exceed.
type Lease struct {
	Node     string
	Epoch    uint64
	Deadline time.Time
}

// Held reports whether the lease is held and unexpired at now.
func (l Lease) Held(now time.Time) bool {
	return l.Node != "" && now.Before(l.Deadline)
}

// Class is how the service classifies its own job records for the Bus's
// table fold; the Bus itself is payload-agnostic.
type Class int

const (
	// ClassOther is a record with no bearing on job liveness.
	ClassOther Class = iota
	// ClassJobOpen is a job snapshot in a non-terminal state.
	ClassJobOpen
	// ClassJobTerminal is a job snapshot in a terminal state.
	ClassJobTerminal
	// ClassJobCancel is a cancel request routed to the owning node.
	ClassJobCancel
	// ClassJobDrop removes the job from the namespace (GC).
	ClassJobDrop
)

// NodeInfo is one node's row in the registry.
type NodeInfo struct {
	Node string `json:"node"`
	// LastBeat is the time of the node's last heartbeat record.
	LastBeat time.Time `json:"lastHeartbeat"`
	// Leases is the number of open jobs the node currently holds.
	Leases int `json:"leases"`
	// Attached reports a live subscription on this Bus (in-process
	// fleets); false for nodes known only from replayed heartbeats.
	Attached bool `json:"attached"`
	// Down marks a node torn down by Kill, or an unattached node whose
	// last heartbeat is stale (a crashed process in a shared-log fleet).
	Down bool `json:"down,omitempty"`
	// State classifies the row: "alive" (attached, or heartbeat fresh),
	// "stale" (unattached and heartbeat older than the down threshold),
	// "down" (torn down by Kill). Nodes stale past the expiry window are
	// dropped from the registry entirely rather than reported.
	State string `json:"state"`
}

// Node states reported by Bus.Nodes.
const (
	StateAlive = "alive"
	StateStale = "stale"
	StateDown  = "down"
)

// NodeMetricsInfo is one node's latest federated metric snapshot as seen
// by the Bus.
type NodeMetricsInfo struct {
	Node string `json:"node"`
	// At is the record time of the snapshot.
	At time.Time `json:"at"`
	// Stale marks a snapshot older than the caller's freshness window, or
	// one from a node that is down.
	Stale   bool               `json:"stale"`
	Metrics map[string]float64 `json:"metrics"`
}

// jobState is the Bus's per-job fold of the record stream.
type jobState struct {
	lease      Lease
	open       bool // a non-terminal snapshot has been seen
	cancelReq  bool // a cancel record is outstanding
	lastRec    joblog.Record
	lastClaim  joblog.Record
	hasClaim   bool
	lastCancel joblog.Record
	hasCancel  bool
}

// parseJobNum extracts N from a "job-N" ID, 0 if it is not of that form.
func parseJobNum(id string) int64 {
	var n int64
	if _, err := fmt.Sscanf(id, "job-%d", &n); err != nil || fmt.Sprintf("job-%d", n) != id {
		return 0
	}
	return n
}

// sortJobIDs orders "job-N" IDs numerically (unknown forms last,
// lexicographic), so reconcile scans are deterministic.
func sortJobIDs(ids []string) {
	sort.Slice(ids, func(i, j int) bool {
		a, b := parseJobNum(ids[i]), parseJobNum(ids[j])
		if a != b {
			if a == 0 {
				return false
			}
			if b == 0 {
				return true
			}
			return a < b
		}
		return ids[i] < ids[j]
	})
}

// unmarshal decodes a record payload, reporting success.
func unmarshal(data json.RawMessage, v any) bool {
	return data != nil && json.Unmarshal(data, v) == nil
}
