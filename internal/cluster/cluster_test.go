package cluster

import (
	"encoding/json"
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"

	"github.com/trap-repro/trap/internal/joblog"
)

// testClassify treats records typed "open" as live job snapshots,
// "done" as terminal, "cancel"/"drop" as their classes.
func testClassify(r joblog.Record) Class {
	switch r.Type {
	case "open":
		return ClassJobOpen
	case "done":
		return ClassJobTerminal
	case "cancel":
		return ClassJobCancel
	case "drop":
		return ClassJobDrop
	}
	return ClassOther
}

func testBus(t *testing.T) *Bus {
	t.Helper()
	b, err := Open(t.TempDir(), Options{Classify: testClassify, NoSync: true})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { b.Close() })
	return b
}

func submit(t *testing.T, b *Bus, node string) string {
	t.Helper()
	id := b.NextJobID()
	if _, err := b.Append(node, "open", id, map[string]string{"id": id}); err != nil {
		t.Fatal(err)
	}
	return id
}

func TestClaimRenewTakeoverEpochs(t *testing.T) {
	b := testBus(t)
	job := submit(t, b, "a")

	// First claim: epoch 1.
	res, err := b.Claim(job, "a", 50*time.Millisecond)
	if err != nil || !res.OK || res.Epoch != 1 || res.Takeover {
		t.Fatalf("first claim: %+v, %v", res, err)
	}
	// A valid lease blocks other claimants and reports the holder.
	if res2, _ := b.Claim(job, "b", 50*time.Millisecond); res2.OK || res2.Holder.Node != "a" {
		t.Fatalf("contended claim: %+v", res2)
	}
	// Renewal keeps the epoch.
	if res3, _ := b.Claim(job, "a", 50*time.Millisecond); !res3.OK || res3.Epoch != 1 {
		t.Fatalf("renewal: %+v", res3)
	}
	// Expiry lets another node take over at a higher epoch.
	time.Sleep(60 * time.Millisecond)
	res4, err := b.Claim(job, "b", time.Minute)
	if err != nil || !res4.OK || res4.Epoch != 2 || !res4.Takeover || res4.Prev != "a" {
		t.Fatalf("takeover: %+v, %v", res4, err)
	}
	st := b.Stats()
	if st.Claims != 2 || st.Renewals != 1 || st.Takeovers != 1 {
		t.Fatalf("stats: %+v", st)
	}
}

func TestFencedAppend(t *testing.T) {
	b := testBus(t)
	job := submit(t, b, "a")
	if res, _ := b.Claim(job, "a", time.Millisecond); !res.OK {
		t.Fatal("claim failed")
	}
	time.Sleep(5 * time.Millisecond)
	if res, _ := b.Claim(job, "b", time.Minute); !res.OK || res.Epoch != 2 {
		t.Fatalf("takeover: %+v", res)
	}
	// The old owner's append at epoch 1 bounces off the fence…
	if _, err := b.AppendOwned("a", 1, "done", job, nil); !errors.Is(err, ErrFenced) {
		t.Fatalf("stale append: %v, want ErrFenced", err)
	}
	// …visibly.
	if st := b.Stats(); st.FenceRejects != 1 {
		t.Fatalf("fence rejects: %+v", st)
	}
	// The valid owner's append lands.
	if _, err := b.AppendOwned("b", 2, "done", job, nil); err != nil {
		t.Fatalf("valid append: %v", err)
	}
	// A terminal job is no longer claimable.
	if res, _ := b.Claim(job, "a", time.Minute); res.OK {
		t.Fatal("terminal job claimed")
	}
}

func TestKillAndPartitionGates(t *testing.T) {
	b := testBus(t)
	job := submit(t, b, "a")
	if res, _ := b.Claim(job, "a", time.Minute); !res.OK {
		t.Fatal("claim failed")
	}

	b.Partition("a")
	if err := b.Heartbeat("a"); !errors.Is(err, ErrUnavailable) {
		t.Fatalf("partitioned heartbeat: %v", err)
	}
	if _, err := b.AppendOwned("a", 1, "done", job, nil); !errors.Is(err, ErrUnavailable) {
		t.Fatalf("partitioned append: %v", err)
	}
	b.Heal("a")
	if err := b.Heartbeat("a"); err != nil {
		t.Fatalf("healed heartbeat: %v", err)
	}

	b.Kill("a")
	if err := b.Heartbeat("a"); !errors.Is(err, ErrNodeDown) {
		t.Fatalf("killed heartbeat: %v", err)
	}
	if _, err := b.Claim(job, "a", time.Minute); !errors.Is(err, ErrNodeDown) {
		t.Fatalf("killed claim: %v", err)
	}
}

// TestReplayKeepsEpochHighWater proves the fencing token survives a
// restart and compaction: a bus reopened on the same directory must not
// hand out an epoch at or below the pre-restart one.
func TestReplayKeepsEpochHighWater(t *testing.T) {
	dir := t.TempDir()
	b, err := Open(dir, Options{Classify: testClassify, NoSync: true})
	if err != nil {
		t.Fatal(err)
	}
	job := b.NextJobID()
	if _, err := b.Append("a", "open", job, nil); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ { // epochs 1..3 via expiry takeovers
		node := fmt.Sprintf("n%d", i)
		if res, _ := b.Claim(job, node, time.Nanosecond); !res.OK {
			t.Fatalf("claim %d failed", i)
		}
		time.Sleep(time.Millisecond)
	}
	if lease, _ := b.Lease(job); lease.Epoch != 3 {
		t.Fatalf("epoch = %d, want 3", lease.Epoch)
	}
	if err := b.Close(); err != nil {
		t.Fatal(err)
	}

	b2, err := Open(dir, Options{Classify: testClassify, NoSync: true})
	if err != nil {
		t.Fatal(err)
	}
	defer b2.Close()
	lease, open := b2.Lease(job)
	if !open || lease.Epoch != 3 {
		t.Fatalf("replayed lease: %+v open=%v, want epoch 3", lease, open)
	}
	// The job ID high-water survives too: no ID reuse across restarts.
	if id := b2.NextJobID(); id != "job-2" {
		t.Fatalf("next ID after replay = %q, want job-2", id)
	}
	// And the next claim exceeds the high-water.
	if res, _ := b2.Claim(job, "n9", time.Minute); !res.OK || res.Epoch != 4 {
		t.Fatalf("post-replay claim: %+v", res)
	}
}

// TestAttachReplayAndFanout checks that a late attacher sees the folded
// history and that records flow to all attached nodes in log order.
func TestAttachReplayAndFanout(t *testing.T) {
	b := testBus(t)
	job := submit(t, b, "a")
	if res, _ := b.Claim(job, "a", time.Minute); !res.OK {
		t.Fatal("claim failed")
	}

	var mu sync.Mutex
	var got []string
	record := func(rec joblog.Record) {
		mu.Lock()
		got = append(got, rec.Type)
		mu.Unlock()
	}
	if _, err := b.Attach("b", record); err != nil {
		t.Fatal(err)
	}
	mu.Lock()
	hist := len(got)
	mu.Unlock()
	if hist != 2 { // open + claim
		t.Fatalf("attach replayed %d records, want 2: %v", hist, got)
	}
	if _, err := b.AppendOwned("a", 1, "done", job, nil); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(2 * time.Second)
	for {
		mu.Lock()
		n := len(got)
		last := ""
		if n > 0 {
			last = got[n-1]
		}
		mu.Unlock()
		if n == 3 && last == "done" {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("fan-out never delivered: %v", got)
		}
		time.Sleep(time.Millisecond)
	}
	if n := b.AttachedCount(); n != 1 {
		t.Fatalf("attached = %d", n)
	}
	b.Detach("b")
	if n := b.AttachedCount(); n != 0 {
		t.Fatalf("attached after detach = %d", n)
	}
}

// TestCoordinatorTakeover runs two coordinators against one bus: the
// owner stops beating (simulated stall), the survivor detects the
// expired lease, takes over at a higher epoch, and the stalled node's
// run is fenced when it observes the new claim.
func TestCoordinatorTakeover(t *testing.T) {
	b := testBus(t)

	type placed struct {
		epoch    uint64
		takeover bool
	}
	acquired := make(chan placed, 4)
	fencedCh := make(chan uint64, 1)

	mkCoord := func(node string, sink chan placed) *Coordinator {
		c := &Coordinator{
			Node: node, Bus: b,
			TTL: 120 * time.Millisecond, Beat: 30 * time.Millisecond,
			OnAcquire: func(job string, epoch uint64, takeover bool) bool {
				if sink != nil {
					sink <- placed{epoch, takeover}
				}
				return true
			},
			OnFence: func(job string, epoch uint64) {
				select {
				case fencedCh <- epoch:
				default:
				}
			},
		}
		return c
	}

	a := mkCoord("a", nil)
	job := submit(t, b, "a")
	if !a.TryClaim(job) {
		t.Fatal("initial claim failed")
	}
	epoch, ok := a.RunStarted(job, func() {})
	if !ok || epoch != 1 {
		t.Fatalf("RunStarted: %d %v", epoch, ok)
	}

	// The survivor starts its loop; node a never renews (no Start), so
	// its lease expires and b takes over.
	bc := mkCoord("b", acquired)
	bc.Start()
	defer bc.Stop()

	select {
	case p := <-acquired:
		if p.epoch != 2 || !p.takeover {
			t.Fatalf("takeover placement: %+v", p)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("survivor never took over")
	}
	if bc.Takeovers() != 1 {
		t.Fatalf("takeovers = %d", bc.Takeovers())
	}

	// The stalled node observes the higher-epoch claim and fences.
	a.ObserveClaim(job, ClaimData{Node: "b", Epoch: 2})
	select {
	case e := <-fencedCh:
		if e != 2 {
			t.Fatalf("fenced at %d", e)
		}
	default:
		t.Fatal("OnFence not called")
	}
	if a.FencedRuns() != 1 {
		t.Fatal("fenced run not counted")
	}
	// Its terminal append still goes to the bus — and is rejected there,
	// visibly.
	if _, err := a.AppendOwned("done", job, nil); !errors.Is(err, ErrFenced) {
		t.Fatalf("stale terminal append: %v", err)
	}
	if st := b.Stats(); st.FenceRejects < 1 {
		t.Fatalf("fence not counted: %+v", st)
	}
	a.RunEnded(job)
	if _, own := a.Owned(job); own {
		t.Fatal("stale owner still owns")
	}
}

// TestCancelRequestFold checks cancel records route through the table.
func TestCancelRequestFold(t *testing.T) {
	b := testBus(t)
	job := submit(t, b, "a")
	if b.CancelRequested(job) {
		t.Fatal("fresh job has cancel requested")
	}
	if _, err := b.Append("b", "cancel", job, nil); err != nil {
		t.Fatal(err)
	}
	if !b.CancelRequested(job) {
		t.Fatal("cancel record not folded")
	}
}

// TestHistoryCompaction drives the in-memory history past its bound and
// checks a late attacher still converges on the folded state.
func TestHistoryCompaction(t *testing.T) {
	b := testBus(t)
	job := submit(t, b, "a")
	if res, _ := b.Claim(job, "a", time.Minute); !res.OK {
		t.Fatal("claim failed")
	}
	for i := 0; i < maxHistory+16; i++ {
		if _, err := b.AppendOwned("a", 1, "open", job, map[string]int{"i": i}); err != nil {
			t.Fatal(err)
		}
	}
	b.mu.Lock()
	hlen := len(b.history)
	b.mu.Unlock()
	if hlen > maxHistory {
		t.Fatalf("history not compacted: %d", hlen)
	}
	var types []string
	if _, err := b.Attach("late", func(rec joblog.Record) {
		types = append(types, rec.Type)
	}); err != nil {
		t.Fatal(err)
	}
	// The compacted view is the latest snapshot + claim at compaction
	// time, plus whatever was appended since — far fewer than the raw
	// stream, and with exactly one claim record.
	open, claim := 0, 0
	for _, ty := range types {
		switch ty {
		case "open":
			open++
		case RecClaim:
			claim++
		}
	}
	if claim != 1 || open < 1 || len(types) > 64 {
		t.Fatalf("late attach saw %d open / %d claim records (%d total)", open, claim, len(types))
	}
}

// TestNodesRegistry checks heartbeat folding into the registry.
func TestNodesRegistry(t *testing.T) {
	b := testBus(t)
	if err := b.Heartbeat("a"); err != nil {
		t.Fatal(err)
	}
	if err := b.Heartbeat("b"); err != nil {
		t.Fatal(err)
	}
	b.Kill("b")
	infos := b.Nodes()
	if len(infos) != 2 || infos[0].Node != "a" || infos[1].Node != "b" {
		t.Fatalf("nodes: %+v", infos)
	}
	if infos[0].LastBeat.IsZero() || !infos[1].Down {
		t.Fatalf("nodes detail: %+v", infos)
	}
	raw, err := json.Marshal(infos)
	if err != nil || len(raw) == 0 {
		t.Fatalf("marshal: %v", err)
	}
}
