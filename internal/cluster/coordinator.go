package cluster

import (
	"context"
	"sync"
	"sync/atomic"
	"time"

	"github.com/trap-repro/trap/internal/faultinject"
	"github.com/trap-repro/trap/internal/joblog"
	"github.com/trap-repro/trap/internal/trace"
)

// Coordinator is one node's cluster agent: it heartbeats, renews the
// leases the node holds, pulls claimable work (worker-pull placement),
// and fences the node's own in-flight runs the moment another node takes
// a job over at a higher epoch. The owning server drives it through
// three hooks:
//
//   - CanClaim gates reconcile (local queue capacity, draining state).
//   - OnAcquire places a claimed job on the local queue; returning false
//     releases the lease so another node can take it.
//   - OnFence is notified after a local run has been cancelled because
//     its lease moved.
//
// All exported fields must be set before Start and not mutated after.
type Coordinator struct {
	Node string
	Bus  *Bus
	// TTL is the lease duration (default 15s); Beat the heartbeat/renew/
	// reconcile cadence (default TTL/3). Renewal rides the beat, so a
	// node that misses ~TTL/Beat consecutive beats loses its leases.
	TTL  time.Duration
	Beat time.Duration
	// Inject fires PointHeartbeat at every beat and PointLeaseAppend
	// before every fresh claim.
	Inject faultinject.Injector
	// Tracer, when non-nil, records takeover and fence transitions as
	// spans.
	Tracer    *trace.Tracer
	CanClaim  func() bool
	OnAcquire func(job string, epoch uint64, takeover bool) bool
	OnFence   func(job string, epoch uint64)

	mu    sync.Mutex
	owned map[string]*ownedJob
	once  sync.Once

	running  bool
	stop     chan struct{}
	wg       sync.WaitGroup
	lastBeat atomic.Int64 // unix nanos of the last successful heartbeat

	beatErrs   atomic.Int64
	fencedRuns atomic.Int64
	takeovers  atomic.Int64
	claims     atomic.Int64
}

// ownedJob is one lease this node holds. fenced marks a lease lost to a
// higher epoch: the local run is cancelled, and any still-in-flight
// append deliberately proceeds at the stale epoch so the Bus's fence
// counter records the rejection.
type ownedJob struct {
	epoch  uint64
	fenced bool
	cancel context.CancelFunc
}

func (c *Coordinator) init() {
	c.once.Do(func() {
		c.owned = make(map[string]*ownedJob)
		if c.TTL <= 0 {
			c.TTL = 15 * time.Second
		}
		if c.Beat <= 0 {
			c.Beat = c.TTL / 3
		}
	})
}

// Start begins the heartbeat/renew/reconcile loop (one immediate beat,
// then every Beat).
func (c *Coordinator) Start() {
	c.init()
	c.mu.Lock()
	if c.running {
		c.mu.Unlock()
		return
	}
	c.running = true
	c.stop = make(chan struct{})
	stop := c.stop
	c.mu.Unlock()
	c.lastBeat.Store(time.Now().UnixNano())
	c.tick()
	c.wg.Add(1)
	go func() {
		defer c.wg.Done()
		t := time.NewTicker(c.Beat)
		defer t.Stop()
		for {
			select {
			case <-stop:
				return
			case <-t.C:
				c.tick()
			}
		}
	}()
}

// Stop halts the loop. Held leases are left to expire (use Release or
// CancelAll first for a graceful drain).
func (c *Coordinator) Stop() {
	c.mu.Lock()
	if !c.running {
		c.mu.Unlock()
		return
	}
	c.running = false
	close(c.stop)
	c.mu.Unlock()
	c.wg.Wait()
}

// tick is one beat: announce liveness, renew held leases, pull work.
func (c *Coordinator) tick() {
	// An injected delay here stalls the whole loop — the "GC pause"
	// drill: heartbeats stop, leases expire, survivors take over.
	if err := faultinject.Fire(c.Inject, faultinject.PointHeartbeat); err != nil {
		c.beatErrs.Add(1)
	} else if err := c.Bus.Heartbeat(c.Node); err != nil {
		c.beatErrs.Add(1)
	} else {
		c.lastBeat.Store(time.Now().UnixNano())
	}
	c.renew()
	c.reconcile()
}

// renew extends every held lease at its current epoch. A renewal that
// finds the lease validly held elsewhere means this node lost it while
// stalled: the local run is fenced.
func (c *Coordinator) renew() {
	c.mu.Lock()
	jobs := make([]string, 0, len(c.owned))
	for id, o := range c.owned {
		if !o.fenced {
			jobs = append(jobs, id)
		}
	}
	c.mu.Unlock()
	sortJobIDs(jobs)
	for _, id := range jobs {
		res, err := c.Bus.Claim(id, c.Node, c.TTL)
		switch {
		case err != nil:
			// Partitioned, degraded or down: nothing to do but keep
			// running and let the deadline decide.
		case !res.OK:
			if res.Holder.Node != "" && res.Holder.Node != c.Node {
				c.fence(id, res.Holder.Epoch)
			}
		default:
			c.mu.Lock()
			if o := c.owned[id]; o != nil && !o.fenced {
				o.epoch = res.Epoch
			}
			c.mu.Unlock()
		}
	}
}

// reconcile pulls claimable jobs (unclaimed, released, or expired — the
// missed-heartbeat signal) while the server reports capacity.
func (c *Coordinator) reconcile() {
	ids := c.Bus.Claimable(time.Now())
	sortJobIDs(ids)
	for _, id := range ids {
		if c.CanClaim != nil && !c.CanClaim() {
			return
		}
		c.TryClaim(id)
	}
}

// TryClaim attempts to take ownership of job and place it locally.
// Safe to call from the fold path (submit records) and from reconcile.
func (c *Coordinator) TryClaim(job string) bool {
	c.init()
	c.mu.Lock()
	if _, own := c.owned[job]; own {
		c.mu.Unlock()
		return false
	}
	c.mu.Unlock()
	if c.CanClaim != nil && !c.CanClaim() {
		return false
	}
	if err := faultinject.Fire(c.Inject, faultinject.PointLeaseAppend); err != nil {
		return false // injected claim-path failure: leave it claimable
	}
	res, err := c.Bus.Claim(job, c.Node, c.TTL)
	if err != nil || !res.OK {
		return false
	}
	c.mu.Lock()
	c.owned[job] = &ownedJob{epoch: res.Epoch}
	c.mu.Unlock()
	c.claims.Add(1)
	if res.Takeover {
		c.takeovers.Add(1)
		if c.Tracer != nil {
			_, sp := c.Tracer.Start(context.Background(), "cluster.takeover")
			sp.Str("job", job)
			sp.Str("node", c.Node)
			sp.Str("from", res.Prev)
			sp.Int("epoch", int64(res.Epoch))
			sp.End()
		}
	}
	if c.OnAcquire != nil && !c.OnAcquire(job, res.Epoch, res.Takeover) {
		_ = c.Bus.Release(job, c.Node, res.Epoch)
		c.mu.Lock()
		delete(c.owned, job)
		c.mu.Unlock()
		return false
	}
	return true
}

// ObserveClaim is fed every folded lease-claim record by the server. A
// claim by another node at a higher epoch on a job this node owns is the
// fence: the local run is cancelled immediately.
func (c *Coordinator) ObserveClaim(job string, cd ClaimData) {
	if cd.Node == c.Node {
		return
	}
	c.init()
	c.mu.Lock()
	o := c.owned[job]
	stale := o != nil && !o.fenced && cd.Epoch > o.epoch
	c.mu.Unlock()
	if stale {
		c.fence(job, cd.Epoch)
	}
}

// fence marks job's local lease lost and cancels its in-flight run. The
// owned entry is kept (at its stale epoch) until RunEnded, so the run's
// terminal append still happens — and bounces off the Bus fence, making
// the rejection visible in the counter.
func (c *Coordinator) fence(job string, newEpoch uint64) {
	c.mu.Lock()
	o := c.owned[job]
	if o == nil || o.fenced {
		c.mu.Unlock()
		return
	}
	o.fenced = true
	oldEpoch := o.epoch
	cancel := o.cancel
	c.mu.Unlock()
	c.fencedRuns.Add(1)
	if c.Tracer != nil {
		_, sp := c.Tracer.Start(context.Background(), "cluster.fence")
		sp.Str("job", job)
		sp.Str("node", c.Node)
		sp.Int("epoch", int64(oldEpoch))
		sp.Int("newEpoch", int64(newEpoch))
		sp.End()
	}
	if cancel != nil {
		cancel()
	}
	if c.OnFence != nil {
		c.OnFence(job, newEpoch)
	}
}

// RunStarted registers the cancel func of a run about to start and
// returns the epoch it runs under. Not ok means the lease is already
// gone (lost while queued) and the run must not start.
func (c *Coordinator) RunStarted(job string, cancel context.CancelFunc) (uint64, bool) {
	c.init()
	c.mu.Lock()
	defer c.mu.Unlock()
	o := c.owned[job]
	if o == nil || o.fenced {
		return 0, false
	}
	o.cancel = cancel
	return o.epoch, true
}

// RunEnded drops the local lease record after the run's terminal append
// (successful or fenced). The durable lease simply expires; the job is
// terminal, so nobody re-claims it.
func (c *Coordinator) RunEnded(job string) {
	c.init()
	c.mu.Lock()
	delete(c.owned, job)
	c.mu.Unlock()
}

// AppendOwned appends a record under the node's current lease on job.
// Fenced leases deliberately still attempt the append at their stale
// epoch: the Bus rejects it and counts the fence.
func (c *Coordinator) AppendOwned(typ, job string, data any) (joblog.Record, error) {
	c.init()
	c.mu.Lock()
	o := c.owned[job]
	var epoch uint64
	if o != nil {
		epoch = o.epoch
	}
	c.mu.Unlock()
	if o == nil {
		return joblog.Record{}, ErrNotOwner
	}
	return c.Bus.AppendOwned(c.Node, epoch, typ, job, data)
}

// Release gives job's lease back (graceful drain of queued work).
func (c *Coordinator) Release(job string) {
	c.init()
	c.mu.Lock()
	o := c.owned[job]
	var epoch uint64
	if o != nil {
		epoch = o.epoch
		delete(c.owned, job)
	}
	c.mu.Unlock()
	if o != nil {
		_ = c.Bus.Release(job, c.Node, epoch)
	}
}

// Owned reports the lease epoch this node holds on job, if any.
func (c *Coordinator) Owned(job string) (uint64, bool) {
	c.init()
	c.mu.Lock()
	defer c.mu.Unlock()
	o := c.owned[job]
	if o == nil || o.fenced {
		return 0, false
	}
	return o.epoch, true
}

// CancelAll cancels every registered in-flight run (node teardown).
func (c *Coordinator) CancelAll() {
	c.init()
	c.mu.Lock()
	cancels := make([]context.CancelFunc, 0, len(c.owned))
	for _, o := range c.owned {
		if o.cancel != nil {
			cancels = append(cancels, o.cancel)
		}
	}
	c.mu.Unlock()
	for _, cancel := range cancels {
		cancel()
	}
}

// Leases counts the unfenced leases this node holds.
func (c *Coordinator) Leases() int {
	c.init()
	c.mu.Lock()
	defer c.mu.Unlock()
	n := 0
	for _, o := range c.owned {
		if !o.fenced {
			n++
		}
	}
	return n
}

// HeartbeatAge is the time since the last successful heartbeat append —
// the node's own view of its lease health (readyz surfaces it).
func (c *Coordinator) HeartbeatAge() time.Duration {
	ns := c.lastBeat.Load()
	if ns == 0 {
		return 0
	}
	return time.Since(time.Unix(0, ns))
}

// BeatErrors counts failed heartbeat appends; FencedRuns counts local
// runs cancelled because their lease moved; Takeovers and Claims count
// this node's acquisitions.
func (c *Coordinator) BeatErrors() int64 { return c.beatErrs.Load() }
func (c *Coordinator) FencedRuns() int64 { return c.fencedRuns.Load() }
func (c *Coordinator) Takeovers() int64  { return c.takeovers.Load() }
func (c *Coordinator) Claims() int64     { return c.claims.Load() }
