package cluster

import (
	"fmt"
	"slices"
	"sync"
	"time"

	"github.com/trap-repro/trap/internal/faultinject"
	"github.com/trap-repro/trap/internal/joblog"
)

// maxHistory bounds the in-memory record history kept for late Attach
// calls; past it the history is compacted to the folded snapshot (the
// same shape a process restart would replay from disk).
const maxHistory = 8192

// Options parameterizes a Bus.
type Options struct {
	// SegmentBytes and NoSync pass through to the underlying joblog.
	SegmentBytes int64
	NoSync       bool
	// Classify maps the service's own job records onto the Bus's job
	// table (open/terminal/cancel/drop). Cluster records are handled by
	// the Bus itself. A nil Classify treats every non-cluster record as
	// ClassOther, which disables job tracking.
	Classify func(joblog.Record) Class
	// Injector arms the joblog append path (see joblog.Options.Injector).
	Injector faultinject.Injector
	// NodeExpiry is how stale an unattached, lease-free node's heartbeat
	// may grow before the node is dropped from the registry entirely
	// (dead nodes should eventually disappear from /v1/nodes, not pile
	// up as "down" rows forever). Zero means the default (10× the down
	// threshold).
	NodeExpiry time.Duration
}

// BusStats is a point-in-time summary of the Bus's counters.
type BusStats struct {
	// Claims counts fresh claims (including takeovers), Renewals the
	// same-epoch deadline extensions, Takeovers the subset of claims
	// that seized an expired lease from another node.
	Claims, Renewals, Takeovers, Releases int64
	// FenceRejects counts owned appends rejected because the caller's
	// lease epoch was stale — each one is a stale result that a
	// partitioned or paused node tried to publish after losing its lease.
	FenceRejects int64
	// OpenJobs is the number of non-terminal jobs in the namespace;
	// Attached the number of live node subscriptions.
	OpenJobs, Attached int
}

// Bus fronts one shared joblog for a fleet of nodes: it linearizes
// check-then-append operations (claims, fenced appends) under one mutex,
// folds every record into the job/lease table, and fans records out to
// every attached node in log order. Kill and Partition make node death
// and network partition drillable in-process.
type Bus struct {
	mu       sync.Mutex
	log      *joblog.Log
	classify func(joblog.Record) Class

	jobs    map[string]*jobState
	nodes   map[string]time.Time     // node -> last heartbeat record time
	beats   map[string]joblog.Record // node -> last heartbeat record (survives compaction)
	metrics map[string]joblog.Record // node -> last metrics snapshot record
	expiry  time.Duration            // registry expiry for dead nodes
	subs    map[string]*Sub
	banned  map[string]bool // Kill'd nodes
	parted  map[string]bool // Partition'd nodes
	history []joblog.Record // non-heartbeat records for late Attach
	nextJob int64           // high-water of "job-N" IDs seen
	closed  bool
	stats   BusStats
}

// ClaimResult is the outcome of a Claim attempt.
type ClaimResult struct {
	// OK reports the caller now holds (or still holds) the lease.
	OK bool
	// Epoch is the fencing token the lease is held under when OK.
	Epoch uint64
	// Takeover marks a claim that seized an expired lease; Prev names
	// the previous holder.
	Takeover bool
	Prev     string
	// Holder is the valid current lease when OK is false because the
	// job is owned elsewhere.
	Holder Lease
}

// Open opens (or creates) the shared log in dir, folds every replayed
// record into the job/lease table, and compacts both the disk log and
// the in-memory history down to the folded snapshot.
func Open(dir string, o Options) (*Bus, error) {
	b := &Bus{
		classify: o.Classify,
		jobs:     make(map[string]*jobState),
		nodes:    make(map[string]time.Time),
		beats:    make(map[string]joblog.Record),
		metrics:  make(map[string]joblog.Record),
		expiry:   o.NodeExpiry,
		subs:     make(map[string]*Sub),
		banned:   make(map[string]bool),
		parted:   make(map[string]bool),
	}
	if b.expiry <= 0 {
		b.expiry = 10 * downAfter
	}
	l, err := joblog.Open(dir, joblog.Options{
		SegmentBytes: o.SegmentBytes,
		NoSync:       o.NoSync,
		Injector:     o.Injector,
		Replay: func(rec joblog.Record) error {
			b.fold(rec)
			if rec.Type != RecHeartbeat && rec.Type != RecMetrics {
				b.history = append(b.history, rec)
			}
			return nil
		},
	})
	if err != nil {
		return nil, err
	}
	b.log = l
	if len(b.history) > 0 || l.Stats().Replayed > 0 {
		snap := b.rebuild()
		// Compaction failure is not fatal — the log just replays longer
		// next time (or is already degraded, which Stats exposes).
		_ = l.Compact(snap)
		b.history = snap
	}
	return b, nil
}

// Log exposes the underlying joblog (read-only use: stats, health).
func (b *Bus) Log() *joblog.Log { return b.log }

// gate rejects operations from closed buses and dead/partitioned nodes
// (caller holds mu).
func (b *Bus) gate(node string) error {
	if b.closed {
		return ErrClosed
	}
	if b.banned[node] {
		return ErrNodeDown
	}
	if b.parted[node] {
		return ErrUnavailable
	}
	return nil
}

// job returns (creating if needed) the fold state for one job ID
// (caller holds mu).
func (b *Bus) job(id string) *jobState {
	st, ok := b.jobs[id]
	if !ok {
		st = &jobState{}
		b.jobs[id] = st
	}
	return st
}

// fold applies one record to the job/lease table (caller holds mu).
// The claim rule is the replay-side fence: a claim folds in only if its
// epoch is at least the current one, so ownership never regresses no
// matter what record order replay presents.
func (b *Bus) fold(rec joblog.Record) {
	switch rec.Type {
	case RecHeartbeat:
		var hb HeartbeatData
		if unmarshal(rec.Data, &hb) && hb.Node != "" {
			b.nodes[hb.Node] = rec.Time
			b.beats[hb.Node] = rec
		}
	case RecMetrics:
		var md MetricsData
		if unmarshal(rec.Data, &md) && md.Node != "" {
			b.metrics[md.Node] = rec
		}
	case RecClaim:
		var cd ClaimData
		if !unmarshal(rec.Data, &cd) {
			return
		}
		st := b.job(rec.JobID)
		if cd.Epoch > st.lease.Epoch || (cd.Epoch == st.lease.Epoch && cd.Node == st.lease.Node) {
			st.lease = Lease{Node: cd.Node, Epoch: cd.Epoch, Deadline: cd.Deadline}
			st.lastClaim, st.hasClaim = rec, true
		}
	case RecRelease:
		var rd ReleaseData
		if !unmarshal(rec.Data, &rd) {
			return
		}
		if st, ok := b.jobs[rec.JobID]; ok && st.lease.Node == rd.Node && st.lease.Epoch == rd.Epoch {
			// Clear the holder but keep the epoch: it is the high-water
			// fencing token the next claim must exceed.
			st.lease.Node = ""
			st.lease.Deadline = time.Time{}
		}
	default:
		if b.classify == nil {
			return
		}
		switch b.classify(rec) {
		case ClassJobOpen:
			st := b.job(rec.JobID)
			st.open, st.lastRec = true, rec
			b.noteJobID(rec.JobID)
		case ClassJobTerminal:
			st := b.job(rec.JobID)
			st.open, st.lastRec = false, rec
			b.noteJobID(rec.JobID)
		case ClassJobCancel:
			if st, ok := b.jobs[rec.JobID]; ok {
				st.cancelReq = true
				st.lastCancel, st.hasCancel = rec, true
			}
		case ClassJobDrop:
			delete(b.jobs, rec.JobID)
		}
	}
}

// noteJobID advances the fleet-global job-ID high-water (caller holds mu).
func (b *Bus) noteJobID(id string) {
	if n := parseJobNum(id); n > b.nextJob {
		b.nextJob = n
	}
}

// append writes one record, folds it, and fans it out (caller holds mu).
func (b *Bus) append(typ, jobID string, data any) (joblog.Record, error) {
	rec, err := b.log.Append(typ, jobID, data)
	if err != nil {
		return joblog.Record{}, err
	}
	b.fold(rec)
	if typ != RecHeartbeat && typ != RecMetrics {
		b.history = append(b.history, rec)
		if len(b.history) > maxHistory {
			b.history = b.rebuild()
		}
		for _, sub := range b.subs {
			sub.push(rec)
		}
	}
	return rec, nil
}

// rebuild compacts the record stream to its folded snapshot: the latest
// job record per live job, plus the latest claim and any outstanding
// cancel for open jobs, in sequence order (caller holds mu).
func (b *Bus) rebuild() []joblog.Record {
	var recs []joblog.Record
	// Each node's last heartbeat survives compaction so the fleet
	// registry (and its down/stale reporting) spans restarts.
	for _, rec := range b.beats {
		recs = append(recs, rec)
	}
	for _, st := range b.jobs {
		if st.lastRec.Seq > 0 {
			recs = append(recs, st.lastRec)
		}
		if st.open && st.hasClaim {
			recs = append(recs, st.lastClaim)
		}
		if st.open && st.hasCancel && st.cancelReq {
			recs = append(recs, st.lastCancel)
		}
	}
	slices.SortFunc(recs, func(a, c joblog.Record) int {
		switch {
		case a.Seq < c.Seq:
			return -1
		case a.Seq > c.Seq:
			return 1
		}
		return 0
	})
	return recs
}

// NextJobID allocates the next fleet-unique "job-N" ID. IDs keep
// ascending across restarts because every folded job record advances the
// high-water.
func (b *Bus) NextJobID() string {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.nextJob++
	return fmt.Sprintf("job-%d", b.nextJob)
}

// Append durably appends an unowned record (job submission, GC drop) on
// behalf of node. Use AppendOwned for records that must be fenced.
func (b *Bus) Append(node, typ, jobID string, data any) (joblog.Record, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	if err := b.gate(node); err != nil {
		return joblog.Record{}, err
	}
	return b.append(typ, jobID, data)
}

// AppendOwned appends a record under a lease: it succeeds only if node
// holds jobID at exactly epoch. A stale epoch — the caller lost the
// lease to a takeover while it was stalled or partitioned — is rejected
// with ErrFenced and counted, and nothing reaches the log.
func (b *Bus) AppendOwned(node string, epoch uint64, typ, jobID string, data any) (joblog.Record, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	if err := b.gate(node); err != nil {
		return joblog.Record{}, err
	}
	st, ok := b.jobs[jobID]
	if !ok {
		b.stats.FenceRejects++
		return joblog.Record{}, ErrNotOwner
	}
	if st.lease.Node != node || st.lease.Epoch != epoch {
		b.stats.FenceRejects++
		return joblog.Record{}, fmt.Errorf("%w: %s@%d vs lease %s@%d",
			ErrFenced, node, epoch, st.lease.Node, st.lease.Epoch)
	}
	return b.append(typ, jobID, data)
}

// Claim takes, takes over, or renews the lease on jobID for node.
//   - Held by node already: renewal — same epoch, deadline extended.
//   - Unheld or expired: fresh claim at epoch+1 (a takeover if another
//     node let it expire).
//   - Validly held elsewhere: not OK, with the holder reported.
//
// Unknown and terminal jobs are not claimable (not OK, zero Holder).
func (b *Bus) Claim(job, node string, ttl time.Duration) (ClaimResult, error) {
	now := time.Now()
	b.mu.Lock()
	defer b.mu.Unlock()
	if err := b.gate(node); err != nil {
		return ClaimResult{}, err
	}
	st, ok := b.jobs[job]
	if !ok || !st.open {
		return ClaimResult{}, nil
	}
	cur := st.lease
	switch {
	case cur.Node == node && cur.Epoch > 0:
		cd := ClaimData{Node: node, Epoch: cur.Epoch, Deadline: now.Add(ttl)}
		if _, err := b.append(RecClaim, job, cd); err != nil {
			return ClaimResult{}, err
		}
		b.stats.Renewals++
		return ClaimResult{OK: true, Epoch: cur.Epoch}, nil
	case cur.Held(now):
		return ClaimResult{Holder: cur}, nil
	default:
		takeover := cur.Node != ""
		cd := ClaimData{
			Node: node, Epoch: cur.Epoch + 1, Deadline: now.Add(ttl),
			Takeover: takeover, Prev: cur.Node,
		}
		if _, err := b.append(RecClaim, job, cd); err != nil {
			return ClaimResult{}, err
		}
		b.stats.Claims++
		if takeover {
			b.stats.Takeovers++
		}
		return ClaimResult{OK: true, Epoch: cd.Epoch, Takeover: takeover, Prev: cur.Node}, nil
	}
}

// Release voluntarily gives up node's lease on job (drain, rejected
// placement). A mismatched lease is a lost race, not an error.
func (b *Bus) Release(job, node string, epoch uint64) error {
	b.mu.Lock()
	defer b.mu.Unlock()
	if err := b.gate(node); err != nil {
		return err
	}
	st, ok := b.jobs[job]
	if !ok || st.lease.Node != node || st.lease.Epoch != epoch {
		return nil
	}
	if _, err := b.append(RecRelease, job, ReleaseData{Node: node, Epoch: epoch}); err != nil {
		return err
	}
	b.stats.Releases++
	return nil
}

// Heartbeat durably announces node liveness. Heartbeats update the node
// registry but are excluded from history and fan-out.
func (b *Bus) Heartbeat(node string) error {
	b.mu.Lock()
	defer b.mu.Unlock()
	if err := b.gate(node); err != nil {
		return err
	}
	_, err := b.append(RecHeartbeat, "", HeartbeatData{Node: node})
	return err
}

// PublishMetrics durably records node's current metric snapshot. Like
// heartbeats, metric records update bus state but are excluded from
// history, fan-out and compaction — peers query the fold via
// NodeMetrics instead of re-folding every snapshot themselves.
func (b *Bus) PublishMetrics(node string, metrics map[string]float64) error {
	b.mu.Lock()
	defer b.mu.Unlock()
	if err := b.gate(node); err != nil {
		return err
	}
	_, err := b.append(RecMetrics, "", MetricsData{Node: node, Metrics: metrics})
	return err
}

// NodeMetrics lists the latest metric snapshot per node, sorted by node
// name. A snapshot older than staleAfter, or from a node that has been
// killed, is marked Stale (staleAfter <= 0 disables the age check).
func (b *Bus) NodeMetrics(staleAfter time.Duration) []NodeMetricsInfo {
	b.mu.Lock()
	defer b.mu.Unlock()
	infos := make([]NodeMetricsInfo, 0, len(b.metrics))
	for n, rec := range b.metrics {
		var md MetricsData
		if !unmarshal(rec.Data, &md) {
			continue
		}
		stale := b.banned[n]
		if staleAfter > 0 && time.Since(rec.Time) > staleAfter {
			stale = true
		}
		infos = append(infos, NodeMetricsInfo{
			Node:    n,
			At:      rec.Time,
			Stale:   stale,
			Metrics: md.Metrics,
		})
	}
	slices.SortFunc(infos, func(a, c NodeMetricsInfo) int {
		switch {
		case a.Node < c.Node:
			return -1
		case a.Node > c.Node:
			return 1
		}
		return 0
	})
	return infos
}

// Attach subscribes node to the record stream: fn first receives the
// (compacted) history synchronously, then every subsequent record in
// log order on a dedicated goroutine. fn must not block indefinitely —
// it is the node's single fold thread.
func (b *Bus) Attach(node string, fn func(joblog.Record)) (*Sub, error) {
	b.mu.Lock()
	if b.closed {
		b.mu.Unlock()
		return nil, ErrClosed
	}
	if b.banned[node] {
		b.mu.Unlock()
		return nil, ErrNodeDown
	}
	if _, dup := b.subs[node]; dup {
		b.mu.Unlock()
		return nil, fmt.Errorf("cluster: node %q already attached", node)
	}
	hist := slices.Clone(b.history)
	sub := newSub()
	b.subs[node] = sub
	if _, ok := b.nodes[node]; !ok {
		b.nodes[node] = time.Time{}
	}
	b.mu.Unlock()
	for _, rec := range hist {
		fn(rec)
	}
	go sub.pump(fn)
	return sub, nil
}

// Detach gracefully removes node's subscription (server shutdown).
func (b *Bus) Detach(node string) {
	b.mu.Lock()
	sub := b.subs[node]
	delete(b.subs, node)
	b.mu.Unlock()
	if sub != nil {
		sub.close()
	}
}

// Kill tears node down the way SIGKILL would: its subscription dies with
// queued records undelivered, and every later operation from it fails
// with ErrNodeDown. Its leases are left to expire, which is exactly what
// a survivor's failure detector watches for.
func (b *Bus) Kill(node string) {
	b.mu.Lock()
	b.banned[node] = true
	sub := b.subs[node]
	delete(b.subs, node)
	b.mu.Unlock()
	if sub != nil {
		sub.close()
	}
}

// Partition cuts node off from the shared log: its appends (heartbeats,
// renewals, results) fail with ErrUnavailable and record delivery to it
// pauses — but, unlike Kill, the node keeps running. Heal reconnects it,
// at which point its stale lease epochs bounce off the fence.
func (b *Bus) Partition(node string) {
	b.mu.Lock()
	b.parted[node] = true
	sub := b.subs[node]
	b.mu.Unlock()
	if sub != nil {
		sub.setPaused(true)
	}
}

// Heal reverses Partition: appends work again and the queued record
// backlog is delivered in order.
func (b *Bus) Heal(node string) {
	b.mu.Lock()
	delete(b.parted, node)
	sub := b.subs[node]
	b.mu.Unlock()
	if sub != nil {
		sub.setPaused(false)
	}
}

// Lease reports the current lease on job (ok when the job is known and
// open).
func (b *Bus) Lease(job string) (Lease, bool) {
	b.mu.Lock()
	defer b.mu.Unlock()
	st, found := b.jobs[job]
	if !found {
		return Lease{}, false
	}
	return st.lease, st.open
}

// Claimable lists the open jobs with no valid lease at now — never
// claimed, released, or expired (the failure-detector signal).
func (b *Bus) Claimable(now time.Time) []string {
	b.mu.Lock()
	defer b.mu.Unlock()
	var ids []string
	for id, st := range b.jobs {
		if st.open && !st.lease.Held(now) {
			ids = append(ids, id)
		}
	}
	return ids
}

// CancelRequested reports an outstanding cancel record for job, so the
// node that claims it can finalize the cancel instead of running it.
func (b *Bus) CancelRequested(job string) bool {
	b.mu.Lock()
	defer b.mu.Unlock()
	st, ok := b.jobs[job]
	return ok && st.open && st.cancelReq
}

// downAfter is how stale an unattached node's heartbeat may be before
// Nodes reports it down: long enough to ride out a restart, short
// enough that a crashed process's record doesn't read as alive.
const downAfter = 30 * time.Second

// Nodes lists every node known to the bus (heartbeats and live
// subscriptions), sorted by name, classifying each row as alive, stale
// or down. Unattached, lease-free nodes whose last heartbeat is older
// than the expiry window are dropped from the registry on the way —
// lazy expiry, so dead nodes eventually disappear from /v1/nodes
// instead of accumulating as permanent "down" rows.
func (b *Bus) Nodes() []NodeInfo {
	b.mu.Lock()
	defer b.mu.Unlock()
	leases := make(map[string]int)
	for _, st := range b.jobs {
		if st.open && st.lease.Node != "" {
			leases[st.lease.Node]++
		}
	}
	names := make(map[string]bool, len(b.nodes))
	for n := range b.nodes {
		names[n] = true
	}
	for n := range b.subs {
		names[n] = true
	}
	infos := make([]NodeInfo, 0, len(names))
	for n := range names {
		_, attached := b.subs[n]
		beat := b.nodes[n]
		if !attached && leases[n] == 0 && !beat.IsZero() && time.Since(beat) > b.expiry {
			delete(b.nodes, n)
			delete(b.beats, n)
			delete(b.metrics, n)
			delete(b.banned, n)
			delete(b.parted, n)
			continue
		}
		stale := !attached && !beat.IsZero() && time.Since(beat) > downAfter
		state := StateAlive
		switch {
		case b.banned[n]:
			state = StateDown
		case stale:
			state = StateStale
		}
		infos = append(infos, NodeInfo{
			Node:     n,
			LastBeat: beat,
			Leases:   leases[n],
			Attached: attached,
			Down:     b.banned[n] || stale,
			State:    state,
		})
	}
	slices.SortFunc(infos, func(a, c NodeInfo) int {
		switch {
		case a.Node < c.Node:
			return -1
		case a.Node > c.Node:
			return 1
		}
		return 0
	})
	return infos
}

// OpenJobs counts non-terminal jobs in the namespace.
func (b *Bus) OpenJobs() int {
	b.mu.Lock()
	defer b.mu.Unlock()
	n := 0
	for _, st := range b.jobs {
		if st.open {
			n++
		}
	}
	return n
}

// AttachedCount counts live node subscriptions.
func (b *Bus) AttachedCount() int {
	b.mu.Lock()
	defer b.mu.Unlock()
	return len(b.subs)
}

// Stats returns a snapshot of the bus counters.
func (b *Bus) Stats() BusStats {
	b.mu.Lock()
	defer b.mu.Unlock()
	st := b.stats
	st.Attached = len(b.subs)
	for _, js := range b.jobs {
		if js.open {
			st.OpenJobs++
		}
	}
	return st
}

// Close shuts the bus: all subscriptions end and the log is closed.
func (b *Bus) Close() error {
	b.mu.Lock()
	if b.closed {
		b.mu.Unlock()
		return nil
	}
	b.closed = true
	subs := make([]*Sub, 0, len(b.subs))
	for _, s := range b.subs {
		subs = append(subs, s)
	}
	b.subs = make(map[string]*Sub)
	b.mu.Unlock()
	for _, s := range subs {
		s.close()
	}
	return b.log.Close()
}

// Sub is one node's subscription to the record stream.
type Sub struct {
	mu     sync.Mutex
	cond   *sync.Cond
	queue  []joblog.Record
	paused bool
	closed bool
	done   chan struct{}
}

func newSub() *Sub {
	s := &Sub{done: make(chan struct{})}
	s.cond = sync.NewCond(&s.mu)
	return s
}

func (s *Sub) push(rec joblog.Record) {
	s.mu.Lock()
	if !s.closed {
		s.queue = append(s.queue, rec)
		s.cond.Signal()
	}
	s.mu.Unlock()
}

func (s *Sub) setPaused(p bool) {
	s.mu.Lock()
	s.paused = p
	s.cond.Broadcast()
	s.mu.Unlock()
}

func (s *Sub) close() {
	s.mu.Lock()
	already := s.closed
	s.closed = true
	s.cond.Broadcast()
	s.mu.Unlock()
	if !already {
		<-s.done // wait for the pump to exit: no folds after close
	}
}

// pump delivers queued records to fn in order. Close drops any queued
// backlog (a dead node never sees them).
func (s *Sub) pump(fn func(joblog.Record)) {
	defer close(s.done)
	for {
		s.mu.Lock()
		for !s.closed && (s.paused || len(s.queue) == 0) {
			s.cond.Wait()
		}
		if s.closed {
			s.mu.Unlock()
			return
		}
		batch := s.queue
		s.queue = nil
		s.mu.Unlock()
		for _, rec := range batch {
			fn(rec)
		}
	}
}
