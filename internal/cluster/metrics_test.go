package cluster

import (
	"encoding/json"
	"sync"
	"testing"
	"time"

	"github.com/trap-repro/trap/internal/joblog"
)

func TestMetricsFederationFold(t *testing.T) {
	b := testBus(t)
	if err := b.PublishMetrics("a", map[string]float64{"x_total": 3, "y": 0.5}); err != nil {
		t.Fatal(err)
	}
	if err := b.PublishMetrics("b", map[string]float64{"x_total": 4}); err != nil {
		t.Fatal(err)
	}
	// Latest snapshot per node wins.
	if err := b.PublishMetrics("a", map[string]float64{"x_total": 7, "y": 0.25}); err != nil {
		t.Fatal(err)
	}
	infos := b.NodeMetrics(time.Minute)
	if len(infos) != 2 || infos[0].Node != "a" || infos[1].Node != "b" {
		t.Fatalf("node metrics: %+v", infos)
	}
	if infos[0].Metrics["x_total"] != 7 || infos[0].Metrics["y"] != 0.25 {
		t.Fatalf("latest snapshot not folded: %+v", infos[0])
	}
	if infos[0].Stale || infos[1].Stale {
		t.Fatalf("fresh snapshots marked stale: %+v", infos)
	}
	// A killed node's snapshot is stale regardless of age.
	b.Kill("b")
	infos = b.NodeMetrics(time.Minute)
	if !infos[1].Stale || infos[0].Stale {
		t.Fatalf("kill staleness: %+v", infos)
	}
	// A snapshot older than the freshness window is stale.
	time.Sleep(5 * time.Millisecond)
	if infos = b.NodeMetrics(time.Millisecond); !infos[0].Stale {
		t.Fatalf("aged snapshot not stale: %+v", infos[0])
	}
}

func TestMetricsExcludedFromHistoryAndFanout(t *testing.T) {
	b := testBus(t)
	if err := b.PublishMetrics("a", map[string]float64{"x": 1}); err != nil {
		t.Fatal(err)
	}
	var mu sync.Mutex
	var seen []joblog.Record
	sub, err := b.Attach("w", func(rec joblog.Record) {
		mu.Lock()
		seen = append(seen, rec)
		mu.Unlock()
	})
	if err != nil {
		t.Fatal(err)
	}
	defer sub.close()
	// The metric record must not replay into the attach history...
	mu.Lock()
	for _, rec := range seen {
		if rec.Type == RecMetrics {
			t.Fatalf("metrics record in attach history: %+v", rec)
		}
	}
	mu.Unlock()
	// ...and live metric records must not fan out either (but the fold
	// still sees them).
	if err := b.PublishMetrics("a", map[string]float64{"x": 2}); err != nil {
		t.Fatal(err)
	}
	if _, err := b.Append("a", "open", b.NextJobID(), map[string]string{}); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(2 * time.Second)
	for {
		mu.Lock()
		n := len(seen)
		mu.Unlock()
		if n > 0 || time.Now().After(deadline) {
			break
		}
		time.Sleep(time.Millisecond)
	}
	mu.Lock()
	for _, rec := range seen {
		if rec.Type == RecMetrics {
			t.Fatalf("metrics record fanned out: %+v", rec)
		}
	}
	mu.Unlock()
	if got := b.NodeMetrics(0); len(got) != 1 || got[0].Metrics["x"] != 2 {
		t.Fatalf("fold missed live metrics record: %+v", got)
	}
}

func TestNodeStatesAndExpiry(t *testing.T) {
	b, err := Open(t.TempDir(), Options{
		Classify: testClassify, NoSync: true, NodeExpiry: 30 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer b.Close()
	sub, err := b.Attach("a", func(joblog.Record) {})
	if err != nil {
		t.Fatal(err)
	}
	defer sub.close()
	if err := b.Heartbeat("b"); err != nil {
		t.Fatal(err)
	}
	if err := b.Heartbeat("c"); err != nil {
		t.Fatal(err)
	}
	b.Kill("c")

	infos := b.Nodes()
	if len(infos) != 3 {
		t.Fatalf("nodes: %+v", infos)
	}
	if infos[0].State != StateAlive || infos[1].State != StateAlive || infos[2].State != StateDown {
		t.Fatalf("states: %+v", infos)
	}
	// An unattached node whose heartbeat predates the down threshold is
	// stale (synthesized via a direct fold of an old record — real time
	// scales are too long for a test).
	old, _ := json.Marshal(HeartbeatData{Node: "b"})
	b.mu.Lock()
	b.fold(joblog.Record{Type: RecHeartbeat, Time: time.Now().Add(-2 * downAfter), Data: old})
	b.expiry = time.Hour // keep it from expiring under us
	b.mu.Unlock()
	infos = b.Nodes()
	if infos[1].Node != "b" || infos[1].State != StateStale || !infos[1].Down {
		t.Fatalf("stale classification: %+v", infos)
	}

	// Past the expiry window, unattached lease-free nodes (including
	// killed ones) are dropped from the registry.
	b.mu.Lock()
	b.expiry = 30 * time.Millisecond
	b.mu.Unlock()
	time.Sleep(40 * time.Millisecond)
	infos = b.Nodes()
	if len(infos) != 1 || infos[0].Node != "a" || infos[0].State != StateAlive {
		t.Fatalf("expiry: %+v", infos)
	}
	// The attached node never expires.
	if got := b.Nodes(); len(got) != 1 || got[0].Node != "a" {
		t.Fatalf("attached node expired: %+v", got)
	}
}
