// Package sqlx models the Select-Project-Aggregate-Join (SPAJ) SQL subset
// that TRAP perturbs: SELECT / FROM / WHERE / GROUP BY / HAVING / ORDER BY
// with equality joins, scalar filter predicates, and simple aggregates.
//
// The package provides an AST, a lexer and recursive-descent parser, a
// canonical printer, a canonical tokenization of queries, and the
// token-level edit distance k(q, q') used by Definition 3.4 of the paper.
package sqlx

import (
	"fmt"
	"strconv"
	"strings"
	"sync/atomic"
)

// Datum is a literal value appearing in a predicate. Numeric datums carry
// their value in Num; string datums carry it in Str.
type Datum struct {
	IsNum bool
	Num   float64
	Str   string
}

// NumDatum returns a numeric literal.
func NumDatum(v float64) Datum { return Datum{IsNum: true, Num: v} }

// StrDatum returns a string literal.
func StrDatum(s string) Datum { return Datum{Str: s} }

// String renders the datum in SQL literal syntax.
func (d Datum) String() string {
	if d.IsNum {
		return strconv.FormatFloat(d.Num, 'g', -1, 64)
	}
	return "'" + strings.ReplaceAll(d.Str, "'", "''") + "'"
}

// Equal reports whether two datums are identical literals.
func (d Datum) Equal(o Datum) bool {
	if d.IsNum != o.IsNum {
		return false
	}
	if d.IsNum {
		return d.Num == o.Num
	}
	return d.Str == o.Str
}

// ColumnRef names a column of a table. Queries in this subset refer to
// tables directly by name (no aliases), so Table is always the table name.
type ColumnRef struct {
	Table  string
	Column string
}

// String renders the reference as "table.column".
func (c ColumnRef) String() string { return c.Table + "." + c.Column }

// Aggregate function names supported in SELECT payloads and HAVING.
const (
	AggCount = "COUNT"
	AggSum   = "SUM"
	AggAvg   = "AVG"
	AggMin   = "MIN"
	AggMax   = "MAX"
)

// Aggregators lists the supported aggregate function names.
var Aggregators = []string{AggCount, AggSum, AggAvg, AggMin, AggMax}

// SelectItem is one payload term: a bare column (Agg == "") or an
// aggregate over a column.
type SelectItem struct {
	Agg string
	Col ColumnRef
}

// String renders the item as it appears in the SELECT clause.
func (s SelectItem) String() string {
	if s.Agg == "" {
		return s.Col.String()
	}
	return s.Agg + "(" + s.Col.String() + ")"
}

// TableRef names a table in the FROM clause.
type TableRef struct {
	Name string
}

// JoinPred is an equality join predicate between two columns. The paper
// forbids perturbing the join graph, so join predicates are kept separate
// from filter predicates.
type JoinPred struct {
	Left  ColumnRef
	Right ColumnRef
}

// String renders the join predicate.
func (j JoinPred) String() string { return j.Left.String() + " = " + j.Right.String() }

// Comparison operators usable in filter predicates.
const (
	OpEq = "="
	OpNe = "!="
	OpLt = "<"
	OpLe = "<="
	OpGt = ">"
	OpGe = ">="
)

// Operators lists the supported comparison operators.
var Operators = []string{OpEq, OpNe, OpLt, OpLe, OpGt, OpGe}

// Predicate is a scalar filter predicate "col op literal".
type Predicate struct {
	Col ColumnRef
	Op  string
	Val Datum
}

// String renders the predicate.
func (p Predicate) String() string {
	return p.Col.String() + " " + p.Op + " " + p.Val.String()
}

// Conj is the conjunction joining two adjacent filter predicates.
type Conj string

// Supported conjunctions.
const (
	ConjAnd Conj = "AND"
	ConjOr  Conj = "OR"
)

// HavingPred is a HAVING predicate over an aggregate, "agg(col) op literal".
type HavingPred struct {
	Agg string
	Col ColumnRef
	Op  string
	Val Datum
}

// String renders the HAVING predicate.
func (h HavingPred) String() string {
	return h.Agg + "(" + h.Col.String() + ") " + h.Op + " " + h.Val.String()
}

// Query is a SPAJ query. Filters[i] and Filters[i+1] are joined by Conjs[i];
// join predicates are always AND-ed and precede the filters when printed.
//
// # Memoization
//
// Queries on the costing hot path are rendered (String) and analyzed
// (PlanInfo) thousands of times, so both are memoized on the Query value
// with a single atomic pointer. The memo is concurrency-safe for readers;
// code that mutates a Query's exported fields after the query has been
// rendered or costed must hold the only reference to it and call
// Invalidate afterwards (Clone always returns a query with an empty
// memo, so the usual clone-then-mutate pattern needs no invalidation
// until the clone itself has been used).
type Query struct {
	Select  []SelectItem
	From    []TableRef
	Joins   []JoinPred
	Filters []Predicate
	Conjs   []Conj
	GroupBy []ColumnRef
	Having  *HavingPred
	OrderBy []ColumnRef

	memo atomic.Pointer[queryMemo]
}

// queryMemo caches values derived from the query's exported fields. It is
// replaced wholesale by Invalidate, dropping every derived value at once.
type queryMemo struct {
	str  string
	plan atomic.Pointer[any]
}

// loadMemo returns the current memo, creating (and publishing) it on
// first use. A racing duplicate creation is benign: both goroutines
// render the same fields, and the last published memo wins.
func (q *Query) loadMemo() *queryMemo {
	if m := q.memo.Load(); m != nil {
		return m
	}
	m := &queryMemo{str: q.render()}
	q.memo.Store(m)
	return m
}

// Invalidate drops the query's memoized derived values (canonical text,
// plan analysis). Callers must invoke it after mutating any exported
// field of a query that may already have been rendered or costed.
func (q *Query) Invalidate() { q.memo.Store(nil) }

// PlanInfo returns the opaque analysis value attached by SetPlanInfo, or
// nil if none is attached (or the query was invalidated since).
func (q *Query) PlanInfo() any {
	if m := q.memo.Load(); m != nil {
		if v := m.plan.Load(); v != nil {
			return *v
		}
	}
	return nil
}

// SetPlanInfo attaches an opaque, query-derived analysis value to the
// memo (the engine caches its per-table predicate analysis here). The
// value must depend only on the query's exported fields: it is dropped
// on Invalidate together with the canonical text.
func (q *Query) SetPlanInfo(v any) {
	q.loadMemo().plan.Store(&v)
}

// Clone returns a deep copy of the query.
func (q *Query) Clone() *Query {
	c := &Query{
		Select:  append([]SelectItem(nil), q.Select...),
		From:    append([]TableRef(nil), q.From...),
		Joins:   append([]JoinPred(nil), q.Joins...),
		Filters: append([]Predicate(nil), q.Filters...),
		Conjs:   append([]Conj(nil), q.Conjs...),
		GroupBy: append([]ColumnRef(nil), q.GroupBy...),
		OrderBy: append([]ColumnRef(nil), q.OrderBy...),
	}
	if q.Having != nil {
		h := *q.Having
		c.Having = &h
	}
	return c
}

// Tables returns the set of table names referenced in FROM.
func (q *Query) Tables() []string {
	out := make([]string, len(q.From))
	for i, t := range q.From {
		out[i] = t.Name
	}
	return out
}

// HasTable reports whether the query's FROM clause contains name.
func (q *Query) HasTable(name string) bool {
	for _, t := range q.From {
		if t.Name == name {
			return true
		}
	}
	return false
}

// Columns returns every column referenced anywhere in the query,
// de-duplicated, in first-appearance order.
func (q *Query) Columns() []ColumnRef {
	seen := map[ColumnRef]bool{}
	var out []ColumnRef
	add := func(c ColumnRef) {
		if !seen[c] {
			seen[c] = true
			out = append(out, c)
		}
	}
	for _, s := range q.Select {
		add(s.Col)
	}
	for _, j := range q.Joins {
		add(j.Left)
		add(j.Right)
	}
	for _, p := range q.Filters {
		add(p.Col)
	}
	for _, c := range q.GroupBy {
		add(c)
	}
	if q.Having != nil {
		add(q.Having.Col)
	}
	for _, c := range q.OrderBy {
		add(c)
	}
	return out
}

// FilterColumns returns the columns used in filter predicates.
func (q *Query) FilterColumns() []ColumnRef {
	seen := map[ColumnRef]bool{}
	var out []ColumnRef
	for _, p := range q.Filters {
		if !seen[p.Col] {
			seen[p.Col] = true
			out = append(out, p.Col)
		}
	}
	return out
}

// JoinColumns returns the columns appearing in join predicates.
func (q *Query) JoinColumns() []ColumnRef {
	seen := map[ColumnRef]bool{}
	var out []ColumnRef
	for _, j := range q.Joins {
		for _, c := range []ColumnRef{j.Left, j.Right} {
			if !seen[c] {
				seen[c] = true
				out = append(out, c)
			}
		}
	}
	return out
}

// HasOrConj reports whether any adjacent filter pair is joined by OR.
func (q *Query) HasOrConj() bool {
	for _, c := range q.Conjs {
		if c == ConjOr {
			return true
		}
	}
	return false
}

// Validate checks structural invariants: non-empty SELECT and FROM, the
// conjunction list length, and that every referenced table is in FROM.
func (q *Query) Validate() error {
	if len(q.Select) == 0 {
		return fmt.Errorf("sqlx: query has empty SELECT clause")
	}
	if len(q.From) == 0 {
		return fmt.Errorf("sqlx: query has empty FROM clause")
	}
	want := len(q.Filters) - 1
	if want < 0 {
		want = 0
	}
	if len(q.Conjs) != want {
		return fmt.Errorf("sqlx: %d filters need %d conjunctions, have %d",
			len(q.Filters), want, len(q.Conjs))
	}
	for _, c := range q.Columns() {
		if !q.HasTable(c.Table) {
			return fmt.Errorf("sqlx: column %s references table not in FROM", c)
		}
	}
	seen := map[string]bool{}
	for _, t := range q.From {
		if seen[t.Name] {
			return fmt.Errorf("sqlx: table %s appears twice in FROM", t.Name)
		}
		seen[t.Name] = true
	}
	if len(q.GroupBy) > 0 {
		grouped := map[ColumnRef]bool{}
		for _, c := range q.GroupBy {
			grouped[c] = true
		}
		for _, s := range q.Select {
			if s.Agg == "" && !grouped[s.Col] {
				return fmt.Errorf("sqlx: select column %s not in GROUP BY", s.Col)
			}
		}
	}
	return nil
}

// String renders the query as canonical SQL text. The rendering is
// memoized (see the type's Memoization section): repeated calls on the
// hot costing path cost one atomic load.
func (q *Query) String() string {
	return q.loadMemo().str
}

// render builds the canonical SQL text from the exported fields.
func (q *Query) render() string {
	var b strings.Builder
	b.WriteString("SELECT ")
	for i, s := range q.Select {
		if i > 0 {
			b.WriteString(", ")
		}
		b.WriteString(s.String())
	}
	b.WriteString(" FROM ")
	for i, t := range q.From {
		if i > 0 {
			b.WriteString(", ")
		}
		b.WriteString(t.Name)
	}
	if len(q.Joins) > 0 || len(q.Filters) > 0 {
		b.WriteString(" WHERE ")
		for i, j := range q.Joins {
			if i > 0 {
				b.WriteString(" AND ")
			}
			b.WriteString(j.String())
		}
		for i, p := range q.Filters {
			if len(q.Joins) > 0 || i > 0 {
				conj := ConjAnd
				if i > 0 {
					conj = q.Conjs[i-1]
				}
				b.WriteString(" " + string(conj) + " ")
			}
			b.WriteString(p.String())
		}
	}
	if len(q.GroupBy) > 0 {
		b.WriteString(" GROUP BY ")
		for i, c := range q.GroupBy {
			if i > 0 {
				b.WriteString(", ")
			}
			b.WriteString(c.String())
		}
	}
	if q.Having != nil {
		b.WriteString(" HAVING " + q.Having.String())
	}
	if len(q.OrderBy) > 0 {
		b.WriteString(" ORDER BY ")
		for i, c := range q.OrderBy {
			if i > 0 {
				b.WriteString(", ")
			}
			b.WriteString(c.String())
		}
	}
	return b.String()
}
