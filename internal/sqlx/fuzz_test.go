package sqlx

import "testing"

// FuzzParse checks that the parser never panics on arbitrary input and
// that anything it accepts survives a print→parse round trip.
func FuzzParse(f *testing.F) {
	seeds := []string{
		"SELECT t.a FROM t",
		"SELECT t.a, SUM(t.b) FROM t WHERE t.a = 1 GROUP BY t.a HAVING SUM(t.b) > 2 ORDER BY t.a",
		"SELECT a.x FROM a, b WHERE a.id = b.aid AND a.x > 2 OR a.y != 'z'",
		"SELECT",
		"select t.a from t where t.a = 'it''s'",
		"SELECT t.a FROM t WHERE t.a <> 5",
		"SELECT t.a FROM t WHERE t.a = -1.5e3",
		"((((",
		"SELECT t.a FROM t WHERE t.a = 1 AND",
		"\x00\xff",
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, input string) {
		q, err := Parse(input)
		if err != nil {
			return
		}
		printed := q.String()
		q2, err := Parse(printed)
		if err != nil {
			t.Fatalf("accepted %q but rejected own output %q: %v", input, printed, err)
		}
		if q2.String() != printed {
			t.Fatalf("round trip not a fixpoint: %q vs %q", printed, q2.String())
		}
		// The token stream must align with the printer.
		if len(q.Tokens()) == 0 {
			t.Fatalf("accepted query with empty token stream: %q", printed)
		}
	})
}

// FuzzEditDistance checks the metric's basic laws on arbitrary accepted
// query pairs.
func FuzzEditDistance(f *testing.F) {
	f.Add("SELECT t.a FROM t", "SELECT t.b FROM t")
	f.Add("SELECT t.a FROM t WHERE t.a = 1", "SELECT t.a FROM t WHERE t.a = 2")
	f.Fuzz(func(t *testing.T, s1, s2 string) {
		a, err1 := Parse(s1)
		b, err2 := Parse(s2)
		if err1 != nil || err2 != nil {
			return
		}
		if EditDistance(a, a) != 0 || EditDistance(b, b) != 0 {
			t.Fatal("identity violated")
		}
		if EditDistance(a, b) != EditDistance(b, a) {
			t.Fatal("symmetry violated")
		}
	})
}
