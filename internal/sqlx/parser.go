package sqlx

import (
	"fmt"
	"strconv"
	"strings"
	"unicode"
)

// lexKind distinguishes raw lexical elements before grammatical analysis.
type lexKind int

const (
	lexIdent lexKind = iota
	lexNumber
	lexString
	lexOp
	lexPunct
	lexEOF
)

type lexToken struct {
	kind lexKind
	text string
	pos  int
}

// lexer splits SQL text into raw tokens. Identifiers may contain dots
// ("title.kind_id" is one identifier token).
type lexer struct {
	src string
	pos int
}

func (l *lexer) next() (lexToken, error) {
	for l.pos < len(l.src) && unicode.IsSpace(rune(l.src[l.pos])) {
		l.pos++
	}
	if l.pos >= len(l.src) {
		return lexToken{kind: lexEOF, pos: l.pos}, nil
	}
	start := l.pos
	c := l.src[l.pos]
	switch {
	case c == '\'':
		l.pos++
		var b strings.Builder
		for {
			if l.pos >= len(l.src) {
				return lexToken{}, fmt.Errorf("sqlx: unterminated string at %d", start)
			}
			if l.src[l.pos] == '\'' {
				if l.pos+1 < len(l.src) && l.src[l.pos+1] == '\'' {
					b.WriteByte('\'')
					l.pos += 2
					continue
				}
				l.pos++
				break
			}
			b.WriteByte(l.src[l.pos])
			l.pos++
		}
		return lexToken{kind: lexString, text: b.String(), pos: start}, nil
	case c == ',' || c == '(' || c == ')':
		l.pos++
		return lexToken{kind: lexPunct, text: string(c), pos: start}, nil
	case c == '=':
		l.pos++
		return lexToken{kind: lexOp, text: "=", pos: start}, nil
	case c == '!' || c == '<' || c == '>':
		l.pos++
		if l.pos < len(l.src) && (l.src[l.pos] == '=' || (c == '<' && l.src[l.pos] == '>')) {
			l.pos++
		}
		text := l.src[start:l.pos]
		if text == "<>" {
			text = "!="
		}
		if text == "!" {
			return lexToken{}, fmt.Errorf("sqlx: stray '!' at %d", start)
		}
		return lexToken{kind: lexOp, text: text, pos: start}, nil
	case c == '-' || c == '+' || (c >= '0' && c <= '9'):
		l.pos++
		for l.pos < len(l.src) {
			ch := l.src[l.pos]
			if (ch >= '0' && ch <= '9') || ch == '.' || ch == 'e' || ch == 'E' ||
				((ch == '+' || ch == '-') && (l.src[l.pos-1] == 'e' || l.src[l.pos-1] == 'E')) {
				l.pos++
				continue
			}
			break
		}
		return lexToken{kind: lexNumber, text: l.src[start:l.pos], pos: start}, nil
	case isIdentStart(c):
		l.pos++
		for l.pos < len(l.src) && isIdentPart(l.src[l.pos]) {
			l.pos++
		}
		return lexToken{kind: lexIdent, text: l.src[start:l.pos], pos: start}, nil
	}
	return lexToken{}, fmt.Errorf("sqlx: unexpected character %q at %d", c, start)
}

func isIdentStart(c byte) bool {
	return c == '_' || (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z')
}

func isIdentPart(c byte) bool {
	return isIdentStart(c) || c == '.' || (c >= '0' && c <= '9')
}

// parser implements a recursive-descent parser for the SPAJ grammar of
// Table II (without sub-queries; the workload generators never emit them).
type parser struct {
	toks []lexToken
	pos  int
}

// Parse parses SQL text into a Query and validates it.
func Parse(sql string) (*Query, error) {
	lx := lexer{src: sql}
	var toks []lexToken
	for {
		t, err := lx.next()
		if err != nil {
			return nil, err
		}
		toks = append(toks, t)
		if t.kind == lexEOF {
			break
		}
	}
	p := parser{toks: toks}
	q, err := p.parseQuery()
	if err != nil {
		return nil, err
	}
	if err := q.Validate(); err != nil {
		return nil, err
	}
	return q, nil
}

// MustParse parses SQL text and panics on error; intended for tests and
// built-in query literals.
func MustParse(sql string) *Query {
	q, err := Parse(sql)
	if err != nil {
		panic(err)
	}
	return q
}

func (p *parser) peek() lexToken { return p.toks[p.pos] }

func (p *parser) advance() lexToken {
	t := p.toks[p.pos]
	if t.kind != lexEOF {
		p.pos++
	}
	return t
}

func (p *parser) keyword(kw string) bool {
	t := p.peek()
	if t.kind == lexIdent && strings.EqualFold(t.text, kw) {
		p.advance()
		return true
	}
	return false
}

func (p *parser) expectKeyword(kw string) error {
	if !p.keyword(kw) {
		return fmt.Errorf("sqlx: expected %s at position %d, found %q", kw, p.peek().pos, p.peek().text)
	}
	return nil
}

func (p *parser) expectPunct(s string) error {
	t := p.peek()
	if t.kind == lexPunct && t.text == s {
		p.advance()
		return nil
	}
	return fmt.Errorf("sqlx: expected %q at position %d, found %q", s, t.pos, t.text)
}

func (p *parser) parseQuery() (*Query, error) {
	q := &Query{}
	if err := p.expectKeyword("SELECT"); err != nil {
		return nil, err
	}
	for {
		item, err := p.parseSelectItem()
		if err != nil {
			return nil, err
		}
		q.Select = append(q.Select, item)
		if p.peek().kind == lexPunct && p.peek().text == "," {
			p.advance()
			continue
		}
		break
	}
	if err := p.expectKeyword("FROM"); err != nil {
		return nil, err
	}
	for {
		t := p.peek()
		if t.kind != lexIdent {
			return nil, fmt.Errorf("sqlx: expected table name at %d", t.pos)
		}
		p.advance()
		q.From = append(q.From, TableRef{Name: strings.ToLower(t.text)})
		if p.peek().kind == lexPunct && p.peek().text == "," {
			p.advance()
			continue
		}
		break
	}
	if p.keyword("WHERE") {
		if err := p.parseWhere(q); err != nil {
			return nil, err
		}
	}
	if p.keyword("GROUP") {
		if err := p.expectKeyword("BY"); err != nil {
			return nil, err
		}
		cols, err := p.parseColumnList()
		if err != nil {
			return nil, err
		}
		q.GroupBy = cols
	}
	if p.keyword("HAVING") {
		h, err := p.parseHaving()
		if err != nil {
			return nil, err
		}
		q.Having = h
	}
	if p.keyword("ORDER") {
		if err := p.expectKeyword("BY"); err != nil {
			return nil, err
		}
		cols, err := p.parseColumnList()
		if err != nil {
			return nil, err
		}
		q.OrderBy = cols
	}
	if p.peek().kind != lexEOF {
		return nil, fmt.Errorf("sqlx: trailing input at position %d: %q", p.peek().pos, p.peek().text)
	}
	return q, nil
}

func (p *parser) parseSelectItem() (SelectItem, error) {
	t := p.peek()
	if t.kind != lexIdent {
		return SelectItem{}, fmt.Errorf("sqlx: expected select term at %d", t.pos)
	}
	upper := strings.ToUpper(t.text)
	for _, agg := range Aggregators {
		if upper == agg {
			p.advance()
			if err := p.expectPunct("("); err != nil {
				return SelectItem{}, err
			}
			col, err := p.parseColumnRef()
			if err != nil {
				return SelectItem{}, err
			}
			if err := p.expectPunct(")"); err != nil {
				return SelectItem{}, err
			}
			return SelectItem{Agg: agg, Col: col}, nil
		}
	}
	col, err := p.parseColumnRef()
	if err != nil {
		return SelectItem{}, err
	}
	return SelectItem{Col: col}, nil
}

func (p *parser) parseColumnRef() (ColumnRef, error) {
	t := p.peek()
	if t.kind != lexIdent {
		return ColumnRef{}, fmt.Errorf("sqlx: expected column reference at %d", t.pos)
	}
	p.advance()
	parts := strings.SplitN(strings.ToLower(t.text), ".", 2)
	if len(parts) != 2 || parts[0] == "" || parts[1] == "" {
		return ColumnRef{}, fmt.Errorf("sqlx: column reference %q must be table.column", t.text)
	}
	return ColumnRef{Table: parts[0], Column: parts[1]}, nil
}

func (p *parser) parseColumnList() ([]ColumnRef, error) {
	var cols []ColumnRef
	for {
		c, err := p.parseColumnRef()
		if err != nil {
			return nil, err
		}
		cols = append(cols, c)
		if p.peek().kind == lexPunct && p.peek().text == "," {
			p.advance()
			continue
		}
		return cols, nil
	}
}

// parseWhere parses the WHERE clause, separating column-column equality
// predicates (joins) from column-literal predicates (filters). Any OR
// adjacent to a join predicate is rejected because the join graph must
// stay AND-connected.
func (p *parser) parseWhere(q *Query) error {
	type clause struct {
		isJoin bool
		join   JoinPred
		filter Predicate
	}
	var clauses []clause
	var conjs []Conj
	for {
		left, err := p.parseColumnRef()
		if err != nil {
			return err
		}
		opTok := p.peek()
		if opTok.kind != lexOp {
			return fmt.Errorf("sqlx: expected comparison operator at %d", opTok.pos)
		}
		p.advance()
		rt := p.peek()
		var cl clause
		switch rt.kind {
		case lexIdent:
			right, err := p.parseColumnRef()
			if err != nil {
				return err
			}
			if opTok.text != OpEq {
				return fmt.Errorf("sqlx: column-column predicate must use '=' at %d", opTok.pos)
			}
			cl = clause{isJoin: true, join: JoinPred{Left: left, Right: right}}
		case lexNumber:
			p.advance()
			v, err := strconv.ParseFloat(rt.text, 64)
			if err != nil {
				return fmt.Errorf("sqlx: bad number %q at %d", rt.text, rt.pos)
			}
			cl = clause{filter: Predicate{Col: left, Op: opTok.text, Val: NumDatum(v)}}
		case lexString:
			p.advance()
			cl = clause{filter: Predicate{Col: left, Op: opTok.text, Val: StrDatum(rt.text)}}
		default:
			return fmt.Errorf("sqlx: expected literal or column at %d", rt.pos)
		}
		clauses = append(clauses, cl)
		if p.keyword("AND") {
			conjs = append(conjs, ConjAnd)
			continue
		}
		if p.keyword("OR") {
			conjs = append(conjs, ConjOr)
			continue
		}
		break
	}
	for i, cl := range clauses {
		if cl.isJoin {
			if (i > 0 && conjs[i-1] == ConjOr) || (i < len(conjs) && conjs[i] == ConjOr) {
				return fmt.Errorf("sqlx: join predicates must be AND-connected")
			}
			q.Joins = append(q.Joins, cl.join)
		} else {
			if len(q.Filters) > 0 {
				// The conjunction preceding this filter applies; if the
				// previous clause was a join, the connective is AND.
				c := ConjAnd
				if i > 0 && !clauses[i-1].isJoin {
					c = conjs[i-1]
				}
				q.Conjs = append(q.Conjs, c)
			}
			q.Filters = append(q.Filters, cl.filter)
		}
	}
	return nil
}

func (p *parser) parseHaving() (*HavingPred, error) {
	t := p.peek()
	if t.kind != lexIdent {
		return nil, fmt.Errorf("sqlx: expected aggregate in HAVING at %d", t.pos)
	}
	upper := strings.ToUpper(t.text)
	found := false
	for _, agg := range Aggregators {
		if upper == agg {
			found = true
			break
		}
	}
	if !found {
		return nil, fmt.Errorf("sqlx: HAVING requires an aggregate, found %q", t.text)
	}
	p.advance()
	if err := p.expectPunct("("); err != nil {
		return nil, err
	}
	col, err := p.parseColumnRef()
	if err != nil {
		return nil, err
	}
	if err := p.expectPunct(")"); err != nil {
		return nil, err
	}
	opTok := p.peek()
	if opTok.kind != lexOp {
		return nil, fmt.Errorf("sqlx: expected operator in HAVING at %d", opTok.pos)
	}
	p.advance()
	vt := p.peek()
	var val Datum
	switch vt.kind {
	case lexNumber:
		p.advance()
		v, err := strconv.ParseFloat(vt.text, 64)
		if err != nil {
			return nil, err
		}
		val = NumDatum(v)
	case lexString:
		p.advance()
		val = StrDatum(vt.text)
	default:
		return nil, fmt.Errorf("sqlx: expected literal in HAVING at %d", vt.pos)
	}
	return &HavingPred{Agg: upper, Col: col, Op: opTok.text, Val: val}, nil
}
