package sqlx

// TokenType classifies a SQL token into the categories used by the
// perturbation constraints of Table I in the paper: reserved keywords and
// punctuation are never perturbable; table, column, value, operator,
// aggregator and conjunction tokens are perturbable depending on the
// constraint in force.
type TokenType int

// Token categories.
const (
	TokReserved TokenType = iota
	TokTable
	TokColumn
	TokOperator
	TokValue
	TokAggregator
	TokConjunction
)

// String names the token type.
func (t TokenType) String() string {
	switch t {
	case TokReserved:
		return "reserved"
	case TokTable:
		return "table"
	case TokColumn:
		return "column"
	case TokOperator:
		return "operator"
	case TokValue:
		return "value"
	case TokAggregator:
		return "aggregator"
	case TokConjunction:
		return "conjunction"
	}
	return "unknown"
}

// Token is one element of a query's canonical token sequence.
type Token struct {
	Type TokenType
	Text string
}

// Tokens produces the canonical token sequence of the query. The sequence
// is exactly what the printer emits, one token per SQL lexical element,
// with column references ("t.c") and literals as single tokens.
func (q *Query) Tokens() []Token {
	var out []Token
	res := func(s string) { out = append(out, Token{TokReserved, s}) }
	col := func(c ColumnRef) { out = append(out, Token{TokColumn, c.String()}) }

	res("SELECT")
	for i, s := range q.Select {
		if i > 0 {
			res(",")
		}
		if s.Agg != "" {
			out = append(out, Token{TokAggregator, s.Agg})
			res("(")
			col(s.Col)
			res(")")
		} else {
			col(s.Col)
		}
	}
	res("FROM")
	for i, t := range q.From {
		if i > 0 {
			res(",")
		}
		out = append(out, Token{TokTable, t.Name})
	}
	if len(q.Joins) > 0 || len(q.Filters) > 0 {
		res("WHERE")
		for i, j := range q.Joins {
			if i > 0 {
				out = append(out, Token{TokConjunction, "AND"})
			}
			col(j.Left)
			out = append(out, Token{TokOperator, "="})
			col(j.Right)
		}
		for i, p := range q.Filters {
			if len(q.Joins) > 0 || i > 0 {
				conj := ConjAnd
				if i > 0 {
					conj = q.Conjs[i-1]
				}
				out = append(out, Token{TokConjunction, string(conj)})
			}
			col(p.Col)
			out = append(out, Token{TokOperator, p.Op})
			out = append(out, Token{TokValue, p.Val.String()})
		}
	}
	if len(q.GroupBy) > 0 {
		res("GROUP")
		res("BY")
		for i, c := range q.GroupBy {
			if i > 0 {
				res(",")
			}
			col(c)
		}
	}
	if q.Having != nil {
		res("HAVING")
		out = append(out, Token{TokAggregator, q.Having.Agg})
		res("(")
		col(q.Having.Col)
		res(")")
		out = append(out, Token{TokOperator, q.Having.Op})
		out = append(out, Token{TokValue, q.Having.Val.String()})
	}
	if len(q.OrderBy) > 0 {
		res("ORDER")
		res("BY")
		for i, c := range q.OrderBy {
			if i > 0 {
				res(",")
			}
			col(c)
		}
	}
	return out
}

// EditDistance is the Levenshtein distance between the canonical token
// sequences of two queries, the distance metric k(q, q') of Definition 3.4.
// Two tokens match when both type and text are equal.
func EditDistance(a, b *Query) int {
	return TokenEditDistance(a.Tokens(), b.Tokens())
}

// TokenEditDistance computes the Levenshtein distance over token sequences.
func TokenEditDistance(a, b []Token) int {
	n, m := len(a), len(b)
	if n == 0 {
		return m
	}
	if m == 0 {
		return n
	}
	prev := make([]int, m+1)
	cur := make([]int, m+1)
	for j := 0; j <= m; j++ {
		prev[j] = j
	}
	for i := 1; i <= n; i++ {
		cur[0] = i
		for j := 1; j <= m; j++ {
			cost := 1
			if a[i-1] == b[j-1] {
				cost = 0
			}
			d := prev[j-1] + cost
			if v := prev[j] + 1; v < d {
				d = v
			}
			if v := cur[j-1] + 1; v < d {
				d = v
			}
			cur[j] = d
		}
		prev, cur = cur, prev
	}
	return prev[m]
}
