package sqlx

import (
	"math/rand"
	"strings"
	"testing"
	"testing/quick"
)

const jobLike = "SELECT title.title, name.name FROM title, cast_info, name " +
	"WHERE title.id = cast_info.movie_id AND cast_info.person_id = name.id AND title.kind_id = 1 " +
	"ORDER BY title.production_year, title.series_years"

func TestParseRoundTrip(t *testing.T) {
	cases := []string{
		"SELECT t.a FROM t",
		"SELECT t.a, t.b FROM t WHERE t.a = 5",
		"SELECT t.a FROM t WHERE t.a >= 1 AND t.b < 3.5",
		"SELECT t.a FROM t WHERE t.a = 'x' OR t.b != 2",
		"SELECT SUM(t.a), t.b FROM t GROUP BY t.b",
		"SELECT COUNT(t.a), t.b FROM t GROUP BY t.b HAVING COUNT(t.a) > 10",
		"SELECT t.a FROM t ORDER BY t.a, t.b",
		jobLike,
		"SELECT a.x, AVG(b.y) FROM a, b WHERE a.id = b.aid AND a.x > 2 GROUP BY a.x ORDER BY a.x",
	}
	for _, sql := range cases {
		q, err := Parse(sql)
		if err != nil {
			t.Fatalf("Parse(%q): %v", sql, err)
		}
		printed := q.String()
		q2, err := Parse(printed)
		if err != nil {
			t.Fatalf("re-Parse(%q): %v", printed, err)
		}
		if q2.String() != printed {
			t.Errorf("round trip mismatch:\n first: %s\nsecond: %s", printed, q2.String())
		}
	}
}

func TestParseErrors(t *testing.T) {
	bad := []string{
		"",
		"SELECT FROM t",
		"SELECT t.a",
		"SELECT t.a FROM t WHERE t.a",
		"SELECT t.a FROM t WHERE t.a ~ 5",
		"SELECT a FROM t",                                 // bare column without table
		"SELECT t.a FROM t WHERE t.a < u.b",               // column-column non-equality
		"SELECT t.a FROM t, t",                            // duplicate table
		"SELECT t.a FROM t WHERE u.b = 1",                 // table not in FROM
		"SELECT t.a FROM t WHERE t.a = 'unclosed",         // unterminated string
		"SELECT t.a FROM t HAVING t.a > 1",                // HAVING without aggregate
		"SELECT t.a FROM t WHERE t.a = 1 extra",           // trailing input
		"SELECT t.a FROM t, u WHERE t.a = u.b OR t.c = 1", // OR next to join
	}
	for _, sql := range bad {
		if _, err := Parse(sql); err == nil {
			t.Errorf("Parse(%q) succeeded, want error", sql)
		}
	}
}

func TestJoinFilterSeparation(t *testing.T) {
	q := MustParse(jobLike)
	if len(q.Joins) != 2 {
		t.Fatalf("joins = %d, want 2", len(q.Joins))
	}
	if len(q.Filters) != 1 {
		t.Fatalf("filters = %d, want 1", len(q.Filters))
	}
	if q.Filters[0].Col.String() != "title.kind_id" {
		t.Errorf("filter column = %s", q.Filters[0].Col)
	}
	if len(q.OrderBy) != 2 {
		t.Errorf("order by = %d, want 2", len(q.OrderBy))
	}
}

func TestTokensMatchString(t *testing.T) {
	q := MustParse(jobLike)
	toks := q.Tokens()
	var parts []string
	for _, tk := range toks {
		parts = append(parts, tk.Text)
	}
	joined := strings.Join(parts, " ")
	// Re-parsing the space-joined token text (commas become standalone
	// tokens) must yield the same canonical query.
	q2, err := Parse(joined)
	if err != nil {
		t.Fatalf("parse token join: %v (%s)", err, joined)
	}
	if q2.String() != q.String() {
		t.Errorf("token stream diverges from printer:\n%s\n%s", q.String(), q2.String())
	}
}

func TestEditDistanceValueChange(t *testing.T) {
	q := MustParse(jobLike)
	q2 := q.Clone()
	q2.Filters[0].Val = NumDatum(3)
	if d := EditDistance(q, q2); d != 1 {
		t.Errorf("value change distance = %d, want 1", d)
	}
}

func TestEditDistanceOrderBySwap(t *testing.T) {
	q := MustParse(jobLike)
	q2 := q.Clone()
	q2.OrderBy[0], q2.OrderBy[1] = q2.OrderBy[1], q2.OrderBy[0]
	if d := EditDistance(q, q2); d != 2 {
		t.Errorf("order-by swap distance = %d, want 2", d)
	}
}

func TestEditDistanceAddedPredicate(t *testing.T) {
	q := MustParse("SELECT t.a FROM t WHERE t.a = 1")
	q2 := q.Clone()
	q2.Filters = append(q2.Filters, Predicate{Col: ColumnRef{"t", "b"}, Op: OpGt, Val: NumDatum(7)})
	q2.Conjs = append(q2.Conjs, ConjAnd)
	// AND t.b > 7 adds 4 tokens.
	if d := EditDistance(q, q2); d != 4 {
		t.Errorf("added predicate distance = %d, want 4", d)
	}
}

func randomQuery(r *rand.Rand) *Query {
	tables := []string{"t1", "t2", "t3"}
	nt := 1 + r.Intn(3)
	q := &Query{}
	for i := 0; i < nt; i++ {
		q.From = append(q.From, TableRef{Name: tables[i]})
	}
	for i := 1; i < nt; i++ {
		q.Joins = append(q.Joins, JoinPred{
			Left:  ColumnRef{tables[i-1], "id"},
			Right: ColumnRef{tables[i], "fk"},
		})
	}
	colOf := func() ColumnRef {
		t := q.From[r.Intn(nt)].Name
		return ColumnRef{t, []string{"a", "b", "c"}[r.Intn(3)]}
	}
	np := 1 + r.Intn(3)
	for i := 0; i < np; i++ {
		q.Select = append(q.Select, SelectItem{Col: colOf()})
	}
	nf := r.Intn(3)
	for i := 0; i < nf; i++ {
		q.Filters = append(q.Filters, Predicate{
			Col: colOf(),
			Op:  Operators[r.Intn(len(Operators))],
			Val: NumDatum(float64(r.Intn(100))),
		})
		if i > 0 {
			c := ConjAnd
			if r.Intn(4) == 0 {
				c = ConjOr
			}
			q.Conjs = append(q.Conjs, c)
		}
	}
	if r.Intn(2) == 0 {
		q.OrderBy = append(q.OrderBy, colOf())
	}
	return q
}

func TestQuickRoundTrip(t *testing.T) {
	r := rand.New(rand.NewSource(7))
	f := func(seed int64) bool {
		q := randomQuery(rand.New(rand.NewSource(seed)))
		if err := q.Validate(); err != nil {
			return false
		}
		q2, err := Parse(q.String())
		if err != nil {
			t.Logf("parse failed for %s: %v", q.String(), err)
			return false
		}
		return q2.String() == q.String()
	}
	cfg := &quick.Config{MaxCount: 200, Rand: r}
	if err := quick.Check(f, cfg); err != nil {
		t.Error(err)
	}
}

func TestQuickEditDistanceMetric(t *testing.T) {
	r := rand.New(rand.NewSource(11))
	f := func(s1, s2 int64) bool {
		a := randomQuery(rand.New(rand.NewSource(s1)))
		b := randomQuery(rand.New(rand.NewSource(s2)))
		dab := EditDistance(a, b)
		dba := EditDistance(b, a)
		if dab != dba {
			return false // symmetry
		}
		if EditDistance(a, a) != 0 {
			return false // identity
		}
		if s1 != s2 && a.String() != b.String() && dab == 0 {
			return false // distinguishes distinct queries
		}
		return dab >= 0
	}
	cfg := &quick.Config{MaxCount: 100, Rand: r}
	if err := quick.Check(f, cfg); err != nil {
		t.Error(err)
	}
}

func TestQuickEditDistanceTriangle(t *testing.T) {
	r := rand.New(rand.NewSource(13))
	f := func(s1, s2, s3 int64) bool {
		a := randomQuery(rand.New(rand.NewSource(s1)))
		b := randomQuery(rand.New(rand.NewSource(s2)))
		c := randomQuery(rand.New(rand.NewSource(s3)))
		return EditDistance(a, c) <= EditDistance(a, b)+EditDistance(b, c)
	}
	cfg := &quick.Config{MaxCount: 60, Rand: r}
	if err := quick.Check(f, cfg); err != nil {
		t.Error(err)
	}
}

func TestColumnsDeduplicated(t *testing.T) {
	q := MustParse("SELECT t.a, t.a FROM t WHERE t.a > 1 ORDER BY t.a")
	if n := len(q.Columns()); n != 1 {
		t.Errorf("Columns() = %d entries, want 1", n)
	}
}

func TestHasOrConj(t *testing.T) {
	and := MustParse("SELECT t.a FROM t WHERE t.a = 1 AND t.b = 2")
	or := MustParse("SELECT t.a FROM t WHERE t.a = 1 OR t.b = 2")
	if and.HasOrConj() {
		t.Error("AND query reports OR conjunction")
	}
	if !or.HasOrConj() {
		t.Error("OR query does not report OR conjunction")
	}
}

func TestDatumString(t *testing.T) {
	if s := NumDatum(3.5).String(); s != "3.5" {
		t.Errorf("NumDatum(3.5) = %q", s)
	}
	if s := StrDatum("o'neil").String(); s != "'o''neil'" {
		t.Errorf("StrDatum escape = %q", s)
	}
	q := MustParse("SELECT t.a FROM t WHERE t.a = 'o''neil'")
	if q.Filters[0].Val.Str != "o'neil" {
		t.Errorf("escaped string parse = %q", q.Filters[0].Val.Str)
	}
}

func TestCloneIsDeep(t *testing.T) {
	q := MustParse(jobLike)
	c := q.Clone()
	c.Filters[0].Val = NumDatum(99)
	c.OrderBy[0] = ColumnRef{"name", "name"}
	if q.Filters[0].Val.Num == 99 {
		t.Error("clone shares filter storage")
	}
	if q.OrderBy[0].Table == "name" {
		t.Error("clone shares order-by storage")
	}
}
