package workload

import (
	"context"
	"errors"
	"math/rand"
	"testing"
	"testing/quick"

	"github.com/trap-repro/trap/internal/bench"
	"github.com/trap-repro/trap/internal/engine"
	"github.com/trap-repro/trap/internal/schema"
	"github.com/trap-repro/trap/internal/sqlx"
)

func tpchGen(t *testing.T, seed int64) (*Generator, *engine.Engine) {
	t.Helper()
	s := bench.TPCH(100)
	return NewGenerator(s, seed, 20), engine.New(s)
}

func TestGeneratorProducesValidQueries(t *testing.T) {
	g, e := tpchGen(t, 1)
	for i := 0; i < 200; i++ {
		q := g.Query()
		if err := q.Validate(); err != nil {
			t.Fatalf("invalid query: %v\n%s", err, q)
		}
		if _, err := e.QueryCost(q, nil, engine.ModeEstimated); err != nil {
			t.Fatalf("unplannable query: %v\n%s", err, q)
		}
		// Round-trip through the parser.
		q2, err := sqlx.Parse(q.String())
		if err != nil {
			t.Fatalf("unparsable query: %v\n%s", err, q)
		}
		if q2.String() != q.String() {
			t.Fatalf("round trip mismatch:\n%s\n%s", q, q2)
		}
	}
}

func TestGeneratorDeterministic(t *testing.T) {
	g1, _ := tpchGen(t, 7)
	g2, _ := tpchGen(t, 7)
	for i := 0; i < 20; i++ {
		if g1.Query().String() != g2.Query().String() {
			t.Fatal("same seed produced different queries")
		}
	}
	g3, _ := tpchGen(t, 8)
	same := true
	g1b, _ := tpchGen(t, 7)
	for i := 0; i < 20; i++ {
		if g1b.Query().String() != g3.Query().String() {
			same = false
		}
	}
	if same {
		t.Error("different seeds produced identical streams")
	}
}

func TestTemplatesAreReused(t *testing.T) {
	g, _ := tpchGen(t, 3)
	if g.NumTemplates() != 20 {
		t.Fatalf("NumTemplates = %d", g.NumTemplates())
	}
	// Many queries, few templates: queries must repeat structure. Strip
	// values by comparing the filter-column signature.
	sigs := map[string]bool{}
	for i := 0; i < 300; i++ {
		q := g.Query()
		sig := ""
		for _, p := range q.Filters {
			sig += p.Col.String() + p.Op + ";"
		}
		for _, tb := range q.Tables() {
			sig += tb + ","
		}
		sigs[sig] = true
	}
	if len(sigs) > g.NumTemplates() {
		t.Errorf("more structural signatures (%d) than templates (%d)", len(sigs), g.NumTemplates())
	}
}

func TestGeneratedQueriesAreSargable(t *testing.T) {
	g, _ := tpchGen(t, 5)
	for i := 0; i < 100; i++ {
		q := g.Query()
		if q.HasOrConj() {
			t.Fatalf("generator emitted OR: %s", q)
		}
		for _, p := range q.Filters {
			if p.Op == sqlx.OpNe {
				t.Fatalf("generator emitted !=: %s", q)
			}
		}
	}
}

func TestWorkloadSizes(t *testing.T) {
	g, _ := tpchGen(t, 9)
	w := g.Workload(17)
	if w.Size() != 17 {
		t.Errorf("Size = %d", w.Size())
	}
	for i := 0; i < 50; i++ {
		ws := g.WorkloadSized(50)
		if ws.Size() < 1 || ws.Size() > 50 {
			t.Errorf("WorkloadSized out of range: %d", ws.Size())
		}
	}
	if len(w.Tables()) == 0 || len(w.Columns()) == 0 {
		t.Error("workload reports no tables/columns")
	}
	c := w.Clone()
	c.Items[0].Query.Filters = nil
	if len(w.Items[0].Query.Filters) == 0 && len(c.Items[0].Query.Filters) == 0 {
		t.Skip("query had no filters")
	}
	if len(w.Items[0].Query.Filters) == 0 {
		t.Error("Clone shares query storage")
	}
}

func TestCostAndUtility(t *testing.T) {
	g, e := tpchGen(t, 11)
	w := g.Workload(10)
	c0, err := Cost(e, w, nil, engine.ModeEstimated)
	if err != nil {
		t.Fatal(err)
	}
	if c0 <= 0 {
		t.Fatal("non-positive workload cost")
	}
	// Index every filter column: utility against the empty baseline must
	// be non-negative (indexes never hurt in this engine).
	var cfg schema.Config
	for _, col := range w.Columns() {
		cfg = cfg.Add(schema.Index{Table: col.Table, Columns: []string{col.Column}})
	}
	u, err := Utility(e, w, cfg, nil)
	if err != nil {
		t.Fatal(err)
	}
	if u < 0 {
		t.Errorf("utility of superset config negative: %v", u)
	}
	uBase, _ := Utility(e, w, nil, nil)
	if uBase != 0 {
		t.Errorf("utility of baseline against itself = %v, want 0", uBase)
	}
}

// TestRuntimeCostCtxCancellation covers the runtime-costing bugfix: a
// canceled context aborts RuntimeCostCtx and UtilityCtx with the
// context's error instead of draining the full costing loop, and the
// ctx-free wrappers keep returning the same totals as before.
func TestRuntimeCostCtxCancellation(t *testing.T) {
	g, e := tpchGen(t, 13)
	w := g.Workload(10)

	canceled, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := RuntimeCostCtx(canceled, e, w, nil); !errors.Is(err, context.Canceled) {
		t.Fatalf("RuntimeCostCtx err = %v, want context.Canceled", err)
	}
	if _, err := UtilityCtx(canceled, e, w, nil, nil); !errors.Is(err, context.Canceled) {
		t.Fatalf("UtilityCtx err = %v, want context.Canceled", err)
	}

	want, err := RuntimeCost(e, w, nil)
	if err != nil {
		t.Fatal(err)
	}
	got, err := RuntimeCostCtx(context.Background(), e, w, nil)
	if err != nil {
		t.Fatal(err)
	}
	if got != want {
		t.Fatalf("RuntimeCostCtx = %v, RuntimeCost = %v", got, want)
	}
}

func TestIUDR(t *testing.T) {
	if IUDR(0.5, 0.5) != 0 {
		t.Error("no drop should give IUDR 0")
	}
	if IUDR(0.5, 0.25) != 0.5 {
		t.Error("halved utility should give IUDR 0.5")
	}
	if IUDR(0.5, 0.75) >= 0 {
		t.Error("improved utility should give negative IUDR")
	}
	if IUDR(0, 0.5) != 0 {
		t.Error("zero original utility must not divide by zero")
	}
}

func TestChangesDetection(t *testing.T) {
	orig := sqlx.MustParse("SELECT lineitem.l_quantity FROM lineitem WHERE lineitem.l_quantity = 10 AND lineitem.l_tax = 3 ORDER BY lineitem.l_quantity")

	toNe := orig.Clone()
	toNe.Filters[0].Op = sqlx.OpNe
	got := Changes(nil, orig, toNe)
	if !hasChange(got, ChangeUnequal) {
		t.Errorf("!= not detected: %v", got)
	}

	toRange := orig.Clone()
	toRange.Filters[0].Op = sqlx.OpGe
	got = Changes(nil, orig, toRange)
	if !hasChange(got, ChangeEqToRange) {
		t.Errorf("eq-to-range not detected: %v", got)
	}

	toOr := orig.Clone()
	toOr.Conjs[0] = sqlx.ConjOr
	got = Changes(nil, orig, toOr)
	if !hasChange(got, ChangeOrConj) {
		t.Errorf("OR not detected: %v", got)
	}

	reorder := orig.Clone()
	reorder.OrderBy[0] = sqlx.ColumnRef{Table: "lineitem", Column: "l_tax"}
	got = Changes(nil, orig, reorder)
	if !hasChange(got, ChangeOrderGroup) {
		t.Errorf("order change not detected: %v", got)
	}

	uncover := orig.Clone()
	uncover.Select = append(uncover.Select, sqlx.SelectItem{Col: sqlx.ColumnRef{Table: "lineitem", Column: "l_comment"}})
	got = Changes(nil, orig, uncover)
	if !hasChange(got, ChangeUncoveredSelect) {
		t.Errorf("uncovered select not detected: %v", got)
	}

	if n := len(Changes(nil, orig, orig.Clone())); n != 0 {
		t.Errorf("identical queries report %d changes", n)
	}
}

func TestResultSetChangeNeedsEngine(t *testing.T) {
	s := bench.TPCH(100)
	e := engine.New(s)
	orig := sqlx.MustParse("SELECT orders.o_totalprice FROM orders WHERE orders.o_orderkey = 5")
	blown := sqlx.MustParse("SELECT orders.o_totalprice FROM orders WHERE orders.o_totalprice >= 1")
	got := Changes(e, orig, blown)
	if !hasChange(got, ChangeResultSet) {
		t.Errorf("result-set blowup not detected: %v", got)
	}
	if hasChange(Changes(nil, orig, blown), ChangeResultSet) {
		t.Error("nil engine should skip result-set detection")
	}
}

func TestChangeCounts(t *testing.T) {
	orig := New(
		sqlx.MustParse("SELECT t.a FROM t WHERE t.a = 1 AND t.b = 2"),
		sqlx.MustParse("SELECT t.a FROM t WHERE t.a = 1"),
	)
	pert := New(
		sqlx.MustParse("SELECT t.a FROM t WHERE t.a = 1 OR t.b = 2"),
		sqlx.MustParse("SELECT t.a FROM t WHERE t.a != 1"),
	)
	counts := ChangeCounts(nil, orig, pert)
	if counts[ChangeOrConj] != 1 || counts[ChangeUnequal] != 1 {
		t.Errorf("counts = %v", counts)
	}
}

func hasChange(cs []ChangeType, c ChangeType) bool {
	for _, x := range cs {
		if x == c {
			return true
		}
	}
	return false
}

func TestQuickGeneratorAlwaysPlannable(t *testing.T) {
	s := bench.TRANSACTION(200)
	e := engine.New(s)
	f := func(seed int64) bool {
		g := NewGenerator(s, seed, 5)
		for i := 0; i < 5; i++ {
			q := g.Query()
			if q.Validate() != nil {
				return false
			}
			if _, err := e.QueryCost(q, nil, engine.ModeEstimated); err != nil {
				t.Logf("unplannable: %s", q)
				return false
			}
		}
		return true
	}
	cfg := &quick.Config{MaxCount: 25, Rand: rand.New(rand.NewSource(99))}
	if err := quick.Check(f, cfg); err != nil {
		t.Error(err)
	}
}
