package workload

import (
	"math/rand"

	"github.com/trap-repro/trap/internal/schema"
	"github.com/trap-repro/trap/internal/sqlx"
)

// Template is a parameterized SPAJ query shape: structure is fixed, filter
// values are bound per instantiation. This mirrors the paper's observation
// that production workloads are variants of a small template set.
type Template struct {
	ID      int
	Tables  []string
	Joins   []sqlx.JoinPred
	Select  []sqlx.SelectItem
	Filters []filterSlot
	GroupBy []sqlx.ColumnRef
	OrderBy []sqlx.ColumnRef
}

// filterSlot is one filter predicate with a value placeholder.
type filterSlot struct {
	Col sqlx.ColumnRef
	Op  string
}

// Generator synthesizes queries from a fixed set of random templates over
// a schema's join graph. It is deterministic given its seed.
type Generator struct {
	s         *schema.Schema
	rng       *rand.Rand
	templates []*Template
}

// NewGenerator builds a generator with numTemplates random templates.
func NewGenerator(s *schema.Schema, seed int64, numTemplates int) *Generator {
	g := &Generator{s: s, rng: rand.New(rand.NewSource(seed))}
	if numTemplates < 1 {
		numTemplates = 1
	}
	for i := 0; i < numTemplates; i++ {
		g.templates = append(g.templates, g.makeTemplate(i))
	}
	return g
}

// NumTemplates returns the template count.
func (g *Generator) NumTemplates() int { return len(g.templates) }

// Templates returns the generator's templates.
func (g *Generator) Templates() []*Template { return g.templates }

// Schema returns the generator's schema.
func (g *Generator) Schema() *schema.Schema { return g.s }

// makeTemplate builds one random template: a connected random walk over
// the join graph, a payload, sargable AND-connected filters, and optional
// GROUP BY / ORDER BY clauses.
func (g *Generator) makeTemplate(id int) *Template {
	r := g.rng
	t := &Template{ID: id}

	// Random connected table set via a walk on the join graph.
	start := g.s.Tables[r.Intn(len(g.s.Tables))]
	for len(g.s.JoinsOf(start.Name)) == 0 && len(g.s.Joins) > 0 {
		start = g.s.Tables[r.Intn(len(g.s.Tables))]
	}
	inSet := map[string]bool{start.Name: true}
	t.Tables = []string{start.Name}
	want := 1 + r.Intn(4)
	for len(t.Tables) < want {
		// Collect join edges expanding the current set.
		var frontier []schema.JoinEdge
		for _, j := range g.s.Joins {
			if inSet[j.LeftTable] != inSet[j.RightTable] {
				frontier = append(frontier, j)
			}
		}
		if len(frontier) == 0 {
			break
		}
		j := frontier[r.Intn(len(frontier))]
		next := j.LeftTable
		if inSet[next] {
			next = j.RightTable
		}
		inSet[next] = true
		t.Tables = append(t.Tables, next)
		t.Joins = append(t.Joins, sqlx.JoinPred{
			Left:  sqlx.ColumnRef{Table: j.LeftTable, Column: j.LeftColumn},
			Right: sqlx.ColumnRef{Table: j.RightTable, Column: j.RightColumn},
		})
	}

	pick := func() sqlx.ColumnRef {
		tn := t.Tables[r.Intn(len(t.Tables))]
		tb := g.s.Table(tn)
		c := tb.Columns[r.Intn(len(tb.Columns))]
		return sqlx.ColumnRef{Table: tn, Column: c.Name}
	}
	// Prefer columns usable in predicates: moderate NDV, not comments.
	pickFilter := func() sqlx.ColumnRef {
		for tries := 0; tries < 12; tries++ {
			c := pick()
			col := g.s.Column(c)
			if col.Width >= 40 { // skip comment-like columns
				continue
			}
			if col.Dist.NDV >= 2 {
				return c
			}
		}
		return pick()
	}

	// Payload: 1-4 items, sometimes one aggregate.
	np := 1 + r.Intn(4)
	seen := map[sqlx.ColumnRef]bool{}
	for i := 0; i < np; i++ {
		c := pick()
		if seen[c] {
			continue
		}
		seen[c] = true
		t.Select = append(t.Select, sqlx.SelectItem{Col: c})
	}
	hasAgg := r.Float64() < 0.3
	if hasAgg {
		agg := sqlx.Aggregators[r.Intn(len(sqlx.Aggregators))]
		c := pickFilter()
		t.Select = append(t.Select, sqlx.SelectItem{Agg: agg, Col: c})
		// Aggregates require grouping by the plain payload columns.
		for _, s := range t.Select {
			if s.Agg == "" {
				t.GroupBy = append(t.GroupBy, s.Col)
			}
		}
	}

	// Filters: 1-3 sargable AND-connected predicates on distinct columns.
	nf := 1 + r.Intn(3)
	usedF := map[sqlx.ColumnRef]bool{}
	for i := 0; i < nf; i++ {
		c := pickFilter()
		if usedF[c] {
			continue
		}
		usedF[c] = true
		op := sqlx.OpEq
		if r.Float64() < 0.4 {
			op = []string{sqlx.OpLt, sqlx.OpLe, sqlx.OpGt, sqlx.OpGe}[r.Intn(4)]
		}
		t.Filters = append(t.Filters, filterSlot{Col: c, Op: op})
	}

	// ORDER BY: 0-2 columns (only without aggregates, keeping the query
	// well-formed in the SPAJ subset).
	if !hasAgg && r.Float64() < 0.5 {
		no := 1 + r.Intn(2)
		usedO := map[sqlx.ColumnRef]bool{}
		for i := 0; i < no; i++ {
			c := pickFilter()
			if usedO[c] {
				continue
			}
			usedO[c] = true
			t.OrderBy = append(t.OrderBy, c)
		}
	}
	return t
}

// Instantiate binds the template's value placeholders using r, producing a
// complete query. Equality values are drawn by quantile so frequent values
// appear frequently; range values target a selectivity in [0.02, 0.5].
func (t *Template) Instantiate(s *schema.Schema, r *rand.Rand) *sqlx.Query {
	q := &sqlx.Query{
		Select:  append([]sqlx.SelectItem(nil), t.Select...),
		Joins:   append([]sqlx.JoinPred(nil), t.Joins...),
		GroupBy: append([]sqlx.ColumnRef(nil), t.GroupBy...),
		OrderBy: append([]sqlx.ColumnRef(nil), t.OrderBy...),
	}
	for _, tn := range t.Tables {
		q.From = append(q.From, sqlx.TableRef{Name: tn})
	}
	for i, f := range t.Filters {
		col := s.Column(f.Col)
		var val sqlx.Datum
		switch f.Op {
		case sqlx.OpEq, sqlx.OpNe:
			v := col.Dist.Quantile(r.Float64())
			val = col.DatumOf(col.Dist.IndexOf(v))
		case sqlx.OpLt, sqlx.OpLe:
			sel := 0.02 + r.Float64()*0.48
			v := col.Dist.Quantile(sel)
			val = col.DatumOf(col.Dist.IndexOf(v))
		default: // >, >=
			sel := 0.02 + r.Float64()*0.48
			v := col.Dist.Quantile(1 - sel)
			val = col.DatumOf(col.Dist.IndexOf(v))
		}
		q.Filters = append(q.Filters, sqlx.Predicate{Col: f.Col, Op: f.Op, Val: val})
		if i > 0 {
			q.Conjs = append(q.Conjs, sqlx.ConjAnd)
		}
	}
	return q
}

// Query generates one query from a random template.
func (g *Generator) Query() *sqlx.Query {
	t := g.templates[g.rng.Intn(len(g.templates))]
	return t.Instantiate(g.s, g.rng)
}

// Workload generates a workload of the given size (unit weights).
func (g *Generator) Workload(size int) *Workload {
	if size < 1 {
		size = 1
	}
	w := &Workload{}
	for i := 0; i < size; i++ {
		w.Items = append(w.Items, Item{Query: g.Query(), Weight: 1})
	}
	return w
}

// WorkloadSized generates a workload with a random size in [1, maxSize],
// matching the paper's sampling of workload sizes in [1, 50].
func (g *Generator) WorkloadSized(maxSize int) *Workload {
	if maxSize < 1 {
		maxSize = 1
	}
	return g.Workload(1 + g.rng.Intn(maxSize))
}
