package workload

import (
	"github.com/trap-repro/trap/internal/engine"
	"github.com/trap-repro/trap/internal/sqlx"
)

// ChangeType classifies a query perturbation into the six categories of
// Section VI-C that are relevant to index performance — the changes that
// tend to make a query non-sargable.
type ChangeType int

// The six query-change categories of Section VI-C.
const (
	// ChangeResultSet: the result-set size was dramatically enlarged.
	ChangeResultSet ChangeType = iota
	// ChangeUnequal: an operator was changed to "!=".
	ChangeUnequal
	// ChangeEqToRange: an "=" operator became a range operator.
	ChangeEqToRange
	// ChangeUncoveredSelect: SELECT columns are no longer covered by the
	// WHERE clause after perturbation.
	ChangeUncoveredSelect
	// ChangeOrConj: a conjunction was replaced by OR.
	ChangeOrConj
	// ChangeOrderGroup: ORDER BY / GROUP BY columns changed.
	ChangeOrderGroup
	// NumChangeTypes is the number of categories.
	NumChangeTypes
)

// String names the change type.
func (c ChangeType) String() string {
	switch c {
	case ChangeResultSet:
		return "resultset-size"
	case ChangeUnequal:
		return "unequal-operator"
	case ChangeEqToRange:
		return "eq-to-range"
	case ChangeUncoveredSelect:
		return "uncovered-select"
	case ChangeOrConj:
		return "or-conjunction"
	case ChangeOrderGroup:
		return "order-group-change"
	}
	return "unknown"
}

// resultSetBlowup is the output-cardinality growth factor beyond which a
// perturbation counts as a ChangeResultSet.
const resultSetBlowup = 10

// Changes classifies the differences between an original query and its
// perturbed variant into the Section VI-C categories. The engine is used
// only for the result-set size comparison (pass nil to skip it).
func Changes(e *engine.Engine, orig, pert *sqlx.Query) []ChangeType {
	var out []ChangeType
	add := func(c ChangeType) { out = append(out, c) }

	if e != nil {
		po, erro := e.Plan(orig, nil, engine.ModeEstimated)
		pp, errp := e.Plan(pert, nil, engine.ModeEstimated)
		if erro == nil && errp == nil && pp.Rows > po.Rows*resultSetBlowup {
			add(ChangeResultSet)
		}
	}

	origOps := opsByColumn(orig)
	for _, p := range pert.Filters {
		prev := origOps[p.Col]
		if p.Op == sqlx.OpNe && !prev[sqlx.OpNe] {
			add(ChangeUnequal)
			break
		}
	}
	for _, p := range pert.Filters {
		prev := origOps[p.Col]
		if isRange(p.Op) && prev[sqlx.OpEq] && !prev[p.Op] {
			add(ChangeEqToRange)
			break
		}
	}
	if countUncovered(pert) > countUncovered(orig) {
		add(ChangeUncoveredSelect)
	}
	if pert.HasOrConj() && !orig.HasOrConj() {
		add(ChangeOrConj)
	}
	if !sameCols(orig.OrderBy, pert.OrderBy) || !sameCols(orig.GroupBy, pert.GroupBy) {
		add(ChangeOrderGroup)
	}
	return out
}

func isRange(op string) bool {
	switch op {
	case sqlx.OpLt, sqlx.OpLe, sqlx.OpGt, sqlx.OpGe:
		return true
	}
	return false
}

func opsByColumn(q *sqlx.Query) map[sqlx.ColumnRef]map[string]bool {
	m := map[sqlx.ColumnRef]map[string]bool{}
	for _, p := range q.Filters {
		if m[p.Col] == nil {
			m[p.Col] = map[string]bool{}
		}
		m[p.Col][p.Op] = true
	}
	return m
}

// countUncovered counts SELECT columns not appearing in the query's WHERE
// clause (filters or joins).
func countUncovered(q *sqlx.Query) int {
	covered := map[sqlx.ColumnRef]bool{}
	for _, p := range q.Filters {
		covered[p.Col] = true
	}
	for _, j := range q.Joins {
		covered[j.Left] = true
		covered[j.Right] = true
	}
	n := 0
	for _, s := range q.Select {
		if !covered[s.Col] {
			n++
		}
	}
	return n
}

func sameCols(a, b []sqlx.ColumnRef) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// ChangeCounts tallies, per change type, how many perturbed queries of a
// workload pair exhibit each change.
func ChangeCounts(e *engine.Engine, orig, pert *Workload) [NumChangeTypes]int {
	var counts [NumChangeTypes]int
	n := len(orig.Items)
	if len(pert.Items) < n {
		n = len(pert.Items)
	}
	for i := 0; i < n; i++ {
		for _, c := range Changes(e, orig.Items[i].Query, pert.Items[i].Query) {
			counts[c]++
		}
	}
	return counts
}
