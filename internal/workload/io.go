package workload

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"

	"github.com/trap-repro/trap/internal/sqlx"
)

// WriteSQL serializes the workload as SQL text, one statement per line
// terminated by ";". Non-unit weights are recorded in a trailing
// "-- weight=N" comment.
func (w *Workload) WriteSQL(out io.Writer) error {
	bw := bufio.NewWriter(out)
	for _, it := range w.Items {
		if _, err := bw.WriteString(it.Query.String()); err != nil {
			return err
		}
		if _, err := bw.WriteString(";"); err != nil {
			return err
		}
		if it.Weight != 1 {
			if _, err := fmt.Fprintf(bw, " -- weight=%g", it.Weight); err != nil {
				return err
			}
		}
		if _, err := bw.WriteString("\n"); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// ReadSQL parses a workload written by WriteSQL (or any file of
// ";"-terminated SPAJ statements, one per line; "--" comments and blank
// lines are skipped, "-- weight=N" sets the weight).
func ReadSQL(in io.Reader) (*Workload, error) {
	w := &Workload{}
	sc := bufio.NewScanner(in)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		weight := 1.0
		if i := strings.Index(line, "--"); i >= 0 {
			comment := strings.TrimSpace(line[i+2:])
			if rest, ok := strings.CutPrefix(comment, "weight="); ok {
				v, err := strconv.ParseFloat(strings.Fields(rest)[0], 64)
				if err != nil {
					return nil, fmt.Errorf("workload: line %d: bad weight: %v", lineNo, err)
				}
				weight = v
			}
			line = strings.TrimSpace(line[:i])
		}
		if line == "" {
			continue
		}
		line = strings.TrimSuffix(line, ";")
		q, err := sqlx.Parse(line)
		if err != nil {
			return nil, fmt.Errorf("workload: line %d: %w", lineNo, err)
		}
		w.Items = append(w.Items, Item{Query: q, Weight: weight})
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return w, nil
}
