// Package workload defines workloads (weighted query sets), the template
// based SPAJ query generator used to build training and evaluation
// workloads (following the paper's Section V-A recipe of synthesizing
// Select-Project-Aggregate-Join queries over a meaningful join graph), the
// index-utility and IUDR metrics of Definitions 3.2/3.3, and the query
// change taxonomy of Section VI-C.
package workload

import (
	"context"
	"strings"
	"sync"

	"github.com/trap-repro/trap/internal/engine"
	"github.com/trap-repro/trap/internal/obs"
	"github.com/trap-repro/trap/internal/schema"
	"github.com/trap-repro/trap/internal/sqlx"
)

// What-if pressure metrics: how often the attack and training loops ask
// the engine to price a whole workload. Together with the engine's
// plan-cache counters these locate where a slow assessment burns its
// time — in costing volume or in cache misses.
var (
	mCostEvals    = obs.Default().Counter("trap_workload_cost_evals_total")
	mRuntimeEvals = obs.Default().Counter("trap_workload_runtime_evals_total")
	mUtilityEvals = obs.Default().Counter("trap_workload_utility_evals_total")
)

// Item is one workload entry: a query and its weight (frequency). The
// assessments use unit weights, matching the paper's fair-comparison setup.
type Item struct {
	Query  *sqlx.Query
	Weight float64
}

// Workload is a weighted set of queries, W = {(q, e)}.
type Workload struct {
	Items []Item
}

// New builds a unit-weight workload from queries.
func New(queries ...*sqlx.Query) *Workload {
	w := &Workload{}
	for _, q := range queries {
		w.Items = append(w.Items, Item{Query: q, Weight: 1})
	}
	return w
}

// Size returns the number of queries.
func (w *Workload) Size() int { return len(w.Items) }

// Queries returns the queries in order.
func (w *Workload) Queries() []*sqlx.Query {
	out := make([]*sqlx.Query, len(w.Items))
	for i, it := range w.Items {
		out[i] = it.Query
	}
	return out
}

// Clone deep-copies the workload.
func (w *Workload) Clone() *Workload {
	c := &Workload{Items: make([]Item, len(w.Items))}
	for i, it := range w.Items {
		c.Items[i] = Item{Query: it.Query.Clone(), Weight: it.Weight}
	}
	return c
}

// Key returns a canonical identity string for caching.
func (w *Workload) Key() string {
	var b strings.Builder
	for _, it := range w.Items {
		b.WriteString(it.Query.String())
		b.WriteByte('\n')
	}
	return b.String()
}

// Tables returns the distinct tables referenced anywhere in the workload.
func (w *Workload) Tables() []string {
	seen := map[string]bool{}
	var out []string
	for _, it := range w.Items {
		for _, t := range it.Query.Tables() {
			if !seen[t] {
				seen[t] = true
				out = append(out, t)
			}
		}
	}
	return out
}

// Columns returns the distinct columns referenced anywhere in the workload.
func (w *Workload) Columns() []sqlx.ColumnRef {
	seen := map[sqlx.ColumnRef]bool{}
	var out []sqlx.ColumnRef
	for _, it := range w.Items {
		for _, c := range it.Query.Columns() {
			if !seen[c] {
				seen[c] = true
				out = append(out, c)
			}
		}
	}
	return out
}

// Cost evaluates the weighted workload cost c(W, d, I) under the given
// index configuration and statistics mode.
func Cost(e *engine.Engine, w *Workload, cfg schema.Config, mode engine.Mode) (float64, error) {
	return CostCtx(context.Background(), e, w, cfg, mode)
}

// costItemsPool recycles the per-call CostItem slices of CostCtx and
// RuntimeCostCtx: the advisor's greedy what-if loop prices the same
// workload hundreds of times, and a fresh conversion slice per call
// dominated this package's allocation profile. The engine does not
// retain the slice past the batch call, so pooling is safe.
var costItemsPool = sync.Pool{New: func() any { return new([]engine.CostItem) }}

func costItems(w *Workload) *[]engine.CostItem {
	p := costItemsPool.Get().(*[]engine.CostItem)
	items := *p
	if cap(items) < len(w.Items) {
		items = make([]engine.CostItem, len(w.Items))
	}
	items = items[:len(w.Items)]
	for i, it := range w.Items {
		items[i] = engine.CostItem{Q: it.Query, Weight: it.Weight}
	}
	*p = items
	return p
}

// CostCtx is Cost with cooperative cancellation: costing stops at the
// next query boundary once ctx is done.
func CostCtx(ctx context.Context, e *engine.Engine, w *Workload, cfg schema.Config, mode engine.Mode) (float64, error) {
	mCostEvals.Inc()
	p := costItems(w)
	c, err := e.CostBatch(ctx, *p, cfg, mode)
	costItemsPool.Put(p)
	return c, err
}

// RuntimeCost evaluates the workload with the actual-runtime stand-in.
func RuntimeCost(e *engine.Engine, w *Workload, cfg schema.Config) (float64, error) {
	return RuntimeCostCtx(context.Background(), e, w, cfg)
}

// RuntimeCostCtx is RuntimeCost with cooperative cancellation: costing
// stops at the next query boundary once ctx is done, so a canceled
// assessment does not drain the whole runtime-costing loop.
func RuntimeCostCtx(ctx context.Context, e *engine.Engine, w *Workload, cfg schema.Config) (float64, error) {
	mRuntimeEvals.Inc()
	p := costItems(w)
	c, err := e.RuntimeBatch(ctx, *p, cfg)
	costItemsPool.Put(p)
	return c, err
}

// Utility computes the index utility of Definition 3.2:
// u = 1 - c(W, d, I) / c(W, d, Ib), evaluated with the runtime stand-in.
func Utility(e *engine.Engine, w *Workload, cfg, base schema.Config) (float64, error) {
	return UtilityCtx(context.Background(), e, w, cfg, base)
}

// UtilityCtx is Utility with cooperative cancellation.
func UtilityCtx(ctx context.Context, e *engine.Engine, w *Workload, cfg, base schema.Config) (float64, error) {
	mUtilityEvals.Inc()
	cb, err := RuntimeCostCtx(ctx, e, w, base)
	if err != nil {
		return 0, err
	}
	ci, err := RuntimeCostCtx(ctx, e, w, cfg)
	if err != nil {
		return 0, err
	}
	if cb <= 0 {
		return 0, nil
	}
	return 1 - ci/cb, nil
}

// IUDR is the Index Utility Decrease Ratio of Definition 3.3:
// IUDR = 1 - u(W')/u(W). Positive values mean the perturbed workload
// degraded the advisor; callers must ensure uOrig > θ > 0.
func IUDR(uOrig, uPert float64) float64 {
	if uOrig == 0 {
		return 0
	}
	return 1 - uPert/uOrig
}
