package workload

import (
	"bytes"
	"strings"
	"testing"
)

func TestWriteReadSQLRoundTrip(t *testing.T) {
	g, _ := tpchGen(t, 31)
	w := g.Workload(6)
	w.Items[2].Weight = 5
	var buf bytes.Buffer
	if err := w.WriteSQL(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := ReadSQL(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if back.Size() != w.Size() {
		t.Fatalf("size %d != %d", back.Size(), w.Size())
	}
	for i := range w.Items {
		if back.Items[i].Query.String() != w.Items[i].Query.String() {
			t.Errorf("query %d differs", i)
		}
		if back.Items[i].Weight != w.Items[i].Weight {
			t.Errorf("weight %d differs: %v vs %v", i, back.Items[i].Weight, w.Items[i].Weight)
		}
	}
}

func TestReadSQLSkipsCommentsAndBlanks(t *testing.T) {
	in := `
-- header comment
SELECT t.a FROM t WHERE t.a = 1;

SELECT t.b FROM t; -- weight=2.5
`
	w, err := ReadSQL(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if w.Size() != 2 {
		t.Fatalf("size = %d", w.Size())
	}
	if w.Items[1].Weight != 2.5 {
		t.Errorf("weight = %v", w.Items[1].Weight)
	}
}

func TestReadSQLErrors(t *testing.T) {
	if _, err := ReadSQL(strings.NewReader("SELECT broken FROM;")); err == nil {
		t.Error("bad SQL accepted")
	}
	if _, err := ReadSQL(strings.NewReader("SELECT t.a FROM t; -- weight=abc")); err == nil {
		t.Error("bad weight accepted")
	}
}
