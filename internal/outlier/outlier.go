// Package outlier implements the out-of-distribution analysis tools of
// Figure 17: anomaly detectors (isolation forest, local outlier factor,
// and a one-class centroid detector standing in for OCSVM) plus an exact
// t-SNE embedding for visualizing query vectors before and after
// perturbation.
package outlier

import (
	"math"
	"math/rand"
	"sort"
)

// Detector flags outliers within a dataset.
type Detector interface {
	// Name identifies the detector.
	Name() string
	// Scores returns per-point anomaly scores (higher = more anomalous).
	Scores(data [][]float64) []float64
}

// Detectors returns the three detectors used in Figure 17.
func Detectors(seed int64) []Detector {
	return []Detector{
		&IsolationForest{Trees: 60, SampleSize: 64, Seed: seed},
		&LOF{K: 10},
		&OneClass{},
	}
}

// OutlierFraction thresholds detector scores at the given contamination
// rate and returns the fraction of flagged points within the mask.
func OutlierFraction(scores []float64, contamination float64, mask []bool) float64 {
	if len(scores) == 0 {
		return 0
	}
	sorted := append([]float64(nil), scores...)
	sort.Float64s(sorted)
	k := int(float64(len(sorted)) * (1 - contamination))
	if k >= len(sorted) {
		k = len(sorted) - 1
	}
	thresh := sorted[k]
	var flagged, total float64
	for i, s := range scores {
		if mask != nil && !mask[i] {
			continue
		}
		total++
		if s > thresh {
			flagged++
		}
	}
	if total == 0 {
		return 0
	}
	return flagged / total
}

// IsolationForest isolates points with random axis-aligned splits; points
// with short average path lengths are anomalous (Liu et al. 2012).
type IsolationForest struct {
	Trees      int
	SampleSize int
	Seed       int64
}

// Name implements Detector.
func (f *IsolationForest) Name() string { return "iForest" }

type iNode struct {
	feature     int
	split       float64
	size        int
	left, right *iNode
}

// Scores implements Detector.
func (f *IsolationForest) Scores(data [][]float64) []float64 {
	n := len(data)
	out := make([]float64, n)
	if n == 0 {
		return out
	}
	rng := rand.New(rand.NewSource(f.Seed))
	sample := f.SampleSize
	if sample > n {
		sample = n
	}
	maxDepth := int(math.Ceil(math.Log2(float64(sample)))) + 2
	var trees []*iNode
	for t := 0; t < f.Trees; t++ {
		idx := rng.Perm(n)[:sample]
		trees = append(trees, buildITree(data, idx, 0, maxDepth, rng))
	}
	c := avgPathLength(float64(sample))
	for i, p := range data {
		var depth float64
		for _, tr := range trees {
			depth += pathLength(tr, p, 0)
		}
		depth /= float64(len(trees))
		out[i] = math.Pow(2, -depth/c)
	}
	return out
}

func buildITree(data [][]float64, idx []int, depth, maxDepth int, rng *rand.Rand) *iNode {
	if len(idx) <= 1 || depth >= maxDepth {
		return &iNode{feature: -1, size: len(idx)}
	}
	d := len(data[idx[0]])
	feature := rng.Intn(d)
	lo, hi := math.Inf(1), math.Inf(-1)
	for _, i := range idx {
		v := data[i][feature]
		if v < lo {
			lo = v
		}
		if v > hi {
			hi = v
		}
	}
	if hi <= lo {
		return &iNode{feature: -1, size: len(idx)}
	}
	split := lo + rng.Float64()*(hi-lo)
	var left, right []int
	for _, i := range idx {
		if data[i][feature] < split {
			left = append(left, i)
		} else {
			right = append(right, i)
		}
	}
	return &iNode{
		feature: feature, split: split, size: len(idx),
		left:  buildITree(data, left, depth+1, maxDepth, rng),
		right: buildITree(data, right, depth+1, maxDepth, rng),
	}
}

func pathLength(n *iNode, p []float64, depth float64) float64 {
	if n.feature < 0 {
		return depth + avgPathLength(float64(n.size))
	}
	if p[n.feature] < n.split {
		return pathLength(n.left, p, depth+1)
	}
	return pathLength(n.right, p, depth+1)
}

func avgPathLength(n float64) float64 {
	if n <= 1 {
		return 0
	}
	return 2*(math.Log(n-1)+0.5772156649) - 2*(n-1)/n
}

// LOF is the local outlier factor of Breunig et al. (2000): the ratio of
// a point's density to its neighbours' densities.
type LOF struct {
	K int
}

// Name implements Detector.
func (l *LOF) Name() string { return "LOF" }

// Scores implements Detector.
func (l *LOF) Scores(data [][]float64) []float64 {
	n := len(data)
	out := make([]float64, n)
	if n == 0 {
		return out
	}
	k := l.K
	if k >= n {
		k = n - 1
	}
	if k < 1 {
		return out
	}
	// k nearest neighbours (exact).
	type nb struct {
		idx  int
		dist float64
	}
	neighbors := make([][]nb, n)
	kdist := make([]float64, n)
	for i := 0; i < n; i++ {
		nbs := make([]nb, 0, n-1)
		for j := 0; j < n; j++ {
			if i == j {
				continue
			}
			nbs = append(nbs, nb{idx: j, dist: euclid(data[i], data[j])})
		}
		sort.Slice(nbs, func(a, b int) bool { return nbs[a].dist < nbs[b].dist })
		neighbors[i] = nbs[:k]
		kdist[i] = nbs[k-1].dist
	}
	lrd := make([]float64, n)
	for i := 0; i < n; i++ {
		var reach float64
		for _, nbv := range neighbors[i] {
			rd := nbv.dist
			if kdist[nbv.idx] > rd {
				rd = kdist[nbv.idx]
			}
			reach += rd
		}
		if reach == 0 {
			lrd[i] = math.Inf(1)
		} else {
			lrd[i] = float64(k) / reach
		}
	}
	for i := 0; i < n; i++ {
		var sum float64
		for _, nbv := range neighbors[i] {
			if math.IsInf(lrd[i], 1) {
				sum += 1
			} else {
				sum += lrd[nbv.idx] / lrd[i]
			}
		}
		out[i] = sum / float64(k)
	}
	return out
}

func euclid(a, b []float64) float64 {
	var s float64
	for i := range a {
		d := a[i] - b[i]
		s += d * d
	}
	return math.Sqrt(s)
}

// OneClass is a centroid-distance one-class detector (the minimalist
// stand-in for a one-class SVM with an RBF kernel): anomaly score is the
// Mahalanobis-like normalized distance from the data centroid.
type OneClass struct{}

// Name implements Detector.
func (o *OneClass) Name() string { return "OneClass" }

// Scores implements Detector.
func (o *OneClass) Scores(data [][]float64) []float64 {
	n := len(data)
	out := make([]float64, n)
	if n == 0 {
		return out
	}
	d := len(data[0])
	centroid := make([]float64, d)
	for _, p := range data {
		for j, v := range p {
			centroid[j] += v
		}
	}
	for j := range centroid {
		centroid[j] /= float64(n)
	}
	scale := make([]float64, d)
	for _, p := range data {
		for j, v := range p {
			dv := v - centroid[j]
			scale[j] += dv * dv
		}
	}
	for j := range scale {
		scale[j] = math.Sqrt(scale[j]/float64(n)) + 1e-9
	}
	for i, p := range data {
		var s float64
		for j, v := range p {
			dv := (v - centroid[j]) / scale[j]
			s += dv * dv
		}
		out[i] = math.Sqrt(s)
	}
	return out
}
