package outlier

import (
	"math"
	"math/rand"
	"testing"
)

// clusterWithOutliers builds a Gaussian blob plus far-away outliers; the
// outliers occupy the last `nOut` positions.
func clusterWithOutliers(n, nOut int, seed int64) [][]float64 {
	rng := rand.New(rand.NewSource(seed))
	var data [][]float64
	for i := 0; i < n; i++ {
		data = append(data, []float64{rng.NormFloat64(), rng.NormFloat64(), rng.NormFloat64()})
	}
	for i := 0; i < nOut; i++ {
		data = append(data, []float64{
			12 + rng.NormFloat64(), -11 + rng.NormFloat64(), 14 + rng.NormFloat64(),
		})
	}
	return data
}

func TestDetectorsRankOutliersHigher(t *testing.T) {
	data := clusterWithOutliers(120, 8, 1)
	for _, d := range Detectors(7) {
		scores := d.Scores(data)
		if len(scores) != len(data) {
			t.Fatalf("%s: score length mismatch", d.Name())
		}
		var inMean, outMean float64
		for i, s := range scores {
			if i < 120 {
				inMean += s / 120
			} else {
				outMean += s / 8
			}
		}
		if outMean <= inMean {
			t.Errorf("%s: outliers (%v) not scored above inliers (%v)", d.Name(), outMean, inMean)
		}
	}
}

func TestOutlierFraction(t *testing.T) {
	data := clusterWithOutliers(95, 5, 2)
	det := &IsolationForest{Trees: 50, SampleSize: 64, Seed: 3}
	scores := det.Scores(data)
	maskOut := make([]bool, 100)
	maskIn := make([]bool, 100)
	for i := range maskOut {
		maskOut[i] = i >= 95
		maskIn[i] = i < 95
	}
	fOut := OutlierFraction(scores, 0.05, maskOut)
	fIn := OutlierFraction(scores, 0.05, maskIn)
	if fOut <= fIn {
		t.Errorf("planted outliers flagged at %v, inliers at %v", fOut, fIn)
	}
	if f := OutlierFraction(scores, 0.05, nil); f <= 0 || f > 0.2 {
		t.Errorf("overall flagged fraction %v not near contamination", f)
	}
	if OutlierFraction(nil, 0.05, nil) != 0 {
		t.Error("empty scores should give 0")
	}
}

func TestDetectorsHandleSmallInput(t *testing.T) {
	tiny := [][]float64{{1, 2}, {1.1, 2.1}}
	for _, d := range Detectors(1) {
		scores := d.Scores(tiny)
		if len(scores) != 2 {
			t.Errorf("%s: wrong length on tiny input", d.Name())
		}
		for _, s := range scores {
			if math.IsNaN(s) {
				t.Errorf("%s: NaN score", d.Name())
			}
		}
		if got := d.Scores(nil); len(got) != 0 {
			t.Errorf("%s: non-empty scores for empty input", d.Name())
		}
	}
}

func TestTSNESeparatesClusters(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	var data [][]float64
	// Two well-separated 5-D clusters of 40 points each.
	for i := 0; i < 40; i++ {
		data = append(data, []float64{
			rng.NormFloat64(), rng.NormFloat64(), rng.NormFloat64(), rng.NormFloat64(), rng.NormFloat64(),
		})
	}
	for i := 0; i < 40; i++ {
		data = append(data, []float64{
			20 + rng.NormFloat64(), 20 + rng.NormFloat64(), 20 + rng.NormFloat64(),
			20 + rng.NormFloat64(), 20 + rng.NormFloat64(),
		})
	}
	emb := DefaultTSNE(5).Embed(data)
	if len(emb) != 80 {
		t.Fatal("embedding length wrong")
	}
	// Mean within-cluster distance must be far below between-cluster.
	dist := func(a, b [2]float64) float64 {
		dx, dy := a[0]-b[0], a[1]-b[1]
		return math.Sqrt(dx*dx + dy*dy)
	}
	var within, between float64
	var nw, nb float64
	for i := 0; i < 80; i++ {
		for j := i + 1; j < 80; j++ {
			d := dist(emb[i], emb[j])
			if (i < 40) == (j < 40) {
				within += d
				nw++
			} else {
				between += d
				nb++
			}
		}
	}
	within /= nw
	between /= nb
	if between < 2*within {
		t.Errorf("t-SNE failed to separate clusters: within %v between %v", within, between)
	}
	for _, p := range emb {
		if math.IsNaN(p[0]) || math.IsNaN(p[1]) {
			t.Fatal("NaN in embedding")
		}
	}
}

func TestTSNETinyInput(t *testing.T) {
	emb := DefaultTSNE(1).Embed([][]float64{{1, 2}})
	if len(emb) != 1 {
		t.Error("tiny embedding length wrong")
	}
}
