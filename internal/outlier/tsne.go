package outlier

import (
	"math"
	"math/rand"
)

// TSNE computes an exact 2-D t-SNE embedding (van der Maaten & Hinton
// 2008). Exact O(n²) pairwise affinities are fine at the few hundred
// points Figure 17 visualizes.
type TSNE struct {
	Perplexity float64
	Iterations int
	LearnRate  float64
	Seed       int64
}

// DefaultTSNE returns paper-typical settings.
func DefaultTSNE(seed int64) *TSNE {
	return &TSNE{Perplexity: 20, Iterations: 300, LearnRate: 10, Seed: seed}
}

// Embed maps data to n×2 coordinates.
func (t *TSNE) Embed(data [][]float64) [][2]float64 {
	n := len(data)
	out := make([][2]float64, n)
	if n < 3 {
		return out
	}
	perp := t.Perplexity
	if perp > float64(n-1)/3 {
		perp = float64(n-1) / 3
	}
	// Pairwise squared distances.
	d2 := make([][]float64, n)
	for i := range d2 {
		d2[i] = make([]float64, n)
		for j := range d2[i] {
			if i != j {
				dd := euclid(data[i], data[j])
				d2[i][j] = dd * dd
			}
		}
	}
	// Conditional affinities with per-point bandwidth found by binary
	// search on the target perplexity.
	p := make([][]float64, n)
	logPerp := math.Log(perp)
	for i := 0; i < n; i++ {
		p[i] = make([]float64, n)
		lo, hi := 1e-20, 1e20
		beta := 1.0
		for iter := 0; iter < 40; iter++ {
			var sum, hsum float64
			for j := 0; j < n; j++ {
				if j == i {
					continue
				}
				pij := math.Exp(-d2[i][j] * beta)
				p[i][j] = pij
				sum += pij
			}
			if sum < 1e-300 {
				sum = 1e-300
			}
			for j := 0; j < n; j++ {
				if j == i {
					continue
				}
				p[i][j] /= sum
				if p[i][j] > 1e-12 {
					hsum -= p[i][j] * math.Log(p[i][j])
				}
			}
			if math.Abs(hsum-logPerp) < 1e-4 {
				break
			}
			if hsum > logPerp {
				lo = beta
				if hi >= 1e20 {
					beta *= 2
				} else {
					beta = (beta + hi) / 2
				}
			} else {
				hi = beta
				beta = (beta + lo) / 2
			}
		}
	}
	// Symmetrize.
	pj := make([][]float64, n)
	for i := range pj {
		pj[i] = make([]float64, n)
	}
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			pj[i][j] = (p[i][j] + p[j][i]) / (2 * float64(n))
			if pj[i][j] < 1e-12 {
				pj[i][j] = 1e-12
			}
		}
	}
	// Gradient descent with momentum and early exaggeration.
	rng := rand.New(rand.NewSource(t.Seed))
	y := make([][2]float64, n)
	vel := make([][2]float64, n)
	for i := range y {
		y[i][0] = rng.NormFloat64() * 1e-2
		y[i][1] = rng.NormFloat64() * 1e-2
	}
	iters := t.Iterations
	if iters <= 0 {
		iters = 300
	}
	for it := 0; it < iters; it++ {
		exag := 1.0
		if it < iters/4 {
			exag = 4
		}
		momentum := 0.5
		if it > 50 {
			momentum = 0.8
		}
		// Student-t affinities in the embedding.
		q := make([][]float64, n)
		var qsum float64
		for i := 0; i < n; i++ {
			q[i] = make([]float64, n)
			for j := 0; j < n; j++ {
				if i == j {
					continue
				}
				dx := y[i][0] - y[j][0]
				dy := y[i][1] - y[j][1]
				q[i][j] = 1 / (1 + dx*dx + dy*dy)
				qsum += q[i][j]
			}
		}
		for i := 0; i < n; i++ {
			var gx, gy float64
			for j := 0; j < n; j++ {
				if i == j {
					continue
				}
				qij := q[i][j] / qsum
				if qij < 1e-12 {
					qij = 1e-12
				}
				mult := (exag*pj[i][j] - qij) * q[i][j]
				gx += 4 * mult * (y[i][0] - y[j][0])
				gy += 4 * mult * (y[i][1] - y[j][1])
			}
			vel[i][0] = momentum*vel[i][0] - t.LearnRate*gx
			vel[i][1] = momentum*vel[i][1] - t.LearnRate*gy
			// Clamp per-step movement to keep the descent stable.
			for k := 0; k < 2; k++ {
				if vel[i][k] > 5 {
					vel[i][k] = 5
				}
				if vel[i][k] < -5 {
					vel[i][k] = -5
				}
			}
			y[i][0] += vel[i][0]
			y[i][1] += vel[i][1]
		}
	}
	copy(out, y)
	return out
}
