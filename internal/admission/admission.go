// Package admission is trapd's flow-control layer: it decides, before
// a job touches the worker pool, whether the request should be admitted
// now, deferred (with an honest Retry-After), or shed.
//
// Three mechanisms compose:
//
//   - Priority classes. Requests are interactive or batch; the service's
//     worker pool dequeues interactive work first, so a human waiting on
//     a result is not stuck behind a bulk re-assessment sweep.
//   - Per-tenant quotas. Each tenant (the X-Trap-Tenant header) gets a
//     token bucket refilled at TenantQPS with TenantBurst capacity. A
//     tenant that exhausts its bucket is shed with 429 and a Retry-After
//     equal to the time until its next token — other tenants are
//     unaffected, so no tenant can starve the rest.
//   - Load shedding. When the queue itself is full the request is shed
//     with 503 and a Retry-After derived from the observed drain rate
//     (completions over a sliding window): clients are told how long the
//     backlog actually needs, not a constant guess.
//
// The controller is cheap when idle: with quotas disabled, Admit is a
// single branch, and the drain estimator costs one mutexed ring update
// per finished job.
//
// All methods are safe for concurrent use.
package admission

import (
	"fmt"
	"math"
	"sync"
	"sync/atomic"
	"time"
)

// Priority is a request's scheduling class.
type Priority int

const (
	// Batch is the default class: bulk assessments, sweeps, re-runs.
	Batch Priority = iota
	// Interactive jumps the queue: a user is waiting on the result.
	Interactive
	// NumPriorities bounds per-class arrays (interactive first).
	NumPriorities = 2
)

// String returns the wire name of the priority.
func (p Priority) String() string {
	if p == Interactive {
		return "interactive"
	}
	return "batch"
}

// ParsePriority maps a wire name (the X-Trap-Priority header) to a
// class. Empty means batch.
func ParsePriority(s string) (Priority, error) {
	switch s {
	case "", "batch":
		return Batch, nil
	case "interactive":
		return Interactive, nil
	}
	return 0, fmt.Errorf("unknown priority %q (want interactive or batch)", s)
}

// Options parameterizes a Controller. The zero value disables quotas
// and keeps only the drain-rate estimator.
type Options struct {
	// TenantQPS is the per-tenant token refill rate. <= 0 disables
	// tenant quotas entirely (every tenant is always admitted).
	TenantQPS float64
	// TenantBurst is the bucket capacity (default: ceil(TenantQPS),
	// minimum 1).
	TenantBurst int
	// MaxTenants bounds the bucket map; the stalest bucket is evicted
	// past it (default 4096). An evicted tenant restarts with a full
	// bucket, so eviction can only be too generous, never starve.
	MaxTenants int
	// DrainWindow is the sliding window the completion rate is measured
	// over (default 16s, 1s resolution).
	DrainWindow time.Duration
	// FallbackRetry is the base Retry-After used before any completion
	// has been observed (default 5s).
	FallbackRetry time.Duration
	// ColdPerJob scales the cold-start Retry-After with the backlog:
	// before any completion has been observed the hint is
	// FallbackRetry + queued*ColdPerJob, so a deep queue on a freshly
	// (re)started node does not invite an immediate thundering retry
	// (default 250ms per queued job).
	ColdPerJob time.Duration
	// MinRetry/MaxRetry clamp every computed Retry-After
	// (defaults 1s and 5m).
	MinRetry, MaxRetry time.Duration
}

func (o *Options) fill() {
	if o.TenantBurst <= 0 {
		o.TenantBurst = int(math.Ceil(o.TenantQPS))
		if o.TenantBurst < 1 {
			o.TenantBurst = 1
		}
	}
	if o.MaxTenants <= 0 {
		o.MaxTenants = 4096
	}
	if o.DrainWindow <= 0 {
		o.DrainWindow = 16 * time.Second
	}
	if o.FallbackRetry <= 0 {
		o.FallbackRetry = 5 * time.Second
	}
	if o.ColdPerJob <= 0 {
		o.ColdPerJob = 250 * time.Millisecond
	}
	if o.MinRetry <= 0 {
		o.MinRetry = time.Second
	}
	if o.MaxRetry <= 0 {
		o.MaxRetry = 5 * time.Minute
	}
}

// Decision is the outcome of an admission check.
type Decision struct {
	// Admit reports whether the request may proceed to the queue.
	Admit bool
	// Reason is "" when admitted, else "tenant-quota".
	Reason string
	// RetryAfter is the client hint when shed (rounded up to whole
	// seconds by the HTTP layer).
	RetryAfter time.Duration
}

// Stats is a point-in-time summary of the controller.
type Stats struct {
	Admitted     int64
	ShedQuota    int64
	Tenants      int
	DrainPerSec  float64
	QuotaEnabled bool
}

// bucket is one tenant's token bucket.
type bucket struct {
	tokens float64
	last   time.Time
}

// Controller makes admission decisions. Build with New.
type Controller struct {
	o Options

	mu      sync.Mutex
	buckets map[string]*bucket

	// drain-rate ring: completions per second over DrainWindow. ring
	// slot s%len(ring) holds the count for unix second s, valid for
	// seconds in (hi-len(ring), hi].
	dmu   sync.Mutex
	ring  []int64
	first int64 // unix second of the first sample (0: none yet)
	hi    int64 // unix second of the newest sample

	admitted  atomic.Int64
	shedQuota atomic.Int64
}

// New builds a controller.
func New(o Options) *Controller {
	o.fill()
	return &Controller{
		o:       o,
		buckets: map[string]*bucket{},
		ring:    make([]int64, int(o.DrainWindow/time.Second)),
	}
}

// QuotaEnabled reports whether per-tenant quotas are active.
func (c *Controller) QuotaEnabled() bool { return c.o.TenantQPS > 0 }

// Admit charges one token to the tenant's bucket. With quotas disabled
// it always admits. now is injected for testability; callers pass
// time.Now().
func (c *Controller) Admit(tenant string, now time.Time) Decision {
	if !c.QuotaEnabled() {
		c.admitted.Add(1)
		return Decision{Admit: true}
	}
	c.mu.Lock()
	b, ok := c.buckets[tenant]
	if !ok {
		if len(c.buckets) >= c.o.MaxTenants {
			c.evictStalest()
		}
		b = &bucket{tokens: float64(c.o.TenantBurst), last: now}
		c.buckets[tenant] = b
	}
	// Refill, capped at burst.
	if dt := now.Sub(b.last).Seconds(); dt > 0 {
		b.tokens = math.Min(float64(c.o.TenantBurst), b.tokens+dt*c.o.TenantQPS)
		b.last = now
	}
	if b.tokens >= 1 {
		b.tokens--
		c.mu.Unlock()
		c.admitted.Add(1)
		return Decision{Admit: true}
	}
	need := (1 - b.tokens) / c.o.TenantQPS
	c.mu.Unlock()
	c.shedQuota.Add(1)
	return Decision{
		Reason:     "tenant-quota",
		RetryAfter: c.clamp(time.Duration(need * float64(time.Second))),
	}
}

// evictStalest drops the bucket with the oldest refill time (caller
// holds mu).
func (c *Controller) evictStalest() {
	var victim string
	var oldest time.Time
	for t, b := range c.buckets {
		if victim == "" || b.last.Before(oldest) {
			victim, oldest = t, b.last
		}
	}
	delete(c.buckets, victim)
}

// JobDone records one job completion at now: the drain-rate sample that
// backs capacity Retry-After hints.
func (c *Controller) JobDone(now time.Time) {
	sec := now.Unix()
	c.dmu.Lock()
	defer c.dmu.Unlock()
	n := int64(len(c.ring))
	if c.first == 0 {
		c.first, c.hi = sec, sec
		c.ring[sec%n] = 1
		return
	}
	if sec <= c.hi-n {
		return // older than the window (clock skew); drop the sample
	}
	if gap := sec - c.hi; gap >= n {
		// Idle long enough that every slot is stale.
		for i := range c.ring {
			c.ring[i] = 0
		}
	} else {
		for s := c.hi + 1; s <= sec; s++ {
			c.ring[s%n] = 0 // seconds that passed without samples
		}
	}
	if sec > c.hi {
		c.hi = sec
	}
	c.ring[sec%n]++
}

// drainPerSec estimates the completion rate at now: completions inside
// the trailing window divided by the observed span, so idle time since
// the last completion honestly dilutes the rate.
func (c *Controller) drainPerSec(now time.Time) float64 {
	sec := now.Unix()
	c.dmu.Lock()
	defer c.dmu.Unlock()
	if c.first == 0 {
		return 0
	}
	n := int64(len(c.ring))
	lo := sec - n + 1 // oldest second inside the trailing window
	if v := c.hi - n + 1; v > lo {
		lo = v // ring slots older than this hold garbage
	}
	var total int64
	for s := lo; s <= c.hi && s <= sec; s++ {
		total += c.ring[s%n]
	}
	span := sec - c.first + 1
	if span > n {
		span = n
	}
	if span <= 0 {
		span = 1
	}
	return float64(total) / float64(span)
}

// CapacityRetryAfter derives a Retry-After for a queue-full shed:
// queued jobs ahead divided by the observed drain rate, clamped. Before
// any completion is observed it returns the fallback.
func (c *Controller) CapacityRetryAfter(queued int, now time.Time) time.Duration {
	if queued < 1 {
		queued = 1
	}
	rate := c.drainPerSec(now)
	if rate <= 0 {
		// Cold-start window: no completion has been observed yet (or the
		// trailing window is empty after a long idle), so the drain rate
		// is undefined — not actually zero. Dividing into it would yield
		// an infinite hint; returning the bare fallback regardless of
		// backlog invites a thundering retry against a node that has a
		// full queue and zero throughput history. Scale the floor with
		// the backlog instead, inside the usual [MinRetry, MaxRetry].
		return c.clamp(c.o.FallbackRetry + time.Duration(queued)*c.o.ColdPerJob)
	}
	return c.clamp(time.Duration(float64(queued) / rate * float64(time.Second)))
}

// clamp bounds a Retry-After to [MinRetry, MaxRetry].
func (c *Controller) clamp(d time.Duration) time.Duration {
	if d < c.o.MinRetry {
		return c.o.MinRetry
	}
	if d > c.o.MaxRetry {
		return c.o.MaxRetry
	}
	return d
}

// Stats returns a snapshot of the controller's counters.
func (c *Controller) Stats() Stats {
	c.mu.Lock()
	tenants := len(c.buckets)
	c.mu.Unlock()
	return Stats{
		Admitted:     c.admitted.Load(),
		ShedQuota:    c.shedQuota.Load(),
		Tenants:      tenants,
		DrainPerSec:  c.drainPerSec(time.Now()),
		QuotaEnabled: c.QuotaEnabled(),
	}
}
