package admission

import (
	"sync"
	"testing"
	"time"
)

// t0 is an arbitrary fixed wall-clock origin for deterministic tests.
var t0 = time.Date(2026, 8, 7, 12, 0, 0, 0, time.UTC)

func TestParsePriority(t *testing.T) {
	for _, tc := range []struct {
		in   string
		want Priority
		err  bool
	}{
		{"", Batch, false},
		{"batch", Batch, false},
		{"interactive", Interactive, false},
		{"urgent", 0, true},
	} {
		got, err := ParsePriority(tc.in)
		if (err != nil) != tc.err || got != tc.want {
			t.Errorf("ParsePriority(%q) = %v, %v", tc.in, got, err)
		}
	}
	if Batch.String() != "batch" || Interactive.String() != "interactive" {
		t.Error("priority names changed")
	}
}

func TestQuotaDisabledAlwaysAdmits(t *testing.T) {
	c := New(Options{})
	if c.QuotaEnabled() {
		t.Fatal("zero options should disable quotas")
	}
	for i := 0; i < 100; i++ {
		if d := c.Admit("anyone", t0); !d.Admit {
			t.Fatalf("admit %d shed: %+v", i, d)
		}
	}
	if st := c.Stats(); st.Admitted != 100 || st.ShedQuota != 0 {
		t.Fatalf("stats: %+v", st)
	}
}

func TestTokenBucketQuota(t *testing.T) {
	c := New(Options{TenantQPS: 2, TenantBurst: 2})
	// Burst of 2 admits, third is shed.
	for i := 0; i < 2; i++ {
		if d := c.Admit("acme", t0); !d.Admit {
			t.Fatalf("burst admit %d shed: %+v", i, d)
		}
	}
	d := c.Admit("acme", t0)
	if d.Admit || d.Reason != "tenant-quota" {
		t.Fatalf("over-quota decision: %+v", d)
	}
	// Next token arrives in 1/QPS = 500ms; Retry-After clamps up to MinRetry.
	if d.RetryAfter != time.Second {
		t.Fatalf("RetryAfter = %v, want 1s (clamped)", d.RetryAfter)
	}
	// After one second two tokens refilled: two more admits.
	later := t0.Add(time.Second)
	for i := 0; i < 2; i++ {
		if d := c.Admit("acme", later); !d.Admit {
			t.Fatalf("post-refill admit %d shed: %+v", i, d)
		}
	}
	if d := c.Admit("acme", later); d.Admit {
		t.Fatal("third post-refill admit should shed")
	}
	// Refill never exceeds burst.
	muchLater := t0.Add(time.Hour)
	for i := 0; i < 2; i++ {
		if d := c.Admit("acme", muchLater); !d.Admit {
			t.Fatalf("capped-refill admit %d shed: %+v", i, d)
		}
	}
	if d := c.Admit("acme", muchLater); d.Admit {
		t.Fatal("bucket refilled past its burst cap")
	}
}

func TestTenantIsolation(t *testing.T) {
	c := New(Options{TenantQPS: 1, TenantBurst: 1})
	if d := c.Admit("noisy", t0); !d.Admit {
		t.Fatalf("noisy first admit shed: %+v", d)
	}
	for i := 0; i < 10; i++ {
		if d := c.Admit("noisy", t0); d.Admit {
			t.Fatal("noisy tenant admitted past its quota")
		}
	}
	// A different tenant still has its full bucket.
	if d := c.Admit("quiet", t0); !d.Admit {
		t.Fatalf("quiet tenant starved by noisy one: %+v", d)
	}
	st := c.Stats()
	if st.Tenants != 2 || st.Admitted != 2 || st.ShedQuota != 10 {
		t.Fatalf("stats: %+v", st)
	}
}

func TestMaxTenantsEviction(t *testing.T) {
	c := New(Options{TenantQPS: 1, TenantBurst: 1, MaxTenants: 2})
	c.Admit("a", t0)
	c.Admit("b", t0.Add(time.Second))
	c.Admit("c", t0.Add(2*time.Second)) // evicts "a" (stalest)
	if st := c.Stats(); st.Tenants != 2 {
		t.Fatalf("tenants after eviction = %d, want 2", st.Tenants)
	}
	// "a" restarts with a full bucket — eviction is generous, not starving.
	if d := c.Admit("a", t0.Add(2*time.Second)); !d.Admit {
		t.Fatalf("evicted tenant not re-admitted: %+v", d)
	}
}

// TestCapacityRetryAfterColdStart is the regression test for the
// cold-start window: before any JobDone the drain rate is undefined, and
// the hint must be a sane backlog-scaled floor — never zero, never below
// MinRetry, never above MaxRetry, and growing with queue depth so a
// freshly restarted node with a deep queue is not stampeded.
func TestCapacityRetryAfterColdStart(t *testing.T) {
	c := New(Options{FallbackRetry: 5 * time.Second, ColdPerJob: 250 * time.Millisecond})
	// Empty queue: the bare fallback.
	if got := c.CapacityRetryAfter(0, t0); got != 5*time.Second+250*time.Millisecond {
		t.Fatalf("cold empty-queue Retry-After = %v", got)
	}
	// Backlog scales the floor: 10 queued -> 5s + 10*250ms = 7.5s.
	if got := c.CapacityRetryAfter(10, t0); got != 7500*time.Millisecond {
		t.Fatalf("cold Retry-After(10) = %v, want 7.5s", got)
	}
	// Monotone in backlog, and always inside [MinRetry, MaxRetry].
	prev := time.Duration(0)
	for _, q := range []int{1, 4, 16, 64, 1 << 20} {
		got := c.CapacityRetryAfter(q, t0)
		if got <= 0 || got < time.Second || got > 5*time.Minute {
			t.Fatalf("cold Retry-After(%d) = %v outside [1s, 5m]", q, got)
		}
		if got < prev {
			t.Fatalf("cold Retry-After not monotone: %v after %v", got, prev)
		}
		prev = got
	}
	if got := c.CapacityRetryAfter(1<<20, t0); got != 5*time.Minute {
		t.Fatalf("huge cold backlog = %v, want MaxRetry", got)
	}
	// A long-idle controller (drain window empty again) falls back to the
	// same floor instead of dividing by a stale zero rate.
	c.JobDone(t0)
	if got := c.CapacityRetryAfter(10, t0.Add(time.Hour)); got != 7500*time.Millisecond {
		t.Fatalf("post-idle Retry-After = %v, want cold floor", got)
	}
}

func TestCapacityRetryAfterFromDrainRate(t *testing.T) {
	c := New(Options{DrainWindow: 8 * time.Second})
	// 4 completions per second for 4 seconds.
	for s := 0; s < 4; s++ {
		for i := 0; i < 4; i++ {
			c.JobDone(t0.Add(time.Duration(s) * time.Second))
		}
	}
	now := t0.Add(3 * time.Second)
	// 16 completions over 4 observed seconds = 4/s; 20 queued -> 5s.
	if got := c.CapacityRetryAfter(20, now); got != 5*time.Second {
		t.Fatalf("Retry-After = %v, want 5s", got)
	}
	// Small backlogs clamp up to MinRetry.
	if got := c.CapacityRetryAfter(1, now); got != time.Second {
		t.Fatalf("Retry-After = %v, want 1s (clamped)", got)
	}
	// Huge backlogs clamp at MaxRetry.
	if got := c.CapacityRetryAfter(1<<20, now); got != 5*time.Minute {
		t.Fatalf("Retry-After = %v, want 5m (clamped)", got)
	}
	// Idle time dilutes the observed rate: 4 seconds later the same 16
	// completions spread over the full 8s window = 2/s; 20 queued -> 10s.
	if got := c.CapacityRetryAfter(20, t0.Add(7*time.Second)); got != 10*time.Second {
		t.Fatalf("diluted Retry-After = %v, want 10s", got)
	}
	// Once the window has fully rolled past the burst, the rate decays
	// to zero and the backlog-scaled cold floor applies again:
	// 5s fallback + 20 * 250ms = 10s.
	if got := c.CapacityRetryAfter(20, t0.Add(time.Hour)); got != 10*time.Second {
		t.Fatalf("stale-window Retry-After = %v, want 10s cold floor", got)
	}
}

func TestDrainRingRollover(t *testing.T) {
	c := New(Options{DrainWindow: 4 * time.Second})
	// One completion per second for 10 seconds: steady 1/s.
	for s := 0; s < 10; s++ {
		c.JobDone(t0.Add(time.Duration(s) * time.Second))
	}
	if rate := c.drainPerSec(t0.Add(9 * time.Second)); rate != 1 {
		t.Fatalf("steady rate = %g, want 1", rate)
	}
	// A long idle gap zeroes the whole ring rather than reading stale slots.
	c.JobDone(t0.Add(100 * time.Second))
	if rate := c.drainPerSec(t0.Add(100 * time.Second)); rate != 0.25 {
		t.Fatalf("post-gap rate = %g, want 0.25 (1 completion / 4s window)", rate)
	}
}

// TestConcurrentAdmit exercises the controller under -race.
func TestConcurrentAdmit(t *testing.T) {
	c := New(Options{TenantQPS: 1000, TenantBurst: 1000})
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			tenant := string(rune('a' + w%4))
			for i := 0; i < 200; i++ {
				c.Admit(tenant, time.Now())
				c.JobDone(time.Now())
				c.CapacityRetryAfter(i, time.Now())
			}
		}(w)
	}
	wg.Wait()
	st := c.Stats()
	if st.Admitted+st.ShedQuota != 8*200 {
		t.Fatalf("decisions = %d, want 1600", st.Admitted+st.ShedQuota)
	}
}
