package nn

import (
	"math/rand"
	"testing"
)

func BenchmarkGRUStepForward(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	var p Params
	cell := NewGRUCell(&p, "gru", 48, 48, rng)
	x := RandTensor(48, 1, 1, rng)
	h := cell.InitState()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		g := NewGraph(false)
		h2 := cell.Step(g, x, h)
		_ = h2
	}
}

func BenchmarkBiGRUEncode(b *testing.B) {
	rng := rand.New(rand.NewSource(2))
	var p Params
	enc := NewBiGRU(&p, "enc", 48, 48, rng)
	xs := make([]*Tensor, 40)
	for i := range xs {
		xs[i] = RandTensor(48, 1, 1, rng)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		g := NewGraph(false)
		enc.Encode(g, xs)
	}
}

func BenchmarkBackwardThroughGRUSequence(b *testing.B) {
	rng := rand.New(rand.NewSource(3))
	var p Params
	cell := NewGRUCell(&p, "gru", 32, 32, rng)
	xs := make([]*Tensor, 30)
	for i := range xs {
		xs[i] = RandTensor(32, 1, 1, rng)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		g := NewGraph(true)
		h := cell.InitState()
		for _, x := range xs {
			h = cell.Step(g, x, h)
		}
		MSELoss(g.Dot(h, h), 1)
		g.Backward()
		p.ZeroGrads()
	}
}

func BenchmarkTransformerLayerForward(b *testing.B) {
	rng := rand.New(rand.NewSource(4))
	var p Params
	layer := NewTransformerLayer(&p, "tf", 64, 4, 256, rng)
	xs := make([]*Tensor, 40)
	for i := range xs {
		xs[i] = RandTensor(64, 1, 1, rng)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		g := NewGraph(false)
		layer.Apply(g, xs)
	}
}

func BenchmarkAttentionContext(b *testing.B) {
	rng := rand.New(rand.NewSource(5))
	var p Params
	att := NewAttention(&p, "att", 96, 48, 48, rng)
	states := make([]*Tensor, 40)
	for i := range states {
		states[i] = RandTensor(96, 1, 1, rng)
	}
	s := RandTensor(48, 1, 1, rng)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		g := NewGraph(false)
		att.Context(g, states, s)
	}
}

func BenchmarkAdamStep(b *testing.B) {
	rng := rand.New(rand.NewSource(6))
	var p Params
	NewDense(&p, "d1", 128, 128, rng)
	NewDense(&p, "d2", 128, 128, rng)
	for _, t := range p.Tensors() {
		for i := range t.G {
			t.G[i] = rng.Float64()
		}
	}
	opt := NewAdam(1e-3)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		opt.Step(&p)
	}
}
