package nn

import (
	"math"
	"math/rand"
)

// Dot returns a^T·b for column vectors as a 1×1 tensor.
func (g *Graph) Dot(a, b *Tensor) *Tensor {
	if a.R != b.R || a.C != 1 || b.C != 1 {
		panic("nn: Dot expects equal-length column vectors")
	}
	out := g.Alloc(1, 1)
	for i := 0; i < a.R; i++ {
		out.W[0] += a.W[i] * b.W[i]
	}
	g.addBack(func() {
		d := out.G[0]
		for i := 0; i < a.R; i++ {
			a.G[i] += d * b.W[i]
			b.G[i] += d * a.W[i]
		}
	})
	return out
}

// LayerNorm normalizes a column vector to zero mean / unit variance and
// applies a learned affine transform.
type LayerNorm struct {
	Gamma, Beta *Tensor
}

// NewLayerNorm builds a LayerNorm over vectors of size dim.
func NewLayerNorm(p *Params, name string, dim int) *LayerNorm {
	ln := &LayerNorm{Gamma: NewTensor(dim, 1), Beta: NewTensor(dim, 1)}
	for i := range ln.Gamma.W {
		ln.Gamma.W[i] = 1
	}
	p.Add(name+".gamma", ln.Gamma)
	p.Add(name+".beta", ln.Beta)
	return ln
}

// Apply normalizes x.
func (ln *LayerNorm) Apply(g *Graph, x *Tensor) *Tensor {
	n := float64(x.R)
	var mu float64
	for _, v := range x.W {
		mu += v
	}
	mu /= n
	var variance float64
	for _, v := range x.W {
		variance += (v - mu) * (v - mu)
	}
	variance /= n
	std := math.Sqrt(variance + 1e-5)
	xhat := g.floatsRaw(x.R)
	out := g.allocOut(x.R, 1)
	for i, v := range x.W {
		xhat[i] = (v - mu) / std
		out.W[i] = ln.Gamma.W[i]*xhat[i] + ln.Beta.W[i]
	}
	dxhat := g.floatsRaw(x.R) // backward scratch, zeroed explicitly in the closure
	g.addBack(func() {
		var meanDx, meanDxX float64
		zeroFloats(dxhat)
		for i := range x.W {
			ln.Gamma.G[i] += out.G[i] * xhat[i]
			ln.Beta.G[i] += out.G[i]
			dxhat[i] = out.G[i] * ln.Gamma.W[i]
			meanDx += dxhat[i]
			meanDxX += dxhat[i] * xhat[i]
		}
		meanDx /= n
		meanDxX /= n
		for i := range x.W {
			x.G[i] += (dxhat[i] - meanDx - xhat[i]*meanDxX) / std
		}
	})
	return out
}

// TransformerLayer is one encoder block: multi-head self-attention with a
// residual connection and LayerNorm, followed by a position-wise
// feed-forward network with residual and LayerNorm.
type TransformerLayer struct {
	heads    int
	headDim  int
	Wq, Wk   []*Dense
	Wv       []*Dense
	Wo       *Dense
	FF1, FF2 *Dense
	LN1, LN2 *LayerNorm
}

// NewTransformerLayer builds a block over vectors of size dim with the
// given head count (dim must be divisible by heads) and FFN width ffDim.
func NewTransformerLayer(p *Params, name string, dim, heads, ffDim int, rng *rand.Rand) *TransformerLayer {
	if dim%heads != 0 {
		panic("nn: transformer dim must be divisible by heads")
	}
	hd := dim / heads
	l := &TransformerLayer{heads: heads, headDim: hd}
	for h := 0; h < heads; h++ {
		l.Wq = append(l.Wq, NewDense(p, name+".q"+itoa(h), dim, hd, rng))
		l.Wk = append(l.Wk, NewDense(p, name+".k"+itoa(h), dim, hd, rng))
		l.Wv = append(l.Wv, NewDense(p, name+".v"+itoa(h), dim, hd, rng))
	}
	l.Wo = NewDense(p, name+".o", dim, dim, rng)
	l.FF1 = NewDense(p, name+".ff1", dim, ffDim, rng)
	l.FF2 = NewDense(p, name+".ff2", ffDim, dim, rng)
	l.LN1 = NewLayerNorm(p, name+".ln1", dim)
	l.LN2 = NewLayerNorm(p, name+".ln2", dim)
	return l
}

func itoa(i int) string { return string(rune('0' + i%10)) }

// Apply runs the block over the sequence of position vectors. The whole
// sequence is packed into one dim×n matrix so every projection is a
// single GEMM and each head's attention is one fused op, instead of the
// O(n²·heads) per-pair Dot tensors the per-vector formulation recorded.
func (l *TransformerLayer) Apply(g *Graph, xs []*Tensor) []*Tensor {
	n := len(xs)
	scale := 1 / math.Sqrt(float64(l.headDim))
	X := g.PackCols(xs...)
	heads := make([]*Tensor, l.heads)
	for h := 0; h < l.heads; h++ {
		q := g.AddColBias(g.Mul(l.Wq[h].W, X), l.Wq[h].B)
		k := g.AddColBias(g.Mul(l.Wk[h].W, X), l.Wk[h].B)
		v := g.AddColBias(g.Mul(l.Wv[h].W, X), l.Wv[h].B)
		heads[h] = g.ScaledDotAttendCols(q, k, v, scale)
	}
	merged := g.AddColBias(g.Mul(l.Wo.W, g.VStack(heads...)), l.Wo.B)
	attOut := make([]*Tensor, n)
	for i := 0; i < n; i++ {
		attOut[i] = l.LN1.Apply(g, g.Add(xs[i], g.Col(merged, i)))
	}
	A := g.PackCols(attOut...)
	F := g.AddColBias(g.Mul(l.FF2.W, g.Relu(g.AddColBias(g.Mul(l.FF1.W, A), l.FF1.B))), l.FF2.B)
	out := make([]*Tensor, n)
	for i := 0; i < n; i++ {
		out[i] = l.LN2.Apply(g, g.Add(attOut[i], g.Col(F, i)))
	}
	return out
}

// ScaledDotAttendCols is fused scaled-dot-product self-attention over
// column-packed projections: for each query column i it scores every
// key column j (scale·kᵀ_j·q_i), softmaxes over j, and mixes the value
// columns. One op and one backward closure per head per layer. All
// reductions run in fixed ascending order (queries outer), so gradients
// are bit-identical regardless of scheduling.
func (g *Graph) ScaledDotAttendCols(q, k, v *Tensor, scale float64) *Tensor {
	if q.R != k.R || q.R != v.R || q.C != k.C || q.C != v.C {
		panic("nn: ScaledDotAttendCols shape mismatch")
	}
	d, n := q.R, q.C
	out := g.allocOut(d, n)
	aw := g.floatsRaw(n * n) // aw[i*n+j]: weight on key j for query i
	for i := 0; i < n; i++ {
		row := aw[i*n : i*n+n]
		for j := 0; j < n; j++ {
			var s float64
			for p := 0; p < d; p++ {
				s += k.W[p*n+j] * q.W[p*n+i]
			}
			row[j] = s * scale
		}
		maxS := row[0]
		for _, sv := range row[1:] {
			if sv > maxS {
				maxS = sv
			}
		}
		var sum float64
		for j, sv := range row {
			e := math.Exp(sv - maxS)
			row[j] = e
			sum += e
		}
		for j := range row {
			row[j] /= sum
		}
	}
	for p := 0; p < d; p++ {
		vrow := v.W[p*n : p*n+n]
		orow := out.W[p*n : p*n+n]
		for i := 0; i < n; i++ {
			arow := aw[i*n : i*n+n]
			var cv float64
			for j, av := range arow {
				cv += av * vrow[j]
			}
			orow[i] = cv
		}
	}
	if !g.NeedsGrad {
		return out
	}
	// Backward scratch: both rows are fully assigned per query before use.
	da := g.floatsRaw(n)
	ds := g.floatsRaw(n)
	g.addBack(func() {
		if allZeroF(out.G) {
			return
		}
		for i := 0; i < n; i++ {
			arow := aw[i*n : i*n+n]
			for j := 0; j < n; j++ {
				var s float64
				for p := 0; p < d; p++ {
					s += out.G[p*n+i] * v.W[p*n+j]
				}
				da[j] = s
			}
			var avg float64
			for j, av := range arow {
				avg += av * da[j]
			}
			for j, av := range arow {
				ds[j] = av * (da[j] - avg)
			}
			for p := 0; p < d; p++ {
				krow := k.W[p*n : p*n+n]
				kg := k.G[p*n : p*n+n]
				vg := v.G[p*n : p*n+n]
				qv := q.W[p*n+i]
				og := out.G[p*n+i]
				var qg float64
				for j, dsj := range ds {
					qg += krow[j] * dsj
					kg[j] += scale * dsj * qv
					vg[j] += arow[j] * og
				}
				q.G[p*n+i] += scale * qg
			}
		}
	})
	return out
}

// TransformerEncoder stacks transformer layers over embedded tokens with
// learned positional embeddings — the stand-in architecture for the
// pre-trained language models of the Figure 7 / Table IV ablation.
type TransformerEncoder struct {
	Dim    int
	Pos    *Embedding
	Layers []*TransformerLayer
}

// NewTransformerEncoder builds an encoder of nLayers blocks over vectors
// of size dim, supporting sequences up to maxLen.
func NewTransformerEncoder(p *Params, name string, dim, heads, ffDim, nLayers, maxLen int, rng *rand.Rand) *TransformerEncoder {
	enc := &TransformerEncoder{Dim: dim, Pos: NewEmbedding(p, name+".pos", maxLen, dim, rng)}
	for i := 0; i < nLayers; i++ {
		enc.Layers = append(enc.Layers, NewTransformerLayer(p, name+".l"+itoa(i), dim, heads, ffDim, rng))
	}
	return enc
}

// Encode adds positional embeddings and applies every layer.
func (t *TransformerEncoder) Encode(g *Graph, xs []*Tensor) []*Tensor {
	out := make([]*Tensor, len(xs))
	for i, x := range xs {
		pos := i
		if pos >= t.Pos.Vocab() {
			pos = t.Pos.Vocab() - 1
		}
		out[i] = g.Add(x, t.Pos.Lookup(g, pos))
	}
	for _, l := range t.Layers {
		out = l.Apply(g, out)
	}
	return out
}
