package nn

import (
	"fmt"
	"math"
)

// Adam is the Adam optimizer.
type Adam struct {
	LR, Beta1, Beta2, Eps float64

	t int
	m map[*Tensor][]float64
	v map[*Tensor][]float64
}

// NewAdam builds an Adam optimizer with standard betas.
func NewAdam(lr float64) *Adam {
	return &Adam{
		LR: lr, Beta1: 0.9, Beta2: 0.999, Eps: 1e-8,
		m: map[*Tensor][]float64{}, v: map[*Tensor][]float64{},
	}
}

// Step applies one update to every parameter from its accumulated
// gradients and clears the gradients.
//
// Parameters the optimizer has never touched whose gradients are all
// zero are skipped without allocating moment buffers: with zero moments
// and zero gradient the update is exactly zero, so the skip is
// bit-identical to the full computation (a decoder-only model leaves
// its encoder-shaped registry slots grad-free every step, and paying
// two moment vectors per such tensor was pure waste).
func (a *Adam) Step(p *Params) {
	a.t++
	bc1 := 1 - math.Pow(a.Beta1, float64(a.t))
	bc2 := 1 - math.Pow(a.Beta2, float64(a.t))
	for _, t := range p.Tensors() {
		m := a.m[t]
		if m == nil {
			if allZero(t.G) {
				continue
			}
			m = make([]float64, t.Size())
			a.m[t] = m
			a.v[t] = make([]float64, t.Size())
		}
		v := a.v[t]
		for i := range t.W {
			g := t.G[i]
			m[i] = a.Beta1*m[i] + (1-a.Beta1)*g
			v[i] = a.Beta2*v[i] + (1-a.Beta2)*g*g
			mh := m[i] / bc1
			vh := v[i] / bc2
			t.W[i] -= a.LR * mh / (math.Sqrt(vh) + a.Eps)
			t.G[i] = 0
		}
	}
}

// State exports the optimizer's step count and first/second moment
// vectors in the order of p.Tensors(), for checkpointing. The returned
// slices are copies. Tensors the optimizer has not stepped yet export
// zero moments.
func (a *Adam) State(p *Params) (t int, m, v [][]float64) {
	ts := p.Tensors()
	m = make([][]float64, len(ts))
	v = make([][]float64, len(ts))
	for i, tensor := range ts {
		m[i] = make([]float64, tensor.Size())
		v[i] = make([]float64, tensor.Size())
		copy(m[i], a.m[tensor])
		copy(v[i], a.v[tensor])
	}
	return a.t, m, v
}

// SetState restores a State snapshot captured against an identically
// shaped parameter registry, so a resumed training run continues with
// the exact moment estimates of the interrupted one.
func (a *Adam) SetState(p *Params, t int, m, v [][]float64) error {
	ts := p.Tensors()
	if len(m) != len(ts) || len(v) != len(ts) {
		return fmt.Errorf("nn: optimizer state has %d/%d moment vectors, model has %d tensors",
			len(m), len(v), len(ts))
	}
	for i, tensor := range ts {
		if len(m[i]) != tensor.Size() || len(v[i]) != tensor.Size() {
			return fmt.Errorf("nn: optimizer moment %d has %d/%d values, tensor has %d",
				i, len(m[i]), len(v[i]), tensor.Size())
		}
	}
	a.t = t
	a.m = make(map[*Tensor][]float64, len(ts))
	a.v = make(map[*Tensor][]float64, len(ts))
	for i, tensor := range ts {
		mi := make([]float64, len(m[i]))
		vi := make([]float64, len(v[i]))
		copy(mi, m[i])
		copy(vi, v[i])
		a.m[tensor] = mi
		a.v[tensor] = vi
	}
	return nil
}

// allZero reports whether every value of x is zero.
func allZero(x []float64) bool {
	for _, v := range x {
		if v != 0 {
			return false
		}
	}
	return true
}

// SGD is plain stochastic gradient descent (used by the small RL advisors).
type SGD struct {
	LR float64
}

// Step applies one SGD update and clears the gradients.
func (s *SGD) Step(p *Params) {
	for _, t := range p.Tensors() {
		for i := range t.W {
			t.W[i] -= s.LR * t.G[i]
			t.G[i] = 0
		}
	}
}
