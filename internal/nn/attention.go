package nn

import (
	"math"
	"math/rand"
)

// Attention implements the SQL context attention of Equation 3:
// e_i = v^T tanh(Wh·h_i + Ws·s_t + b), a = softmax(e), c_t = Σ a_i h_i.
type Attention struct {
	Wh, Ws, B, V *Tensor
}

// NewAttention builds attention over encoder states of size encDim and
// decoder states of size decDim, with an internal score dimension dim.
func NewAttention(p *Params, name string, encDim, decDim, dim int, rng *rand.Rand) *Attention {
	a := &Attention{
		Wh: RandTensor(dim, encDim, glorot(encDim, dim), rng),
		Ws: RandTensor(dim, decDim, glorot(decDim, dim), rng),
		B:  NewTensor(dim, 1),
		V:  RandTensor(1, dim, glorot(dim, 1), rng),
	}
	p.Add(name+".Wh", a.Wh)
	p.Add(name+".Ws", a.Ws)
	p.Add(name+".B", a.B)
	p.Add(name+".V", a.V)
	return a
}

// Context computes the attention context vector c_t over the encoder
// states given the decoder state s, returning it with the attention
// weights.
func (a *Attention) Context(g *Graph, encStates []*Tensor, s *Tensor) (*Tensor, []float64) {
	ws := g.Mul(a.Ws, s)
	scores := make([]*Tensor, len(encStates))
	for i, h := range encStates {
		e := g.Mul(a.V, g.Tanh(g.Add(g.Add(g.Mul(a.Wh, h), ws), a.B)))
		scores[i] = e
	}
	return g.Attend(scores, encStates)
}

// AttCache holds the per-sequence half of an attention computation: the
// packed encoder state matrix H (encDim × T, column i = h_i) and the
// projection P = Wh·H, computed lazily on the first ContextPre call and
// shared by every later decode step of the same sequence. Decoders that
// never attend (e.g. the vanilla seq2seq baseline) pay nothing for P.
type AttCache struct {
	H *Tensor // encDim × T packed encoder states
	P *Tensor // dim × T, Wh·H (nil until first ContextPre)
}

// ContextPre is Context over a packed encoder matrix with the Wh·h_i
// projections hoisted out of the per-step loop: one dim×encDim×T GEMM
// per sequence instead of T dim×encDim mat-vecs per decode step. The
// whole score/softmax/mix computation is a single fused op with one
// backward closure; all accumulations run in fixed ascending order, so
// results are bit-identical across rollout worker counts.
func (a *Attention) ContextPre(g *Graph, ac *AttCache, s *Tensor) (*Tensor, []float64) {
	if ac.P == nil {
		ac.P = g.Mul(a.Wh, ac.H)
	}
	u := g.Mul(a.Ws, s)
	dim := a.B.R
	encDim := ac.H.R
	T := ac.H.C
	P, H, B, V := ac.P, ac.H, a.B, a.V
	ctx := g.allocOut(encDim, 1)
	ta := g.floatsRaw(dim * T) // tanh activations, row d = score dim, col j = position
	w := g.floatsRaw(T)        // softmax weights
	for d := 0; d < dim; d++ {
		prow := P.W[d*T : d*T+T]
		tarow := ta[d*T : d*T+T]
		ub := u.W[d] + B.W[d]
		for j, pv := range prow {
			tarow[j] = math.Tanh(pv + ub)
		}
	}
	// e_j = Σ_d V[d]·ta[d,j], d ascending; softmax into w.
	var maxE float64
	for j := 0; j < T; j++ {
		var e float64
		for d := 0; d < dim; d++ {
			e += V.W[d] * ta[d*T+j]
		}
		w[j] = e
		if j == 0 || e > maxE {
			maxE = e
		}
	}
	var sumE float64
	for j, e := range w {
		ex := math.Exp(e - maxE)
		w[j] = ex
		sumE += ex
	}
	for j := range w {
		w[j] /= sumE
	}
	for i := 0; i < encDim; i++ {
		hrow := H.W[i*T : i*T+T]
		var cv float64
		for j, hv := range hrow {
			cv += w[j] * hv
		}
		ctx.W[i] = cv
	}
	if !g.NeedsGrad {
		return ctx, w
	}
	// Backward scratch: de is assigned before use and dots is zeroed
	// explicitly inside the closure.
	de := g.floatsRaw(T)
	dots := g.floatsRaw(T)
	g.addBack(func() {
		if allZeroF(ctx.G) {
			return
		}
		// dots[j] = Σ_i ctx.G[i]·H[i,j]; H.G[i,j] += w[j]·ctx.G[i].
		zeroFloats(dots)
		for i := 0; i < encDim; i++ {
			cg := ctx.G[i]
			hrow := H.W[i*T : i*T+T]
			grow := H.G[i*T : i*T+T]
			for j, hv := range hrow {
				dots[j] += cg * hv
				grow[j] += w[j] * cg
			}
		}
		// Softmax backward: de[j] = w[j]·(dots[j] − Σ_k w[k]·dots[k]).
		var avg float64
		for j, wv := range w {
			avg += wv * dots[j]
		}
		for j, wv := range w {
			de[j] = wv * (dots[j] - avg)
		}
		for d := 0; d < dim; d++ {
			tarow := ta[d*T : d*T+T]
			prow := P.G[d*T : d*T+T]
			vd := V.W[d]
			var vg, ug float64
			for j, dej := range de {
				t := tarow[j]
				vg += dej * t
				dp := dej * vd * (1 - t*t)
				prow[j] += dp
				ug += dp
			}
			V.G[d] += vg
			u.G[d] += ug
			B.G[d] += ug
		}
	})
	return ctx, w
}
