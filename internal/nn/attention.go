package nn

import "math/rand"

// Attention implements the SQL context attention of Equation 3:
// e_i = v^T tanh(Wh·h_i + Ws·s_t + b), a = softmax(e), c_t = Σ a_i h_i.
type Attention struct {
	Wh, Ws, B, V *Tensor
}

// NewAttention builds attention over encoder states of size encDim and
// decoder states of size decDim, with an internal score dimension dim.
func NewAttention(p *Params, name string, encDim, decDim, dim int, rng *rand.Rand) *Attention {
	a := &Attention{
		Wh: RandTensor(dim, encDim, glorot(encDim, dim), rng),
		Ws: RandTensor(dim, decDim, glorot(decDim, dim), rng),
		B:  NewTensor(dim, 1),
		V:  RandTensor(1, dim, glorot(dim, 1), rng),
	}
	p.Add(name+".Wh", a.Wh)
	p.Add(name+".Ws", a.Ws)
	p.Add(name+".B", a.B)
	p.Add(name+".V", a.V)
	return a
}

// Context computes the attention context vector c_t over the encoder
// states given the decoder state s, returning it with the attention
// weights.
func (a *Attention) Context(g *Graph, encStates []*Tensor, s *Tensor) (*Tensor, []float64) {
	ws := g.Mul(a.Ws, s)
	scores := make([]*Tensor, len(encStates))
	for i, h := range encStates {
		e := g.Mul(a.V, g.Tanh(g.Add(g.Add(g.Mul(a.Wh, h), ws), a.B)))
		scores[i] = e
	}
	return g.Attend(scores, encStates)
}
