package nn

import (
	"math"
	"math/rand"
)

// Params is a named registry of trainable tensors, used by the optimizer
// and for parameter counting (Table IV).
type Params struct {
	names   []string
	tensors []*Tensor
}

// Add registers a tensor under a name and returns it.
func (p *Params) Add(name string, t *Tensor) *Tensor {
	p.names = append(p.names, name)
	p.tensors = append(p.tensors, t)
	return t
}

// Merge registers every tensor of another registry under a prefix.
func (p *Params) Merge(prefix string, o *Params) {
	for i, t := range o.tensors {
		p.Add(prefix+"/"+o.names[i], t)
	}
}

// Tensors returns the registered tensors.
func (p *Params) Tensors() []*Tensor { return p.tensors }

// Count returns the total number of scalar parameters.
func (p *Params) Count() int {
	n := 0
	for _, t := range p.tensors {
		n += t.Size()
	}
	return n
}

// State deep-copies every parameter's values (for snapshot/restore, e.g.
// re-using a pretrained encoder across several RL runs).
func (p *Params) State() [][]float64 {
	out := make([][]float64, len(p.tensors))
	for i, t := range p.tensors {
		out[i] = append([]float64(nil), t.W...)
	}
	return out
}

// SetState restores values captured by State.
func (p *Params) SetState(state [][]float64) {
	if len(state) != len(p.tensors) {
		panic("nn: SetState length mismatch")
	}
	for i, t := range p.tensors {
		copy(t.W, state[i])
	}
}

// ZeroGrads clears all gradients.
func (p *Params) ZeroGrads() {
	for _, t := range p.tensors {
		t.ZeroGrad()
	}
}

// ClipGrads scales gradients so the global L2 norm is at most maxNorm,
// returning the pre-clip norm.
func (p *Params) ClipGrads(maxNorm float64) float64 {
	var sq float64
	for _, t := range p.tensors {
		for _, g := range t.G {
			sq += g * g
		}
	}
	if sq == 0 {
		// All-zero gradients (e.g. a skipped workload): nothing to scale.
		return 0
	}
	norm := math.Sqrt(sq)
	if norm > maxNorm && norm > 0 {
		scale := maxNorm / norm
		for _, t := range p.tensors {
			for i := range t.G {
				t.G[i] *= scale
			}
		}
	}
	return norm
}

// glorot returns the Glorot-uniform init scale for a fanIn×fanOut layer.
func glorot(fanIn, fanOut int) float64 {
	return math.Sqrt(6.0 / float64(fanIn+fanOut))
}

// Dense is a fully connected layer y = act(W·x + b).
type Dense struct {
	W, B *Tensor
}

// NewDense builds a Dense layer with Glorot init, registering its
// parameters under name.
func NewDense(p *Params, name string, in, out int, rng *rand.Rand) *Dense {
	d := &Dense{
		W: RandTensor(out, in, glorot(in, out), rng),
		B: NewTensor(out, 1),
	}
	p.Add(name+".W", d.W)
	p.Add(name+".B", d.B)
	return d
}

// Apply computes W·x + b.
func (d *Dense) Apply(g *Graph, x *Tensor) *Tensor {
	return g.Add(g.Mul(d.W, x), d.B)
}

// Embedding maps token ids to dense vectors.
type Embedding struct {
	Table *Tensor // vocab × dim
}

// NewEmbedding builds an embedding table.
func NewEmbedding(p *Params, name string, vocab, dim int, rng *rand.Rand) *Embedding {
	e := &Embedding{Table: RandTensor(vocab, dim, 0.1, rng)}
	p.Add(name+".table", e.Table)
	return e
}

// Lookup returns the embedding of token id as a column vector.
func (e *Embedding) Lookup(g *Graph, id int) *Tensor { return g.Lookup(e.Table, id) }

// Dim returns the embedding dimension.
func (e *Embedding) Dim() int { return e.Table.C }

// Vocab returns the vocabulary size.
func (e *Embedding) Vocab() int { return e.Table.R }

// GRUCell is a gated recurrent unit cell.
type GRUCell struct {
	Wz, Uz, Bz *Tensor
	Wr, Ur, Br *Tensor
	Wh, Uh, Bh *Tensor
	Hidden     int
}

// NewGRUCell builds a GRU cell mapping (in, hidden) -> hidden.
func NewGRUCell(p *Params, name string, in, hidden int, rng *rand.Rand) *GRUCell {
	sw := glorot(in, hidden)
	su := glorot(hidden, hidden)
	c := &GRUCell{
		Wz: RandTensor(hidden, in, sw, rng), Uz: RandTensor(hidden, hidden, su, rng), Bz: NewTensor(hidden, 1),
		Wr: RandTensor(hidden, in, sw, rng), Ur: RandTensor(hidden, hidden, su, rng), Br: NewTensor(hidden, 1),
		Wh: RandTensor(hidden, in, sw, rng), Uh: RandTensor(hidden, hidden, su, rng), Bh: NewTensor(hidden, 1),
		Hidden: hidden,
	}
	p.Add(name+".Wz", c.Wz)
	p.Add(name+".Uz", c.Uz)
	p.Add(name+".Bz", c.Bz)
	p.Add(name+".Wr", c.Wr)
	p.Add(name+".Ur", c.Ur)
	p.Add(name+".Br", c.Br)
	p.Add(name+".Wh", c.Wh)
	p.Add(name+".Uh", c.Uh)
	p.Add(name+".Bh", c.Bh)
	return c
}

// Step advances the cell one timestep: h_t = GRU(x_t, h_{t-1}).
//
// The whole cell is one fused op: the gate pre-activations are computed
// with the deterministic row-dot kernels of gemm.go into arena scratch
// and a single backward closure propagates every gradient, replacing
// the ~17 tensors and ~15 tape entries the op-composed formulation
// recorded per step. Accumulation order inside both passes is fixed, so
// results are bit-identical across rollout worker counts.
func (c *GRUCell) Step(g *Graph, x, hPrev *Tensor) *Tensor {
	h := c.Hidden
	in := x.R
	out := g.allocOut(h, 1)
	z := g.floatsRaw(h)
	r := g.floatsRaw(h)
	ht := g.floatsRaw(h)
	rh := g.floatsRaw(h)
	for i := 0; i < h; i++ {
		az := dot(c.Wz.W[i*in:i*in+in], x.W) + dot(c.Uz.W[i*h:i*h+h], hPrev.W) + c.Bz.W[i]
		ar := dot(c.Wr.W[i*in:i*in+in], x.W) + dot(c.Ur.W[i*h:i*h+h], hPrev.W) + c.Br.W[i]
		z[i] = 1 / (1 + math.Exp(-az))
		r[i] = 1 / (1 + math.Exp(-ar))
		rh[i] = r[i] * hPrev.W[i]
	}
	for i := 0; i < h; i++ {
		ah := dot(c.Wh.W[i*in:i*in+in], x.W) + dot(c.Uh.W[i*h:i*h+h], rh) + c.Bh.W[i]
		ht[i] = math.Tanh(ah)
		out.W[i] = (1-z[i])*hPrev.W[i] + z[i]*ht[i]
	}
	if !g.NeedsGrad {
		return out
	}
	// Backward scratch: daz/dar/dah are assigned before use and drh is
	// zeroed explicitly inside the closure, so none needs a zeroed carve.
	daz := g.floatsRaw(h)
	dar := g.floatsRaw(h)
	dah := g.floatsRaw(h)
	drh := g.floatsRaw(h)
	g.addBack(func() {
		dh := out.G
		for i := 0; i < h; i++ {
			dah[i] = dh[i] * z[i] * (1 - ht[i]*ht[i])
			daz[i] = dh[i] * (ht[i] - hPrev.W[i]) * z[i] * (1 - z[i])
			hPrev.G[i] += dh[i] * (1 - z[i])
		}
		// drh = Uhᵀ·dah, split into the reset gate and the carry path.
		zeroFloats(drh)
		addMulTvec(drh, c.Uh.W, dah, h, h)
		for i := 0; i < h; i++ {
			hPrev.G[i] += drh[i] * r[i]
			dar[i] = drh[i] * hPrev.W[i] * r[i] * (1 - r[i])
		}
		addOuter(c.Wz.G, daz, x.W)
		addOuter(c.Wr.G, dar, x.W)
		addOuter(c.Wh.G, dah, x.W)
		addOuter(c.Uz.G, daz, hPrev.W)
		addOuter(c.Ur.G, dar, hPrev.W)
		addOuter(c.Uh.G, dah, rh)
		addVec(c.Bz.G, daz)
		addVec(c.Br.G, dar)
		addVec(c.Bh.G, dah)
		addMulTvec(x.G, c.Wz.W, daz, h, in)
		addMulTvec(x.G, c.Wr.W, dar, h, in)
		addMulTvec(x.G, c.Wh.W, dah, h, in)
		addMulTvec(hPrev.G, c.Uz.W, daz, h, h)
		addMulTvec(hPrev.G, c.Ur.W, dar, h, h)
	})
	return out
}

// InitState returns a zero hidden state.
func (c *GRUCell) InitState() *Tensor { return NewTensor(c.Hidden, 1) }

// BiGRU is a bidirectional GRU encoder: a forward and a backward cell
// whose per-position states are concatenated (Section IV-A, Step 1).
type BiGRU struct {
	Fwd, Bwd *GRUCell
}

// NewBiGRU builds the encoder pair.
func NewBiGRU(p *Params, name string, in, hidden int, rng *rand.Rand) *BiGRU {
	return &BiGRU{
		Fwd: NewGRUCell(p, name+".fwd", in, hidden, rng),
		Bwd: NewGRUCell(p, name+".bwd", in, hidden, rng),
	}
}

// Encode maps a sequence of input vectors to per-position states
// h_i = [h^f_i ; h^b_i] of size 2·hidden.
func (b *BiGRU) Encode(g *Graph, xs []*Tensor) []*Tensor {
	n := len(xs)
	fw := make([]*Tensor, n)
	bw := make([]*Tensor, n)
	h := b.Fwd.InitState()
	for i := 0; i < n; i++ {
		h = b.Fwd.Step(g, xs[i], h)
		fw[i] = h
	}
	h = b.Bwd.InitState()
	for i := n - 1; i >= 0; i-- {
		h = b.Bwd.Step(g, xs[i], h)
		bw[i] = h
	}
	out := make([]*Tensor, n)
	for i := 0; i < n; i++ {
		out[i] = g.Concat(fw[i], bw[i])
	}
	return out
}

// EncodePacked is Encode returning the packed per-position state matrix
// H (2·hidden × n) whose column i is [h^f_i ; h^b_i] — the layout the
// prepared attention (AttCache) and the decoder bridge consume
// directly, replacing n per-position Concat tensors with one matrix.
func (b *BiGRU) EncodePacked(g *Graph, xs []*Tensor) *Tensor {
	n := len(xs)
	fw := make([]*Tensor, n)
	bw := make([]*Tensor, n)
	h := g.Alloc(b.Fwd.Hidden, 1)
	for i := 0; i < n; i++ {
		h = b.Fwd.Step(g, xs[i], h)
		fw[i] = h
	}
	h = g.Alloc(b.Bwd.Hidden, 1)
	for i := n - 1; i >= 0; i-- {
		h = b.Bwd.Step(g, xs[i], h)
		bw[i] = h
	}
	return g.PackColsPair(fw, bw)
}
