// Package nn is a small, dependency-free neural network library built for
// TRAP's generation models: float64 matrices, tape-based reverse-mode
// autodiff, dense/embedding/GRU layers, the Luong-style attention of the
// paper's Equation 3, masked softmax output layers (Equation 4), a
// transformer encoder for the pre-trained-language-model ablation
// (Figure 7 / Table IV), and an Adam optimizer with gradient clipping.
package nn

import "math/rand"

// Tensor is a dense row-major matrix with an accompanying gradient buffer.
type Tensor struct {
	R, C int
	W    []float64 // values
	G    []float64 // gradients, same layout
}

// NewTensor allocates a zero tensor.
func NewTensor(r, c int) *Tensor {
	return &Tensor{R: r, C: c, W: make([]float64, r*c), G: make([]float64, r*c)}
}

// RandTensor allocates a tensor with entries uniform in [-scale, scale].
func RandTensor(r, c int, scale float64, rng *rand.Rand) *Tensor {
	t := NewTensor(r, c)
	for i := range t.W {
		t.W[i] = (rng.Float64()*2 - 1) * scale
	}
	return t
}

// Vector allocates a column vector from values.
func Vector(vals ...float64) *Tensor {
	t := NewTensor(len(vals), 1)
	copy(t.W, vals)
	return t
}

// At returns element (i, j).
func (t *Tensor) At(i, j int) float64 { return t.W[i*t.C+j] }

// Set assigns element (i, j).
func (t *Tensor) Set(i, j int, v float64) { t.W[i*t.C+j] = v }

// Size returns the number of elements.
func (t *Tensor) Size() int { return len(t.W) }

// ZeroGrad clears the gradient buffer.
func (t *Tensor) ZeroGrad() {
	for i := range t.G {
		t.G[i] = 0
	}
}

// Clone copies values (gradients start at zero).
func (t *Tensor) Clone() *Tensor {
	c := NewTensor(t.R, t.C)
	copy(c.W, t.W)
	return c
}

// CopyFrom copies values from o (shapes must match).
func (t *Tensor) CopyFrom(o *Tensor) {
	if t.R != o.R || t.C != o.C {
		panic("nn: CopyFrom shape mismatch")
	}
	copy(t.W, o.W)
}

// Graph is a reverse-mode autodiff tape. Build the forward computation
// through Graph ops, seed gradients (e.g. via a loss), then call Backward.
//
// Every graph owns a contiguous bump arena (see arena.go): op outputs
// and scratch slices are carved front to back from retained blocks, and
// Reset rewinds the cursor, so a graph reused across tape runs reaches
// a steady state with zero heap allocation and replayed cycles receive
// the same backing memory in the same order. The lifetime rule is:
// tensors (and scratch slices) returned by graph ops are valid until
// the next Reset of the graph that produced them. A graph that is never
// Reset retains everything until the graph itself is unreachable.
// Graphs are not safe for concurrent use; use one per goroutine — the
// rollout pool gives every worker its own graph so the hot path shares
// no allocator state across workers.
type Graph struct {
	// NeedsGrad disables tape recording when false (pure inference).
	// Inference tensors carry no G buffer; flip this only right after
	// a Reset.
	NeedsGrad bool
	tape      []func()

	// ar backs tensor values, gradients and op scratch; hdrs is the
	// tensor-header slab recycled the same way (nHdr headers handed out
	// since the last Reset).
	ar   arena
	hdrs []*Tensor
	nHdr int
}

// NewGraph returns a graph; pass needsGrad=false for inference-only runs.
func NewGraph(needsGrad bool) *Graph { return &Graph{NeedsGrad: needsGrad} }

func (g *Graph) addBack(f func()) {
	if g.NeedsGrad {
		g.tape = append(g.tape, f)
	}
}

// Backward runs the tape in reverse, accumulating gradients into every
// participating tensor's G buffer.
func (g *Graph) Backward() {
	for i := len(g.tape) - 1; i >= 0; i-- {
		g.tape[i]()
	}
	g.tape = g.tape[:0]
}
