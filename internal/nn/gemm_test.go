package nn

import (
	"context"
	"math/rand"
	"testing"

	"github.com/trap-repro/trap/internal/par"
)

// Naive k-ascending references: the bit-identity contract of gemm.go is
// that the blocked kernels match these exactly (==, not within epsilon).

func naiveMul(a, b []float64, m, k, n int) []float64 {
	out := make([]float64, m*n)
	for i := 0; i < m; i++ {
		for j := 0; j < n; j++ {
			var s float64
			for p := 0; p < k; p++ {
				s += a[i*k+p] * b[p*n+j]
			}
			out[i*n+j] = s
		}
	}
	return out
}

func naiveAddMulNT(dA, dOut, b []float64, m, k, n int) {
	for i := 0; i < m; i++ {
		for p := 0; p < k; p++ {
			var s float64
			for j := 0; j < n; j++ {
				s += dOut[i*n+j] * b[p*n+j]
			}
			dA[i*k+p] += s
		}
	}
}

func naiveAddMulTN(dB, a, dOut []float64, m, k, n int) {
	for p := 0; p < k; p++ {
		for j := 0; j < n; j++ {
			var s float64
			for i := 0; i < m; i++ {
				s += a[i*k+p] * dOut[i*n+j]
			}
			dB[p*n+j] += s
		}
	}
}

func naiveAddMulTvec(dx, a, d []float64, m, k int) {
	for p := 0; p < k; p++ {
		var s float64
		for i := 0; i < m; i++ {
			s += a[i*k+p] * d[i]
		}
		dx[p] += s
	}
}

func randFloats(rng *rand.Rand, n int) []float64 {
	x := make([]float64, n)
	for i := range x {
		x[i] = rng.NormFloat64()
	}
	return x
}

func eqBits(t *testing.T, what string, got, want []float64) {
	t.Helper()
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("%s: element %d differs bit-wise: got %v want %v", what, i, got[i], want[i])
		}
	}
}

// gemmShapes covers the awkward cases: non-multiple-of-register-block
// row counts, 1×N, N×1, degenerate singletons, and a larger panel.
var gemmShapes = []struct{ m, k, n int }{
	{1, 1, 1},
	{1, 7, 1},
	{7, 1, 1},
	{1, 1, 7},
	{1, 5, 9},
	{9, 5, 1},
	{4, 4, 4},
	{5, 3, 2},
	{6, 7, 5},
	{13, 11, 17},
	{32, 16, 1},
	{33, 17, 3},
	{64, 64, 64},
}

func TestGEMMKernelsMatchNaiveBitwise(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for _, sh := range gemmShapes {
		m, k, n := sh.m, sh.k, sh.n
		a := randFloats(rng, m*k)
		b := randFloats(rng, k*n)
		want := naiveMul(a, b, m, k, n)
		got := make([]float64, m*n)
		if n == 1 {
			matvecTo(got, a, b, m, k)
		} else {
			mulTo(got, a, b, m, k, n)
		}
		eqBits(t, "mulTo", got, want)
		// Also exercise mulTo on the n==1 shapes: both paths must agree.
		mulTo(got, a, b, m, k, n)
		eqBits(t, "mulTo(n==1)", got, want)

		dOut := randFloats(rng, m*n)
		gotA := make([]float64, m*k)
		wantA := make([]float64, m*k)
		addMulNT(gotA, dOut, b, m, k, n)
		naiveAddMulNT(wantA, dOut, b, m, k, n)
		eqBits(t, "addMulNT", gotA, wantA)

		gotB := make([]float64, k*n)
		wantB := make([]float64, k*n)
		addMulTN(gotB, a, dOut, m, k, n)
		naiveAddMulTN(wantB, a, dOut, m, k, n)
		eqBits(t, "addMulTN", gotB, wantB)

		d := randFloats(rng, m)
		gotX := make([]float64, k)
		wantX := make([]float64, k)
		addMulTvec(gotX, a, d, m, k)
		naiveAddMulTvec(wantX, a, d, m, k)
		eqBits(t, "addMulTvec", gotX, wantX)
	}
}

func TestGEMMKernelsFuzzBitwise(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	for iter := 0; iter < 200; iter++ {
		m := 1 + rng.Intn(19)
		k := 1 + rng.Intn(19)
		n := 1 + rng.Intn(19)
		a := randFloats(rng, m*k)
		b := randFloats(rng, k*n)
		got := make([]float64, m*n)
		mulTo(got, a, b, m, k, n)
		eqBits(t, "mulTo(fuzz)", got, naiveMul(a, b, m, k, n))
		if n == 1 {
			mv := make([]float64, m)
			matvecTo(mv, a, b, m, k)
			eqBits(t, "matvecTo(fuzz)", mv, got)
		}
	}
}

// TestGEMMBitIdenticalAcrossWorkers partitions the output rows of one
// GEMM across 1, 2 and 4 workers (the way batched training distributes
// independent trajectories) and asserts the assembled product is
// bit-identical for every worker count: blocking only ever spans
// independent output elements, never one element's reduction chain.
func TestGEMMBitIdenticalAcrossWorkers(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	const m, k, n = 37, 23, 29
	a := randFloats(rng, m*k)
	b := randFloats(rng, k*n)
	ref := make([]float64, m*n)
	mulTo(ref, a, b, m, k, n)
	for _, workers := range []int{1, 2, 4} {
		out := make([]float64, m*n)
		chunk := (m + workers - 1) / workers
		nChunks := (m + chunk - 1) / chunk
		err := par.ForEach(context.Background(), workers, nChunks, func(c int) error {
			lo := c * chunk
			hi := lo + chunk
			if hi > m {
				hi = m
			}
			mulTo(out[lo*n:hi*n], a[lo*k:hi*k], b, hi-lo, k, n)
			return nil
		})
		if err != nil {
			t.Fatal(err)
		}
		eqBits(t, "workers", out, ref)
	}
}

// TestArenaTrimReleasesOneOffPeak pins satellite behavior: a single
// outsized batch must not pin its high-water memory once steady-state
// cycles resume — within two trim windows the retained gauge falls back
// below the spike.
func TestArenaTrimReleasesOneOffPeak(t *testing.T) {
	g := NewGraph(false)
	const big = 1 << 20 // 8 MiB of float64
	g.floats(big)
	g.Reset()
	spike := ArenaRetainedBytes()
	for i := 0; i < 2*arenaTrimWindow+1; i++ {
		g.floats(64)
		g.Reset()
	}
	after := ArenaRetainedBytes()
	if after > spike-big*8/2 {
		t.Fatalf("arena retained %d bytes after trim window; spike was %d — one-off batch still pinned", after, spike)
	}
}
