package nn

import (
	"math/rand"
	"reflect"
	"testing"
)

// TestArenaReuseAfterReset proves the free-list contract: after Reset,
// an equal-sized Alloc returns the recycled backing memory, zeroed.
func TestArenaReuseAfterReset(t *testing.T) {
	g := NewGraph(true)
	a := g.Alloc(4, 3)
	for i := range a.W {
		a.W[i] = float64(i) + 1
		a.G[i] = -1
	}
	first := &a.W[0]
	g.Reset()
	b := g.Alloc(3, 4) // same element count, different shape
	if &b.W[0] != first {
		t.Fatalf("Alloc after Reset did not recycle the tensor")
	}
	if b.R != 3 || b.C != 4 {
		t.Fatalf("recycled tensor has shape %dx%d, want 3x4", b.R, b.C)
	}
	for i := range b.W {
		if b.W[i] != 0 || b.G[i] != 0 {
			t.Fatalf("recycled tensor not zeroed at %d: W=%v G=%v", i, b.W[i], b.G[i])
		}
	}
	// Different size must not hit the 12-element free list.
	c := g.Alloc(2, 2)
	if &c.W[0] == first {
		t.Fatalf("Alloc of a different size reused mismatched memory")
	}
}

func TestArenaStatsAdvance(t *testing.T) {
	h0, m0 := ArenaStats()
	g := NewGraph(false)
	g.Alloc(2, 2)
	g.Reset()
	g.Alloc(2, 2)
	h1, m1 := ArenaStats()
	if m1-m0 < 1 {
		t.Fatalf("expected at least one arena miss, got %d", m1-m0)
	}
	if h1-h0 < 1 {
		t.Fatalf("expected at least one arena hit, got %d", h1-h0)
	}
}

// trainOnce runs a small GRU + attention training loop. When reuse is
// true a single graph is Reset between steps (arena path); otherwise a
// fresh graph is built per step (the pre-arena behavior). Both must
// produce bit-identical parameters.
func trainOnce(t *testing.T, reuse bool) [][]float64 {
	t.Helper()
	rng := rand.New(rand.NewSource(7))
	p := &Params{}
	emb := NewEmbedding(p, "emb", 12, 6, rng)
	cell := NewGRUCell(p, "gru", 6, 6, rng)
	out := NewDense(p, "out", 6, 5, rng)
	opt := NewAdam(0.01)
	g := NewGraph(true)
	for step := 0; step < 20; step++ {
		if !reuse {
			g = NewGraph(true)
		}
		h := cell.InitState()
		for tok := 0; tok < 4; tok++ {
			h = cell.Step(g, emb.Lookup(g, (step+tok)%12), h)
		}
		logits := out.Apply(g, h)
		CrossEntropy(logits, step%5, 1)
		g.Backward()
		p.ClipGrads(5)
		opt.Step(p)
		if reuse {
			g.Reset()
		}
	}
	return p.State()
}

func TestArenaTrainingBitIdentical(t *testing.T) {
	fresh := trainOnce(t, false)
	reused := trainOnce(t, true)
	if !reflect.DeepEqual(fresh, reused) {
		t.Fatalf("arena-reused training diverged from fresh-graph training")
	}
}

// TestAdamZeroGradSkipBitIdentical checks the skip path against an
// optimizer whose moments were force-allocated (as after a checkpoint
// restore): both must move the parameters identically.
func TestAdamZeroGradSkipBitIdentical(t *testing.T) {
	build := func() (*Params, *Tensor, *Tensor) {
		p := &Params{}
		hot := p.Add("hot", NewTensor(3, 2))
		cold := p.Add("cold", NewTensor(4, 4))
		for i := range hot.W {
			hot.W[i] = 0.5 * float64(i+1)
		}
		for i := range cold.W {
			cold.W[i] = -0.25 * float64(i+1)
		}
		return p, hot, cold
	}
	pa, hotA, _ := build()
	pb, hotB, _ := build()

	a := NewAdam(0.01) // skip path: cold tensor never gets moments
	b := NewAdam(0.01)
	// Force-allocate b's moments with zeros, as SetState does on resume.
	tt, m, v := b.State(pb)
	if err := b.SetState(pb, tt, m, v); err != nil {
		t.Fatal(err)
	}
	for step := 0; step < 5; step++ {
		for i := range hotA.G {
			hotA.G[i] = float64(step) - 1.5
			hotB.G[i] = float64(step) - 1.5
		}
		a.Step(pa)
		b.Step(pb)
	}
	if !reflect.DeepEqual(pa.State(), pb.State()) {
		t.Fatalf("zero-grad skip produced different parameters than allocated moments")
	}
	if a.m[pa.Tensors()[1]] != nil {
		t.Fatalf("skip path allocated moments for an all-zero-grad tensor")
	}
}

func TestSoftmaxIntoMatchesSoftmax(t *testing.T) {
	logits := Vector(0.3, -1.2, 2.5, 0)
	want := Softmax(logits)
	scratch := make([]float64, 16)
	got := SoftmaxInto(scratch, logits)
	if !reflect.DeepEqual(want, got) {
		t.Fatalf("SoftmaxInto = %v, want %v", got, want)
	}
	if &got[0] != &scratch[0] {
		t.Fatalf("SoftmaxInto did not reuse the provided scratch")
	}
}

func TestClipGradsZeroNorm(t *testing.T) {
	p := &Params{}
	w := p.Add("w", NewTensor(2, 2))
	if norm := p.ClipGrads(5); norm != 0 {
		t.Fatalf("ClipGrads on zero grads = %v, want 0", norm)
	}
	for i := range w.G {
		if w.G[i] != 0 {
			t.Fatalf("ClipGrads mutated zero gradients")
		}
	}
}

// TestAttendScratchValidUntilReset pins the documented lifetime of the
// weights slice Attend returns.
func TestAttendScratchValidUntilReset(t *testing.T) {
	g := NewGraph(false)
	scores := []*Tensor{Vector(1), Vector(2), Vector(3)}
	values := []*Tensor{Vector(1, 0), Vector(0, 1), Vector(1, 1)}
	_, a := g.Attend(scores, values)
	var sum float64
	for _, w := range a {
		sum += w
	}
	if sum < 0.999 || sum > 1.001 {
		t.Fatalf("attention weights sum to %v, want 1", sum)
	}
	// The scratch arena is LIFO and Attend takes two same-length slices
	// (weights + backward dots), so identical calls cycle between the
	// same two blocks: the first and third calls share backing memory.
	g.Reset()
	g.Attend(scores, values)
	g.Reset()
	_, b := g.Attend(scores, values)
	if &a[0] != &b[0] {
		t.Fatalf("Attend weights were not recycled after Reset")
	}
}
