package nn

import (
	"math"
	"sync"
)

// Mul returns the matrix product a·b.
func (g *Graph) Mul(a, b *Tensor) *Tensor {
	if a.C != b.R {
		panic("nn: Mul shape mismatch")
	}
	out := g.Alloc(a.R, b.C)
	for i := 0; i < a.R; i++ {
		for k := 0; k < a.C; k++ {
			av := a.W[i*a.C+k]
			if av == 0 {
				continue
			}
			for j := 0; j < b.C; j++ {
				out.W[i*out.C+j] += av * b.W[k*b.C+j]
			}
		}
	}
	g.addBack(func() {
		for i := 0; i < a.R; i++ {
			for j := 0; j < b.C; j++ {
				d := out.G[i*out.C+j]
				if d == 0 {
					continue
				}
				for k := 0; k < a.C; k++ {
					a.G[i*a.C+k] += d * b.W[k*b.C+j]
					b.G[k*b.C+j] += d * a.W[i*a.C+k]
				}
			}
		}
	})
	return out
}

// Add returns a + b (same shape).
func (g *Graph) Add(a, b *Tensor) *Tensor {
	if a.R != b.R || a.C != b.C {
		panic("nn: Add shape mismatch")
	}
	out := g.Alloc(a.R, a.C)
	for i := range out.W {
		out.W[i] = a.W[i] + b.W[i]
	}
	g.addBack(func() {
		for i := range out.G {
			a.G[i] += out.G[i]
			b.G[i] += out.G[i]
		}
	})
	return out
}

// Hadamard returns the elementwise product a ∘ b.
func (g *Graph) Hadamard(a, b *Tensor) *Tensor {
	if a.R != b.R || a.C != b.C {
		panic("nn: Hadamard shape mismatch")
	}
	out := g.Alloc(a.R, a.C)
	for i := range out.W {
		out.W[i] = a.W[i] * b.W[i]
	}
	g.addBack(func() {
		for i := range out.G {
			a.G[i] += out.G[i] * b.W[i]
			b.G[i] += out.G[i] * a.W[i]
		}
	})
	return out
}

// Scale returns s·a for a constant s.
func (g *Graph) Scale(a *Tensor, s float64) *Tensor {
	out := g.Alloc(a.R, a.C)
	for i := range out.W {
		out.W[i] = a.W[i] * s
	}
	g.addBack(func() {
		for i := range out.G {
			a.G[i] += out.G[i] * s
		}
	})
	return out
}

// AddConst returns a + c elementwise for a constant c.
func (g *Graph) AddConst(a *Tensor, c float64) *Tensor {
	out := g.Alloc(a.R, a.C)
	for i := range out.W {
		out.W[i] = a.W[i] + c
	}
	g.addBack(func() {
		for i := range out.G {
			a.G[i] += out.G[i]
		}
	})
	return out
}

// OneMinus returns 1 - a elementwise.
func (g *Graph) OneMinus(a *Tensor) *Tensor {
	out := g.Alloc(a.R, a.C)
	for i := range out.W {
		out.W[i] = 1 - a.W[i]
	}
	g.addBack(func() {
		for i := range out.G {
			a.G[i] -= out.G[i]
		}
	})
	return out
}

// Tanh applies tanh elementwise.
func (g *Graph) Tanh(a *Tensor) *Tensor {
	out := g.Alloc(a.R, a.C)
	for i := range out.W {
		out.W[i] = math.Tanh(a.W[i])
	}
	g.addBack(func() {
		for i := range out.G {
			a.G[i] += out.G[i] * (1 - out.W[i]*out.W[i])
		}
	})
	return out
}

// Sigmoid applies the logistic function elementwise.
func (g *Graph) Sigmoid(a *Tensor) *Tensor {
	out := g.Alloc(a.R, a.C)
	for i := range out.W {
		out.W[i] = 1 / (1 + math.Exp(-a.W[i]))
	}
	g.addBack(func() {
		for i := range out.G {
			a.G[i] += out.G[i] * out.W[i] * (1 - out.W[i])
		}
	})
	return out
}

// Relu applies max(0, x) elementwise.
func (g *Graph) Relu(a *Tensor) *Tensor {
	out := g.Alloc(a.R, a.C)
	for i := range out.W {
		if a.W[i] > 0 {
			out.W[i] = a.W[i]
		}
	}
	g.addBack(func() {
		for i := range out.G {
			if a.W[i] > 0 {
				a.G[i] += out.G[i]
			}
		}
	})
	return out
}

// Concat stacks column vectors vertically.
func (g *Graph) Concat(parts ...*Tensor) *Tensor {
	total := 0
	for _, p := range parts {
		if p.C != 1 {
			panic("nn: Concat expects column vectors")
		}
		total += p.R
	}
	out := g.Alloc(total, 1)
	off := 0
	for _, p := range parts {
		copy(out.W[off:off+p.R], p.W)
		off += p.R
	}
	g.addBack(func() {
		off := 0
		for _, p := range parts {
			for i := 0; i < p.R; i++ {
				p.G[i] += out.G[off+i]
			}
			off += p.R
		}
	})
	return out
}

// Lookup returns row `row` of the embedding matrix m as a column vector.
func (g *Graph) Lookup(m *Tensor, row int) *Tensor {
	out := g.Alloc(m.C, 1)
	copy(out.W, m.W[row*m.C:(row+1)*m.C])
	g.addBack(func() {
		for j := 0; j < m.C; j++ {
			m.G[row*m.C+j] += out.G[j]
		}
	})
	return out
}

// SelectedAffine computes out[k] = W[rows[k], :]·x + b[rows[k]] for a
// subset of rows — the masked output layer of Equation 4, evaluated only
// on the legitimate vocabulary region.
func (g *Graph) SelectedAffine(w, b, x *Tensor, rows []int) *Tensor {
	if w.C != x.R || x.C != 1 {
		panic("nn: SelectedAffine shape mismatch")
	}
	out := g.Alloc(len(rows), 1)
	for k, r := range rows {
		s := b.W[r]
		for j := 0; j < w.C; j++ {
			s += w.W[r*w.C+j] * x.W[j]
		}
		out.W[k] = s
	}
	g.addBack(func() {
		for k, r := range rows {
			d := out.G[k]
			if d == 0 {
				continue
			}
			b.G[r] += d
			for j := 0; j < w.C; j++ {
				w.G[r*w.C+j] += d * x.W[j]
				x.G[j] += d * w.W[r*w.C+j]
			}
		}
	})
	return out
}

// Attend computes softmax attention: weights a = softmax(scores), output
// ctx = Σ a_i values[i]. scores are 1×1 tensors, values equal-shaped
// column vectors. It returns the context vector and the (constant)
// weights; both are arena-backed and valid until the graph's Reset.
func (g *Graph) Attend(scores []*Tensor, values []*Tensor) (*Tensor, []float64) {
	n := len(scores)
	if n == 0 || n != len(values) {
		panic("nn: Attend needs matching non-empty scores/values")
	}
	a := g.floats(n)
	maxs := math.Inf(-1)
	for i, s := range scores {
		if s.W[0] > maxs {
			maxs = s.W[0]
		}
		_ = i
	}
	var sum float64
	for i, s := range scores {
		a[i] = math.Exp(s.W[0] - maxs)
		sum += a[i]
	}
	for i := range a {
		a[i] /= sum
	}
	d := values[0].R
	ctx := g.Alloc(d, 1)
	for i, v := range values {
		for j := 0; j < d; j++ {
			ctx.W[j] += a[i] * v.W[j]
		}
	}
	dots := g.floats(n) // backward scratch, preallocated on the forward pass
	g.addBack(func() {
		// dot[i] = dctx · values[i]
		zeroFloats(dots)
		var avg float64
		for i, v := range values {
			for j := 0; j < d; j++ {
				dots[i] += ctx.G[j] * v.W[j]
			}
			avg += a[i] * dots[i]
		}
		for i, v := range values {
			scores[i].G[0] += a[i] * (dots[i] - avg)
			for j := 0; j < d; j++ {
				v.G[j] += a[i] * ctx.G[j]
			}
		}
	})
	return ctx, a
}

// Softmax returns the probabilities of a logits column vector (no grad;
// use the cross-entropy helpers for training).
func Softmax(logits *Tensor) []float64 {
	return SoftmaxInto(nil, logits)
}

// SoftmaxInto computes Softmax into dst, reusing its capacity when it is
// large enough (allocating otherwise), and returns the probability
// slice. Hot decode loops keep a scratch slice and pass it back in to
// avoid a per-step allocation.
func SoftmaxInto(dst []float64, logits *Tensor) []float64 {
	if cap(dst) < logits.R {
		dst = make([]float64, logits.R)
	}
	p := dst[:logits.R]
	maxv := math.Inf(-1)
	for i := 0; i < logits.R; i++ {
		if logits.W[i] > maxv {
			maxv = logits.W[i]
		}
	}
	var sum float64
	for i := range p {
		p[i] = math.Exp(logits.W[i] - maxv)
		sum += p[i]
	}
	for i := range p {
		p[i] /= sum
	}
	return p
}

// probPool recycles the probability scratch of CrossEntropy so the
// training loss costs no allocation per step at steady state.
var probPool = sync.Pool{New: func() any { return new([]float64) }}

// CrossEntropy seeds gradients for -weight·log softmax(logits)[target] and
// returns the loss value. Call Graph.Backward afterwards (gradients from
// several losses accumulate). A negative weight implements
// policy-gradient ascent on log-probability.
func CrossEntropy(logits *Tensor, target int, weight float64) float64 {
	buf := probPool.Get().(*[]float64)
	p := SoftmaxInto(*buf, logits)
	loss := -weight * math.Log(math.Max(p[target], 1e-12))
	for i := range p {
		grad := p[i]
		if i == target {
			grad -= 1
		}
		logits.G[i] += weight * grad
	}
	*buf = p
	probPool.Put(buf)
	return loss
}

// MSELoss seeds gradients for 0.5·(pred - target)² on a 1×1 tensor and
// returns the loss.
func MSELoss(pred *Tensor, target float64) float64 {
	d := pred.W[0] - target
	pred.G[0] += d
	return 0.5 * d * d
}
