package nn

import (
	"math"
	"sync"
)

// Mul returns the matrix product a·b through the blocked deterministic
// kernels of gemm.go (matvec when b is a column vector).
func (g *Graph) Mul(a, b *Tensor) *Tensor {
	if a.C != b.R {
		panic("nn: Mul shape mismatch")
	}
	out := g.allocOut(a.R, b.C)
	if b.C == 1 {
		matvecTo(out.W, a.W, b.W, a.R, a.C)
	} else {
		mulTo(out.W, a.W, b.W, a.R, a.C, b.C)
	}
	g.addBack(func() {
		if allZeroF(out.G) {
			return
		}
		if b.C == 1 {
			addOuter(a.G, out.G, b.W)
			addMulTvec(b.G, a.W, out.G, a.R, a.C)
		} else {
			addMulNT(a.G, out.G, b.W, a.R, a.C, b.C)
			addMulTN(b.G, a.W, out.G, a.R, a.C, b.C)
		}
	})
	return out
}

// PackCols stacks n equal-length column vectors side by side into a d×n
// matrix, turning a sequence of per-position vectors into one operand
// for a real GEMM.
func (g *Graph) PackCols(parts ...*Tensor) *Tensor {
	n := len(parts)
	if n == 0 {
		panic("nn: PackCols needs at least one column")
	}
	d := parts[0].R
	out := g.allocOut(d, n)
	for j, p := range parts {
		if p.R != d || p.C != 1 {
			panic("nn: PackCols expects equal-length column vectors")
		}
		for i := 0; i < d; i++ {
			out.W[i*n+j] = p.W[i]
		}
	}
	g.addBack(func() {
		for j, p := range parts {
			for i := 0; i < d; i++ {
				p.G[i] += out.G[i*n+j]
			}
		}
	})
	return out
}

// PackColsPair packs two equal-length vector sequences into one matrix
// whose column t is [top[t]; bot[t]] — the bidirectional encoder's
// per-position state matrix, built without a per-position Concat.
func (g *Graph) PackColsPair(top, bot []*Tensor) *Tensor {
	n := len(top)
	if n == 0 || n != len(bot) {
		panic("nn: PackColsPair needs matching non-empty sequences")
	}
	dt, db := top[0].R, bot[0].R
	out := g.allocOut(dt+db, n)
	for j := 0; j < n; j++ {
		for i := 0; i < dt; i++ {
			out.W[i*n+j] = top[j].W[i]
		}
		for i := 0; i < db; i++ {
			out.W[(dt+i)*n+j] = bot[j].W[i]
		}
	}
	g.addBack(func() {
		for j := 0; j < n; j++ {
			for i := 0; i < dt; i++ {
				top[j].G[i] += out.G[i*n+j]
			}
			for i := 0; i < db; i++ {
				bot[j].G[i] += out.G[(dt+i)*n+j]
			}
		}
	})
	return out
}

// Col returns column j of m as a column vector.
func (g *Graph) Col(m *Tensor, j int) *Tensor {
	out := g.allocOut(m.R, 1)
	for i := 0; i < m.R; i++ {
		out.W[i] = m.W[i*m.C+j]
	}
	g.addBack(func() {
		for i := 0; i < m.R; i++ {
			m.G[i*m.C+j] += out.G[i]
		}
	})
	return out
}

// VStack stacks equal-width matrices vertically (by rows).
func (g *Graph) VStack(parts ...*Tensor) *Tensor {
	if len(parts) == 0 {
		panic("nn: VStack needs at least one part")
	}
	c := parts[0].C
	rows := 0
	for _, p := range parts {
		if p.C != c {
			panic("nn: VStack width mismatch")
		}
		rows += p.R
	}
	out := g.allocOut(rows, c)
	off := 0
	for _, p := range parts {
		copy(out.W[off:off+len(p.W)], p.W)
		off += len(p.W)
	}
	g.addBack(func() {
		off := 0
		for _, p := range parts {
			addVec(p.G, out.G[off:off+len(p.W)])
			off += len(p.W)
		}
	})
	return out
}

// AddColBias adds a column vector b to every column of m.
func (g *Graph) AddColBias(m, b *Tensor) *Tensor {
	if b.R != m.R || b.C != 1 {
		panic("nn: AddColBias shape mismatch")
	}
	out := g.allocOut(m.R, m.C)
	n := m.C
	for i := 0; i < m.R; i++ {
		bv := b.W[i]
		row := m.W[i*n : i*n+n]
		orow := out.W[i*n : i*n+n]
		for j, v := range row {
			orow[j] = v + bv
		}
	}
	g.addBack(func() {
		addVec(m.G, out.G)
		for i := 0; i < m.R; i++ {
			b.G[i] += sum(out.G[i*n : i*n+n])
		}
	})
	return out
}

// sum adds a slice in ascending index order.
func sum(x []float64) float64 {
	var s float64
	for _, v := range x {
		s += v
	}
	return s
}

// Add returns a + b (same shape).
func (g *Graph) Add(a, b *Tensor) *Tensor {
	if a.R != b.R || a.C != b.C {
		panic("nn: Add shape mismatch")
	}
	out := g.allocOut(a.R, a.C)
	for i := range out.W {
		out.W[i] = a.W[i] + b.W[i]
	}
	g.addBack(func() {
		for i := range out.G {
			a.G[i] += out.G[i]
			b.G[i] += out.G[i]
		}
	})
	return out
}

// Hadamard returns the elementwise product a ∘ b.
func (g *Graph) Hadamard(a, b *Tensor) *Tensor {
	if a.R != b.R || a.C != b.C {
		panic("nn: Hadamard shape mismatch")
	}
	out := g.allocOut(a.R, a.C)
	for i := range out.W {
		out.W[i] = a.W[i] * b.W[i]
	}
	g.addBack(func() {
		for i := range out.G {
			a.G[i] += out.G[i] * b.W[i]
			b.G[i] += out.G[i] * a.W[i]
		}
	})
	return out
}

// Scale returns s·a for a constant s.
func (g *Graph) Scale(a *Tensor, s float64) *Tensor {
	out := g.allocOut(a.R, a.C)
	for i := range out.W {
		out.W[i] = a.W[i] * s
	}
	g.addBack(func() {
		for i := range out.G {
			a.G[i] += out.G[i] * s
		}
	})
	return out
}

// AddConst returns a + c elementwise for a constant c.
func (g *Graph) AddConst(a *Tensor, c float64) *Tensor {
	out := g.allocOut(a.R, a.C)
	for i := range out.W {
		out.W[i] = a.W[i] + c
	}
	g.addBack(func() {
		for i := range out.G {
			a.G[i] += out.G[i]
		}
	})
	return out
}

// OneMinus returns 1 - a elementwise.
func (g *Graph) OneMinus(a *Tensor) *Tensor {
	out := g.allocOut(a.R, a.C)
	for i := range out.W {
		out.W[i] = 1 - a.W[i]
	}
	g.addBack(func() {
		for i := range out.G {
			a.G[i] -= out.G[i]
		}
	})
	return out
}

// Tanh applies tanh elementwise.
func (g *Graph) Tanh(a *Tensor) *Tensor {
	out := g.allocOut(a.R, a.C)
	for i := range out.W {
		out.W[i] = math.Tanh(a.W[i])
	}
	g.addBack(func() {
		for i := range out.G {
			a.G[i] += out.G[i] * (1 - out.W[i]*out.W[i])
		}
	})
	return out
}

// Sigmoid applies the logistic function elementwise.
func (g *Graph) Sigmoid(a *Tensor) *Tensor {
	out := g.allocOut(a.R, a.C)
	for i := range out.W {
		out.W[i] = 1 / (1 + math.Exp(-a.W[i]))
	}
	g.addBack(func() {
		for i := range out.G {
			a.G[i] += out.G[i] * out.W[i] * (1 - out.W[i])
		}
	})
	return out
}

// Relu applies max(0, x) elementwise.
func (g *Graph) Relu(a *Tensor) *Tensor {
	out := g.allocOut(a.R, a.C)
	for i := range out.W {
		if a.W[i] > 0 {
			out.W[i] = a.W[i]
		} else {
			out.W[i] = 0
		}
	}
	g.addBack(func() {
		for i := range out.G {
			if a.W[i] > 0 {
				a.G[i] += out.G[i]
			}
		}
	})
	return out
}

// Concat stacks column vectors vertically.
func (g *Graph) Concat(parts ...*Tensor) *Tensor {
	total := 0
	for _, p := range parts {
		if p.C != 1 {
			panic("nn: Concat expects column vectors")
		}
		total += p.R
	}
	out := g.allocOut(total, 1)
	off := 0
	for _, p := range parts {
		copy(out.W[off:off+p.R], p.W)
		off += p.R
	}
	g.addBack(func() {
		off := 0
		for _, p := range parts {
			for i := 0; i < p.R; i++ {
				p.G[i] += out.G[off+i]
			}
			off += p.R
		}
	})
	return out
}

// Lookup returns row `row` of the embedding matrix m as a column
// vector. The result is a view sharing m's weight (and, when recording,
// gradient) storage for that row: a lookup costs one tensor header, no
// copy and no backward closure. This relies on every op accumulating
// into its inputs' G with += — consumer gradients land directly in m's
// gradient row, still in deterministic reverse-tape order.
func (g *Graph) Lookup(m *Tensor, row int) *Tensor {
	t := g.hdr()
	t.R, t.C = m.C, 1
	t.W = m.W[row*m.C : (row+1)*m.C]
	if g.NeedsGrad && m.G != nil {
		t.G = m.G[row*m.C : (row+1)*m.C]
	} else {
		t.G = nil
	}
	return t
}

// SelectedAffine computes out[k] = W[rows[k], :]·x + b[rows[k]] for a
// subset of rows — the masked output layer of Equation 4, evaluated only
// on the legitimate vocabulary region.
func (g *Graph) SelectedAffine(w, b, x *Tensor, rows []int) *Tensor {
	if w.C != x.R || x.C != 1 {
		panic("nn: SelectedAffine shape mismatch")
	}
	out := g.allocOut(len(rows), 1)
	for k, r := range rows {
		s := b.W[r]
		for j := 0; j < w.C; j++ {
			s += w.W[r*w.C+j] * x.W[j]
		}
		out.W[k] = s
	}
	g.addBack(func() {
		for k, r := range rows {
			d := out.G[k]
			if d == 0 {
				continue
			}
			b.G[r] += d
			for j := 0; j < w.C; j++ {
				w.G[r*w.C+j] += d * x.W[j]
				x.G[j] += d * w.W[r*w.C+j]
			}
		}
	})
	return out
}

// Attend computes softmax attention: weights a = softmax(scores), output
// ctx = Σ a_i values[i]. scores are 1×1 tensors, values equal-shaped
// column vectors. It returns the context vector and the (constant)
// weights; both are arena-backed and valid until the graph's Reset.
func (g *Graph) Attend(scores []*Tensor, values []*Tensor) (*Tensor, []float64) {
	n := len(scores)
	if n == 0 || n != len(values) {
		panic("nn: Attend needs matching non-empty scores/values")
	}
	a := g.floatsRaw(n)
	maxs := math.Inf(-1)
	for i, s := range scores {
		if s.W[0] > maxs {
			maxs = s.W[0]
		}
		_ = i
	}
	var sum float64
	for i, s := range scores {
		a[i] = math.Exp(s.W[0] - maxs)
		sum += a[i]
	}
	for i := range a {
		a[i] /= sum
	}
	d := values[0].R
	ctx := g.Alloc(d, 1)
	for i, v := range values {
		for j := 0; j < d; j++ {
			ctx.W[j] += a[i] * v.W[j]
		}
	}
	dots := g.floatsRaw(n) // backward scratch, zeroed explicitly before use
	g.addBack(func() {
		// dot[i] = dctx · values[i]
		zeroFloats(dots)
		var avg float64
		for i, v := range values {
			for j := 0; j < d; j++ {
				dots[i] += ctx.G[j] * v.W[j]
			}
			avg += a[i] * dots[i]
		}
		for i, v := range values {
			scores[i].G[0] += a[i] * (dots[i] - avg)
			for j := 0; j < d; j++ {
				v.G[j] += a[i] * ctx.G[j]
			}
		}
	})
	return ctx, a
}

// Softmax returns the probabilities of a logits column vector (no grad;
// use the cross-entropy helpers for training).
func Softmax(logits *Tensor) []float64 {
	return SoftmaxInto(nil, logits)
}

// SoftmaxInto computes Softmax into dst, reusing its capacity when it is
// large enough (allocating otherwise), and returns the probability
// slice. Hot decode loops keep a scratch slice and pass it back in to
// avoid a per-step allocation.
func SoftmaxInto(dst []float64, logits *Tensor) []float64 {
	if cap(dst) < logits.R {
		dst = make([]float64, logits.R)
	}
	p := dst[:logits.R]
	maxv := math.Inf(-1)
	for i := 0; i < logits.R; i++ {
		if logits.W[i] > maxv {
			maxv = logits.W[i]
		}
	}
	var sum float64
	for i := range p {
		p[i] = math.Exp(logits.W[i] - maxv)
		sum += p[i]
	}
	for i := range p {
		p[i] /= sum
	}
	return p
}

// probPool recycles the probability scratch of CrossEntropy so the
// training loss costs no allocation per step at steady state.
var probPool = sync.Pool{New: func() any { return new([]float64) }}

// CrossEntropy seeds gradients for -weight·log softmax(logits)[target] and
// returns the loss value. Call Graph.Backward afterwards (gradients from
// several losses accumulate). A negative weight implements
// policy-gradient ascent on log-probability.
func CrossEntropy(logits *Tensor, target int, weight float64) float64 {
	buf := probPool.Get().(*[]float64)
	p := SoftmaxInto(*buf, logits)
	loss := -weight * math.Log(math.Max(p[target], 1e-12))
	for i := range p {
		grad := p[i]
		if i == target {
			grad -= 1
		}
		logits.G[i] += weight * grad
	}
	*buf = p
	probPool.Put(buf)
	return loss
}

// MSELoss seeds gradients for 0.5·(pred - target)² on a 1×1 tensor and
// returns the loss.
func MSELoss(pred *Tensor, target float64) float64 {
	d := pred.W[0] - target
	pred.G[0] += d
	return 0.5 * d * d
}
