package nn

import "sync/atomic"

// Arena counters, aggregated across every graph (exposed as gauges by
// internal/core so /metrics shows steady-state reuse and the retained
// footprint).
var (
	arenaHits     atomic.Int64
	arenaMisses   atomic.Int64
	arenaRetained atomic.Int64 // bytes currently held by arena blocks
)

// ArenaStats reports how many arena grabs were served from an already
// retained block (hits) versus grabs that had to grow the arena with a
// fresh heap block (misses), summed over all graphs since process start.
func ArenaStats() (hits, misses int64) {
	return arenaHits.Load(), arenaMisses.Load()
}

// ArenaRetainedBytes reports the total heap currently pinned by arena
// blocks across all live graphs — the gauge the Reset trim policy keeps
// bounded near each graph's recent working set.
func ArenaRetainedBytes() int64 { return arenaRetained.Load() }

const (
	// arenaMinBlock/arenaMaxBlock bound the geometric block growth
	// (floats, i.e. 32KB to 1MB).
	arenaMinBlock = 4096
	arenaMaxBlock = 131072
	// arenaTrimWindow is the number of Resets between trim checks: blocks
	// beyond the window's peak working set are released back to the heap,
	// so a one-off large batch cannot pin its high-water memory forever.
	arenaTrimWindow = 64
)

// arena is a chunked bump allocator over contiguous []float64 blocks.
// Grabs carve the current block front to back; Reset rewinds the
// cursor, so a graph replaying the same op sequence re-receives the
// same backing memory in the same order — that determinism is what
// keeps reused-graph training bit-identical to fresh-graph training.
type arena struct {
	blocks [][]float64
	bi     int // block being carved
	off    int // carve offset within blocks[bi]
	used   int // floats handed out since the last reset
	peak   int // max used across the current trim window
	resets int // resets since the last trim check
}

// take returns a zeroed slice of n floats carved from the arena.
func (a *arena) take(n int) []float64 {
	s := a.takeRaw(n)
	zeroFloats(s)
	return s
}

// takeRaw returns a slice of n floats carved from the arena WITHOUT
// zeroing it: on the block-reuse path the contents are whatever the
// previous cycle left behind. Only for buffers whose every element is
// assigned before any read — gradient buffers must use take, because
// backward closures accumulate into them with +=.
func (a *arena) takeRaw(n int) []float64 {
	if n == 0 {
		return nil
	}
	for a.bi < len(a.blocks) {
		if b := a.blocks[a.bi]; a.off+n <= len(b) {
			s := b[a.off : a.off+n : a.off+n]
			a.off += n
			a.used += n
			arenaHits.Add(1)
			return s
		}
		// Current block can't fit this grab: move to the next, leaving the
		// tail unused. The skip is a pure function of the grab sequence, so
		// replayed cycles skip identically.
		a.bi++
		a.off = 0
	}
	sz := arenaMinBlock
	if len(a.blocks) > 0 {
		sz = 2 * len(a.blocks[len(a.blocks)-1])
		if sz > arenaMaxBlock {
			sz = arenaMaxBlock
		}
	}
	if sz < n {
		sz = n
	}
	a.blocks = append(a.blocks, make([]float64, sz))
	arenaRetained.Add(int64(sz) * 8)
	arenaMisses.Add(1)
	a.bi = len(a.blocks) - 1
	s := a.blocks[a.bi][0:n:n]
	a.off = n
	a.used += n
	return s
}

// reset rewinds the carve cursor and, every arenaTrimWindow resets,
// releases blocks beyond the window's peak working set.
func (a *arena) reset() {
	if a.used > a.peak {
		a.peak = a.used
	}
	a.used = 0
	a.bi = 0
	a.off = 0
	a.resets++
	if a.resets < arenaTrimWindow {
		return
	}
	a.resets = 0
	// Keep the shortest block prefix covering the recent peak; free the
	// rest. Freeing only trailing blocks preserves the addresses earlier
	// cycles handed out, so steady-state reuse is unaffected.
	kept, cut := 0, len(a.blocks)
	for i, b := range a.blocks {
		if kept >= a.peak {
			cut = i
			break
		}
		kept += len(b)
	}
	if kept > 2*a.peak+arenaMinBlock {
		// A one-off grab inflated an early block far beyond the window's
		// working set; the prefix rule alone would pin it forever. Drop
		// everything and let the arena regrow at normal granularity.
		cut = 0
	}
	for _, b := range a.blocks[cut:] {
		arenaRetained.Add(-int64(len(b)) * 8)
	}
	a.blocks = a.blocks[:cut:cut]
	a.peak = 0
}

func zeroFloats(x []float64) {
	for i := range x {
		x[i] = 0
	}
}

// hdr returns the next recycled tensor header from the graph's header
// slab, growing the slab on first use of a slot.
func (g *Graph) hdr() *Tensor {
	var t *Tensor
	if g.nHdr < len(g.hdrs) {
		t = g.hdrs[g.nHdr]
	} else {
		t = &Tensor{}
		g.hdrs = append(g.hdrs, t)
	}
	g.nHdr++
	return t
}

// Alloc returns a zeroed r×c tensor carved from the graph's arena. The
// tensor is valid until the graph's next Reset; callers that need a
// result to outlive the graph must Clone it (or use NewTensor).
// Inference graphs (NeedsGrad false) carry no gradient buffer: G is nil,
// which halves the decode path's memory traffic. Flip NeedsGrad only
// right after a Reset, never mid-tape.
func (g *Graph) Alloc(r, c int) *Tensor {
	t := g.hdr()
	t.R, t.C = r, c
	t.W = g.ar.take(r * c)
	if g.NeedsGrad {
		t.G = g.ar.take(r * c)
	} else {
		t.G = nil
	}
	return t
}

// allocOut returns an r×c tensor whose value buffer is carved raw (not
// zeroed) — for op outputs whose forward pass assigns every element.
// The gradient buffer, when recording, is still zeroed: backward
// closures accumulate into G with +=.
func (g *Graph) allocOut(r, c int) *Tensor {
	t := g.hdr()
	t.R, t.C = r, c
	t.W = g.ar.takeRaw(r * c)
	if g.NeedsGrad {
		t.G = g.ar.take(r * c)
	} else {
		t.G = nil
	}
	return t
}

// floats returns a zeroed scratch slice of length n from the arena,
// valid until the next Reset.
func (g *Graph) floats(n int) []float64 {
	return g.ar.take(n)
}

// floatsRaw returns an unzeroed scratch slice of length n, for scratch
// whose every element is assigned before any read.
func (g *Graph) floatsRaw(n int) []float64 {
	return g.ar.takeRaw(n)
}

// Reset clears the tape (dropping any un-run backward closures) and
// rewinds the arena: every tensor and scratch slice handed out since
// the last Reset is recycled by the next cycle's allocations, so
// callers must not retain them across a Reset.
func (g *Graph) Reset() {
	g.tape = g.tape[:0]
	g.nHdr = 0
	g.ar.reset()
}
