package nn

import "sync/atomic"

// Arena reuse counters, aggregated across every graph (exposed as
// gauges by internal/core so /metrics shows steady-state reuse).
var (
	arenaHits   atomic.Int64
	arenaMisses atomic.Int64
)

// ArenaStats reports how many graph-op allocations were served from a
// recycled tensor (hits) versus fresh heap allocations (misses), summed
// over all graphs since process start.
func ArenaStats() (hits, misses int64) {
	return arenaHits.Load(), arenaMisses.Load()
}

func zeroFloats(x []float64) {
	for i := range x {
		x[i] = 0
	}
}

// Alloc returns a zeroed r×c tensor from the graph's arena, recycling a
// same-sized tensor released by an earlier Reset when one is available.
// The tensor is valid until the graph's next Reset; callers that need a
// result to outlive the graph must Clone it (or use NewTensor).
func (g *Graph) Alloc(r, c int) *Tensor {
	n := r * c
	if lst := g.free[n]; len(lst) > 0 {
		t := lst[len(lst)-1]
		g.free[n] = lst[:len(lst)-1]
		t.R, t.C = r, c
		zeroFloats(t.W)
		zeroFloats(t.G)
		g.live = append(g.live, t)
		arenaHits.Add(1)
		return t
	}
	arenaMisses.Add(1)
	t := NewTensor(r, c)
	g.live = append(g.live, t)
	return t
}

// floats returns a zeroed scratch slice of length n from the arena,
// valid until the next Reset.
func (g *Graph) floats(n int) []float64 {
	if lst := g.freeF[n]; len(lst) > 0 {
		f := lst[len(lst)-1]
		g.freeF[n] = lst[:len(lst)-1]
		zeroFloats(f)
		g.liveF = append(g.liveF, f)
		return f
	}
	f := make([]float64, n)
	g.liveF = append(g.liveF, f)
	return f
}

// Reset clears the tape (dropping any un-run backward closures) and
// releases every tensor and scratch slice handed out since the last
// Reset back to the free lists. After Reset, previously returned
// tensors are recycled by later Alloc calls — callers must not retain
// them across a Reset.
func (g *Graph) Reset() {
	g.tape = g.tape[:0]
	if len(g.live) > 0 {
		if g.free == nil {
			g.free = make(map[int][]*Tensor)
		}
		for _, t := range g.live {
			n := len(t.W)
			g.free[n] = append(g.free[n], t)
		}
		g.live = g.live[:0]
	}
	if len(g.liveF) > 0 {
		if g.freeF == nil {
			g.freeF = make(map[int][][]float64)
		}
		for _, f := range g.liveF {
			g.freeF[len(f)] = append(g.freeF[len(f)], f)
		}
		g.liveF = g.liveF[:0]
	}
}
