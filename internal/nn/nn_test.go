package nn

import (
	"math"
	"math/rand"
	"testing"
)

// numGrad computes the numerical gradient of loss() w.r.t. every entry of
// the given tensors and compares it with the analytic gradients already
// accumulated in their G buffers.
func checkGrads(t *testing.T, name string, loss func() float64, tensors ...*Tensor) {
	t.Helper()
	// Analytic pass.
	for _, ten := range tensors {
		ten.ZeroGrad()
	}
	base := loss()
	_ = base
	analytic := make([][]float64, len(tensors))
	for i, ten := range tensors {
		analytic[i] = append([]float64(nil), ten.G...)
	}
	const eps = 1e-6
	for ti, ten := range tensors {
		for i := range ten.W {
			orig := ten.W[i]
			ten.W[i] = orig + eps
			lp := lossValueOnly(loss, tensors)
			ten.W[i] = orig - eps
			lm := lossValueOnly(loss, tensors)
			ten.W[i] = orig
			num := (lp - lm) / (2 * eps)
			got := analytic[ti][i]
			if math.Abs(num-got) > 1e-4*(1+math.Abs(num)) {
				t.Errorf("%s: tensor %d entry %d: analytic %v numeric %v", name, ti, i, got, num)
				return
			}
		}
	}
}

// lossValueOnly evaluates the loss without keeping gradient side effects.
func lossValueOnly(loss func() float64, tensors []*Tensor) float64 {
	saved := make([][]float64, len(tensors))
	for i, ten := range tensors {
		saved[i] = append([]float64(nil), ten.G...)
	}
	v := loss()
	for i, ten := range tensors {
		copy(ten.G, saved[i])
	}
	return v
}

// scalarLoss runs forward with a fresh graph, seeds dOut=1 on a 1×1 result
// and backprops.
func scalarLoss(fw func(g *Graph) *Tensor) float64 {
	g := NewGraph(true)
	out := fw(g)
	if out.R != 1 || out.C != 1 {
		panic("scalarLoss wants 1x1 output")
	}
	out.G[0] = 1
	g.Backward()
	return out.W[0]
}

func TestGradMulAddDot(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	a := RandTensor(3, 4, 1, rng)
	b := RandTensor(4, 1, 1, rng)
	c := RandTensor(3, 1, 1, rng)
	v := RandTensor(3, 1, 1, rng)
	loss := func() float64 {
		return scalarLoss(func(g *Graph) *Tensor {
			y := g.Add(g.Mul(a, b), c)
			return g.Dot(v, y)
		})
	}
	checkGrads(t, "mul/add/dot", loss, a, b, c, v)
}

func TestGradActivations(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	x := RandTensor(5, 1, 1, rng)
	v := RandTensor(5, 1, 1, rng)
	for name, act := range map[string]func(*Graph, *Tensor) *Tensor{
		"tanh":     func(g *Graph, a *Tensor) *Tensor { return g.Tanh(a) },
		"sigmoid":  func(g *Graph, a *Tensor) *Tensor { return g.Sigmoid(a) },
		"relu":     func(g *Graph, a *Tensor) *Tensor { return g.Relu(a) },
		"oneminus": func(g *Graph, a *Tensor) *Tensor { return g.OneMinus(a) },
		"scale":    func(g *Graph, a *Tensor) *Tensor { return g.Scale(a, -2.5) },
		"addconst": func(g *Graph, a *Tensor) *Tensor { return g.AddConst(a, 3) },
	} {
		f := act
		loss := func() float64 {
			return scalarLoss(func(g *Graph) *Tensor { return g.Dot(v, f(g, x)) })
		}
		checkGrads(t, name, loss, x, v)
	}
}

func TestGradHadamardConcat(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	a := RandTensor(3, 1, 1, rng)
	b := RandTensor(3, 1, 1, rng)
	v := RandTensor(6, 1, 1, rng)
	loss := func() float64 {
		return scalarLoss(func(g *Graph) *Tensor {
			return g.Dot(v, g.Concat(g.Hadamard(a, b), a))
		})
	}
	checkGrads(t, "hadamard/concat", loss, a, b, v)
}

func TestGradLookupSelectedAffine(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	emb := RandTensor(6, 3, 1, rng)
	w := RandTensor(8, 3, 1, rng)
	b := RandTensor(8, 1, 1, rng)
	v := RandTensor(3, 1, 1, rng)
	rows := []int{1, 4, 7}
	loss := func() float64 {
		return scalarLoss(func(g *Graph) *Tensor {
			x := g.Lookup(emb, 2)
			logits := g.SelectedAffine(w, b, x, rows)
			return g.Dot(Vector(0.3, -1.1, 0.7), logits)
		})
	}
	checkGrads(t, "lookup/selectedaffine", loss, emb, w, b, v)
}

func TestGradAttend(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	s1 := RandTensor(1, 1, 1, rng)
	s2 := RandTensor(1, 1, 1, rng)
	s3 := RandTensor(1, 1, 1, rng)
	v1 := RandTensor(4, 1, 1, rng)
	v2 := RandTensor(4, 1, 1, rng)
	v3 := RandTensor(4, 1, 1, rng)
	probe := RandTensor(4, 1, 1, rng)
	loss := func() float64 {
		return scalarLoss(func(g *Graph) *Tensor {
			ctx, _ := g.Attend([]*Tensor{s1, s2, s3}, []*Tensor{v1, v2, v3})
			return g.Dot(probe, ctx)
		})
	}
	checkGrads(t, "attend", loss, s1, s2, s3, v1, v2, v3, probe)
}

func TestGradCrossEntropy(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	w := RandTensor(5, 3, 1, rng)
	x := RandTensor(3, 1, 1, rng)
	b := RandTensor(5, 1, 1, rng)
	loss := func() float64 {
		g := NewGraph(true)
		logits := g.SelectedAffine(w, b, x, []int{0, 1, 2, 3, 4})
		l := CrossEntropy(logits, 2, 1.7)
		g.Backward()
		return l
	}
	checkGrads(t, "crossentropy", loss, w, x, b)
}

func TestGradMSE(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	w := RandTensor(1, 4, 1, rng)
	x := RandTensor(4, 1, 1, rng)
	loss := func() float64 {
		g := NewGraph(true)
		pred := g.Mul(w, x)
		l := MSELoss(pred, 0.37)
		g.Backward()
		return l
	}
	checkGrads(t, "mse", loss, w, x)
}

func TestGradGRUStep(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	var p Params
	cell := NewGRUCell(&p, "gru", 3, 4, rng)
	x := RandTensor(3, 1, 1, rng)
	h0 := RandTensor(4, 1, 1, rng)
	probe := RandTensor(4, 1, 1, rng)
	loss := func() float64 {
		return scalarLoss(func(g *Graph) *Tensor {
			h1 := cell.Step(g, x, h0)
			h2 := cell.Step(g, x, h1)
			return g.Dot(probe, h2)
		})
	}
	tensors := append([]*Tensor{x, h0, probe}, p.Tensors()...)
	checkGrads(t, "gru", loss, tensors...)
}

func TestGradBiGRUAttention(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	var p Params
	enc := NewBiGRU(&p, "enc", 3, 4, rng)
	att := NewAttention(&p, "att", 8, 4, 5, rng)
	xs := []*Tensor{RandTensor(3, 1, 1, rng), RandTensor(3, 1, 1, rng), RandTensor(3, 1, 1, rng)}
	s := RandTensor(4, 1, 1, rng)
	probe := RandTensor(8, 1, 1, rng)
	loss := func() float64 {
		return scalarLoss(func(g *Graph) *Tensor {
			hs := enc.Encode(g, xs)
			ctx, _ := att.Context(g, hs, s)
			return g.Dot(probe, ctx)
		})
	}
	tensors := append([]*Tensor{xs[0], xs[1], xs[2], s, probe}, p.Tensors()...)
	checkGrads(t, "bigru+attention", loss, tensors...)
}

func TestGradLayerNorm(t *testing.T) {
	rng := rand.New(rand.NewSource(10))
	var p Params
	ln := NewLayerNorm(&p, "ln", 5)
	// Perturb gamma/beta so gradients are non-trivial.
	for i := range ln.Gamma.W {
		ln.Gamma.W[i] = 1 + 0.3*rng.Float64()
		ln.Beta.W[i] = 0.2 * rng.Float64()
	}
	x := RandTensor(5, 1, 1, rng)
	probe := RandTensor(5, 1, 1, rng)
	loss := func() float64 {
		return scalarLoss(func(g *Graph) *Tensor {
			return g.Dot(probe, ln.Apply(g, x))
		})
	}
	checkGrads(t, "layernorm", loss, x, probe, ln.Gamma, ln.Beta)
}

func TestGradTransformerLayer(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	var p Params
	layer := NewTransformerLayer(&p, "tf", 4, 2, 6, rng)
	xs := []*Tensor{RandTensor(4, 1, 1, rng), RandTensor(4, 1, 1, rng)}
	probe := RandTensor(4, 1, 1, rng)
	loss := func() float64 {
		return scalarLoss(func(g *Graph) *Tensor {
			out := layer.Apply(g, xs)
			return g.Dot(probe, out[len(out)-1])
		})
	}
	tensors := append([]*Tensor{xs[0], xs[1], probe}, p.Tensors()...)
	checkGrads(t, "transformer", loss, tensors...)
}

func TestAdamConvergesOnRegression(t *testing.T) {
	rng := rand.New(rand.NewSource(12))
	var p Params
	d1 := NewDense(&p, "d1", 2, 8, rng)
	d2 := NewDense(&p, "d2", 8, 1, rng)
	opt := NewAdam(0.02)
	target := func(x, y float64) float64 { return 0.5*x - 0.8*y + 0.3 }
	var last float64
	for epoch := 0; epoch < 300; epoch++ {
		var total float64
		for i := 0; i < 16; i++ {
			x, y := rng.Float64()*2-1, rng.Float64()*2-1
			g := NewGraph(true)
			pred := d2.Apply(g, g.Tanh(d1.Apply(g, Vector(x, y))))
			total += MSELoss(pred, target(x, y))
			g.Backward()
		}
		p.ClipGrads(5)
		opt.Step(&p)
		last = total / 16
	}
	if last > 0.01 {
		t.Errorf("Adam failed to fit linear function: loss %v", last)
	}
}

func TestSGDAndZeroGrads(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	var p Params
	d := NewDense(&p, "d", 2, 1, rng)
	g := NewGraph(true)
	pred := d.Apply(g, Vector(1, 2))
	MSELoss(pred, 5)
	g.Backward()
	before := d.W.W[0]
	(&SGD{LR: 0.1}).Step(&p)
	if d.W.W[0] == before {
		t.Error("SGD did not update")
	}
	if d.W.G[0] != 0 {
		t.Error("SGD did not clear gradients")
	}
	g2 := NewGraph(true)
	MSELoss(d.Apply(g2, Vector(1, 2)), 5)
	g2.Backward()
	p.ZeroGrads()
	for _, tt := range p.Tensors() {
		for _, gv := range tt.G {
			if gv != 0 {
				t.Fatal("ZeroGrads left gradient")
			}
		}
	}
}

func TestClipGrads(t *testing.T) {
	var p Params
	tt := p.Add("t", NewTensor(2, 1))
	tt.G[0], tt.G[1] = 3, 4 // norm 5
	norm := p.ClipGrads(1)
	if math.Abs(norm-5) > 1e-12 {
		t.Errorf("pre-clip norm %v", norm)
	}
	if math.Abs(tt.G[0]-0.6) > 1e-12 || math.Abs(tt.G[1]-0.8) > 1e-12 {
		t.Errorf("clipped grads %v", tt.G)
	}
}

func TestParamsCount(t *testing.T) {
	rng := rand.New(rand.NewSource(14))
	var p Params
	NewDense(&p, "d", 3, 4, rng) // 12 + 4
	NewGRUCell(&p, "g", 3, 5, rng)
	want := 12 + 4 + 3*(5*3+5*5+5)
	if p.Count() != want {
		t.Errorf("Count = %d, want %d", p.Count(), want)
	}
	var outer Params
	outer.Merge("sub", &p)
	if outer.Count() != want {
		t.Error("Merge changed count")
	}
}

func TestSoftmaxSumsToOne(t *testing.T) {
	p := Softmax(Vector(1, 2, 3, -10))
	var sum float64
	for _, v := range p {
		sum += v
	}
	if math.Abs(sum-1) > 1e-12 {
		t.Errorf("softmax sum %v", sum)
	}
	if !(p[2] > p[1] && p[1] > p[0] && p[0] > p[3]) {
		t.Errorf("softmax ordering wrong: %v", p)
	}
}

func TestInferenceGraphRecordsNothing(t *testing.T) {
	rng := rand.New(rand.NewSource(15))
	g := NewGraph(false)
	a := RandTensor(3, 3, 1, rng)
	b := RandTensor(3, 1, 1, rng)
	g.Mul(a, b)
	if len(g.tape) != 0 {
		t.Error("inference graph recorded tape entries")
	}
}
