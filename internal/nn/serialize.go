package nn

import (
	"encoding/gob"
	"fmt"
	"io"
)

// Save writes the registry's parameter values to w (gob-encoded). Only
// values are persisted; the architecture is reconstructed by the caller
// building the same model before Load.
func (p *Params) Save(w io.Writer) error {
	return gob.NewEncoder(w).Encode(p.State())
}

// Load restores parameter values written by Save into an identically
// shaped registry.
func (p *Params) Load(r io.Reader) error {
	var state [][]float64
	if err := gob.NewDecoder(r).Decode(&state); err != nil {
		return fmt.Errorf("nn: decoding parameters: %w", err)
	}
	if len(state) != len(p.tensors) {
		return fmt.Errorf("nn: parameter count mismatch: file has %d tensors, model has %d",
			len(state), len(p.tensors))
	}
	for i, t := range p.tensors {
		if len(state[i]) != t.Size() {
			return fmt.Errorf("nn: tensor %q size mismatch: file has %d values, model has %d",
				p.names[i], len(state[i]), t.Size())
		}
	}
	p.SetState(state)
	return nil
}
