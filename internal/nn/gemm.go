package nn

import "sync/atomic"

// Deterministic blocked matrix kernels. Every op in this file follows
// one accumulation contract: each output (or gradient) element is a
// single sum evaluated with its reduction index strictly ascending.
// Blocking is applied only across independent output elements (register
// blocks of rows, contiguous panels of columns) and never splits one
// element's accumulation chain, so the results are bit-identical to the
// naive three-loop reference regardless of tiling — and therefore
// identical no matter how work is distributed across rollout workers.
// gemm_test.go pins that contract with table and fuzz tests.

// Kernel throughput counters: one atomic add per kernel call (never per
// element), so the cost is noise against the O(m·k·n) arithmetic they
// meter. Surfaced as trap_nn_gemm_* gauges next to the arena stats.
var (
	gemmCalls atomic.Int64
	gemmFlops atomic.Int64 // multiply-add volume, 2·m·k·n per GEMM
)

// GEMMStats reports the cumulative kernel invocation count and
// floating-point operation volume of the matrix kernels.
func GEMMStats() (calls, flops int64) {
	return gemmCalls.Load(), gemmFlops.Load()
}

// mulTo computes out = a·b (row-major, shapes already validated).
// Register blocking: four rows of a share each streamed row of b, which
// quarters the b traffic without reordering any element's k-ascending
// accumulation.
func mulTo(out, a, b []float64, m, k, n int) {
	gemmCalls.Add(1)
	gemmFlops.Add(2 * int64(m) * int64(k) * int64(n))
	i := 0
	for ; i+4 <= m; i += 4 {
		r0 := out[(i+0)*n : (i+1)*n]
		r1 := out[(i+1)*n : (i+2)*n]
		r2 := out[(i+2)*n : (i+3)*n]
		r3 := out[(i+3)*n : (i+4)*n]
		for j := range r0 {
			r0[j], r1[j], r2[j], r3[j] = 0, 0, 0, 0
		}
		for p := 0; p < k; p++ {
			a0 := a[(i+0)*k+p]
			a1 := a[(i+1)*k+p]
			a2 := a[(i+2)*k+p]
			a3 := a[(i+3)*k+p]
			brow := b[p*n : p*n+n]
			for j, bv := range brow {
				r0[j] += a0 * bv
				r1[j] += a1 * bv
				r2[j] += a2 * bv
				r3[j] += a3 * bv
			}
		}
	}
	for ; i < m; i++ {
		row := out[i*n : i*n+n]
		for j := range row {
			row[j] = 0
		}
		for p := 0; p < k; p++ {
			av := a[i*k+p]
			brow := b[p*n : p*n+n]
			for j, bv := range brow {
				row[j] += av * bv
			}
		}
	}
}

// matvecTo computes out = a·x for a column vector x (n == 1). Each
// out[i] is one contiguous dot product, k ascending.
func matvecTo(out, a, x []float64, m, k int) {
	gemmCalls.Add(1)
	gemmFlops.Add(2 * int64(m) * int64(k))
	for i := 0; i < m; i++ {
		out[i] = dot(a[i*k:i*k+k], x)
	}
}

// dot returns the inner product of equal-length slices, accumulated in
// ascending index order.
func dot(a, x []float64) float64 {
	var s float64
	for i, av := range a {
		s += av * x[i]
	}
	return s
}

// addMulNT accumulates dA += dOut·Bᵀ: dA[i,p] += Σ_j dOut[i,j]·B[p,j],
// j ascending. Both operand rows are contiguous.
func addMulNT(dA, dOut, b []float64, m, k, n int) {
	for i := 0; i < m; i++ {
		drow := dOut[i*n : i*n+n]
		for p := 0; p < k; p++ {
			dA[i*k+p] += dot(drow, b[p*n:p*n+n])
		}
	}
}

// addMulTN accumulates dB += Aᵀ·dOut: dB[p,j] += Σ_i A[i,p]·dOut[i,j],
// i ascending (outer loop), inner rows contiguous.
func addMulTN(dB, a, dOut []float64, m, k, n int) {
	for i := 0; i < m; i++ {
		drow := dOut[i*n : i*n+n]
		for p := 0; p < k; p++ {
			av := a[i*k+p]
			if av == 0 {
				continue
			}
			brow := dB[p*n : p*n+n]
			for j, dv := range drow {
				brow[j] += av * dv
			}
		}
	}
}

// addOuter accumulates dW += d·xᵀ (rank-1 update): dW[i,j] += d[i]·x[j].
func addOuter(dW, d, x []float64) {
	k := len(x)
	for i, dv := range d {
		if dv == 0 {
			continue
		}
		row := dW[i*k : i*k+k]
		for j, xv := range x {
			row[j] += dv * xv
		}
	}
}

// addMulTvec accumulates dx += Aᵀ·d: dx[p] += Σ_i A[i,p]·d[i], i
// ascending.
func addMulTvec(dx, a, d []float64, m, k int) {
	for i := 0; i < m; i++ {
		dv := d[i]
		if dv == 0 {
			continue
		}
		row := a[i*k : i*k+k]
		for p, av := range row {
			dx[p] += dv * av
		}
	}
}

// addVec accumulates dst += src.
func addVec(dst, src []float64) {
	for i, v := range src {
		dst[i] += v
	}
}

// allZeroF reports whether every value of x is zero (used to skip whole
// backward GEMMs for outputs that received no gradient; skipping a
// strictly-zero accumulation leaves every gradient bit-identical for
// any worker count because the same skip fires on every schedule).
func allZeroF(x []float64) bool {
	for _, v := range x {
		if v != 0 {
			return false
		}
	}
	return true
}
