package telemetry

import (
	"context"
	"testing"
)

// BenchmarkTelemetryDisabled measures the uninstrumented-context path —
// the price every hot loop pays when telemetry is off. ci.sh runs this
// with -benchtime=1x as a harness-bit-rot check; the hard zero-alloc
// assertion lives in TestAppendZeroAlloc.
func BenchmarkTelemetryDisabled(b *testing.B) {
	ctx := context.Background()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		FromContext(ctx).Series("rl_loss").Append(int64(i), 1.5)
	}
}

// BenchmarkTelemetryAppend measures the enabled steady-state append,
// including the FromContext lookup and sharded series resolution.
func BenchmarkTelemetryAppend(b *testing.B) {
	sc := NewScope(Options{Capacity: 512})
	ctx := NewContext(context.Background(), sc)
	FromContext(ctx).Series("rl_loss").Append(0, 0)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		FromContext(ctx).Series("rl_loss").Append(int64(i+1), 1.5)
	}
}

// BenchmarkTelemetrySnapshot measures the read side the HTTP telemetry
// endpoint pays per scrape.
func BenchmarkTelemetrySnapshot(b *testing.B) {
	sc := NewScope(Options{Capacity: 256, MaxSeries: 16})
	for s := 0; s < 8; s++ {
		ser := sc.Series(string(rune('a' + s)))
		for i := 1; i <= 1000; i++ {
			ser.Append(int64(i), float64(i))
		}
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if snap := sc.Snapshot(); len(snap) != 8 {
			b.Fatal("bad snapshot")
		}
	}
}
