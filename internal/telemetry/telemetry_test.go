package telemetry

import (
	"context"
	"math"
	"sync"
	"testing"
)

func TestSeriesAppendAndPoints(t *testing.T) {
	s := newSeries(8)
	for i := 1; i <= 5; i++ {
		s.Append(int64(i), float64(i)*2)
	}
	pts := s.Points()
	if len(pts) != 5 {
		t.Fatalf("got %d points, want 5", len(pts))
	}
	for i, p := range pts {
		if p.Step != int64(i+1) || p.Value != float64(i+1)*2 {
			t.Fatalf("point %d = %+v", i, p)
		}
	}
	if s.Stride() != 1 || s.Count() != 5 {
		t.Fatalf("stride=%d count=%d", s.Stride(), s.Count())
	}
}

func TestSeriesMonotonicSteps(t *testing.T) {
	s := newSeries(8)
	s.Append(5, 1)
	s.Append(5, 2) // duplicate step: dropped
	s.Append(3, 3) // regression: dropped
	s.Append(6, 4)
	pts := s.Points()
	if len(pts) != 2 || pts[0].Step != 5 || pts[1].Step != 6 {
		t.Fatalf("points = %+v", pts)
	}
	if s.Count() != 2 {
		t.Fatalf("count = %d, want 2", s.Count())
	}
}

func TestSeriesDownsamples(t *testing.T) {
	const capacity = 16
	s := newSeries(capacity)
	const n = 1000
	for i := 1; i <= n; i++ {
		s.Append(int64(i), float64(i))
	}
	pts := s.Points()
	if len(pts) > capacity+1 { // +1: provisional pending bucket
		t.Fatalf("ring grew past capacity: %d points", len(pts))
	}
	if s.Count() != n {
		t.Fatalf("count = %d, want %d", s.Count(), n)
	}
	if s.Stride() < 2 {
		t.Fatalf("stride = %d, want downsampled (>=2)", s.Stride())
	}
	// Steps stay strictly increasing through every merge.
	for i := 1; i < len(pts); i++ {
		if pts[i].Step <= pts[i-1].Step {
			t.Fatalf("steps not increasing at %d: %+v", i, pts[i-1:i+1])
		}
	}
	// Values of the identity series stay ordered too, and the last point
	// covers the newest data.
	if pts[len(pts)-1].Step != n {
		t.Fatalf("last step = %d, want %d", pts[len(pts)-1].Step, n)
	}
	// Each stored value is the mean of its merged bucket; for the
	// identity series the global mean of the means must stay near the
	// true mean of 1..n.
	var sum float64
	for _, p := range pts {
		sum += p.Value
	}
	mean := sum / float64(len(pts))
	if math.Abs(mean-float64(n+1)/2) > float64(n)/10 {
		t.Fatalf("downsampled mean %f too far from %f", mean, float64(n+1)/2)
	}
}

func TestSeriesLatestSeesPendingBucket(t *testing.T) {
	s := newSeries(4)
	for i := 1; i <= 9; i++ { // forces stride growth, leaves a partial bucket
		s.Append(int64(i), float64(i))
	}
	p, ok := s.Latest()
	if !ok || p.Step != 9 {
		t.Fatalf("latest = %+v ok=%v, want step 9", p, ok)
	}
}

func TestNilSafety(t *testing.T) {
	var s *Series
	s.Append(1, 2)
	s.Add(3)
	if pts := s.Points(); pts != nil {
		t.Fatalf("nil series points = %v", pts)
	}
	if _, ok := s.Latest(); ok {
		t.Fatal("nil series has a latest point")
	}
	var sc *Scope
	if got := sc.Series("x"); got != nil {
		t.Fatalf("nil scope series = %v", got)
	}
	sc.Series("x").Append(1, 2)
	if sc.Snapshot() != nil || sc.Latest() != nil || sc.Len() != 0 || sc.Dropped() != 0 {
		t.Fatal("nil scope not inert")
	}
	ctx := context.Background()
	if FromContext(ctx) != nil {
		t.Fatal("plain context carries a scope")
	}
	if NewContext(ctx, nil) != ctx {
		t.Fatal("NewContext(nil) should return ctx unchanged")
	}
}

func TestScopeCardinalityCap(t *testing.T) {
	sc := NewScope(Options{Capacity: 8, MaxSeries: 4})
	for i := 0; i < 4; i++ {
		if sc.Series(string(rune('a'+i))) == nil {
			t.Fatalf("series %d refused under the cap", i)
		}
	}
	if sc.Series("overflow") != nil {
		t.Fatal("cardinality cap did not refuse series 5")
	}
	// Refused creations are counted; existing series stay reachable.
	if sc.Dropped() != 1 {
		t.Fatalf("dropped = %d, want 1", sc.Dropped())
	}
	if sc.Series("a") == nil {
		t.Fatal("existing series became unreachable after overflow")
	}
	if sc.Len() != 4 {
		t.Fatalf("len = %d, want 4", sc.Len())
	}
}

func TestScopeSnapshotSorted(t *testing.T) {
	sc := NewScope(Options{})
	sc.Series("zeta").Append(1, 1)
	sc.Series("alpha").Append(1, 2)
	sc.Series("mid").Append(1, 3)
	snap := sc.Snapshot()
	if len(snap) != 3 {
		t.Fatalf("snapshot has %d series", len(snap))
	}
	if snap[0].Name != "alpha" || snap[1].Name != "mid" || snap[2].Name != "zeta" {
		t.Fatalf("snapshot order: %s %s %s", snap[0].Name, snap[1].Name, snap[2].Name)
	}
	latest := sc.Latest()
	if latest["alpha"] != 2 || latest["zeta"] != 1 {
		t.Fatalf("latest = %v", latest)
	}
}

func TestScopeConcurrentAppend(t *testing.T) {
	sc := NewScope(Options{Capacity: 32, MaxSeries: 16})
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			name := string(rune('a' + g%4))
			for i := 1; i <= 500; i++ {
				sc.Series(name).Append(int64(g*1000+i), float64(i))
			}
		}(g)
	}
	wg.Wait()
	if sc.Len() != 4 {
		t.Fatalf("len = %d, want 4", sc.Len())
	}
	for _, d := range sc.Snapshot() {
		for i := 1; i < len(d.Points); i++ {
			if d.Points[i].Step <= d.Points[i-1].Step {
				t.Fatalf("series %s steps not increasing under concurrency", d.Name)
			}
		}
	}
}

// TestAppendZeroAlloc pins the telemetry cost contract: with telemetry
// disabled (nil scope from an uninstrumented context) the full
// FromContext → Series → Append chain is zero-alloc, and with telemetry
// enabled the steady-state ring append is zero-alloc too.
func TestAppendZeroAlloc(t *testing.T) {
	ctx := context.Background()
	step := int64(0)
	disabled := testing.AllocsPerRun(1000, func() {
		step++
		FromContext(ctx).Series("rl_loss").Append(step, 1.5)
	})
	if disabled != 0 {
		t.Fatalf("disabled telemetry allocates %.1f allocs/op, want 0", disabled)
	}

	sc := NewScope(Options{Capacity: 64})
	ectx := NewContext(context.Background(), sc)
	s := FromContext(ectx).Series("rl_loss")
	s.Append(1, 0) // lay down the ring
	step = 1
	enabled := testing.AllocsPerRun(1000, func() {
		step++
		FromContext(ectx).Series("rl_loss").Append(step, 1.5)
	})
	if enabled != 0 {
		t.Fatalf("enabled telemetry allocates %.1f allocs/op on the steady-state append, want 0", enabled)
	}
}
