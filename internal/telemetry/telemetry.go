// Package telemetry is the time-series layer on top of internal/obs:
// where obs answers "what is the value now", telemetry answers "how did
// it get there". A Scope is a lock-sharded registry of named Series; a
// Series is a fixed-capacity ring of (step, value) points that
// downsamples itself — merging adjacent pairs and doubling its stride —
// whenever it fills, so an unbounded run (thousands of RL epochs, tens
// of thousands of perturbation candidates) is summarised in bounded
// memory with the newest points always at full resolution.
//
// The package is built for hot paths that are usually cold: every entry
// point is a no-op on a nil receiver, and FromContext on an
// uninstrumented context returns nil, so callers write
//
//	telemetry.FromContext(ctx).Series("rl_loss").Append(epoch, loss)
//
// unconditionally and pay nothing (no allocation, no branch beyond the
// nil checks) when telemetry is disabled. With telemetry enabled the
// steady-state Append is allocation-free too: the ring's backing array
// is laid down once and downsampling runs in place.
package telemetry

import (
	"context"
	"hash/maphash"
	"sort"
	"sync"
	"sync/atomic"
)

// Point is one stored sample: the raw step it covers (for stride > 1,
// the last raw step merged into it) and its value (the mean of the
// merged raw values).
type Point struct {
	Step  int64   `json:"step"`
	Value float64 `json:"value"`
}

// Series is a bounded time series. Steps must be strictly increasing:
// a re-played step (a checkpoint-resumed epoch, a fenced node's retry)
// is dropped, which keeps every series monotonic no matter how many
// times a job is retried or taken over.
type Series struct {
	mu      sync.Mutex
	pts     []Point // ring storage; len is the fill, cap is fixed
	stride  int64   // raw appends folded into each stored point
	accSum  float64 // pending bucket: sum of raw values
	accN    int64   // pending bucket: raw appends so far
	accStep int64   // pending bucket: last raw step
	last    int64   // last raw step accepted (monotonicity gate)
	count   int64   // total raw appends accepted
}

func newSeries(capacity int) *Series {
	if capacity < 2 {
		capacity = 2
	}
	if capacity%2 == 1 {
		capacity++
	}
	return &Series{pts: make([]Point, 0, capacity), stride: 1}
}

// Append records value at step. Steps at or below the last accepted
// step are ignored. Safe on a nil receiver.
func (s *Series) Append(step int64, value float64) {
	if s == nil {
		return
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.count > 0 && step <= s.last {
		return
	}
	s.last = step
	s.count++
	s.accSum += value
	s.accN++
	s.accStep = step
	if s.accN < s.stride {
		return
	}
	if len(s.pts) == cap(s.pts) {
		s.downsample()
	}
	s.pts = append(s.pts, Point{Step: s.accStep, Value: s.accSum / float64(s.accN)})
	s.accSum, s.accN = 0, 0
}

// Add appends value at the step after the last one — the common case of
// a naturally sequenced series (one point per epoch, per candidate).
func (s *Series) Add(value float64) {
	if s == nil {
		return
	}
	s.mu.Lock()
	next := s.last + 1
	s.mu.Unlock()
	s.Append(next, value)
}

// downsample halves the ring in place: adjacent pairs merge into one
// point carrying the later step and the mean value, and the stride
// doubles so future buckets cover the same raw span as the survivors.
// Caller holds s.mu.
func (s *Series) downsample() {
	n := len(s.pts) / 2
	for i := 0; i < n; i++ {
		a, b := s.pts[2*i], s.pts[2*i+1]
		s.pts[i] = Point{Step: b.Step, Value: (a.Value + b.Value) / 2}
	}
	s.pts = s.pts[:n]
	s.stride *= 2
}

// Points returns a copy of the stored points plus, when a partial
// bucket is pending, one provisional tail point for it — so the newest
// sample is always visible even mid-bucket. Safe on a nil receiver.
func (s *Series) Points() []Point {
	if s == nil {
		return nil
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]Point, len(s.pts), len(s.pts)+1)
	copy(out, s.pts)
	if s.accN > 0 {
		out = append(out, Point{Step: s.accStep, Value: s.accSum / float64(s.accN)})
	}
	return out
}

// Latest returns the most recent raw sample and whether one exists.
func (s *Series) Latest() (Point, bool) {
	if s == nil {
		return Point{}, false
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.accN > 0 {
		return Point{Step: s.accStep, Value: s.accSum / float64(s.accN)}, true
	}
	if len(s.pts) > 0 {
		return s.pts[len(s.pts)-1], true
	}
	return Point{}, false
}

// Stride reports how many raw appends each stored point summarises.
func (s *Series) Stride() int64 {
	if s == nil {
		return 0
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.stride
}

// Count reports the total raw appends accepted over the series'
// lifetime (including points since merged away by downsampling).
func (s *Series) Count() int64 {
	if s == nil {
		return 0
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.count
}

// Options sizes a Scope.
type Options struct {
	// Capacity is the per-series ring size in stored points (rounded up
	// to even, minimum 2). Default 512.
	Capacity int
	// MaxSeries is the hard cardinality cap: once this many distinct
	// series exist, Series returns nil (whose methods are no-ops) and
	// the Dropped counter grows. Default 64.
	MaxSeries int
}

const (
	defaultCapacity  = 512
	defaultMaxSeries = 64
	scopeShards      = 8
)

var scopeSeed = maphash.MakeSeed()

type shard struct {
	mu sync.RWMutex
	m  map[string]*Series
}

// Scope is a lock-sharded registry of named series — one per job, or
// one per subsystem. All methods are safe on a nil *Scope and safe for
// concurrent use.
type Scope struct {
	shards  [scopeShards]shard
	opts    Options
	n       atomic.Int64 // live series count, raced against MaxSeries
	dropped atomic.Int64 // creations refused by the cardinality cap
}

// NewScope returns an empty scope sized by opts (zero values take the
// documented defaults).
func NewScope(opts Options) *Scope {
	if opts.Capacity <= 0 {
		opts.Capacity = defaultCapacity
	}
	if opts.MaxSeries <= 0 {
		opts.MaxSeries = defaultMaxSeries
	}
	sc := &Scope{opts: opts}
	for i := range sc.shards {
		sc.shards[i].m = make(map[string]*Series)
	}
	return sc
}

// Series returns the named series, creating it on first use. Past the
// cardinality cap it returns nil — every Series method tolerates that —
// so unbounded label growth degrades to dropped samples, never to
// unbounded memory.
func (sc *Scope) Series(name string) *Series {
	if sc == nil {
		return nil
	}
	sh := &sc.shards[maphash.String(scopeSeed, name)%scopeShards]
	sh.mu.RLock()
	s := sh.m[name]
	sh.mu.RUnlock()
	if s != nil {
		return s
	}
	sh.mu.Lock()
	defer sh.mu.Unlock()
	if s = sh.m[name]; s != nil {
		return s
	}
	if sc.n.Add(1) > int64(sc.opts.MaxSeries) {
		sc.n.Add(-1)
		sc.dropped.Add(1)
		return nil
	}
	s = newSeries(sc.opts.Capacity)
	sh.m[name] = s
	return s
}

// Dropped reports how many series creations the cardinality cap
// refused.
func (sc *Scope) Dropped() int64 {
	if sc == nil {
		return 0
	}
	return sc.dropped.Load()
}

// Len reports the number of live series.
func (sc *Scope) Len() int {
	if sc == nil {
		return 0
	}
	return int(sc.n.Load())
}

// SeriesDump is one series rendered for transport.
type SeriesDump struct {
	Name   string  `json:"name"`
	Stride int64   `json:"stride"`
	Count  int64   `json:"count"`
	Points []Point `json:"points"`
}

// Snapshot returns every series, sorted by name, with copied points.
func (sc *Scope) Snapshot() []SeriesDump {
	if sc == nil {
		return nil
	}
	var out []SeriesDump
	for i := range sc.shards {
		sh := &sc.shards[i]
		sh.mu.RLock()
		for name, s := range sh.m {
			out = append(out, SeriesDump{
				Name:   name,
				Stride: s.Stride(),
				Count:  s.Count(),
				Points: s.Points(),
			})
		}
		sh.mu.RUnlock()
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// Latest returns the freshest value of every series, sorted by name —
// the payload shape of per-epoch SSE telemetry events.
func (sc *Scope) Latest() map[string]float64 {
	if sc == nil {
		return nil
	}
	out := make(map[string]float64)
	for i := range sc.shards {
		sh := &sc.shards[i]
		sh.mu.RLock()
		for name, s := range sh.m {
			if p, ok := s.Latest(); ok {
				out[name] = p.Value
			}
		}
		sh.mu.RUnlock()
	}
	return out
}

type ctxKey struct{}

// NewContext returns ctx carrying sc. A nil sc is carried as absent.
func NewContext(ctx context.Context, sc *Scope) context.Context {
	if sc == nil {
		return ctx
	}
	return context.WithValue(ctx, ctxKey{}, sc)
}

// FromContext returns the scope carried by ctx, or nil. The nil return
// is usable directly: every Scope and Series method no-ops on nil.
func FromContext(ctx context.Context) *Scope {
	sc, _ := ctx.Value(ctxKey{}).(*Scope)
	return sc
}
