// Package joblog is a durable, append-only job log for trapd: the
// persistence layer that lets assessment jobs survive process death.
// Every job submission, state transition and result is appended as a
// CRC-framed record to a segment file and fsync'd before the append
// returns; on startup trapd replays the log to restore terminal jobs'
// metadata and re-enqueue interrupted ones, which then resume from
// their latest -spool RL checkpoint.
//
// # On-disk format
//
// A log is a directory of segment files named %08d.seg, written and
// replayed in ascending order. Each segment is a sequence of frames:
//
//	[ length uint32 LE | crc32(payload) uint32 LE | payload ]
//
// where payload is one JSON-encoded Record. The CRC (IEEE) covers only
// the payload, so a torn write — a crash mid-append — is detected as a
// short or mismatched frame. Torn frames can only be the last frame of
// the last segment (appends are strictly sequential and fsync'd), so
// replay truncates the tail back to the last good frame and the log is
// immediately appendable again. A corrupt frame anywhere earlier marks
// the remainder of that segment unreadable (frame boundaries cannot be
// re-found reliably); replay counts it and continues with the next
// segment.
//
// The log itself is record-agnostic: Record carries a type tag, a job
// ID and an opaque JSON payload, and the replayed state is whatever the
// caller folds the records into (trapd: last-write-wins per job ID).
// Compact rewrites a caller-provided snapshot into a single fresh
// segment and deletes the old ones, bounding replay time; the new
// segment is numbered above every old one, so a crash between the
// rename and the deletes replays old-then-snapshot, which folds to the
// same state.
//
// # Degraded mode
//
// A failed append write or fsync (ENOSPC, an I/O error, an injected
// fault at faultinject.PointJoblogAppend) leaves the on-disk tail in an
// unknown state, so the log does not guess: the first such failure
// permanently degrades the log to read-only. Every later Append returns
// ErrDegraded (wrapping the original cause) and Degraded()/Stats report
// it, letting the owning node drain instead of acknowledging writes it
// cannot make durable. Recovery is a process restart: Open replays the
// good prefix and truncates any torn tail as usual.
//
// All methods are safe for concurrent use.
package joblog

import (
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"
	"sort"
	"sync"
	"time"

	"github.com/trap-repro/trap/internal/faultinject"
)

// Record is one durable log entry. Type and Data are caller-defined;
// Seq is assigned by Append and strictly increases across the log's
// lifetime (replay continues the sequence).
type Record struct {
	Seq   uint64          `json:"seq"`
	Type  string          `json:"type"`
	JobID string          `json:"job"`
	Time  time.Time       `json:"time"`
	Data  json.RawMessage `json:"data,omitempty"`
}

// Options parameterizes Open. The zero value gives the defaults.
type Options struct {
	// SegmentBytes rotates to a new segment file once the active one
	// exceeds this size (default 4 MiB).
	SegmentBytes int64
	// NoSync disables the fsync after every append. Only for tests and
	// benchmarks: without the sync a crash can lose acknowledged
	// records, which defeats the log's purpose.
	NoSync bool
	// Replay receives every record recovered from disk, in log order,
	// before Open returns. A nil Replay skips delivery (the records
	// are still scanned to find the append position).
	Replay func(Record) error
	// Injector, when non-nil, is fired at faultinject.PointJoblogAppend
	// before each append writes its frame. An injected error is handled
	// exactly like a real write failure: the log degrades to read-only.
	Injector faultinject.Injector
}

func (o *Options) fill() {
	if o.SegmentBytes <= 0 {
		o.SegmentBytes = 4 << 20
	}
}

// Stats is a point-in-time summary of the log.
type Stats struct {
	// Appends counts records appended this process lifetime.
	Appends int64
	// AppendedBytes counts frame bytes written this process lifetime.
	AppendedBytes int64
	// Replayed counts records recovered by Open.
	Replayed int64
	// CorruptFrames counts frames dropped during replay (torn tail or
	// CRC mismatch).
	CorruptFrames int64
	// TornTails counts torn-tail truncation events: a bad frame at the
	// end of the last segment, cut back to the last good frame by Open.
	TornTails int64
	// TruncatedBytes counts tail bytes cut from the last segment to
	// recover from a torn write.
	TruncatedBytes int64
	// Compactions counts successful Compact calls this process lifetime.
	Compactions int64
	// Degraded reports that an append failed and the log is read-only.
	Degraded bool
	// Segments is the number of live segment files.
	Segments int
	// ActiveBytes is the size of the active (append) segment.
	ActiveBytes int64
	// NextSeq is the sequence number the next append will get.
	NextSeq uint64
}

// Log is an open job log. Close it to release the active segment.
type Log struct {
	dir  string
	opts Options

	mu      sync.Mutex
	f       *os.File // active segment
	fileNum int      // active segment number
	size    int64    // active segment size
	nextSeq uint64
	closed  bool
	broken  error // first append failure; non-nil means read-only
	st      Stats
}

const frameHeader = 8 // length + crc

var errClosed = errors.New("joblog: log is closed")

// ErrDegraded is returned (wrapped around the original failure) by every
// Append after a write or fsync error has left the on-disk tail in an
// unknown state. The log is read-only from that point on; the owning
// node should stop acknowledging new work and drain.
var ErrDegraded = errors.New("joblog: degraded, log is read-only")

// Open opens (or creates) the log in dir, replays every recoverable
// record into o.Replay, recovers from a torn tail, and leaves the log
// positioned for appends.
func Open(dir string, o Options) (*Log, error) {
	o.fill()
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("joblog: %w", err)
	}
	l := &Log{dir: dir, opts: o, nextSeq: 1}
	nums, err := l.segmentNums()
	if err != nil {
		return nil, err
	}
	for i, n := range nums {
		if err := l.replaySegment(n, i == len(nums)-1); err != nil {
			return nil, err
		}
	}
	// Append into the last existing segment, or start the first one.
	num := 1
	if len(nums) > 0 {
		num = nums[len(nums)-1]
	}
	if err := l.openSegment(num); err != nil {
		return nil, err
	}
	return l, nil
}

// segPath names segment n.
func (l *Log) segPath(n int) string {
	return filepath.Join(l.dir, fmt.Sprintf("%08d.seg", n))
}

// segmentNums lists existing segment numbers, ascending.
func (l *Log) segmentNums() ([]int, error) {
	ents, err := os.ReadDir(l.dir)
	if err != nil {
		return nil, fmt.Errorf("joblog: %w", err)
	}
	var nums []int
	for _, e := range ents {
		var n int
		if _, err := fmt.Sscanf(e.Name(), "%08d.seg", &n); err == nil && fmt.Sprintf("%08d.seg", n) == e.Name() {
			nums = append(nums, n)
		}
	}
	sort.Ints(nums)
	return nums, nil
}

// replaySegment scans one segment, delivering records to the replay
// callback. On the last segment a bad tail is truncated back to the
// last good frame; on earlier segments the remainder is skipped.
func (l *Log) replaySegment(n int, last bool) error {
	f, err := os.Open(l.segPath(n))
	if err != nil {
		return fmt.Errorf("joblog: %w", err)
	}
	defer f.Close()
	var off int64
	var hdr [frameHeader]byte
	for {
		if _, err := io.ReadFull(f, hdr[:]); err != nil {
			if err == io.EOF {
				return nil // clean end
			}
			return l.badTail(f, n, off, last, err)
		}
		length := binary.LittleEndian.Uint32(hdr[:4])
		crc := binary.LittleEndian.Uint32(hdr[4:])
		if length == 0 || length > 64<<20 {
			return l.badTail(f, n, off, last, fmt.Errorf("frame length %d", length))
		}
		payload := make([]byte, length)
		if _, err := io.ReadFull(f, payload); err != nil {
			return l.badTail(f, n, off, last, err)
		}
		if crc32.ChecksumIEEE(payload) != crc {
			return l.badTail(f, n, off, last, errors.New("crc mismatch"))
		}
		var rec Record
		if err := json.Unmarshal(payload, &rec); err != nil {
			return l.badTail(f, n, off, last, err)
		}
		off += frameHeader + int64(length)
		l.st.Replayed++
		if rec.Seq >= l.nextSeq {
			l.nextSeq = rec.Seq + 1
		}
		if l.opts.Replay != nil {
			if err := l.opts.Replay(rec); err != nil {
				return fmt.Errorf("joblog: replay: %w", err)
			}
		}
	}
}

// badTail handles an unreadable frame at offset off of segment n: on
// the last segment the file is truncated to the good prefix (torn
// write recovery); earlier segments just skip their remainder.
func (l *Log) badTail(f *os.File, n int, off int64, last bool, cause error) error {
	l.st.CorruptFrames++
	if !last {
		return nil // skip the rest of this segment, keep replaying
	}
	l.st.TornTails++
	fi, err := f.Stat()
	if err != nil {
		return fmt.Errorf("joblog: %w", err)
	}
	if fi.Size() > off {
		l.st.TruncatedBytes += fi.Size() - off
		if err := os.Truncate(l.segPath(n), off); err != nil {
			return fmt.Errorf("joblog: truncating torn tail (%v): %w", cause, err)
		}
	}
	return nil
}

// openSegment opens segment n for appending, creating it if needed.
func (l *Log) openSegment(n int) error {
	f, err := os.OpenFile(l.segPath(n), os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return fmt.Errorf("joblog: %w", err)
	}
	fi, err := f.Stat()
	if err != nil {
		f.Close()
		return fmt.Errorf("joblog: %w", err)
	}
	l.f, l.fileNum, l.size = f, n, fi.Size()
	return nil
}

// Append durably appends one record and returns it with its assigned
// sequence number. The record is fsync'd before Append returns (unless
// Options.NoSync), so an acknowledged append survives a crash.
func (l *Log) Append(typ, jobID string, data any) (Record, error) {
	rec := Record{Type: typ, JobID: jobID, Time: time.Now().UTC()}
	if data != nil {
		raw, err := json.Marshal(data)
		if err != nil {
			return Record{}, fmt.Errorf("joblog: %w", err)
		}
		rec.Data = raw
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return Record{}, errClosed
	}
	if l.broken != nil {
		return Record{}, fmt.Errorf("%w (cause: %v)", ErrDegraded, l.broken)
	}
	if err := faultinject.Fire(l.opts.Injector, faultinject.PointJoblogAppend); err != nil {
		return Record{}, l.degrade(err)
	}
	rec.Seq = l.nextSeq
	payload, err := json.Marshal(rec)
	if err != nil {
		return Record{}, fmt.Errorf("joblog: %w", err)
	}
	if err := l.writeFrame(payload); err != nil {
		return Record{}, l.degrade(err)
	}
	l.nextSeq++
	l.st.Appends++
	if l.size > l.opts.SegmentBytes {
		if err := l.rotate(); err != nil {
			return Record{}, l.degrade(err)
		}
	}
	return rec, nil
}

// degrade records the first append failure and flips the log to
// read-only (caller holds mu). The returned error wraps both ErrDegraded
// and the cause so callers can match either.
func (l *Log) degrade(cause error) error {
	if l.broken == nil {
		l.broken = cause
	}
	return fmt.Errorf("%w: %w", ErrDegraded, cause)
}

// Degraded reports whether an append failure has made the log read-only.
func (l *Log) Degraded() bool {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.broken != nil
}

// writeFrame frames, writes and syncs one payload (caller holds mu).
func (l *Log) writeFrame(payload []byte) error {
	buf := make([]byte, frameHeader+len(payload))
	binary.LittleEndian.PutUint32(buf[:4], uint32(len(payload)))
	binary.LittleEndian.PutUint32(buf[4:8], crc32.ChecksumIEEE(payload))
	copy(buf[frameHeader:], payload)
	if _, err := l.f.Write(buf); err != nil {
		return fmt.Errorf("joblog: %w", err)
	}
	if !l.opts.NoSync {
		if err := l.f.Sync(); err != nil {
			return fmt.Errorf("joblog: %w", err)
		}
	}
	l.size += int64(len(buf))
	l.st.AppendedBytes += int64(len(buf))
	return nil
}

// rotate closes the active segment and starts the next (caller holds mu).
func (l *Log) rotate() error {
	if err := l.f.Close(); err != nil {
		return fmt.Errorf("joblog: %w", err)
	}
	if err := l.openSegment(l.fileNum + 1); err != nil {
		return err
	}
	return l.syncDir()
}

// syncDir fsyncs the log directory so file creates/renames are durable.
func (l *Log) syncDir() error {
	d, err := os.Open(l.dir)
	if err != nil {
		return fmt.Errorf("joblog: %w", err)
	}
	defer d.Close()
	if err := d.Sync(); err != nil && !errors.Is(err, errors.ErrUnsupported) {
		return fmt.Errorf("joblog: %w", err)
	}
	return nil
}

// Compact rewrites the log to hold exactly the given snapshot records
// (fresh sequence numbers are assigned in order) and deletes every
// older segment, bounding replay time after long uptimes. The snapshot
// lands in a segment numbered above all existing ones before the old
// files are removed, so a crash mid-compaction replays the old records
// followed by the snapshot — which folds to the same state under
// last-write-wins replay.
func (l *Log) Compact(snapshot []Record) error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return errClosed
	}
	if l.broken != nil {
		return fmt.Errorf("%w (cause: %v)", ErrDegraded, l.broken)
	}
	old, err := l.segmentNums()
	if err != nil {
		return err
	}
	next := l.fileNum + 1
	if err := l.f.Close(); err != nil {
		return fmt.Errorf("joblog: %w", err)
	}
	tmp, err := os.CreateTemp(l.dir, ".compact-*")
	if err != nil {
		return fmt.Errorf("joblog: %w", err)
	}
	l.f, l.fileNum, l.size = tmp, next, 0
	for _, rec := range snapshot {
		rec.Seq = l.nextSeq
		payload, err := json.Marshal(rec)
		if err != nil {
			tmp.Close()
			os.Remove(tmp.Name())
			return fmt.Errorf("joblog: %w", err)
		}
		if err := l.writeFrame(payload); err != nil {
			tmp.Close()
			os.Remove(tmp.Name())
			return l.degrade(err)
		}
		l.nextSeq++
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		os.Remove(tmp.Name())
		return l.degrade(err)
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmp.Name())
		return l.degrade(err)
	}
	if err := os.Rename(tmp.Name(), l.segPath(next)); err != nil {
		return l.degrade(err)
	}
	if err := l.syncDir(); err != nil {
		return l.degrade(err)
	}
	for _, n := range old {
		if n < next {
			_ = os.Remove(l.segPath(n))
		}
	}
	l.st.Compactions++
	return l.openSegment(next)
}

// Stats returns a snapshot of the log's counters.
func (l *Log) Stats() Stats {
	l.mu.Lock()
	defer l.mu.Unlock()
	st := l.st
	st.ActiveBytes = l.size
	st.NextSeq = l.nextSeq
	st.Degraded = l.broken != nil
	if nums, err := l.segmentNums(); err == nil {
		st.Segments = len(nums)
	}
	return st
}

// Close syncs and closes the active segment. Appends after Close fail.
func (l *Log) Close() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return nil
	}
	l.closed = true
	if !l.opts.NoSync {
		if err := l.f.Sync(); err != nil {
			l.f.Close()
			return fmt.Errorf("joblog: %w", err)
		}
	}
	return l.f.Close()
}
