package joblog

import (
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"testing"

	"github.com/trap-repro/trap/internal/faultinject"
)

// collect reopens dir and returns every replayed record.
func collect(t *testing.T, dir string) ([]Record, *Log) {
	t.Helper()
	var recs []Record
	l, err := Open(dir, Options{Replay: func(r Record) error {
		recs = append(recs, r)
		return nil
	}})
	if err != nil {
		t.Fatal(err)
	}
	return recs, l
}

func TestAppendReplayRoundTrip(t *testing.T) {
	dir := t.TempDir()
	l, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	type payload struct {
		Status string `json:"status"`
		N      int    `json:"n"`
	}
	var want []Record
	for i := 0; i < 20; i++ {
		rec, err := l.Append("state", fmt.Sprintf("job-%d", i%5), payload{Status: "running", N: i})
		if err != nil {
			t.Fatal(err)
		}
		if rec.Seq != uint64(i+1) {
			t.Fatalf("append %d got seq %d", i, rec.Seq)
		}
		want = append(want, rec)
	}
	if st := l.Stats(); st.Appends != 20 || st.NextSeq != 21 {
		t.Fatalf("stats after appends: %+v", st)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := l.Append("state", "job-0", nil); err == nil {
		t.Fatal("append after close succeeded")
	}

	got, l2 := collect(t, dir)
	defer l2.Close()
	if len(got) != len(want) {
		t.Fatalf("replayed %d records, want %d", len(got), len(want))
	}
	for i := range got {
		if got[i].Seq != want[i].Seq || got[i].Type != want[i].Type || got[i].JobID != want[i].JobID {
			t.Fatalf("record %d: got %+v want %+v", i, got[i], want[i])
		}
		var p payload
		if err := json.Unmarshal(got[i].Data, &p); err != nil || p.N != i {
			t.Fatalf("record %d payload %s: %v", i, got[i].Data, err)
		}
	}
	// The sequence continues where the first process left off.
	rec, err := l2.Append("state", "job-0", nil)
	if err != nil {
		t.Fatal(err)
	}
	if rec.Seq != 21 {
		t.Fatalf("post-replay append got seq %d, want 21", rec.Seq)
	}
}

func TestSegmentRotation(t *testing.T) {
	dir := t.TempDir()
	l, err := Open(dir, Options{SegmentBytes: 256, NoSync: true})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 50; i++ {
		if _, err := l.Append("submit", fmt.Sprintf("job-%d", i), map[string]string{"advisor": "Drop"}); err != nil {
			t.Fatal(err)
		}
	}
	st := l.Stats()
	if st.Segments < 2 {
		t.Fatalf("expected multiple segments, got %d", st.Segments)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	got, l2 := collect(t, dir)
	defer l2.Close()
	if len(got) != 50 {
		t.Fatalf("replayed %d records across segments, want 50", len(got))
	}
	for i, r := range got {
		if r.Seq != uint64(i+1) {
			t.Fatalf("record %d out of order: seq %d", i, r.Seq)
		}
	}
}

// TestTornTailRecovery simulates a crash mid-append: extra garbage
// bytes on the tail must be truncated away and the log stay appendable.
func TestTornTailRecovery(t *testing.T) {
	dir := t.TempDir()
	l, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		if _, err := l.Append("state", "job-1", nil); err != nil {
			t.Fatal(err)
		}
	}
	l.Close()

	// Append a torn frame: a header that promises more bytes than exist.
	seg := filepath.Join(dir, "00000001.seg")
	f, err := os.OpenFile(seg, os.O_WRONLY|os.O_APPEND, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write([]byte{0xFF, 0x00, 0x00, 0x00, 1, 2, 3, 4, 5}); err != nil {
		t.Fatal(err)
	}
	f.Close()
	before, err := os.Stat(seg)
	if err != nil {
		t.Fatal(err)
	}

	got, l2 := collect(t, dir)
	if len(got) != 5 {
		t.Fatalf("replayed %d records after torn tail, want 5", len(got))
	}
	st := l2.Stats()
	if st.CorruptFrames != 1 || st.TruncatedBytes == 0 {
		t.Fatalf("stats after torn-tail recovery: %+v", st)
	}
	after, err := os.Stat(seg)
	if err != nil {
		t.Fatal(err)
	}
	if after.Size() >= before.Size() {
		t.Fatalf("tail not truncated: %d -> %d bytes", before.Size(), after.Size())
	}
	// The recovered log accepts new appends and a further replay sees
	// exactly the good records plus the new one.
	if _, err := l2.Append("state", "job-2", nil); err != nil {
		t.Fatal(err)
	}
	l2.Close()
	got, l3 := collect(t, dir)
	defer l3.Close()
	if len(got) != 6 || got[5].JobID != "job-2" {
		t.Fatalf("post-recovery replay: %d records, last %+v", len(got), got[len(got)-1])
	}
}

// TestCRCMismatch flips a payload byte mid-log: replay must stop at the
// corruption instead of delivering a damaged record.
func TestCRCMismatch(t *testing.T) {
	dir := t.TempDir()
	l, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		if _, err := l.Append("state", "job-1", map[string]int{"i": i}); err != nil {
			t.Fatal(err)
		}
	}
	l.Close()

	seg := filepath.Join(dir, "00000001.seg")
	raw, err := os.ReadFile(seg)
	if err != nil {
		t.Fatal(err)
	}
	raw[len(raw)-2] ^= 0xFF // corrupt the last record's payload
	if err := os.WriteFile(seg, raw, 0o644); err != nil {
		t.Fatal(err)
	}

	got, l2 := collect(t, dir)
	defer l2.Close()
	if len(got) != 2 {
		t.Fatalf("replayed %d records past a CRC mismatch, want 2", len(got))
	}
	if st := l2.Stats(); st.CorruptFrames != 1 {
		t.Fatalf("corrupt frames = %d, want 1", st.CorruptFrames)
	}
}

func TestCompact(t *testing.T) {
	dir := t.TempDir()
	l, err := Open(dir, Options{SegmentBytes: 256, NoSync: true})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 40; i++ {
		if _, err := l.Append("state", fmt.Sprintf("job-%d", i), nil); err != nil {
			t.Fatal(err)
		}
	}
	// Keep a 3-record snapshot; everything else is garbage.
	snap := []Record{
		{Type: "submit", JobID: "job-7"},
		{Type: "state", JobID: "job-7"},
		{Type: "result", JobID: "job-7"},
	}
	if err := l.Compact(snap); err != nil {
		t.Fatal(err)
	}
	if st := l.Stats(); st.Segments != 1 {
		t.Fatalf("segments after compact = %d, want 1", st.Segments)
	}
	// Appends continue after compaction.
	if _, err := l.Append("state", "job-99", nil); err != nil {
		t.Fatal(err)
	}
	l.Close()

	got, l2 := collect(t, dir)
	defer l2.Close()
	if len(got) != 4 {
		t.Fatalf("replayed %d records after compact, want 4", len(got))
	}
	if got[0].JobID != "job-7" || got[3].JobID != "job-99" {
		t.Fatalf("compacted replay order: %+v", got)
	}
	for i := 1; i < len(got); i++ {
		if got[i].Seq <= got[i-1].Seq {
			t.Fatalf("non-monotonic seq after compact: %d then %d", got[i-1].Seq, got[i].Seq)
		}
	}
}

// TestConcurrentAppends hammers Append from many goroutines (run under
// -race in CI) and verifies every record is recovered exactly once.
func TestConcurrentAppends(t *testing.T) {
	dir := t.TempDir()
	l, err := Open(dir, Options{SegmentBytes: 1 << 10, NoSync: true})
	if err != nil {
		t.Fatal(err)
	}
	const workers, per = 8, 25
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				if _, err := l.Append("state", fmt.Sprintf("job-%d", w), map[string]int{"i": i}); err != nil {
					t.Error(err)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	if _, err := l.Stats(), l.Close(); err != nil {
		t.Fatal(err)
	}
	got, l2 := collect(t, dir)
	defer l2.Close()
	if len(got) != workers*per {
		t.Fatalf("replayed %d records, want %d", len(got), workers*per)
	}
	seen := map[uint64]bool{}
	for _, r := range got {
		if seen[r.Seq] {
			t.Fatalf("duplicate seq %d", r.Seq)
		}
		seen[r.Seq] = true
	}
}

// TestAppendFailureDegrades proves the read-only degradation contract:
// one injected append failure (standing in for ENOSPC or a bad disk)
// makes every subsequent append fail with ErrDegraded, while a fresh
// Open on the same directory recovers the good prefix and is writable.
func TestAppendFailureDegrades(t *testing.T) {
	dir := t.TempDir()
	inj := faultinject.NewSeeded(1, faultinject.Rule{
		Point: faultinject.PointJoblogAppend, Action: faultinject.ActError,
		Every: 1, After: 1, Count: 1, // first append fine, second fails
	})
	l, err := Open(dir, Options{Injector: inj})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := l.Append("a", "job-1", nil); err != nil {
		t.Fatalf("first append: %v", err)
	}
	if _, err := l.Append("b", "job-1", nil); err == nil {
		t.Fatal("injected append failure not surfaced")
	} else if !errors.Is(err, ErrDegraded) {
		t.Fatalf("injected failure is %v, want ErrDegraded", err)
	}
	if !l.Degraded() {
		t.Fatal("log not degraded after append failure")
	}
	// Sticky: later appends fail without touching the injector, and
	// compaction is refused too.
	if _, err := l.Append("c", "job-1", nil); !errors.Is(err, ErrDegraded) {
		t.Fatalf("append after degradation: %v, want ErrDegraded", err)
	}
	if err := l.Compact(nil); !errors.Is(err, ErrDegraded) {
		t.Fatalf("compact after degradation: %v, want ErrDegraded", err)
	}
	st := l.Stats()
	if !st.Degraded || st.Appends != 1 {
		t.Fatalf("stats after degradation: %+v", st)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}

	// Recovery is a restart: reopen, replay the acknowledged record,
	// append again.
	recs, l2 := collect(t, dir)
	defer l2.Close()
	if len(recs) != 1 || recs[0].Type != "a" {
		t.Fatalf("reopen replayed %+v, want the one acknowledged record", recs)
	}
	if l2.Degraded() {
		t.Fatal("fresh open inherited degradation")
	}
	if _, err := l2.Append("d", "job-1", nil); err != nil {
		t.Fatalf("append after reopen: %v", err)
	}
}

// TestStatsCounters pins the new durability counters: torn-tail
// truncations and compactions are counted separately from the
// long-standing CorruptFrames total.
func TestStatsCounters(t *testing.T) {
	dir := t.TempDir()
	l, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		if _, err := l.Append("s", fmt.Sprintf("job-%d", i), nil); err != nil {
			t.Fatal(err)
		}
	}
	if err := l.Compact([]Record{{Type: "s", JobID: "job-2"}}); err != nil {
		t.Fatal(err)
	}
	if st := l.Stats(); st.Compactions != 1 || st.TornTails != 0 {
		t.Fatalf("stats after compact: %+v", st)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}

	// Tear the tail and reopen: one torn-tail truncation, one corrupt
	// frame, no compactions in the new process lifetime.
	segs, err := filepath.Glob(filepath.Join(dir, "*.seg"))
	if err != nil || len(segs) == 0 {
		t.Fatalf("segments: %v %v", segs, err)
	}
	f, err := os.OpenFile(segs[len(segs)-1], os.O_APPEND|os.O_WRONLY, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write([]byte{9, 0, 0, 0}); err != nil { // half a header
		t.Fatal(err)
	}
	f.Close()
	_, l2 := collect(t, dir)
	defer l2.Close()
	if st := l2.Stats(); st.TornTails != 1 || st.CorruptFrames != 1 || st.Compactions != 0 {
		t.Fatalf("stats after torn-tail reopen: %+v", st)
	}
}
