// Package buildinfo resolves the binary's provenance — git revision and
// Go toolchain version — once, for use by the trap_build_info metric,
// GET /version, and the benchmark provenance records.
//
// The revision resolves in priority order:
//
//  1. the -ldflags override (go build -ldflags "-X .../buildinfo.gitRev=abc123"),
//  2. the vcs.revision setting stamped by `go build` in a git checkout,
//  3. "unknown".
//
// Callers that can do better at runtime (cmd/experiments execs git when
// building benches from a dirty tree) should treat "unknown" as the cue.
package buildinfo

import (
	"runtime"
	"runtime/debug"
	"sync"
)

// gitRev is the -ldflags injection point; leave empty to fall back to
// the build-stamped VCS revision.
var gitRev string

// Info is the binary's resolved provenance.
type Info struct {
	// GitRev is the short (12-char) git revision, or "unknown".
	GitRev string `json:"gitRev"`
	// GoVersion is the toolchain that built the binary.
	GoVersion string `json:"goVersion"`
	// Module is the main module path when stamped, else "".
	Module string `json:"module,omitempty"`
	// Dirty marks a build from a tree with uncommitted changes (only
	// known when the VCS stamp carries vcs.modified).
	Dirty bool `json:"dirty,omitempty"`
}

var (
	once sync.Once
	info Info
)

// Get resolves the binary's provenance (cached after the first call).
func Get() Info {
	once.Do(func() {
		info = Info{GitRev: gitRev, GoVersion: runtime.Version()}
		bi, ok := debug.ReadBuildInfo()
		if !ok {
			if info.GitRev == "" {
				info.GitRev = "unknown"
			}
			return
		}
		info.Module = bi.Main.Path
		for _, s := range bi.Settings {
			switch s.Key {
			case "vcs.revision":
				if info.GitRev == "" {
					info.GitRev = s.Value
				}
			case "vcs.modified":
				info.Dirty = s.Value == "true"
			}
		}
		if len(info.GitRev) > 12 {
			info.GitRev = info.GitRev[:12]
		}
		if info.GitRev == "" {
			info.GitRev = "unknown"
		}
	})
	return info
}
