// Package schema defines the logical database model of the simulated DBMS:
// tables with typed columns and ground-truth value distributions, the join
// graph, cross-column correlations, and (hypothetical) index definitions.
package schema

import (
	"fmt"
	"sort"
	"strconv"
	"strings"

	"github.com/trap-repro/trap/internal/sqlx"
	"github.com/trap-repro/trap/internal/stats"
)

// ColType is the logical type of a column.
type ColType int

// Supported column types. Dates are modelled as integer epoch days and
// strings as an enumerable value dictionary, so every column has a numeric
// ground-truth distribution.
const (
	IntCol ColType = iota
	FloatCol
	StringCol
	DateCol
)

// String names the column type.
func (t ColType) String() string {
	switch t {
	case IntCol:
		return "int"
	case FloatCol:
		return "float"
	case StringCol:
		return "string"
	case DateCol:
		return "date"
	}
	return "unknown"
}

// PageSize is the storage page size in bytes (PostgreSQL's default).
const PageSize = 8192

// rowOverhead approximates the per-tuple header cost in bytes.
const rowOverhead = 24

// Column describes one column: its type, storage width, and ground-truth
// value distribution.
type Column struct {
	Name  string
	Type  ColType
	Width int
	Dist  stats.Dist
}

// DatumOf returns the SQL literal for the i-th distinct value of the column.
func (c *Column) DatumOf(i int64) sqlx.Datum {
	v := c.Dist.ValueAt(i)
	if c.Type == StringCol {
		return sqlx.StrDatum(fmt.Sprintf("%s_%d", c.Name, int64(v)))
	}
	return sqlx.NumDatum(v)
}

// NumOf maps a SQL literal back to the column's numeric domain. The second
// result is false when the literal cannot belong to the column.
func (c *Column) NumOf(d sqlx.Datum) (float64, bool) {
	if c.Type == StringCol {
		if d.IsNum {
			return 0, false
		}
		idx := strings.LastIndexByte(d.Str, '_')
		if idx < 0 {
			return 0, false
		}
		v, err := strconv.ParseFloat(d.Str[idx+1:], 64)
		if err != nil {
			return 0, false
		}
		return v, true
	}
	if !d.IsNum {
		return 0, false
	}
	return d.Num, true
}

// Table describes one table.
type Table struct {
	Name    string
	Rows    int64
	Columns []Column

	colIdx map[string]int
}

// NewTable builds a table and indexes its columns by name.
func NewTable(name string, rows int64, cols []Column) *Table {
	t := &Table{Name: name, Rows: rows, Columns: cols, colIdx: map[string]int{}}
	for i, c := range cols {
		t.colIdx[c.Name] = i
	}
	return t
}

// Column returns the named column, or nil.
func (t *Table) Column(name string) *Column {
	i, ok := t.colIdx[name]
	if !ok {
		return nil
	}
	return &t.Columns[i]
}

// RowWidth returns the average row width in bytes including tuple overhead.
func (t *Table) RowWidth() float64 {
	w := float64(rowOverhead)
	for _, c := range t.Columns {
		w += float64(c.Width)
	}
	return w
}

// Pages returns the number of heap pages the table occupies.
func (t *Table) Pages() float64 {
	p := float64(t.Rows) * t.RowWidth() / PageSize
	if p < 1 {
		return 1
	}
	return p
}

// SizeBytes returns the heap size of the table in bytes.
func (t *Table) SizeBytes() float64 { return t.Pages() * PageSize }

// JoinEdge is an edge of the schema's join graph: the pair of columns on
// which two tables meaningfully join (PK/FK relationships).
type JoinEdge struct {
	LeftTable   string
	LeftColumn  string
	RightTable  string
	RightColumn string
}

// Schema is a full logical database: tables, join graph, and ground-truth
// cross-column correlations.
type Schema struct {
	Name   string
	Tables []*Table
	Joins  []JoinEdge

	// correlations maps corrKey(table, colA, colB) to a coefficient in
	// [0, 1]: 0 = independent (the optimizer's universal assumption),
	// 1 = perfectly correlated.
	correlations map[string]float64

	tblIdx map[string]*Table
}

// New builds a schema from tables and join edges.
func New(name string, tables []*Table, joins []JoinEdge) *Schema {
	s := &Schema{
		Name:         name,
		Tables:       tables,
		Joins:        joins,
		correlations: map[string]float64{},
		tblIdx:       map[string]*Table{},
	}
	for _, t := range tables {
		s.tblIdx[t.Name] = t
	}
	return s
}

// Table returns the named table, or nil.
func (s *Schema) Table(name string) *Table { return s.tblIdx[name] }

// Column resolves a column reference, or returns nil.
func (s *Schema) Column(ref sqlx.ColumnRef) *Column {
	t := s.Table(ref.Table)
	if t == nil {
		return nil
	}
	return t.Column(ref.Column)
}

// TotalSizeBytes returns the total heap size of all tables.
func (s *Schema) TotalSizeBytes() float64 {
	var sum float64
	for _, t := range s.Tables {
		sum += t.SizeBytes()
	}
	return sum
}

// ColumnCount returns the total number of columns across all tables.
func (s *Schema) ColumnCount() int {
	n := 0
	for _, t := range s.Tables {
		n += len(t.Columns)
	}
	return n
}

func corrKey(table, a, b string) string {
	if a > b {
		a, b = b, a
	}
	return table + "." + a + "|" + b
}

// SetCorrelation records the ground-truth correlation between two columns
// of the same table.
func (s *Schema) SetCorrelation(table, colA, colB string, corr float64) {
	s.correlations[corrKey(table, colA, colB)] = corr
}

// Correlation returns the recorded correlation between two columns of a
// table (0 when none is recorded).
func (s *Schema) Correlation(table, colA, colB string) float64 {
	return s.correlations[corrKey(table, colA, colB)]
}

// JoinsOf returns the join edges incident to a table.
func (s *Schema) JoinsOf(table string) []JoinEdge {
	var out []JoinEdge
	for _, j := range s.Joins {
		if j.LeftTable == table || j.RightTable == table {
			out = append(out, j)
		}
	}
	return out
}

// JoinBetween returns the join edge connecting two tables, if any.
func (s *Schema) JoinBetween(a, b string) (JoinEdge, bool) {
	for _, j := range s.Joins {
		if (j.LeftTable == a && j.RightTable == b) || (j.LeftTable == b && j.RightTable == a) {
			return j, true
		}
	}
	return JoinEdge{}, false
}

// Validate checks that every join edge references existing columns.
func (s *Schema) Validate() error {
	for _, j := range s.Joins {
		if s.Column(sqlx.ColumnRef{Table: j.LeftTable, Column: j.LeftColumn}) == nil {
			return fmt.Errorf("schema %s: join references missing %s.%s", s.Name, j.LeftTable, j.LeftColumn)
		}
		if s.Column(sqlx.ColumnRef{Table: j.RightTable, Column: j.RightColumn}) == nil {
			return fmt.Errorf("schema %s: join references missing %s.%s", s.Name, j.RightTable, j.RightColumn)
		}
	}
	seen := map[string]bool{}
	for _, t := range s.Tables {
		if seen[t.Name] {
			return fmt.Errorf("schema %s: duplicate table %s", s.Name, t.Name)
		}
		seen[t.Name] = true
	}
	return nil
}

// Index is a (possibly multi-column) B-tree index definition.
type Index struct {
	Table   string
	Columns []string
}

// Key returns the canonical identity of the index, e.g. "t(a,b)".
func (ix Index) Key() string {
	return ix.Table + "(" + strings.Join(ix.Columns, ",") + ")"
}

// Equal reports whether two indexes are identical. It compares fields
// directly rather than rendered keys: Contains/Add/Remove run on the
// advisor's what-if hot path, where building two strings per comparison
// dominated the allocation profile.
func (ix Index) Equal(o Index) bool {
	if ix.Table != o.Table || len(ix.Columns) != len(o.Columns) {
		return false
	}
	for i, c := range ix.Columns {
		if o.Columns[i] != c {
			return false
		}
	}
	return true
}

// Less orders indexes by their canonical identity (table, then column
// list lexicographically) without rendering the key strings.
func (ix Index) Less(o Index) bool {
	if ix.Table != o.Table {
		return ix.Table < o.Table
	}
	n := len(ix.Columns)
	if len(o.Columns) < n {
		n = len(o.Columns)
	}
	for i := 0; i < n; i++ {
		if ix.Columns[i] != o.Columns[i] {
			return ix.Columns[i] < o.Columns[i]
		}
	}
	return len(ix.Columns) < len(o.Columns)
}

// IsPrefixOf reports whether ix's column list is a prefix of o's on the
// same table.
func (ix Index) IsPrefixOf(o Index) bool {
	if ix.Table != o.Table || len(ix.Columns) > len(o.Columns) {
		return false
	}
	for i, c := range ix.Columns {
		if o.Columns[i] != c {
			return false
		}
	}
	return true
}

// SizeBytes estimates the storage footprint of the index.
func (ix Index) SizeBytes(s *Schema) float64 {
	t := s.Table(ix.Table)
	if t == nil {
		return 0
	}
	entry := 16.0 // item pointer + alignment
	for _, cn := range ix.Columns {
		if c := t.Column(cn); c != nil {
			entry += float64(c.Width)
		}
	}
	leaf := float64(t.Rows) * entry / 0.9 // fill factor
	pages := leaf/PageSize + 1
	return pages * PageSize
}

// Config is a set of indexes (an index configuration).
type Config []Index

// Contains reports whether the configuration includes the index.
func (c Config) Contains(ix Index) bool {
	for _, x := range c {
		if x.Equal(ix) {
			return true
		}
	}
	return false
}

// Add returns a new configuration with ix appended (no-op if present).
func (c Config) Add(ix Index) Config {
	if c.Contains(ix) {
		return c
	}
	out := make(Config, len(c)+1)
	copy(out, c)
	out[len(c)] = ix
	return out
}

// Remove returns a new configuration without ix.
func (c Config) Remove(ix Index) Config {
	out := make(Config, 0, len(c))
	for _, x := range c {
		if !x.Equal(ix) {
			out = append(out, x)
		}
	}
	return out
}

// SizeBytes returns the total storage of the configuration.
func (c Config) SizeBytes(s *Schema) float64 {
	var sum float64
	for _, ix := range c {
		sum += ix.SizeBytes(s)
	}
	return sum
}

// Key returns a canonical, order-independent identity for the configuration.
func (c Config) Key() string {
	keys := make([]string, len(c))
	for i, ix := range c {
		keys[i] = ix.Key()
	}
	sort.Strings(keys)
	return strings.Join(keys, ";")
}

// OnTable returns the subset of indexes on the given table.
func (c Config) OnTable(table string) Config {
	var out Config
	for _, ix := range c {
		if ix.Table == table {
			out = append(out, ix)
		}
	}
	return out
}

// Clone returns a copy of the configuration.
func (c Config) Clone() Config { return append(Config(nil), c...) }
