package schema

import (
	"testing"

	"github.com/trap-repro/trap/internal/sqlx"
	"github.com/trap-repro/trap/internal/stats"
)

func testSchema() *Schema {
	t1 := NewTable("orders", 100000, []Column{
		{Name: "id", Type: IntCol, Width: 8, Dist: stats.Dist{NDV: 100000, Min: 0, Max: 99999}},
		{Name: "cust_id", Type: IntCol, Width: 8, Dist: stats.Dist{NDV: 5000, Min: 0, Max: 4999}},
		{Name: "status", Type: StringCol, Width: 12, Dist: stats.Dist{NDV: 5, Min: 0, Max: 4, Skew: 1}},
		{Name: "total", Type: FloatCol, Width: 8, Dist: stats.Dist{NDV: 10000, Min: 0, Max: 100000}},
	})
	t2 := NewTable("customers", 5000, []Column{
		{Name: "id", Type: IntCol, Width: 8, Dist: stats.Dist{NDV: 5000, Min: 0, Max: 4999}},
		{Name: "region", Type: StringCol, Width: 16, Dist: stats.Dist{NDV: 25, Min: 0, Max: 24}},
	})
	s := New("test", []*Table{t1, t2}, []JoinEdge{
		{LeftTable: "orders", LeftColumn: "cust_id", RightTable: "customers", RightColumn: "id"},
	})
	s.SetCorrelation("orders", "status", "total", 0.6)
	return s
}

func TestSchemaLookups(t *testing.T) {
	s := testSchema()
	if err := s.Validate(); err != nil {
		t.Fatal(err)
	}
	if s.Table("orders") == nil || s.Table("nope") != nil {
		t.Error("Table lookup wrong")
	}
	if s.Column(sqlx.ColumnRef{Table: "orders", Column: "status"}) == nil {
		t.Error("Column lookup failed")
	}
	if s.Column(sqlx.ColumnRef{Table: "orders", Column: "missing"}) != nil {
		t.Error("missing column resolved")
	}
	if s.ColumnCount() != 6 {
		t.Errorf("ColumnCount = %d, want 6", s.ColumnCount())
	}
	if _, ok := s.JoinBetween("orders", "customers"); !ok {
		t.Error("JoinBetween failed")
	}
	if _, ok := s.JoinBetween("customers", "orders"); !ok {
		t.Error("JoinBetween not symmetric")
	}
	if len(s.JoinsOf("orders")) != 1 {
		t.Error("JoinsOf wrong")
	}
}

func TestCorrelationSymmetry(t *testing.T) {
	s := testSchema()
	if s.Correlation("orders", "status", "total") != 0.6 {
		t.Error("correlation lookup failed")
	}
	if s.Correlation("orders", "total", "status") != 0.6 {
		t.Error("correlation not symmetric")
	}
	if s.Correlation("orders", "id", "total") != 0 {
		t.Error("default correlation should be 0")
	}
}

func TestStringDatumRoundTrip(t *testing.T) {
	s := testSchema()
	c := s.Column(sqlx.ColumnRef{Table: "orders", Column: "status"})
	for i := int64(0); i < 5; i++ {
		d := c.DatumOf(i)
		if d.IsNum {
			t.Fatal("string column produced numeric datum")
		}
		v, ok := c.NumOf(d)
		if !ok || v != float64(i) {
			t.Errorf("NumOf(DatumOf(%d)) = %v, %v", i, v, ok)
		}
	}
	if _, ok := c.NumOf(sqlx.NumDatum(3)); ok {
		t.Error("numeric datum accepted for string column")
	}
	if _, ok := c.NumOf(sqlx.StrDatum("garbage")); ok {
		t.Error("malformed string datum accepted")
	}
}

func TestNumericDatumRoundTrip(t *testing.T) {
	s := testSchema()
	c := s.Column(sqlx.ColumnRef{Table: "orders", Column: "total"})
	d := c.DatumOf(42)
	v, ok := c.NumOf(d)
	if !ok || v != c.Dist.ValueAt(42) {
		t.Errorf("numeric round trip failed: %v %v", v, ok)
	}
	if _, ok := c.NumOf(sqlx.StrDatum("x")); ok {
		t.Error("string datum accepted for numeric column")
	}
}

func TestPagesAndSizes(t *testing.T) {
	s := testSchema()
	orders := s.Table("orders")
	if orders.Pages() <= 1 {
		t.Error("orders should span multiple pages")
	}
	if s.TotalSizeBytes() <= orders.SizeBytes() {
		t.Error("total size should exceed one table")
	}
	tiny := NewTable("tiny", 1, []Column{{Name: "a", Width: 4}})
	if tiny.Pages() != 1 {
		t.Error("minimum page count is 1")
	}
}

func TestIndexKeyAndPrefix(t *testing.T) {
	a := Index{Table: "t", Columns: []string{"x"}}
	ab := Index{Table: "t", Columns: []string{"x", "y"}}
	ba := Index{Table: "t", Columns: []string{"y", "x"}}
	if a.Key() != "t(x)" || ab.Key() != "t(x,y)" {
		t.Errorf("Key: %s %s", a.Key(), ab.Key())
	}
	if !a.IsPrefixOf(ab) {
		t.Error("x should be prefix of x,y")
	}
	if a.IsPrefixOf(ba) {
		t.Error("x should not be prefix of y,x")
	}
	if ab.IsPrefixOf(a) {
		t.Error("longer index cannot be prefix of shorter")
	}
	if ab.Equal(ba) {
		t.Error("column order matters for index identity")
	}
}

func TestConfigOps(t *testing.T) {
	s := testSchema()
	a := Index{Table: "orders", Columns: []string{"cust_id"}}
	b := Index{Table: "orders", Columns: []string{"status", "total"}}
	c := Index{Table: "customers", Columns: []string{"region"}}

	var cfg Config
	cfg = cfg.Add(a).Add(b).Add(c)
	if len(cfg) != 3 {
		t.Fatalf("len = %d", len(cfg))
	}
	if got := cfg.Add(a); len(got) != 3 {
		t.Error("Add of existing index should be no-op")
	}
	if !cfg.Contains(b) {
		t.Error("Contains failed")
	}
	cfg2 := cfg.Remove(b)
	if cfg2.Contains(b) || len(cfg2) != 2 {
		t.Error("Remove failed")
	}
	if cfg.SizeBytes(s) <= cfg2.SizeBytes(s) {
		t.Error("removing an index should shrink size")
	}
	if len(cfg.OnTable("orders")) != 2 {
		t.Error("OnTable failed")
	}
	// Key is order independent.
	rev := Config{c, b, a}
	if rev.Key() != cfg.Key() {
		t.Errorf("Key order dependence: %s vs %s", rev.Key(), cfg.Key())
	}
	clone := cfg.Clone()
	clone[0] = Index{Table: "zzz", Columns: []string{"q"}}
	if cfg[0].Table == "zzz" {
		t.Error("Clone shares storage")
	}
}

func TestIndexSize(t *testing.T) {
	s := testSchema()
	one := Index{Table: "orders", Columns: []string{"cust_id"}}
	two := Index{Table: "orders", Columns: []string{"cust_id", "total"}}
	if two.SizeBytes(s) <= one.SizeBytes(s) {
		t.Error("wider index should be larger")
	}
	missing := Index{Table: "nope", Columns: []string{"x"}}
	if missing.SizeBytes(s) != 0 {
		t.Error("missing table index size should be 0")
	}
}

func TestValidateCatchesBadJoin(t *testing.T) {
	t1 := NewTable("a", 10, []Column{{Name: "x", Width: 4}})
	s := New("bad", []*Table{t1}, []JoinEdge{{LeftTable: "a", LeftColumn: "x", RightTable: "b", RightColumn: "y"}})
	if err := s.Validate(); err == nil {
		t.Error("expected validation error for dangling join")
	}
}
