package trace

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"
)

func TestSpanTree(t *testing.T) {
	tr := New(Options{})
	ctx, root := tr.Start(context.Background(), "job")
	if root == nil {
		t.Fatal("root span is nil")
	}
	root.Str("dataset", "tpch")

	mctx, measure := Start(ctx, "measure")
	measure.Int("cells", 2)
	for i := 0; i < 2; i++ {
		_, cell := Start(mctx, "cell")
		cell.Int("i", int64(i))
		cell.Event("checkpoint", Attr{Key: "n", Value: i})
		cell.End()
	}
	measure.End()
	root.End()

	got, ok := tr.Get(root.TraceID())
	if !ok {
		t.Fatalf("finished trace %s not retained", root.TraceID())
	}
	if got.Op() != "job" || got.Len() != 4 {
		t.Fatalf("op=%q len=%d, want job/4", got.Op(), got.Len())
	}
	tree := got.Tree()
	if tree.Root == nil || tree.Root.Name != "job" {
		t.Fatalf("bad tree root: %+v", tree.Root)
	}
	if tree.Root.Attrs["dataset"] != "tpch" {
		t.Fatalf("root attrs: %v", tree.Root.Attrs)
	}
	if len(tree.Root.Children) != 1 || tree.Root.Children[0].Name != "measure" {
		t.Fatalf("tree level 2: %+v", tree.Root.Children)
	}
	cells := tree.Root.Children[0].Children
	if len(cells) != 2 || cells[0].Name != "cell" {
		t.Fatalf("tree level 3: %+v", cells)
	}
	if len(cells[0].Events) != 1 || cells[0].Events[0].Msg != "checkpoint" {
		t.Fatalf("cell events: %+v", cells[0].Events)
	}
	if tree.Status != "ok" {
		t.Fatalf("status %q", tree.Status)
	}
}

func TestUntracedContextIsNoop(t *testing.T) {
	ctx := context.Background()
	ctx2, sp := Start(ctx, "anything")
	if sp != nil {
		t.Fatal("expected nil span without a tracer")
	}
	if ctx2 != ctx {
		t.Fatal("expected unchanged context")
	}
	// All methods must be nil-safe.
	sp.Int("k", 1)
	sp.Str("k", "v")
	sp.Float("k", 1.5)
	sp.Bool("k", true)
	sp.Event("e")
	sp.Fail(errors.New("x"))
	if sp.End() != 0 || sp.TraceID() != "" || sp.SpanID() != 0 {
		t.Fatal("nil span accessors should be zero")
	}
	if ContextTraceID(ctx) != "" {
		t.Fatal("untraced ContextTraceID should be empty")
	}
}

func TestUntracedStartDoesNotAllocate(t *testing.T) {
	ctx := context.Background()
	allocs := testing.AllocsPerRun(100, func() {
		c, sp := Start(ctx, "hot")
		sp.Int("n", 1)
		sp.End()
		_ = c
	})
	if allocs != 0 {
		t.Fatalf("untraced Start allocates %.0f objects per call, want 0", allocs)
	}
}

func TestFailMarksTraceStatus(t *testing.T) {
	tr := New(Options{})
	_, root := tr.Start(context.Background(), "job")
	root.Fail(errors.New("boom"))
	root.End()
	got, _ := tr.Get(root.TraceID())
	if got.Err() != "boom" {
		t.Fatalf("Err=%q", got.Err())
	}
	if s := got.Summary(); s.Status != "error" || s.Error != "boom" {
		t.Fatalf("summary: %+v", s)
	}
}

// TestTailRetention verifies the slowest trace of an op survives
// arbitrarily many faster successors that wash the recency ring.
func TestTailRetention(t *testing.T) {
	tr := New(Options{Recent: 16, SlowPerOp: 2})
	_, slow := tr.Start(context.Background(), "op")
	time.Sleep(20 * time.Millisecond)
	slow.End()
	slowID := slow.TraceID()

	for i := 0; i < 500; i++ {
		_, sp := tr.Start(context.Background(), "op")
		sp.End()
	}
	if _, ok := tr.Get(slowID); !ok {
		t.Fatal("slowest trace evicted despite tail retention")
	}
	// The recency ring is bounded: far fewer than 501 traces remain.
	if n := len(tr.List(Filter{Limit: 10000})); n > 16+2+traceShards {
		t.Fatalf("retained %d traces, want bounded by ring+slow", n)
	}
}

func TestHeadSampling(t *testing.T) {
	tr := New(Options{Every: 3})
	sampled := 0
	for i := 0; i < 9; i++ {
		_, sp := tr.Start(context.Background(), "op")
		if sp != nil {
			sampled++
			sp.End()
		}
	}
	if sampled != 3 {
		t.Fatalf("sampled %d of 9 with Every=3", sampled)
	}
}

func TestListFilters(t *testing.T) {
	tr := New(Options{})
	_, a := tr.Start(context.Background(), "fast")
	a.End()
	_, b := tr.Start(context.Background(), "slow")
	time.Sleep(15 * time.Millisecond)
	b.Fail(errors.New("bad"))
	b.End()

	if got := tr.List(Filter{Op: "slow"}); len(got) != 1 || got[0].ID() != b.TraceID() {
		t.Fatalf("op filter: %d results", len(got))
	}
	if got := tr.List(Filter{MinDur: 10 * time.Millisecond}); len(got) != 1 {
		t.Fatalf("minDur filter: %d results", len(got))
	}
	if got := tr.List(Filter{Status: "error"}); len(got) != 1 || got[0].Err() != "bad" {
		t.Fatalf("status=error filter: %d results", len(got))
	}
	if got := tr.List(Filter{Status: "ok"}); len(got) != 1 || got[0].Op() != "fast" {
		t.Fatalf("status=ok filter: %d results", len(got))
	}
	if got := tr.List(Filter{Limit: 1}); len(got) != 1 {
		t.Fatalf("limit: %d results", len(got))
	}
}

func TestMaxSpansCap(t *testing.T) {
	tr := New(Options{MaxSpans: 4})
	ctx, root := tr.Start(context.Background(), "job")
	for i := 0; i < 10; i++ {
		c, sp := Start(ctx, "child")
		if i >= 3 && sp != nil {
			t.Fatalf("span %d recorded past the cap", i)
		}
		if sp == nil && c != ctx {
			t.Fatal("capped Start must return the unchanged context")
		}
		sp.End()
	}
	root.End()
	got, _ := tr.Get(root.TraceID())
	if got.Len() != 4 || got.Dropped() != 7 {
		t.Fatalf("len=%d dropped=%d, want 4/7", got.Len(), got.Dropped())
	}
	if tree := got.Tree(); tree.Dropped != 7 {
		t.Fatalf("tree dropped=%d", tree.Dropped)
	}
}

func TestChromeExport(t *testing.T) {
	tr := New(Options{})
	ctx, root := tr.Start(context.Background(), "job")
	c1, child := Start(ctx, "phase")
	child.Int("n", 7)
	_, leaf := Start(c1, "leaf")
	leaf.End()
	child.End()
	root.End()

	got, _ := tr.Get(root.TraceID())
	evs := got.Chrome()
	if len(evs) != 3 {
		t.Fatalf("%d chrome events", len(evs))
	}
	tidByName := map[string]int{}
	for _, ev := range evs {
		if ev.Ph != "X" || ev.PID != 1 {
			t.Fatalf("bad event: %+v", ev)
		}
		if ev.TS < 0 || ev.Dur < 0 {
			t.Fatalf("negative ts/dur: %+v", ev)
		}
		tidByName[ev.Name] = ev.TID
	}
	if tidByName["job"] != 0 || tidByName["phase"] != 1 || tidByName["leaf"] != 2 {
		t.Fatalf("depth lanes: %v", tidByName)
	}
}

// TestConcurrentTracing drives many goroutines through shared traces
// while a reader lists and exports continuously — the -race target.
func TestConcurrentTracing(t *testing.T) {
	tr := New(Options{Recent: 8, SlowPerOp: 2})
	var wg sync.WaitGroup
	stop := make(chan struct{})
	readerDone := make(chan struct{})
	go func() {
		defer close(readerDone)
		for {
			select {
			case <-stop:
				return
			default:
			}
			for _, g := range tr.List(Filter{}) {
				g.Tree()
				g.Chrome()
			}
		}
	}()
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			for k := 0; k < 50; k++ {
				ctx, root := tr.Start(context.Background(), fmt.Sprintf("op-%d", i%2))
				var inner sync.WaitGroup
				for c := 0; c < 4; c++ {
					inner.Add(1)
					go func(c int) {
						defer inner.Done()
						_, sp := Start(ctx, "child")
						sp.Int("c", int64(c))
						sp.Event("tick")
						sp.End()
					}(c)
				}
				inner.Wait()
				root.End()
			}
		}(i)
	}
	wg.Wait()
	close(stop)
	<-readerDone
}

func TestTraceIDUnique(t *testing.T) {
	seen := map[string]bool{}
	for n := uint64(1); n < 1000; n++ {
		id := traceID(n)
		if len(id) != 16 || seen[id] {
			t.Fatalf("bad/duplicate id %q at %d", id, n)
		}
		seen[id] = true
	}
}

// TestSpanObserverBridge verifies the span→event bridge: an observer
// installed on the root span sees every span end — concurrently ended
// children included — with name, duration, error and attribute snapshot.
func TestSpanObserverBridge(t *testing.T) {
	tr := New(Options{})
	ctx, root := tr.Start(context.Background(), "job")

	var mu sync.Mutex
	var got []SpanEnd
	root.Observe(func(se SpanEnd) {
		mu.Lock()
		got = append(got, se)
		mu.Unlock()
	})

	var wg sync.WaitGroup
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			_, sp := Start(ctx, "assess.cell")
			sp.Int("workload", int64(i))
			if i == 3 {
				sp.Fail(errors.New("boom"))
			}
			sp.End()
		}(i)
	}
	wg.Wait()
	root.End()

	mu.Lock()
	defer mu.Unlock()
	if len(got) != 5 {
		t.Fatalf("observer saw %d span ends, want 5 (4 cells + root)", len(got))
	}
	cells, failed := 0, 0
	for _, se := range got {
		if se.TraceID != root.TraceID() {
			t.Errorf("span end carries trace %q, want %q", se.TraceID, root.TraceID())
		}
		if se.Name == "assess.cell" {
			cells++
			found := false
			for _, a := range se.Attrs {
				if a.Key == "workload" {
					found = true
				}
			}
			if !found {
				t.Errorf("cell span end lost its attrs: %+v", se)
			}
		}
		if se.Err != "" {
			failed++
		}
	}
	if cells != 4 || failed != 1 {
		t.Fatalf("cells=%d failed=%d, want 4/1", cells, failed)
	}
	// The last delivery is the root (it ended after every child here).
	if got[len(got)-1].Name != "job" {
		t.Errorf("last span end %q, want root", got[len(got)-1].Name)
	}
}

// TestObserverUnsetIsFree double-checks the no-observer path: spans end
// without delivering anywhere and a nil span ignores Observe.
func TestObserverUnsetIsFree(t *testing.T) {
	tr := New(Options{})
	ctx, root := tr.Start(context.Background(), "job")
	var nilSpan *Span
	nilSpan.Observe(func(SpanEnd) { t.Error("observer on nil span fired") })
	_, sp := Start(ctx, "child")
	sp.End()
	root.End()
}
