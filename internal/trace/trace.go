// Package trace is a stdlib-only span-tree tracer for the TRAP pipeline:
// per-request attribution that the aggregate counters and histograms of
// internal/obs cannot give. A traced operation is a tree of timed spans
// carrying attributes (workload index, epoch, batch size, cache hit/miss
// deltas) and point-in-time events; finished traces land in a
// lock-sharded ring-buffered store with two retention policies layered on
// top of an optional head-sampling stride:
//
//   - recency: the last Recent traces, spread over the store's shards;
//   - tail latency: the slowest SlowPerOp traces per root operation are
//     always kept, however old, so the outliers that matter for p99
//     debugging survive churn from fast traces.
//
// Propagation is by context. Instrumented code calls
//
//	ctx, sp := trace.Start(ctx, "engine.cost_batch")
//	defer sp.End()
//	sp.Int("items", int64(len(items)))
//
// and pays nothing when no trace is active: Start returns a nil *Span
// (every method of which is a no-op) without allocating, so hot paths
// stay inside their allocs/op budgets unless a tracer was installed on
// the context by a root span (Tracer.Start).
//
// All types are safe for concurrent use.
package trace

import (
	"context"
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// Attr is one key/value annotation on a span or event.
type Attr struct {
	Key   string `json:"key"`
	Value any    `json:"value"`
}

// Event is a timestamped point annotation within a span.
type Event struct {
	Time  time.Time `json:"time"`
	Msg   string    `json:"msg"`
	Attrs []Attr    `json:"attrs,omitempty"`
}

// Span is one timed operation in a trace. A nil *Span is a valid no-op
// receiver for every method, which is what un-traced contexts produce.
type Span struct {
	tr     *Trace
	id     uint64
	parent uint64
	name   string
	start  time.Time

	mu     sync.Mutex
	dur    time.Duration
	ended  bool
	errMsg string
	attrs  []Attr
	events []Event
}

// Trace is one operation tree: a root span plus everything started under
// it. Spans append themselves on Start; once the root ends the trace is
// finished and immutable, and the tracer's store retains or drops it.
type Trace struct {
	id       string
	op       string // root span name
	start    time.Time
	tracer   *Tracer
	root     *Span
	nextID   atomic.Uint64
	observer atomic.Pointer[func(SpanEnd)]
	mu       sync.Mutex
	spans    []*Span
	dropped  int

	// set once at finish (root End), read-only afterwards
	done atomic.Bool
	dur  time.Duration
}

// ID returns the trace's identifier.
func (t *Trace) ID() string { return t.id }

// Op returns the root span's name.
func (t *Trace) Op() string { return t.op }

// Start returns the trace's start time.
func (t *Trace) Start() time.Time { return t.start }

// Duration returns the root span's duration (0 while still running).
func (t *Trace) Duration() time.Duration {
	if !t.done.Load() {
		return 0
	}
	return t.dur
}

// Err returns the root span's error message ("" on success).
func (t *Trace) Err() string {
	if t.root == nil {
		return ""
	}
	t.root.mu.Lock()
	defer t.root.mu.Unlock()
	return t.root.errMsg
}

// Len returns the number of recorded spans.
func (t *Trace) Len() int {
	t.mu.Lock()
	defer t.mu.Unlock()
	return len(t.spans)
}

// Dropped returns how many spans were discarded past MaxSpans.
func (t *Trace) Dropped() int {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.dropped
}

type ctxKey struct{}

// FromContext returns the active span, or nil when ctx is untraced.
func FromContext(ctx context.Context) *Span {
	sp, _ := ctx.Value(ctxKey{}).(*Span)
	return sp
}

// ContextTraceID returns the active trace's ID, or "" when untraced.
func ContextTraceID(ctx context.Context) string {
	return FromContext(ctx).TraceID()
}

// Start begins a child of the span in ctx and returns the child-carrying
// context. When ctx carries no span (or the trace is at its span cap)
// Start is a no-op: it returns ctx unchanged and a nil span, without
// allocating, so un-traced hot paths pay only a context lookup.
func Start(ctx context.Context, name string) (context.Context, *Span) {
	parent := FromContext(ctx)
	if parent == nil {
		return ctx, nil
	}
	child := parent.tr.newSpan(name, parent.id)
	if child == nil {
		return ctx, nil
	}
	return context.WithValue(ctx, ctxKey{}, child), child
}

// newSpan allocates and registers a span, or returns nil at the cap.
func (t *Trace) newSpan(name string, parent uint64) *Span {
	sp := &Span{
		tr:     t,
		id:     t.nextID.Add(1),
		parent: parent,
		name:   name,
		start:  time.Now(),
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	if len(t.spans) >= t.tracer.maxSpans {
		t.dropped++
		return nil
	}
	t.spans = append(t.spans, sp)
	return sp
}

// TraceID returns the owning trace's ID ("" on a nil span).
func (s *Span) TraceID() string {
	if s == nil {
		return ""
	}
	return s.tr.id
}

// SpanID returns the span's ID within its trace (0 on a nil span).
func (s *Span) SpanID() uint64 {
	if s == nil {
		return 0
	}
	return s.id
}

// Attr records an arbitrary attribute (boxes v; prefer the typed
// helpers on hot paths).
func (s *Span) Attr(key string, v any) {
	if s == nil {
		return
	}
	s.mu.Lock()
	s.attrs = append(s.attrs, Attr{Key: key, Value: v})
	s.mu.Unlock()
}

// Int records an integer attribute.
func (s *Span) Int(key string, v int64) {
	if s == nil {
		return
	}
	s.Attr(key, v)
}

// Float records a float attribute.
func (s *Span) Float(key string, v float64) {
	if s == nil {
		return
	}
	s.Attr(key, v)
}

// Str records a string attribute.
func (s *Span) Str(key, v string) {
	if s == nil {
		return
	}
	s.Attr(key, v)
}

// Bool records a boolean attribute.
func (s *Span) Bool(key string, v bool) {
	if s == nil {
		return
	}
	s.Attr(key, v)
}

// Event records a timestamped point annotation.
func (s *Span) Event(msg string, attrs ...Attr) {
	if s == nil {
		return
	}
	ev := Event{Time: time.Now(), Msg: msg, Attrs: attrs}
	s.mu.Lock()
	s.events = append(s.events, ev)
	s.mu.Unlock()
}

// SpanEnd is the span→event bridge payload: a snapshot of one finished
// span, delivered to the trace's observer the moment the span ends
// (while the rest of the trace is still running). It lets a subscriber
// stream pipeline progress — training epochs, measurement cells — at
// span granularity without polling the trace store.
type SpanEnd struct {
	TraceID string
	Name    string
	Dur     time.Duration
	Err     string
	Attrs   []Attr
}

// Observe installs fn as the span-end observer of the receiver's trace:
// every span of the trace (the receiver included) that ends after this
// call is delivered to fn, on the goroutine that ended it, so fn must be
// fast and safe for concurrent use. Only one observer is held; installing
// replaces. A nil span is a no-op. Untraced paths pay nothing: without an
// observer the delivery check is a single atomic load on span end.
func (s *Span) Observe(fn func(SpanEnd)) {
	if s == nil {
		return
	}
	s.tr.observer.Store(&fn)
}

// deliver snapshots the span and hands it to the trace's observer.
func (s *Span) deliver(fn func(SpanEnd), d time.Duration) {
	s.mu.Lock()
	se := SpanEnd{
		TraceID: s.tr.id,
		Name:    s.name,
		Dur:     d,
		Err:     s.errMsg,
		Attrs:   append([]Attr(nil), s.attrs...),
	}
	s.mu.Unlock()
	fn(se)
}

// Fail marks the span failed with the error's message. A nil err (or
// nil span) is a no-op, so `sp.Fail(err)` is safe on every return path.
func (s *Span) Fail(err error) {
	if s == nil || err == nil {
		return
	}
	s.mu.Lock()
	s.errMsg = err.Error()
	s.mu.Unlock()
}

// End stops the span's clock and returns its duration. Ending the root
// span finishes the trace and hands it to the tracer's store. End is
// idempotent; a nil span returns 0.
func (s *Span) End() time.Duration {
	if s == nil {
		return 0
	}
	s.mu.Lock()
	if s.ended {
		d := s.dur
		s.mu.Unlock()
		return d
	}
	s.ended = true
	s.dur = time.Since(s.start)
	d := s.dur
	s.mu.Unlock()
	if fn := s.tr.observer.Load(); fn != nil {
		s.deliver(*fn, d)
	}
	if t := s.tr.tracer; t != nil {
		if fn := t.onSpanEnd.Load(); fn != nil {
			s.deliver(*fn, d)
		}
	}
	if s.parent == 0 {
		s.tr.dur = d
		s.tr.done.Store(true)
		s.tr.tracer.finish(s.tr)
	}
	return d
}

// Options parameterizes a Tracer. The zero value gives the defaults.
type Options struct {
	// Recent bounds the recency ring across all shards (default 64).
	Recent int
	// SlowPerOp is the tail-retention width: the slowest N finished
	// traces of every root operation are always kept (default 8).
	SlowPerOp int
	// MaxSpans caps spans recorded per trace; further Start calls
	// return no-op spans and bump the trace's dropped counter
	// (default 4096). The store's memory bound is roughly
	// (Recent + SlowPerOp·ops) · MaxSpans · sizeof(span).
	MaxSpans int
	// Every is the head-sampling stride: only every Every-th root Start
	// records a trace (default 1 — record all; tail retention still
	// sees only recorded traces).
	Every int
}

const traceShards = 16

// Tracer records traces and retains a bounded set of finished ones.
type Tracer struct {
	maxSpans int
	every    uint64
	seq      atomic.Uint64 // trace IDs + head-sampling counter

	// onSpanEnd is the tracer-global span-end callback (see SetOnSpanEnd):
	// unlike a per-trace observer it sees every span of every trace, at
	// the cost of one atomic load per span end when unset.
	onSpanEnd atomic.Pointer[func(SpanEnd)]

	shards [traceShards]traceShard // recency rings

	slowMu  sync.Mutex
	slowCap int
	slow    map[string][]*Trace // per-op, ascending by duration
}

// SetOnSpanEnd installs (or, with nil, removes) a tracer-global callback
// invoked on every span end, on the goroutine that ended the span — the
// hook the continuous-profiling harness uses to notice latency-threshold
// breaches the moment they happen. The callback must be fast and safe
// for concurrent use; installing replaces any previous callback.
func (t *Tracer) SetOnSpanEnd(fn func(SpanEnd)) {
	if t == nil {
		return
	}
	if fn == nil {
		t.onSpanEnd.Store(nil)
		return
	}
	t.onSpanEnd.Store(&fn)
}

type traceShard struct {
	mu   sync.Mutex
	ring []*Trace
	next int
}

// New builds a tracer with the given retention options.
func New(o Options) *Tracer {
	if o.Recent <= 0 {
		o.Recent = 64
	}
	if o.SlowPerOp <= 0 {
		o.SlowPerOp = 8
	}
	if o.MaxSpans <= 0 {
		o.MaxSpans = 4096
	}
	if o.Every <= 0 {
		o.Every = 1
	}
	t := &Tracer{maxSpans: o.MaxSpans, every: uint64(o.Every), slowCap: o.SlowPerOp,
		slow: map[string][]*Trace{}}
	per := (o.Recent + traceShards - 1) / traceShards
	if per < 1 {
		per = 1
	}
	for i := range t.shards {
		t.shards[i].ring = make([]*Trace, per)
	}
	return t
}

// Start begins a new root span (a new trace) under this tracer and
// returns a context that propagates it. With head sampling configured
// (Options.Every > 1) the skipped roots return a nil span and an
// unchanged context. A nil tracer never samples.
func (t *Tracer) Start(ctx context.Context, op string) (context.Context, *Span) {
	if t == nil {
		return ctx, nil
	}
	n := t.seq.Add(1)
	if (n-1)%t.every != 0 {
		return ctx, nil
	}
	tr := &Trace{id: traceID(n), op: op, start: time.Now(), tracer: t}
	root := tr.newSpan(op, 0)
	tr.root = root
	return context.WithValue(ctx, ctxKey{}, root), root
}

// traceID derives a stable, unique hex ID from the tracer sequence
// number via a splitmix64 scramble (no global RNG, no time dependence).
func traceID(n uint64) string {
	z := n + 0x9e3779b97f4a7c15
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	z ^= z >> 31
	const hex = "0123456789abcdef"
	var b [16]byte
	for i := 15; i >= 0; i-- {
		b[i] = hex[z&0xf]
		z >>= 4
	}
	return string(b[:])
}

// finish retains a finished trace: always in the recency ring, and in
// the per-op slow set when it ranks among the op's slowest.
func (t *Tracer) finish(tr *Trace) {
	sh := &t.shards[fnv(tr.id)%traceShards]
	sh.mu.Lock()
	sh.ring[sh.next] = tr
	sh.next = (sh.next + 1) % len(sh.ring)
	sh.mu.Unlock()

	t.slowMu.Lock()
	defer t.slowMu.Unlock()
	s := t.slow[tr.op]
	i := sort.Search(len(s), func(i int) bool { return s[i].dur >= tr.dur })
	s = append(s, nil)
	copy(s[i+1:], s[i:])
	s[i] = tr
	if len(s) > t.slowCap {
		s = s[1:] // drop the fastest
	}
	t.slow[tr.op] = s
}

func fnv(s string) uint32 {
	h := uint32(2166136261)
	for i := 0; i < len(s); i++ {
		h ^= uint32(s[i])
		h *= 16777619
	}
	return h
}

// Get returns a retained finished trace by ID.
func (t *Tracer) Get(id string) (*Trace, bool) {
	if t == nil {
		return nil, false
	}
	for _, tr := range t.retained() {
		if tr.id == id {
			return tr, true
		}
	}
	return nil, false
}

// Filter selects traces for List.
type Filter struct {
	// Op matches the root span name exactly ("" matches all).
	Op string
	// MinDur drops traces faster than this.
	MinDur time.Duration
	// Status filters by outcome: "", "ok" or "error".
	Status string
	// Limit bounds the result (0: 50).
	Limit int
}

// List returns retained traces matching f, most recent first.
func (t *Tracer) List(f Filter) []*Trace {
	if t == nil {
		return nil
	}
	if f.Limit <= 0 {
		f.Limit = 50
	}
	var out []*Trace
	for _, tr := range t.retained() {
		if f.Op != "" && tr.op != f.Op {
			continue
		}
		if tr.dur < f.MinDur {
			continue
		}
		if f.Status == "ok" && tr.Err() != "" {
			continue
		}
		if f.Status == "error" && tr.Err() == "" {
			continue
		}
		out = append(out, tr)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].start.After(out[j].start) })
	if len(out) > f.Limit {
		out = out[:f.Limit]
	}
	return out
}

// retained snapshots every live trace (ring ∪ slow sets), deduplicated.
func (t *Tracer) retained() []*Trace {
	seen := map[string]bool{}
	var out []*Trace
	add := func(tr *Trace) {
		if tr != nil && !seen[tr.id] {
			seen[tr.id] = true
			out = append(out, tr)
		}
	}
	for i := range t.shards {
		sh := &t.shards[i]
		sh.mu.Lock()
		for _, tr := range sh.ring {
			add(tr)
		}
		sh.mu.Unlock()
	}
	t.slowMu.Lock()
	for _, s := range t.slow {
		for _, tr := range s {
			add(tr)
		}
	}
	t.slowMu.Unlock()
	return out
}
