package trace

import (
	"sort"
	"time"
)

// SpanJSON is the wire form of one span in a trace tree.
type SpanJSON struct {
	ID       uint64         `json:"id"`
	Name     string         `json:"name"`
	Start    time.Time      `json:"start"`
	DurMicro int64          `json:"durUs"`
	Attrs    map[string]any `json:"attrs,omitempty"`
	Events   []Event        `json:"events,omitempty"`
	Error    string         `json:"error,omitempty"`
	Children []*SpanJSON    `json:"children,omitempty"`
}

// TraceJSON is the wire form of a finished trace: its summary plus the
// root of the span tree.
type TraceJSON struct {
	ID       string    `json:"id"`
	Op       string    `json:"op"`
	Start    time.Time `json:"start"`
	DurMicro int64     `json:"durUs"`
	Status   string    `json:"status"`
	Error    string    `json:"error,omitempty"`
	Spans    int       `json:"spans"`
	Dropped  int       `json:"dropped,omitempty"`
	Root     *SpanJSON `json:"root,omitempty"`
}

// Summary renders the trace's header without the span tree (the list
// endpoint's row format).
func (t *Trace) Summary() TraceJSON {
	out := TraceJSON{
		ID:       t.id,
		Op:       t.op,
		Start:    t.start,
		DurMicro: t.Duration().Microseconds(),
		Status:   "ok",
		Spans:    t.Len(),
		Dropped:  t.Dropped(),
	}
	if msg := t.Err(); msg != "" {
		out.Status = "error"
		out.Error = msg
	}
	return out
}

// Tree renders the trace with its full span tree. Spans whose parent
// was dropped at the span cap are grafted onto the root so nothing
// recorded is lost from the export.
func (t *Trace) Tree() TraceJSON {
	out := t.Summary()
	t.mu.Lock()
	spans := make([]*Span, len(t.spans))
	copy(spans, t.spans)
	t.mu.Unlock()
	if len(spans) == 0 {
		return out
	}
	nodes := make(map[uint64]*SpanJSON, len(spans))
	for _, sp := range spans {
		nodes[sp.id] = sp.json()
	}
	var root *SpanJSON
	for _, sp := range spans {
		n := nodes[sp.id]
		if sp.parent == 0 {
			root = n
			continue
		}
		if p, ok := nodes[sp.parent]; ok {
			p.Children = append(p.Children, n)
		} else if root != nil {
			root.Children = append(root.Children, n)
		}
	}
	for _, n := range nodes {
		sort.Slice(n.Children, func(i, j int) bool {
			if n.Children[i].Start.Equal(n.Children[j].Start) {
				return n.Children[i].ID < n.Children[j].ID
			}
			return n.Children[i].Start.Before(n.Children[j].Start)
		})
	}
	out.Root = root
	return out
}

// json snapshots one span (attrs flattened to a map; later duplicates of
// a key win, matching "last write sticks" semantics).
func (s *Span) json() *SpanJSON {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := &SpanJSON{
		ID:       s.id,
		Name:     s.name,
		Start:    s.start,
		DurMicro: s.dur.Microseconds(),
		Error:    s.errMsg,
	}
	if len(s.attrs) > 0 {
		out.Attrs = make(map[string]any, len(s.attrs))
		for _, a := range s.attrs {
			out.Attrs[a.Key] = a.Value
		}
	}
	if len(s.events) > 0 {
		out.Events = append(out.Events, s.events...)
	}
	return out
}

// ChromeEvent is one entry of the Chrome trace_event format ("X"
// complete events), loadable in chrome://tracing or Perfetto.
type ChromeEvent struct {
	Name string         `json:"name"`
	Cat  string         `json:"cat"`
	Ph   string         `json:"ph"`
	TS   int64          `json:"ts"`  // microseconds since trace start
	Dur  int64          `json:"dur"` // microseconds
	PID  int            `json:"pid"`
	TID  int            `json:"tid"`
	Args map[string]any `json:"args,omitempty"`
}

// Chrome exports the trace in the Chrome trace_event format. Spans are
// laid out one thread-lane per tree depth, which renders nested spans
// correctly; concurrent siblings at the same depth share a lane and may
// visually overlap (the JSON itself stays exact).
func (t *Trace) Chrome() []ChromeEvent {
	t.mu.Lock()
	spans := make([]*Span, len(t.spans))
	copy(spans, t.spans)
	t.mu.Unlock()
	depth := map[uint64]int{}
	var depthOf func(sp *Span) int
	byID := make(map[uint64]*Span, len(spans))
	for _, sp := range spans {
		byID[sp.id] = sp
	}
	depthOf = func(sp *Span) int {
		if d, ok := depth[sp.id]; ok {
			return d
		}
		d := 0
		if p, ok := byID[sp.parent]; ok && sp.parent != 0 {
			d = depthOf(p) + 1
		}
		depth[sp.id] = d
		return d
	}
	out := make([]ChromeEvent, 0, len(spans))
	for _, sp := range spans {
		j := sp.json()
		ev := ChromeEvent{
			Name: j.Name,
			Cat:  t.op,
			Ph:   "X",
			TS:   j.Start.Sub(t.start).Microseconds(),
			Dur:  j.DurMicro,
			PID:  1,
			TID:  depthOf(sp),
			Args: j.Attrs,
		}
		if j.Error != "" {
			if ev.Args == nil {
				ev.Args = map[string]any{}
			}
			ev.Args["error"] = j.Error
		}
		out = append(out, ev)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].TS < out[j].TS })
	return out
}
