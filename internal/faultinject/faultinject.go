// Package faultinject is a deterministic, seed-driven fault-injection
// harness for the TRAP pipeline. Long-running components (the engine's
// what-if costing, the generator trainer, the trapd job layer) carry
// named injection points behind a nil-by-default Injector; production
// code pays a nil check per point and nothing else. Tests and the trapd
// -inject flag install a Seeded injector whose rules fire errors,
// panics or latency at exact hit counts, so failure-handling paths are
// exercised reproducibly — the adversarial-perturbation idea of the
// paper, turned on the system itself.
package faultinject

import (
	"errors"
	"fmt"
	"math/rand"
	"strconv"
	"strings"
	"sync"
	"time"
)

// Injection point names compiled into the repository's components. An
// injector may match any point string; these are the built-in hooks.
const (
	// PointEngineCost fires on every Engine.QueryCost call (what-if and
	// true costing).
	PointEngineCost = "engine.cost"
	// PointPretrainEpoch fires at the top of every pretraining epoch.
	PointPretrainEpoch = "core.pretrain.epoch"
	// PointRLEpoch fires at the top of every RL training epoch.
	PointRLEpoch = "core.rl.epoch"
	// PointRLWorkload fires before each workload inside an RL epoch.
	PointRLWorkload = "core.rl.workload"
	// PointRollout fires inside every sampled-trajectory rollout worker,
	// before it decodes (so injected faults land mid-fan-out).
	PointRollout = "core.rl.rollout"
	// PointGenerate fires on every Framework.Generate/GenerateSampled.
	PointGenerate = "core.generate"
	// PointJoblogAppend fires at the top of every joblog append, before
	// the frame hits the file. An injected error is treated exactly like
	// a write/fsync failure (e.g. ENOSPC): the log degrades to read-only.
	PointJoblogAppend = "joblog.append"
	// PointHeartbeat fires at the top of every cluster heartbeat tick.
	// An injected delay stalls the node's heartbeat loop (simulating a
	// long GC pause or scheduler stall); an injected error drops beats.
	PointHeartbeat = "cluster.heartbeat"
	// PointLeaseAppend fires before a node appends a lease-claim record,
	// so claim races and claim-path write failures are drillable.
	PointLeaseAppend = "cluster.lease.append"
)

// Injector decides at each named point whether to inject a fault. Fire
// may return an error (an injected transient failure), panic (an
// injected crash), or sleep (injected latency) before returning nil.
// Implementations must be safe for concurrent use.
type Injector interface {
	Fire(point string) error
}

// Fire is the nil-safe hook used at injection points: a nil injector is
// a no-op, which is the production configuration.
func Fire(in Injector, point string) error {
	if in == nil {
		return nil
	}
	return in.Fire(point)
}

// Error is an injected transient failure. It reports itself transient so
// retry layers (trapd's bounded job retry) treat it as retryable.
type Error struct {
	Point string
	Hit   uint64
}

func (e *Error) Error() string {
	return fmt.Sprintf("faultinject: injected transient error at %s (hit %d)", e.Point, e.Hit)
}

// Transient marks the error as retryable.
func (e *Error) Transient() bool { return true }

// Panic is the value thrown by panic rules, so recover sites can tell an
// injected crash from a genuine one.
type Panic struct {
	Point string
	Hit   uint64
}

func (p *Panic) String() string {
	return fmt.Sprintf("faultinject: injected panic at %s (hit %d)", p.Point, p.Hit)
}

// IsTransient reports whether err (or anything it wraps) marks itself
// transient via a `Transient() bool` method — the contract trapd's retry
// loop keys on.
func IsTransient(err error) bool {
	for err != nil {
		if t, ok := err.(interface{ Transient() bool }); ok && t.Transient() {
			return true
		}
		err = errors.Unwrap(err)
	}
	return false
}

// Action is what a rule does when it fires.
type Action int

const (
	// ActError returns a transient *Error from the injection point.
	ActError Action = iota
	// ActPanic panics with a *Panic value.
	ActPanic
	// ActDelay sleeps Rule.Delay, then lets the point proceed.
	ActDelay
)

// String names the action (the form Parse reads).
func (a Action) String() string {
	switch a {
	case ActError:
		return "error"
	case ActPanic:
		return "panic"
	case ActDelay:
		return "delay"
	}
	return fmt.Sprintf("Action(%d)", int(a))
}

// Rule arms one injection point. Hits are counted per point; a rule
// fires on hits where `hit > After` and, when Every > 0, the hit index
// (after skipping After) is a multiple of Every, or, when Every == 0,
// with probability Prob drawn from the injector's seeded RNG. Count
// bounds the total fires of the rule (0 = unlimited).
type Rule struct {
	Point  string
	Action Action
	Every  uint64
	After  uint64
	Count  uint64
	Prob   float64
	Delay  time.Duration
}

// Seeded is a deterministic Injector: given the same seed and the same
// sequence of Fire calls, it makes the same decisions. All methods are
// safe for concurrent use (decisions serialize on an internal mutex;
// injected sleeps happen outside it).
type Seeded struct {
	mu    sync.Mutex
	rng   *rand.Rand
	rules []Rule
	hits  map[string]uint64
	fired []uint64 // per rule
	byPt  map[string]uint64
}

// NewSeeded builds a deterministic injector over the rules.
func NewSeeded(seed int64, rules ...Rule) *Seeded {
	return &Seeded{
		rng:   rand.New(rand.NewSource(seed)),
		rules: rules,
		hits:  map[string]uint64{},
		fired: make([]uint64, len(rules)),
		byPt:  map[string]uint64{},
	}
}

// Fire implements Injector. A nil *Seeded (what Parse returns for an
// empty spec) is a disarmed no-op even when it reaches an Injector
// interface, where the nil check in the package-level Fire cannot see
// it.
func (s *Seeded) Fire(point string) error {
	if s == nil {
		return nil
	}
	s.mu.Lock()
	s.hits[point]++
	hit := s.hits[point]
	for i := range s.rules {
		r := &s.rules[i]
		if r.Point != point || hit <= r.After {
			continue
		}
		if r.Count > 0 && s.fired[i] >= r.Count {
			continue
		}
		if r.Every > 0 {
			if (hit-r.After)%r.Every != 0 {
				continue
			}
		} else if s.rng.Float64() >= r.Prob {
			continue
		}
		s.fired[i]++
		s.byPt[point]++
		switch r.Action {
		case ActPanic:
			s.mu.Unlock()
			panic(&Panic{Point: point, Hit: hit})
		case ActDelay:
			d := r.Delay
			s.mu.Unlock()
			time.Sleep(d)
			return nil
		default:
			s.mu.Unlock()
			return &Error{Point: point, Hit: hit}
		}
	}
	s.mu.Unlock()
	return nil
}

// Hits returns how many times the point has been reached.
func (s *Seeded) Hits(point string) uint64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.hits[point]
}

// Fired returns how many faults have been injected at the point.
func (s *Seeded) Fired(point string) uint64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.byPt[point]
}

// Parse builds a Seeded injector from a compact rule spec, the form the
// trapd -inject flag takes:
//
//	point:action[:k=v,k=v,...][;point:action...]
//
// where action is error, panic or delay, and the options are every=N,
// after=N, count=N, p=FLOAT and delay=DURATION. Example:
//
//	core.rl.epoch:error:count=1;engine.cost:delay:every=100,delay=5ms
//
// An empty spec yields a nil injector (injection disabled).
func Parse(spec string, seed int64) (*Seeded, error) {
	spec = strings.TrimSpace(spec)
	if spec == "" {
		return nil, nil
	}
	var rules []Rule
	for _, part := range strings.Split(spec, ";") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		fields := strings.SplitN(part, ":", 3)
		if len(fields) < 2 || fields[0] == "" {
			return nil, fmt.Errorf("faultinject: bad rule %q (want point:action[:opts])", part)
		}
		r := Rule{Point: fields[0]}
		switch fields[1] {
		case "error":
			r.Action = ActError
		case "panic":
			r.Action = ActPanic
		case "delay":
			r.Action = ActDelay
		default:
			return nil, fmt.Errorf("faultinject: unknown action %q (want error, panic or delay)", fields[1])
		}
		if len(fields) == 3 {
			for _, opt := range strings.Split(fields[2], ",") {
				k, v, ok := strings.Cut(strings.TrimSpace(opt), "=")
				if !ok {
					return nil, fmt.Errorf("faultinject: bad option %q in rule %q", opt, part)
				}
				var err error
				switch k {
				case "every":
					r.Every, err = strconv.ParseUint(v, 10, 64)
				case "after":
					r.After, err = strconv.ParseUint(v, 10, 64)
				case "count":
					r.Count, err = strconv.ParseUint(v, 10, 64)
				case "p":
					r.Prob, err = strconv.ParseFloat(v, 64)
				case "delay":
					r.Delay, err = time.ParseDuration(v)
				default:
					return nil, fmt.Errorf("faultinject: unknown option %q in rule %q", k, part)
				}
				if err != nil {
					return nil, fmt.Errorf("faultinject: option %q in rule %q: %v", opt, part, err)
				}
			}
		}
		if r.Every == 0 && r.Prob == 0 {
			r.Every = 1 // bare "point:action" fires on every hit
		}
		rules = append(rules, r)
	}
	if len(rules) == 0 {
		return nil, nil
	}
	return NewSeeded(seed, rules...), nil
}
