package faultinject

import (
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"
)

func TestNilInjectorIsNoop(t *testing.T) {
	if err := Fire(nil, PointEngineCost); err != nil {
		t.Fatalf("nil injector fired: %v", err)
	}
	// A typed-nil *Seeded inside the interface (what Parse returns for
	// an empty spec) bypasses the interface nil check; it must still be
	// a disarmed no-op, not a nil dereference.
	disarmed, err := Parse("", 1)
	if err != nil {
		t.Fatal(err)
	}
	if err := Fire(disarmed, PointEngineCost); err != nil {
		t.Fatalf("disarmed injector fired: %v", err)
	}
}

func TestEveryAfterCount(t *testing.T) {
	in := NewSeeded(1, Rule{Point: "p", Action: ActError, Every: 3, After: 2, Count: 2})
	var fired []int
	for hit := 1; hit <= 15; hit++ {
		if err := in.Fire("p"); err != nil {
			fired = append(fired, hit)
			var ie *Error
			if !errors.As(err, &ie) || ie.Point != "p" || ie.Hit != uint64(hit) {
				t.Fatalf("wrong error payload: %v", err)
			}
		}
	}
	// After=2 skips hits 1-2; Every=3 fires on hits 5, 8, 11, ...;
	// Count=2 stops after two fires.
	if len(fired) != 2 || fired[0] != 5 || fired[1] != 8 {
		t.Fatalf("fired on hits %v, want [5 8]", fired)
	}
	if in.Hits("p") != 15 || in.Fired("p") != 2 {
		t.Fatalf("hits=%d fired=%d", in.Hits("p"), in.Fired("p"))
	}
}

func TestProbabilisticRulesAreSeedDeterministic(t *testing.T) {
	pattern := func(seed int64) []bool {
		in := NewSeeded(seed, Rule{Point: "p", Action: ActError, Prob: 0.5})
		var out []bool
		for i := 0; i < 64; i++ {
			out = append(out, in.Fire("p") != nil)
		}
		return out
	}
	a, b := pattern(42), pattern(42)
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("same seed produced different fire patterns")
		}
	}
	c := pattern(43)
	same := true
	for i := range a {
		if a[i] != c[i] {
			same = false
		}
	}
	if same {
		t.Error("different seeds produced identical 64-hit patterns")
	}
}

func TestPanicAction(t *testing.T) {
	in := NewSeeded(1, Rule{Point: "p", Action: ActPanic, Every: 1, Count: 1})
	func() {
		defer func() {
			p, ok := recover().(*Panic)
			if !ok || p.Point != "p" {
				t.Fatalf("recover() = %v, want *Panic at p", p)
			}
		}()
		_ = in.Fire("p")
		t.Fatal("expected panic")
	}()
	// Count=1: the second hit passes through.
	if err := in.Fire("p"); err != nil {
		t.Fatalf("second hit should pass: %v", err)
	}
}

func TestDelayAction(t *testing.T) {
	in := NewSeeded(1, Rule{Point: "p", Action: ActDelay, Every: 1, Delay: 30 * time.Millisecond})
	t0 := time.Now()
	if err := in.Fire("p"); err != nil {
		t.Fatal(err)
	}
	if d := time.Since(t0); d < 30*time.Millisecond {
		t.Errorf("delay rule slept %v, want >= 30ms", d)
	}
}

func TestIsTransient(t *testing.T) {
	if !IsTransient(&Error{Point: "p"}) {
		t.Error("*Error should be transient")
	}
	if !IsTransient(fmt.Errorf("wrapped: %w", &Error{Point: "p"})) {
		t.Error("wrapped *Error should be transient")
	}
	if IsTransient(errors.New("boring")) {
		t.Error("plain error should not be transient")
	}
	if IsTransient(nil) {
		t.Error("nil should not be transient")
	}
}

func TestParse(t *testing.T) {
	in, err := Parse("core.rl.epoch:error:count=1;engine.cost:delay:every=100,delay=5ms", 7)
	if err != nil {
		t.Fatal(err)
	}
	if len(in.rules) != 2 {
		t.Fatalf("rules = %d, want 2", len(in.rules))
	}
	r := in.rules[1]
	if r.Point != "engine.cost" || r.Action != ActDelay || r.Every != 100 || r.Delay != 5*time.Millisecond {
		t.Fatalf("rule parsed wrong: %+v", r)
	}
	// Bare point:action defaults to every hit.
	if in.rules[0].Every != 1 {
		t.Fatalf("bare rule Every = %d, want 1", in.rules[0].Every)
	}

	if in, err := Parse("", 1); in != nil || err != nil {
		t.Errorf("empty spec: %v %v", in, err)
	}
	for _, bad := range []string{"p", "p:explode", "p:error:every", "p:error:every=x", "p:error:bogus=1"} {
		if _, err := Parse(bad, 1); err == nil {
			t.Errorf("Parse(%q) accepted", bad)
		}
	}
}

func TestConcurrentFire(t *testing.T) {
	in := NewSeeded(1, Rule{Point: "p", Action: ActError, Every: 2})
	var wg sync.WaitGroup
	var mu sync.Mutex
	fires := 0
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 100; i++ {
				if in.Fire("p") != nil {
					mu.Lock()
					fires++
					mu.Unlock()
				}
			}
		}()
	}
	wg.Wait()
	if in.Hits("p") != 800 {
		t.Fatalf("hits = %d", in.Hits("p"))
	}
	if fires != 400 || in.Fired("p") != 400 {
		t.Fatalf("fires = %d / %d, want 400", fires, in.Fired("p"))
	}
}
