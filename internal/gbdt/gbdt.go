// Package gbdt implements histogram-based gradient-boosted regression
// trees: the stand-in for LightGBM as TRAP's learned index utility model
// (Section IV-B). It supports the paper's training recipe — feature
// normalization, log-transformation of the runtime target, and MSE loss.
package gbdt

import (
	"math"
	"sort"
)

// Config controls training.
type Config struct {
	Trees     int     // number of boosting rounds (default 100)
	MaxDepth  int     // maximum tree depth (default 4)
	MinLeaf   int     // minimum samples per leaf (default 5)
	Shrinkage float64 // learning rate (default 0.1)
	Bins      int     // histogram bins per feature (default 32)
	LogTarget bool    // fit log1p(y) instead of y (the paper's transform)
}

func (c Config) withDefaults() Config {
	if c.Trees <= 0 {
		c.Trees = 100
	}
	if c.MaxDepth <= 0 {
		c.MaxDepth = 4
	}
	if c.MinLeaf <= 0 {
		c.MinLeaf = 5
	}
	if c.Shrinkage <= 0 {
		c.Shrinkage = 0.1
	}
	if c.Bins <= 1 {
		c.Bins = 32
	}
	return c
}

// node is one tree node; leaves have feature == -1.
type node struct {
	feature   int
	threshold float64
	value     float64
	left      *node
	right     *node
}

// Model is a trained boosted ensemble.
type Model struct {
	cfg   Config
	base  float64
	trees []*node
	mean  []float64
	std   []float64
}

// Train fits a model on feature rows X and targets y.
func Train(x [][]float64, y []float64, cfg Config) *Model {
	cfg = cfg.withDefaults()
	n := len(x)
	if n == 0 || len(y) != n {
		panic("gbdt: empty or mismatched training data")
	}
	d := len(x[0])

	m := &Model{cfg: cfg, mean: make([]float64, d), std: make([]float64, d)}
	// Feature normalization (z-score).
	for j := 0; j < d; j++ {
		var s float64
		for i := 0; i < n; i++ {
			s += x[i][j]
		}
		m.mean[j] = s / float64(n)
		var v float64
		for i := 0; i < n; i++ {
			dv := x[i][j] - m.mean[j]
			v += dv * dv
		}
		m.std[j] = math.Sqrt(v / float64(n))
		if m.std[j] < 1e-12 {
			m.std[j] = 1
		}
	}
	xn := make([][]float64, n)
	for i := 0; i < n; i++ {
		row := make([]float64, d)
		for j := 0; j < d; j++ {
			row[j] = (x[i][j] - m.mean[j]) / m.std[j]
		}
		xn[i] = row
	}
	target := make([]float64, n)
	for i, v := range y {
		if cfg.LogTarget {
			target[i] = math.Log1p(math.Max(v, 0))
		} else {
			target[i] = v
		}
	}

	// Base prediction: mean target.
	var s float64
	for _, v := range target {
		s += v
	}
	m.base = s / float64(n)

	pred := make([]float64, n)
	for i := range pred {
		pred[i] = m.base
	}
	resid := make([]float64, n)
	idx := make([]int, n)
	for t := 0; t < cfg.Trees; t++ {
		for i := range resid {
			resid[i] = target[i] - pred[i]
			idx[i] = i
		}
		tree := buildTree(xn, resid, idx, cfg, 0)
		m.trees = append(m.trees, tree)
		for i := range pred {
			pred[i] += cfg.Shrinkage * evalTree(tree, xn[i])
		}
	}
	return m
}

// buildTree fits one regression tree on the residuals of the given rows.
func buildTree(x [][]float64, resid []float64, rows []int, cfg Config, depth int) *node {
	var sum float64
	for _, i := range rows {
		sum += resid[i]
	}
	mean := sum / float64(len(rows))
	if depth >= cfg.MaxDepth || len(rows) < 2*cfg.MinLeaf {
		return &node{feature: -1, value: mean}
	}
	bestGain := 0.0
	bestFeat := -1
	bestThresh := 0.0
	d := len(x[rows[0]])
	var baseSSE float64
	for _, i := range rows {
		dv := resid[i] - mean
		baseSSE += dv * dv
	}
	vals := make([]float64, 0, len(rows))
	for j := 0; j < d; j++ {
		// Histogram candidate thresholds: quantiles of the feature.
		vals = vals[:0]
		for _, i := range rows {
			vals = append(vals, x[i][j])
		}
		sort.Float64s(vals)
		if vals[0] == vals[len(vals)-1] {
			continue
		}
		for b := 1; b < cfg.Bins; b++ {
			thresh := vals[b*len(vals)/cfg.Bins]
			if thresh == vals[0] {
				continue
			}
			var ls, lc, rs, rc float64
			for _, i := range rows {
				if x[i][j] < thresh {
					ls += resid[i]
					lc++
				} else {
					rs += resid[i]
					rc++
				}
			}
			if lc < float64(cfg.MinLeaf) || rc < float64(cfg.MinLeaf) {
				continue
			}
			// SSE reduction of splitting at thresh.
			gain := ls*ls/lc + rs*rs/rc - sum*sum/float64(len(rows))
			if gain > bestGain+1e-12 {
				bestGain = gain
				bestFeat = j
				bestThresh = thresh
			}
		}
	}
	if bestFeat < 0 {
		return &node{feature: -1, value: mean}
	}
	var left, right []int
	for _, i := range rows {
		if x[i][bestFeat] < bestThresh {
			left = append(left, i)
		} else {
			right = append(right, i)
		}
	}
	return &node{
		feature:   bestFeat,
		threshold: bestThresh,
		left:      buildTree(x, resid, left, cfg, depth+1),
		right:     buildTree(x, resid, right, cfg, depth+1),
	}
}

func evalTree(n *node, x []float64) float64 {
	for n.feature >= 0 {
		if x[n.feature] < n.threshold {
			n = n.left
		} else {
			n = n.right
		}
	}
	return n.value
}

// Predict returns the model's estimate for one feature row.
func (m *Model) Predict(x []float64) float64 {
	row := make([]float64, len(x))
	for j := range x {
		row[j] = (x[j] - m.mean[j]) / m.std[j]
	}
	p := m.base
	for _, t := range m.trees {
		p += m.cfg.Shrinkage * evalTree(t, row)
	}
	if m.cfg.LogTarget {
		return math.Expm1(p)
	}
	return p
}

// NumTrees returns the number of fitted trees.
func (m *Model) NumTrees() int { return len(m.trees) }

// R2 computes the coefficient of determination of the model on a dataset.
func (m *Model) R2(x [][]float64, y []float64) float64 {
	if len(x) == 0 {
		return 0
	}
	var mean float64
	for _, v := range y {
		mean += v
	}
	mean /= float64(len(y))
	var ssRes, ssTot float64
	for i := range x {
		d := y[i] - m.Predict(x[i])
		ssRes += d * d
		dt := y[i] - mean
		ssTot += dt * dt
	}
	if ssTot == 0 {
		return 0
	}
	return 1 - ssRes/ssTot
}
