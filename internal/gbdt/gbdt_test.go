package gbdt

import (
	"math"
	"math/rand"
	"testing"
)

func synth(n int, seed int64, fn func(x []float64) float64) ([][]float64, []float64) {
	rng := rand.New(rand.NewSource(seed))
	xs := make([][]float64, n)
	ys := make([]float64, n)
	for i := 0; i < n; i++ {
		x := []float64{rng.Float64() * 10, rng.Float64() * 10, rng.Float64() * 10}
		xs[i] = x
		ys[i] = fn(x)
	}
	return xs, ys
}

func TestFitsNonlinearFunction(t *testing.T) {
	fn := func(x []float64) float64 {
		v := 3*x[0] + x[1]*x[1]
		if x[2] > 5 {
			v += 20
		}
		return v
	}
	xs, ys := synth(2000, 1, fn)
	m := Train(xs, ys, Config{Trees: 150, MaxDepth: 5})
	xt, yt := synth(500, 2, fn)
	r2 := m.R2(xt, yt)
	if r2 < 0.9 {
		t.Errorf("R2 = %v, want >= 0.9", r2)
	}
}

func TestLogTargetHandlesWideRange(t *testing.T) {
	// Cost-like target spanning orders of magnitude: log transform should
	// dominate the raw fit in relative error on the small end.
	fn := func(x []float64) float64 { return math.Exp(x[0]) }
	xs, ys := synth(2000, 3, fn)
	mLog := Train(xs, ys, Config{Trees: 120, MaxDepth: 4, LogTarget: true})
	mRaw := Train(xs, ys, Config{Trees: 120, MaxDepth: 4})
	xt, yt := synth(300, 4, fn)
	relErr := func(m *Model) float64 {
		var s float64
		for i := range xt {
			s += math.Abs(m.Predict(xt[i])-yt[i]) / (yt[i] + 1)
		}
		return s / float64(len(xt))
	}
	if relErr(mLog) >= relErr(mRaw) {
		t.Errorf("log target did not improve relative error: %v vs %v",
			relErr(mLog), relErr(mRaw))
	}
}

func TestMoreTreesReduceTrainError(t *testing.T) {
	fn := func(x []float64) float64 { return x[0]*x[1] - 2*x[2] }
	xs, ys := synth(800, 5, fn)
	few := Train(xs, ys, Config{Trees: 5, MaxDepth: 3})
	many := Train(xs, ys, Config{Trees: 100, MaxDepth: 3})
	if many.R2(xs, ys) <= few.R2(xs, ys) {
		t.Errorf("more trees did not improve train R2: %v vs %v",
			many.R2(xs, ys), few.R2(xs, ys))
	}
	if few.NumTrees() != 5 || many.NumTrees() != 100 {
		t.Error("NumTrees wrong")
	}
}

func TestConstantTarget(t *testing.T) {
	xs, _ := synth(100, 6, func([]float64) float64 { return 0 })
	ys := make([]float64, 100)
	for i := range ys {
		ys[i] = 7.5
	}
	m := Train(xs, ys, Config{Trees: 10})
	if math.Abs(m.Predict(xs[0])-7.5) > 1e-9 {
		t.Errorf("constant target prediction = %v", m.Predict(xs[0]))
	}
}

func TestConstantFeatureIgnored(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	xs := make([][]float64, 300)
	ys := make([]float64, 300)
	for i := range xs {
		v := rng.Float64() * 5
		xs[i] = []float64{1.0, v} // first feature constant
		ys[i] = 2 * v
	}
	m := Train(xs, ys, Config{Trees: 80, MaxDepth: 3})
	if r2 := m.R2(xs, ys); r2 < 0.95 {
		t.Errorf("R2 with constant feature = %v", r2)
	}
}

func TestDeterministic(t *testing.T) {
	fn := func(x []float64) float64 { return x[0] + x[1] }
	xs, ys := synth(200, 8, fn)
	a := Train(xs, ys, Config{Trees: 20})
	b := Train(xs, ys, Config{Trees: 20})
	for i := 0; i < 20; i++ {
		if a.Predict(xs[i]) != b.Predict(xs[i]) {
			t.Fatal("training not deterministic")
		}
	}
}

func TestPanicsOnEmptyData(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic on empty data")
		}
	}()
	Train(nil, nil, Config{})
}
