package core

import (
	"context"
	"math/rand"
	"testing"

	"github.com/trap-repro/trap/internal/nn"
	"github.com/trap-repro/trap/internal/sqlx"
)

func TestZeroBudgetKeepsQueryIdentical(t *testing.T) {
	f := newCoreFixture(t)
	for _, c := range AllConstraints {
		for seed := int64(0); seed < 10; seed++ {
			q := f.gen.Query()
			g := nn.NewGraph(false)
			r, err := Decode(g, RandomModel{}, f.v, q, c, 0, true, rand.New(rand.NewSource(seed)))
			if err != nil {
				t.Fatal(err)
			}
			if r.Query.String() != q.String() {
				t.Errorf("%s: eps=0 changed the query:\n  %s\n  %s", c, q, r.Query)
			}
			if r.Edits != 0 {
				t.Errorf("%s: eps=0 counted %d edits", c, r.Edits)
			}
		}
	}
}

func TestHavingPerturbation(t *testing.T) {
	f := newCoreFixture(t)
	q := sqlx.MustParse("SELECT lineitem.l_linestatus, COUNT(lineitem.l_orderkey) FROM lineitem " +
		"WHERE lineitem.l_quantity = 10 GROUP BY lineitem.l_linestatus " +
		"HAVING COUNT(lineitem.l_orderkey) > 5")
	changedHaving := false
	for seed := int64(0); seed < 60; seed++ {
		r := decodeOne(t, f, RandomModel{}, q, SharedTable, 5, seed)
		if r.Query.Having == nil {
			t.Fatal("HAVING dropped")
		}
		if err := r.Query.Validate(); err != nil {
			t.Fatalf("invalid HAVING perturbation: %v\n%s", err, r.Query)
		}
		h := r.Query.Having
		if h.Agg != q.Having.Agg || h.Op != q.Having.Op || !h.Val.Equal(q.Having.Val) || h.Col != q.Having.Col {
			changedHaving = true
		}
	}
	if !changedHaving {
		t.Error("SharedTable never perturbed the HAVING clause")
	}
}

func TestColumnConsistentOrderBySwap(t *testing.T) {
	// The paper's Table I Column Consistent example: reordering ORDER BY
	// columns must be reachable.
	f := newCoreFixture(t)
	q := sqlx.MustParse("SELECT lineitem.l_orderkey FROM lineitem WHERE lineitem.l_quantity = 10 " +
		"ORDER BY lineitem.l_shipdate, lineitem.l_commitdate")
	swapped := false
	for seed := int64(0); seed < 200 && !swapped; seed++ {
		r := decodeOne(t, f, RandomModel{}, q, ColumnConsistent, 5, seed)
		ob := r.Query.OrderBy
		if len(ob) == 2 && ob[0].Column == "l_commitdate" && ob[1].Column == "l_shipdate" {
			swapped = true
		}
	}
	if !swapped {
		t.Error("ColumnConsistent could not reorder ORDER BY columns")
	}
}

func TestValueOnlyMatchesTableIExample(t *testing.T) {
	// Table I's Value Only example: only the predicate literal changes.
	f := newCoreFixture(t)
	q := sqlx.MustParse("SELECT lineitem.l_orderkey FROM lineitem WHERE lineitem.l_linenumber = 1")
	changed := false
	for seed := int64(0); seed < 50; seed++ {
		r := decodeOne(t, f, RandomModel{}, q, ValueOnly, 5, seed)
		if !r.Query.Filters[0].Val.Equal(q.Filters[0].Val) {
			changed = true
			if d := sqlx.EditDistance(q, r.Query); d != 1 {
				t.Errorf("single value change has distance %d", d)
			}
		}
	}
	if !changed {
		t.Error("ValueOnly never changed the value")
	}
}

func TestWhereExtensionAddsValidPredicate(t *testing.T) {
	f := newCoreFixture(t)
	q := sqlx.MustParse("SELECT lineitem.l_orderkey FROM lineitem WHERE lineitem.l_quantity = 10")
	extended := false
	for seed := int64(0); seed < 120 && !extended; seed++ {
		r := decodeOne(t, f, RandomModel{}, q, SharedTable, 7, seed)
		if len(r.Query.Filters) > 1 {
			extended = true
			p := r.Query.Filters[len(r.Query.Filters)-1]
			if p.Col.Table != "lineitem" {
				t.Errorf("extension predicate on foreign table: %s", p)
			}
			if col := f.e.Schema().Column(p.Col); col == nil {
				t.Errorf("extension predicate on unknown column: %s", p)
			}
			if len(r.Query.Conjs) != len(r.Query.Filters)-1 {
				t.Error("conjunction bookkeeping broken after extension")
			}
		}
	}
	if !extended {
		t.Error("SharedTable never added a predicate")
	}
}

func TestStepForcedOnJoinTokens(t *testing.T) {
	f := newCoreFixture(t)
	q := sqlx.MustParse("SELECT lineitem.l_orderkey FROM lineitem, orders " +
		"WHERE lineitem.l_orderkey = orders.o_orderkey AND lineitem.l_quantity = 10")
	sess := NewSession(f.v, q, SharedTable, 5)
	joinColsForced := 0
	for {
		step, ok := sess.Next()
		if !ok {
			break
		}
		tok := f.v.Token(step.Candidates[0])
		if step.Forced() && tok.Type == sqlx.TokColumn &&
			(tok.Text == "lineitem.l_orderkey" || tok.Text == "orders.o_orderkey") {
			joinColsForced++
		}
		if err := sess.Choose(step.Candidates[0]); err != nil {
			t.Fatal(err)
		}
	}
	if joinColsForced < 2 {
		t.Errorf("join columns not forced (%d)", joinColsForced)
	}
}

func TestChooseRejectsForeignToken(t *testing.T) {
	f := newCoreFixture(t)
	q := f.gen.Query()
	sess := NewSession(f.v, q, SharedTable, 5)
	if _, ok := sess.Next(); !ok {
		t.Fatal("no first step")
	}
	if err := sess.Choose(-999); err == nil {
		t.Error("foreign token accepted")
	}
}

func BenchmarkDecodeRandom(b *testing.B) {
	f := newCoreFixture(b)
	q := f.gen.Query()
	rng := rand.New(rand.NewSource(1))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		g := nn.NewGraph(false)
		if _, err := Decode(g, RandomModel{}, f.v, q, SharedTable, 5, true, rng); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkDecodeTRAPModel(b *testing.B) {
	f := newCoreFixture(b)
	m := NewTRAPModel(f.v, Sizes{Embed: 32, Hidden: 32}, rand.New(rand.NewSource(2)))
	q := f.gen.Query()
	rng := rand.New(rand.NewSource(3))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		g := nn.NewGraph(false)
		if _, err := Decode(g, m, f.v, q, SharedTable, 5, true, rng); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkPretrainEpoch(b *testing.B) {
	f := newCoreFixture(b)
	m := NewTRAPModel(f.v, Sizes{Embed: 16, Hidden: 16}, rand.New(rand.NewSource(4)))
	fw := NewFramework(m, f.v, SharedTable, 5)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := fw.Pretrain(context.Background(), f.gen, 4, 1); err != nil {
			b.Fatal(err)
		}
	}
}
