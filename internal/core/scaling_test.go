package core

import (
	"context"
	"runtime"
	"testing"
	"time"
)

// epochAllocs runs one RL epoch at the given rollout pool size and
// returns the heap allocation count it caused (Mallocs delta). The
// framework is pre-warmed by the caller, so pools, arenas and plan
// caches are at steady state.
func epochAllocs(t *testing.T, tf *trainFixture, fw *Framework, workers int) uint64 {
	t.Helper()
	fw.RolloutWorkers = workers
	var before, after runtime.MemStats
	runtime.GC()
	runtime.ReadMemStats(&before)
	if _, err := fw.RLTrain(context.Background(), tf.f.e, tf.adv, nil, tf.c, tf.train, 1); err != nil {
		t.Fatal(err)
	}
	runtime.ReadMemStats(&after)
	return after.Mallocs - before.Mallocs
}

// TestRLTrainAllocsFlatAcrossWorkers is the allocation-scaling gate for
// the per-worker scratch design: widening the rollout pool must not
// multiply allocations. Before per-worker graphs and arenas, every
// worker count allocated the same ~100k objects per epoch because the
// shared size-keyed arena missed on the hot path; a regression back to
// shared or per-call scratch shows up here as allocs growing with the
// pool, so the gate compares 4 workers against 1 directly.
func TestRLTrainAllocsFlatAcrossWorkers(t *testing.T) {
	tf := newTrainFixture(t)
	fw := tf.buildFW("GRU", 131)
	fw.Batch = 4
	// Warm at the widest pool so per-worker graphs, arenas and the plan
	// cache exist before measuring.
	fw.RolloutWorkers = 4
	if _, err := fw.RLTrain(context.Background(), tf.f.e, tf.adv, nil, tf.c, tf.train, 2); err != nil {
		t.Fatal(err)
	}
	a1 := epochAllocs(t, tf, fw, 1)
	a4 := epochAllocs(t, tf, fw, 4)
	// Allow 25% slack plus a small constant for goroutine bookkeeping:
	// three extra worker goroutines cost a few objects each, not a
	// multiple of the per-epoch total.
	limit := a1 + a1/4 + 512
	if a4 > limit {
		t.Fatalf("allocs scale with workers: 1 worker => %d, 4 workers => %d (limit %d)", a1, a4, limit)
	}
	t.Logf("epoch allocs: workers=1 %d, workers=4 %d", a1, a4)
}

// minEpochSeconds times `runs` single epochs at the given pool size and
// returns the fastest, which filters GC pauses and scheduler noise.
func minEpochSeconds(t *testing.T, tf *trainFixture, fw *Framework, workers, runs int) float64 {
	t.Helper()
	fw.RolloutWorkers = workers
	best := 0.0
	for i := 0; i < runs; i++ {
		start := time.Now()
		if _, err := fw.RLTrain(context.Background(), tf.f.e, tf.adv, nil, tf.c, tf.train, 1); err != nil {
			t.Fatal(err)
		}
		if d := time.Since(start).Seconds(); i == 0 || d < best {
			best = d
		}
	}
	return best
}

// TestRLTrainScalingGate is the parallel-regression gate: a 4-worker
// epoch must not run slower than a 1-worker epoch. On a single-CPU
// machine there is nothing to win, so the gate only rejects genuine
// slowdowns (lock contention, shared scratch, false sharing) with a
// noise margin, rather than demanding a speedup CI hardware cannot
// deliver; the recorded speedups live in BENCH_train.json.
func TestRLTrainScalingGate(t *testing.T) {
	if testing.Short() {
		t.Skip("timing gate skipped in -short")
	}
	tf := newTrainFixture(t)
	fw := tf.buildFW("GRU", 132)
	fw.Batch = 4
	fw.RolloutWorkers = 4
	if _, err := fw.RLTrain(context.Background(), tf.f.e, tf.adv, nil, tf.c, tf.train, 2); err != nil {
		t.Fatal(err)
	}
	t1 := minEpochSeconds(t, tf, fw, 1, 3)
	t4 := minEpochSeconds(t, tf, fw, 4, 3)
	if t4 > t1*1.25 {
		t.Fatalf("4-worker epoch slower than 1-worker: %.1fms vs %.1fms", t4*1e3, t1*1e3)
	}
	t.Logf("epoch wall-clock: workers=1 %.1fms, workers=4 %.1fms", t1*1e3, t4*1e3)
}
