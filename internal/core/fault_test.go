package core

import (
	"bytes"
	"context"
	"errors"
	"math/rand"
	"reflect"
	"sync"
	"testing"

	"github.com/trap-repro/trap/internal/advisor"
	"github.com/trap-repro/trap/internal/faultinject"
	"github.com/trap-repro/trap/internal/workload"
)

// trainFixture bundles the pieces every training test needs.
type trainFixture struct {
	f     *coreFixture
	adv   advisor.Advisor
	c     advisor.Constraint
	train []*workload.Workload
}

func newTrainFixture(t testing.TB) *trainFixture {
	f := newCoreFixture(t)
	var train []*workload.Workload
	for i := 0; i < 3; i++ {
		train = append(train, f.gen.Workload(3))
	}
	return &trainFixture{
		f:     f,
		adv:   &advisor.Extend{Opt: advisor.DefaultOptions()},
		c:     advisor.Constraint{StorageBytes: f.e.Schema().TotalSizeBytes() / 2},
		train: train,
	}
}

// buildFW constructs a framework with a freshly seeded model, so two
// calls with the same arguments start from identical parameters.
func (tf *trainFixture) buildFW(model string, seed int64) *Framework {
	rng := rand.New(rand.NewSource(seed))
	var m Scorer
	switch model {
	case "TRAP":
		m = NewTRAPModel(tf.f.v, Sizes{Embed: 16, Hidden: 16}, rng)
	case "GRU":
		m = NewGRUModel(tf.f.v, Sizes{Embed: 16, Hidden: 16}, rng)
	case "Seq2Seq":
		m = NewSeq2Seq(tf.f.v, Sizes{Embed: 16, Hidden: 16}, rng)
	}
	fw := NewFramework(m, tf.f.v, SharedTable, seed+100)
	fw.Theta = 0.02
	return fw
}

func TestRLTrainCancelsAtEpochBoundary(t *testing.T) {
	tf := newTrainFixture(t)
	fw := tf.buildFW("GRU", 50)
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	// Cancel after the first completed epoch; training must stop at the
	// next epoch boundary instead of running all five.
	fw.EpochHook = func(int) error { cancel(); return nil }
	trace, err := fw.RLTrain(ctx, tf.f.e, tf.adv, nil, tf.c, tf.train, 5)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if len(trace) != 1 {
		t.Fatalf("trained %d epochs after cancel, want 1", len(trace))
	}
}

func TestPretrainHonorsCancellation(t *testing.T) {
	tf := newTrainFixture(t)
	fw := tf.buildFW("TRAP", 51)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := fw.Pretrain(ctx, tf.f.gen, 4, 2); !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
}

func TestGenerateHonorsCancellation(t *testing.T) {
	tf := newTrainFixture(t)
	fw := tf.buildFW("GRU", 52)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := fw.Generate(ctx, tf.train[0]); !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
}

// TestCheckpointResumeEquivalence is the core resume guarantee: training
// that is interrupted, checkpointed, and resumed in a fresh framework
// must produce bit-identical parameters (and reward trace) to an
// uninterrupted run with the same seed.
func TestCheckpointResumeEquivalence(t *testing.T) {
	tf := newTrainFixture(t)
	const totalEpochs, stopAfter = 4, 2
	ctx := context.Background()
	for _, model := range []string{"TRAP", "GRU", "Seq2Seq"} {
		t.Run(model, func(t *testing.T) {
			// Build all three frameworks before any training: training
			// registers unseen tokens in the shared vocabulary, and a
			// model's embedding size snapshots the vocab size at build
			// time, so later builds would start from different parameters.
			ref := tf.buildFW(model, 60)
			half := tf.buildFW(model, 60)
			res := tf.buildFW(model, 60)

			// Uninterrupted reference run.
			refTrace, err := ref.RLTrain(ctx, tf.f.e, tf.adv, nil, tf.c, tf.train, totalEpochs)
			if err != nil {
				t.Fatal(err)
			}

			// Interrupted run: stop after two epochs and checkpoint.
			halfTrace, err := half.RLTrain(ctx, tf.f.e, tf.adv, nil, tf.c, tf.train, stopAfter)
			if err != nil {
				t.Fatal(err)
			}
			var ckpt bytes.Buffer
			if err := half.SaveCheckpoint(&ckpt, stopAfter); err != nil {
				t.Fatal(err)
			}

			// Resume into a fresh, identically constructed framework.
			ep, err := res.LoadCheckpoint(bytes.NewReader(ckpt.Bytes()))
			if err != nil {
				t.Fatal(err)
			}
			if ep != stopAfter || res.StartEpoch != stopAfter {
				t.Fatalf("restored epoch %d / StartEpoch %d, want %d", ep, res.StartEpoch, stopAfter)
			}
			resTrace, err := res.RLTrain(ctx, tf.f.e, tf.adv, nil, tf.c, tf.train, totalEpochs)
			if err != nil {
				t.Fatal(err)
			}

			combined := append(append([]float64{}, halfTrace...), resTrace...)
			if !reflect.DeepEqual(refTrace, combined) {
				t.Errorf("reward traces diverged:\n  uninterrupted: %v\n  resumed:       %v", refTrace, combined)
			}
			want := ref.Model.Params().State()
			got := res.Model.Params().State()
			if !reflect.DeepEqual(want, got) {
				t.Error("resumed parameters differ from uninterrupted run")
			}
		})
	}
}

// TestConcurrentGenerateDuringTraining exercises the framework's
// concurrency contract under -race: greedy Generate calls run while
// Pretrain and RLTrain mutate the model.
func TestConcurrentGenerateDuringTraining(t *testing.T) {
	tf := newTrainFixture(t)
	fw := tf.buildFW("TRAP", 70)
	ctx := context.Background()
	w := tf.train[0]
	stop := make(chan struct{})
	var wg sync.WaitGroup
	for g := 0; g < 2; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				if _, err := fw.Generate(ctx, w); err != nil {
					t.Error(err)
					return
				}
			}
		}()
	}
	if _, err := fw.Pretrain(ctx, tf.f.gen, 4, 1); err != nil {
		t.Error(err)
	}
	if _, err := fw.RLTrain(ctx, tf.f.e, tf.adv, nil, tf.c, tf.train, 2); err != nil {
		t.Error(err)
	}
	close(stop)
	wg.Wait()
}

func TestRLTrainInjectedTransientError(t *testing.T) {
	tf := newTrainFixture(t)
	fw := tf.buildFW("GRU", 80)
	fw.Inject = faultinject.NewSeeded(1, faultinject.Rule{
		Point: faultinject.PointRLEpoch, Action: faultinject.ActError, Every: 1, After: 1, Count: 1,
	})
	trace, err := fw.RLTrain(context.Background(), tf.f.e, tf.adv, nil, tf.c, tf.train, 3)
	if err == nil {
		t.Fatal("expected injected error")
	}
	if !faultinject.IsTransient(err) {
		t.Fatalf("injected error not transient: %v", err)
	}
	if len(trace) != 1 {
		t.Fatalf("trained %d epochs before the injected fault, want 1", len(trace))
	}
	// The rule is exhausted: a retry of the same call completes.
	if _, err := fw.RLTrain(context.Background(), tf.f.e, tf.adv, nil, tf.c, tf.train, 3); err != nil {
		t.Fatalf("retry after exhausted rule: %v", err)
	}
}
