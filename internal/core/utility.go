package core

import (
	"github.com/trap-repro/trap/internal/costmodel"
	"github.com/trap-repro/trap/internal/engine"
	"github.com/trap-repro/trap/internal/workload"
)

// UtilityModel is the learned index utility model of Section IV-B: a GBDT
// (LightGBM stand-in) mapping the 4×L plan feature vector of Figure 4 to
// the actual runtime cost, trained on randomly generated and "executed"
// queries. It replaces the optimizer's error-prone what-if estimates in
// TRAP's reward. The shared implementation lives in internal/costmodel.
type UtilityModel = costmodel.Model

// TrainUtilityModel collects a training set by generating queries from
// gen, planning them under random index configurations, extracting plan
// features, and labelling them with the runtime cost, then fits the GBDT
// with the paper's recipe (normalized features, log-transformed target,
// MSE).
func TrainUtilityModel(e *engine.Engine, gen *workload.Generator, samples int, seed int64) (*UtilityModel, error) {
	return costmodel.Train(e, gen.Query, samples, seed)
}
