package core

// PerturbConstraint is one of the three perturbation constraints of
// Table I, controlling which token types of a query may be modified.
type PerturbConstraint int

const (
	// ValueOnly allows modifying predicate values only — the
	// template-with-parameter-bindings drift (TPC-H/TPC-DS/DSB style).
	ValueOnly PerturbConstraint = iota
	// ColumnConsistent additionally allows modifying columns, restricted
	// to the original query's column set (CEB/STATS style drifts, e.g.
	// reordering ORDER BY columns).
	ColumnConsistent
	// SharedTable keeps the table schema fixed but allows modifying
	// columns, values, conjunctions, operators and aggregators, and adding
	// new payload columns or predicates (JOB/CEB exploratory drifts).
	SharedTable
)

// String names the constraint.
func (c PerturbConstraint) String() string {
	switch c {
	case ValueOnly:
		return "ValueOnly"
	case ColumnConsistent:
		return "ColumnConsistent"
	case SharedTable:
		return "SharedTable"
	}
	return "unknown"
}

// AllConstraints lists the three constraints in paper order.
var AllConstraints = []PerturbConstraint{ValueOnly, ColumnConsistent, SharedTable}

// allowsColumns reports whether column tokens may be modified.
func (c PerturbConstraint) allowsColumns() bool { return c != ValueOnly }

// allowsOperators reports whether operator/aggregator/conjunction tokens
// may be modified.
func (c PerturbConstraint) allowsOperators() bool { return c == SharedTable }

// allowsExtensions reports whether new payload columns / predicates may be
// inserted via the "(.*)?" extension slots.
func (c PerturbConstraint) allowsExtensions() bool { return c == SharedTable }

// columnSetRestricted reports whether replacement columns must come from
// the original query's column set (rather than the shared tables').
func (c PerturbConstraint) columnSetRestricted() bool { return c == ColumnConsistent }
