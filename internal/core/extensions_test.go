package core

import (
	"context"
	"math/rand"
	"testing"

	"github.com/trap-repro/trap/internal/engine"
	"github.com/trap-repro/trap/internal/sqlx"
	"github.com/trap-repro/trap/internal/workload"
)

// TestPeriodicTemplateRestriction exercises the paper's periodic-template
// adaptation: restricting a column's legitimate value tokens confines
// every generated perturbation to the expected next-period variants.
func TestPeriodicTemplateRestriction(t *testing.T) {
	f := newCoreFixture(t)
	col := sqlx.ColumnRef{Table: "lineitem", Column: "l_quantity"}
	allowed := []sqlx.Datum{sqlx.NumDatum(7), sqlx.NumDatum(13)}
	f.v.SetValuesRegion(col, allowed)

	q := sqlx.MustParse("SELECT lineitem.l_orderkey FROM lineitem WHERE lineitem.l_quantity = 10")
	sawChange := false
	for seed := int64(0); seed < 40; seed++ {
		r := decodeOne(t, f, RandomModel{}, q, ValueOnly, 5, seed)
		v := r.Query.Filters[0].Val
		if v.Equal(q.Filters[0].Val) {
			continue
		}
		sawChange = true
		ok := false
		for _, a := range allowed {
			if v.Equal(a) {
				ok = true
			}
		}
		if !ok {
			t.Fatalf("value %s outside restricted region", v)
		}
	}
	if !sawChange {
		t.Error("restricted region never produced a change")
	}
}

// TestFrequencyWeightedReward checks the paper's claim that query
// frequencies are supported "with little effort by multiplying the reward
// with the frequency": weighted workload costs scale with the weights,
// so a heavy query dominates the utility and the reward.
func TestFrequencyWeightedReward(t *testing.T) {
	f := newCoreFixture(t)
	q1 := f.gen.Query()
	q2 := f.gen.Query()
	unit := &workload.Workload{Items: []workload.Item{
		{Query: q1, Weight: 1}, {Query: q2, Weight: 1},
	}}
	heavy := &workload.Workload{Items: []workload.Item{
		{Query: q1, Weight: 10}, {Query: q2, Weight: 1},
	}}
	cUnit, err := workload.Cost(f.e, unit, nil, engine.ModeEstimated)
	if err != nil {
		t.Fatal(err)
	}
	cHeavy, err := workload.Cost(f.e, heavy, nil, engine.ModeEstimated)
	if err != nil {
		t.Fatal(err)
	}
	c1, _ := f.e.QueryCost(q1, nil, engine.ModeEstimated)
	if diff := cHeavy - cUnit - 9*c1; diff > 1e-6 || diff < -1e-6 {
		t.Errorf("weighted cost not linear in frequency: %v", diff)
	}
	// The learned utility path also honors weights.
	um, err := TrainUtilityModel(f.e, f.gen, 200, 1)
	if err != nil {
		t.Fatal(err)
	}
	uUnit, _ := um.WorkloadCost(f.e, unit, nil)
	uHeavy, _ := um.WorkloadCost(f.e, heavy, nil)
	if uHeavy <= uUnit {
		t.Errorf("learned cost ignores weights: %v <= %v", uHeavy, uUnit)
	}
}

// TestMultiQueryWorkloadPerturbation exercises the framework's support
// for multi-query workloads (footnote 2 of the paper): every query of a
// weighted workload is perturbed, and weights are preserved.
func TestMultiQueryWorkloadPerturbation(t *testing.T) {
	f := newCoreFixture(t)
	w := &workload.Workload{}
	for i := 0; i < 5; i++ {
		w.Items = append(w.Items, workload.Item{Query: f.gen.Query(), Weight: float64(i + 1)})
	}
	pert, err := PerturbWorkload(context.Background(), RandomModel{}, f.v, w, SharedTable, 5, true, rand.New(rand.NewSource(1)))
	if err != nil {
		t.Fatal(err)
	}
	if pert.Size() != w.Size() {
		t.Fatal("size changed")
	}
	for i := range w.Items {
		if pert.Items[i].Weight != w.Items[i].Weight {
			t.Error("weights not preserved")
		}
	}
}

// TestEncodeVectorProperties: query vectors are deterministic and
// sensitive to query content (the basis of Figure 17).
func TestEncodeVectorProperties(t *testing.T) {
	f := newCoreFixture(t)
	m := NewTRAPModel(f.v, Sizes{Embed: 16, Hidden: 16}, rand.New(rand.NewSource(9)))
	q1 := sqlx.MustParse("SELECT lineitem.l_orderkey FROM lineitem WHERE lineitem.l_quantity = 10")
	q2 := sqlx.MustParse("SELECT orders.o_orderkey FROM orders WHERE orders.o_totalprice > 500")
	v1a := m.EncodeVector(f.v, q1)
	v1b := m.EncodeVector(f.v, q1)
	v2 := m.EncodeVector(f.v, q2)
	if len(v1a) != 2*16 {
		t.Fatalf("vector length %d", len(v1a))
	}
	same, diff := true, false
	for i := range v1a {
		if v1a[i] != v1b[i] {
			same = false
		}
		if v1a[i] != v2[i] {
			diff = true
		}
	}
	if !same {
		t.Error("EncodeVector not deterministic")
	}
	if !diff {
		t.Error("EncodeVector insensitive to query")
	}
}

// TestGenerateSampledDiffersFromGreedy: the self-critic design needs the
// sampled and greedy decodes to explore different outputs.
func TestGenerateSampledDiffersFromGreedy(t *testing.T) {
	f := newCoreFixture(t)
	m := NewTRAPModel(f.v, Sizes{Embed: 16, Hidden: 16}, rand.New(rand.NewSource(10)))
	fw := NewFramework(m, f.v, SharedTable, 11)
	w := f.gen.Workload(4)
	greedy, err := fw.Generate(context.Background(), w)
	if err != nil {
		t.Fatal(err)
	}
	differs := false
	for i := 0; i < 6 && !differs; i++ {
		sampled, err := fw.GenerateSampled(context.Background(), w)
		if err != nil {
			t.Fatal(err)
		}
		if sampled.Key() != greedy.Key() {
			differs = true
		}
	}
	if !differs {
		t.Error("sampled decoding never diverged from greedy")
	}
	// Greedy is deterministic.
	greedy2, _ := fw.Generate(context.Background(), w)
	if greedy2.Key() != greedy.Key() {
		t.Error("greedy decoding not deterministic")
	}
}

func BenchmarkUtilityModelPredict(b *testing.B) {
	f := newCoreFixture(b)
	um, err := TrainUtilityModel(f.e, f.gen, 300, 3)
	if err != nil {
		b.Fatal(err)
	}
	q := f.gen.Query()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := um.QueryCost(f.e, q, nil); err != nil {
			b.Fatal(err)
		}
	}
}
