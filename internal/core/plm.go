package core

import (
	"math/rand"

	"github.com/trap-repro/trap/internal/nn"
)

// PLMSpec sizes one pre-trained-language-model stand-in for the Figure 7 /
// Table IV ablation. The real study swaps in Bert/Bart/CodeBert/
// StarEncoder checkpoints; offline and stdlib-only, this reproduction
// builds transformer encoders of the corresponding relative scale and
// pre-trains them on a *generic* (non-SQL) token corpus, preserving the
// two documented failure causes: RL sample-inefficiency of large models
// and domain mismatch of generic pretraining.
type PLMSpec struct {
	Name   string
	Dim    int
	Heads  int
	FFDim  int
	Layers int
}

// PLMSpecs returns the four variants in paper order. Parameter counts
// scale with the originals' ordering (Bart > CodeBert > StarEncoder >
// Bert ≫ TRAP ≈ GRU).
func PLMSpecs() []PLMSpec {
	return []PLMSpec{
		{Name: "Bert", Dim: 96, Heads: 4, FFDim: 384, Layers: 4},
		{Name: "Bart", Dim: 112, Heads: 4, FFDim: 448, Layers: 5},
		{Name: "CodeBert", Dim: 104, Heads: 4, FFDim: 416, Layers: 4},
		{Name: "StarEncoder", Dim: 104, Heads: 4, FFDim: 416, Layers: 4},
	}
}

// PLMModel is a transformer-encoder generation model: the encoder of a
// TRAP-style seq2seq is replaced by a (much larger) transformer; the
// decoder stays a GRU with attention over the transformer states.
type PLMModel struct {
	name  string
	sizes Sizes
	spec  PLMSpec

	encParams *nn.Params
	decParams *nn.Params
	all       *nn.Params

	emb     *nn.Embedding
	inProj  *nn.Dense
	enc     *nn.TransformerEncoder
	bridge  *nn.Dense
	att     *nn.Attention
	dec     *nn.GRUCell
	decEmb  *nn.Embedding
	outW    *nn.Tensor
	outB    *nn.Tensor
	embRows int
}

// maxSeqLen bounds the positional embedding table.
const maxSeqLen = 128

// NewPLMModel builds a PLM stand-in over the vocabulary.
func NewPLMModel(spec PLMSpec, v *Vocab, sizes Sizes, rng *rand.Rand) *PLMModel {
	m := &PLMModel{name: spec.Name, sizes: sizes, spec: spec, embRows: v.EmbeddingRows()}
	m.encParams = &nn.Params{}
	m.emb = nn.NewEmbedding(m.encParams, "emb", m.embRows, sizes.Embed, rng)
	m.inProj = nn.NewDense(m.encParams, "inproj", sizes.Embed, spec.Dim, rng)
	m.enc = nn.NewTransformerEncoder(m.encParams, "tf", spec.Dim, spec.Heads, spec.FFDim, spec.Layers, maxSeqLen, rng)
	m.initDecoder(rng)
	return m
}

func (m *PLMModel) initDecoder(rng *rand.Rand) {
	s := m.sizes
	m.decParams = &nn.Params{}
	m.bridge = nn.NewDense(m.decParams, "bridge", m.spec.Dim, s.Hidden, rng)
	m.att = nn.NewAttention(m.decParams, "att", m.spec.Dim, s.Hidden, s.Hidden, rng)
	m.dec = nn.NewGRUCell(m.decParams, "dec", s.Embed, s.Hidden, rng)
	m.decEmb = nn.NewEmbedding(m.decParams, "decemb", m.embRows, s.Embed, rng)
	outIn := m.spec.Dim + s.Hidden + s.Embed
	m.outW = m.decParams.Add("out.W", nn.RandTensor(m.embRows, outIn, 0.05, rng))
	m.outB = m.decParams.Add("out.B", nn.NewTensor(m.embRows, 1))
	m.all = nil
}

// Name implements Scorer.
func (m *PLMModel) Name() string { return m.name }

// Params implements Scorer.
func (m *PLMModel) Params() *nn.Params {
	if m.all == nil {
		m.all = &nn.Params{}
		m.all.Merge("enc", m.encParams)
		m.all.Merge("dec", m.decParams)
	}
	return m.all
}

// EncoderParams returns the transformer encoder parameters.
func (m *PLMModel) EncoderParams() *nn.Params { return m.encParams }

// ResetDecoder implements Scorer.
func (m *PLMModel) ResetDecoder(rng *rand.Rand) { m.initDecoder(rng) }

// Begin implements Scorer.
func (m *PLMModel) Begin(g *nn.Graph, input []int) DecState {
	if len(input) > maxSeqLen {
		input = input[:maxSeqLen]
	}
	xs := make([]*nn.Tensor, len(input))
	for i, id := range input {
		xs[i] = m.inProj.Apply(g, m.emb.Lookup(g, clampID(id, m.embRows)))
	}
	enc := m.enc.Encode(g, xs)
	H := g.PackCols(enc...)
	s0 := g.Tanh(m.bridge.Apply(g, g.Col(H, H.C-1)))
	return &trapState{att: &nn.AttCache{H: H}, s: s0, prev: 0}
}

// Score implements Scorer.
func (m *PLMModel) Score(g *nn.Graph, st DecState, cands []int) *nn.Tensor {
	t := st.(*trapState)
	ctx, _ := m.att.ContextPre(g, t.att, t.s)
	prevEmb := m.decEmb.Lookup(g, clampID(t.prev, m.embRows))
	x := g.Concat(ctx, t.s, prevEmb)
	rows := make([]int, len(cands))
	for i, c := range cands {
		rows[i] = clampID(c, m.embRows)
	}
	return g.SelectedAffine(m.outW, m.outB, x, rows)
}

// Advance implements Scorer, mutating the state in place (decoding uses
// states linearly; see TRAPModel.Advance).
func (m *PLMModel) Advance(g *nn.Graph, st DecState, chosen int) DecState {
	t := st.(*trapState)
	x := m.decEmb.Lookup(g, clampID(chosen, m.embRows))
	t.s = m.dec.Step(g, x, t.s)
	t.prev = chosen
	return t
}

// GenericPretrain simulates the PLM's generic-corpus pretraining: next
// token prediction over random (non-SQL) token-id sequences. It leaves
// the encoder in a state adapted to a corpus that deviates from SQL —
// the domain-mismatch handicap the paper describes.
func (m *PLMModel) GenericPretrain(steps int, rng *rand.Rand) {
	opt := nn.NewAdam(1e-3)
	for s := 0; s < steps; s++ {
		n := 6 + rng.Intn(10)
		seq := make([]int, n)
		for i := range seq {
			seq[i] = rng.Intn(m.embRows)
		}
		g := nn.NewGraph(true)
		st := m.Begin(g, seq[:n-1]).(*trapState)
		cands := make([]int, 16)
		for i := range cands {
			cands[i] = rng.Intn(m.embRows)
		}
		cands[0] = seq[n-1]
		logits := m.Score(g, st, cands)
		nn.CrossEntropy(logits, 0, 1)
		g.Backward()
		m.Params().ClipGrads(5)
		opt.Step(m.Params())
	}
}
