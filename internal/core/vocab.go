// Package core implements TRAP itself (Section IV of the paper): the
// perturbation constraints of Table I, the Constraint-Aware Reference Tree
// of Section IV-D, the encoder-decoder generation models of Section IV-A
// (plus the baseline and PLM-variant generators of Section V), the
// two-phase training paradigm — index-advisor-independent pretraining
// (Section IV-C) followed by reinforced perturbation policy learning with
// a self-critic baseline (Section IV-B) — and the learned index utility
// model that rewards it.
package core

import (
	"fmt"
	"sort"
	"sync"

	"github.com/trap-repro/trap/internal/schema"
	"github.com/trap-repro/trap/internal/sqlx"
	"github.com/trap-repro/trap/internal/workload"
)

// Vocab is the global token vocabulary, segmented into regions by node
// type as in Figure 5: reserved keywords, tables, columns (per table),
// sampled values (per column), operators, aggregators and conjunctions.
//
// A Vocab is safe for concurrent use: lookups take a read lock, and the
// get-or-add registration of unseen tokens (ID, Encode) takes the write
// lock. Parallel rollout workers rely on this — though in practice the
// trainer's sequential greedy decode registers any unseen tokens before
// rollouts fan out, so the workers' lookups are read-only.
type Vocab struct {
	mu     sync.RWMutex
	tokens []sqlx.Token
	ids    map[sqlx.Token]int

	// regions maps a region key to the ids it contains:
	//   "operator", "aggregator", "conjunction", "table", "reserved".
	// The per-table column and per-column value regions live in their
	// own maps keyed without string assembly, so the decoder's per-slot
	// region probes cost no allocation.
	regions    map[string][]int
	colRegions map[string][]int         // table name -> column-token ids
	valRegions map[sqlx.ColumnRef][]int // column -> value-token ids
}

// valuesPerColumn is how many representative values are sampled per column
// when instantiating the vocabulary regions.
const valuesPerColumn = 8

// BuildVocab constructs the vocabulary for a schema, additionally
// including every literal observed in the given workloads (mirroring the
// paper: "legitimate tokens for predicate values are sampled from the
// current dataset and workloads").
func BuildVocab(s *schema.Schema, ws []*workload.Workload) *Vocab {
	v := &Vocab{
		ids:        map[sqlx.Token]int{},
		regions:    map[string][]int{},
		colRegions: map[string][]int{},
		valRegions: map[sqlx.ColumnRef][]int{},
	}
	add := func(t sqlx.Token) int {
		id, ok := v.ids[t]
		if !ok {
			id = len(v.tokens)
			v.tokens = append(v.tokens, t)
			v.ids[t] = id
		}
		return id
	}
	appendUnique := func(ids []int, id int) []int {
		for _, have := range ids {
			if have == id {
				return ids
			}
		}
		return append(ids, id)
	}
	addTo := func(region string, t sqlx.Token) int {
		id := add(t)
		v.regions[region] = appendUnique(v.regions[region], id)
		return id
	}
	addColTo := func(table string, t sqlx.Token) {
		v.colRegions[table] = appendUnique(v.colRegions[table], add(t))
	}
	addValTo := func(col sqlx.ColumnRef, t sqlx.Token) {
		v.valRegions[col] = appendUnique(v.valRegions[col], add(t))
	}
	for _, kw := range []string{"SELECT", "FROM", "WHERE", "GROUP", "BY", "HAVING", "ORDER", ",", "(", ")"} {
		addTo("reserved", sqlx.Token{Type: sqlx.TokReserved, Text: kw})
	}
	for _, op := range sqlx.Operators {
		addTo("operator", sqlx.Token{Type: sqlx.TokOperator, Text: op})
	}
	for _, agg := range sqlx.Aggregators {
		addTo("aggregator", sqlx.Token{Type: sqlx.TokAggregator, Text: agg})
	}
	addTo("conjunction", sqlx.Token{Type: sqlx.TokConjunction, Text: "AND"})
	addTo("conjunction", sqlx.Token{Type: sqlx.TokConjunction, Text: "OR"})

	for _, t := range s.Tables {
		addTo("table", sqlx.Token{Type: sqlx.TokTable, Text: t.Name})
		for ci := range t.Columns {
			col := &t.Columns[ci]
			ref := sqlx.ColumnRef{Table: t.Name, Column: col.Name}
			addColTo(t.Name, sqlx.Token{Type: sqlx.TokColumn, Text: ref.String()})
			for k := 0; k < valuesPerColumn; k++ {
				q := (float64(k) + 0.5) / valuesPerColumn
				idx := col.Dist.IndexOf(col.Dist.Quantile(q))
				addValTo(ref, sqlx.Token{Type: sqlx.TokValue, Text: col.DatumOf(idx).String()})
			}
		}
	}
	for _, w := range ws {
		for _, it := range w.Items {
			for _, p := range it.Query.Filters {
				addValTo(p.Col, sqlx.Token{Type: sqlx.TokValue, Text: p.Val.String()})
			}
		}
	}
	return v
}

// Size returns the number of distinct tokens.
func (v *Vocab) Size() int {
	v.mu.RLock()
	defer v.mu.RUnlock()
	return len(v.tokens)
}

// Token returns the token with the given id.
func (v *Vocab) Token(id int) sqlx.Token {
	v.mu.RLock()
	defer v.mu.RUnlock()
	return v.tokens[id]
}

// ID returns the id of a token, registering it if unseen (out-of-schema
// literals from arbitrary input queries still need an embedding row, so
// the vocabulary keeps a small growth margin; see EmbeddingRows).
func (v *Vocab) ID(t sqlx.Token) int {
	v.mu.RLock()
	id, ok := v.ids[t]
	v.mu.RUnlock()
	if ok {
		return id
	}
	v.mu.Lock()
	defer v.mu.Unlock()
	if id, ok := v.ids[t]; ok {
		// Lost the registration race to another goroutine.
		return id
	}
	id = len(v.tokens)
	v.tokens = append(v.tokens, t)
	v.ids[t] = id
	return id
}

// Region returns the token ids of a region (nil when empty).
func (v *Vocab) Region(key string) []int {
	v.mu.RLock()
	defer v.mu.RUnlock()
	return v.regions[key]
}

// ColumnsRegion returns the column-token ids for a table.
func (v *Vocab) ColumnsRegion(table string) []int {
	v.mu.RLock()
	defer v.mu.RUnlock()
	return v.colRegions[table]
}

// ValuesRegion returns the value-token ids for a column.
func (v *Vocab) ValuesRegion(col sqlx.ColumnRef) []int {
	v.mu.RLock()
	defer v.mu.RUnlock()
	return v.valRegions[col]
}

// SetValuesRegion replaces the legitimate value tokens of a column. This
// is the paper's periodic-template adaptation: given the variants
// expected in the next period, the legitimate tokens of the perturbation
// constraint are narrowed so TRAP explores exactly those.
func (v *Vocab) SetValuesRegion(col sqlx.ColumnRef, values []sqlx.Datum) {
	v.mu.Lock()
	defer v.mu.Unlock()
	v.valRegions[col] = nil
	for _, d := range values {
		t := sqlx.Token{Type: sqlx.TokValue, Text: d.String()}
		id, ok := v.ids[t]
		if !ok {
			id = len(v.tokens)
			v.tokens = append(v.tokens, t)
			v.ids[t] = id
		}
		v.valRegions[col] = append(v.valRegions[col], id)
	}
}

// EmbeddingRows returns the row count generation models should allocate:
// the current size plus headroom for literals seen later in input queries.
func (v *Vocab) EmbeddingRows() int {
	v.mu.RLock()
	defer v.mu.RUnlock()
	return len(v.tokens) + len(v.tokens)/2 + 64
}

// RegionKeys lists the region names, sorted (useful for debugging).
func (v *Vocab) RegionKeys() []string {
	v.mu.RLock()
	defer v.mu.RUnlock()
	keys := make([]string, 0, len(v.regions)+len(v.colRegions)+len(v.valRegions))
	for k := range v.regions {
		keys = append(keys, k)
	}
	for t := range v.colRegions {
		keys = append(keys, "columns:"+t)
	}
	for c := range v.valRegions {
		keys = append(keys, "values:"+c.String())
	}
	sort.Strings(keys)
	return keys
}

// Encode maps a query's canonical token sequence to ids.
func (v *Vocab) Encode(q *sqlx.Query) []int {
	toks := q.Tokens()
	ids := make([]int, len(toks))
	for i, t := range toks {
		ids[i] = v.ID(t)
	}
	return ids
}

// String summarizes the vocabulary.
func (v *Vocab) String() string {
	v.mu.RLock()
	defer v.mu.RUnlock()
	return fmt.Sprintf("Vocab{%d tokens, %d regions}",
		len(v.tokens), len(v.regions)+len(v.colRegions)+len(v.valRegions))
}
