package core

import (
	"context"
	"fmt"
	"math/rand"
	"testing"

	"github.com/trap-repro/trap/internal/nn"
)

// rolloutAllocBudget is the allocation ceiling (allocs per greedy
// workload decode on a warm graph) that the arena work bought; the CI
// bench smoke fails if a regression pushes past it. Before the tensor
// arena and scratch preallocation the same decode loop allocated roughly
// an order of magnitude more.
const rolloutAllocBudget = 4000

// BenchmarkRollout times one trajectory's forward decode — the unit of
// work the RL rollout pool schedules — on a pooled graph whose arena is
// warm, and enforces the allocation budget.
func BenchmarkRollout(b *testing.B) {
	tf := newTrainFixture(b)
	fw := tf.buildFW("GRU", 120)
	w := tf.train[0]
	g := nn.NewGraph(false)
	rng := rand.New(rand.NewSource(1))
	decode := func() {
		for _, it := range w.Items {
			if _, err := Decode(g, fw.Model, fw.Vocab, it.Query, fw.Constraint, fw.Eps, false, rng); err != nil {
				b.Fatal(err)
			}
		}
		g.Reset()
	}
	decode() // warm the arena and the vocabulary
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		decode()
	}
	b.StopTimer()
	if allocs := testing.AllocsPerRun(3, decode); allocs > rolloutAllocBudget {
		b.Fatalf("rollout decode allocates %.0f objects per run, budget %d", allocs, rolloutAllocBudget)
	}
}

// BenchmarkRLTrain times one full RL epoch (greedy baselines, sampled
// rollouts, rewards, backprop, optimizer step) at several rollout pool
// sizes. Parameters are bit-identical across the subbenchmarks; only
// wall-clock should move.
func BenchmarkRLTrain(b *testing.B) {
	tf := newTrainFixture(b)
	ctx := context.Background()
	for _, workers := range []int{1, 2, 4} {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				fw := tf.buildFW("GRU", 121)
				fw.Batch = 4
				fw.RolloutWorkers = workers
				if _, err := fw.RLTrain(ctx, tf.f.e, tf.adv, nil, tf.c, tf.train, 1); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkPretrain times the advisor-independent pretraining phase
// (data synthesis + teacher forcing), which reuses one tape graph and
// its arena across pairs.
func BenchmarkPretrain(b *testing.B) {
	tf := newTrainFixture(b)
	ctx := context.Background()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		fw := tf.buildFW("TRAP", 122)
		if _, err := fw.Pretrain(ctx, tf.f.gen, 4, 1); err != nil {
			b.Fatal(err)
		}
	}
}
