package core

import (
	"bytes"
	"context"
	"math/rand"
	"testing"

	"github.com/trap-repro/trap/internal/nn"
)

func TestModelSaveLoadRoundTrip(t *testing.T) {
	f := newCoreFixture(t)
	sizes := Sizes{Embed: 16, Hidden: 16}
	// Both models must be constructed against the same vocabulary
	// snapshot (vocabularies grow as decoding registers fresh tokens, and
	// embedding shapes follow).
	m1 := NewTRAPModel(f.v, sizes, rand.New(rand.NewSource(1)))
	m2 := NewTRAPModel(f.v, sizes, rand.New(rand.NewSource(99)))
	fw1 := NewFramework(m1, f.v, SharedTable, 2)
	fw2 := NewFramework(m2, f.v, SharedTable, 2)
	// Train briefly so the saved state is non-trivial.
	if _, err := fw1.Pretrain(context.Background(), f.gen, 4, 2); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := fw1.SaveModel(&buf); err != nil {
		t.Fatal(err)
	}
	if err := fw2.LoadModel(bytes.NewReader(buf.Bytes())); err != nil {
		t.Fatal(err)
	}
	// Identical greedy outputs after restore.
	w := f.gen.Workload(4)
	g1, err := fw1.Generate(context.Background(), w)
	if err != nil {
		t.Fatal(err)
	}
	g2, err := fw2.Generate(context.Background(), w)
	if err != nil {
		t.Fatal(err)
	}
	if g1.Key() != g2.Key() {
		t.Error("restored model decodes differently")
	}
}

func TestLoadRejectsShapeMismatch(t *testing.T) {
	f := newCoreFixture(t)
	small := NewTRAPModel(f.v, Sizes{Embed: 8, Hidden: 8}, rand.New(rand.NewSource(1)))
	big := NewTRAPModel(f.v, Sizes{Embed: 16, Hidden: 16}, rand.New(rand.NewSource(1)))
	var buf bytes.Buffer
	if err := small.Params().Save(&buf); err != nil {
		t.Fatal(err)
	}
	if err := big.Params().Load(bytes.NewReader(buf.Bytes())); err == nil {
		t.Error("shape mismatch accepted")
	}
	if err := big.Params().Load(bytes.NewReader([]byte("garbage"))); err == nil {
		t.Error("garbage accepted")
	}
}

func TestRandomModelSaveFails(t *testing.T) {
	f := newCoreFixture(t)
	fw := NewFramework(RandomModel{}, f.v, ValueOnly, 1)
	var buf bytes.Buffer
	if err := fw.SaveModel(&buf); err == nil {
		t.Error("saving parameter-free model should fail")
	}
	if err := fw.LoadModel(&buf); err == nil {
		t.Error("loading into parameter-free model should fail")
	}
}

func TestParamsSaveLoadPreservesValues(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	var p1, p2 nn.Params
	a1 := p1.Add("a", nn.RandTensor(3, 4, 1, rng))
	a2 := p2.Add("a", nn.NewTensor(3, 4))
	var buf bytes.Buffer
	if err := p1.Save(&buf); err != nil {
		t.Fatal(err)
	}
	if err := p2.Load(&buf); err != nil {
		t.Fatal(err)
	}
	for i := range a1.W {
		if a1.W[i] != a2.W[i] {
			t.Fatal("values differ after round trip")
		}
	}
}
